/**
 * @file
 * Tests for the load subsystem: byte-determinism of generated
 * schedules (same seed -> identical bytes, closed- and open-loop),
 * distribution shape of the samplers (uniform/zipfian key ratios and
 * Poisson interarrival mean within tolerance over large draws),
 * per-key request-shape stability, strict scenario-file parsing
 * (every misparse is fatal, never a silent default), and an
 * in-process end-to-end run against a live ProofService.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "load/generator.h"
#include "load/runner.h"
#include "load/scenario.h"
#include "obs/obs.h"
#include "service/server.h"

namespace unizk {
namespace load {
namespace {

/** Per-process socket path so parallel ctest runs cannot collide. */
std::string
testSocketPath(const char *tag)
{
    return "/tmp/unizk_load_test_" + std::to_string(::getpid()) + "_" +
           tag + ".sock";
}

/** Write @p text to a per-process temp file and return its path. */
std::string
writeTempScenario(const char *tag, const std::string &text)
{
    const std::string path = "/tmp/unizk_load_test_" +
                             std::to_string(::getpid()) + "_" + tag +
                             ".scn";
    std::ofstream out(path);
    out << text;
    out.close();
    return path;
}

Scenario
tinyScenario()
{
    Scenario s;
    s.name = "test-tiny";
    s.arrival = Arrival::ClosedLoop;
    s.skew = Skew::Uniform;
    s.connections = 2;
    s.requests = 4;
    s.keySpace = 8;
    MixEntry e;
    e.protocol = service::WireProtocol::Plonky2;
    e.app = AppId::Factorial;
    e.weight = 1;
    e.minRows = 64;
    e.maxRows = 64;
    e.reps = 1;
    s.mix = {e};
    return s;
}

// ---------------------------------------------------------------------
// Schedule determinism: the whole point of the SplitMix64-only design.

TEST(Schedule, SameSeedIsByteIdenticalClosedLoop)
{
    const Scenario &s = builtinScenario("zipfian-closed");
    const Schedule a = buildSchedule(s, 42);
    const Schedule b = buildSchedule(s, 42);
    EXPECT_EQ(scheduleBytes(a), scheduleBytes(b));
    EXPECT_EQ(scheduleFingerprint(a), scheduleFingerprint(b));
}

TEST(Schedule, SameSeedIsByteIdenticalOpenLoop)
{
    const Scenario &s = builtinScenario("poisson-open");
    const Schedule a = buildSchedule(s, 42);
    const Schedule b = buildSchedule(s, 42);
    EXPECT_EQ(scheduleBytes(a), scheduleBytes(b));
}

TEST(Schedule, DifferentSeedsDiffer)
{
    const Scenario &s = builtinScenario("uniform-closed");
    const Schedule a = buildSchedule(s, 1);
    const Schedule b = buildSchedule(s, 2);
    EXPECT_NE(scheduleBytes(a), scheduleBytes(b));
}

TEST(Schedule, ClosedLoopShapeAndConnectionAssignment)
{
    Scenario s = tinyScenario();
    s.requests = 10;
    s.connections = 3;
    const Schedule sched = buildSchedule(s, 9);
    ASSERT_EQ(sched.requests.size(), 10u);
    for (size_t i = 0; i < sched.requests.size(); ++i) {
        const LoadRequest &r = sched.requests[i];
        EXPECT_EQ(r.arrivalNs, 0u) << i; // closed-loop: no schedule
        EXPECT_EQ(r.connection, i % 3) << i;
        EXPECT_LT(r.key, s.keySpace) << i;
        EXPECT_EQ(r.request.rows, 64u) << i;
    }
}

TEST(Schedule, OpenLoopArrivalsAreMonotone)
{
    Scenario s = tinyScenario();
    s.arrival = Arrival::OpenPoisson;
    s.openRateRps = 100.0;
    s.requests = 64;
    const Schedule sched = buildSchedule(s, 5);
    ASSERT_EQ(sched.requests.size(), 64u);
    uint64_t prev = 0;
    for (const LoadRequest &r : sched.requests) {
        EXPECT_GE(r.arrivalNs, prev);
        prev = r.arrivalNs;
    }
    EXPECT_GT(prev, 0u);
}

TEST(Schedule, KeyMapsToStableRequestShape)
{
    // A key's request shape depends on (seed, key) only: re-drawing the
    // same key -- in any order, any number of times -- yields the
    // identical request, so zipfian-hot keys are hot circuit shapes.
    const Scenario &s = builtinScenario("zipfian-closed");
    for (uint64_t key = 0; key < 16; ++key) {
        const service::ProveRequest a = requestForKey(s, 7, key);
        const service::ProveRequest b = requestForKey(s, 7, key);
        EXPECT_EQ(a.protocol, b.protocol) << key;
        EXPECT_EQ(a.app, b.app) << key;
        EXPECT_EQ(a.rows, b.rows) << key;
        EXPECT_EQ(a.reps, b.reps) << key;
    }
    // And the shapes inside a schedule agree with requestForKey.
    const Schedule sched = buildSchedule(s, 7);
    for (const LoadRequest &r : sched.requests) {
        const service::ProveRequest want = requestForKey(s, 7, r.key);
        EXPECT_EQ(r.request.app, want.app);
        EXPECT_EQ(r.request.rows, want.rows);
    }
}

// ---------------------------------------------------------------------
// Sampler distribution shape.

TEST(Samplers, UniformDrawIsFlatWithinTolerance)
{
    constexpr uint64_t kKeys = 64;
    constexpr uint64_t kDraws = 64 * 1024;
    SplitMix64 rng(123);
    std::vector<uint64_t> counts(kKeys, 0);
    for (uint64_t i = 0; i < kDraws; ++i) {
        const uint64_t k = uniformDraw(rng, kKeys);
        ASSERT_LT(k, kKeys);
        ++counts[k];
    }
    // Expected 1024 per key; a 25% band is ~8 sigma for a binomial
    // with p = 1/64, so a deterministic seed never trips this.
    const double expect =
        static_cast<double>(kDraws) / static_cast<double>(kKeys);
    for (uint64_t k = 0; k < kKeys; ++k) {
        EXPECT_GT(static_cast<double>(counts[k]), 0.75 * expect) << k;
        EXPECT_LT(static_cast<double>(counts[k]), 1.25 * expect) << k;
    }
}

TEST(Samplers, ZipfianRatiosMatchTheExponent)
{
    constexpr uint64_t kKeys = 64;
    constexpr uint64_t kDraws = 256 * 1024;
    const double theta = 0.99;
    SplitMix64 rng(456);
    std::vector<uint64_t> counts(kKeys, 0);
    for (uint64_t i = 0; i < kDraws; ++i) {
        const uint64_t k = zipfianDraw(rng, kKeys, theta);
        ASSERT_LT(k, kKeys);
        ++counts[k];
    }
    // P(k) proportional to (k+1)^-theta, so count(0)/count(k) should be
    // ~ (k+1)^theta. Check a few spaced keys within 20%.
    for (uint64_t k : {1u, 3u, 7u, 15u, 31u}) {
        ASSERT_GT(counts[k], 0u) << k;
        const double got = static_cast<double>(counts[0]) /
                           static_cast<double>(counts[k]);
        const double want =
            std::pow(static_cast<double>(k + 1), theta);
        EXPECT_GT(got, 0.8 * want) << "k=" << k;
        EXPECT_LT(got, 1.2 * want) << "k=" << k;
    }
    // Skew sanity: the hottest key dominates the uniform share.
    EXPECT_GT(counts[0] * kKeys, 4 * kDraws);
}

TEST(Samplers, PoissonInterarrivalMeanWithinTolerance)
{
    const double rate = 50.0; // requests/second
    constexpr uint64_t kDraws = 128 * 1024;
    SplitMix64 rng(789);
    double sum = 0.0;
    for (uint64_t i = 0; i < kDraws; ++i) {
        const double gap = poissonGapSeconds(rng, rate);
        ASSERT_GE(gap, 0.0);
        sum += gap;
    }
    const double mean = sum / static_cast<double>(kDraws);
    // Exponential(rate) has mean 1/rate and sd 1/rate: over 128k draws
    // the sample mean sits well within 2% of 1/50 s.
    EXPECT_GT(mean, 0.98 / rate);
    EXPECT_LT(mean, 1.02 / rate);
}

// ---------------------------------------------------------------------
// Built-in matrix and validation.

TEST(Scenarios, BuiltinMatrixIsValidAndNamed)
{
    const std::vector<Scenario> &all = builtinScenarios();
    ASSERT_GE(all.size(), 6u);
    for (const Scenario &s : all) {
        EXPECT_FALSE(s.name.empty());
        EXPECT_FALSE(s.mix.empty()) << s.name;
        // Must not fatal.
        validateScenario(s, "builtin matrix test");
        // And each must produce a schedule of the advertised length.
        const Schedule sched = buildSchedule(s, 1);
        EXPECT_EQ(sched.requests.size(), s.requests) << s.name;
    }
    EXPECT_EQ(builtinScenario("uniform-closed").skew, Skew::Uniform);
    EXPECT_EQ(builtinScenario("poisson-open").arrival,
              Arrival::OpenPoisson);
}

TEST(ScenariosDeathTest, UnknownBuiltinNameIsFatal)
{
    EXPECT_DEATH(builtinScenario("no-such-scenario"), "fatal");
}

TEST(ScenariosDeathTest, ValidateRejectsBadRanges)
{
    {
        Scenario s = tinyScenario();
        s.requests = 0;
        EXPECT_DEATH(validateScenario(s, "test"), "fatal");
    }
    {
        Scenario s = tinyScenario();
        s.keySpace = kMaxKeySpace + 1;
        EXPECT_DEATH(validateScenario(s, "test"), "fatal");
    }
    {
        Scenario s = tinyScenario();
        s.mix[0].minRows = 96; // not a power of two
        EXPECT_DEATH(validateScenario(s, "test"), "fatal");
    }
    {
        Scenario s = tinyScenario();
        s.skew = Skew::Zipfian;
        s.zipfianTheta = 0.0;
        EXPECT_DEATH(validateScenario(s, "test"), "fatal");
    }
    {
        // Starky entry for an app without an AET implementation.
        Scenario s = tinyScenario();
        s.mix[0].protocol = service::WireProtocol::Starky;
        s.mix[0].app = AppId::Ecdsa;
        EXPECT_DEATH(validateScenario(s, "test"), "fatal");
    }
}

// ---------------------------------------------------------------------
// Scenario-file parsing: strict, fatal on any misparse.

TEST(ScenarioFile, ParsesAWellFormedFile)
{
    const std::string path = writeTempScenario("ok",
        "# comment\n"
        "name my-mix\n"
        "arrival open-poisson\n"
        "skew zipfian\n"
        "theta 1.1\n"
        "rate 25\n"
        "connections 3\n"
        "requests 12\n"
        "keyspace 32\n"
        "mix plonky2 factorial 2 64 256 2\n"
        "mix starky sha256 1 128 128 0\n");
    const Scenario s = parseScenarioFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(s.name, "my-mix");
    EXPECT_EQ(s.arrival, Arrival::OpenPoisson);
    EXPECT_EQ(s.skew, Skew::Zipfian);
    EXPECT_DOUBLE_EQ(s.zipfianTheta, 1.1);
    EXPECT_DOUBLE_EQ(s.openRateRps, 25.0);
    EXPECT_EQ(s.connections, 3u);
    EXPECT_EQ(s.requests, 12u);
    EXPECT_EQ(s.keySpace, 32u);
    ASSERT_EQ(s.mix.size(), 2u);
    EXPECT_EQ(s.mix[0].app, AppId::Factorial);
    EXPECT_EQ(s.mix[1].protocol, service::WireProtocol::Starky);
    EXPECT_EQ(s.mix[1].app, AppId::Sha256);
}

TEST(ScenarioFileDeathTest, MisparsesAreFatalNeverDefaulted)
{
    const struct
    {
        const char *tag;
        const char *text;
    } cases[] = {
        {"unknown_directive", "name x\nbogus 1\nmix plonky2 factorial "
                              "1 64 64 1\n"},
        {"junk_number", "name x\nrequests 12abc\nmix plonky2 "
                        "factorial 1 64 64 1\n"},
        {"negative_number", "name x\nrequests -4\nmix plonky2 "
                            "factorial 1 64 64 1\n"},
        {"bad_arrival", "name x\narrival sometimes\nmix plonky2 "
                        "factorial 1 64 64 1\n"},
        {"bad_app", "name x\nmix plonky2 quicksort 1 64 64 1\n"},
        {"short_mix", "name x\nmix plonky2 factorial 1 64\n"},
        {"empty_mix", "name x\nrequests 4\n"},
    };
    for (const auto &c : cases) {
        const std::string path = writeTempScenario(c.tag, c.text);
        EXPECT_DEATH(parseScenarioFile(path), "fatal") << c.tag;
        std::remove(path.c_str());
    }
}

TEST(ScenarioFileDeathTest, MissingFileIsFatal)
{
    EXPECT_DEATH(parseScenarioFile("/nonexistent/zzz.scn"), "fatal");
}

// ---------------------------------------------------------------------
// End-to-end: drive a live in-process ProofService.

TEST(LoadRunner, ClosedLoopAgainstLiveService)
{
    obs::setEnabled(true);
    const std::string socket = testSocketPath("closed");
    service::ServiceConfig cfg;
    cfg.socketPath = socket;
    cfg.queueCapacity = 8;
    cfg.proverLanes = 2;
    service::ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    Scenario s = tinyScenario();
    const Schedule sched = buildSchedule(s, 3);
    RunOptions opts;
    opts.socketPath = socket;
    const RunReport report = runScenario(s, sched, opts);
    svc.stop();

    EXPECT_EQ(report.issued, s.requests);
    EXPECT_EQ(report.ok, s.requests);
    EXPECT_EQ(report.errors, 0u);
    // Accounting invariant: every schedule entry exactly once.
    EXPECT_EQ(report.ok + report.queueFull + report.shuttingDown +
                  report.errors,
              report.issued);
    EXPECT_EQ(report.latency.count, report.ok);
    EXPECT_GT(report.latency.p50Ns, 0.0);
    EXPECT_LE(report.latency.p50Ns, report.latency.p99Ns);
    EXPECT_EQ(report.queueDepth.size(), report.ok);
    uint64_t per_app_sum = 0;
    for (const PerAppCount &p : report.perApp)
        per_app_sum += p.count;
    EXPECT_EQ(per_app_sum, report.ok);
    EXPECT_GT(report.throughputRps, 0.0);

    // The generator traces every schedule entry (traceId = position
    // + 1), so every ok response must carry the server decomposition
    // and nest inside the client observation.
    ASSERT_EQ(report.samples.size(), report.ok);
    EXPECT_EQ(report.breakdownViolations, 0u);
    uint64_t last_trace = 0;
    for (const RequestSample &sample : report.samples) {
        EXPECT_GT(sample.traceId, last_trace); // sorted, unique
        last_trace = sample.traceId;
        EXPECT_LE(sample.traceId, s.requests);
        EXPECT_LT(sample.laneId, cfg.proverLanes);
        EXPECT_GT(sample.proveNs, 0u);
        EXPECT_LE(sample.queuedNs + sample.proveNs +
                      sample.serializeNs,
                  sample.serverNs);
        EXPECT_LE(sample.serverNs, sample.clientNs);
    }

    const std::string json = reportToJson(s, 3, report);
    EXPECT_NE(json.find("\"schema\": \"unizk-load-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"test-tiny\""), std::string::npos);
    EXPECT_NE(json.find("\"breakdown\""), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
}

TEST(LoadRunner, OpenLoopAgainstLiveService)
{
    obs::setEnabled(true);
    const std::string socket = testSocketPath("open");
    service::ServiceConfig cfg;
    cfg.socketPath = socket;
    cfg.queueCapacity = 8;
    cfg.proverLanes = 2;
    service::ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    Scenario s = tinyScenario();
    s.arrival = Arrival::OpenPoisson;
    s.openRateRps = 200.0; // keep the scheduled span tiny
    const Schedule sched = buildSchedule(s, 3);
    RunOptions opts;
    opts.socketPath = socket;
    const RunReport report = runScenario(s, sched, opts);
    svc.stop();

    EXPECT_EQ(report.issued, s.requests);
    EXPECT_EQ(report.ok + report.queueFull + report.shuttingDown +
                  report.errors,
              report.issued);
    // 4 requests against queue capacity 8: nothing should be lost.
    EXPECT_EQ(report.ok, s.requests);
    EXPECT_EQ(report.errors, 0u);
    // Open-loop runs trace end to end too.
    EXPECT_EQ(report.samples.size(), report.ok);
    EXPECT_EQ(report.breakdownViolations, 0u);
}

TEST(LoadRunner, DeadSocketChargesErrorsNotSilence)
{
    Scenario s = tinyScenario();
    const Schedule sched = buildSchedule(s, 3);
    RunOptions opts;
    opts.socketPath = testSocketPath("nobody-listening");
    const RunReport report = runScenario(s, sched, opts);
    EXPECT_EQ(report.issued, s.requests);
    EXPECT_EQ(report.ok, 0u);
    EXPECT_EQ(report.errors, s.requests);
}

} // namespace
} // namespace load
} // namespace unizk
