/**
 * @file
 * Tests for the Poseidon permutation: structural properties of the
 * generated parameters, the equivalence between the naive permutation
 * and the optimized Algorithm-1 form (the factorization the UniZK
 * partial-round mapping relies on), and sponge/digest behaviour.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hash/challenger.h"
#include "hash/hashing.h"
#include "hash/poseidon.h"

namespace unizk {
namespace {

PoseidonState
randomState(uint64_t seed)
{
    SplitMix64 rng(seed);
    PoseidonState s;
    for (auto &x : s)
        x = randomFp(rng);
    return s;
}

TEST(Poseidon, SboxIsSeventhPower)
{
    SplitMix64 rng(1);
    for (int i = 0; i < 20; ++i) {
        const Fp x = randomFp(rng);
        EXPECT_EQ(Poseidon::sbox(x), x.pow(7));
    }
}

TEST(Poseidon, MdsMatrixInvertible)
{
    const auto &p = Poseidon::instance();
    EXPECT_TRUE(p.mdsMatrix().inverse().has_value());
}

TEST(Poseidon, MdsMatrixSmallMinorsNonsingular)
{
    // Full MDS check is exponential at 12x12; verify all 1x1 and 2x2
    // minors (the Cauchy construction guarantees the rest).
    EXPECT_TRUE(Poseidon::instance().mdsMatrix().isMds());
}

TEST(Poseidon, RoundConstantCount)
{
    const auto &p = Poseidon::instance();
    EXPECT_EQ(p.roundConstants().size(), PoseidonConfig::totalRounds);
}

TEST(Poseidon, NaiveEqualsOptimized)
{
    // The load-bearing test: the derived PrePartialRound + sparse-MDS
    // form (what the hardware executes) must match the textbook
    // permutation bit for bit.
    const auto &p = Poseidon::instance();
    for (uint64_t seed = 0; seed < 50; ++seed) {
        PoseidonState a = randomState(seed);
        PoseidonState b = a;
        p.permuteNaive(a);
        p.permute(b);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

TEST(Poseidon, ZeroStateNaiveEqualsOptimized)
{
    const auto &p = Poseidon::instance();
    PoseidonState a{}, b{};
    p.permuteNaive(a);
    p.permute(b);
    EXPECT_EQ(a, b);
}

TEST(Poseidon, PermutationIsDeterministic)
{
    const auto &p = Poseidon::instance();
    PoseidonState a = randomState(5), b = a;
    p.permute(a);
    p.permute(b);
    EXPECT_EQ(a, b);
}

TEST(Poseidon, PermutationChangesState)
{
    const auto &p = Poseidon::instance();
    PoseidonState a = randomState(6);
    const PoseidonState orig = a;
    p.permute(a);
    EXPECT_NE(a, orig);
}

TEST(Poseidon, AvalancheOnSingleElementChange)
{
    const auto &p = Poseidon::instance();
    PoseidonState a = randomState(7), b = a;
    b[0] += Fp::one();
    p.permute(a);
    p.permute(b);
    int differing = 0;
    for (uint32_t i = 0; i < PoseidonConfig::width; ++i)
        differing += a[i] != b[i];
    EXPECT_EQ(differing, int(PoseidonConfig::width));
}

TEST(Poseidon, SparseLayersHaveExpectedStructure)
{
    // Reconstruct each sparse layer as a dense matrix and check that
    // the product of (pre-matrix, per-round layers) composes to the
    // same linear map as the naive chain of dense MDS multiplications
    // would (with S-box = identity, constants = 0, chains are linear).
    const auto &p = Poseidon::instance();
    const auto &mds = p.mdsMatrix();
    const uint32_t w = PoseidonConfig::width;

    FpMatrix chain_naive = FpMatrix::identity(w);
    for (uint32_t r = 0; r < PoseidonConfig::partialRounds; ++r)
        chain_naive = mds.mul(chain_naive);

    FpMatrix chain_opt = p.preMdsMatrix();
    for (const auto &layer : p.sparseLayers()) {
        FpMatrix a(w, w);
        a.at(0, 0) = layer.m00;
        for (uint32_t j = 0; j + 1 < w; ++j) {
            a.at(0, j + 1) = layer.v[j];
            a.at(j + 1, 0) = layer.w[j];
            a.at(j + 1, j + 1) = Fp::one();
        }
        chain_opt = a.mul(chain_opt);
    }
    EXPECT_EQ(chain_opt, chain_naive);
}

TEST(Poseidon, PreMatrixFixesLaneZero)
{
    // The pre-matrix is diag(1, Mhat^R): lane 0 must pass through
    // untouched so the first partial-round S-box sees the right value.
    const auto &pm = Poseidon::instance().preMdsMatrix();
    EXPECT_EQ(pm.at(0, 0), Fp::one());
    for (uint32_t j = 1; j < PoseidonConfig::width; ++j) {
        EXPECT_TRUE(pm.at(0, j).isZero());
        EXPECT_TRUE(pm.at(j, 0).isZero());
    }
}

TEST(Hashing, DigestDependsOnAllInputs)
{
    std::vector<Fp> in(10);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = Fp(i + 1);
    const HashOut h = hashNoPad(in);
    for (size_t i = 0; i < in.size(); ++i) {
        auto in2 = in;
        in2[i] += Fp::one();
        EXPECT_NE(hashNoPad(in2), h) << "input " << i;
    }
}

TEST(Hashing, DigestDependsOnLength)
{
    std::vector<Fp> a(8, Fp(1));
    std::vector<Fp> b(9, Fp(1));
    EXPECT_NE(hashNoPad(a), hashNoPad(b));
}

TEST(Hashing, TwoToOneOrderMatters)
{
    HashOut l, r;
    l.elems[0] = Fp(1);
    r.elems[0] = Fp(2);
    EXPECT_NE(hashTwoToOne(l, r), hashTwoToOne(r, l));
}

TEST(Hashing, HashOrNoopPacksShortInputs)
{
    const std::vector<Fp> in{Fp(7), Fp(8)};
    const HashOut h = hashOrNoop(in);
    EXPECT_EQ(h.elems[0], Fp(7));
    EXPECT_EQ(h.elems[1], Fp(8));
    EXPECT_TRUE(h.elems[2].isZero());
}

TEST(Hashing, PermutationCountMatchesAbsorption)
{
    EXPECT_EQ(permutationCountForLength(0), 1u);
    EXPECT_EQ(permutationCountForLength(1), 1u);
    EXPECT_EQ(permutationCountForLength(8), 1u);
    EXPECT_EQ(permutationCountForLength(9), 2u);
    EXPECT_EQ(permutationCountForLength(135), 17u); // paper's leaf width
}

TEST(Challenger, DeterministicTranscript)
{
    Challenger a, b;
    a.observe(Fp(1));
    a.observe(Fp(2));
    b.observe(Fp(1));
    b.observe(Fp(2));
    EXPECT_EQ(a.challenge(), b.challenge());
    EXPECT_EQ(a.challengeExt(), b.challengeExt());
}

TEST(Challenger, ObservationsChangeChallenges)
{
    Challenger a, b;
    a.observe(Fp(1));
    b.observe(Fp(2));
    EXPECT_NE(a.challenge(), b.challenge());
}

TEST(Challenger, OrderMatters)
{
    Challenger a, b;
    a.observe(Fp(1));
    a.observe(Fp(2));
    b.observe(Fp(2));
    b.observe(Fp(1));
    EXPECT_NE(a.challenge(), b.challenge());
}

TEST(Challenger, LaterObservationsAffectLaterChallenges)
{
    Challenger a, b;
    a.observe(Fp(1));
    b.observe(Fp(1));
    EXPECT_EQ(a.challenge(), b.challenge());
    a.observe(Fp(5));
    b.observe(Fp(6));
    EXPECT_NE(a.challenge(), b.challenge());
}

TEST(Challenger, ManyChallengesWithoutObservation)
{
    // Squeezing more than the rate must re-permute, not repeat.
    Challenger c;
    c.observe(Fp(3));
    auto xs = c.challenges(20);
    for (size_t i = 0; i < xs.size(); ++i)
        for (size_t j = i + 1; j < xs.size(); ++j)
            EXPECT_NE(xs[i], xs[j]);
}

TEST(Challenger, CountsPermutations)
{
    Challenger c;
    c.observe(Fp(1));
    EXPECT_EQ(c.permutationCount(), 0u);
    c.challenge();
    EXPECT_GE(c.permutationCount(), 1u);
}

} // namespace
} // namespace unizk
