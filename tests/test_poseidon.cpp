/**
 * @file
 * Tests for the Poseidon permutation: structural properties of the
 * generated parameters, the equivalence between the naive permutation
 * and the optimized Algorithm-1 form (the factorization the UniZK
 * partial-round mapping relies on), and sponge/digest behaviour.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "hash/challenger.h"
#include "hash/goldilocks_simd.h"
#include "hash/hashing.h"
#include "hash/poseidon.h"
#include "unizk/pipeline.h"

namespace unizk {
namespace {

PoseidonState
randomState(uint64_t seed)
{
    SplitMix64 rng(seed);
    PoseidonState s;
    for (auto &x : s)
        x = randomFp(rng);
    return s;
}

TEST(Poseidon, SboxIsSeventhPower)
{
    SplitMix64 rng(1);
    for (int i = 0; i < 20; ++i) {
        const Fp x = randomFp(rng);
        EXPECT_EQ(Poseidon::sbox(x), x.pow(7));
    }
}

TEST(Poseidon, MdsMatrixInvertible)
{
    const auto &p = Poseidon::instance();
    EXPECT_TRUE(p.mdsMatrix().inverse().has_value());
}

TEST(Poseidon, MdsMatrixSmallMinorsNonsingular)
{
    // Full MDS check is exponential at 12x12; verify all 1x1 and 2x2
    // minors (the Cauchy construction guarantees the rest).
    EXPECT_TRUE(Poseidon::instance().mdsMatrix().isMds());
}

TEST(Poseidon, RoundConstantCount)
{
    const auto &p = Poseidon::instance();
    EXPECT_EQ(p.roundConstants().size(), PoseidonConfig::totalRounds);
}

TEST(Poseidon, NaiveEqualsOptimized)
{
    // The load-bearing test: the derived PrePartialRound + sparse-MDS
    // form (what the hardware executes) must match the textbook
    // permutation bit for bit.
    const auto &p = Poseidon::instance();
    for (uint64_t seed = 0; seed < 50; ++seed) {
        PoseidonState a = randomState(seed);
        PoseidonState b = a;
        p.permuteNaive(a);
        p.permute(b);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

TEST(Poseidon, ZeroStateNaiveEqualsOptimized)
{
    const auto &p = Poseidon::instance();
    PoseidonState a{}, b{};
    p.permuteNaive(a);
    p.permute(b);
    EXPECT_EQ(a, b);
}

TEST(Poseidon, PermutationIsDeterministic)
{
    const auto &p = Poseidon::instance();
    PoseidonState a = randomState(5), b = a;
    p.permute(a);
    p.permute(b);
    EXPECT_EQ(a, b);
}

TEST(Poseidon, PermutationChangesState)
{
    const auto &p = Poseidon::instance();
    PoseidonState a = randomState(6);
    const PoseidonState orig = a;
    p.permute(a);
    EXPECT_NE(a, orig);
}

TEST(Poseidon, AvalancheOnSingleElementChange)
{
    const auto &p = Poseidon::instance();
    PoseidonState a = randomState(7), b = a;
    b[0] += Fp::one();
    p.permute(a);
    p.permute(b);
    int differing = 0;
    for (uint32_t i = 0; i < PoseidonConfig::width; ++i)
        differing += a[i] != b[i];
    EXPECT_EQ(differing, int(PoseidonConfig::width));
}

TEST(Poseidon, SparseLayersHaveExpectedStructure)
{
    // Reconstruct each sparse layer as a dense matrix and check that
    // the product of (pre-matrix, per-round layers) composes to the
    // same linear map as the naive chain of dense MDS multiplications
    // would (with S-box = identity, constants = 0, chains are linear).
    const auto &p = Poseidon::instance();
    const auto &mds = p.mdsMatrix();
    const uint32_t w = PoseidonConfig::width;

    FpMatrix chain_naive = FpMatrix::identity(w);
    for (uint32_t r = 0; r < PoseidonConfig::partialRounds; ++r)
        chain_naive = mds.mul(chain_naive);

    FpMatrix chain_opt = p.preMdsMatrix();
    for (const auto &layer : p.sparseLayers()) {
        FpMatrix a(w, w);
        a.at(0, 0) = layer.m00;
        for (uint32_t j = 0; j + 1 < w; ++j) {
            a.at(0, j + 1) = layer.v[j];
            a.at(j + 1, 0) = layer.w[j];
            a.at(j + 1, j + 1) = Fp::one();
        }
        chain_opt = a.mul(chain_opt);
    }
    EXPECT_EQ(chain_opt, chain_naive);
}

TEST(Poseidon, PreMatrixFixesLaneZero)
{
    // The pre-matrix is diag(1, Mhat^R): lane 0 must pass through
    // untouched so the first partial-round S-box sees the right value.
    const auto &pm = Poseidon::instance().preMdsMatrix();
    EXPECT_EQ(pm.at(0, 0), Fp::one());
    for (uint32_t j = 1; j < PoseidonConfig::width; ++j) {
        EXPECT_TRUE(pm.at(0, j).isZero());
        EXPECT_TRUE(pm.at(j, 0).isZero());
    }
}

TEST(Hashing, DigestDependsOnAllInputs)
{
    std::vector<Fp> in(10);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = Fp(i + 1);
    const HashOut h = hashNoPad(in);
    for (size_t i = 0; i < in.size(); ++i) {
        auto in2 = in;
        in2[i] += Fp::one();
        EXPECT_NE(hashNoPad(in2), h) << "input " << i;
    }
}

TEST(Hashing, DigestDependsOnLength)
{
    std::vector<Fp> a(8, Fp(1));
    std::vector<Fp> b(9, Fp(1));
    EXPECT_NE(hashNoPad(a), hashNoPad(b));
}

TEST(Hashing, TwoToOneOrderMatters)
{
    HashOut l, r;
    l.elems[0] = Fp(1);
    r.elems[0] = Fp(2);
    EXPECT_NE(hashTwoToOne(l, r), hashTwoToOne(r, l));
}

TEST(Hashing, HashOrNoopPacksShortInputs)
{
    const std::vector<Fp> in{Fp(7), Fp(8)};
    const HashOut h = hashOrNoop(in);
    EXPECT_EQ(h.elems[0], Fp(7));
    EXPECT_EQ(h.elems[1], Fp(8));
    EXPECT_TRUE(h.elems[2].isZero());
}

TEST(Hashing, HashOrNoopDigestsPinnedForShortLengths)
{
    // Pin the noop/hash behaviour for every length the SIMD batch path
    // must reproduce exactly. Lengths 1..4 pack the inputs zero-padded
    // into the digest; length 0 *hashes* (one permutation), so the
    // empty leaf can neither collide with the all-zero length-4 leaf
    // nor diverge from hashOrNoopPermutationCount's accounting.
    for (size_t len = 1; len <= 4; ++len) {
        std::vector<Fp> in;
        for (size_t i = 0; i < len; ++i)
            in.push_back(Fp(100 + i));
        const HashOut h = hashOrNoop(in);
        for (size_t i = 0; i < 4; ++i) {
            if (i < len)
                EXPECT_EQ(h.elems[i], Fp(100 + i))
                    << "len=" << len << " elem=" << i;
            else
                EXPECT_TRUE(h.elems[i].isZero())
                    << "len=" << len << " elem=" << i;
        }
    }

    // Length 0: the hashing path, byte-identical to hashNoPad({}).
    const HashOut empty = hashOrNoop({});
    EXPECT_EQ(empty, hashNoPad({}));
    EXPECT_NE(empty, hashOrNoop(std::vector<Fp>(4, Fp(0))));

    // Length 5 crosses the noop/hash boundary: a real digest, not a
    // prefix packing.
    const std::vector<Fp> five{Fp(1), Fp(2), Fp(3), Fp(4), Fp(5)};
    const HashOut h5 = hashOrNoop(five);
    EXPECT_EQ(h5, hashNoPad(five));
    EXPECT_NE(h5.elems[0], Fp(1));
}

TEST(Hashing, PermutationCountMatchesAbsorption)
{
    EXPECT_EQ(permutationCountForLength(0), 1u);
    EXPECT_EQ(permutationCountForLength(1), 1u);
    EXPECT_EQ(permutationCountForLength(8), 1u);
    EXPECT_EQ(permutationCountForLength(9), 2u);
    EXPECT_EQ(permutationCountForLength(135), 17u); // paper's leaf width
}

/** Run @p fn under a forced SIMD level, restoring the old level after. */
template <typename Fn>
void
withSimdLevel(SimdLevel level, Fn &&fn)
{
    const SimdLevel prev = activeSimdLevel();
    ASSERT_TRUE(setSimdLevel(level));
    fn();
    ASSERT_TRUE(setSimdLevel(prev));
}

TEST(SimdDispatch, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(simdLevelAvailable(SimdLevel::Scalar));
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
}

TEST(SimdDispatch, SetSimdLevelRejectsUnavailable)
{
    const SimdLevel prev = activeSimdLevel();
    if (!simdLevelAvailable(SimdLevel::Avx2)) {
        EXPECT_FALSE(setSimdLevel(SimdLevel::Avx2));
        // A rejected override must leave the level untouched.
        EXPECT_EQ(activeSimdLevel(), prev);
    } else {
        EXPECT_TRUE(setSimdLevel(SimdLevel::Avx2));
        EXPECT_EQ(activeSimdLevel(), SimdLevel::Avx2);
        EXPECT_TRUE(setSimdLevel(prev));
    }
}

TEST(SimdDispatch, BatchMatchesNaiveForEveryBatchSize)
{
    // The exhaustive dispatch-equivalence suite: permuteBatch against
    // the textbook permuteNaive oracle for every batch size 1..9 (two
    // full groups of four plus every ragged tail), at every level this
    // host can execute.
    const auto &p = Poseidon::instance();
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (simdLevelAvailable(SimdLevel::Avx2))
        levels.push_back(SimdLevel::Avx2);

    for (const SimdLevel level : levels) {
        withSimdLevel(level, [&] {
            for (size_t n = 1; n <= 9; ++n) {
                std::vector<PoseidonState> batch(n);
                std::vector<PoseidonState> oracle(n);
                for (size_t i = 0; i < n; ++i) {
                    batch[i] = randomState(1000 * n + i);
                    oracle[i] = batch[i];
                    p.permuteNaive(oracle[i]);
                }
                p.permuteBatch(batch.data(), n);
                for (size_t i = 0; i < n; ++i)
                    EXPECT_EQ(batch[i], oracle[i])
                        << simdLevelName(level) << " n=" << n
                        << " state=" << i;
            }
        });
    }
}

TEST(SimdDispatch, Avx2KernelMatchesScalarKernel)
{
#if defined(UNIZK_HAVE_AVX2)
    if (!simdLevelAvailable(SimdLevel::Avx2))
        GTEST_SKIP() << "CPU lacks AVX2";
    // Differential test of the two backend kernels directly (no
    // dispatch): identical inputs must give bit-identical outputs.
    const auto &p = Poseidon::instance();
    for (uint64_t seed = 0; seed < 25; ++seed) {
        PoseidonState a[kSimdBatchWidth];
        PoseidonState b[kSimdBatchWidth];
        for (size_t i = 0; i < kSimdBatchWidth; ++i) {
            a[i] = randomState(7000 + seed * 4 + i);
            b[i] = a[i];
        }
        poseidonPermuteBatch4Scalar(p, a);
        poseidonPermuteBatch4Avx2(p, b);
        for (size_t i = 0; i < kSimdBatchWidth; ++i)
            EXPECT_EQ(a[i], b[i]) << "seed=" << seed << " state=" << i;
    }
#else
    GTEST_SKIP() << "AVX2 backend not compiled in";
#endif
}

TEST(SimdDispatch, BatchHashingMatchesScalarHashing)
{
    // The hashing.h batch entry points against their scalar
    // counterparts, covering equal-length runs, mixed lengths (which
    // force the scalar fallback inside the batcher), noop-path leaves,
    // empty inputs, and ragged tails.
    SplitMix64 rng(42);
    std::vector<std::vector<Fp>> inputs;
    for (const size_t len : {135u, 135u, 135u, 135u, 135u, 8u, 9u, 0u,
                             3u, 135u, 135u, 135u, 135u, 1u, 4u, 5u}) {
        std::vector<Fp> in;
        for (size_t i = 0; i < len; ++i)
            in.push_back(randomFp(rng));
        inputs.push_back(std::move(in));
    }

    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (simdLevelAvailable(SimdLevel::Avx2))
        levels.push_back(SimdLevel::Avx2);

    for (const SimdLevel level : levels) {
        withSimdLevel(level, [&] {
            std::vector<HashOut> batch(inputs.size());
            hashNoPadBatch(inputs.data(), inputs.size(), batch.data());
            for (size_t i = 0; i < inputs.size(); ++i)
                EXPECT_EQ(batch[i], hashNoPad(inputs[i]))
                    << simdLevelName(level) << " input " << i;

            hashOrNoopBatch(inputs.data(), inputs.size(), batch.data());
            for (size_t i = 0; i < inputs.size(); ++i)
                EXPECT_EQ(batch[i], hashOrNoop(inputs[i]))
                    << simdLevelName(level) << " input " << i;

            // Two-to-one over 9 pairs: two full batches + ragged tail.
            std::vector<HashOut> children(18);
            for (auto &c : children)
                for (auto &e : c.elems)
                    e = randomFp(rng);
            std::vector<HashOut> compressed(9);
            hashTwoToOneBatch(children.data(), 9, compressed.data());
            for (size_t i = 0; i < 9; ++i)
                EXPECT_EQ(compressed[i],
                          hashTwoToOne(children[2 * i],
                                       children[2 * i + 1]))
                    << simdLevelName(level) << " pair " << i;
        });
    }
}

TEST(SimdDispatch, ProofBytesIdenticalAcrossLevelsAndThreads)
{
    // The acceptance bar from the issue: end-to-end proofs must be
    // byte-identical across UNIZK_SIMD=scalar|avx2 at 1/2/8 threads.
    // When the host lacks AVX2, the thread sweep still pins scalar
    // batch determinism across grain boundaries.
    const FriConfig cfg = FriConfig::testing();
    const HardwareConfig hw = HardwareConfig::paperDefault();

    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (simdLevelAvailable(SimdLevel::Avx2))
        levels.push_back(SimdLevel::Avx2);

    const unsigned prev_threads = globalThreadCount();
    std::vector<uint8_t> reference;
    for (const SimdLevel level : levels) {
        withSimdLevel(level, [&] {
            for (const unsigned threads : {1u, 2u, 8u}) {
                setGlobalThreadCount(threads);
                const AppRunResult res =
                    runPlonky2App(AppId::Factorial, 128, 2, cfg, hw);
                EXPECT_TRUE(res.verified)
                    << simdLevelName(level) << " " << threads
                    << " threads";
                ASSERT_FALSE(res.proofBlob.empty());
                if (reference.empty())
                    reference = res.proofBlob;
                else
                    EXPECT_EQ(res.proofBlob, reference)
                        << simdLevelName(level) << " " << threads
                        << " threads";
            }
        });
    }
    setGlobalThreadCount(prev_threads);
}

TEST(Challenger, DeterministicTranscript)
{
    Challenger a, b;
    a.observe(Fp(1));
    a.observe(Fp(2));
    b.observe(Fp(1));
    b.observe(Fp(2));
    EXPECT_EQ(a.challenge(), b.challenge());
    EXPECT_EQ(a.challengeExt(), b.challengeExt());
}

TEST(Challenger, ObservationsChangeChallenges)
{
    Challenger a, b;
    a.observe(Fp(1));
    b.observe(Fp(2));
    EXPECT_NE(a.challenge(), b.challenge());
}

TEST(Challenger, OrderMatters)
{
    Challenger a, b;
    a.observe(Fp(1));
    a.observe(Fp(2));
    b.observe(Fp(2));
    b.observe(Fp(1));
    EXPECT_NE(a.challenge(), b.challenge());
}

TEST(Challenger, LaterObservationsAffectLaterChallenges)
{
    Challenger a, b;
    a.observe(Fp(1));
    b.observe(Fp(1));
    EXPECT_EQ(a.challenge(), b.challenge());
    a.observe(Fp(5));
    b.observe(Fp(6));
    EXPECT_NE(a.challenge(), b.challenge());
}

TEST(Challenger, ManyChallengesWithoutObservation)
{
    // Squeezing more than the rate must re-permute, not repeat.
    Challenger c;
    c.observe(Fp(3));
    auto xs = c.challenges(20);
    for (size_t i = 0; i < xs.size(); ++i)
        for (size_t j = i + 1; j < xs.size(); ++j)
            EXPECT_NE(xs[i], xs[j]);
}

TEST(Challenger, CountsPermutations)
{
    Challenger c;
    c.observe(Fp(1));
    EXPECT_EQ(c.permutationCount(), 0u);
    c.challenge();
    EXPECT_GE(c.permutationCount(), 1u);
}

} // namespace
} // namespace unizk
