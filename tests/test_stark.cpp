/**
 * @file
 * Tests for the STARK prover/verifier using the paper's Fibonacci AET
 * example (Figure 2) plus a degree-3 constraint system to exercise
 * multi-chunk quotients.
 */

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "stark/stark.h"

namespace unizk {
namespace {

/** Figure 2: x0' = x1, x1' = x0 + x1; x0[0]=0, x1[0]=1. */
class FibonacciAir : public StarkAir
{
  public:
    explicit FibonacciAir(Fp expected_last) : expected(expected_last) {}

    size_t numColumns() const override { return 2; }
    size_t numConstraints() const override { return 2; }

    template <typename F>
    void
    evalT(const std::vector<F> &local, const std::vector<F> &next,
          std::vector<F> &out) const
    {
        out[0] = next[0] - local[1];
        out[1] = next[1] - (local[0] + local[1]);
    }

    void
    evalTransition(const std::vector<Fp> &local,
                   const std::vector<Fp> &next,
                   std::vector<Fp> &out) const override
    {
        evalT(local, next, out);
    }

    void
    evalTransitionExt(const std::vector<Fp2> &local,
                      const std::vector<Fp2> &next,
                      std::vector<Fp2> &out) const override
    {
        evalT(local, next, out);
    }

    std::vector<BoundaryConstraint>
    boundaries() const override
    {
        return {{0, false, Fp(0)},
                {1, false, Fp(1)},
                {1, true, expected}};
    }

  private:
    Fp expected;
};

std::vector<std::vector<Fp>>
fibonacciTrace(size_t rows)
{
    std::vector<std::vector<Fp>> cols(2, std::vector<Fp>(rows));
    Fp a(0), b(1);
    for (size_t i = 0; i < rows; ++i) {
        cols[0][i] = a;
        cols[1][i] = b;
        const Fp next = a + b;
        a = b;
        b = next;
    }
    return cols;
}

/** Cubing chain with a degree-3 transition: x' = x^3. */
class CubeAir : public StarkAir
{
  public:
    CubeAir(Fp first_, Fp last_) : first(first_), last(last_) {}

    size_t numColumns() const override { return 1; }
    size_t numConstraints() const override { return 1; }
    uint32_t constraintDegree() const override { return 3; }

    template <typename F>
    void
    evalT(const std::vector<F> &local, const std::vector<F> &next,
          std::vector<F> &out) const
    {
        out[0] = next[0] - local[0] * local[0] * local[0];
    }

    void
    evalTransition(const std::vector<Fp> &local,
                   const std::vector<Fp> &next,
                   std::vector<Fp> &out) const override
    {
        evalT(local, next, out);
    }

    void
    evalTransitionExt(const std::vector<Fp2> &local,
                      const std::vector<Fp2> &next,
                      std::vector<Fp2> &out) const override
    {
        evalT(local, next, out);
    }

    std::vector<BoundaryConstraint>
    boundaries() const override
    {
        return {{0, false, first}, {0, true, last}};
    }

  private:
    Fp first, last;
};

TEST(Stark, TraceCheckerAcceptsFibonacci)
{
    const auto trace = fibonacciTrace(64);
    FibonacciAir air(trace[1].back());
    EXPECT_TRUE(air.checkTrace(trace));
}

TEST(Stark, TraceCheckerRejectsBadTransition)
{
    auto trace = fibonacciTrace(64);
    FibonacciAir air(trace[1].back());
    trace[0][10] += Fp::one();
    EXPECT_FALSE(air.checkTrace(trace));
}

TEST(Stark, TraceCheckerRejectsBadBoundary)
{
    const auto trace = fibonacciTrace(64);
    FibonacciAir air(trace[1].back() + Fp::one());
    EXPECT_FALSE(air.checkTrace(trace));
}

TEST(Stark, FibonacciProofVerifies)
{
    const auto trace = fibonacciTrace(128);
    FibonacciAir air(trace[1].back());
    ProverContext ctx;
    FriConfig cfg = FriConfig::testing();
    cfg.blowupBits = 1; // Starky's blowup factor of 2
    cfg.numQueries = 12;
    const auto proof = starkProve(air, trace, cfg, ctx);
    EXPECT_EQ(proof.quotientChunks, 1u);
    EXPECT_TRUE(starkVerify(air, proof, cfg));
}

TEST(Stark, DegreeThreeConstraintVerifies)
{
    const size_t rows = 64;
    std::vector<std::vector<Fp>> trace(1, std::vector<Fp>(rows));
    Fp x(3);
    for (size_t i = 0; i < rows; ++i) {
        trace[0][i] = x;
        x = x * x * x;
    }
    CubeAir air(trace[0].front(), trace[0].back());
    ASSERT_TRUE(air.checkTrace(trace));

    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    const auto proof = starkProve(air, trace, cfg, ctx);
    EXPECT_EQ(proof.quotientChunks, 2u);
    EXPECT_TRUE(starkVerify(air, proof, cfg));
}

TEST(Stark, WrongClaimedOutputFailsAtProver)
{
    const auto trace = fibonacciTrace(64);
    FibonacciAir air(trace[1].back() + Fp::one());
    ProverContext ctx;
    EXPECT_DEATH(starkProve(air, trace, FriConfig::testing(), ctx),
                 "constraints");
}

TEST(Stark, TamperedOpeningFails)
{
    const auto trace = fibonacciTrace(128);
    FibonacciAir air(trace[1].back());
    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    auto proof = starkProve(air, trace, cfg, ctx);
    proof.openings[0][0] += Fp2::one();
    EXPECT_FALSE(starkVerify(air, proof, cfg));
}

TEST(Stark, TamperedTraceCapFails)
{
    const auto trace = fibonacciTrace(128);
    FibonacciAir air(trace[1].back());
    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    auto proof = starkProve(air, trace, cfg, ctx);
    proof.traceCap[0].elems[0] += Fp::one();
    EXPECT_FALSE(starkVerify(air, proof, cfg));
}

TEST(Stark, VerifierForDifferentStatementFails)
{
    // A proof for the true output must not verify against an AIR
    // claiming a different output.
    const auto trace = fibonacciTrace(128);
    FibonacciAir air(trace[1].back());
    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    const auto proof = starkProve(air, trace, cfg, ctx);
    FibonacciAir wrong(trace[1].back() + Fp::one());
    EXPECT_FALSE(starkVerify(wrong, proof, cfg));
}

TEST(Stark, StarkyBlowupProofIsLargerThanPlonkyBlowup)
{
    // Blowup 2 needs more queries -> larger proofs (the paper's noted
    // Starky trade-off: cheap proving, multi-MB proofs).
    const auto trace = fibonacciTrace(256);
    FibonacciAir air(trace[1].back());
    ProverContext ctx;

    FriConfig fast = FriConfig::testing(); // blowup 8
    fast.numQueries = 10;
    FriConfig cheap = FriConfig::testing();
    cheap.blowupBits = 1;
    cheap.numQueries = 30; // 3x queries for the same security
    const auto p_fast = starkProve(air, trace, fast, ctx);
    const auto p_cheap = starkProve(air, trace, cheap, ctx);
    EXPECT_GT(p_cheap.byteSize(), p_fast.byteSize());
}

TEST(Stark, RecordsTraceKernels)
{
    const auto trace = fibonacciTrace(128);
    FibonacciAir air(trace[1].back());
    TraceRecorder recorder;
    ProverContext ctx;
    ctx.recorder = &recorder;
    starkProve(air, trace, FriConfig::testing(), ctx);
    size_t merkles = 0;
    for (const auto &op : recorder.trace().ops)
        merkles += std::string(kernelPayloadName(op.payload)) == "merkle";
    EXPECT_GE(merkles, 2u); // trace + quotient + FRI layers
}

} // namespace
} // namespace unizk
