/**
 * @file
 * Tests for proof serialization: byte-level primitives, round trips
 * for every proof type (the round-tripped proof must still verify),
 * and robustness against truncated / corrupted / non-canonical input.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serialize/bytes.h"
#include "serialize/proof_io.h"
#include "workloads/apps.h"

namespace unizk {
namespace {

TEST(Bytes, U64RoundTrip)
{
    ByteWriter w;
    w.putU64(0);
    w.putU64(~0ULL);
    w.putU64(0x0123456789ABCDEFULL);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.getU64(), 0u);
    EXPECT_EQ(r.getU64(), ~0ULL);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFULL);
    EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, ReadPastEndFails)
{
    ByteWriter w;
    w.putU64(5);
    ByteReader r(w.bytes());
    r.getU64();
    r.getU64(); // past end
    EXPECT_FALSE(r.ok());
}

TEST(Bytes, NonCanonicalFieldElementRejected)
{
    ByteWriter w;
    w.putU64(Fp::modulus); // not a canonical residue
    ByteReader r(w.bytes());
    r.getFp();
    EXPECT_FALSE(r.ok());
}

TEST(Bytes, FailedReaderStaysFailed)
{
    std::vector<uint8_t> empty;
    ByteReader r(empty);
    r.getU64();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.getU64(), 0u);
    EXPECT_FALSE(r.exhausted());
}

TEST(Bytes, FpVectorBounded)
{
    ByteWriter w;
    w.putU64(1000); // claimed length far beyond limit
    ByteReader r(w.bytes());
    r.getFpVector(10);
    EXPECT_FALSE(r.ok());
}

TEST(Bytes, FpVectorLengthBoundedByRemainingBytes)
{
    // A length prefix within the structural limit but beyond the bytes
    // actually present must fail before sizing the vector -- this is
    // what stops a tiny input from forcing a huge allocation even when
    // the caller's structural bound is generous.
    ByteWriter w;
    w.putU64(uint64_t{1} << 28); // claims 2^28 elements, provides none
    ByteReader r(w.bytes());
    const auto v = r.getFpVector(uint64_t{1} << 28);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(v.empty());
}

TEST(Bytes, RemainingAndCanRead)
{
    ByteWriter w;
    w.putU64(1);
    w.putU64(2);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.remaining(), 16u);
    EXPECT_TRUE(r.canRead(2, 8));
    EXPECT_FALSE(r.canRead(3, 8));
    EXPECT_FALSE(r.canRead(uint64_t{1} << 60, 8)); // no overflow trap
    r.getU64();
    EXPECT_EQ(r.remaining(), 8u);
    r.getU64();
    r.getU64(); // fails
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_FALSE(r.canRead(1, 8));
}

/** Build a small verified Plonk proof once for the suite. */
struct PlonkProofFixture
{
    FriConfig cfg = FriConfig::testing();
    PlonkApp app = buildPlonkApp(AppId::Fibonacci, 64, 2);
    PlonkProvingKey key;
    PlonkProof proof;

    PlonkProofFixture()
    {
        ProverContext ctx;
        key = plonkSetup(app.circuit, cfg, ctx);
        proof = plonkProve(app.circuit, key, app.witnesses, cfg, ctx);
    }
};

TEST(ProofIo, PlonkRoundTripVerifies)
{
    PlonkProofFixture f;
    const auto bytes = serializePlonkProof(f.proof);
    EXPECT_GT(bytes.size(), 1000u);
    const auto back = deserializePlonkProof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(plonkVerify(f.key.constants->cap(), *back, f.cfg));
    // Re-serialization is byte-identical (canonical encoding).
    EXPECT_EQ(serializePlonkProof(*back), bytes);
}

TEST(ProofIo, PlonkTruncatedRejected)
{
    PlonkProofFixture f;
    auto bytes = serializePlonkProof(f.proof);
    for (const size_t keep :
         {size_t{0}, size_t{7}, bytes.size() / 2, bytes.size() - 1}) {
        std::vector<uint8_t> cut(
            bytes.begin(),
            bytes.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_FALSE(deserializePlonkProof(cut).has_value())
            << "kept " << keep;
    }
}

// ---- DoS regressions: crafted headers whose length prefixes claim
// enormous vectors must be rejected up front. Before the remaining-bytes
// bound, each of these forced the deserializer to resize() gigabytes
// from a few dozen input bytes.

TEST(ProofIo, HugeFinalPolyClaimRejected)
{
    ByteWriter w;
    w.putU64(0);                 // no layer caps
    w.putU64(uint64_t{1} << 28); // finalPoly claims 2^28 Fp2 = 4 GiB
    const auto bytes = w.take();
    EXPECT_LT(bytes.size(), 64u);
    EXPECT_FALSE(deserializeFriProof(bytes).has_value());
}

TEST(ProofIo, HugeCapClaimRejected)
{
    ByteWriter w;
    w.putU64(1);                 // one layer cap...
    w.putU64(uint64_t{1} << 16); // ...claiming 2^16 hashes = 2 MiB
    const auto bytes = w.take();
    EXPECT_LT(bytes.size(), 64u);
    EXPECT_FALSE(deserializeFriProof(bytes).has_value());
}

TEST(ProofIo, HugeOpeningsClaimRejected)
{
    ByteWriter w;
    w.putU64(16);                // rows
    w.putU64(1);                 // columns
    w.putU64(1);                 // quotient chunks
    w.putU64(0);                 // trace cap (empty)
    w.putU64(0);                 // quotient cap (empty)
    w.putU64(1);                 // one openings row...
    w.putU64(uint64_t{1} << 28); // ...claiming 2^28 Fp2 values
    const auto bytes = w.take();
    EXPECT_LT(bytes.size(), 64u);
    EXPECT_FALSE(deserializeStarkProof(bytes).has_value());
}

TEST(ProofIo, HugeQueryVectorClaimRejected)
{
    ByteWriter w;
    w.putU64(0);                 // no layer caps
    w.putU64(0);                 // empty final poly
    w.putU64(7);                 // pow nonce
    w.putU64(1);                 // one query round
    w.putU64(1);                 // one initial opening...
    w.putU64(uint64_t{1} << 28); // ...whose values claim 2^28 Fp
    const auto bytes = w.take();
    EXPECT_LT(bytes.size(), 80u);
    EXPECT_FALSE(deserializeFriProof(bytes).has_value());
}

TEST(ProofIo, HugeMerkleProofClaimRejected)
{
    ByteWriter w;
    w.putU64(0); // no layer caps
    w.putU64(0); // empty final poly
    w.putU64(7); // pow nonce
    w.putU64(1); // one query round
    w.putU64(1); // one initial opening
    w.putU64(0); // empty values vector
    w.putU64(64); // merkle proof claims 64 siblings, provides none
    const auto bytes = w.take();
    EXPECT_LT(bytes.size(), 80u);
    EXPECT_FALSE(deserializeFriProof(bytes).has_value());
}

TEST(ProofIo, HugePublicInputRowsClaimRejected)
{
    ByteWriter w;
    w.putU64(64);   // rows
    w.putU64(2);    // repetitions
    w.putU64(4096); // public-input rows claimed, none present
    const auto bytes = w.take();
    EXPECT_LT(bytes.size(), 64u);
    EXPECT_FALSE(deserializePlonkProof(bytes).has_value());
}

TEST(ProofIo, TruncatedSumcheckRoundsRejected)
{
    ByteWriter w;
    w.putFp(Fp(1)); // claimed sum
    w.putU64(64);   // claims 64 rounds, provides none
    const auto bytes = w.take();
    EXPECT_FALSE(deserializeSumcheckProof(bytes).has_value());
}

TEST(ProofIo, PlonkTrailingGarbageRejected)
{
    PlonkProofFixture f;
    auto bytes = serializePlonkProof(f.proof);
    bytes.push_back(0);
    EXPECT_FALSE(deserializePlonkProof(bytes).has_value());
}

TEST(ProofIo, PlonkCorruptedEitherRejectedOrFailsVerify)
{
    PlonkProofFixture f;
    const auto bytes = serializePlonkProof(f.proof);
    SplitMix64 rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        auto bad = bytes;
        bad[rng.nextBelow(bad.size())] ^=
            static_cast<uint8_t>(1 + rng.nextBelow(255));
        const auto back = deserializePlonkProof(bad);
        if (back.has_value()) {
            EXPECT_FALSE(
                plonkVerify(f.key.constants->cap(), *back, f.cfg))
                << "trial " << trial;
        }
    }
}

TEST(ProofIo, StarkRoundTripVerifies)
{
    FriConfig cfg = FriConfig::testing();
    cfg.blowupBits = 1;
    cfg.numQueries = 10;
    const StarkApp app = buildStarkApp(AppId::Fibonacci, 128);
    ProverContext ctx;
    const StarkProof proof = starkProve(*app.air, app.trace, cfg, ctx);

    const auto bytes = serializeStarkProof(proof);
    const auto back = deserializeStarkProof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(starkVerify(*app.air, *back, cfg));
    EXPECT_EQ(serializeStarkProof(*back), bytes);
}

TEST(ProofIo, StarkTruncatedRejected)
{
    FriConfig cfg = FriConfig::testing();
    const StarkApp app = buildStarkApp(AppId::Factorial, 64);
    ProverContext ctx;
    const StarkProof proof = starkProve(*app.air, app.trace, cfg, ctx);
    auto bytes = serializeStarkProof(proof);
    bytes.resize(bytes.size() / 3);
    EXPECT_FALSE(deserializeStarkProof(bytes).has_value());
}

TEST(ProofIo, FriRoundTrip)
{
    PlonkProofFixture f;
    const auto bytes = serializeFriProof(f.proof.fri);
    const auto back = deserializeFriProof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(serializeFriProof(*back), bytes);
    EXPECT_EQ(back->powNonce, f.proof.fri.powNonce);
    EXPECT_EQ(back->finalPoly.size(), f.proof.fri.finalPoly.size());
    EXPECT_EQ(back->queries.size(), f.proof.fri.queries.size());
}

TEST(ProofIo, SumcheckRoundTripVerifies)
{
    SplitMix64 rng(3);
    std::vector<Fp> table(1 << 6);
    for (auto &x : table)
        x = randomFp(rng);
    Challenger ch;
    const SumcheckProof proof = sumcheckProve(table, ch);

    const auto bytes = serializeSumcheckProof(proof);
    const auto back = deserializeSumcheckProof(bytes);
    ASSERT_TRUE(back.has_value());
    Challenger vch;
    EXPECT_TRUE(sumcheckVerify(*back, 6, vch));
    EXPECT_EQ(serializeSumcheckProof(*back), bytes);
}

TEST(ProofIo, SumcheckGarbageRejected)
{
    std::vector<uint8_t> garbage(100, 0xFF);
    EXPECT_FALSE(deserializeSumcheckProof(garbage).has_value());
}

TEST(ProofIo, SerializedSizeTracksByteSizeEstimate)
{
    // The analytic byteSize() used for Table 5 must be close to the
    // real wire size (within the length-prefix overhead).
    PlonkProofFixture f;
    const auto bytes = serializePlonkProof(f.proof);
    const double ratio = static_cast<double>(bytes.size()) /
                         static_cast<double>(f.proof.byteSize());
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.5);
}

} // namespace
} // namespace unizk
