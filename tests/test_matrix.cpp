/**
 * @file
 * Tests for the dense field-matrix algebra used by the Poseidon linear
 * layer factorization.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/matrix.h"

namespace unizk {
namespace {

FpMatrix
randomMatrix(size_t n, uint64_t seed)
{
    SplitMix64 rng(seed);
    FpMatrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            m.at(i, j) = randomFp(rng);
    return m;
}

TEST(Matrix, IdentityMultiplication)
{
    const auto m = randomMatrix(5, 1);
    const auto id = FpMatrix::identity(5);
    EXPECT_EQ(m.mul(id), m);
    EXPECT_EQ(id.mul(m), m);
}

TEST(Matrix, AssociativeMultiplication)
{
    const auto a = randomMatrix(4, 2);
    const auto b = randomMatrix(4, 3);
    const auto c = randomMatrix(4, 4);
    EXPECT_EQ(a.mul(b).mul(c), a.mul(b.mul(c)));
}

TEST(Matrix, InverseRoundTrip)
{
    const auto m = randomMatrix(8, 5);
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(m.mul(*inv), FpMatrix::identity(8));
    EXPECT_EQ(inv->mul(m), FpMatrix::identity(8));
}

TEST(Matrix, SingularHasNoInverse)
{
    FpMatrix m(3, 3);
    // Rank-1 matrix.
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            m.at(i, j) = Fp((i + 1) * (j + 1));
    EXPECT_FALSE(m.inverse().has_value());
    EXPECT_TRUE(m.determinant().isZero());
}

TEST(Matrix, DeterminantMultiplicative)
{
    const auto a = randomMatrix(5, 7);
    const auto b = randomMatrix(5, 8);
    EXPECT_EQ(a.mul(b).determinant(), a.determinant() * b.determinant());
}

TEST(Matrix, DeterminantOfIdentity)
{
    EXPECT_EQ(FpMatrix::identity(6).determinant(), Fp::one());
}

TEST(Matrix, MulVectorMatchesManual)
{
    FpMatrix m(2, 3);
    m.at(0, 0) = Fp(1);
    m.at(0, 1) = Fp(2);
    m.at(0, 2) = Fp(3);
    m.at(1, 0) = Fp(4);
    m.at(1, 1) = Fp(5);
    m.at(1, 2) = Fp(6);
    const std::vector<Fp> v{Fp(7), Fp(8), Fp(9)};
    const auto out = m.mulVector(v);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], Fp(1 * 7 + 2 * 8 + 3 * 9));
    EXPECT_EQ(out[1], Fp(4 * 7 + 5 * 8 + 6 * 9));
}

TEST(Matrix, VecMulIsTransposeOfMulVector)
{
    const auto m = randomMatrix(6, 11);
    SplitMix64 rng(12);
    std::vector<Fp> v(6);
    for (auto &x : v)
        x = randomFp(rng);
    EXPECT_EQ(m.vecMul(v), m.transposed().mulVector(v));
}

TEST(Matrix, TransposeInvolution)
{
    const auto m = randomMatrix(7, 13);
    EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, MinorRemovesRowCol)
{
    const auto m = randomMatrix(4, 17);
    const auto sub = m.minorMatrix(1, 2);
    EXPECT_EQ(sub.rows(), 3u);
    EXPECT_EQ(sub.cols(), 3u);
    EXPECT_EQ(sub.at(0, 0), m.at(0, 0));
    EXPECT_EQ(sub.at(1, 0), m.at(2, 0));
    EXPECT_EQ(sub.at(1, 2), m.at(2, 3));
}

TEST(Matrix, CauchyMatrixIsMds)
{
    // Cauchy matrix 1/(x_i + y_j) with distinct x, y is MDS.
    const size_t n = 4;
    FpMatrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            m.at(i, j) = Fp(i + n + j + 1).inverse();
    EXPECT_TRUE(m.isMds());
}

TEST(Matrix, MatrixWithZeroEntryIsNotMds)
{
    auto m = randomMatrix(4, 19);
    m.at(2, 2) = Fp::zero(); // 1x1 minor vanishes
    EXPECT_FALSE(m.isMds());
}

} // namespace
} // namespace unizk
