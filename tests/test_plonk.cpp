/**
 * @file
 * Tests for the circuit builder and the Plonk prover/verifier:
 * witness generation, permutation construction, honest round trips
 * (including multi-repetition proofs), and rejection of invalid proofs.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "plonk/plonk.h"

namespace unizk {
namespace {

/** The paper's running example: (x0 + x1) * (x2 * x3) = 99. */
CircuitBuilder
paperExampleBuilder()
{
    CircuitBuilder b;
    const Var x0 = b.input();
    const Var x1 = b.input();
    const Var x2 = b.input();
    const Var x3 = b.input();
    const Var x4 = b.add(x0, x1);
    const Var x5 = b.mul(x2, x3);
    const Var x6 = b.mul(x4, x5);
    b.assertConstant(x6, Fp(99));
    return b;
}

TEST(Circuit, PaperExampleWitness)
{
    const Circuit c = paperExampleBuilder().build();
    EXPECT_EQ(c.rows(), 4u);
    EXPECT_EQ(c.inputCount(), 4u);
    // (1 + 2) * (3 * 11) = 99
    const auto wires =
        c.fillWitness({Fp(1), Fp(2), Fp(3), Fp(11)});
    EXPECT_TRUE(c.checkWitness(wires));
}

TEST(Circuit, UnsatisfiableWitnessDies)
{
    const Circuit c = paperExampleBuilder().build();
    EXPECT_DEATH(c.fillWitness({Fp(1), Fp(2), Fp(3), Fp(4)}),
                 "constraint");
}

TEST(Circuit, ArithmeticGates)
{
    CircuitBuilder b;
    const Var x = b.input();
    const Var y = b.input();
    const Var s = b.sub(x, y);
    const Var l = b.linear(Fp(3), x, Fp(5), y, Fp(7));
    const Var m = b.mulAdd(x, y, s);
    b.assertConstant(s, Fp(6));       // 10 - 4
    b.assertConstant(l, Fp(57));      // 3*10 + 5*4 + 7
    b.assertConstant(m, Fp(46));      // 10*4 + 6
    const Circuit c = b.build();
    const auto wires = c.fillWitness({Fp(10), Fp(4)});
    EXPECT_TRUE(c.checkWitness(wires));
}

TEST(Circuit, AssertEqualGate)
{
    CircuitBuilder b;
    const Var x = b.input();
    const Var y = b.input();
    b.assertEqual(x, y);
    const Circuit c = b.build();
    EXPECT_TRUE(c.checkWitness(c.fillWitness({Fp(5), Fp(5)})));
    EXPECT_DEATH(c.fillWitness({Fp(5), Fp(6)}), "constraint");
}

TEST(Circuit, PermutationIsBijective)
{
    CircuitBuilder b;
    const Var x = b.input();
    Var acc = b.mul(x, x);
    for (int i = 0; i < 10; ++i)
        acc = b.mul(acc, x);
    const Circuit c = b.build();
    const auto &sigma = c.permutation();
    std::vector<bool> seen(sigma.size(), false);
    for (const size_t target : sigma) {
        ASSERT_LT(target, sigma.size());
        EXPECT_FALSE(seen[target]);
        seen[target] = true;
    }
}

TEST(Circuit, PadsToPowerOfTwo)
{
    CircuitBuilder b;
    const Var x = b.input();
    Var acc = x;
    for (int i = 0; i < 5; ++i)
        acc = b.add(acc, x);
    const Circuit c = b.build();
    EXPECT_EQ(c.rows(), 8u);
    // Padding rows are trivially satisfied.
    EXPECT_TRUE(c.checkWitness(c.fillWitness({Fp(3)})));
}

/** A slightly larger circuit: prove knowledge of x with x^8 + x = y. */
CircuitBuilder
powerBuilder()
{
    CircuitBuilder b;
    const Var x = b.input();
    const Var y = b.input();
    Var p = x;
    for (int i = 0; i < 3; ++i)
        p = b.mul(p, p);
    const Var sum = b.add(p, x);
    b.assertEqual(sum, y);
    return b;
}

struct PlonkFixture
{
    Circuit circuit;
    PlonkProvingKey key;
    FriConfig cfg;
    std::vector<std::vector<Fp>> inputs;
    PlonkProof proof;

    PlonkFixture(size_t reps, FriConfig config = FriConfig::testing())
        : circuit(powerBuilder().build(16)), cfg(config)
    {
        ProverContext ctx;
        key = plonkSetup(circuit, cfg, ctx);
        SplitMix64 rng(42);
        for (size_t r = 0; r < reps; ++r) {
            const Fp x = randomFp(rng);
            const Fp y = x.pow(8) + x;
            inputs.push_back({x, y});
        }
        proof = plonkProve(circuit, key, inputs, cfg, ctx);
    }
};

TEST(Plonk, HonestProofVerifies)
{
    PlonkFixture f(1);
    EXPECT_TRUE(plonkVerify(f.key.constants->cap(), f.proof, f.cfg));
}

TEST(Plonk, MultiRepetitionProofVerifies)
{
    PlonkFixture f(5);
    EXPECT_EQ(f.proof.repetitions, 5u);
    EXPECT_TRUE(plonkVerify(f.key.constants->cap(), f.proof, f.cfg));
}

TEST(Plonk, PaperExampleProofVerifies)
{
    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    const Circuit c = paperExampleBuilder().build(16);
    const auto key = plonkSetup(c, cfg, ctx);
    const auto proof =
        plonkProve(c, key, {{Fp(1), Fp(2), Fp(3), Fp(11)}}, cfg, ctx);
    EXPECT_TRUE(plonkVerify(key.constants->cap(), proof, cfg));
}

TEST(Plonk, TamperedOpeningFails)
{
    PlonkFixture f(2);
    auto bad = f.proof;
    bad.openings[0][9] += Fp2::one();
    EXPECT_FALSE(plonkVerify(f.key.constants->cap(), bad, f.cfg));
}

TEST(Plonk, TamperedWiresCapFails)
{
    PlonkFixture f(1);
    auto bad = f.proof;
    bad.wiresCap[0].elems[0] += Fp::one();
    EXPECT_FALSE(plonkVerify(f.key.constants->cap(), bad, f.cfg));
}

TEST(Plonk, WrongConstantsCapFails)
{
    PlonkFixture f(1);
    auto cap = f.key.constants->cap();
    cap[0].elems[1] += Fp::one();
    EXPECT_FALSE(plonkVerify(cap, f.proof, f.cfg));
}

TEST(Plonk, TamperedQuotientOpeningFails)
{
    PlonkFixture f(1);
    auto bad = f.proof;
    // Last flattened polys are the quotient chunks.
    bad.openings[0].back() += Fp2::one();
    EXPECT_FALSE(plonkVerify(f.key.constants->cap(), bad, f.cfg));
}

TEST(Plonk, ProofSizeReported)
{
    PlonkFixture f(1);
    EXPECT_GT(f.proof.byteSize(), 1000u);
}

TEST(Plonk, TraceRecordsExpectedKernelMix)
{
    TraceRecorder recorder;
    KernelTimeBreakdown breakdown;
    ProverContext ctx;
    ctx.recorder = &recorder;
    ctx.breakdown = &breakdown;

    const FriConfig cfg = FriConfig::testing();
    const Circuit c = powerBuilder().build(64);
    const auto key = plonkSetup(c, cfg, ctx);
    SplitMix64 rng(1);
    const Fp x = randomFp(rng);
    plonkProve(c, key, {{x, x.pow(8) + x}}, cfg, ctx);

    size_t ntts = 0, merkles = 0, vecops = 0, pps = 0, hashes = 0;
    for (const auto &op : recorder.trace().ops) {
        const std::string name = kernelPayloadName(op.payload);
        ntts += name == "ntt";
        merkles += name == "merkle";
        vecops += name == "vecop";
        pps += name == "partial_product";
        hashes += name == "hash";
    }
    EXPECT_GE(ntts, 6u);    // per-batch iNTT+LDE, quotient LDEs + iNTT
    EXPECT_GE(merkles, 4u); // constants, wires, Z, quotient, FRI layers
    EXPECT_GE(vecops, 3u);
    EXPECT_EQ(pps, 1u);
    EXPECT_GE(hashes, 1u);
    EXPECT_GT(breakdown.total(), 0.0);
}

/** Circuit with a public output: prove y = x^4 + 7 for public y. */
struct PublicInputFixture
{
    Circuit circuit;
    PlonkProvingKey key;
    FriConfig cfg = FriConfig::testing();
    PlonkProof proof;
    Fp public_y;

    PublicInputFixture()
    {
        CircuitBuilder b;
        const Var x = b.input();
        const Var y = b.publicInput();
        const Var x2 = b.mul(x, x);
        const Var x4 = b.mul(x2, x2);
        const Var sum = b.linear(Fp::one(), x4, Fp::zero(), x4, Fp(7));
        b.assertEqual(sum, y);
        circuit = b.build(16);

        ProverContext ctx;
        key = plonkSetup(circuit, cfg, ctx);
        const Fp x_val(5);
        public_y = x_val.pow(4) + Fp(7);
        proof = plonkProve(circuit, key, {{x_val, public_y}}, cfg, ctx);
    }
};

TEST(PlonkPublicInputs, ProofCarriesPublicValues)
{
    PublicInputFixture f;
    ASSERT_EQ(f.proof.publicInputs.size(), 1u);
    ASSERT_EQ(f.proof.publicInputs[0].size(), 1u);
    EXPECT_EQ(f.proof.publicInputs[0][0], f.public_y);
}

TEST(PlonkPublicInputs, VerifiesWithPublicRows)
{
    PublicInputFixture f;
    EXPECT_TRUE(plonkVerify(f.key.constants->cap(), f.proof, f.cfg,
                            f.circuit.publicRows()));
}

TEST(PlonkPublicInputs, TamperedPublicValueFails)
{
    PublicInputFixture f;
    auto bad = f.proof;
    bad.publicInputs[0][0] += Fp::one();
    EXPECT_FALSE(plonkVerify(f.key.constants->cap(), bad, f.cfg,
                             f.circuit.publicRows()));
}

TEST(PlonkPublicInputs, MissingPublicRowsFails)
{
    // A verifier unaware of the public rows must not accept: the
    // claimed publics then disagree with the transcript/PI polynomial.
    PublicInputFixture f;
    EXPECT_FALSE(plonkVerify(f.key.constants->cap(), f.proof, f.cfg,
                             /*public_rows=*/{}));
}

TEST(PlonkPublicInputs, WrongPublicCountRejected)
{
    PublicInputFixture f;
    auto bad = f.proof;
    bad.publicInputs[0].push_back(Fp(1));
    EXPECT_FALSE(plonkVerify(f.key.constants->cap(), bad, f.cfg,
                             f.circuit.publicRows()));
}

TEST(PlonkPublicInputs, MultiRepetitionDistinctPublics)
{
    CircuitBuilder b;
    const Var x = b.input();
    const Var y = b.publicInput();
    b.assertEqual(b.mul(x, x), y);
    const Circuit c = b.build(16);

    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    const auto key = plonkSetup(c, cfg, ctx);
    const auto proof = plonkProve(
        c, key, {{Fp(3), Fp(9)}, {Fp(4), Fp(16)}}, cfg, ctx);
    ASSERT_EQ(proof.publicInputs.size(), 2u);
    EXPECT_EQ(proof.publicInputs[0][0], Fp(9));
    EXPECT_EQ(proof.publicInputs[1][0], Fp(16));
    EXPECT_TRUE(plonkVerify(key.constants->cap(), proof, cfg,
                            c.publicRows()));
}

TEST(PlonkPublicInputs, UnsatisfiedPublicBindingCaughtAtProver)
{
    CircuitBuilder b;
    const Var x = b.input();
    const Var y = b.publicInput();
    b.assertEqual(b.mul(x, x), y);
    const Circuit c = b.build(16);
    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    const auto key = plonkSetup(c, cfg, ctx);
    // y != x^2: the equality gate fails during witness filling.
    EXPECT_DEATH(plonkProve(c, key, {{Fp(3), Fp(10)}}, cfg, ctx),
                 "constraint");
}

} // namespace
} // namespace unizk
