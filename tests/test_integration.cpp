/**
 * @file
 * Cross-module integration tests: determinism of proofs and traces,
 * production-parameter round trips, the Starky-base + Plonky2-recursion
 * combination, simulator invariants across hardware configurations,
 * and end-to-end byte-level proof exchange.
 */

#include <gtest/gtest.h>

#include "model/area_power.h"
#include "model/gpu_model.h"
#include "serialize/proof_io.h"
#include "unizk/pipeline.h"

namespace unizk {
namespace {

TEST(Integration, ProofsAreDeterministic)
{
    const FriConfig cfg = FriConfig::testing();
    ProverContext ctx;
    const PlonkApp app = buildPlonkApp(AppId::Ecdsa, 128, 2);
    const auto key = plonkSetup(app.circuit, cfg, ctx);
    const auto p1 = plonkProve(app.circuit, key, app.witnesses, cfg, ctx);
    const auto p2 = plonkProve(app.circuit, key, app.witnesses, cfg, ctx);
    EXPECT_EQ(serializePlonkProof(p1), serializePlonkProof(p2));
}

TEST(Integration, TracesAreDeterministic)
{
    const FriConfig cfg = FriConfig::testing();
    auto run = [&](TraceRecorder &rec) {
        ProverContext ctx;
        ctx.recorder = &rec;
        const PlonkApp app = buildPlonkApp(AppId::Mvm, 128, 3);
        const auto key = plonkSetup(app.circuit, cfg, ctx);
        plonkProve(app.circuit, key, app.witnesses, cfg, ctx);
    };
    TraceRecorder r1, r2;
    run(r1);
    run(r2);
    ASSERT_EQ(r1.trace().size(), r2.trace().size());
    for (size_t i = 0; i < r1.trace().size(); ++i) {
        EXPECT_STREQ(kernelPayloadName(r1.trace().ops[i].payload),
                     kernelPayloadName(r2.trace().ops[i].payload));
        EXPECT_EQ(r1.trace().ops[i].label, r2.trace().ops[i].label);
    }
}

TEST(Integration, DifferentWitnessesSameTraceShape)
{
    // The accelerator schedule is static (Sec. 5.5): it may not depend
    // on witness values, only on the circuit shape.
    const FriConfig cfg = FriConfig::testing();
    auto run = [&](uint64_t seed, TraceRecorder &rec) {
        ProverContext ctx;
        ctx.recorder = &rec;
        const PlonkApp app = buildPlonkApp(AppId::Sha256, 128, 2, seed);
        const auto key = plonkSetup(app.circuit, cfg, ctx);
        plonkProve(app.circuit, key, app.witnesses, cfg, ctx);
    };
    TraceRecorder r1, r2;
    run(1, r1);
    run(999, r2);
    ASSERT_EQ(r1.trace().size(), r2.trace().size());
    // PoW nonces differ, so hash kernel counts may differ; everything
    // else must match exactly.
    for (size_t i = 0; i < r1.trace().size(); ++i) {
        EXPECT_STREQ(kernelPayloadName(r1.trace().ops[i].payload),
                     kernelPayloadName(r2.trace().ops[i].payload));
    }
}

TEST(Integration, ProductionParametersRoundTrip)
{
    // Full Plonky2-grade FRI parameters (blowup 8, 28 queries), small
    // circuit: the complete prove -> serialize -> deserialize -> verify
    // chain with 100-bit-style settings.
    FriConfig cfg = FriConfig::plonky2();
    cfg.powBits = 8; // keep grinding out of unit-test time
    ProverContext ctx;
    const PlonkApp app = buildPlonkApp(AppId::Fibonacci, 64, 2);
    const auto key = plonkSetup(app.circuit, cfg, ctx);
    const auto proof =
        plonkProve(app.circuit, key, app.witnesses, cfg, ctx);
    const auto back = deserializePlonkProof(serializePlonkProof(proof));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(plonkVerify(key.constants->cap(), *back, cfg));
}

TEST(Integration, StarkyBasePlusRecursiveAggregation)
{
    // The Table 5 pipeline end to end: Starky base proof (blowup 2)
    // verified, then a Plonky2 recursion-shaped proof verified.
    FriConfig starky_cfg = FriConfig::testing();
    starky_cfg.blowupBits = 1;
    starky_cfg.numQueries = 10;
    const AppRunResult base = runStarkyApp(
        AppId::Factorial, 128, starky_cfg,
        HardwareConfig::paperDefault());
    EXPECT_TRUE(base.verified);

    const FriConfig plonky_cfg = FriConfig::testing();
    const AppRunResult rec = runPlonky2App(
        AppId::Recursion, 256, 4, plonky_cfg,
        HardwareConfig::paperDefault());
    EXPECT_TRUE(rec.verified);

    // Aggregation compresses: the recursive proof must be smaller than
    // a Starky proof at matched security/query settings would be at
    // scale; at this tiny scale we just check both exist and the
    // recursive one is bounded.
    EXPECT_GT(base.proofBytes, 0u);
    EXPECT_GT(rec.proofBytes, 0u);
}

TEST(Integration, SimCyclesGrowWithWorkload)
{
    const FriConfig cfg = FriConfig::testing();
    const HardwareConfig hw = HardwareConfig::paperDefault();
    const AppRunResult small =
        runPlonky2App(AppId::Factorial, 128, 2, cfg, hw, false);
    const AppRunResult large =
        runPlonky2App(AppId::Factorial, 512, 2, cfg, hw, false);
    EXPECT_GT(large.sim.totalCycles, small.sim.totalCycles);
    const AppRunResult wide =
        runPlonky2App(AppId::Factorial, 128, 8, cfg, hw, false);
    EXPECT_GT(wide.sim.totalCycles, small.sim.totalCycles);
}

class HwConfigs : public ::testing::TestWithParam<HardwareConfig>
{};

TEST_P(HwConfigs, SimulatorInvariants)
{
    const HardwareConfig hw = GetParam();
    const FriConfig cfg = FriConfig::testing();
    const AppRunResult r =
        runPlonky2App(AppId::Fibonacci, 128, 2, cfg, hw, false);
    EXPECT_GT(r.sim.totalCycles, 0u);
    uint64_t class_sum = 0;
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        class_sum += r.sim.classStats(c).cycles;
        EXPECT_GE(r.sim.memUtilization(c), 0.0);
        EXPECT_LE(r.sim.memUtilization(c), 1.0);
        EXPECT_GE(r.sim.vsaUtilization(c), 0.0);
        EXPECT_LE(r.sim.vsaUtilization(c), 1.0);
    }
    EXPECT_EQ(class_sum, r.sim.totalCycles);
    EXPECT_GT(r.sim.totalReadRequests(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, HwConfigs,
    ::testing::Values(
        HardwareConfig::paperDefault(),
        [] {
            HardwareConfig hw;
            hw.numVsas = 8;
            hw.scratchpadBytes = 2ull << 20;
            return hw;
        }(),
        [] {
            HardwareConfig hw;
            hw.numVsas = 128;
            hw.memBandwidthScale = 4.0;
            return hw;
        }(),
        [] {
            HardwareConfig hw;
            hw.enableReverseLinks = false;
            hw.enableTransposeBuffer = false;
            hw.splitNttPipelines = false;
            hw.groupedPartialProducts = false;
            return hw;
        }()));

TEST(Integration, AblationsOnlySlowDown)
{
    const FriConfig cfg = FriConfig::testing();
    const AppRunResult base = runPlonky2App(
        AppId::Factorial, 256, 4, cfg, HardwareConfig::paperDefault(),
        false);
    for (int feature = 0; feature < 4; ++feature) {
        HardwareConfig hw = HardwareConfig::paperDefault();
        switch (feature) {
          case 0:
            hw.enableReverseLinks = false;
            break;
          case 1:
            hw.enableTransposeBuffer = false;
            break;
          case 2:
            hw.splitNttPipelines = false;
            break;
          case 3:
            hw.groupedPartialProducts = false;
            break;
        }
        const SimReport r = simulateTrace(base.trace, hw);
        EXPECT_GE(r.totalCycles, base.sim.totalCycles)
            << "feature " << feature;
    }
}

TEST(Integration, GpuModelSlowerThanUniZkFasterThanCpu)
{
    const FriConfig cfg = FriConfig::testing();
    const AppRunResult r = runPlonky2App(
        AppId::Sha256, 512, 8, cfg, HardwareConfig::paperDefault(),
        false);
    const GpuEstimate gpu = estimateGpuTime(r.cpuBreakdown, r.trace, {});
    EXPECT_LT(gpu.totalSeconds, r.cpuSeconds);
    EXPECT_GT(gpu.totalSeconds, r.sim.seconds());
}

TEST(Integration, AreaPowerScalesAcrossDseConfigs)
{
    // Every Figure-10 sweep point must have a consistent cost model.
    for (const uint32_t vsas : {8u, 16u, 32u, 64u, 128u}) {
        HardwareConfig hw = HardwareConfig::paperDefault();
        hw.numVsas = vsas;
        const ChipCost cost = estimateChipCost(hw, 2);
        EXPECT_GT(cost.totalAreaMm2(), 30.0);
        EXPECT_GT(cost.totalPowerW(), 30.0);
    }
}

} // namespace
} // namespace unizk
