/**
 * @file
 * Tests for the unizkd proving service: wire-protocol encode/decode
 * totality (unknown tags, truncated and oversized frames, trailing
 * bytes), frame I/O against real sockets, admission control, graceful
 * shutdown, and byte-identity of served proofs vs the direct pipeline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/stats.h"
#include "serialize/bytes.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket_io.h"
#include "unizk/pipeline.h"

namespace unizk {
namespace service {
namespace {

/** Per-process socket path so parallel ctest runs cannot collide. */
std::string
testSocketPath(const char *tag)
{
    return "/tmp/unizk_test_" + std::to_string(::getpid()) + "_" +
           tag + ".sock";
}

ProveRequest
smallRequest()
{
    ProveRequest req;
    req.protocol = WireProtocol::Plonky2;
    req.app = AppId::Factorial;
    req.rows = 64;
    req.reps = 1;
    req.fast = true;
    req.verify = true;
    return req;
}

// ---------------------------------------------------------------------
// Protocol encode/decode round trips.

TEST(Protocol, ProveRequestRoundTrip)
{
    ProveRequest req;
    req.protocol = WireProtocol::Starky;
    req.app = AppId::Sha256;
    req.rows = 1024;
    req.reps = 0;
    req.fast = false;
    req.verify = true;
    const auto frame = decodeRequest(encodeProveRequest(req));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->tag, Tag::Prove);
    EXPECT_EQ(frame->prove.protocol, WireProtocol::Starky);
    EXPECT_EQ(frame->prove.app, AppId::Sha256);
    EXPECT_EQ(frame->prove.rows, 1024u);
    EXPECT_EQ(frame->prove.reps, 0u);
    EXPECT_FALSE(frame->prove.fast);
    EXPECT_TRUE(frame->prove.verify);
}

TEST(Protocol, ControlFramesRoundTrip)
{
    auto ping = decodeRequest(encodePing());
    ASSERT_TRUE(ping.has_value());
    EXPECT_EQ(ping->tag, Tag::Ping);

    auto shutdown = decodeRequest(encodeShutdown());
    ASSERT_TRUE(shutdown.has_value());
    EXPECT_EQ(shutdown->tag, Tag::Shutdown);

    auto pong = decodeResponse(encodePong());
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->tag, Tag::Pong);

    auto ack = decodeResponse(encodeShutdownAck());
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->tag, Tag::ShutdownAck);
}

TEST(Protocol, ProveResponseRoundTrip)
{
    ProveResponse resp;
    resp.verified = true;
    resp.latencyNs = 123456789;
    resp.queueDepth = 3;
    resp.proof = {1, 2, 3, 4, 5};
    const auto frame = decodeResponse(encodeProveResponse(resp));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->tag, Tag::ProveOk);
    EXPECT_TRUE(frame->prove.verified);
    EXPECT_EQ(frame->prove.latencyNs, 123456789u);
    EXPECT_EQ(frame->prove.queueDepth, 3u);
    EXPECT_EQ(frame->prove.proof, resp.proof);
}

TEST(Protocol, ErrorRoundTrip)
{
    const auto frame = decodeResponse(
        encodeError(ErrorCode::QueueFull, "job queue at capacity"));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->tag, Tag::Error);
    EXPECT_EQ(frame->error.code, ErrorCode::QueueFull);
    EXPECT_EQ(frame->error.message, "job queue at capacity");
    EXPECT_STREQ(errorCodeName(frame->error.code), "queue-full");
}

TEST(Protocol, RejectsUnknownTags)
{
    ByteWriter w;
    w.putU64(999);
    EXPECT_FALSE(decodeRequest(w.take()).has_value());
    ByteWriter w2;
    w2.putU64(999);
    EXPECT_FALSE(decodeResponse(w2.take()).has_value());
    // A response tag is not a valid request and vice versa.
    EXPECT_FALSE(decodeRequest(encodePong()).has_value());
    EXPECT_FALSE(decodeResponse(encodePing()).has_value());
}

TEST(Protocol, RejectsTruncatedAndTrailingBytes)
{
    const auto full = encodeProveRequest(smallRequest());
    for (size_t cut = 1; cut < full.size(); ++cut) {
        const std::vector<uint8_t> prefix(full.begin(),
                                          full.begin() +
                                              static_cast<long>(cut));
        EXPECT_FALSE(decodeRequest(prefix).has_value())
            << "cut=" << cut;
    }
    auto padded = full;
    padded.push_back(0);
    EXPECT_FALSE(decodeRequest(padded).has_value());
    EXPECT_FALSE(decodeRequest({}).has_value());
}

TEST(Protocol, RejectsOutOfRangeFields)
{
    auto req = smallRequest();
    req.rows = kMaxRequestRows + 1;
    EXPECT_FALSE(decodeRequest(encodeProveRequest(req)).has_value());

    req = smallRequest();
    req.reps = kMaxRequestReps + 1;
    EXPECT_FALSE(decodeRequest(encodeProveRequest(req)).has_value());

    // Starky request for an app without a Starky implementation.
    req = smallRequest();
    req.protocol = WireProtocol::Starky;
    req.app = AppId::Ecdsa;
    EXPECT_FALSE(decodeRequest(encodeProveRequest(req)).has_value());

    // Out-of-range protocol and app enums, encoded by hand.
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Prove));
    w.putU64(7); // no such protocol
    w.putU64(0);
    w.putU64(64);
    w.putU64(1);
    w.putU64(3);
    EXPECT_FALSE(decodeRequest(w.take()).has_value());
}

TEST(Protocol, ErrorMessageLengthClaimIsBounded)
{
    // An error frame whose message *claims* to be huge but carries no
    // bytes must be rejected by the canRead bound, not trusted.
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Error));
    w.putU64(static_cast<uint64_t>(ErrorCode::BadFrame));
    w.putU64(uint64_t{1} << 40); // length claim with no payload
    EXPECT_FALSE(decodeResponse(w.take()).has_value());
}

// ---------------------------------------------------------------------
// Versioned prove frames and the stats window frame.

TEST(ProtocolV2, TracedProveRequestRoundTrip)
{
    ProveRequest req = smallRequest();
    req.traceId = 77;
    const auto bytes = encodeProveRequest(req);
    // The V2 tag goes on the wire, but decode normalizes so server
    // dispatch stays version-blind.
    ByteReader peek(bytes);
    EXPECT_EQ(peek.getU64(), static_cast<uint64_t>(Tag::ProveV2));
    const auto frame = decodeRequest(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->tag, Tag::Prove);
    EXPECT_EQ(frame->prove.traceId, 77u);
    EXPECT_EQ(frame->prove.rows, 64u);
}

TEST(ProtocolV2, UntracedProveRequestKeepsFrozenV1Layout)
{
    // Byte-layout pin: a traceId of 0 must produce exactly the v1
    // frame, so a v2 client keeps working against a v1 server.
    const ProveRequest req = smallRequest();
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Prove));
    w.putU64(static_cast<uint64_t>(req.protocol));
    w.putU64(static_cast<uint64_t>(req.app));
    w.putU64(req.rows);
    w.putU64(req.reps);
    w.putU64(3); // fast | verify
    EXPECT_EQ(encodeProveRequest(req), w.take());
}

TEST(ProtocolV2, ProveV2WithZeroTraceIdRejected)
{
    // traceId != 0 <=> V2 frame; a hand-rolled V2 frame claiming id 0
    // would make the two encodings ambiguous and is rejected.
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::ProveV2));
    w.putU64(0); // plonky2
    w.putU64(0); // factorial
    w.putU64(64);
    w.putU64(1);
    w.putU64(3);
    w.putU64(0); // traceId 0: invalid in a V2 frame
    EXPECT_FALSE(decodeRequest(w.take()).has_value());
}

TEST(ProtocolV2, TracedProveResponseRoundTrip)
{
    ProveResponse resp;
    resp.verified = true;
    resp.latencyNs = 5000;
    resp.queueDepth = 2;
    resp.proof = {1, 2, 3};
    resp.hasServerTiming = true;
    resp.traceId = 42;
    resp.laneId = 1;
    resp.queuedNs = 1000;
    resp.proveNs = 3000;
    resp.serializeNs = 500;

    const auto bytes = encodeProveResponse(resp);
    ByteReader peek(bytes);
    EXPECT_EQ(peek.getU64(), static_cast<uint64_t>(Tag::ProveOkV2));

    const auto frame = decodeResponse(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->tag, Tag::ProveOk);
    ASSERT_TRUE(frame->prove.hasServerTiming);
    EXPECT_EQ(frame->prove.traceId, 42u);
    EXPECT_EQ(frame->prove.laneId, 1u);
    EXPECT_EQ(frame->prove.queuedNs, 1000u);
    EXPECT_EQ(frame->prove.proveNs, 3000u);
    EXPECT_EQ(frame->prove.serializeNs, 500u);
    EXPECT_EQ(frame->prove.latencyNs, 5000u);
    EXPECT_EQ(frame->prove.proof, resp.proof);
}

TEST(ProtocolV2, UntracedProveResponseKeepsFrozenV1Layout)
{
    ProveResponse resp;
    resp.verified = true;
    resp.latencyNs = 999;
    resp.queueDepth = 1;
    resp.proof = {7, 8};

    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::ProveOk));
    w.putU64(1);
    w.putU64(999);
    w.putU64(1);
    w.putU64(2); // proof length prefix
    w.putRaw(resp.proof.data(), resp.proof.size());
    EXPECT_EQ(encodeProveResponse(resp), w.take());

    const auto frame = decodeResponse(encodeProveResponse(resp));
    ASSERT_TRUE(frame.has_value());
    EXPECT_FALSE(frame->prove.hasServerTiming);
}

TEST(ProtocolV2, ProveOkV2WithZeroTraceIdRejected)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::ProveOkV2));
    w.putU64(1);   // verified
    w.putU64(100); // latencyNs
    w.putU64(0);   // queueDepth
    w.putU64(0);   // traceId 0: invalid in a V2 frame
    w.putU64(0);   // laneId
    w.putU64(10);
    w.putU64(20);
    w.putU64(30);
    w.putU64(0); // empty proof
    EXPECT_FALSE(decodeResponse(w.take()).has_value());
}

TEST(ProtocolV2, FinishProveResponseMatchesSingleShotEncoder)
{
    // The two-step path (lane times encodeProofSection, then stamps
    // the header) must be byte-identical to the one-shot encoder, for
    // both frame versions.
    ProveResponse resp;
    resp.verified = true;
    resp.latencyNs = 1234;
    resp.queueDepth = 4;
    resp.proof = {9, 9, 9, 9};
    EXPECT_EQ(finishProveResponse(resp, encodeProofSection(resp.proof)),
              encodeProveResponse(resp));

    resp.hasServerTiming = true;
    resp.traceId = 6;
    resp.laneId = 0;
    resp.queuedNs = 100;
    resp.proveNs = 1000;
    resp.serializeNs = 50;
    EXPECT_EQ(finishProveResponse(resp, encodeProofSection(resp.proof)),
              encodeProveResponse(resp));
}

StatsResponse
sampleStats()
{
    StatsResponse stats;
    stats.sequence = 3;
    stats.windowStartNs = 1000;
    stats.windowEndNs = 2000;
    stats.queueDepth = 1;
    stats.queueCapacity = 16;
    stats.lanes = 2;
    stats.lanesBusy = 1;
    stats.spansDropped = 0;
    StatsCounterWindow c;
    c.name = "service.requests_completed";
    c.delta = 5;
    c.cumulative = 40;
    stats.counters.push_back(c);
    StatsHistogramWindow h;
    h.name = "service.request_latency_ns";
    h.delta.count = 5;
    h.delta.sum = 5000;
    h.delta.min = 800;
    h.delta.max = 1500;
    h.delta.buckets[10] = 4;
    h.delta.buckets[11] = 1;
    h.cumulative = h.delta;
    h.cumulative.count = 40;
    stats.histograms.push_back(h);
    return stats;
}

TEST(ProtocolV2, StatsResponseRoundTrip)
{
    const StatsResponse stats = sampleStats();
    const auto frame = decodeResponse(encodeStatsResponse(stats));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->tag, Tag::StatsOk);
    const StatsResponse &got = frame->stats;
    EXPECT_EQ(got.sequence, 3u);
    EXPECT_EQ(got.windowStartNs, 1000u);
    EXPECT_EQ(got.windowEndNs, 2000u);
    EXPECT_EQ(got.queueDepth, 1u);
    EXPECT_EQ(got.queueCapacity, 16u);
    EXPECT_EQ(got.lanes, 2u);
    EXPECT_EQ(got.lanesBusy, 1u);
    EXPECT_EQ(got.spansDropped, 0u);
    ASSERT_EQ(got.counters.size(), 1u);
    EXPECT_EQ(got.counters[0].name, "service.requests_completed");
    EXPECT_EQ(got.counters[0].delta, 5u);
    EXPECT_EQ(got.counters[0].cumulative, 40u);
    ASSERT_EQ(got.histograms.size(), 1u);
    EXPECT_EQ(got.histograms[0].name, "service.request_latency_ns");
    EXPECT_EQ(got.histograms[0].delta.count, 5u);
    EXPECT_EQ(got.histograms[0].delta.min, 800u);
    EXPECT_EQ(got.histograms[0].delta.max, 1500u);
    EXPECT_EQ(got.histograms[0].delta.buckets[10], 4u);
    EXPECT_EQ(got.histograms[0].cumulative.count, 40u);
}

TEST(ProtocolV2, V2FramesRejectTruncationAndTrailingBytes)
{
    ProveRequest req = smallRequest();
    req.traceId = 5;
    std::vector<std::vector<uint8_t>> frames;
    frames.push_back(encodeProveRequest(req));
    frames.push_back(encodeStatsResponse(sampleStats()));
    ProveResponse resp;
    resp.hasServerTiming = true;
    resp.traceId = 5;
    resp.proof = {1};
    frames.push_back(encodeProveResponse(resp));

    for (size_t f = 0; f < frames.size(); ++f) {
        const auto &full = frames[f];
        const bool is_request = f == 0;
        for (size_t cut = 1; cut < full.size(); ++cut) {
            const std::vector<uint8_t> prefix(
                full.begin(), full.begin() + static_cast<long>(cut));
            if (is_request) {
                EXPECT_FALSE(decodeRequest(prefix).has_value())
                    << "frame " << f << " cut=" << cut;
            } else {
                EXPECT_FALSE(decodeResponse(prefix).has_value())
                    << "frame " << f << " cut=" << cut;
            }
        }
        auto padded = full;
        padded.push_back(0);
        if (is_request) {
            EXPECT_FALSE(decodeRequest(padded).has_value());
        } else {
            EXPECT_FALSE(decodeResponse(padded).has_value());
        }
    }
}

TEST(ProtocolV2, StatsEntryCountClaimIsBounded)
{
    // A StatsOk frame claiming 2^40 counters with no payload must be
    // rejected from the claim alone, never allocated.
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::StatsOk));
    for (int i = 0; i < 8; ++i)
        w.putU64(0); // sequence .. spansDropped
    w.putU64(uint64_t{1} << 40); // counter-count claim
    EXPECT_FALSE(decodeResponse(w.take()).has_value());
}

// ---------------------------------------------------------------------
// Frame I/O on real sockets.

class FramePair : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        int fds[2];
        ASSERT_EQ(
            ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a_ = Fd(fds[0]);
        b_ = Fd(fds[1]);
    }

    Fd a_, b_;
};

TEST_F(FramePair, RoundTrip)
{
    const std::vector<uint8_t> payload = {9, 8, 7};
    ASSERT_TRUE(writeFrame(a_.get(), payload));
    std::vector<uint8_t> got;
    EXPECT_EQ(readFrame(b_.get(), 1024, got), FrameResult::Ok);
    EXPECT_EQ(got, payload);
}

TEST_F(FramePair, EmptyFrame)
{
    ASSERT_TRUE(writeFrame(a_.get(), {}));
    std::vector<uint8_t> got = {1, 2, 3};
    EXPECT_EQ(readFrame(b_.get(), 1024, got), FrameResult::Ok);
    EXPECT_TRUE(got.empty());
}

TEST_F(FramePair, EofBeforeHeader)
{
    a_.reset();
    std::vector<uint8_t> got;
    EXPECT_EQ(readFrame(b_.get(), 1024, got), FrameResult::Eof);
}

TEST_F(FramePair, TruncatedHeader)
{
    const uint8_t partial[3] = {42, 0, 0};
    ASSERT_EQ(::send(a_.get(), partial, sizeof(partial), 0), 3);
    a_.reset();
    std::vector<uint8_t> got;
    EXPECT_EQ(readFrame(b_.get(), 1024, got),
              FrameResult::Truncated);
}

TEST_F(FramePair, TruncatedPayload)
{
    // Header promises 100 bytes, only 5 arrive before the close.
    uint8_t header[8] = {100, 0, 0, 0, 0, 0, 0, 0};
    ASSERT_EQ(::send(a_.get(), header, sizeof(header), 0), 8);
    const uint8_t part[5] = {1, 2, 3, 4, 5};
    ASSERT_EQ(::send(a_.get(), part, sizeof(part), 0), 5);
    a_.reset();
    std::vector<uint8_t> got;
    EXPECT_EQ(readFrame(b_.get(), 1024, got),
              FrameResult::Truncated);
}

TEST_F(FramePair, OversizedClaimRejectedBeforeAllocation)
{
    // A header claiming 2^60 bytes must be rejected from the length
    // field alone -- resize(2^60) would throw bad_alloc long before
    // any payload could arrive.
    uint8_t header[8] = {};
    const uint64_t claim = uint64_t{1} << 60;
    for (size_t i = 0; i < 8; ++i)
        header[i] = static_cast<uint8_t>(claim >> (8 * i));
    ASSERT_EQ(::send(a_.get(), header, sizeof(header), 0), 8);
    std::vector<uint8_t> got;
    EXPECT_EQ(readFrame(b_.get(), kMaxRequestFrameBytes, got),
              FrameResult::TooLarge);
    EXPECT_TRUE(got.empty());
}

void
ignoreSigusr1(int)
{
}

TEST_F(FramePair, SignalStormDuringBlockedReadRetriesIteratively)
{
    // Regression: readFrame used to *recurse* once per EINTR on the
    // header peek, so a signal storm against a blocked reader grew the
    // stack without bound. The retry is now an iterative loop; this
    // pins that a reader surviving a storm of interruptions still
    // delivers the frame intact.
    //
    // SA_RESTART deliberately off: recv must actually return EINTR
    // instead of the kernel restarting it.
    struct sigaction sa = {};
    sa.sa_handler = ignoreSigusr1;
    sa.sa_flags = 0;
    sigemptyset(&sa.sa_mask);
    struct sigaction old = {};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    std::atomic<bool> reader_started{false};
    FrameResult result = FrameResult::IoError;
    std::vector<uint8_t> got;
    std::thread reader([&] {
        reader_started.store(true, std::memory_order_release);
        result = readFrame(b_.get(), 1024, got);
    });
    while (!reader_started.load(std::memory_order_acquire))
        std::this_thread::yield();

    // Storm the blocked reader. Each delivered signal interrupts the
    // recv; the old code would have pushed one stack frame per hit.
    for (int i = 0; i < 500; ++i) {
        ::pthread_kill(reader.native_handle(), SIGUSR1);
        if (i % 50 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    const std::vector<uint8_t> payload = {1, 2, 3, 4};
    ASSERT_TRUE(writeFrame(a_.get(), payload));
    // Keep interrupting while the payload drains, too.
    for (int i = 0; i < 100; ++i)
        ::pthread_kill(reader.native_handle(), SIGUSR1);
    reader.join();
    ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);

    EXPECT_EQ(result, FrameResult::Ok);
    EXPECT_EQ(got, payload);
}

// ---------------------------------------------------------------------
// Accept-failure backoff policy (regression: EMFILE busy-spin).

TEST(AcceptRetryDelay, TransientErrorsRetryImmediately)
{
    // The triggering condition is consumed (signal delivered,
    // connection aborted, another accepter won the race): no backoff.
    EXPECT_EQ(acceptRetryDelayMs(EINTR, 0), 0);
    EXPECT_EQ(acceptRetryDelayMs(EINTR, 100), 0);
    EXPECT_EQ(acceptRetryDelayMs(ECONNABORTED, 3), 0);
    EXPECT_EQ(acceptRetryDelayMs(EAGAIN, 0), 0);
}

TEST(AcceptRetryDelay, ResourceExhaustionBacksOffExponentially)
{
    // Under EMFILE the listener stays readable and accept() fails
    // instantly; the loop used to spin a core at 100%. The policy must
    // always impose a positive, growing, bounded delay.
    int prev = 0;
    for (unsigned failures = 0; failures < 20; ++failures) {
        const int d = acceptRetryDelayMs(EMFILE, failures);
        EXPECT_GT(d, 0) << "failures=" << failures;
        EXPECT_GE(d, prev) << "failures=" << failures;
        EXPECT_LE(d, 1000) << "failures=" << failures;
        prev = d;
    }
    // The cap must actually engage (no unbounded doubling).
    EXPECT_EQ(acceptRetryDelayMs(EMFILE, 1000u), 1000);
    EXPECT_EQ(acceptRetryDelayMs(ENFILE, 1000u), 1000);
    EXPECT_EQ(acceptRetryDelayMs(ENOBUFS, 1000u), 1000);
}

TEST(AcceptRetryDelay, UnexpectedErrorsAreThrottledToo)
{
    // A persistently broken listener (EBADF, EINVAL, ...) must not
    // spin either; it logs at a bounded rate instead.
    EXPECT_GT(acceptRetryDelayMs(EBADF, 0), 0);
    EXPECT_EQ(acceptRetryDelayMs(EINVAL, 1000u), 1000);
}

TEST(AcceptRetryDelay, BackoffSleepWakesOnStopSignal)
{
    // The backoff sleep polls the wake pipe so a draining daemon never
    // sits out a full backoff interval.
    WakePipe wake;
    wake.signal();
    const Stopwatch clock;
    EXPECT_TRUE(waitReadableMs(wake.readFd(), 10000));
    EXPECT_LT(clock.elapsedSeconds(), 5.0);
}

TEST(AcceptRetryDelay, BackoffSleepTimesOutWithoutSignal)
{
    WakePipe wake;
    EXPECT_FALSE(waitReadableMs(wake.readFd(), 10));
}

// ---------------------------------------------------------------------
// Bounded queue semantics.

TEST(BoundedQueue, AdmissionAndDrain)
{
    BoundedQueue<int> q(2);
    size_t depth = 99;
    EXPECT_EQ(q.tryPush(1, &depth), PushResult::Ok);
    EXPECT_EQ(depth, 0u);
    EXPECT_EQ(q.tryPush(2, &depth), PushResult::Ok);
    EXPECT_EQ(depth, 1u);
    EXPECT_EQ(q.tryPush(3), PushResult::Full);
    q.close();
    EXPECT_EQ(q.tryPush(4), PushResult::Closed);
    // Jobs admitted before close still drain, in order.
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, ZeroCapacityRejectsEverything)
{
    BoundedQueue<int> q(0);
    EXPECT_EQ(q.tryPush(1), PushResult::Full);
}

/**
 * Races many producers and consumers against a mid-stream close().
 * Pins the drain-then-exit contract under contention: every item
 * admitted (tryPush == Ok) is popped exactly once, consumers see
 * nullopt only after close + drain, and nothing is admitted after
 * close. Runs in the CI TSAN leg, where it also exercises the
 * capability-annotated Mutex/CondVar wrappers under real contention.
 */
TEST(BoundedQueue, ConcurrentCloseRace)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    // Attempt budget per producer. Producers run until they observe
    // Closed, so this only bounds the pathological case where close()
    // never lands; it is far more attempts than any machine gets
    // through in the 20ms race window.
    constexpr int kMaxPerProducer = 1 << 20;

    BoundedQueue<int> q(16);
    std::atomic<bool> start{false};

    // admitted[v] set by the producer when tryPush(v) returned Ok;
    // popped[v] incremented by whichever consumer received v.
    std::vector<std::atomic<uint8_t>> admitted(kProducers *
                                               kMaxPerProducer);
    std::vector<std::atomic<uint8_t>> popped(kProducers *
                                             kMaxPerProducer);
    std::atomic<uint64_t> rejected_closed{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            while (!start.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kMaxPerProducer; ++i) {
                const int v = p * kMaxPerProducer + i;
                switch (q.tryPush(v)) {
                case PushResult::Ok:
                    admitted[static_cast<size_t>(v)].store(
                        1, std::memory_order_relaxed);
                    break;
                case PushResult::Full:
                    break; // backpressure; drop and move on
                case PushResult::Closed:
                    // The door slammed mid-stream; every producer
                    // must end here, not by exhausting its budget.
                    rejected_closed.fetch_add(
                        1, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (!start.load(std::memory_order_acquire)) {
            }
            while (auto item = q.pop())
                popped[static_cast<size_t>(*item)].fetch_add(
                    1, std::memory_order_relaxed);
            // After pop() returns nullopt the queue is closed and
            // drained; it must stay that way.
            EXPECT_FALSE(q.pop().has_value());
        });
    }

    start.store(true, std::memory_order_release);
    // Let the race develop, then slam the door while both sides are
    // mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();

    for (auto &t : producers)
        t.join();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(q.tryPush(-1), PushResult::Closed);
    EXPECT_FALSE(q.pop().has_value());

    uint64_t admitted_total = 0;
    for (size_t v = 0; v < admitted.size(); ++v) {
        const uint8_t in = admitted[v].load(std::memory_order_relaxed);
        const uint8_t out = popped[v].load(std::memory_order_relaxed);
        admitted_total += in;
        EXPECT_EQ(in, out) << "item " << v
                           << (in != 0u ? " admitted but popped "
                                        : " never admitted but popped ")
                           << static_cast<unsigned>(out) << " times";
    }
    // The close raced real traffic: something got through before it,
    // and every producer was still pushing when it landed (each exits
    // only on observing Closed).
    EXPECT_GT(admitted_total, 0u);
    EXPECT_EQ(rejected_closed.load(),
              static_cast<uint64_t>(kProducers));
}

// ---------------------------------------------------------------------
// End-to-end service tests.

TEST(Service, PingAndUnknownTag)
{
    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("ping");
    cfg.proverLanes = 1;
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient client(cfg.socketPath);
    ASSERT_TRUE(client.connected());
    auto pong = client.ping();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->tag, Tag::Pong);

    // An unknown request tag draws a typed BadRequest, and the
    // connection stays usable.
    ByteWriter w;
    w.putU64(424242);
    ASSERT_TRUE(client.sendRaw(w.take()));
    auto err = client.readResponse();
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->tag, Tag::Error);
    EXPECT_EQ(err->error.code, ErrorCode::BadRequest);
    auto pong2 = client.ping();
    ASSERT_TRUE(pong2.has_value());
    EXPECT_EQ(pong2->tag, Tag::Pong);

    svc.stop();
    EXPECT_GE(svc.counters().rejectedBadRequest, 1u);
}

TEST(Service, OversizedFrameDrawsBadFrameAndDisconnect)
{
    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("oversize");
    cfg.proverLanes = 1;
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient client(cfg.socketPath);
    ASSERT_TRUE(client.connected());
    // The server rejects from the header alone and may close before
    // the oversized payload is fully written, so the send itself is
    // allowed to fail -- the typed error frame must still arrive.
    std::vector<uint8_t> big(kMaxRequestFrameBytes + 1, 0);
    client.sendRaw(big);
    auto err = client.readResponse();
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->tag, Tag::Error);
    EXPECT_EQ(err->error.code, ErrorCode::BadFrame);

    svc.stop();
    EXPECT_GE(svc.counters().malformedFrames, 1u);
}

TEST(Service, ProofMatchesDirectPipeline)
{
    const ProveRequest req = smallRequest();
    const AppRunResult direct = runPlonky2App(
        req.app, requestRows(req), requestReps(req),
        requestFriConfig(req), HardwareConfig::paperDefault(), true);

    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("prove");
    cfg.proverLanes = 1;
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient client(cfg.socketPath);
    ASSERT_TRUE(client.connected());
    auto resp = client.prove(req);
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->tag, Tag::ProveOk);
    EXPECT_TRUE(resp->prove.verified);
    EXPECT_EQ(resp->prove.proof, direct.proofBlob);

    svc.stop();
    const ServiceCounters c = svc.counters();
    EXPECT_EQ(c.requestsCompleted, 1u);
    ASSERT_EQ(svc.runStats().size(), 1u);
    EXPECT_EQ(svc.runStats()[0].protocol, "plonky2");
}

TEST(Service, ZeroCapacityQueueRejectsWithQueueFull)
{
    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("full");
    cfg.queueCapacity = 0;
    cfg.proverLanes = 1;
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient client(cfg.socketPath);
    auto resp = client.prove(smallRequest());
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->tag, Tag::Error);
    EXPECT_EQ(resp->error.code, ErrorCode::QueueFull);

    svc.stop();
    EXPECT_GE(svc.counters().rejectedQueueFull, 1u);
}

TEST(Service, MidRequestDisconnectDoesNotWedgeTheServer)
{
    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("disc");
    cfg.proverLanes = 1;
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    {
        ServiceClient client(cfg.socketPath);
        ASSERT_TRUE(client.connected());
        ASSERT_TRUE(client.sendRaw(encodeProveRequest(smallRequest())));
        client.disconnect(); // vanish while the proof is being built
    }

    // The server must still answer other clients afterwards.
    ServiceClient other(cfg.socketPath);
    auto resp = other.prove(smallRequest());
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->tag, Tag::ProveOk);

    svc.stop();
    EXPECT_GE(svc.counters().disconnects, 1u);
}

TEST(Service, ProtocolShutdownDrains)
{
    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("shutdown");
    cfg.proverLanes = 1;
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient client(cfg.socketPath);
    auto ack = client.shutdownServer();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->tag, Tag::ShutdownAck);
    EXPECT_TRUE(svc.stopRequested());
    svc.stop();

    // The socket is gone; new connections fail.
    ServiceClient late(cfg.socketPath);
    EXPECT_FALSE(late.connected());
}

TEST(Service, TracedProveEchoesDecompositionProofUnchanged)
{
    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("traced");
    cfg.proverLanes = 1;
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient client(cfg.socketPath);
    ASSERT_TRUE(client.connected());

    // Untraced request: legacy response, no server timing.
    const auto plain = client.prove(smallRequest());
    ASSERT_TRUE(plain.has_value());
    ASSERT_EQ(plain->tag, Tag::ProveOk);
    EXPECT_FALSE(plain->prove.hasServerTiming);

    // Traced request: decomposition comes back, nested by
    // construction, and the proof bytes are unaffected by tracing.
    ProveRequest traced = smallRequest();
    traced.traceId = 42;
    const auto resp = client.prove(traced);
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->tag, Tag::ProveOk);
    const ProveResponse &p = resp->prove;
    ASSERT_TRUE(p.hasServerTiming);
    EXPECT_EQ(p.traceId, 42u);
    EXPECT_EQ(p.laneId, 0u);
    EXPECT_GT(p.proveNs, 0u);
    EXPECT_LE(p.queuedNs + p.proveNs + p.serializeNs, p.latencyNs);
    EXPECT_EQ(p.proof, plain->prove.proof);

    svc.stop();
    EXPECT_EQ(svc.counters().requestsCompleted, 2u);
}

TEST(Service, GetStatsServedWhileLaneIsMidRequest)
{
    std::atomic<uint64_t> sink_calls{0};
    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("stats");
    cfg.queueCapacity = 8;
    cfg.proverLanes = 1;
    cfg.windowSink = [&sink_calls](const obs::StatsSnapshot &) {
        sink_calls.fetch_add(1, std::memory_order_relaxed);
    };
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    // Park a prove on the single lane, then poll stats from a second
    // connection while the first is still being served.
    ServiceClient prover(cfg.socketPath);
    ASSERT_TRUE(prover.connected());
    ProveRequest req = smallRequest();
    req.traceId = 7;
    ASSERT_TRUE(prover.sendRaw(encodeProveRequest(req)));

    ServiceClient poller(cfg.socketPath);
    ASSERT_TRUE(poller.connected());
    const auto first = poller.getStats();
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->tag, Tag::StatsOk);
    EXPECT_EQ(first->stats.lanes, 1u);
    EXPECT_EQ(first->stats.queueCapacity, 8u);
    EXPECT_LE(first->stats.lanesBusy, 1u);

    const auto second = poller.getStats();
    ASSERT_TRUE(second.has_value());
    ASSERT_EQ(second->tag, Tag::StatsOk);
#if !defined(UNIZK_OBS_DISABLE)
    // One process-wide rotation stream: consecutive polls get
    // consecutive windows that chain exactly.
    EXPECT_GE(first->stats.sequence, 1u);
    EXPECT_EQ(second->stats.sequence, first->stats.sequence + 1);
    EXPECT_EQ(second->stats.windowStartNs, first->stats.windowEndNs);
#endif

    // The parked prove still completes with its decomposition intact.
    const auto resp = prover.readResponse();
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->tag, Tag::ProveOk);
    ASSERT_TRUE(resp->prove.hasServerTiming);
    EXPECT_EQ(resp->prove.traceId, 7u);

    // Every GetStats rotation went through the shared window sink (the
    // daemon's JSONL contiguity depends on this single path).
    EXPECT_EQ(sink_calls.load(), 2u);

    svc.stop();
}

TEST(Service, FourConcurrentClientsMixedWorkload)
{
    ProveRequest plonk = smallRequest();
    ProveRequest stark;
    stark.protocol = WireProtocol::Starky;
    stark.app = AppId::Fibonacci;
    stark.rows = 64;
    stark.reps = 0;

    const AppRunResult plonkDirect = runPlonky2App(
        plonk.app, requestRows(plonk), requestReps(plonk),
        requestFriConfig(plonk), HardwareConfig::paperDefault(), true);
    const AppRunResult starkDirect = runStarkyApp(
        stark.app, requestRows(stark), requestFriConfig(stark),
        HardwareConfig::paperDefault(), true);

    ServiceConfig cfg;
    cfg.socketPath = testSocketPath("concurrent");
    cfg.queueCapacity = 16;
    cfg.proverLanes = 2;
    ProofService svc(cfg);
    ASSERT_TRUE(svc.start());

    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client(cfg.socketPath);
            for (int i = 0; i < 2; ++i) {
                const bool starky = (c + i) % 2 == 0;
                const auto resp =
                    client.prove(starky ? stark : plonk);
                if (!resp || resp->tag != Tag::ProveOk ||
                    !resp->prove.verified ||
                    resp->prove.proof !=
                        (starky ? starkDirect.proofBlob
                                : plonkDirect.proofBlob)) {
                    failures.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    svc.stop();
    const ServiceCounters counters = svc.counters();
    EXPECT_EQ(counters.requestsCompleted, 8u);
    EXPECT_EQ(counters.connectionsAccepted, 4u);
}

} // namespace
} // namespace service
} // namespace unizk
