/**
 * @file
 * Tests for the analytical models: the Table 2 area/power breakdown,
 * the GPU baseline estimate, and the PipeZK/Groth16 cost model.
 */

#include <gtest/gtest.h>

#include "model/area_power.h"
#include "model/gpu_model.h"
#include "model/pipezk_model.h"

namespace unizk {
namespace {

TEST(AreaPower, DefaultConfigReproducesTable2)
{
    const ChipCost cost =
        estimateChipCost(HardwareConfig::paperDefault(), 2);
    ASSERT_EQ(cost.components.size(), 5u);
    // Paper Table 2: total 57.8 mm^2, 96.4 W.
    EXPECT_NEAR(cost.totalAreaMm2(), 57.8, 0.1);
    EXPECT_NEAR(cost.totalPowerW(), 96.4, 0.1);
    EXPECT_NEAR(cost.components[0].areaMm2, 21.3, 0.05); // VSAs
    EXPECT_NEAR(cost.components[0].powerW, 58.0, 0.05);
    EXPECT_NEAR(cost.components[4].areaMm2, 29.8, 0.05); // HBM PHYs
}

TEST(AreaPower, ScalesWithVsaCount)
{
    HardwareConfig cfg = HardwareConfig::paperDefault();
    cfg.numVsas = 64;
    const ChipCost cost = estimateChipCost(cfg, 2);
    EXPECT_NEAR(cost.components[0].areaMm2, 2 * 21.3, 0.1);
}

TEST(AreaPower, ScalesWithScratchpad)
{
    HardwareConfig cfg = HardwareConfig::paperDefault();
    cfg.scratchpadBytes = 16ull << 20;
    const ChipCost cost = estimateChipCost(cfg, 2);
    EXPECT_NEAR(cost.components[1].areaMm2, 10.0, 0.1);
}

TEST(GpuModel, SpeedupCapsAtAcceleratedShare)
{
    // If kernels were infinitely fast on the GPU, total time still
    // includes host-resident work -- Amdahl, as the paper stresses.
    KernelTimeBreakdown cpu;
    cpu.add(KernelClass::Ntt, 10.0);
    cpu.add(KernelClass::MerkleTree, 30.0);
    cpu.add(KernelClass::Polynomial, 8.0);
    cpu.add(KernelClass::OtherHash, 2.0);

    KernelTrace trace; // empty trace: no transfer cost
    GpuModelParams params;
    params.nttSpeedup = 1e9;
    params.hashSpeedup = 1e9;
    params.polySpeedup = 1e9;
    const GpuEstimate est = estimateGpuTime(cpu, trace, params);
    EXPECT_NEAR(est.totalSeconds, 2.0, 1e-6);
}

TEST(GpuModel, RealisticParamsGiveModestSpeedup)
{
    // Paper Table 3: GPU speedups land between 1.2x and 4.6x.
    KernelTimeBreakdown cpu;
    cpu.add(KernelClass::Ntt, 10.0);
    cpu.add(KernelClass::MerkleTree, 33.0);
    cpu.add(KernelClass::Polynomial, 6.0);
    cpu.add(KernelClass::OtherHash, 0.1);
    cpu.add(KernelClass::LayoutTransform, 1.2);

    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{20, 135, true, false, false, PolyLayout::PolyMajor},
         "intt"});
    trace.ops.push_back({HashKernel{100}, "fiat-shamir"});
    trace.ops.push_back({MerkleKernel{1 << 23, 135, 4}, "tree"});

    const GpuEstimate est = estimateGpuTime(cpu, trace, {});
    const double speedup = cpu.total() / est.totalSeconds;
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 8.0);
}

TEST(GpuModel, TransfersChargedOnHostDeviceBoundaries)
{
    KernelTimeBreakdown cpu;
    cpu.add(KernelClass::Ntt, 1.0);

    // GPU kernel sandwiched between host kernels: pays transfers.
    KernelTrace bouncing;
    bouncing.ops.push_back({HashKernel{10}, "host"});
    bouncing.ops.push_back(
        {NttKernel{24, 64, false, false, false, PolyLayout::PolyMajor},
         "gpu"});
    bouncing.ops.push_back({HashKernel{10}, "host"});
    bouncing.ops.push_back(
        {NttKernel{24, 64, false, false, false, PolyLayout::PolyMajor},
         "gpu"});

    KernelTrace fused;
    fused.ops.push_back({HashKernel{10}, "host"});
    fused.ops.push_back(
        {NttKernel{24, 64, false, false, false, PolyLayout::PolyMajor},
         "gpu"});
    fused.ops.push_back(
        {NttKernel{24, 64, false, false, false, PolyLayout::PolyMajor},
         "gpu"});

    const GpuEstimate b = estimateGpuTime(cpu, bouncing, {});
    const GpuEstimate f = estimateGpuTime(cpu, fused, {});
    EXPECT_GT(b.transferSeconds, f.transferSeconds);
}

TEST(PipezkModel, ReproducesPublishedDesignPoints)
{
    const Groth16CostModel model;
    const auto sha = Groth16Circuit::sha256OneBlock();
    const auto aes = Groth16Circuit::aes128OneBlock();
    // Paper Table 6: CPU Groth16 1.5 s / 1.1 s; PipeZK 102 ms / 97 ms.
    EXPECT_NEAR(model.cpuSeconds(sha), 1.5, 0.1);
    EXPECT_NEAR(model.cpuSeconds(aes), 1.1, 0.1);
    EXPECT_NEAR(model.pipezkSeconds(sha), 0.102, 0.01);
    EXPECT_NEAR(model.pipezkSeconds(aes), 0.097, 0.03);
}

TEST(PipezkModel, AsicPortionIsFraction)
{
    const Groth16CostModel model;
    const auto sha = Groth16Circuit::sha256OneBlock();
    EXPECT_NEAR(model.pipezkAsicOnlySeconds(sha) /
                    model.pipezkSeconds(sha),
                model.asicFraction, 1e-9);
}

TEST(PipezkModel, BlockThroughputMatchesPaper)
{
    // Paper: "PipeZK ... processes 10 blocks per second for SHA-256".
    const Groth16CostModel model;
    EXPECT_NEAR(model.pipezkBlocksPerSecond(
                    Groth16Circuit::sha256OneBlock()),
                10.0, 1.0);
}

} // namespace
} // namespace unizk
