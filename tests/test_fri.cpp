/**
 * @file
 * Tests for the FRI polynomial commitment: commitment construction,
 * honest prove/verify round trips across configurations, and soundness
 * checks (tampered openings, wrong points, corrupted proofs must fail).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fri/fri.h"

namespace unizk {
namespace {

std::vector<std::vector<Fp>>
randomValues(size_t num_polys, size_t n, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<std::vector<Fp>> vals(num_polys);
    for (auto &v : vals) {
        v.resize(n);
        for (auto &x : v)
            x = randomFp(rng);
    }
    return vals;
}

/** Everything needed to drive one honest FRI round trip. */
struct FriFixture
{
    FriConfig cfg;
    std::unique_ptr<PolynomialBatch> batch_a;
    std::unique_ptr<PolynomialBatch> batch_b;
    std::vector<Fp2> points;
    std::vector<std::vector<Fp2>> openings;
    FriProof proof;

    FriFixture(size_t n, size_t polys_a, size_t polys_b, FriConfig config)
        : cfg(config)
    {
        ProverContext ctx;
        batch_a = std::make_unique<PolynomialBatch>(
            PolynomialBatch::fromValues(randomValues(polys_a, n, 1), cfg,
                                        ctx, "a"));
        batch_b = std::make_unique<PolynomialBatch>(
            PolynomialBatch::fromValues(randomValues(polys_b, n, 2), cfg,
                                        ctx, "b"));

        Challenger challenger;
        const Fp2 zeta = challenger.challengeExt();
        const Fp g = Fp::primitiveRootOfUnity(log2Exact(n));
        points = {zeta, zeta * g};

        for (const Fp2 &z : points) {
            std::vector<Fp2> row;
            for (const auto *b : {batch_a.get(), batch_b.get()})
                for (const Fp2 &v : b->evalAllExt(z))
                    row.push_back(v);
            openings.push_back(std::move(row));
        }
        for (const auto &row : openings)
            for (const Fp2 &v : row) {
                challenger.observe(v.limb(0));
                challenger.observe(v.limb(1));
            }

        proof = friProve({batch_a.get(), batch_b.get()}, points, openings,
                         challenger, cfg, ctx);
    }

    std::vector<FriBatchInfo>
    batchInfos() const
    {
        return {{batch_a->cap(), batch_a->polyCount()},
                {batch_b->cap(), batch_b->polyCount()}};
    }

    bool
    verify(const std::vector<std::vector<Fp2>> &open,
           const FriProof &p) const
    {
        Challenger challenger;
        const Fp2 zeta = challenger.challengeExt();
        (void)zeta;
        for (const auto &row : open)
            for (const Fp2 &v : row) {
                challenger.observe(v.limb(0));
                challenger.observe(v.limb(1));
            }
        return friVerify(batchInfos(), batch_a->degreeBound(), points,
                         open, p, challenger, cfg);
    }
};

TEST(PolynomialBatch, LeavesMatchNaiveEvaluation)
{
    const size_t n = 16;
    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    auto values = randomValues(3, n, 7);
    const auto orig = values;
    PolynomialBatch batch =
        PolynomialBatch::fromValues(std::move(values), cfg, ctx, "t");

    EXPECT_EQ(batch.polyCount(), 3u);
    EXPECT_EQ(batch.degreeBound(), n);
    EXPECT_EQ(batch.ldeSize(), n * cfg.blowup());

    // The committed polynomial must interpolate the original values on
    // the subgroup H: check p(w^i) = values[i] via coefficients.
    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n));
    for (size_t p = 0; p < 3; ++p) {
        const Polynomial poly(batch.coefficients(p));
        for (size_t i = 0; i < n; i += 5)
            EXPECT_EQ(poly.eval(w.pow(i)), orig[p][i]);
    }

    // Leaf i holds all polys' values at LDE point shift*w_big^rev(i).
    const size_t lde = batch.ldeSize();
    const Fp w_big = Fp::primitiveRootOfUnity(log2Exact(lde));
    for (size_t i : {size_t{0}, size_t{1}, lde - 1}) {
        const Fp x = cfg.shift() * w_big.pow(reverseBits(i,
                                                         log2Exact(lde)));
        for (size_t p = 0; p < 3; ++p) {
            const Polynomial poly(batch.coefficients(p));
            EXPECT_EQ(batch.ldeValue(p, i), poly.eval(x));
        }
    }
}

TEST(PolynomialBatch, EvalExtMatchesBaseFieldEval)
{
    ProverContext ctx;
    const FriConfig cfg = FriConfig::testing();
    PolynomialBatch batch = PolynomialBatch::fromValues(
        randomValues(2, 8, 9), cfg, ctx, "t");
    const Fp x(12345);
    const Polynomial poly(batch.coefficients(1));
    EXPECT_EQ(batch.evalExt(1, Fp2(x)), Fp2(poly.eval(x)));
}

TEST(PolynomialBatch, RecordsKernels)
{
    TraceRecorder recorder;
    ProverContext ctx;
    ctx.recorder = &recorder;
    const FriConfig cfg = FriConfig::testing();
    PolynomialBatch::fromValues(randomValues(2, 16, 10), cfg, ctx, "t");
    // iNTT + LDE NTT + transpose + merkle
    ASSERT_EQ(recorder.trace().size(), 4u);
    EXPECT_STREQ(kernelPayloadName(recorder.trace().ops[0].payload), "ntt");
    EXPECT_STREQ(kernelPayloadName(recorder.trace().ops[3].payload),
                 "merkle");
}

TEST(Fri, HonestProofVerifies)
{
    FriFixture f(64, 3, 2, FriConfig::testing());
    EXPECT_TRUE(f.verify(f.openings, f.proof));
}

TEST(Fri, HonestProofVerifiesLargerDomain)
{
    FriConfig cfg = FriConfig::testing();
    cfg.numQueries = 10;
    FriFixture f(256, 5, 4, cfg);
    EXPECT_TRUE(f.verify(f.openings, f.proof));
}

TEST(Fri, StarkyBlowupConfigVerifies)
{
    FriConfig cfg = FriConfig::testing();
    cfg.blowupBits = 1; // Starky's blowup factor of 2
    cfg.numQueries = 12;
    FriFixture f(128, 4, 1, cfg);
    EXPECT_TRUE(f.verify(f.openings, f.proof));
}

TEST(Fri, NoFoldingLayersWhenDegreeSmall)
{
    FriConfig cfg = FriConfig::testing();
    cfg.finalPolyLen = 64;
    FriFixture f(32, 2, 1, cfg); // n < finalPolyLen: zero layers
    EXPECT_TRUE(f.proof.layerCaps.empty());
    EXPECT_TRUE(f.verify(f.openings, f.proof));
}

TEST(Fri, TamperedOpeningFails)
{
    FriFixture f(64, 3, 2, FriConfig::testing());
    auto bad = f.openings;
    bad[0][1] += Fp2::one();
    EXPECT_FALSE(f.verify(bad, f.proof));
}

TEST(Fri, TamperedFinalPolyFails)
{
    FriFixture f(64, 3, 2, FriConfig::testing());
    auto bad = f.proof;
    bad.finalPoly[0] += Fp2::one();
    EXPECT_FALSE(f.verify(f.openings, bad));
}

TEST(Fri, TamperedLayerCapFails)
{
    FriFixture f(64, 3, 2, FriConfig::testing());
    auto bad = f.proof;
    ASSERT_FALSE(bad.layerCaps.empty());
    bad.layerCaps[0][0].elems[0] += Fp::one();
    EXPECT_FALSE(f.verify(f.openings, bad));
}

TEST(Fri, TamperedQueryValueFails)
{
    FriFixture f(64, 3, 2, FriConfig::testing());
    auto bad = f.proof;
    bad.queries[0].initial[0].values[0] += Fp::one();
    EXPECT_FALSE(f.verify(f.openings, bad));
}

TEST(Fri, TamperedPowNonceFails)
{
    FriFixture f(64, 3, 2, FriConfig::testing());
    auto bad = f.proof;
    bad.powNonce += 1;
    // Either the PoW check itself or a downstream query index change
    // must reject.
    EXPECT_FALSE(f.verify(f.openings, bad));
}

TEST(Fri, WrongQueryCountFails)
{
    FriFixture f(64, 3, 2, FriConfig::testing());
    auto bad = f.proof;
    bad.queries.pop_back();
    EXPECT_FALSE(f.verify(f.openings, bad));
}

TEST(Fri, ProofSizeIsPositiveAndGrowsWithQueries)
{
    FriConfig few = FriConfig::testing();
    FriConfig many = FriConfig::testing();
    many.numQueries = few.numQueries * 2;
    FriFixture a(64, 3, 2, few);
    FriFixture b(64, 3, 2, many);
    EXPECT_GT(a.proof.byteSize(), 0u);
    EXPECT_GT(b.proof.byteSize(), a.proof.byteSize());
}

TEST(Fri, ConfigSecurityAccounting)
{
    EXPECT_EQ(FriConfig::plonky2().conjecturedSecurityBits(), 100u);
    EXPECT_EQ(FriConfig::starky().conjecturedSecurityBits(), 100u);
    EXPECT_EQ(FriConfig::plonky2().blowup(), 8u);  // paper: k >= 8
    EXPECT_EQ(FriConfig::starky().blowup(), 2u);   // paper: k = 2
}

} // namespace
} // namespace unizk
