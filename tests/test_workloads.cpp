/**
 * @file
 * Tests for the workload generators: every app must build a satisfiable
 * circuit of the requested size, Starky apps must produce valid traces,
 * and the end-to-end pipeline (prove on CPU, record trace, simulate
 * UniZK, verify) must succeed for representatives of each protocol.
 */

#include <gtest/gtest.h>

#include "unizk/pipeline.h"

namespace unizk {
namespace {

class AllApps : public ::testing::TestWithParam<AppId>
{};

TEST_P(AllApps, CircuitBuildsAndWitnessSatisfies)
{
    const AppId app = GetParam();
    const PlonkApp instance = buildPlonkApp(app, 256, 2);
    EXPECT_EQ(instance.circuit.rows(), 256u);
    EXPECT_EQ(instance.witnesses.size(), 2u);
    for (const auto &inputs : instance.witnesses) {
        const auto wires = instance.circuit.fillWitness(inputs);
        EXPECT_TRUE(instance.circuit.checkWitness(wires));
    }
}

TEST_P(AllApps, DistinctWitnessesPerRepetition)
{
    const AppId app = GetParam();
    const PlonkApp instance = buildPlonkApp(app, 64, 3);
    EXPECT_NE(instance.witnesses[0], instance.witnesses[1]);
    EXPECT_NE(instance.witnesses[1], instance.witnesses[2]);
}

TEST_P(AllApps, DefaultParamsSane)
{
    const WorkloadParams p = defaultParams(GetParam());
    EXPECT_GE(p.rows, 512u);
    EXPECT_GE(p.repetitions, 1u);
    const WorkloadParams scaled = defaultParams(GetParam(), 2);
    EXPECT_EQ(scaled.rows, p.rows * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AllApps,
    ::testing::Values(AppId::Factorial, AppId::Fibonacci, AppId::Ecdsa,
                      AppId::Sha256, AppId::ImageCrop, AppId::Mvm,
                      AppId::Recursion),
    [](const auto &param_info) {
        std::string name = appName(param_info.param);
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(StarkApps, TracesSatisfyTheirAirs)
{
    for (const AppId app :
         {AppId::Factorial, AppId::Fibonacci, AppId::Sha256}) {
        ASSERT_TRUE(hasStarkImplementation(app));
        const StarkApp instance = buildStarkApp(app, 128);
        EXPECT_TRUE(instance.air->checkTrace(instance.trace))
            << appName(app);
    }
}

TEST(StarkApps, NonStarkAppsReport)
{
    EXPECT_FALSE(hasStarkImplementation(AppId::Ecdsa));
    EXPECT_FALSE(hasStarkImplementation(AppId::Mvm));
}

TEST(StarkApps, MvmHasWiderTrace)
{
    // Section 7.1: MVM's circuit width (~400) exceeds the others
    // (~135), which is what improves its bandwidth utilization.
    EXPECT_GT(defaultParams(AppId::Mvm).repetitions,
              defaultParams(AppId::Factorial).repetitions * 2);
}

TEST(Pipeline, Plonky2EndToEnd)
{
    FriConfig cfg = FriConfig::testing();
    const AppRunResult r = runPlonky2App(
        AppId::Fibonacci, 128, 3, cfg, HardwareConfig::paperDefault());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.cpuSeconds, 0.0);
    EXPECT_GT(r.sim.totalCycles, 0u);
    EXPECT_GT(r.proofBytes, 0u);
    EXPECT_GT(r.trace.size(), 5u);
    EXPECT_GT(r.speedupVsCpu(), 0.0);
    EXPECT_GT(r.cpuBreakdown.total(), 0.0);
}

TEST(Pipeline, StarkyEndToEnd)
{
    FriConfig cfg = FriConfig::testing();
    cfg.blowupBits = 1;
    cfg.numQueries = 12;
    const AppRunResult r = runStarkyApp(AppId::Factorial, 256, cfg,
                                        HardwareConfig::paperDefault());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.sim.totalCycles, 0u);
    EXPECT_GT(r.proofBytes, 0u);
}

TEST(Pipeline, MerkleDominatesCpuBreakdownAtWidth)
{
    // Table 1's headline: Merkle-tree hashing is the largest CPU
    // component once the commitment width is realistic.
    FriConfig cfg = FriConfig::testing();
    cfg.powBits = 0;
    const AppRunResult r = runPlonky2App(
        AppId::Fibonacci, 256, 12, cfg, HardwareConfig::paperDefault(),
        /*verify_proof=*/false);
    EXPECT_GT(r.cpuBreakdown.fraction(KernelClass::MerkleTree), 0.35);
}

TEST(Pipeline, SimulatedUniZkFasterThanCpu)
{
    FriConfig cfg = FriConfig::testing();
    const AppRunResult r = runPlonky2App(
        AppId::Factorial, 512, 8, cfg, HardwareConfig::paperDefault(),
        /*verify_proof=*/false);
    // Even at tiny scale the simulated accelerator should beat a
    // single CPU thread by a wide margin.
    EXPECT_GT(r.speedupVsCpu(), 10.0);
}

} // namespace
} // namespace unizk
