/**
 * @file
 * Tests for the sum-check protocol (paper Section 8.1, Algorithm 2):
 * honest round trips, oracle consistency, soundness rejections, and
 * the simulator mapping of the sum-check kernel.
 */

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "sim/mappers.h"
#include "sumcheck/sumcheck.h"

namespace unizk {
namespace {

std::vector<Fp>
randomTable(uint32_t log_n, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<Fp> v(size_t{1} << log_n);
    for (auto &x : v)
        x = randomFp(rng);
    return v;
}

class SumcheckSizes : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(SumcheckSizes, HonestProofVerifies)
{
    const uint32_t log_n = GetParam();
    const auto table = randomTable(log_n, log_n + 1);

    Challenger prover_ch;
    const SumcheckProof proof = sumcheckProve(table, prover_ch);

    Challenger verifier_ch;
    std::vector<Fp> point;
    ASSERT_TRUE(sumcheckVerify(proof, log_n, verifier_ch, &point));
    ASSERT_EQ(point.size(), log_n);

    // The final claim matches the multilinear extension at the
    // challenge point (the verifier's oracle query).
    EXPECT_EQ(proof.finalEval, multilinearEval(table, point));
}

TEST_P(SumcheckSizes, ClaimedSumIsTableSum)
{
    const uint32_t log_n = GetParam();
    const auto table = randomTable(log_n, log_n + 2);
    Challenger ch;
    const SumcheckProof proof = sumcheckProve(table, ch);
    Fp sum;
    for (const Fp &v : table)
        sum += v;
    EXPECT_EQ(proof.claimedSum, sum);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SumcheckSizes,
                         ::testing::Values(1, 2, 4, 8, 12));

TEST(Sumcheck, TamperedClaimFails)
{
    const auto table = randomTable(6, 3);
    Challenger ch;
    auto proof = sumcheckProve(table, ch);
    proof.claimedSum += Fp::one();
    Challenger vch;
    EXPECT_FALSE(sumcheckVerify(proof, 6, vch));
}

TEST(Sumcheck, TamperedRoundFails)
{
    const auto table = randomTable(6, 4);
    Challenger ch;
    auto proof = sumcheckProve(table, ch);
    proof.rounds[2].at0 += Fp::one();
    Challenger vch;
    EXPECT_FALSE(sumcheckVerify(proof, 6, vch));
}

TEST(Sumcheck, TamperedFinalEvalFails)
{
    const auto table = randomTable(6, 5);
    Challenger ch;
    auto proof = sumcheckProve(table, ch);
    proof.finalEval += Fp::one();
    Challenger vch;
    EXPECT_FALSE(sumcheckVerify(proof, 6, vch));
}

TEST(Sumcheck, WrongRoundCountFails)
{
    const auto table = randomTable(6, 6);
    Challenger ch;
    auto proof = sumcheckProve(table, ch);
    proof.rounds.pop_back();
    Challenger vch;
    EXPECT_FALSE(sumcheckVerify(proof, 6, vch));
}

TEST(Sumcheck, CheatingTableDetectedByOracle)
{
    // A prover proving the sum of a *different* table passes the
    // in-protocol checks but fails the oracle comparison.
    const auto table = randomTable(5, 7);
    auto other = table;
    other[3] += Fp(17); // sum differs, so claimedSum differs too
    Challenger ch;
    const SumcheckProof proof = sumcheckProve(other, ch);

    Challenger vch;
    std::vector<Fp> point;
    ASSERT_TRUE(sumcheckVerify(proof, 5, vch, &point));
    EXPECT_NE(proof.finalEval, multilinearEval(table, point));
}

TEST(Sumcheck, MultilinearEvalAgreesOnHypercube)
{
    const auto table = randomTable(4, 8);
    // At boolean points the extension equals the table.
    for (size_t idx = 0; idx < table.size(); ++idx) {
        std::vector<Fp> point(4);
        for (uint32_t b = 0; b < 4; ++b)
            point[b] = Fp((idx >> b) & 1);
        EXPECT_EQ(multilinearEval(table, point), table[idx]) << idx;
    }
}

TEST(Sumcheck, MultilinearEvalIsLinearPerVariable)
{
    const auto table = randomTable(3, 9);
    SplitMix64 rng(10);
    std::vector<Fp> p0{randomFp(rng), randomFp(rng), randomFp(rng)};
    auto p1 = p0;
    auto pm = p0;
    const Fp r = randomFp(rng);
    p0[1] = Fp(0);
    p1[1] = Fp::one();
    pm[1] = r;
    const Fp v0 = multilinearEval(table, p0);
    const Fp v1 = multilinearEval(table, p1);
    EXPECT_EQ(multilinearEval(table, pm), v0 + r * (v1 - v0));
}

TEST(Sumcheck, ProofSizeIsLogarithmic)
{
    Challenger c1, c2;
    const auto small = sumcheckProve(randomTable(4, 11), c1);
    const auto large = sumcheckProve(randomTable(12, 12), c2);
    EXPECT_EQ(large.byteSize() - small.byteSize(),
              8 * 2 * (12 - 4)); // two field elements per extra round
}

TEST(Sumcheck, RecordsKernel)
{
    TraceRecorder recorder;
    ProverContext ctx;
    ctx.recorder = &recorder;
    Challenger ch;
    sumcheckProve(randomTable(8, 13), ch, ctx);
    ASSERT_EQ(recorder.trace().size(), 1u);
    EXPECT_STREQ(kernelPayloadName(recorder.trace().ops[0].payload),
                 "sumcheck");
}

TEST(SumcheckMapper, ComputeScalesWithTable)
{
    const HardwareConfig cfg = HardwareConfig::paperDefault();
    const KernelSim small = mapSumCheck(SumCheckKernel{16}, cfg);
    const KernelSim large = mapSumCheck(SumCheckKernel{20}, cfg);
    EXPECT_GT(large.cycles, small.cycles);
    EXPECT_EQ(small.cls, KernelClass::Polynomial);
}

TEST(SumcheckMapper, LargeTablesAreMemoryBound)
{
    const HardwareConfig cfg = HardwareConfig::paperDefault();
    const KernelSim sim = mapSumCheck(SumCheckKernel{24}, cfg);
    EXPECT_GT(sim.mem.cycles, sim.computeCycles);
}

} // namespace
} // namespace unizk
