/**
 * @file
 * Determinism tests for the parallel runtime: proofs, Merkle caps, and
 * batch inverses must be bitwise identical for any thread count. On a
 * single-core machine the extra threads are oversubscribed, but the
 * chunk interleavings they produce still exercise the guarantee.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "merkle/merkle_tree.h"
#include "plonk/plonk.h"
#include "serialize/proof_io.h"

namespace unizk {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

/** Restore the global pool to auto sizing when a test exits. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { setGlobalThreadCount(0); }
};

CircuitBuilder
powerBuilder()
{
    CircuitBuilder b;
    const Var x = b.input();
    const Var y = b.input();
    Var p = x;
    for (int i = 0; i < 3; ++i)
        p = b.mul(p, p);
    const Var sum = b.add(p, x);
    b.assertEqual(sum, y);
    return b;
}

TEST(ParallelDeterminism, PlonkProofBytesIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const Circuit circuit = powerBuilder().build(16);
    const FriConfig cfg = FriConfig::testing();

    std::vector<std::vector<Fp>> inputs;
    SplitMix64 rng(7);
    for (size_t r = 0; r < 3; ++r) {
        const Fp x = randomFp(rng);
        inputs.push_back({x, x.pow(8) + x});
    }

    std::vector<uint8_t> reference;
    for (const unsigned threads : kThreadCounts) {
        setGlobalThreadCount(threads);
        ASSERT_EQ(globalThreadPool().threadCount(), threads);
        ProverContext ctx;
        const PlonkProvingKey key = plonkSetup(circuit, cfg, ctx);
        const PlonkProof proof =
            plonkProve(circuit, key, inputs, cfg, ctx);
        EXPECT_TRUE(plonkVerify(key.constants->cap(), proof, cfg));
        const std::vector<uint8_t> bytes = serializePlonkProof(proof);
        if (reference.empty())
            reference = bytes;
        else
            EXPECT_EQ(bytes, reference)
                << "proof differs at " << threads << " threads";
    }
}

TEST(ParallelDeterminism, MerkleCapIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    SplitMix64 rng(13);
    std::vector<std::vector<Fp>> leaves(256);
    for (auto &leaf : leaves) {
        leaf.resize(135); // the paper's wide-leaf shape
        for (auto &x : leaf)
            x = randomFp(rng);
    }

    std::vector<MerkleCap> caps;
    for (const unsigned threads : kThreadCounts) {
        setGlobalThreadCount(threads);
        MerkleTree tree(leaves, 2);
        caps.push_back(tree.cap());
    }
    for (size_t k = 1; k < caps.size(); ++k) {
        ASSERT_EQ(caps[k].size(), caps[0].size());
        for (size_t i = 0; i < caps[0].size(); ++i)
            EXPECT_EQ(caps[k][i], caps[0][i])
                << "cap entry " << i << " differs at "
                << kThreadCounts[k] << " threads";
    }
}

TEST(ParallelDeterminism, BatchInverseIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    SplitMix64 rng(17);
    std::vector<Fp> xs(10'000);
    for (auto &x : xs)
        x = randomFp(rng);

    std::vector<Fp> reference;
    for (const unsigned threads : kThreadCounts) {
        setGlobalThreadCount(threads);
        std::vector<Fp> ys = xs;
        batchInverse(ys);
        if (reference.empty()) {
            reference = ys;
            for (size_t i = 0; i < xs.size(); ++i)
                EXPECT_EQ(xs[i] * ys[i], Fp::one());
        } else {
            EXPECT_EQ(ys, reference);
        }
    }
}

} // namespace
} // namespace unizk
