/**
 * @file
 * Unit and property tests for Goldilocks base-field and quadratic
 * extension-field arithmetic.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/extension.h"
#include "field/goldilocks.h"

namespace unizk {
namespace {

TEST(Goldilocks, Constants)
{
    EXPECT_EQ(Fp::modulus, 0xFFFFFFFF00000001ULL);
    // p - 1 = 2^32 * 3 * 5 * 17 * 257 * 65537
    const uint64_t odd = 0xFFFFFFFFULL;
    EXPECT_EQ((Fp::modulus - 1) >> 32, odd);
    EXPECT_EQ(odd, 3ULL * 5 * 17 * 257 * 65537);
}

TEST(Goldilocks, CanonicalConstruction)
{
    EXPECT_EQ(Fp(Fp::modulus).value(), 0u);
    EXPECT_EQ(Fp(Fp::modulus + 5).value(), 5u);
    EXPECT_EQ(Fp(~0ULL).value(), ~0ULL - Fp::modulus);
}

TEST(Goldilocks, AddSubEdgeCases)
{
    const Fp max(Fp::modulus - 1);
    EXPECT_EQ((max + Fp::one()).value(), 0u);
    EXPECT_EQ((max + max).value(), Fp::modulus - 2);
    EXPECT_EQ((Fp::zero() - Fp::one()).value(), Fp::modulus - 1);
    EXPECT_EQ((Fp::one() - max), Fp(2));
}

TEST(Goldilocks, MulKnownValues)
{
    // (p-1)^2 = p^2 - 2p + 1 === 1 (mod p)
    const Fp max(Fp::modulus - 1);
    EXPECT_EQ(max * max, Fp::one());
    // 2^32 * 2^32 = 2^64 === 2^32 - 1
    const Fp two32(uint64_t{1} << 32);
    EXPECT_EQ((two32 * two32).value(), (uint64_t{1} << 32) - 1);
    // 2^32 * 2^64: 2^96 === -1
    const Fp two64 = two32 * two32;
    EXPECT_EQ(two64 * two32, Fp(Fp::modulus - 1));
}

TEST(Goldilocks, FieldAxiomsRandomized)
{
    SplitMix64 rng(123);
    for (int i = 0; i < 200; ++i) {
        const Fp a = randomFp(rng);
        const Fp b = randomFp(rng);
        const Fp c = randomFp(rng);
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ(a - a, Fp::zero());
        EXPECT_EQ(a + a.neg(), Fp::zero());
    }
}

TEST(Goldilocks, InverseRandomized)
{
    SplitMix64 rng(456);
    for (int i = 0; i < 100; ++i) {
        Fp a = randomFp(rng);
        if (a.isZero())
            continue;
        EXPECT_EQ(a * a.inverse(), Fp::one());
    }
}

TEST(Goldilocks, PowMatchesRepeatedMul)
{
    SplitMix64 rng(789);
    const Fp a = randomFp(rng);
    Fp acc = Fp::one();
    for (uint64_t e = 0; e < 20; ++e) {
        EXPECT_EQ(a.pow(e), acc);
        acc *= a;
    }
}

TEST(Goldilocks, PrimitiveRootsHaveExactOrder)
{
    for (uint32_t k : {0u, 1u, 2u, 5u, 16u, 32u}) {
        const Fp w = Fp::primitiveRootOfUnity(k);
        EXPECT_EQ(w.pow(uint64_t{1} << k), Fp::one()) << "k=" << k;
        if (k > 0) {
            EXPECT_NE(w.pow(uint64_t{1} << (k - 1)), Fp::one())
                << "k=" << k;
        }
    }
}

TEST(Goldilocks, KnownTwoAdicGenerator)
{
    // 7^((p-1)/2^32) -- matches Plonky2's POWER_OF_TWO_GENERATOR.
    const Fp w = Fp::primitiveRootOfUnity(32);
    EXPECT_EQ(w.value(), 0x185629DCDA58878CULL);
}

TEST(Goldilocks, BatchInverseMatchesScalar)
{
    SplitMix64 rng(42);
    std::vector<Fp> xs;
    for (int i = 0; i < 50; ++i) {
        Fp x = randomFp(rng);
        if (x.isZero())
            x = Fp::one();
        xs.push_back(x);
    }
    auto inv = xs;
    batchInverse(inv);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_EQ(xs[i] * inv[i], Fp::one());
}

TEST(Goldilocks, BatchInverseEmptyOk)
{
    std::vector<Fp> xs;
    batchInverse(xs);
    EXPECT_TRUE(xs.empty());
}

TEST(Extension, SevenIsNonResidue)
{
    // 7^((p-1)/2) must be -1 for X^2-7 to be irreducible.
    const Fp legendre = Fp(7).pow((Fp::modulus - 1) / 2);
    EXPECT_EQ(legendre, Fp(Fp::modulus - 1));
}

TEST(Extension, FieldAxiomsRandomized)
{
    SplitMix64 rng(321);
    for (int i = 0; i < 100; ++i) {
        const Fp2 a = randomFp2(rng);
        const Fp2 b = randomFp2(rng);
        const Fp2 c = randomFp2(rng);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ(a - a, Fp2::zero());
    }
}

TEST(Extension, InverseRandomized)
{
    SplitMix64 rng(654);
    for (int i = 0; i < 50; ++i) {
        const Fp2 a = randomFp2(rng);
        if (a.isZero())
            continue;
        EXPECT_EQ(a * a.inverse(), Fp2::one());
    }
}

TEST(Extension, SquareRootOfSevenIsX)
{
    // X * X = 7 in F_p[X]/(X^2-7).
    const Fp2 x(Fp::zero(), Fp::one());
    EXPECT_EQ(x * x, Fp2(Fp(7)));
}

TEST(Extension, EmbeddingIsHomomorphic)
{
    SplitMix64 rng(987);
    for (int i = 0; i < 50; ++i) {
        const Fp a = randomFp(rng);
        const Fp b = randomFp(rng);
        EXPECT_EQ(Fp2(a) * Fp2(b), Fp2(a * b));
        EXPECT_EQ(Fp2(a) + Fp2(b), Fp2(a + b));
    }
}

TEST(Extension, FrobeniusViaPow)
{
    // a^(p^2) == a for all a (multiplicative group order p^2 - 1).
    SplitMix64 rng(555);
    const Fp2 a = randomFp2(rng);
    // a^(p^2-1) == 1  =>  check via (a^p)^p * a^0 ... use pow by p twice.
    Fp2 ap = a.pow(Fp::modulus);
    Fp2 app = ap.pow(Fp::modulus);
    EXPECT_EQ(app, a);
}

} // namespace
} // namespace unizk
