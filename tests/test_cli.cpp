/**
 * @file
 * Tests for CLI option parsing: happy-path value extraction plus the
 * loud-failure paths for non-numeric, trailing-garbage, negative, and
 * out-of-range values that strtoull/strtod used to mangle silently
 * (`--threads foo` parsed as 0; `--blowup -4` wrapped to 2^64 - 4).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.h"

namespace unizk {
namespace {

/** Build CliOptions from a brace list, faking argv. */
CliOptions
parse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::string prog = "test";
    argv.push_back(prog.data());
    for (auto &a : args)
        argv.push_back(a.data());
    return CliOptions(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesKeyValuePairs)
{
    const auto cli = parse({"--rows", "4096", "--label", "fib"});
    EXPECT_EQ(cli.getUint("rows", 0), 4096u);
    EXPECT_EQ(cli.getString("label", ""), "fib");
    EXPECT_TRUE(cli.has("rows"));
    EXPECT_FALSE(cli.has("cols"));
}

TEST(Cli, DefaultsWhenAbsent)
{
    const auto cli = parse({});
    EXPECT_EQ(cli.getUint("rows", 7), 7u);
    EXPECT_EQ(cli.getDouble("scale", 1.5), 1.5);
    EXPECT_EQ(cli.getString("label", "d"), "d");
}

TEST(Cli, BareFlagUsesDefault)
{
    const auto cli = parse({"--smoke", "--rows", "16"});
    EXPECT_TRUE(cli.has("smoke"));
    EXPECT_EQ(cli.getUint("smoke", 3), 3u); // empty value -> default
    EXPECT_EQ(cli.getUint("rows", 0), 16u);
}

TEST(Cli, AcceptsHexAndDouble)
{
    const auto cli = parse({"--mask", "0x10", "--scale", "2.5"});
    EXPECT_EQ(cli.getUint("mask", 0), 16u);
    EXPECT_EQ(cli.getDouble("scale", 0), 2.5);
}

using CliDeathTest = ::testing::Test;

TEST(CliDeathTest, NonNumericUintFailsLoudlyWithFlagName)
{
    const auto cli = parse({"--threads", "foo"});
    EXPECT_EXIT(cli.getUint("threads", 0),
                ::testing::ExitedWithCode(1), "threads");
}

TEST(CliDeathTest, TrailingGarbageRejected)
{
    const auto cli = parse({"--rows", "8x"});
    EXPECT_EXIT(cli.getUint("rows", 0), ::testing::ExitedWithCode(1),
                "rows");
}

TEST(CliDeathTest, NegativeUintRejectedInsteadOfWrapping)
{
    // strtoull would silently wrap "-4" to 2^64 - 4.
    const auto cli = parse({"--blowup", "-4"});
    EXPECT_EXIT(cli.getUint("blowup", 0), ::testing::ExitedWithCode(1),
                "blowup");
}

TEST(CliDeathTest, OutOfRangeUintRejected)
{
    const auto cli = parse({"--rows", "99999999999999999999999"});
    EXPECT_EXIT(cli.getUint("rows", 0), ::testing::ExitedWithCode(1),
                "rows");
}

TEST(CliDeathTest, NonNumericDoubleRejected)
{
    const auto cli = parse({"--scale", "fast"});
    EXPECT_EXIT(cli.getDouble("scale", 0), ::testing::ExitedWithCode(1),
                "scale");
}

TEST(Cli, NegativeDoubleAllowed)
{
    const auto cli = parse({"--offset", "-2.5"});
    EXPECT_EQ(cli.getDouble("offset", 0), -2.5);
}

} // namespace
} // namespace unizk
