/**
 * @file
 * Unit tests for the common utilities: bit tricks, RNG determinism, and
 * the kernel-time breakdown accounting used for Table 1.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/bits.h"
#include "common/cli.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace unizk {
namespace {

TEST(Bits, PowerOfTwoPredicates)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(Bits, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(1024), 10u);
    EXPECT_EQ(log2Exact(uint64_t{1} << 40), 40u);
}

TEST(Bits, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(4), 4u);
    EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
}

TEST(Bits, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    EXPECT_EQ(reverseBits(1, 10), uint64_t{1} << 9);
    // Involution.
    for (uint64_t x = 0; x < 64; ++x)
        EXPECT_EQ(reverseBits(reverseBits(x, 6), 6), x);
}

TEST(Bits, BitReversePermuteIsInvolution)
{
    std::vector<int> v(16);
    for (size_t i = 0; i < 16; ++i)
        v[i] = static_cast<int>(i);
    auto orig = v;
    bitReversePermute(v);
    EXPECT_NE(v, orig);
    bitReversePermute(v);
    EXPECT_EQ(v, orig);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2u);
    EXPECT_EQ(ceilDiv(11, 5), 3u);
    EXPECT_EQ(ceilDiv(1, 5), 1u);
}

TEST(Rng, Deterministic)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Stats, BreakdownFractionsSumToOne)
{
    KernelTimeBreakdown b;
    b.add(KernelClass::Ntt, 2.0);
    b.add(KernelClass::MerkleTree, 6.0);
    b.add(KernelClass::Polynomial, 1.5);
    b.add(KernelClass::LayoutTransform, 0.5);
    EXPECT_DOUBLE_EQ(b.total(), 10.0);
    EXPECT_DOUBLE_EQ(b.fraction(KernelClass::MerkleTree), 0.6);
    double sum = 0;
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        sum += b.fraction(static_cast<KernelClass>(i));
    }
    EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Stats, Accumulate)
{
    KernelTimeBreakdown a, b;
    a.add(KernelClass::Ntt, 1.0);
    b.add(KernelClass::Ntt, 2.0);
    b.add(KernelClass::OtherHash, 3.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.seconds(KernelClass::Ntt), 3.0);
    EXPECT_DOUBLE_EQ(a.seconds(KernelClass::OtherHash), 3.0);
}

TEST(Stats, EmptyBreakdownFractionIsZero)
{
    KernelTimeBreakdown b;
    EXPECT_DOUBLE_EQ(b.fraction(KernelClass::Ntt), 0.0);
}

TEST(Cli, ParsesKeyValuePairs)
{
    const char *argv[] = {"prog", "--rows", "4096", "--name", "mvm"};
    CliOptions cli(5, const_cast<char **>(argv));
    EXPECT_EQ(cli.getUint("rows", 0), 4096u);
    EXPECT_EQ(cli.getString("name", ""), "mvm");
}

TEST(Cli, DefaultsWhenMissing)
{
    const char *argv[] = {"prog"};
    CliOptions cli(1, const_cast<char **>(argv));
    EXPECT_EQ(cli.getUint("rows", 77), 77u);
    EXPECT_DOUBLE_EQ(cli.getDouble("scale", 1.5), 1.5);
    EXPECT_EQ(cli.getString("name", "def"), "def");
    EXPECT_FALSE(cli.has("rows"));
}

TEST(Cli, BareFlags)
{
    const char *argv[] = {"prog", "--fast", "--rows", "8"};
    CliOptions cli(4, const_cast<char **>(argv));
    EXPECT_TRUE(cli.has("fast"));
    EXPECT_EQ(cli.getUint("rows", 0), 8u);
    // A bare flag queried as an integer falls back to the default.
    EXPECT_EQ(cli.getUint("fast", 3), 3u);
}

TEST(Cli, HexAndDoubleValues)
{
    const char *argv[] = {"prog", "--addr", "0x40", "--f", "2.25"};
    CliOptions cli(5, const_cast<char **>(argv));
    EXPECT_EQ(cli.getUint("addr", 0), 64u);
    EXPECT_DOUBLE_EQ(cli.getDouble("f", 0), 2.25);
}

TEST(Cli, LastOccurrenceWins)
{
    const char *argv[] = {"prog", "--rows", "1", "--rows", "2"};
    CliOptions cli(5, const_cast<char **>(argv));
    EXPECT_EQ(cli.getUint("rows", 0), 2u);
}

TEST(Stats, ScaledBy)
{
    KernelTimeBreakdown b;
    b.add(KernelClass::Ntt, 4.0);
    b.add(KernelClass::MerkleTree, 6.0);
    const KernelTimeBreakdown s = b.scaledBy(0.5);
    EXPECT_DOUBLE_EQ(s.seconds(KernelClass::Ntt), 2.0);
    EXPECT_DOUBLE_EQ(s.total(), 5.0);
    // Fractions are scale-invariant.
    EXPECT_DOUBLE_EQ(s.fraction(KernelClass::MerkleTree),
                     b.fraction(KernelClass::MerkleTree));
}

class ThreadPoolCounts : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ThreadPoolCounts, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(GetParam());
    EXPECT_EQ(pool.threadCount(), GetParam());
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                           size_t{1000}}) {
        for (const size_t grain : {size_t{1}, size_t{3}, size_t{64},
                                   size_t{4096}}) {
            std::vector<std::atomic<uint32_t>> hits(n);
            pool.parallelFor(0, n, grain, [&](size_t lo, size_t hi) {
                EXPECT_LE(lo, hi);
                EXPECT_LE(hi, n);
                for (size_t i = lo; i < hi; ++i)
                    hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1u)
                    << "n=" << n << " grain=" << grain << " i=" << i;
        }
    }
}

TEST_P(ThreadPoolCounts, NonZeroBeginOffset)
{
    ThreadPool pool(GetParam());
    std::vector<std::atomic<uint32_t>> hits(100);
    pool.parallelFor(25, 100, 10, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(hits[i].load(), i >= 25 ? 1u : 0u) << "i=" << i;
}

TEST_P(ThreadPoolCounts, NestedParallelForRunsInline)
{
    // A parallelFor issued from inside a pool worker must not deadlock
    // waiting for the (busy) workers; it runs inline instead.
    ThreadPool pool(GetParam());
    std::vector<std::atomic<uint32_t>> hits(64 * 8);
    pool.parallelFor(0, 64, 4, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            pool.parallelFor(0, 8, 1, [&, i](size_t lo2, size_t hi2) {
                for (size_t j = lo2; j < hi2; ++j)
                    hits[i * 8 + j].fetch_add(1,
                                              std::memory_order_relaxed);
            });
    });
    for (size_t k = 0; k < hits.size(); ++k)
        EXPECT_EQ(hits[k].load(), 1u) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Counts, ThreadPoolCounts,
                         ::testing::Values(1, 2, 4, 8));

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount)
{
    // Chunk boundaries are a pure function of (range, grain, pool
    // size); running twice on the same pool gives the same partition.
    auto boundaries = [](ThreadPool &pool, size_t n, size_t grain) {
        Mutex m;
        std::vector<std::pair<size_t, size_t>> out;
        pool.parallelFor(0, n, grain, [&](size_t lo, size_t hi) {
            MutexLock lock(m);
            out.emplace_back(lo, hi);
        });
        std::sort(out.begin(), out.end());
        return out;
    };
    ThreadPool p4(4);
    const auto a = boundaries(p4, 1000, 7);
    const auto b = boundaries(p4, 1000, 7);
    EXPECT_EQ(a, b);
    // And every boundary is grain-aligned except possibly the last end.
    for (size_t k = 0; k + 1 < a.size(); ++k)
        EXPECT_EQ(a[k].second, a[k + 1].first);
}

TEST(ThreadPool, ResizeKeepsCoverage)
{
    ThreadPool pool(2);
    pool.resize(5);
    EXPECT_EQ(pool.threadCount(), 5u);
    std::vector<std::atomic<uint32_t>> hits(333);
    pool.parallelFor(0, 333, 16, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < 333; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "i=" << i;
}

TEST(ThreadPool, GlobalPoolThreadsFlag)
{
    // applyGlobalCliOptions routes --threads to the global pool.
    const char *argv[] = {"prog", "--threads", "3"};
    CliOptions cli(3, const_cast<char **>(argv));
    applyGlobalCliOptions(cli);
    EXPECT_EQ(globalThreadCount(), 3u);
    EXPECT_EQ(globalThreadPool().threadCount(), 3u);

    std::vector<std::atomic<uint32_t>> hits(50);
    parallelFor(0, 50, 4, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < 50; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "i=" << i;

    setGlobalThreadCount(0); // restore auto for other tests
}

TEST(ThreadPool, ConcurrentSubmittersSerialize)
{
    // Two threads submitting parallelFor on the same pool at once used
    // to hit the "parallel region already active" panic; regions now
    // serialize on the submit mutex (the service's prover lanes depend
    // on this).
    ThreadPool pool(4);
    std::vector<std::atomic<uint32_t>> hits(512);
    std::vector<std::thread> submitters;
    for (int s = 0; s < 4; ++s) {
        submitters.emplace_back([&] {
            for (int round = 0; round < 8; ++round) {
                pool.parallelFor(0, 128, 8, [&](size_t lo, size_t hi) {
                    for (size_t i = lo; i < hi; ++i)
                        hits[i].fetch_add(1,
                                          std::memory_order_relaxed);
                });
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    for (size_t i = 0; i < 128; ++i)
        EXPECT_EQ(hits[i].load(), 32u) << "i=" << i;
}

/** RAII environment-variable override for the tests below. */
// getenv/setenv/unsetenv are mt-unsafe only against concurrent env
// mutation; the tests using ScopedEnv are single-threaded and never
// overlap with pool workers reading the environment.
// NOLINTBEGIN(concurrency-mt-unsafe)
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr)
            saved_ = old;
        had_ = old != nullptr;
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    std::string saved_;
    bool had_ = false;
};
// NOLINTEND(concurrency-mt-unsafe)

TEST(Env, UintParsesWellFormedValues)
{
    ScopedEnv e("UNIZK_TEST_UINT", "42");
    EXPECT_EQ(envUint("UNIZK_TEST_UINT", 1, 100), 42u);
    ScopedEnv hex("UNIZK_TEST_UINT", "0x10");
    EXPECT_EQ(envUint("UNIZK_TEST_UINT", 1, 100), 16u);
}

TEST(Env, UintUnsetIsNullopt)
{
    ScopedEnv e("UNIZK_TEST_UINT", nullptr);
    EXPECT_FALSE(envUint("UNIZK_TEST_UINT", 1, 100).has_value());
}

TEST(Env, UintRejectsTrailingJunk)
{
    // Regression: bare strtoul() silently parsed "8abc" as 8.
    ScopedEnv e("UNIZK_TEST_UINT", "8abc");
    EXPECT_FALSE(envUint("UNIZK_TEST_UINT", 1, 100).has_value());
}

TEST(Env, UintRejectsOutOfRangeAndOverflow)
{
    // Regression: 2^32 + 1 wrapped to 1 on the unsigned narrowing cast.
    ScopedEnv big("UNIZK_TEST_UINT", "4294967297");
    EXPECT_FALSE(envUint("UNIZK_TEST_UINT", 1, 4096).has_value());
    ScopedEnv huge("UNIZK_TEST_UINT", "99999999999999999999999999");
    EXPECT_FALSE(envUint("UNIZK_TEST_UINT", 1, 4096).has_value());
    ScopedEnv zero("UNIZK_TEST_UINT", "0");
    EXPECT_FALSE(envUint("UNIZK_TEST_UINT", 1, 4096).has_value());
}

TEST(Env, UintRejectsSignsAndEmpty)
{
    // "-1" converts to a huge positive under strtoul's wraparound.
    ScopedEnv neg("UNIZK_TEST_UINT", "-1");
    EXPECT_FALSE(envUint("UNIZK_TEST_UINT", 1, 100).has_value());
    ScopedEnv plus("UNIZK_TEST_UINT", "+3");
    EXPECT_FALSE(envUint("UNIZK_TEST_UINT", 1, 100).has_value());
    ScopedEnv empty("UNIZK_TEST_UINT", "");
    EXPECT_FALSE(envUint("UNIZK_TEST_UINT", 1, 100).has_value());
}

TEST(Env, FlagSpellings)
{
    for (const char *on : {"1", "on", "true", "yes"}) {
        ScopedEnv e("UNIZK_TEST_FLAG", on);
        EXPECT_EQ(envFlag("UNIZK_TEST_FLAG"), true) << on;
    }
    for (const char *off : {"0", "off", "false", "no"}) {
        ScopedEnv e("UNIZK_TEST_FLAG", off);
        EXPECT_EQ(envFlag("UNIZK_TEST_FLAG"), false) << off;
    }
    // Regression: a typo like "flase" used to silently mean "enabled".
    ScopedEnv typo("UNIZK_TEST_FLAG", "flase");
    EXPECT_FALSE(envFlag("UNIZK_TEST_FLAG").has_value());
    ScopedEnv unset("UNIZK_TEST_FLAG", nullptr);
    EXPECT_FALSE(envFlag("UNIZK_TEST_FLAG").has_value());
}

TEST(Env, ChoiceMatchesAllowedSpellings)
{
    // The UNIZK_SIMD contract: exact lowercase spellings map to their
    // index in the allowed list.
    const auto allowed = {"auto", "avx2", "scalar"};
    {
        ScopedEnv e("UNIZK_TEST_CHOICE", "auto");
        EXPECT_EQ(envChoice("UNIZK_TEST_CHOICE", allowed), 0u);
    }
    {
        ScopedEnv e("UNIZK_TEST_CHOICE", "avx2");
        EXPECT_EQ(envChoice("UNIZK_TEST_CHOICE", allowed), 1u);
    }
    {
        ScopedEnv e("UNIZK_TEST_CHOICE", "scalar");
        EXPECT_EQ(envChoice("UNIZK_TEST_CHOICE", allowed), 2u);
    }
}

TEST(Env, ChoiceRejectsUnknownSpellingsAndUnset)
{
    const auto allowed = {"auto", "avx2", "scalar"};
    // Strict parsing: case variants, whitespace, and typos all warn
    // and fall back rather than silently meaning something.
    for (const char *bad : {"AVX2", " scalar", "scalar ", "sse", ""}) {
        ScopedEnv e("UNIZK_TEST_CHOICE", bad);
        EXPECT_FALSE(envChoice("UNIZK_TEST_CHOICE", allowed).has_value())
            << "'" << bad << "'";
    }
    ScopedEnv unset("UNIZK_TEST_CHOICE", nullptr);
    EXPECT_FALSE(envChoice("UNIZK_TEST_CHOICE", allowed).has_value());
}

TEST(Env, ThreadCountFallsBackOnMalformedEnv)
{
    {
        ScopedEnv e("UNIZK_THREADS", "3");
        setGlobalThreadCount(0);
        EXPECT_EQ(globalThreadCount(), 3u);
    }
    {
        // Under bare strtoul this silently became an 8-thread pool.
        ScopedEnv e("UNIZK_THREADS", "8abc");
        setGlobalThreadCount(0);
        unsigned hw = std::thread::hardware_concurrency();
        EXPECT_EQ(globalThreadCount(), hw ? hw : 1u);
    }
    ScopedEnv clear("UNIZK_THREADS", nullptr);
    setGlobalThreadCount(0); // restore auto for other tests
}

TEST(RngDeathTest, NextBelowZeroBoundAsserts)
{
    // Regression: bound == 0 divided by zero in ~0ULL / bound.
    SplitMix64 rng(7);
    EXPECT_DEATH(rng.nextBelow(0), "positive bound");
}

TEST(Rng, NextBelowBoundOneIsZero)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

} // namespace
} // namespace unizk
