/**
 * @file
 * Tests for the UniZK simulator: DRAM model behaviour, per-kernel
 * mapper properties (compute- vs memory-bound, scaling with hardware
 * resources), and the trace engine's aggregation.
 */

#include <gtest/gtest.h>

#include "sim/dram.h"
#include "sim/mappers.h"
#include "sim/simulator.h"

namespace unizk {
namespace {

HardwareConfig
defaultHw()
{
    return HardwareConfig::paperDefault();
}

TEST(Dram, SequentialStreamApproachesPeakBandwidth)
{
    const HardwareConfig cfg = defaultHw();
    DramModel dram(cfg);
    const uint64_t bytes = 64ull << 20;
    const DramResult r = dram.access({bytes, 0, false});
    const double achieved =
        static_cast<double>(r.readBytes) / static_cast<double>(r.cycles);
    // A pure sequential stream sustains the derated stream rate.
    EXPECT_GT(achieved,
              0.95 * cfg.dramStreamEfficiency * cfg.peakMemBytesPerCycle);
    EXPECT_EQ(r.readRequests, bytes / cfg.memRequestBytes);
}

TEST(Dram, SmallGranularityWastesBandwidth)
{
    const HardwareConfig cfg = defaultHw();
    DramModel dram(cfg);
    const uint64_t bytes = 1ull << 20;
    const DramResult seq = dram.access({bytes, 0, false});
    // 24-byte scattered runs (gate-evaluation style, Sec. 7.1): each
    // run occupies a full 64B request.
    const DramResult scat = dram.access({bytes, 24, false});
    EXPECT_GT(scat.cycles, 2 * seq.cycles);
    EXPECT_GT(scat.readBytes, 2 * bytes);
}

TEST(Dram, WritesCountedSeparately)
{
    DramModel dram(defaultHw());
    const DramResult w = dram.access({4096, 0, true});
    EXPECT_EQ(w.readRequests, 0u);
    EXPECT_EQ(w.writeRequests, 64u);
}

TEST(Dram, ZeroBytesFree)
{
    DramModel dram(defaultHw());
    const DramResult r = dram.access({0, 0, false});
    EXPECT_EQ(r.cycles, 0u);
}

TEST(Dram, BandwidthScaleKnob)
{
    HardwareConfig cfg = defaultHw();
    const uint64_t bytes = 16ull << 20;
    const uint64_t base = DramModel(cfg).access({bytes, 0, false}).cycles;
    cfg.memBandwidthScale = 2.0;
    const uint64_t fast = DramModel(cfg).access({bytes, 0, false}).cycles;
    EXPECT_LT(fast, base);
    EXPECT_NEAR(static_cast<double>(base) / static_cast<double>(fast),
                2.0, 0.1);
}

TEST(MapNtt, IsMemoryBound)
{
    // Section 7.2: NTT shows the highest bandwidth utilization but low
    // VSA utilization.
    const HardwareConfig cfg = defaultHw();
    NttKernel k{20, 8, false, true, true, PolyLayout::PolyMajor};
    const KernelSim sim = mapNtt(k, cfg);
    EXPECT_GT(sim.mem.cycles, sim.computeCycles);
    EXPECT_EQ(sim.cls, KernelClass::Ntt);
}

TEST(MapNtt, SmallNttFitsScratchpadAndSavesTraffic)
{
    const HardwareConfig cfg = defaultHw();
    NttKernel small{12, 1, false, false, false, PolyLayout::PolyMajor};
    NttKernel large{22, 1, false, false, false, PolyLayout::PolyMajor};
    const KernelSim s = mapNtt(small, cfg);
    const KernelSim l = mapNtt(large, cfg);
    // The large NTT (multi-trip, out of scratchpad) must move more than
    // proportionally more data.
    const double bytes_ratio =
        static_cast<double>(l.mem.readBytes + l.mem.writeBytes) /
        static_cast<double>(s.mem.readBytes + s.mem.writeBytes);
    EXPECT_GT(bytes_ratio, double{1 << 10});
}

TEST(MapMerkle, IsComputeBound)
{
    // Hash kernels saturate the VSAs with moderate bandwidth (Table 4).
    const HardwareConfig cfg = defaultHw();
    MerkleKernel k{1 << 16, 135, 4};
    const KernelSim sim = mapMerkle(k, cfg);
    EXPECT_GT(sim.computeCycles, sim.mem.cycles);
    EXPECT_EQ(sim.cls, KernelClass::MerkleTree);
}

TEST(MapMerkle, ScalesWithVsaCount)
{
    // Figure 10: Merkle-tree performance depends primarily on #VSAs.
    MerkleKernel k{1 << 16, 135, 4};
    HardwareConfig cfg = defaultHw();
    const uint64_t base = mapMerkle(k, cfg).cycles;
    cfg.numVsas = 64;
    const uint64_t doubled = mapMerkle(k, cfg).cycles;
    EXPECT_LT(doubled, base);
    EXPECT_NEAR(static_cast<double>(base) / static_cast<double>(doubled),
                2.0, 0.3);
}

TEST(MapVecOp, RandomAccessHurts)
{
    const HardwareConfig cfg = defaultHw();
    VecOpKernel seq{1 << 20, 4, 1, 8, 0};
    VecOpKernel rnd{1 << 20, 4, 1, 8, 24};
    EXPECT_GT(mapVecOp(rnd, cfg).cycles, mapVecOp(seq, cfg).cycles);
}

TEST(MapPartialProduct, SerialChainSmallVsElementwise)
{
    const HardwareConfig cfg = defaultHw();
    PartialProductKernel k{1 << 20, 8};
    const KernelSim sim = mapPartialProduct(k, cfg);
    EXPECT_GT(sim.cycles, 0u);
    EXPECT_EQ(sim.cls, KernelClass::Polynomial);
}

TEST(MapTranspose, IsFree)
{
    // The global transpose buffer hides layout transforms (Sec. 4).
    const KernelSim sim = mapTranspose(TransposeKernel{135, 1 << 16},
                                       defaultHw());
    EXPECT_EQ(sim.cycles, 0u);
    EXPECT_EQ(sim.cls, KernelClass::LayoutTransform);
}

TEST(Simulator, AggregatesClassesAndCounts)
{
    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{16, 4, true, false, false, PolyLayout::PolyMajor},
         "intt"});
    trace.ops.push_back({MerkleKernel{1 << 15, 135, 4}, "tree"});
    trace.ops.push_back({VecOpKernel{1 << 16, 2, 1, 4, 0}, "vec"});
    trace.ops.push_back({HashKernel{1000}, "pow"});
    trace.ops.push_back({TransposeKernel{16, 1 << 15}, "tr"});

    const SimReport report = simulateTrace(trace, defaultHw());
    EXPECT_GT(report.totalCycles, 0u);
    EXPECT_EQ(report.classStats(KernelClass::Ntt).kernels, 1u);
    EXPECT_EQ(report.classStats(KernelClass::MerkleTree).kernels, 1u);
    EXPECT_EQ(report.classStats(KernelClass::Polynomial).kernels, 1u);
    EXPECT_EQ(report.classStats(KernelClass::OtherHash).kernels, 1u);
    EXPECT_EQ(report.classStats(KernelClass::LayoutTransform).cycles, 0u);
    EXPECT_GT(report.totalReadRequests(), 0u);
    EXPECT_GT(report.totalWriteRequests(), 0u);

    double fractions = 0.0;
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        fractions += report.cycleFraction(static_cast<KernelClass>(i));
    }
    EXPECT_NEAR(fractions, 1.0, 1e-9);
}

TEST(Simulator, UtilizationShapesMatchTable4)
{
    // A representative mix: the per-class utilization ordering must
    // reproduce Table 4's qualitative shape -- NTT: high mem / low VSA;
    // hash: very high VSA / moderate mem; poly: low both.
    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{18, 135, false, true, true, PolyLayout::PolyMajor},
         "lde"});
    trace.ops.push_back({MerkleKernel{1 << 18, 135, 4}, "tree"});
    trace.ops.push_back({VecOpKernel{1 << 18, 8, 1, 16, 24}, "gates"});

    const SimReport r = simulateTrace(trace, defaultHw());
    EXPECT_GT(r.memUtilization(KernelClass::Ntt), 0.3);
    EXPECT_LT(r.vsaUtilization(KernelClass::Ntt), 0.2);
    EXPECT_GT(r.vsaUtilization(KernelClass::MerkleTree), 0.8);
    EXPECT_LT(r.memUtilization(KernelClass::MerkleTree), 0.5);
    EXPECT_LT(r.vsaUtilization(KernelClass::Polynomial), 0.2);
}

TEST(Simulator, SecondsUsesClock)
{
    KernelTrace trace;
    trace.ops.push_back({HashKernel{100000}, "pow"});
    HardwareConfig cfg = defaultHw();
    const SimReport a = simulateTrace(trace, cfg);
    cfg.clockGhz = 2.0;
    const SimReport b = simulateTrace(trace, cfg);
    EXPECT_NEAR(a.seconds() / b.seconds(), 2.0, 1e-9);
}

TEST(Simulator, FormatReportMentionsClasses)
{
    KernelTrace trace;
    trace.ops.push_back({MerkleKernel{1 << 12, 8, 2}, "tree"});
    const std::string text = formatReport(simulateTrace(trace,
                                                        defaultHw()));
    EXPECT_NE(text.find("MerkleTree"), std::string::npos);
    EXPECT_NE(text.find("read requests"), std::string::npos);
}

} // namespace
} // namespace unizk
