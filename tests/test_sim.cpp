/**
 * @file
 * Tests for the UniZK simulator: DRAM model behaviour, per-kernel
 * mapper properties (compute- vs memory-bound, scaling with hardware
 * resources), and the trace engine's aggregation.
 */

#include <gtest/gtest.h>

#include "sim/dram.h"
#include "sim/mappers.h"
#include "sim/simulator.h"

namespace unizk {
namespace {

HardwareConfig
defaultHw()
{
    return HardwareConfig::paperDefault();
}

TEST(Dram, SequentialStreamApproachesPeakBandwidth)
{
    const HardwareConfig cfg = defaultHw();
    DramModel dram(cfg);
    const uint64_t bytes = 64ull << 20;
    const DramResult r = dram.access({bytes, 0, false});
    const double achieved =
        static_cast<double>(r.readBytes) / static_cast<double>(r.cycles);
    // A pure sequential stream sustains the derated stream rate.
    EXPECT_GT(achieved,
              0.95 * cfg.dramStreamEfficiency * cfg.peakMemBytesPerCycle);
    EXPECT_EQ(r.readRequests, bytes / cfg.memRequestBytes);
}

TEST(Dram, SmallGranularityWastesBandwidth)
{
    const HardwareConfig cfg = defaultHw();
    DramModel dram(cfg);
    const uint64_t bytes = 1ull << 20;
    const DramResult seq = dram.access({bytes, 0, false});
    // 24-byte scattered runs (gate-evaluation style, Sec. 7.1): each
    // run occupies a full 64B request.
    const DramResult scat = dram.access({bytes, 24, false});
    EXPECT_GT(scat.cycles, 2 * seq.cycles);
    EXPECT_GT(scat.readBytes, 2 * bytes);
}

TEST(Dram, WritesCountedSeparately)
{
    DramModel dram(defaultHw());
    const DramResult w = dram.access({4096, 0, true});
    EXPECT_EQ(w.readRequests, 0u);
    EXPECT_EQ(w.writeRequests, 64u);
}

TEST(Dram, ZeroBytesFree)
{
    DramModel dram(defaultHw());
    const DramResult r = dram.access({0, 0, false});
    EXPECT_EQ(r.cycles, 0u);
}

TEST(Dram, PartialRunBilledByActualLength)
{
    // Regression: a stream whose byte count is not a multiple of its
    // run length used to bill the trailing partial run as a full run.
    // 1000 bytes in 384-byte runs = 2 full runs (6 requests each) plus
    // a 232-byte tail (4 requests), not 3 full runs (18 requests).
    const HardwareConfig cfg = defaultHw();
    ASSERT_EQ(cfg.memRequestBytes, 64u);
    DramModel dram(cfg);
    const DramResult r = dram.access({1000, 384, false});
    EXPECT_EQ(r.readRequests, 16u);
    EXPECT_EQ(r.readBytes, 16u * 64u);
    EXPECT_EQ(r.usefulBytes, 1000u);
}

TEST(Dram, TailShorterThanOneRequest)
{
    // 130 bytes in 64-byte runs: two full runs plus a 2-byte tail that
    // still occupies one whole request.
    DramModel dram(defaultHw());
    const DramResult r = dram.access({130, 64, false});
    EXPECT_EQ(r.readRequests, 3u);
    EXPECT_EQ(r.usefulBytes, 130u);
}

TEST(Dram, BandwidthScaleKnob)
{
    HardwareConfig cfg = defaultHw();
    const uint64_t bytes = 16ull << 20;
    const uint64_t base = DramModel(cfg).access({bytes, 0, false}).cycles;
    cfg.memBandwidthScale = 2.0;
    const uint64_t fast = DramModel(cfg).access({bytes, 0, false}).cycles;
    EXPECT_LT(fast, base);
    EXPECT_NEAR(static_cast<double>(base) / static_cast<double>(fast),
                2.0, 0.1);
}

TEST(MapNtt, IsMemoryBound)
{
    // Section 7.2: NTT shows the highest bandwidth utilization but low
    // VSA utilization.
    const HardwareConfig cfg = defaultHw();
    NttKernel k{20, 8, false, true, true, PolyLayout::PolyMajor};
    const KernelSim sim = mapNtt(k, cfg);
    EXPECT_GT(sim.mem.cycles, sim.computeCycles);
    EXPECT_EQ(sim.cls, KernelClass::Ntt);
}

TEST(MapNtt, SmallNttFitsScratchpadAndSavesTraffic)
{
    const HardwareConfig cfg = defaultHw();
    NttKernel small{12, 1, false, false, false, PolyLayout::PolyMajor};
    NttKernel large{22, 1, false, false, false, PolyLayout::PolyMajor};
    const KernelSim s = mapNtt(small, cfg);
    const KernelSim l = mapNtt(large, cfg);
    // The large NTT (multi-trip, out of scratchpad) must move more than
    // proportionally more data.
    const double bytes_ratio =
        static_cast<double>(l.mem.readBytes + l.mem.writeBytes) /
        static_cast<double>(s.mem.readBytes + s.mem.writeBytes);
    EXPECT_GT(bytes_ratio, double{1 << 10});
}

TEST(MapMerkle, IsComputeBound)
{
    // Hash kernels saturate the VSAs with moderate bandwidth (Table 4).
    const HardwareConfig cfg = defaultHw();
    MerkleKernel k{1 << 16, 135, 4};
    const KernelSim sim = mapMerkle(k, cfg);
    EXPECT_GT(sim.computeCycles, sim.mem.cycles);
    EXPECT_EQ(sim.cls, KernelClass::MerkleTree);
}

TEST(MapMerkle, ScalesWithVsaCount)
{
    // Figure 10: Merkle-tree performance depends primarily on #VSAs.
    MerkleKernel k{1 << 16, 135, 4};
    HardwareConfig cfg = defaultHw();
    const uint64_t base = mapMerkle(k, cfg).cycles;
    cfg.numVsas = 64;
    const uint64_t doubled = mapMerkle(k, cfg).cycles;
    EXPECT_LT(doubled, base);
    EXPECT_NEAR(static_cast<double>(base) / static_cast<double>(doubled),
                2.0, 0.3);
}

TEST(MapVecOp, RandomAccessHurts)
{
    const HardwareConfig cfg = defaultHw();
    VecOpKernel seq{1 << 20, 4, 1, 8, 0};
    VecOpKernel rnd{1 << 20, 4, 1, 8, 24};
    EXPECT_GT(mapVecOp(rnd, cfg).cycles, mapVecOp(seq, cfg).cycles);
}

TEST(MapPartialProduct, SerialChainSmallVsElementwise)
{
    const HardwareConfig cfg = defaultHw();
    PartialProductKernel k{1 << 20, 8};
    const KernelSim sim = mapPartialProduct(k, cfg);
    EXPECT_GT(sim.cycles, 0u);
    EXPECT_EQ(sim.cls, KernelClass::Polynomial);
}

TEST(MapTranspose, IsFree)
{
    // The global transpose buffer hides layout transforms (Sec. 4).
    const KernelSim sim = mapTranspose(TransposeKernel{135, 1 << 16},
                                       defaultHw());
    EXPECT_EQ(sim.cycles, 0u);
    EXPECT_EQ(sim.cls, KernelClass::LayoutTransform);
}

TEST(Simulator, AggregatesClassesAndCounts)
{
    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{16, 4, true, false, false, PolyLayout::PolyMajor},
         "intt"});
    trace.ops.push_back({MerkleKernel{1 << 15, 135, 4}, "tree"});
    trace.ops.push_back({VecOpKernel{1 << 16, 2, 1, 4, 0}, "vec"});
    trace.ops.push_back({HashKernel{1000}, "pow"});
    trace.ops.push_back({TransposeKernel{16, 1 << 15}, "tr"});

    const SimReport report = simulateTrace(trace, defaultHw());
    EXPECT_GT(report.totalCycles, 0u);
    EXPECT_EQ(report.classStats(KernelClass::Ntt).kernels, 1u);
    EXPECT_EQ(report.classStats(KernelClass::MerkleTree).kernels, 1u);
    EXPECT_EQ(report.classStats(KernelClass::Polynomial).kernels, 1u);
    EXPECT_EQ(report.classStats(KernelClass::OtherHash).kernels, 1u);
    EXPECT_EQ(report.classStats(KernelClass::LayoutTransform).cycles, 0u);
    EXPECT_GT(report.totalReadRequests(), 0u);
    EXPECT_GT(report.totalWriteRequests(), 0u);

    double fractions = 0.0;
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        fractions += report.cycleFraction(static_cast<KernelClass>(i));
    }
    EXPECT_NEAR(fractions, 1.0, 1e-9);
}

TEST(Simulator, UtilizationShapesMatchTable4)
{
    // A representative mix: the per-class utilization ordering must
    // reproduce Table 4's qualitative shape -- NTT: high mem / low VSA;
    // hash: very high VSA / moderate mem; poly: low both.
    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{18, 135, false, true, true, PolyLayout::PolyMajor},
         "lde"});
    trace.ops.push_back({MerkleKernel{1 << 18, 135, 4}, "tree"});
    trace.ops.push_back({VecOpKernel{1 << 18, 8, 1, 16, 24}, "gates"});

    const SimReport r = simulateTrace(trace, defaultHw());
    EXPECT_GT(r.memUtilization(KernelClass::Ntt), 0.3);
    EXPECT_LT(r.vsaUtilization(KernelClass::Ntt), 0.2);
    EXPECT_GT(r.vsaUtilization(KernelClass::MerkleTree), 0.8);
    EXPECT_LT(r.memUtilization(KernelClass::MerkleTree), 0.5);
    EXPECT_LT(r.vsaUtilization(KernelClass::Polynomial), 0.2);
}

TEST(Simulator, MemUtilizationCountsBusBytes)
{
    // Utilization measures bandwidth *occupied* (bus bytes moved), so a
    // scattered-access kernel whose small runs waste request granularity
    // must report mem utilization from bus bytes, with the useful-payload
    // ratio exposed separately via usefulFraction().
    KernelTrace trace;
    trace.ops.push_back({VecOpKernel{1 << 16, 4, 1, 8, 24}, "gates"});
    const HardwareConfig cfg = defaultHw();
    const SimReport r = simulateTrace(trace, cfg);
    const ClassStats &s = r.classStats(KernelClass::Polynomial);
    ASSERT_GT(s.cycles, 0u);
    ASSERT_GT(s.busBytes, s.usefulBytes);

    const double capacity = cfg.effectivePeakBytesPerCycle() *
                            static_cast<double>(s.cycles);
    EXPECT_NEAR(r.memUtilization(KernelClass::Polynomial),
                static_cast<double>(s.busBytes) / capacity, 1e-12);
    EXPECT_NEAR(r.usefulFraction(KernelClass::Polynomial),
                static_cast<double>(s.usefulBytes) /
                    static_cast<double>(s.busBytes),
                1e-12);
    EXPECT_LT(r.usefulFraction(KernelClass::Polynomial), 1.0);
    // Bus-byte utilization strictly exceeds the useful-bytes-only view.
    EXPECT_GT(r.memUtilization(KernelClass::Polynomial),
              static_cast<double>(s.usefulBytes) / capacity);
}

TEST(Simulator, UsefulFractionSequentialStreamIsOne)
{
    // A fully sequential NTT moves no wasted bytes (runs are multiples
    // of the request size), so every bus byte is payload.
    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{16, 4, false, false, false, PolyLayout::PolyMajor},
         "ntt"});
    const SimReport r = simulateTrace(trace, defaultHw());
    EXPECT_NEAR(r.usefulFraction(KernelClass::Ntt), 1.0, 1e-12);
}

TEST(Simulator, UsefulFractionZeroWithoutTraffic)
{
    KernelTrace trace;
    const SimReport r = simulateTrace(trace, defaultHw());
    EXPECT_EQ(r.usefulFraction(KernelClass::Ntt), 0.0);
    EXPECT_EQ(r.memUtilization(KernelClass::Ntt), 0.0);
}

TEST(Simulator, SecondsUsesClock)
{
    KernelTrace trace;
    trace.ops.push_back({HashKernel{100000}, "pow"});
    HardwareConfig cfg = defaultHw();
    const SimReport a = simulateTrace(trace, cfg);
    cfg.clockGhz = 2.0;
    const SimReport b = simulateTrace(trace, cfg);
    EXPECT_NEAR(a.seconds() / b.seconds(), 2.0, 1e-9);
}

TEST(Dram, RowBufferCountersPartitionRequests)
{
    const HardwareConfig cfg = defaultHw();
    DramModel dram(cfg);
    const uint64_t bytes = 4ull << 20;
    const DramResult r = dram.access({bytes, 0, false});
    // Every request is either a row hit or a row miss.
    EXPECT_EQ(r.rowHits + r.rowMisses, r.readRequests);
    // A sequential stream is row-buffer friendly: one miss per row.
    EXPECT_EQ(r.rowMisses, bytes / cfg.memRowBytes);
    EXPECT_GT(r.rowHits, r.rowMisses);
    // The stream's bytes stripe across every bank.
    ASSERT_EQ(r.bankBytes.size(), cfg.memBanks);
    uint64_t striped = 0;
    for (const uint64_t b : r.bankBytes) {
        EXPECT_GT(b, 0u);
        striped += b;
    }
    EXPECT_EQ(striped, r.readBytes);
}

TEST(Dram, ScatteredAccessMissesMoreRows)
{
    DramModel dram(defaultHw());
    const uint64_t bytes = 1ull << 20;
    const DramResult seq = dram.access({bytes, 0, false});
    const DramResult scat = dram.access({bytes, 24, false});
    // Each short run lands in its own row: far worse locality.
    EXPECT_GT(scat.rowMisses, 10 * seq.rowMisses);
    EXPECT_GT(scat.bankConflicts, seq.bankConflicts);
}

TEST(Dram, AccumulateMergesCounters)
{
    DramModel dram(defaultHw());
    DramResult total = dram.access({1 << 16, 0, false});
    const DramResult more = dram.access({1 << 16, 0, true});
    const uint64_t hits = total.rowHits;
    total.accumulate(more);
    EXPECT_EQ(total.rowHits, hits + more.rowHits);
    EXPECT_EQ(total.writeRequests, more.writeRequests);
    ASSERT_EQ(total.bankBytes.size(), more.bankBytes.size());
}

TEST(Simulator, HwCountersAccountEveryCycle)
{
    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{16, 4, true, false, false, PolyLayout::PolyMajor},
         "intt"});
    trace.ops.push_back({MerkleKernel{1 << 15, 135, 4}, "tree"});
    trace.ops.push_back({VecOpKernel{1 << 16, 2, 1, 4, 0}, "vec"});

    const HardwareConfig cfg = defaultHw();
    const SimReport r = simulateTrace(trace, cfg);
    ASSERT_EQ(r.hw.perVsa.size(), cfg.numVsas);
    for (const VsaCycles &v : r.hw.perVsa) {
        // busy + stall + idle partitions the full schedule on every VSA.
        EXPECT_EQ(v.busy + v.stall + v.idle, r.totalCycles);
    }
    EXPECT_GT(r.hw.perVsa[0].busy, 0u);
    EXPECT_GT(r.hw.perVsa[0].stall, 0u);
    EXPECT_GT(r.hw.dramRowHits, 0u);
    EXPECT_GT(r.hw.dramRowMisses, 0u);
    EXPECT_GT(r.hw.scratchpadHighWaterBytes, 0u);
    ASSERT_EQ(r.hw.dramBankBytes.size(), cfg.memBanks);
}

TEST(Simulator, HwCountersEmptyTraceAllZero)
{
    const SimReport r = simulateTrace(KernelTrace{}, defaultHw());
    for (const VsaCycles &v : r.hw.perVsa) {
        EXPECT_EQ(v.busy + v.stall + v.idle, 0u);
    }
    EXPECT_EQ(r.hw.dramRowHits, 0u);
    EXPECT_EQ(r.hw.scratchpadHighWaterBytes, 0u);
    EXPECT_TRUE(r.timeline.empty());
}

TEST(Simulator, ScratchpadEvictionsOnlyWhenOversubscribed)
{
    const HardwareConfig cfg = defaultHw();
    KernelTrace fits, spills;
    fits.ops.push_back(
        {NttKernel{12, 1, false, false, false, PolyLayout::PolyMajor},
         "small"});
    spills.ops.push_back(
        {NttKernel{22, 1, false, false, false, PolyLayout::PolyMajor},
         "large"});
    EXPECT_EQ(simulateTrace(fits, cfg).hw.scratchpadEvictions, 0u);
    EXPECT_GT(simulateTrace(spills, cfg).hw.scratchpadEvictions, 0u);
}

TEST(Simulator, TimelineSamplesCoverSchedule)
{
    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{16, 4, true, false, false, PolyLayout::PolyMajor},
         "intt"});
    trace.ops.push_back({MerkleKernel{1 << 15, 135, 4}, "tree"});

    const SimReport r = simulateTrace(trace, defaultHw());
    ASSERT_FALSE(r.timeline.empty());
    EXPECT_GT(r.timelineSamplePeriod, 0u);
    uint64_t last = 0;
    for (size_t i = 0; i < r.timeline.size(); ++i) {
        const TimelineSample &s = r.timeline[i];
        if (i > 0) {
            EXPECT_GT(s.cycle, last);
        }
        last = s.cycle;
        EXPECT_LT(s.cycle, r.totalCycles);
        EXPECT_GT(s.vsasBusy, 0u);
        EXPECT_GT(s.queueDepth, 0u);
        EXPECT_LE(s.queueDepth, trace.ops.size());
    }
    // Queue depth drains monotonically as kernels retire.
    EXPECT_GE(r.timeline.front().queueDepth,
              r.timeline.back().queueDepth);
}

TEST(Simulator, TimelinePeriodKnobIsHonored)
{
    KernelTrace trace;
    trace.ops.push_back({MerkleKernel{1 << 15, 135, 4}, "tree"});

    HardwareConfig cfg = defaultHw();
    cfg.timelineSamplePeriod = 1000;
    const SimReport r = simulateTrace(trace, cfg);
    EXPECT_EQ(r.timelineSamplePeriod, 1000u);
    ASSERT_GT(r.timeline.size(), 1u);
    EXPECT_EQ(r.timeline[1].cycle - r.timeline[0].cycle, 1000u);
}

TEST(Simulator, CountersAreAdditiveNotBehavioral)
{
    // Guard for the Table 3/4 reproduction: the hardware counters must
    // not perturb the modeled cycle counts.
    KernelTrace trace;
    trace.ops.push_back(
        {NttKernel{18, 135, false, true, true, PolyLayout::PolyMajor},
         "lde"});
    trace.ops.push_back({MerkleKernel{1 << 18, 135, 4}, "tree"});

    HardwareConfig cfg = defaultHw();
    const SimReport base = simulateTrace(trace, cfg);
    cfg.timelineSamplePeriod = 17; // extreme sampling
    const SimReport dense = simulateTrace(trace, cfg);
    EXPECT_EQ(base.totalCycles, dense.totalCycles);
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        EXPECT_EQ(base.classStats(c).cycles, dense.classStats(c).cycles);
    }
}

TEST(Simulator, FormatReportMentionsClasses)
{
    KernelTrace trace;
    trace.ops.push_back({MerkleKernel{1 << 12, 8, 2}, "tree"});
    const std::string text = formatReport(simulateTrace(trace,
                                                        defaultHw()));
    EXPECT_NE(text.find("MerkleTree"), std::string::npos);
    EXPECT_NE(text.find("read requests"), std::string::npos);
}

} // namespace
} // namespace unizk
