/**
 * @file
 * Tests for the Merkle tree: construction, proofs against caps of
 * various heights, tamper detection, and permutation-count accounting.
 */

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "hash/hashing.h"
#include "merkle/merkle_tree.h"

namespace unizk {
namespace {

std::vector<std::vector<Fp>>
randomLeaves(size_t count, size_t len, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<std::vector<Fp>> leaves(count);
    for (auto &leaf : leaves) {
        leaf.resize(len);
        for (auto &x : leaf)
            x = randomFp(rng);
    }
    return leaves;
}

class MerkleShapes
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint32_t>>
{};

TEST_P(MerkleShapes, AllLeavesVerify)
{
    const auto [count, len, cap_h] = GetParam();
    const auto leaves = randomLeaves(count, len, count + len);
    const uint32_t height = log2Exact(count);
    MerkleTree tree(leaves, cap_h);
    EXPECT_EQ(tree.cap().size(), size_t{1} << cap_h);
    for (size_t i = 0; i < count; ++i) {
        const auto proof = tree.prove(i);
        EXPECT_TRUE(
            MerkleTree::verify(leaves[i], i, proof, tree.cap(), height))
            << "leaf " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MerkleShapes,
    ::testing::Values(std::make_tuple(8, 5, 0),
                      std::make_tuple(16, 1, 0),
                      std::make_tuple(16, 135, 2), // paper leaf width
                      std::make_tuple(64, 12, 4),
                      std::make_tuple(4, 20, 2),   // cap == leaf level
                      std::make_tuple(2, 3, 0)));

TEST(Merkle, TamperedLeafFails)
{
    const auto leaves = randomLeaves(16, 7, 1);
    MerkleTree tree(leaves, 1);
    const auto proof = tree.prove(5);
    auto bad = leaves[5];
    bad[3] += Fp::one();
    EXPECT_FALSE(MerkleTree::verify(bad, 5, proof, tree.cap(), 4));
}

TEST(Merkle, WrongIndexFails)
{
    const auto leaves = randomLeaves(16, 7, 2);
    MerkleTree tree(leaves, 0);
    const auto proof = tree.prove(5);
    EXPECT_FALSE(
        MerkleTree::verify(tree.leaf(5), 6, proof, tree.cap(), 4));
}

TEST(Merkle, TamperedSiblingFails)
{
    const auto leaves = randomLeaves(16, 7, 3);
    MerkleTree tree(leaves, 0);
    auto proof = tree.prove(9);
    proof.siblings[1].elems[0] += Fp::one();
    EXPECT_FALSE(
        MerkleTree::verify(tree.leaf(9), 9, proof, tree.cap(), 4));
}

TEST(Merkle, WrongCapFails)
{
    const auto leaves = randomLeaves(8, 7, 4);
    MerkleTree tree(leaves, 1);
    const auto proof = tree.prove(2);
    auto cap = tree.cap();
    cap[0].elems[0] += Fp::one();
    // Index 2 maps to cap entry 0; corrupting it must break
    // verification.
    EXPECT_FALSE(MerkleTree::verify(tree.leaf(2), 2, proof, cap, 3));
}

TEST(Merkle, ProofLengthMatchesHeightMinusCap)
{
    const auto leaves = randomLeaves(64, 3, 5);
    MerkleTree tree(leaves, 2);
    EXPECT_EQ(tree.prove(0).siblings.size(), 4u); // log2(64) - 2
}

TEST(Merkle, CapAtLeafLevel)
{
    // cap_height == tree height: the cap IS the leaf hashes, proofs are
    // empty.
    const auto leaves = randomLeaves(8, 6, 6);
    MerkleTree tree(leaves, 3);
    const auto proof = tree.prove(4);
    EXPECT_TRUE(proof.siblings.empty());
    EXPECT_TRUE(MerkleTree::verify(leaves[4], 4, proof, tree.cap(), 3));
}

TEST(Merkle, DeterministicCap)
{
    const auto leaves = randomLeaves(16, 5, 7);
    MerkleTree t1(leaves, 1);
    MerkleTree t2(leaves, 1);
    EXPECT_EQ(t1.cap()[0], t2.cap()[0]);
    EXPECT_EQ(t1.cap()[1], t2.cap()[1]);
}

TEST(Merkle, DifferentLeavesDifferentCap)
{
    auto leaves = randomLeaves(16, 5, 8);
    MerkleTree t1(leaves, 0);
    leaves[11][0] += Fp::one();
    MerkleTree t2(leaves, 0);
    EXPECT_NE(t1.cap()[0], t2.cap()[0]);
}

TEST(Merkle, PermutationCountAccounting)
{
    // 16 leaves of 135 elements with cap height 1:
    // leaves: ceil(135/8)=17 perms each; interior: 16 - 2 = 14.
    EXPECT_EQ(MerkleTree::permutationCount(16, 135, 1), 16 * 17 + 14u);
    // Short leaves (<=4 elements) are packed, not hashed.
    EXPECT_EQ(MerkleTree::permutationCount(8, 3, 0), 7u);
}

TEST(Merkle, PermutationCountEmptyLeafMatchesExecutedHashes)
{
    // Regression: permutationCount used to charge 0 permutations for
    // leaf_len == 0, but the executed path (hashOrNoop -> hashNoPad)
    // permutes once on empty input, so the simulator's kernel-op
    // accounting undercounted by one permutation per leaf. The count
    // must delegate to the hashing layer's own accounting.
    EXPECT_EQ(hashOrNoopPermutationCount(0), 1u);
    EXPECT_EQ(hashOrNoopPermutationCount(0), permutationCountForLength(0));
    // 8 empty leaves, cap height 0: 8 leaf perms + 7 interior.
    EXPECT_EQ(MerkleTree::permutationCount(8, 0, 0), 8u + 7u);

    // The noop path (1..4 elements) really does execute zero
    // permutations, and the hashing path matches hashNoPad chunking.
    for (size_t len = 1; len <= 4; ++len)
        EXPECT_EQ(hashOrNoopPermutationCount(len), 0u) << "len=" << len;
    EXPECT_EQ(hashOrNoopPermutationCount(5), 1u);
    EXPECT_EQ(hashOrNoopPermutationCount(135),
              permutationCountForLength(135));
}

TEST(Merkle, TruncatedProofInteriorNodeForgeryFails)
{
    // Regression test for the proof-length soundness hole: with short
    // leaves (<= 4 elements, packed by hashOrNoop rather than hashed),
    // an interior digest can masquerade as a leaf. Present the level-2
    // node covering leaves 0..3 as "leaf data" with a 1-sibling proof;
    // the hash chain then reaches the root, and a verifier that does
    // not check the proof length against the tree height accepts a
    // statement about a leaf that was never committed.
    const auto leaves = randomLeaves(8, 4, 10);
    MerkleTree tree(leaves, 0);

    // Recompute the two children of the root by hand.
    std::array<HashOut, 8> d;
    for (size_t i = 0; i < 8; ++i)
        d[i] = hashOrNoop(leaves[i]);
    std::array<HashOut, 4> l1;
    for (size_t i = 0; i < 4; ++i)
        l1[i] = hashTwoToOne(d[2 * i], d[2 * i + 1]);
    const HashOut left = hashTwoToOne(l1[0], l1[1]);
    const HashOut right = hashTwoToOne(l1[2], l1[3]);

    // Sanity: the chain really does reach the committed root, so only
    // the explicit length check stands between the forgery and
    // acceptance.
    ASSERT_EQ(hashTwoToOne(left, right), tree.cap()[0]);

    const std::vector<Fp> forged_leaf(left.elems.begin(),
                                      left.elems.end());
    ASSERT_EQ(hashOrNoop(forged_leaf), left); // packed, not hashed
    MerkleProof forged_proof;
    forged_proof.siblings = {right};
    EXPECT_FALSE(MerkleTree::verify(forged_leaf, 0, forged_proof,
                                    tree.cap(), 3));

    // The same data with a full-length honest proof still verifies.
    EXPECT_TRUE(MerkleTree::verify(leaves[0], 0, tree.prove(0),
                                   tree.cap(), 3));
}

TEST(Merkle, WrongProofLengthFails)
{
    const auto leaves = randomLeaves(16, 7, 11);
    MerkleTree tree(leaves, 1);
    auto proof = tree.prove(3);
    ASSERT_EQ(proof.siblings.size(), 3u);

    auto short_proof = proof;
    short_proof.siblings.pop_back();
    EXPECT_FALSE(MerkleTree::verify(tree.leaf(3), 3, short_proof,
                                    tree.cap(), 4));

    auto long_proof = proof;
    long_proof.siblings.push_back(HashOut{});
    EXPECT_FALSE(MerkleTree::verify(tree.leaf(3), 3, long_proof,
                                    tree.cap(), 4));

    // Out-of-range leaf index for the claimed height is also rejected.
    EXPECT_FALSE(MerkleTree::verify(tree.leaf(3), 16 + 3, proof,
                                    tree.cap(), 4));

    EXPECT_TRUE(
        MerkleTree::verify(tree.leaf(3), 3, proof, tree.cap(), 4));
}

TEST(Merkle, ProofByteSize)
{
    const auto leaves = randomLeaves(16, 5, 9);
    MerkleTree tree(leaves, 0);
    EXPECT_EQ(tree.prove(0).byteSize(), 4 * HashOut::byteSize());
}

} // namespace
} // namespace unizk
