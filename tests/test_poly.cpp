/**
 * @file
 * Tests for the polynomial library, including the quotient-chunk
 * partial products (paper Eq. 1-2) and the grouped hardware schedule
 * (Fig. 6b).
 */

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "ntt/ntt.h"
#include "poly/polynomial.h"

namespace unizk {
namespace {

std::vector<Fp>
randomVector(size_t n, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<Fp> v(n);
    for (auto &x : v)
        x = randomFp(rng);
    return v;
}

Polynomial
randomPoly(size_t deg, uint64_t seed)
{
    auto c = randomVector(deg + 1, seed);
    if (c.back().isZero())
        c.back() = Fp::one();
    return Polynomial(std::move(c));
}

TEST(Polynomial, EvalHorner)
{
    // p(x) = 3 + 2x + x^2
    const Polynomial p(std::vector<Fp>{Fp(3), Fp(2), Fp(1)});
    EXPECT_EQ(p.eval(Fp(0)), Fp(3));
    EXPECT_EQ(p.eval(Fp(1)), Fp(6));
    EXPECT_EQ(p.eval(Fp(10)), Fp(123));
}

TEST(Polynomial, DegreeAndTrim)
{
    const Polynomial p(std::vector<Fp>{Fp(1), Fp(0), Fp(0)});
    EXPECT_EQ(p.degree(), 0u);
    EXPECT_TRUE(Polynomial().isZero());
    EXPECT_TRUE(Polynomial(std::vector<Fp>{Fp(0)}).isZero());
}

TEST(Polynomial, AddSubEvalConsistency)
{
    const auto p = randomPoly(7, 1);
    const auto q = randomPoly(4, 2);
    SplitMix64 rng(3);
    const Fp x = randomFp(rng);
    EXPECT_EQ((p + q).eval(x), p.eval(x) + q.eval(x));
    EXPECT_EQ((p - q).eval(x), p.eval(x) - q.eval(x));
}

TEST(Polynomial, MulSchoolbookVsEval)
{
    const auto p = randomPoly(5, 4);
    const auto q = randomPoly(6, 5);
    const auto r = p * q;
    EXPECT_EQ(r.degree(), p.degree() + q.degree());
    SplitMix64 rng(6);
    for (int i = 0; i < 10; ++i) {
        const Fp x = randomFp(rng);
        EXPECT_EQ(r.eval(x), p.eval(x) * q.eval(x));
    }
}

TEST(Polynomial, MulLargeUsesNttAndMatchesSchoolbook)
{
    // Force the NTT path (deg sum >= 64) and cross-check by evaluation.
    const auto p = randomPoly(70, 7);
    const auto q = randomPoly(80, 8);
    const auto r = p * q;
    EXPECT_EQ(r.degree(), 150u);
    SplitMix64 rng(9);
    for (int i = 0; i < 10; ++i) {
        const Fp x = randomFp(rng);
        EXPECT_EQ(r.eval(x), p.eval(x) * q.eval(x));
    }
}

TEST(Polynomial, MulByZero)
{
    const auto p = randomPoly(5, 10);
    EXPECT_TRUE((p * Polynomial()).isZero());
}

TEST(Polynomial, DivideByLinearExact)
{
    // p(X) = (X - z) * q(X) has remainder 0 and quotient q.
    const auto q = randomPoly(6, 11);
    const Fp z(12345);
    const Polynomial lin(std::vector<Fp>{z.neg(), Fp::one()});
    const auto p = q * lin;
    Fp rem;
    const auto quot = p.divideByLinear(z, &rem);
    EXPECT_TRUE(rem.isZero());
    EXPECT_EQ(quot, q);
}

TEST(Polynomial, DivideByLinearRemainderIsEval)
{
    const auto p = randomPoly(9, 12);
    const Fp z(999);
    Fp rem;
    p.divideByLinear(z, &rem);
    EXPECT_EQ(rem, p.eval(z));
}

TEST(Polynomial, LongDivideRoundTrip)
{
    const auto a = randomPoly(11, 13);
    const auto d = randomPoly(4, 14);
    Polynomial rem;
    const auto q = a.longDivide(d, &rem);
    EXPECT_EQ(q * d + rem, a);
    EXPECT_LT(rem.degree(), d.degree());
}

TEST(Polynomial, LongDivideByHigherDegree)
{
    const auto a = randomPoly(3, 15);
    const auto d = randomPoly(8, 16);
    Polynomial rem;
    const auto q = a.longDivide(d, &rem);
    EXPECT_TRUE(q.isZero());
    EXPECT_EQ(rem, a);
}

TEST(Polynomial, InterpolateRoundTrip)
{
    const auto p = randomPoly(6, 17);
    std::vector<Fp> xs, ys;
    for (uint64_t i = 1; i <= 7; ++i) {
        xs.push_back(Fp(i * 1000));
        ys.push_back(p.eval(Fp(i * 1000)));
    }
    EXPECT_EQ(Polynomial::interpolate(xs, ys), p);
}

TEST(Polynomial, MonomialAndConstant)
{
    const auto m = Polynomial::monomial(Fp(5), 3);
    EXPECT_EQ(m.eval(Fp(2)), Fp(40));
    EXPECT_EQ(Polynomial::constant(Fp(9)).eval(Fp(77)), Fp(9));
}

TEST(VecOps, ElementwiseMatchScalarLoop)
{
    const auto a = randomVector(100, 20);
    const auto b = randomVector(100, 21);
    const auto s = vecAdd(a, b);
    const auto d = vecSub(a, b);
    const auto m = vecMul(a, b);
    const auto sc = vecScale(a, Fp(3));
    const auto as = vecAddScalar(a, Fp(7));
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(s[i], a[i] + b[i]);
        EXPECT_EQ(d[i], a[i] - b[i]);
        EXPECT_EQ(m[i], a[i] * b[i]);
        EXPECT_EQ(sc[i], a[i] * Fp(3));
        EXPECT_EQ(as[i], a[i] + Fp(7));
    }
}

TEST(PartialProducts, ChunkProductsMatchDirect)
{
    const auto q = randomVector(64, 22);
    const auto h = quotientChunkProducts(q, 8);
    ASSERT_EQ(h.size(), 8u);
    for (size_t i = 0; i < h.size(); ++i) {
        Fp acc = Fp::one();
        for (size_t j = 0; j < 8; ++j)
            acc *= q[8 * i + j];
        EXPECT_EQ(h[i], acc);
    }
}

TEST(PartialProducts, RunningProducts)
{
    const auto h = randomVector(33, 23);
    const auto pp = partialProducts(h);
    Fp acc = Fp::one();
    for (size_t i = 0; i < h.size(); ++i) {
        acc *= h[i];
        EXPECT_EQ(pp[i], acc);
    }
}

class GroupedPartialProducts
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{};

TEST_P(GroupedPartialProducts, MatchesSerial)
{
    const auto [len, group] = GetParam();
    const auto h = randomVector(len, len * 7 + group);
    EXPECT_EQ(partialProductsGrouped(h, group), partialProducts(h));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GroupedPartialProducts,
    ::testing::Values(std::make_pair<size_t, size_t>(256, 32),  // paper n=32
                      std::make_pair<size_t, size_t>(100, 32),  // ragged tail
                      std::make_pair<size_t, size_t>(32, 32),   // single group
                      std::make_pair<size_t, size_t>(7, 3),
                      std::make_pair<size_t, size_t>(1, 4)));

TEST(Vanishing, MatchesDirectEvaluation)
{
    const size_t n = 16;
    const uint32_t blowup = 4;
    const Fp shift = defaultCosetShift();
    const auto z = vanishingOnCoset(n, blowup, shift);
    ASSERT_EQ(z.size(), n * blowup);
    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n * blowup));
    for (size_t i = 0; i < z.size(); ++i) {
        const Fp x = shift * w.pow(i);
        EXPECT_EQ(z[i], x.pow(n) - Fp::one());
    }
}

TEST(Vanishing, NonzeroEverywhereOnCoset)
{
    // The coset shift*K avoids H entirely, so Z_H never vanishes there;
    // the quotient computation in Plonk depends on this.
    const auto z = vanishingOnCoset(32, 8, defaultCosetShift());
    for (const auto &v : z)
        EXPECT_FALSE(v.isZero());
}

} // namespace
} // namespace unizk
