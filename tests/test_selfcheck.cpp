/**
 * @file
 * Runtime mirrors of the compile-time self-checks (field_checks.h,
 * poseidon_params.h) plus regression tests for operations that were
 * UB-prone before the sanitizer sweep: width-dependent shifts and raw
 * index extraction from field elements. The static_asserts prove the
 * constexpr evaluation; these tests prove the *runtime* code paths and
 * the live Poseidon instance agree with the constexpr tables.
 */

#include <gtest/gtest.h>

#include "field/field_checks.h"
#include "field/goldilocks.h"
#include "fri/fri_config.h"
#include "hash/poseidon.h"

namespace unizk {
namespace {

TEST(SelfCheck, GoldilocksIdentitiesHoldAtRuntime)
{
    EXPECT_EQ(Fp::modulus,
              0xFFFFFFFFFFFFFFFFULL - (1ULL << 32) + 2);
    EXPECT_EQ(Fp(7).inverse() * Fp(7), Fp(1));
    EXPECT_EQ(Fp(Fp::modulus - 1).squared(), Fp(1));
    EXPECT_TRUE(selfcheck::isPrimitiveRootOfOrderPow2(
        Fp::primitiveRootOfUnity(Fp::twoAdicity), Fp::twoAdicity));
    EXPECT_TRUE(selfcheck::generatesFullMultiplicativeGroup(
        Fp(Fp::multiplicativeGenerator)));
}

TEST(SelfCheck, RootTowerClosedUnderSquaring)
{
    for (uint32_t k = 1; k <= Fp::twoAdicity; ++k) {
        const Fp w = Fp::primitiveRootOfUnity(k);
        EXPECT_EQ(w.squared(), Fp::primitiveRootOfUnity(k - 1))
            << "tower broken at k=" << k;
    }
    EXPECT_EQ(Fp::primitiveRootOfUnity(0), Fp(1));
    EXPECT_EQ(Fp::primitiveRootOfUnity(1), Fp(Fp::modulus - 1));
}

TEST(SelfCheck, LivePoseidonTablesMatchConstexprSpec)
{
    const Poseidon &p = Poseidon::instance();
    const auto &arc = p.roundConstants();
    ASSERT_EQ(arc.size(), PoseidonConfig::totalRounds);
    for (size_t r = 0; r < arc.size(); ++r)
        for (size_t lane = 0; lane < PoseidonConfig::width; ++lane)
            ASSERT_EQ(arc[r][lane],
                      poseidon_params::kRoundConstants[r][lane])
                << "round " << r << " lane " << lane;

    const FpMatrix &mds = p.mdsMatrix();
    for (size_t i = 0; i < PoseidonConfig::width; ++i)
        for (size_t j = 0; j < PoseidonConfig::width; ++j)
            ASSERT_EQ(mds.at(i, j),
                      poseidon_params::kMdsMatrix
                          [i * PoseidonConfig::width + j])
                << "mds entry (" << i << ", " << j << ")";
}

TEST(SelfCheck, PoseidonChecksumsMatchRecordedSpec)
{
    // Recompute at runtime what the static_asserts pinned at compile
    // time; catches a miscompiled constexpr table.
    EXPECT_EQ(poseidon_params::arcChecksum(),
              poseidon_params::kArcChecksum);
    EXPECT_EQ(poseidon_params::mdsChecksum(),
              poseidon_params::kMdsChecksum);
}

TEST(SelfCheck, FpHighBitsBoundaryWidths)
{
    // bits=1 and bits=63 are the extremes the unizk_assert guard
    // admits; the old open-coded `value() >> (64 - bits)` invited a
    // shift-by-64 when bits could reach 0.
    const Fp top(0x8000000000000000ULL); // below the modulus
    EXPECT_EQ(fpHighBits(top, 1), 1u);
    EXPECT_EQ(fpHighBits(Fp(1), 1), 0u);
    EXPECT_EQ(fpHighBits(top, 63), 1ULL << 62);
    EXPECT_EQ(fpHighBits(Fp(Fp::modulus - 1), 32),
              (Fp::modulus - 1) >> 32);
}

TEST(SelfCheck, FpIndexBelowBoundaries)
{
    EXPECT_EQ(fpIndexBelow(Fp(12345), 1), 0u);
    EXPECT_EQ(fpIndexBelow(Fp(12345), uint64_t{1} << 63),
              12345u);
    EXPECT_EQ(fpIndexBelow(Fp(Fp::modulus - 1), 1024),
              (Fp::modulus - 1) % 1024);
}

TEST(SelfCheck, BlowupShiftIsWidthSafe)
{
    // blowup() computes `uint32_t{1} << blowupBits`; 31 is the largest
    // representable exponent and used to be `1 << n` with int
    // promotion (UB at 31 on the sign bit).
    FriConfig cfg;
    cfg.blowupBits = 31;
    EXPECT_EQ(cfg.blowup(), 1u << 31);
    cfg.blowupBits = 0;
    EXPECT_EQ(cfg.blowup(), 1u);
}

TEST(SelfCheck, Reduce128AgreesWithWideModulo)
{
    // Spot-check the constexpr reduction against __int128 arithmetic.
    SplitMix64 rng(2026);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t a = rng.next();
        const uint64_t b = rng.next();
        const unsigned __int128 wide =
            static_cast<unsigned __int128>(a) * b;
        const uint64_t expect =
            static_cast<uint64_t>(wide % Fp::modulus);
        EXPECT_EQ((Fp(a) * Fp(b)).value(), Fp(expect).value());
    }
}

} // namespace
} // namespace unizk
