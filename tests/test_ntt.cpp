/**
 * @file
 * Tests for the NTT library: all order/coset variants against the naive
 * DFT, inverse round trips, convolution property, LDE, and the
 * multi-dimensional decomposition used by the hardware mapper.
 */

#include <thread>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ntt/ntt.h"

namespace unizk {
namespace {

std::vector<Fp>
randomVector(size_t n, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<Fp> v(n);
    for (auto &x : v)
        x = randomFp(rng);
    return v;
}

Fp
randomShift(uint64_t seed)
{
    SplitMix64 rng(seed);
    Fp s = randomFp(rng);
    return s.isZero() ? Fp(3) : s;
}

/** Restore auto thread count when a test forces a pool size. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(unsigned threads)
    {
        setGlobalThreadCount(threads);
    }
    ~ThreadCountGuard() { setGlobalThreadCount(0); }
};

class NttSizes : public ::testing::TestWithParam<size_t>
{};

TEST_P(NttSizes, NttNNMatchesNaiveDft)
{
    const size_t n = GetParam();
    auto a = randomVector(n, n);
    const auto expect = naiveDft(a, Fp::one());
    nttNN(a);
    EXPECT_EQ(a, expect);
}

TEST_P(NttSizes, NttNRIsBitReversedNN)
{
    const size_t n = GetParam();
    auto a = randomVector(n, n + 1);
    auto b = a;
    nttNN(a);
    nttNR(b);
    bitReversePermute(b);
    EXPECT_EQ(a, b);
}

TEST_P(NttSizes, NttRNConsumesBitReversedInput)
{
    const size_t n = GetParam();
    auto a = randomVector(n, n + 2);
    auto b = a;
    nttNN(a);
    bitReversePermute(b); // present input in bit-reversed order
    nttRN(b);
    EXPECT_EQ(a, b);
}

TEST_P(NttSizes, InverseRoundTripNN)
{
    const size_t n = GetParam();
    const auto orig = randomVector(n, n + 3);
    auto a = orig;
    nttNN(a);
    inttNN(a);
    EXPECT_EQ(a, orig);
}

TEST_P(NttSizes, InverseRoundTripNRThenRN)
{
    const size_t n = GetParam();
    const auto orig = randomVector(n, n + 4);
    auto a = orig;
    nttNR(a);   // natural coeffs -> bit-reversed values
    inttRN(a);  // bit-reversed values -> natural coeffs
    EXPECT_EQ(a, orig);
}

TEST_P(NttSizes, InttNRThenNttRN)
{
    const size_t n = GetParam();
    const auto orig = randomVector(n, n + 5);
    auto a = orig;
    inttNR(a);
    nttRN(a);
    EXPECT_EQ(a, orig);
}

TEST_P(NttSizes, CosetNttMatchesNaive)
{
    const size_t n = GetParam();
    const Fp shift = defaultCosetShift();
    auto a = randomVector(n, n + 6);
    const auto expect = naiveDft(a, shift);
    cosetNttNN(a, shift);
    EXPECT_EQ(a, expect);
}

TEST_P(NttSizes, CosetInverseRoundTrip)
{
    const size_t n = GetParam();
    const Fp shift = defaultCosetShift();
    const auto orig = randomVector(n, n + 7);
    auto a = orig;
    cosetNttNN(a, shift);
    cosetInttNN(a, shift);
    EXPECT_EQ(a, orig);

    auto b = orig;
    cosetNttNR(b, shift);
    cosetInttRN(b, shift);
    EXPECT_EQ(b, orig);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, NttSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Ntt, NaiveIdftInvertsNaiveDft)
{
    const auto orig = randomVector(16, 99);
    const Fp shift = Fp(5);
    const auto vals = naiveDft(orig, shift);
    EXPECT_EQ(naiveIdft(vals, shift), orig);
}

TEST(Ntt, ConvolutionTheorem)
{
    // Multiplying polynomials via pointwise products of NTTs.
    const size_t n = 64;
    auto a = randomVector(n / 2, 1);
    auto b = randomVector(n / 2, 2);

    // Schoolbook product.
    std::vector<Fp> expect(n, Fp::zero());
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < b.size(); ++j)
            expect[i + j] += a[i] * b[j];

    a.resize(n, Fp::zero());
    b.resize(n, Fp::zero());
    nttNN(a);
    nttNN(b);
    std::vector<Fp> c(n);
    for (size_t i = 0; i < n; ++i)
        c[i] = a[i] * b[i];
    inttNN(c);
    EXPECT_EQ(c, expect);
}

TEST(Ntt, LdeAgreesWithNaiveCosetEvaluation)
{
    const size_t n = 32;
    const uint32_t blowup = 8;
    const Fp shift = defaultCosetShift();
    const auto coeffs = randomVector(n, 3);

    auto lde = lowDegreeExtension(coeffs, blowup, shift);
    ASSERT_EQ(lde.size(), n * blowup);
    bitReversePermute(lde); // back to natural order for comparison

    auto padded = coeffs;
    padded.resize(n * blowup, Fp::zero());
    const auto expect = naiveDft(padded, shift);
    EXPECT_EQ(lde, expect);
}

TEST(Ntt, LdeCosetSplitMatchesPaddedTransform)
{
    // The engine evaluates LDEs coset-by-coset (blowup size-n
    // sub-transforms) instead of one padded size-(n*blowup) transform.
    // Pin value-identity against the padded formulation for every
    // blowup, at the standard shift (cached coset table) and at random
    // shifts (pow-chain scaling), single polys and batches.
    for (const size_t n : {size_t{1}, size_t{2}, size_t{16}, size_t{64}}) {
        for (const uint32_t blowup : {1u, 2u, 4u, 8u, 16u}) {
            for (const Fp shift :
                 {defaultCosetShift(), randomShift(n * 17 + blowup)}) {
                const auto coeffs = randomVector(n, n * 31 + blowup);
                auto padded = coeffs;
                padded.resize(n * blowup, Fp::zero());
                cosetNttNR(padded, shift);

                EXPECT_EQ(lowDegreeExtension(coeffs, blowup, shift),
                          padded)
                    << "n=" << n << " blowup=" << blowup;

                const std::vector<std::vector<Fp>> batch{coeffs, coeffs};
                const auto nr = ldeBatch(batch, blowup, shift);
                EXPECT_EQ(nr[0], padded);
                EXPECT_EQ(nr[1], padded);

                auto nn_expect = padded;
                bitReversePermute(nn_expect);
                const auto nn = ldeBatchNN(batch, blowup, shift);
                EXPECT_EQ(nn[0], nn_expect);
                EXPECT_EQ(nn[1], nn_expect);
            }
        }
    }
}

TEST(Ntt, LdePreservesLowDegreeStructure)
{
    // The LDE of a degree-(n-1) polynomial, restricted back via iNTT on
    // the big domain, has zero coefficients above n.
    const size_t n = 16;
    const uint32_t blowup = 4;
    const Fp shift = defaultCosetShift();
    const auto coeffs = randomVector(n, 4);

    auto lde = lowDegreeExtension(coeffs, blowup, shift);
    cosetInttRN(lde, shift);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(lde[i], coeffs[i]);
    for (size_t i = n; i < lde.size(); ++i)
        EXPECT_TRUE(lde[i].isZero()) << "coefficient " << i;
}

TEST(Ntt, DecomposeDims)
{
    EXPECT_EQ(decomposeNttDims(9, 3), (std::vector<uint32_t>{3, 3, 3}));
    // Balanced, not greedy: the old greedy split gave {3, 3, 3, 1} with
    // a degenerate size-2 trailing dimension.
    EXPECT_EQ(decomposeNttDims(10, 3), (std::vector<uint32_t>{3, 3, 2, 2}));
    EXPECT_EQ(decomposeNttDims(5, 5), (std::vector<uint32_t>{5}));
    EXPECT_EQ(decomposeNttDims(2, 5), (std::vector<uint32_t>{2}));
}

TEST(Ntt, DecomposeDimsBalancedRegression)
{
    // Pin the splits the simulator's NTT mapper sees for the realistic
    // range of transform sizes against the hardware dimension limit of
    // 2^8 (the paper's SAM tile). The greedy splitter used to emit
    // degenerate trailing dims, e.g. log 17 -> [8, 8, 1].
    const std::vector<std::vector<uint32_t>> expect = {
        {6, 6},       // log 12
        {7, 6},       // log 13
        {7, 7},       // log 14
        {8, 7},       // log 15
        {8, 8},       // log 16
        {6, 6, 5},    // log 17 (greedy would say [8, 8, 1])
        {6, 6, 6},    // log 18
        {7, 6, 6},    // log 19
        {7, 7, 6},    // log 20
        {7, 7, 7},    // log 21
        {8, 7, 7},    // log 22
        {8, 8, 7},    // log 23
        {8, 8, 8},    // log 24
    };
    for (uint32_t log = 12; log <= 24; ++log)
        EXPECT_EQ(decomposeNttDims(log, 8), expect[log - 12])
            << "log size " << log;

    // Structural invariants across a wider sweep: dims sum to the log
    // size, respect the limit, use the minimum count, and are balanced
    // to within one bit with larger dims first.
    for (uint32_t log = 1; log <= 28; ++log) {
        for (uint32_t max = 1; max <= 10; ++max) {
            const auto dims = decomposeNttDims(log, max);
            ASSERT_EQ(dims.size(), ceilDiv(log, max));
            uint32_t sum = 0;
            for (size_t i = 0; i < dims.size(); ++i) {
                sum += dims[i];
                EXPECT_LE(dims[i], max);
                EXPECT_GE(dims[i], 1u);
                if (i > 0) {
                    EXPECT_LE(dims[i - 1] - dims[i], 1u);
                }
            }
            EXPECT_EQ(sum, log);
        }
    }
}

class MultidimSizes
    : public ::testing::TestWithParam<std::pair<size_t, uint32_t>>
{};

TEST_P(MultidimSizes, MatchesDirectNtt)
{
    const auto [n, log_max] = GetParam();
    auto a = randomVector(n, n * 31 + log_max);
    auto b = a;
    nttNN(a);
    multidimNttNN(b, log_max);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, MultidimSizes,
    ::testing::Values(std::make_pair<size_t, uint32_t>(512, 3),  // 8x8x8
                      std::make_pair<size_t, uint32_t>(1024, 5), // 32x32
                      std::make_pair<size_t, uint32_t>(64, 5),   // 32x2
                      std::make_pair<size_t, uint32_t>(256, 4),
                      std::make_pair<size_t, uint32_t>(32, 5)));

TEST(Ntt, SizeOneIsIdentity)
{
    std::vector<Fp> a{Fp(42)};
    nttNN(a);
    EXPECT_EQ(a[0], Fp(42));
    inttNN(a);
    EXPECT_EQ(a[0], Fp(42));
}

TEST(Ntt, SizeOneAllVariants)
{
    const Fp shift = defaultCosetShift();
    std::vector<Fp> a{Fp(7)};
    nttNR(a);
    nttRN(a);
    inttRN(a);
    inttNR(a);
    cosetNttNN(a, shift);
    cosetInttNN(a, shift);
    EXPECT_EQ(a[0], Fp(7));
    EXPECT_EQ(lowDegreeExtension({Fp(7)}, 1, shift),
              std::vector<Fp>{Fp(7)});
}

TEST(Ntt, DecomposeDimsZeroSize)
{
    // A size-2^0 = 1 transform needs no dimensions at all.
    EXPECT_EQ(decomposeNttDims(0, 3), std::vector<uint32_t>{});
}

TEST(NttDeathTest, EmptyInputPanicsWithClearMessage)
{
    // Size-0 input used to reach log2Exact(0) and die with a confusing
    // "power of two" message; the entry points now reject it up front.
    std::vector<Fp> empty;
    EXPECT_DEATH(nttNN(empty), "empty");
    EXPECT_DEATH(nttNR(empty), "empty");
    EXPECT_DEATH(nttRN(empty), "empty");
    EXPECT_DEATH(inttNN(empty), "empty");
    EXPECT_DEATH(inttNR(empty), "empty");
    EXPECT_DEATH(inttRN(empty), "empty");
    EXPECT_DEATH(multidimNttNN(empty, 3), "empty");
    EXPECT_DEATH(lowDegreeExtension({}, 4, defaultCosetShift()), "empty");
    std::vector<Fp2> empty_ext;
    EXPECT_DEATH(inttNNExt(empty_ext), "empty");
}

TEST(NttDeathTest, NonPowerOfTwoPanics)
{
    std::vector<Fp> a{Fp(1), Fp(2), Fp(3)};
    EXPECT_DEATH(nttNN(a), "power of two");
}

// ---- Exhaustive equivalence sweep: every order variant at every
// power-of-two size 2^1..2^12 against the quadratic-time oracles, with
// random (not just standard) coset shifts. nttNN anchors directly to
// naiveDft; the other variants are checked against nttNN through exact
// permutation/inversion identities, which keeps the sweep O(n log n)
// per variant instead of O(n^2) each.

TEST(NttExhaustive, AllVariantsAllSizesAgainstOracle)
{
    for (uint32_t log = 1; log <= 12; ++log) {
        const size_t n = size_t{1} << log;
        const Fp shift = randomShift(1000 + log);
        const auto orig = randomVector(n, 2000 + log);

        // Anchors: one forward and one coset evaluation per size paid
        // at O(n^2).
        const auto plain = naiveDft(orig, Fp::one());
        const auto coset = naiveDft(orig, shift);

        auto a = orig;
        nttNN(a);
        ASSERT_EQ(a, plain) << "nttNN size " << n;

        a = orig;
        nttNR(a);
        bitReversePermute(a);
        EXPECT_EQ(a, plain) << "nttNR size " << n;

        a = orig;
        bitReversePermute(a);
        nttRN(a);
        EXPECT_EQ(a, plain) << "nttRN size " << n;

        a = plain;
        inttNN(a);
        EXPECT_EQ(a, orig) << "inttNN size " << n;

        a = plain;
        inttNR(a);
        bitReversePermute(a);
        EXPECT_EQ(a, orig) << "inttNR size " << n;

        a = plain;
        bitReversePermute(a);
        inttRN(a);
        EXPECT_EQ(a, orig) << "inttRN size " << n;

        a = orig;
        cosetNttNN(a, shift);
        EXPECT_EQ(a, coset) << "cosetNttNN size " << n;

        a = orig;
        cosetNttNR(a, shift);
        bitReversePermute(a);
        EXPECT_EQ(a, coset) << "cosetNttNR size " << n;

        a = coset;
        cosetInttNN(a, shift);
        EXPECT_EQ(a, orig) << "cosetInttNN size " << n;

        a = coset;
        bitReversePermute(a);
        cosetInttRN(a, shift);
        EXPECT_EQ(a, orig) << "cosetInttRN size " << n;

        EXPECT_EQ(naiveIdft(coset, shift), orig)
            << "naiveIdft size " << n;

        // Seed-era scalar reference stays equivalent to the engine.
        a = orig;
        nttNR(a);
        auto b = orig;
        scalarNttNR(b);
        EXPECT_EQ(a, b) << "scalarNttNR size " << n;
    }
}

TEST(NttExhaustive, MultidimMatchesAtEveryMaxDim)
{
    for (uint32_t log = 1; log <= 10; ++log) {
        const size_t n = size_t{1} << log;
        for (uint32_t max = 1; max <= log; ++max) {
            auto a = randomVector(n, 3000 + 31 * log + max);
            auto b = a;
            nttNN(a);
            multidimNttNN(b, max);
            EXPECT_EQ(a, b) << "size " << n << " max dim 2^" << max;
        }
    }
}

TEST(NttExhaustive, ExtensionFieldActsLimbwise)
{
    // Twiddles are base-field, so the Fp2 iNTT must equal two
    // independent base-field iNTTs on the limbs.
    for (uint32_t log = 1; log <= 10; ++log) {
        const size_t n = size_t{1} << log;
        const Fp shift = randomShift(4000 + log);
        auto lo = randomVector(n, 5000 + log);
        auto hi = randomVector(n, 6000 + log);
        std::vector<Fp2> v(n);
        for (size_t i = 0; i < n; ++i)
            v[i] = Fp2(lo[i], hi[i]);

        auto plain = v;
        inttNNExt(plain);
        auto coset = v;
        cosetInttNNExt(coset, shift);

        auto lo_coset = lo, hi_coset = hi;
        inttNN(lo);
        inttNN(hi);
        cosetInttNN(lo_coset, shift);
        cosetInttNN(hi_coset, shift);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(plain[i], Fp2(lo[i], hi[i])) << "size " << n;
            EXPECT_EQ(coset[i], Fp2(lo_coset[i], hi_coset[i]))
                << "size " << n;
        }
    }
}

// ---- Batch API: identical values to the per-polynomial entry points,
// whichever parallel axis the engine picks.

TEST(NttBatch, MatchesPerPolyEntryPoints)
{
    const size_t n = 256;
    const uint32_t blowup = 4;
    const Fp shift = defaultCosetShift();
    std::vector<std::vector<Fp>> polys(7);
    for (size_t p = 0; p < polys.size(); ++p)
        polys[p] = randomVector(n, 7000 + p);

    auto batch = polys;
    inttBatchNN(batch);
    for (size_t p = 0; p < polys.size(); ++p) {
        auto one = polys[p];
        inttNN(one);
        EXPECT_EQ(batch[p], one) << "inttBatchNN poly " << p;
    }

    batch = polys;
    nttBatchNR(batch);
    for (size_t p = 0; p < polys.size(); ++p) {
        auto one = polys[p];
        nttNR(one);
        EXPECT_EQ(batch[p], one) << "nttBatchNR poly " << p;
    }

    const auto ldes = ldeBatch(polys, blowup, shift);
    const auto ldes_nn = ldeBatchNN(polys, blowup, shift);
    for (size_t p = 0; p < polys.size(); ++p) {
        EXPECT_EQ(ldes[p], lowDegreeExtension(polys[p], blowup, shift))
            << "ldeBatch poly " << p;
        auto nn = polys[p];
        nn.resize(n * blowup, Fp::zero());
        cosetNttNN(nn, shift);
        EXPECT_EQ(ldes_nn[p], nn) << "ldeBatchNN poly " << p;
    }
}

// ---- Pool-parallel transforms: sizes past the four-step threshold
// with an oversubscribed pool must match both the seed scalar path and
// the single-thread engine exactly (proof byte-identity rests on this).

TEST(NttParallel, LargeTransformsThreadCountInvariant)
{
    const size_t n = size_t{1} << 16;
    const Fp shift = defaultCosetShift();
    const auto orig = randomVector(n, 8001);

    std::vector<Fp> serial_nr, serial_lde, serial_roundtrip;
    {
        ThreadCountGuard guard(1);
        serial_nr = orig;
        nttNR(serial_nr);
        serial_lde = scalarLowDegreeExtension(orig, 2, shift);
        serial_roundtrip = orig;
        cosetNttNN(serial_roundtrip, shift);
    }
    auto scalar = orig;
    scalarNttNR(scalar);
    ASSERT_EQ(serial_nr, scalar);

    for (unsigned threads : {2u, 4u, 8u}) {
        ThreadCountGuard guard(threads);
        auto a = orig;
        nttNR(a);
        EXPECT_EQ(a, serial_nr) << threads << " threads";

        EXPECT_EQ(lowDegreeExtension(orig, 2, shift), serial_lde)
            << threads << " threads";

        a = orig;
        cosetNttNN(a, shift);
        EXPECT_EQ(a, serial_roundtrip) << threads << " threads";
        cosetInttNN(a, shift);
        EXPECT_EQ(a, orig) << threads << " threads";
    }
}

// ---- Twiddle registry behaviour.

TEST(NttTwiddles, CacheOnOffProducesIdenticalValues)
{
    const size_t n = 2048;
    const auto orig = randomVector(n, 9001);
    const Fp shift = defaultCosetShift();

    setTwiddleCacheEnabled(true);
    auto cached = orig;
    cosetNttNR(cached, shift);

    setTwiddleCacheEnabled(false);
    EXPECT_FALSE(twiddleCacheEnabled());
    auto uncached = orig;
    cosetNttNR(uncached, shift);

    setTwiddleCacheEnabled(true);
    EXPECT_TRUE(twiddleCacheEnabled());
    EXPECT_EQ(cached, uncached);
}

TEST(NttTwiddles, TableLayoutMatchesRootPowers)
{
    const uint32_t log = 10;
    const size_t n = size_t{1} << log;
    const auto t = acquireTwiddles(log);
    const Fp w = Fp::primitiveRootOfUnity(log);
    const Fp w_inv = w.inverse();
    ASSERT_EQ(t->fwd.size(), n / 2);
    ASSERT_EQ(t->inv.size(), n / 2);
    Fp p = Fp::one(), q = Fp::one();
    for (size_t j = 0; j < n / 2; ++j) {
        EXPECT_EQ(t->fwd[j], p);
        EXPECT_EQ(t->inv[j], q);
        p *= w;
        q *= w_inv;
    }
    ASSERT_EQ(t->cosetFwd.size(), n);
    const Fp g = defaultCosetShift();
    EXPECT_EQ(t->cosetFwd[1], g);
    EXPECT_EQ(t->cosetInv[1], g.inverse());
    EXPECT_EQ(t->sizeInv, Fp(static_cast<uint64_t>(n)).inverse());
}

TEST(NttTwiddles, ConcurrentFirstTouchIsSafe)
{
    // Many plain threads race on first touch of the same registry
    // slots while running (sub-threshold, hence inline) transforms.
    // Run under TSAN in CI to prove the registry's locking discipline.
    clearTwiddleCache();
    setTwiddleCacheEnabled(true);
    constexpr unsigned num_threads = 8;
    constexpr uint32_t min_log = 4, max_log = 12;
    std::vector<std::vector<Fp>> results(num_threads);
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
        threads.emplace_back([t, &results] {
            for (uint32_t log = min_log; log <= max_log; ++log) {
                const auto table = acquireTwiddles(log);
                unizk_assert(table->logSize == log, "wrong table");
            }
            auto v = randomVector(size_t{1} << max_log, 42);
            nttNN(v);
            inttNN(v);
            results[t] = std::move(v);
        });
    }
    for (auto &th : threads)
        th.join();
    const auto expect = randomVector(size_t{1} << max_log, 42);
    for (unsigned t = 0; t < num_threads; ++t)
        EXPECT_EQ(results[t], expect) << "thread " << t;
}

TEST(NttTwiddles, RegistrySharesAndCachesTables)
{
    clearTwiddleCache();
    setTwiddleCacheEnabled(true);
    const auto a = acquireTwiddles(9);
    const auto b = acquireTwiddles(9);
    EXPECT_EQ(a.get(), b.get()); // cached: same table served twice

    setTwiddleCacheEnabled(false);
    const auto c = acquireTwiddles(9);
    const auto d = acquireTwiddles(9);
    EXPECT_NE(c.get(), d.get()); // disabled: fresh builds per call
    EXPECT_EQ(c->fwd, d->fwd);   // ...with identical contents
    EXPECT_EQ(a->fwd, c->fwd);
    setTwiddleCacheEnabled(true);
}

TEST(Ntt, LinearityProperty)
{
    const size_t n = 128;
    const auto a = randomVector(n, 7);
    const auto b = randomVector(n, 8);
    SplitMix64 rng(9);
    const Fp alpha = randomFp(rng);

    std::vector<Fp> combo(n);
    for (size_t i = 0; i < n; ++i)
        combo[i] = a[i] * alpha + b[i];

    auto fa = a, fb = b;
    nttNN(fa);
    nttNN(fb);
    nttNN(combo);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(combo[i], fa[i] * alpha + fb[i]);
}

} // namespace
} // namespace unizk
