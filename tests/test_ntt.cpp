/**
 * @file
 * Tests for the NTT library: all order/coset variants against the naive
 * DFT, inverse round trips, convolution property, LDE, and the
 * multi-dimensional decomposition used by the hardware mapper.
 */

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "ntt/ntt.h"

namespace unizk {
namespace {

std::vector<Fp>
randomVector(size_t n, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<Fp> v(n);
    for (auto &x : v)
        x = randomFp(rng);
    return v;
}

class NttSizes : public ::testing::TestWithParam<size_t>
{};

TEST_P(NttSizes, NttNNMatchesNaiveDft)
{
    const size_t n = GetParam();
    auto a = randomVector(n, n);
    const auto expect = naiveDft(a, Fp::one());
    nttNN(a);
    EXPECT_EQ(a, expect);
}

TEST_P(NttSizes, NttNRIsBitReversedNN)
{
    const size_t n = GetParam();
    auto a = randomVector(n, n + 1);
    auto b = a;
    nttNN(a);
    nttNR(b);
    bitReversePermute(b);
    EXPECT_EQ(a, b);
}

TEST_P(NttSizes, NttRNConsumesBitReversedInput)
{
    const size_t n = GetParam();
    auto a = randomVector(n, n + 2);
    auto b = a;
    nttNN(a);
    bitReversePermute(b); // present input in bit-reversed order
    nttRN(b);
    EXPECT_EQ(a, b);
}

TEST_P(NttSizes, InverseRoundTripNN)
{
    const size_t n = GetParam();
    const auto orig = randomVector(n, n + 3);
    auto a = orig;
    nttNN(a);
    inttNN(a);
    EXPECT_EQ(a, orig);
}

TEST_P(NttSizes, InverseRoundTripNRThenRN)
{
    const size_t n = GetParam();
    const auto orig = randomVector(n, n + 4);
    auto a = orig;
    nttNR(a);   // natural coeffs -> bit-reversed values
    inttRN(a);  // bit-reversed values -> natural coeffs
    EXPECT_EQ(a, orig);
}

TEST_P(NttSizes, InttNRThenNttRN)
{
    const size_t n = GetParam();
    const auto orig = randomVector(n, n + 5);
    auto a = orig;
    inttNR(a);
    nttRN(a);
    EXPECT_EQ(a, orig);
}

TEST_P(NttSizes, CosetNttMatchesNaive)
{
    const size_t n = GetParam();
    const Fp shift = defaultCosetShift();
    auto a = randomVector(n, n + 6);
    const auto expect = naiveDft(a, shift);
    cosetNttNN(a, shift);
    EXPECT_EQ(a, expect);
}

TEST_P(NttSizes, CosetInverseRoundTrip)
{
    const size_t n = GetParam();
    const Fp shift = defaultCosetShift();
    const auto orig = randomVector(n, n + 7);
    auto a = orig;
    cosetNttNN(a, shift);
    cosetInttNN(a, shift);
    EXPECT_EQ(a, orig);

    auto b = orig;
    cosetNttNR(b, shift);
    cosetInttRN(b, shift);
    EXPECT_EQ(b, orig);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, NttSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Ntt, NaiveIdftInvertsNaiveDft)
{
    const auto orig = randomVector(16, 99);
    const Fp shift = Fp(5);
    const auto vals = naiveDft(orig, shift);
    EXPECT_EQ(naiveIdft(vals, shift), orig);
}

TEST(Ntt, ConvolutionTheorem)
{
    // Multiplying polynomials via pointwise products of NTTs.
    const size_t n = 64;
    auto a = randomVector(n / 2, 1);
    auto b = randomVector(n / 2, 2);

    // Schoolbook product.
    std::vector<Fp> expect(n, Fp::zero());
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < b.size(); ++j)
            expect[i + j] += a[i] * b[j];

    a.resize(n, Fp::zero());
    b.resize(n, Fp::zero());
    nttNN(a);
    nttNN(b);
    std::vector<Fp> c(n);
    for (size_t i = 0; i < n; ++i)
        c[i] = a[i] * b[i];
    inttNN(c);
    EXPECT_EQ(c, expect);
}

TEST(Ntt, LdeAgreesWithNaiveCosetEvaluation)
{
    const size_t n = 32;
    const uint32_t blowup = 8;
    const Fp shift = defaultCosetShift();
    const auto coeffs = randomVector(n, 3);

    auto lde = lowDegreeExtension(coeffs, blowup, shift);
    ASSERT_EQ(lde.size(), n * blowup);
    bitReversePermute(lde); // back to natural order for comparison

    auto padded = coeffs;
    padded.resize(n * blowup, Fp::zero());
    const auto expect = naiveDft(padded, shift);
    EXPECT_EQ(lde, expect);
}

TEST(Ntt, LdePreservesLowDegreeStructure)
{
    // The LDE of a degree-(n-1) polynomial, restricted back via iNTT on
    // the big domain, has zero coefficients above n.
    const size_t n = 16;
    const uint32_t blowup = 4;
    const Fp shift = defaultCosetShift();
    const auto coeffs = randomVector(n, 4);

    auto lde = lowDegreeExtension(coeffs, blowup, shift);
    cosetInttRN(lde, shift);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(lde[i], coeffs[i]);
    for (size_t i = n; i < lde.size(); ++i)
        EXPECT_TRUE(lde[i].isZero()) << "coefficient " << i;
}

TEST(Ntt, DecomposeDims)
{
    EXPECT_EQ(decomposeNttDims(9, 3), (std::vector<uint32_t>{3, 3, 3}));
    EXPECT_EQ(decomposeNttDims(10, 3), (std::vector<uint32_t>{3, 3, 3, 1}));
    EXPECT_EQ(decomposeNttDims(5, 5), (std::vector<uint32_t>{5}));
    EXPECT_EQ(decomposeNttDims(2, 5), (std::vector<uint32_t>{2}));
}

class MultidimSizes
    : public ::testing::TestWithParam<std::pair<size_t, uint32_t>>
{};

TEST_P(MultidimSizes, MatchesDirectNtt)
{
    const auto [n, log_max] = GetParam();
    auto a = randomVector(n, n * 31 + log_max);
    auto b = a;
    nttNN(a);
    multidimNttNN(b, log_max);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, MultidimSizes,
    ::testing::Values(std::make_pair<size_t, uint32_t>(512, 3),  // 8x8x8
                      std::make_pair<size_t, uint32_t>(1024, 5), // 32x32
                      std::make_pair<size_t, uint32_t>(64, 5),   // 32x2
                      std::make_pair<size_t, uint32_t>(256, 4),
                      std::make_pair<size_t, uint32_t>(32, 5)));

TEST(Ntt, SizeOneIsIdentity)
{
    std::vector<Fp> a{Fp(42)};
    nttNN(a);
    EXPECT_EQ(a[0], Fp(42));
    inttNN(a);
    EXPECT_EQ(a[0], Fp(42));
}

TEST(Ntt, SizeOneAllVariants)
{
    const Fp shift = defaultCosetShift();
    std::vector<Fp> a{Fp(7)};
    nttNR(a);
    nttRN(a);
    inttRN(a);
    inttNR(a);
    cosetNttNN(a, shift);
    cosetInttNN(a, shift);
    EXPECT_EQ(a[0], Fp(7));
    EXPECT_EQ(lowDegreeExtension({Fp(7)}, 1, shift),
              std::vector<Fp>{Fp(7)});
}

TEST(Ntt, DecomposeDimsZeroSize)
{
    // A size-2^0 = 1 transform needs no dimensions at all.
    EXPECT_EQ(decomposeNttDims(0, 3), std::vector<uint32_t>{});
}

TEST(NttDeathTest, EmptyInputPanicsWithClearMessage)
{
    // Size-0 input used to reach log2Exact(0) and die with a confusing
    // "power of two" message; the entry points now reject it up front.
    std::vector<Fp> empty;
    EXPECT_DEATH(nttNN(empty), "empty");
    EXPECT_DEATH(nttNR(empty), "empty");
    EXPECT_DEATH(nttRN(empty), "empty");
    EXPECT_DEATH(inttNN(empty), "empty");
    EXPECT_DEATH(inttNR(empty), "empty");
    EXPECT_DEATH(inttRN(empty), "empty");
    EXPECT_DEATH(multidimNttNN(empty, 3), "empty");
    EXPECT_DEATH(lowDegreeExtension({}, 4, defaultCosetShift()), "empty");
    std::vector<Fp2> empty_ext;
    EXPECT_DEATH(inttNNExt(empty_ext), "empty");
}

TEST(NttDeathTest, NonPowerOfTwoPanics)
{
    std::vector<Fp> a{Fp(1), Fp(2), Fp(3)};
    EXPECT_DEATH(nttNN(a), "power of two");
}

TEST(Ntt, LinearityProperty)
{
    const size_t n = 128;
    const auto a = randomVector(n, 7);
    const auto b = randomVector(n, 8);
    SplitMix64 rng(9);
    const Fp alpha = randomFp(rng);

    std::vector<Fp> combo(n);
    for (size_t i = 0; i < n; ++i)
        combo[i] = a[i] * alpha + b[i];

    auto fa = a, fb = b;
    nttNN(fa);
    nttNN(fb);
    nttNN(combo);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(combo[i], fa[i] * alpha + fb[i]);
}

} // namespace
} // namespace unizk
