/**
 * @file
 * End-to-end determinism regression tests. The whole proving stack is
 * seeded by explicit SplitMix64 state (PR 1 removed every ambient RNG),
 * so two runs with the same seed must agree byte-for-byte: first on the
 * Fiat-Shamir challenger transcript, then on the serialized proof. A
 * failure here means some prover path regained hidden nondeterminism
 * (unordered containers, rand(), uninitialised padding, ...), which the
 * linter in tools/lint/unizk_lint.py is meant to keep out.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "hash/challenger.h"
#include "ntt/twiddles.h"
#include "plonk/plonk.h"
#include "serialize/bytes.h"
#include "serialize/proof_io.h"

namespace unizk {
namespace {

/**
 * Drive a challenger through a seeded observe/squeeze schedule and
 * return the byte encoding of everything it squeezed.
 */
std::vector<uint8_t>
challengerTranscript(uint64_t seed)
{
    SplitMix64 rng(seed);
    Challenger challenger;
    ByteWriter out;
    for (int round = 0; round < 16; ++round) {
        // Observe a variable-length batch, then a digest, then squeeze
        // a mix of base and extension challenges -- the same shapes the
        // FRI and Plonk provers use.
        const size_t batch = 1 + static_cast<size_t>(rng.nextBelow(7));
        std::vector<Fp> xs(batch);
        for (Fp &x : xs)
            x = randomFp(rng);
        challenger.observe(xs);

        HashOut digest;
        for (Fp &e : digest.elems)
            e = randomFp(rng);
        challenger.observe(digest);

        out.putFp(challenger.challenge());
        out.putFp2(challenger.challengeExt());
        for (const Fp c : challenger.challenges(3))
            out.putFp(c);
    }
    return out.take();
}

TEST(Determinism, ChallengerTranscriptByteIdenticalAcrossRuns)
{
    const std::vector<uint8_t> first = challengerTranscript(42);
    const std::vector<uint8_t> second = challengerTranscript(42);
    EXPECT_EQ(first, second);

    // Different seed must diverge, or the transcript ignores its input.
    EXPECT_NE(first, challengerTranscript(43));
}

CircuitBuilder
squareChainBuilder()
{
    CircuitBuilder b;
    const Var x = b.input();
    const Var y = b.input();
    Var p = x;
    for (int i = 0; i < 3; ++i)
        p = b.mul(p, p);
    b.assertEqual(b.add(p, x), y);
    return b;
}

std::vector<uint8_t>
provePlonkSeeded(uint64_t seed)
{
    const Circuit circuit = squareChainBuilder().build(16);
    const FriConfig cfg = FriConfig::testing();

    SplitMix64 rng(seed);
    std::vector<std::vector<Fp>> inputs;
    for (size_t r = 0; r < 2; ++r) {
        const Fp x = randomFp(rng);
        inputs.push_back({x, x.pow(8) + x});
    }

    ProverContext ctx;
    const PlonkProvingKey key = plonkSetup(circuit, cfg, ctx);
    const PlonkProof proof = plonkProve(circuit, key, inputs, cfg, ctx);
    EXPECT_TRUE(plonkVerify(key.constants->cap(), proof, cfg));
    return serializePlonkProof(proof);
}

TEST(Determinism, PlonkProofBytesIdenticalAcrossSameSeedRuns)
{
    const std::vector<uint8_t> first = provePlonkSeeded(1234);
    const std::vector<uint8_t> second = provePlonkSeeded(1234);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(Determinism, PlonkProofBytesInvariantToThreadsAndTwiddleCache)
{
    // The NTT engine's parallel decomposition and twiddle caching must
    // be invisible in proof bytes: field arithmetic is exact, so any
    // chunking or table reuse yields identical canonical values.
    const unsigned saved_threads = globalThreadCount();
    setGlobalThreadCount(1);
    const std::vector<uint8_t> reference = provePlonkSeeded(777);
    ASSERT_FALSE(reference.empty());

    for (const unsigned threads : {2u, 8u}) {
        setGlobalThreadCount(threads);
        EXPECT_EQ(provePlonkSeeded(777), reference)
            << "threads=" << threads;
    }

    setGlobalThreadCount(saved_threads);
    setTwiddleCacheEnabled(false);
    clearTwiddleCache();
    EXPECT_EQ(provePlonkSeeded(777), reference) << "twiddle cache off";
    setTwiddleCacheEnabled(true);
}

TEST(Determinism, SplitMix64IsPureStateMachine)
{
    // The generator's whole state is the 64-bit seed: equal seeds give
    // equal streams and copies evolve independently.
    SplitMix64 a(99);
    SplitMix64 b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    // A copy carries the full state: it continues b's stream exactly.
    SplitMix64 fork = a;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fork.next(), b.next());
}

TEST(Determinism, NextBelowStaysInRange)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(10), 10u);
        EXPECT_EQ(rng.nextBelow(1), 0u);
    }
    // Bound at the field modulus: exactly the randomFp code path.
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(Fp::modulus), Fp::modulus);
}

} // namespace
} // namespace unizk
