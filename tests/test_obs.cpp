/**
 * @file
 * Tests for the observability subsystem: span recording (nesting,
 * thread attribution, drain semantics), the named-counter registry
 * (cross-thread merge, disabled no-op), the thread-safe
 * KernelTimeBreakdown accumulator (exercised under TSAN in CI), the
 * stats / Chrome-trace JSON schemas, and the end-to-end guarantees --
 * stats JSON matches the SimReport exactly and proofs are
 * byte-identical with observability on or off.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <initializer_list>
#include <map>
#include <limits>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/exposition.h"
#include "obs/folded_export.h"
#include "obs/json_writer.h"
#include "obs/obs.h"
#include "obs/stats_export.h"
#include "obs/trace_export.h"
#include "unizk/pipeline.h"

namespace unizk {
namespace {

#if defined(UNIZK_OBS_DISABLE)
#define SKIP_IF_OBS_DISABLED()                                            \
    GTEST_SKIP() << "observability compiled out (UNIZK_DISABLE_OBS)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

/** Every test starts from a clean, enabled capture window and leaves
 *  observability off so other binaries' behaviour is unaffected. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setEnabled(true);
        obs::resetAll();
    }
    void
    TearDown() override
    {
        obs::setEnabled(false);
        obs::resetAll();
    }
};

TEST_F(ObsTest, SpanNestingOnOneThread)
{
    {
        obs::Span outer("outer");
        {
            obs::Span inner("inner");
        }
    }
    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by (threadId, startNs): the outer span opened first.
    EXPECT_STREQ(spans[0].name, "outer");
    EXPECT_STREQ(spans[1].name, "inner");
    EXPECT_EQ(spans[0].depth, 0u);
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_EQ(spans[0].threadId, spans[1].threadId);
    // The child interval nests inside the parent interval.
    EXPECT_LE(spans[0].startNs, spans[1].startNs);
    EXPECT_GE(spans[0].endNs, spans[1].endNs);
    EXPECT_LE(spans[1].startNs, spans[1].endNs);
    // Draining moved the events out.
    EXPECT_TRUE(obs::drainSpans().empty());
}

TEST_F(ObsTest, SpansAttributeToDistinctThreads)
{
    constexpr unsigned kThreads = 4;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([] { obs::Span span("worker"); });
    }
    for (auto &t : threads)
        t.join();

    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    ASSERT_EQ(spans.size(), kThreads);
    std::set<uint32_t> tids;
    for (const obs::SpanEvent &s : spans) {
        EXPECT_STREQ(s.name, "worker");
        tids.insert(s.threadId);
    }
    // Each raw thread owns its own buffer and id.
    EXPECT_EQ(tids.size(), kThreads);
}

TEST_F(ObsTest, SpansRecordedInsideParallelFor)
{
    SKIP_IF_OBS_DISABLED();
    setGlobalThreadCount(4);
    constexpr size_t kItems = 32;
    std::atomic<size_t> visited{0};
    parallelFor(0, kItems, 1, [&](size_t lo, size_t hi) {
        UNIZK_SPAN("pool-chunk");
        visited.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    ASSERT_EQ(visited.load(), kItems);
    // One span per executed chunk, none lost to races.
    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    EXPECT_GT(spans.size(), 1u);
    for (const obs::SpanEvent &s : spans)
        EXPECT_STREQ(s.name, "pool-chunk");
}

TEST_F(ObsTest, DisabledRecordsNothing)
{
    SKIP_IF_OBS_DISABLED();
    obs::setEnabled(false);
    {
        obs::Span span("invisible");
        UNIZK_COUNTER_ADD("test.obs.disabled", 17);
    }
    EXPECT_TRUE(obs::drainSpans().empty());
    const auto counters = obs::counterSnapshot();
    const auto it = counters.find("test.obs.disabled");
    if (it != counters.end()) {
        EXPECT_EQ(it->second, 0u);
    }
}

TEST_F(ObsTest, CountersMergeAcrossThreads)
{
    SKIP_IF_OBS_DISABLED();
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 1000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                UNIZK_COUNTER_ADD("test.obs.merge", 1);
        });
    }
    for (auto &t : threads)
        t.join();
    const auto counters = obs::counterSnapshot();
    const auto it = counters.find("test.obs.merge");
    ASSERT_NE(it, counters.end());
    EXPECT_EQ(it->second, kThreads * kPerThread);
}

TEST_F(ObsTest, ResetClearsCounters)
{
    SKIP_IF_OBS_DISABLED();
    UNIZK_COUNTER_ADD("test.obs.reset", 5);
    obs::resetAll();
    const auto counters = obs::counterSnapshot();
    const auto it = counters.find("test.obs.reset");
    ASSERT_NE(it, counters.end());
    EXPECT_EQ(it->second, 0u);
}

TEST_F(ObsTest, SpansRecordParentNames)
{
    {
        obs::Span outer("outer");
        {
            obs::Span inner("inner");
            {
                obs::Span leaf("leaf");
            }
        }
        obs::Span sibling("sibling");
    }
    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    ASSERT_EQ(spans.size(), 4u);
    // Sorted by startNs on one thread: outer, inner, leaf, sibling.
    EXPECT_EQ(spans[0].parent, nullptr);
    EXPECT_STREQ(spans[1].parent, "outer");
    EXPECT_STREQ(spans[2].parent, "inner");
    EXPECT_STREQ(spans[3].parent, "outer");
    EXPECT_EQ(spans[2].depth, 2u);
    EXPECT_EQ(spans[3].depth, 1u);
}

TEST_F(ObsTest, SpanStackUnwindsThroughExceptions)
{
    SKIP_IF_OBS_DISABLED();
    try {
        obs::Span outer("outer");
        obs::Span inner("inner");
        throw std::runtime_error("boom");
    } catch (const std::exception &) {
    }
    // Both spans closed during unwinding; a new root sees an empty
    // stack, not stale parents from the aborted scope.
    {
        obs::Span after("after");
    }
    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    ASSERT_EQ(spans.size(), 3u);
    for (const obs::SpanEvent &s : spans) {
        if (std::string(s.name) == "after") {
            EXPECT_EQ(s.parent, nullptr);
            EXPECT_EQ(s.depth, 0u);
        }
    }
}

TEST_F(ObsTest, HistogramsMergeAcrossThreads)
{
    SKIP_IF_OBS_DISABLED();
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 100;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                UNIZK_OBS_HISTO("test.obs.histo_merge", t * 1000 + i);
        });
    }
    for (auto &t : threads)
        t.join();

    const auto histos = obs::histogramSnapshot();
    const auto it = histos.find("test.obs.histo_merge");
    ASSERT_NE(it, histos.end());
    const obs::HistogramData &h = it->second;
    EXPECT_EQ(h.count, kThreads * kPerThread);
    EXPECT_EQ(h.min, 0u);
    EXPECT_EQ(h.max, 7099u);
    uint64_t expected_sum = 0, bucket_sum = 0;
    for (unsigned t = 0; t < kThreads; ++t) {
        for (uint64_t i = 0; i < kPerThread; ++i)
            expected_sum += t * 1000 + i;
    }
    EXPECT_EQ(h.sum, expected_sum);
    for (const uint64_t b : h.buckets)
        bucket_sum += b;
    EXPECT_EQ(bucket_sum, h.count);
}

TEST_F(ObsTest, HistogramLog2BucketBoundaries)
{
    SKIP_IF_OBS_DISABLED();
    // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i - 1].
    for (const uint64_t v : std::initializer_list<uint64_t>{
             0, 1, 2, 3, 4, 1023, 1024, UINT64_MAX})
        UNIZK_OBS_HISTO("test.obs.histo_buckets", v);
    const auto histos = obs::histogramSnapshot();
    const obs::HistogramData &h = histos.at("test.obs.histo_buckets");
    EXPECT_EQ(h.buckets[0], 1u);  // 0
    EXPECT_EQ(h.buckets[1], 1u);  // 1
    EXPECT_EQ(h.buckets[2], 2u);  // 2, 3
    EXPECT_EQ(h.buckets[3], 1u);  // 4
    EXPECT_EQ(h.buckets[10], 1u); // 1023
    EXPECT_EQ(h.buckets[11], 1u); // 1024
    EXPECT_EQ(h.buckets[64], 1u); // UINT64_MAX
    EXPECT_EQ(h.min, 0u);
    EXPECT_EQ(h.max, UINT64_MAX);
}

using ObsConcurrency = ObsTest;

/**
 * Pins the relaxed-atomics contract audited in src/obs/obs.cpp
 * (DESIGN section 6.7): recording uses only relaxed operations on
 * thread-owned blocks, and exporters may run concurrently -- they get
 * a torn-but-valid view mid-flight and an exact one at quiescence.
 * Writers hammer a shared Counter and Histogram while an exporter
 * thread loops counterSnapshot / histogramSnapshot /
 * histogramQuantile; the CI TSAN leg turns any missing
 * synchronization edge (registration publish, CAS min/max) into a
 * failure, and the post-join totals must be exact.
 */
TEST_F(ObsConcurrency, RelaxedAtomicsSafeUnderConcurrentExport)
{
    SKIP_IF_OBS_DISABLED();
    constexpr unsigned kWriters = 4;
    constexpr uint64_t kPerWriter = 20000;

    obs::Counter counter("test.obs.conc_counter");
    obs::Histogram histo("test.obs.conc_histo");
    std::atomic<bool> writers_done{false};

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            // Registration of this thread's blocks happens on first
            // use, racing the exporter's registry walk.
            for (uint64_t i = 0; i < kPerWriter; ++i) {
                counter.add(1);
                histo.record(w * kPerWriter + i);
            }
        });
    }

    // Concurrent exporter: every intermediate view must be internally
    // valid (counts never exceed the final total, bucket sums match
    // the count field's monotonic progress, quantiles stay finite).
    std::thread exporter([&] {
        uint64_t last_count = 0;
        while (!writers_done.load(std::memory_order_acquire)) {
            const auto counters = obs::counterSnapshot();
            const auto it = counters.find("test.obs.conc_counter");
            if (it != counters.end()) {
                EXPECT_LE(it->second, kWriters * kPerWriter);
                EXPECT_GE(it->second, last_count);
                last_count = it->second;
            }
            const auto histos = obs::histogramSnapshot();
            const auto hit = histos.find("test.obs.conc_histo");
            if (hit != histos.end()) {
                EXPECT_LE(hit->second.count, kWriters * kPerWriter);
                const double p99 =
                    obs::histogramQuantile(hit->second, 0.99);
                EXPECT_TRUE(std::isfinite(p99));
            }
        }
    });

    for (auto &t : writers)
        t.join();
    writers_done.store(true, std::memory_order_release);
    exporter.join();

    // Quiescent point: totals are exact, not approximate.
    const auto counters = obs::counterSnapshot();
    EXPECT_EQ(counters.at("test.obs.conc_counter"),
              kWriters * kPerWriter);
    const auto histos = obs::histogramSnapshot();
    const obs::HistogramData &h = histos.at("test.obs.conc_histo");
    EXPECT_EQ(h.count, kWriters * kPerWriter);
    EXPECT_EQ(h.min, 0u);
    EXPECT_EQ(h.max, kWriters * kPerWriter - 1);
    uint64_t bucket_sum = 0;
    for (const uint64_t b : h.buckets)
        bucket_sum += b;
    EXPECT_EQ(bucket_sum, h.count);
}

TEST_F(ObsTest, SpanDurationsFeedBuiltinHistogram)
{
    SKIP_IF_OBS_DISABLED();
    {
        obs::Span span("timed");
    }
    const auto histos = obs::histogramSnapshot();
    const auto it = histos.find("obs.span_duration_ns");
    ASSERT_NE(it, histos.end());
    EXPECT_GE(it->second.count, 1u);
}

TEST_F(ObsTest, ResetForMeasurementDropsWarmupState)
{
    SKIP_IF_OBS_DISABLED();
    // Warmup work: spans, counters and histograms that must NOT leak
    // into the exported artifacts (regression: bench harnesses used to
    // export warmup spans/counters along with the measured run).
    {
        obs::Span warm("warmup");
        UNIZK_COUNTER_ADD("test.obs.boundary", 100);
        UNIZK_OBS_HISTO("test.obs.boundary_histo", 42);
    }
    obs::resetForMeasurement();
    {
        obs::Span measured("measured");
        UNIZK_COUNTER_ADD("test.obs.boundary", 7);
    }

    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_STREQ(spans[0].name, "measured");

    const auto counters = obs::counterSnapshot();
    EXPECT_EQ(counters.at("test.obs.boundary"), 7u);

    const auto histos = obs::histogramSnapshot();
    EXPECT_EQ(histos.at("test.obs.boundary_histo").count, 0u);
}

TEST(ObsDisabled, ResetForMeasurementIsNoOp)
{
    obs::setEnabled(false);
    obs::resetForMeasurement(); // must not crash or register anything
    EXPECT_TRUE(obs::drainSpans().empty());
}

TEST_F(ObsTest, FoldedExportCollapsesStacks)
{
    SKIP_IF_OBS_DISABLED();
    std::vector<obs::SpanEvent> spans;
    // Thread 0: root [0,100], child [10,40], child [50,70].
    spans.push_back({"root", nullptr, 0, 100, 0, 0});
    spans.push_back({"child", "root", 10, 40, 0, 1});
    spans.push_back({"child", "root", 50, 70, 0, 1});
    // Thread 1: its own root.
    spans.push_back({"other", nullptr, 0, 30, 1, 0});

    const std::string folded = obs::spansToFolded(spans);
    // Self time: root 100 - 30 - 20 = 50; both child intervals fold
    // into one row; the second thread contributes its own root row.
    EXPECT_NE(folded.find("root 50\n"), std::string::npos) << folded;
    EXPECT_NE(folded.find("root;child 50\n"), std::string::npos)
        << folded;
    EXPECT_NE(folded.find("other 30\n"), std::string::npos) << folded;
}

TEST_F(ObsTest, FoldedExportFromLiveSpans)
{
    SKIP_IF_OBS_DISABLED();
    {
        obs::Span outer("live-outer");
        {
            obs::Span inner("live-inner");
        }
    }
    const std::string folded = obs::spansToFolded(obs::drainSpans());
    EXPECT_NE(folded.find("live-outer;live-inner "), std::string::npos)
        << folded;
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    obs::JsonWriter w;
    w.beginObject();
    w.kv("nan", std::nan(""));
    w.kv("inf", std::numeric_limits<double>::infinity());
    w.kv("ninf", -std::numeric_limits<double>::infinity());
    w.kv("ok", 1.5);
    w.endObject();
    const std::string json = w.str();
    EXPECT_NE(json.find("\"nan\": null"), std::string::npos) << json;
    EXPECT_NE(json.find("\"inf\": null"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ninf\": null"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ok\": 1.5"), std::string::npos) << json;
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    obs::JsonWriter w;
    w.beginObject();
    w.kv("s", std::string("a\"b\\c\n\t\x01"));
    w.endObject();
    const std::string json = w.str();
    EXPECT_NE(json.find("a\\\"b\\\\c\\n\\t\\u0001"), std::string::npos)
        << json;
}

TEST(KernelTimeBreakdown, ConcurrentAddIsExact)
{
    // Regression for the data race ScopedKernelTimer used to cause when
    // worker threads timed kernels concurrently; run under TSAN in CI.
    KernelTimeBreakdown b;
    constexpr unsigned kThreads = 8;
    constexpr unsigned kAdds = 1000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&b] {
            for (unsigned i = 0; i < kAdds; ++i)
                b.add(KernelClass::Ntt, 0.001);
        });
    }
    for (auto &t : threads)
        t.join();
    // 8000 adds of exactly 1e6 ns each: no update may be lost.
    EXPECT_DOUBLE_EQ(b.seconds(KernelClass::Ntt), 8.0);
    EXPECT_DOUBLE_EQ(b.total(), 8.0);
}

TEST(KernelTimeBreakdown, CopyAndScaleStillWork)
{
    KernelTimeBreakdown b;
    b.add(KernelClass::MerkleTree, 2.0);
    b.add(KernelClass::Ntt, 1.0);
    const KernelTimeBreakdown copy = b;
    EXPECT_DOUBLE_EQ(copy.seconds(KernelClass::MerkleTree), 2.0);
    const KernelTimeBreakdown half = b.scaledBy(0.5);
    EXPECT_DOUBLE_EQ(half.seconds(KernelClass::Ntt), 0.5);
    KernelTimeBreakdown sum;
    sum += b;
    sum += half;
    EXPECT_DOUBLE_EQ(sum.total(), 3.0 + 1.5);
}

TEST(ObsExport, StatsJsonGoldenSchema)
{
    obs::RunStats run;
    run.app = "fibonacci";
    run.protocol = "plonky2";
    run.rows = 128;
    run.repetitions = 2;
    run.threads = 4;
    run.cpuSeconds = 1.25;
    run.proofBytes = 4096;
    run.verified = true;
    // Three recorded values: 1, 1, 5.
    obs::HistogramData histo;
    histo.count = 3;
    histo.sum = 7;
    histo.min = 1;
    histo.max = 5;
    histo.buckets[1] = 2; // bucket [1, 1]
    histo.buckets[3] = 1; // bucket [4, 7]
    const std::string json = obs::statsToJson(
        {run}, {{"test.counter", 42}}, {{"test.histo", histo}});

    for (const char *needle :
         {"\"schema\": \"unizk-stats-v2\"", "\"runs\": [",
          "\"app\": \"fibonacci\"", "\"protocol\": \"plonky2\"",
          "\"rows\": 128", "\"repetitions\": 2", "\"threads\": 4",
          "\"cpu\": {", "\"totalSeconds\": 1.25", "\"breakdown\": {",
          "\"proof\": {", "\"bytes\": 4096", "\"verified\": true",
          "\"sim\": {", "\"perClass\": {", "\"busBytes\"",
          "\"usefulBytes\"", "\"memUtilization\"", "\"usefulFraction\"",
          "\"hwCounters\": {", "\"vsa\": {", "\"busyCycles\": [",
          "\"stallCycles\": [", "\"idleCycles\": [", "\"dram\": {",
          "\"rowHits\"", "\"rowMisses\"", "\"bankConflicts\"",
          "\"bankBytes\": [", "\"scratchpad\": {", "\"highWaterBytes\"",
          "\"evictions\"", "\"timeline\": {", "\"samplePeriodCycles\"",
          "\"samples\": [", "\"counters\": {", "\"test.counter\": 42",
          "\"histograms\": {", "\"test.histo\": {", "\"count\": 3",
          "\"sum\": 7", "\"min\": 1", "\"max\": 5", "\"buckets\": [",
          "\"lo\": 1", "\"hi\": 1", "\"lo\": 4", "\"hi\": 7"}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
    // Empty buckets are omitted from the document.
    EXPECT_EQ(json.find("\"lo\": 2"), std::string::npos);
}

TEST(ObsExport, ChromeTraceGoldenSchema)
{
    obs::SpanEvent span;
    span.name = "plonk/prove";
    span.startNs = 1000;
    span.endNs = 51000;
    span.threadId = 0;
    span.depth = 0;

    KernelTrace trace;
    trace.ops.push_back({HashKernel{256}, "pow"});

    obs::ChromeTraceBuilder builder;
    builder.addSpans({span});
    builder.addSimLane("unizk", trace, HardwareConfig::paperDefault());
    const std::string json = builder.build();

    for (const char *needle :
         {"\"traceEvents\": [", "\"ph\": \"M\"",
          "\"name\": \"process_name\"", "\"name\": \"cpu prover\"",
          "\"name\": \"sim: unizk\"", "\"ph\": \"X\"",
          "\"name\": \"plonk/prove\"", "\"cat\": \"cpu\"",
          "\"name\": \"pow\"", "\"cycles\":", "\"dur\": 50",
          // Every lane carries thread_name metadata ...
          "\"name\": \"thread_name\"", "\"name\": \"cpu thread 0\"",
          "\"name\": \"kernels\"",
          // ... and sim lanes carry counter series.
          "\"ph\": \"C\"", "\"name\": \"vsa occupancy\"",
          "\"name\": \"queue depth\"", "\"value\":"}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

TEST_F(ObsTest, StatsJsonMatchesSimReport)
{
    const FriConfig cfg = FriConfig::testing();
    const HardwareConfig hw = HardwareConfig::paperDefault();
    const AppRunResult r =
        runPlonky2App(AppId::Fibonacci, 128, 2, cfg, hw);
    ASSERT_TRUE(r.verified);

    const obs::RunStats stats = toRunStats(r, "plonky2", 1);
    const std::string json =
        obs::statsToJson({stats}, obs::counterSnapshot());

    // The numbers in the JSON are exactly the SimReport / run values.
    const std::vector<std::string> needles = {
        "\"totalCycles\": " + std::to_string(r.sim.totalCycles),
        "\"readRequests\": " + std::to_string(r.sim.totalReadRequests()),
        "\"writeRequests\": " +
            std::to_string(r.sim.totalWriteRequests()),
        "\"bytes\": " + std::to_string(r.proofBytes),
        "\"rows\": 128",
        "\"verified\": true",
        "\"kernels\": " +
            std::to_string(r.sim.classStats(KernelClass::Ntt).kernels),
        "\"busBytes\": " +
            std::to_string(r.sim.classStats(KernelClass::Ntt).busBytes),
    };
    for (const std::string &needle : needles)
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;

#if !defined(UNIZK_OBS_DISABLE)
    // Instrumented code paths ran, so the standard counters are live.
    // (With UNIZK_DISABLE_OBS the macros compile out and nothing is
    // ever registered.)
    const auto counters = obs::counterSnapshot();
    for (const char *name : {"ntt.transforms", "merkle.trees",
                             "challenger.permutations",
                             "sim.kernel_ops"}) {
        const auto it = counters.find(name);
        ASSERT_NE(it, counters.end()) << name;
        EXPECT_GT(it->second, 0u) << name;
    }
#endif
}

TEST_F(ObsTest, ProofBytesIdenticalWithObsOnAndOff)
{
    const FriConfig cfg = FriConfig::testing();
    const HardwareConfig hw = HardwareConfig::paperDefault();

    obs::setEnabled(false);
    obs::resetAll();
    const AppRunResult off =
        runPlonky2App(AppId::Factorial, 128, 2, cfg, hw);

    obs::setEnabled(true);
    obs::resetAll();
    const AppRunResult on =
        runPlonky2App(AppId::Factorial, 128, 2, cfg, hw);

    ASSERT_FALSE(off.proofBlob.empty());
    EXPECT_EQ(off.proofBlob, on.proofBlob);
    EXPECT_TRUE(off.verified);
    EXPECT_TRUE(on.verified);
}

TEST_F(ObsTest, SnapshotDeltaPartitionsCumulative)
{
    SKIP_IF_OBS_DISABLED();
    UNIZK_COUNTER_ADD("test.obs.window", 5);
    UNIZK_OBS_HISTO("test.obs.window_histo", 100);

    const obs::StatsSnapshot first = obs::snapshotDelta();
    EXPECT_EQ(first.sequence, 1u);
    EXPECT_LE(first.windowStartNs, first.windowEndNs);
    {
        const obs::CounterWindow &c =
            first.counters.at("test.obs.window");
        EXPECT_EQ(c.delta, 5u);
        EXPECT_EQ(c.cumulative, 5u);
    }
    {
        const obs::HistogramWindow &h =
            first.histograms.at("test.obs.window_histo");
        EXPECT_EQ(h.delta.count, 1u);
        EXPECT_EQ(h.delta.sum, 100u);
        EXPECT_EQ(h.cumulative.count, 1u);
    }

    UNIZK_COUNTER_ADD("test.obs.window", 3);
    const obs::StatsSnapshot second = obs::snapshotDelta();
    EXPECT_EQ(second.sequence, 2u);
    // Window intervals chain: no gap, no overlap.
    EXPECT_EQ(second.windowStartNs, first.windowEndNs);
    {
        const obs::CounterWindow &c =
            second.counters.at("test.obs.window");
        EXPECT_EQ(c.delta, 3u);
        EXPECT_EQ(c.cumulative, 8u);
    }
    // Nothing recorded in between: the histogram window is empty but
    // the cumulative side persists.
    {
        const obs::HistogramWindow &h =
            second.histograms.at("test.obs.window_histo");
        EXPECT_EQ(h.delta.count, 0u);
        EXPECT_EQ(h.cumulative.count, 1u);
    }

    const obs::StatsSnapshot third = obs::snapshotDelta();
    EXPECT_EQ(third.sequence, 3u);
    EXPECT_EQ(third.counters.at("test.obs.window").delta, 0u);
    EXPECT_EQ(third.counters.at("test.obs.window").cumulative, 8u);
}

TEST_F(ObsTest, SnapshotDeltaWindowMinMaxCoverOnlyTheWindow)
{
    SKIP_IF_OBS_DISABLED();
    // Window 1 records an outlier; window 2 must not inherit it into
    // its delta extremes (the cumulative side keeps it, as documented).
    UNIZK_OBS_HISTO("test.obs.window_extremes", 1000000);
    (void)obs::snapshotDelta();

    UNIZK_OBS_HISTO("test.obs.window_extremes", 10);
    UNIZK_OBS_HISTO("test.obs.window_extremes", 20);
    const obs::StatsSnapshot snap = obs::snapshotDelta();
    const obs::HistogramWindow &h =
        snap.histograms.at("test.obs.window_extremes");
    EXPECT_EQ(h.delta.count, 2u);
    EXPECT_EQ(h.delta.min, 10u);
    EXPECT_EQ(h.delta.max, 20u);
    EXPECT_EQ(h.cumulative.min, 10u);
    EXPECT_EQ(h.cumulative.max, 1000000u);
}

TEST_F(ObsTest, ResetForMeasurementResetsHistogramWatermarks)
{
    SKIP_IF_OBS_DISABLED();
    // Regression: resetForMeasurement() used to zero counts and
    // buckets but leave the min/max watermarks, so a warmup outlier
    // survived into the measured window's quantile clamp.
    UNIZK_OBS_HISTO("test.obs.watermark", 1000000);
    obs::resetForMeasurement();
    UNIZK_OBS_HISTO("test.obs.watermark", 10);
    UNIZK_OBS_HISTO("test.obs.watermark", 20);

    const auto histos = obs::histogramSnapshot();
    const obs::HistogramData &h = histos.at("test.obs.watermark");
    EXPECT_EQ(h.count, 2u);
    EXPECT_EQ(h.min, 10u);
    EXPECT_EQ(h.max, 20u);
    // The quantile clamp must use the post-reset extremes.
    EXPECT_LE(obs::histogramQuantile(h, 1.0), 20.0);

    // The rotation stream restarted too.
    const obs::StatsSnapshot snap = obs::snapshotDelta();
    EXPECT_EQ(snap.sequence, 1u);
    EXPECT_EQ(snap.histograms.at("test.obs.watermark").delta.count, 2u);
}

/**
 * The windowed-snapshot contract under fire (TSAN leg in CI): writers
 * hammer a counter and a histogram while a rotator loops
 * snapshotDelta(). Every window must chain onto the previous one with
 * a consecutive sequence number, and at quiescence the deltas summed
 * across every window ever taken must equal the cumulative totals
 * EXACTLY -- rotation loses nothing and double-counts nothing.
 */
TEST_F(ObsConcurrency, SnapshotDeltaConcurrentWritersPartitionExactly)
{
    SKIP_IF_OBS_DISABLED();
    constexpr unsigned kWriters = 4;
    constexpr uint64_t kPerWriter = 20000;

    obs::Counter counter("test.obs.part_counter");
    obs::Histogram histo("test.obs.part_histo");
    std::atomic<bool> writers_done{false};

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (uint64_t i = 0; i < kPerWriter; ++i) {
                counter.add(1);
                histo.record(w * kPerWriter + i);
            }
        });
    }

    uint64_t counter_delta_sum = 0;
    uint64_t histo_count_sum = 0;
    uint64_t histo_value_sum = 0;
    uint64_t last_sequence = 0;
    uint64_t last_end_ns = 0;
    auto fold = [&](const obs::StatsSnapshot &snap) {
        if (last_sequence != 0) {
            EXPECT_EQ(snap.sequence, last_sequence + 1);
            EXPECT_EQ(snap.windowStartNs, last_end_ns);
        }
        last_sequence = snap.sequence;
        last_end_ns = snap.windowEndNs;
        const auto c = snap.counters.find("test.obs.part_counter");
        if (c != snap.counters.end()) {
            counter_delta_sum += c->second.delta;
            // Mid-traffic the delta view may trail the live total but
            // never exceeds it.
            EXPECT_LE(c->second.cumulative, kWriters * kPerWriter);
        }
        const auto h = snap.histograms.find("test.obs.part_histo");
        if (h != snap.histograms.end()) {
            histo_count_sum += h->second.delta.count;
            histo_value_sum += h->second.delta.sum;
        }
    };

    std::thread rotator([&] {
        while (!writers_done.load(std::memory_order_acquire))
            fold(obs::snapshotDelta());
    });

    for (auto &t : writers)
        t.join();
    writers_done.store(true, std::memory_order_release);
    rotator.join();

    // Close the final window at quiescence; now the telescope must be
    // exact.
    const obs::StatsSnapshot last = obs::snapshotDelta();
    fold(last);
    EXPECT_EQ(counter_delta_sum, kWriters * kPerWriter);
    EXPECT_EQ(last.counters.at("test.obs.part_counter").cumulative,
              kWriters * kPerWriter);
    EXPECT_EQ(histo_count_sum, kWriters * kPerWriter);
    uint64_t expected_sum = 0;
    for (unsigned w = 0; w < kWriters; ++w) {
        for (uint64_t i = 0; i < kPerWriter; ++i)
            expected_sum += w * kPerWriter + i;
    }
    EXPECT_EQ(histo_value_sum, expected_sum);
    EXPECT_EQ(last.histograms.at("test.obs.part_histo").cumulative.sum,
              expected_sum);
}

TEST_F(ObsTest, SpanBufferStatsReportOccupancy)
{
    SKIP_IF_OBS_DISABLED();
    {
        obs::Span a("occ-a");
        obs::Span b("occ-b");
    }
    {
        obs::Span c("occ-c");
    }
    const obs::SpanBufferStats stats = obs::spanBufferStats();
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.capPerThread, obs::kMaxBufferedSpansPerThread);
    ASSERT_FALSE(stats.perThread.empty());
    uint64_t buffered = 0;
    uint32_t last_tid = 0;
    for (size_t i = 0; i < stats.perThread.size(); ++i) {
        const obs::SpanBufferInfo &info = stats.perThread[i];
        if (i > 0)
            EXPECT_GT(info.threadId, last_tid);
        last_tid = info.threadId;
        EXPECT_LE(info.buffered, info.highWater);
        EXPECT_LE(info.highWater, stats.capPerThread);
        buffered += info.buffered;
    }
    EXPECT_EQ(buffered, 3u);

    // A drain empties the buffers but the high-water marks persist
    // until resetAll.
    (void)obs::drainSpans();
    const obs::SpanBufferStats after = obs::spanBufferStats();
    uint64_t after_buffered = 0;
    uint64_t high_water = 0;
    for (const obs::SpanBufferInfo &info : after.perThread) {
        after_buffered += info.buffered;
        high_water = std::max(high_water, info.highWater);
    }
    EXPECT_EQ(after_buffered, 0u);
    EXPECT_GE(high_water, 2u);
}

TEST_F(ObsTest, ScopedTraceIdNestsAndTagsSpans)
{
    SKIP_IF_OBS_DISABLED();
    EXPECT_EQ(obs::currentTraceId(), 0u);
    {
        obs::ScopedTraceId outer(7);
        EXPECT_EQ(obs::currentTraceId(), 7u);
        {
            obs::Span span("traced");
        }
        {
            obs::ScopedTraceId inner(9);
            EXPECT_EQ(obs::currentTraceId(), 9u);
        }
        // Restored, not cleared, on nested destruction.
        EXPECT_EQ(obs::currentTraceId(), 7u);
    }
    EXPECT_EQ(obs::currentTraceId(), 0u);
    {
        obs::Span span("untraced");
    }

    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_STREQ(spans[0].name, "traced");
    EXPECT_EQ(spans[0].traceId, 7u);
    EXPECT_STREQ(spans[1].name, "untraced");
    EXPECT_EQ(spans[1].traceId, 0u);
}

TEST(ObsExposition, PromMetricNameMapsInvalidCharacters)
{
    EXPECT_EQ(obs::promMetricName("service.request_latency_ns"),
              "unizk_service_request_latency_ns");
    EXPECT_EQ(obs::promMetricName("obs.spans-dropped"),
              "unizk_obs_spans_dropped");
}

TEST(ObsExposition, RendererEmitsValidFamilies)
{
    std::map<std::string, uint64_t> counters;
    counters["service.requests_completed"] = 42;

    obs::HistogramData histo;
    histo.count = 12;
    histo.sum = 24000;
    histo.min = 1;
    histo.max = 2000;
    histo.buckets[1] = 3;  // [1, 1]
    histo.buckets[11] = 9; // [1024, 2047]
    std::map<std::string, obs::HistogramData> histograms;
    histograms["service.request_latency_ns"] = histo;

    const std::string text =
        obs::renderExposition(counters, histograms);

    for (const char *needle :
         {"# HELP unizk_service_requests_completed_total ",
          "# TYPE unizk_service_requests_completed_total counter",
          "unizk_service_requests_completed_total 42",
          "# TYPE unizk_service_request_latency_ns histogram",
          // Bucket edges are the inclusive log2 upper bounds; counts
          // are cumulative (3 through the empty middle buckets, then
          // 3 + 9).
          "unizk_service_request_latency_ns_bucket{le=\"1\"} 3",
          "unizk_service_request_latency_ns_bucket{le=\"511\"} 3",
          "unizk_service_request_latency_ns_bucket{le=\"2047\"} 12",
          "unizk_service_request_latency_ns_bucket{le=\"+Inf\"} 12",
          "unizk_service_request_latency_ns_sum 24000",
          "unizk_service_request_latency_ns_count 12"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing " << needle << " in:\n"
            << text;
    }
    // The bucket list is truncated after the highest populated bucket
    // (the +Inf closer covers the rest), not padded to all 65 edges.
    EXPECT_EQ(text.find("le=\"4095\""), std::string::npos) << text;
}

TEST_F(ObsTest, SnapshotJsonWindowSchema)
{
    SKIP_IF_OBS_DISABLED();
    UNIZK_COUNTER_ADD("test.obs.json_window", 4);
    UNIZK_OBS_HISTO("test.obs.json_histo", 64);
    const obs::StatsSnapshot snap = obs::snapshotDelta();
    const std::string json = obs::snapshotToJson(snap);
    // One window = one compact JSONL line, so the needles carry no
    // pretty-printing whitespace.
    for (const char *needle :
         {"\"schema\":\"unizk-stats-v3\"", "\"sequence\":1",
          "\"windowStartNs\":", "\"windowEndNs\":", "\"counters\":",
          "\"test.obs.json_window\":", "\"delta\":4",
          "\"cumulative\":4", "\"histograms\":",
          "\"test.obs.json_histo\":", "\"spanBuffers\":",
          "\"dropped\":0"}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in:\n"
            << json;
    }
}

TEST(Histogram, QuantileEstimates)
{
    obs::HistogramData empty;
    EXPECT_EQ(obs::histogramQuantile(empty, 0.5), 0.0);

    // 100 samples of the value 0: every quantile is 0.
    obs::HistogramData zeros;
    zeros.count = 100;
    zeros.buckets[0] = 100;
    EXPECT_EQ(obs::histogramQuantile(zeros, 0.99), 0.0);

    // 90 samples in [256, 512), 10 in [4096, 8192): the p50 lands in
    // the low bucket, the p99 in the high one. Log2 buckets bound the
    // estimate to within 2x of the true value.
    obs::HistogramData mixed;
    mixed.count = 100;
    mixed.min = 300;
    mixed.max = 5000;
    mixed.buckets[9] = 90;  // bit-width 9: [256, 511]
    mixed.buckets[13] = 10; // bit-width 13: [4096, 8191]
    const double p50 = obs::histogramQuantile(mixed, 0.5);
    EXPECT_GE(p50, 300.0);
    EXPECT_LT(p50, 512.0);
    const double p99 = obs::histogramQuantile(mixed, 0.99);
    EXPECT_GE(p99, 4096.0);
    EXPECT_LE(p99, 5000.0);
}

TEST(Histogram, QuantileStaysInsideBucketSpan)
{
    // One sample of the value 1000 (bucket 10 spans [512, 1023]). With
    // one sample, rank - seen == in_bucket, so frac == 1.0: the old
    // interpolation returned the *exclusive* edge 1024, a value the
    // bucket cannot contain. The inclusive span tops out at 1023, and
    // the [min, max] clamp then pins the estimate to the exact sample.
    obs::HistogramData one;
    one.count = 1;
    one.min = 1000;
    one.max = 1000;
    one.buckets[10] = 1;
    for (const double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(obs::histogramQuantile(one, q), 1000.0);
}

TEST(Histogram, QuantileClampedToRecordedRange)
{
    // 4 samples, all of value 700, in bucket 10 ([512, 1023]). Any
    // interpolated estimate above 700 would exceed the true maximum --
    // exactly the reported-p99-above-max bug -- and frac == 0.25 would
    // put the raw p25 estimate below min without the low clamp.
    obs::HistogramData flat;
    flat.count = 4;
    flat.min = 700;
    flat.max = 700;
    flat.buckets[10] = 4;
    for (const double q : {0.25, 0.5, 0.75, 0.99, 1.0}) {
        const double est = obs::histogramQuantile(flat, q);
        EXPECT_GE(est, 700.0) << "q=" << q;
        EXPECT_LE(est, 700.0) << "q=" << q;
    }

    // Bucket-0 (value 0) samples alongside a nonzero min cannot happen
    // in practice, but the max-fallthrough exit must clamp too: a rank
    // past every bucket returns data.max.
    obs::HistogramData spread;
    spread.count = 10;
    spread.min = 600;
    spread.max = 900;
    spread.buckets[10] = 10;
    const double p100 = obs::histogramQuantile(spread, 1.0);
    EXPECT_GE(p100, 600.0);
    EXPECT_LE(p100, 900.0);
}

} // namespace
} // namespace unizk
