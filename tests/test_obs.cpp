/**
 * @file
 * Tests for the observability subsystem: span recording (nesting,
 * thread attribution, drain semantics), the named-counter registry
 * (cross-thread merge, disabled no-op), the thread-safe
 * KernelTimeBreakdown accumulator (exercised under TSAN in CI), the
 * stats / Chrome-trace JSON schemas, and the end-to-end guarantees --
 * stats JSON matches the SimReport exactly and proofs are
 * byte-identical with observability on or off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/obs.h"
#include "obs/trace_export.h"
#include "unizk/pipeline.h"

namespace unizk {
namespace {

#if defined(UNIZK_OBS_DISABLE)
#define SKIP_IF_OBS_DISABLED()                                            \
    GTEST_SKIP() << "observability compiled out (UNIZK_DISABLE_OBS)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

/** Every test starts from a clean, enabled capture window and leaves
 *  observability off so other binaries' behaviour is unaffected. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setEnabled(true);
        obs::resetAll();
    }
    void
    TearDown() override
    {
        obs::setEnabled(false);
        obs::resetAll();
    }
};

TEST_F(ObsTest, SpanNestingOnOneThread)
{
    {
        obs::Span outer("outer");
        {
            obs::Span inner("inner");
        }
    }
    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by (threadId, startNs): the outer span opened first.
    EXPECT_STREQ(spans[0].name, "outer");
    EXPECT_STREQ(spans[1].name, "inner");
    EXPECT_EQ(spans[0].depth, 0u);
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_EQ(spans[0].threadId, spans[1].threadId);
    // The child interval nests inside the parent interval.
    EXPECT_LE(spans[0].startNs, spans[1].startNs);
    EXPECT_GE(spans[0].endNs, spans[1].endNs);
    EXPECT_LE(spans[1].startNs, spans[1].endNs);
    // Draining moved the events out.
    EXPECT_TRUE(obs::drainSpans().empty());
}

TEST_F(ObsTest, SpansAttributeToDistinctThreads)
{
    constexpr unsigned kThreads = 4;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([] { obs::Span span("worker"); });
    }
    for (auto &t : threads)
        t.join();

    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    ASSERT_EQ(spans.size(), kThreads);
    std::set<uint32_t> tids;
    for (const obs::SpanEvent &s : spans) {
        EXPECT_STREQ(s.name, "worker");
        tids.insert(s.threadId);
    }
    // Each raw thread owns its own buffer and id.
    EXPECT_EQ(tids.size(), kThreads);
}

TEST_F(ObsTest, SpansRecordedInsideParallelFor)
{
    SKIP_IF_OBS_DISABLED();
    setGlobalThreadCount(4);
    constexpr size_t kItems = 32;
    std::atomic<size_t> visited{0};
    parallelFor(0, kItems, 1, [&](size_t lo, size_t hi) {
        UNIZK_SPAN("pool-chunk");
        visited.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    ASSERT_EQ(visited.load(), kItems);
    // One span per executed chunk, none lost to races.
    const std::vector<obs::SpanEvent> spans = obs::drainSpans();
    EXPECT_GT(spans.size(), 1u);
    for (const obs::SpanEvent &s : spans)
        EXPECT_STREQ(s.name, "pool-chunk");
}

TEST_F(ObsTest, DisabledRecordsNothing)
{
    SKIP_IF_OBS_DISABLED();
    obs::setEnabled(false);
    {
        obs::Span span("invisible");
        UNIZK_COUNTER_ADD("test.obs.disabled", 17);
    }
    EXPECT_TRUE(obs::drainSpans().empty());
    const auto counters = obs::counterSnapshot();
    const auto it = counters.find("test.obs.disabled");
    if (it != counters.end()) {
        EXPECT_EQ(it->second, 0u);
    }
}

TEST_F(ObsTest, CountersMergeAcrossThreads)
{
    SKIP_IF_OBS_DISABLED();
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 1000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                UNIZK_COUNTER_ADD("test.obs.merge", 1);
        });
    }
    for (auto &t : threads)
        t.join();
    const auto counters = obs::counterSnapshot();
    const auto it = counters.find("test.obs.merge");
    ASSERT_NE(it, counters.end());
    EXPECT_EQ(it->second, kThreads * kPerThread);
}

TEST_F(ObsTest, ResetClearsCounters)
{
    SKIP_IF_OBS_DISABLED();
    UNIZK_COUNTER_ADD("test.obs.reset", 5);
    obs::resetAll();
    const auto counters = obs::counterSnapshot();
    const auto it = counters.find("test.obs.reset");
    ASSERT_NE(it, counters.end());
    EXPECT_EQ(it->second, 0u);
}

TEST(KernelTimeBreakdown, ConcurrentAddIsExact)
{
    // Regression for the data race ScopedKernelTimer used to cause when
    // worker threads timed kernels concurrently; run under TSAN in CI.
    KernelTimeBreakdown b;
    constexpr unsigned kThreads = 8;
    constexpr unsigned kAdds = 1000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&b] {
            for (unsigned i = 0; i < kAdds; ++i)
                b.add(KernelClass::Ntt, 0.001);
        });
    }
    for (auto &t : threads)
        t.join();
    // 8000 adds of exactly 1e6 ns each: no update may be lost.
    EXPECT_DOUBLE_EQ(b.seconds(KernelClass::Ntt), 8.0);
    EXPECT_DOUBLE_EQ(b.total(), 8.0);
}

TEST(KernelTimeBreakdown, CopyAndScaleStillWork)
{
    KernelTimeBreakdown b;
    b.add(KernelClass::MerkleTree, 2.0);
    b.add(KernelClass::Ntt, 1.0);
    const KernelTimeBreakdown copy = b;
    EXPECT_DOUBLE_EQ(copy.seconds(KernelClass::MerkleTree), 2.0);
    const KernelTimeBreakdown half = b.scaledBy(0.5);
    EXPECT_DOUBLE_EQ(half.seconds(KernelClass::Ntt), 0.5);
    KernelTimeBreakdown sum;
    sum += b;
    sum += half;
    EXPECT_DOUBLE_EQ(sum.total(), 3.0 + 1.5);
}

TEST(ObsExport, StatsJsonGoldenSchema)
{
    obs::RunStats run;
    run.app = "fibonacci";
    run.protocol = "plonky2";
    run.rows = 128;
    run.repetitions = 2;
    run.threads = 4;
    run.cpuSeconds = 1.25;
    run.proofBytes = 4096;
    run.verified = true;
    const std::string json =
        obs::statsToJson({run}, {{"test.counter", 42}});

    for (const char *needle :
         {"\"schema\": \"unizk-stats-v1\"", "\"runs\": [",
          "\"app\": \"fibonacci\"", "\"protocol\": \"plonky2\"",
          "\"rows\": 128", "\"repetitions\": 2", "\"threads\": 4",
          "\"cpu\": {", "\"totalSeconds\": 1.25", "\"breakdown\": {",
          "\"proof\": {", "\"bytes\": 4096", "\"verified\": true",
          "\"sim\": {", "\"perClass\": {", "\"busBytes\"",
          "\"usefulBytes\"", "\"memUtilization\"", "\"usefulFraction\"",
          "\"counters\": {", "\"test.counter\": 42"}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

TEST(ObsExport, ChromeTraceGoldenSchema)
{
    obs::SpanEvent span;
    span.name = "plonk/prove";
    span.startNs = 1000;
    span.endNs = 51000;
    span.threadId = 0;
    span.depth = 0;

    KernelTrace trace;
    trace.ops.push_back({HashKernel{256}, "pow"});

    obs::ChromeTraceBuilder builder;
    builder.addSpans({span});
    builder.addSimLane("unizk", trace, HardwareConfig::paperDefault());
    const std::string json = builder.build();

    for (const char *needle :
         {"\"traceEvents\": [", "\"ph\": \"M\"",
          "\"name\": \"process_name\"", "\"name\": \"cpu prover\"",
          "\"name\": \"sim: unizk\"", "\"ph\": \"X\"",
          "\"name\": \"plonk/prove\"", "\"cat\": \"cpu\"",
          "\"name\": \"pow\"", "\"cycles\":", "\"dur\": 50"}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

TEST_F(ObsTest, StatsJsonMatchesSimReport)
{
    const FriConfig cfg = FriConfig::testing();
    const HardwareConfig hw = HardwareConfig::paperDefault();
    const AppRunResult r =
        runPlonky2App(AppId::Fibonacci, 128, 2, cfg, hw);
    ASSERT_TRUE(r.verified);

    const obs::RunStats stats = toRunStats(r, "plonky2", 1);
    const std::string json =
        obs::statsToJson({stats}, obs::counterSnapshot());

    // The numbers in the JSON are exactly the SimReport / run values.
    const std::vector<std::string> needles = {
        "\"totalCycles\": " + std::to_string(r.sim.totalCycles),
        "\"readRequests\": " + std::to_string(r.sim.totalReadRequests()),
        "\"writeRequests\": " +
            std::to_string(r.sim.totalWriteRequests()),
        "\"bytes\": " + std::to_string(r.proofBytes),
        "\"rows\": 128",
        "\"verified\": true",
        "\"kernels\": " +
            std::to_string(r.sim.classStats(KernelClass::Ntt).kernels),
        "\"busBytes\": " +
            std::to_string(r.sim.classStats(KernelClass::Ntt).busBytes),
    };
    for (const std::string &needle : needles)
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;

#if !defined(UNIZK_OBS_DISABLE)
    // Instrumented code paths ran, so the standard counters are live.
    // (With UNIZK_DISABLE_OBS the macros compile out and nothing is
    // ever registered.)
    const auto counters = obs::counterSnapshot();
    for (const char *name : {"ntt.transforms", "merkle.trees",
                             "challenger.permutations",
                             "sim.kernel_ops"}) {
        const auto it = counters.find(name);
        ASSERT_NE(it, counters.end()) << name;
        EXPECT_GT(it->second, 0u) << name;
    }
#endif
}

TEST_F(ObsTest, ProofBytesIdenticalWithObsOnAndOff)
{
    const FriConfig cfg = FriConfig::testing();
    const HardwareConfig hw = HardwareConfig::paperDefault();

    obs::setEnabled(false);
    obs::resetAll();
    const AppRunResult off =
        runPlonky2App(AppId::Factorial, 128, 2, cfg, hw);

    obs::setEnabled(true);
    obs::resetAll();
    const AppRunResult on =
        runPlonky2App(AppId::Factorial, 128, 2, cfg, hw);

    ASSERT_FALSE(off.proofBlob.empty());
    EXPECT_EQ(off.proofBlob, on.proofBlob);
    EXPECT_TRUE(off.verified);
    EXPECT_TRUE(on.verified);
}

} // namespace
} // namespace unizk
