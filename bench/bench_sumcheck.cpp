/**
 * @file
 * Generality experiment (paper Section 8.1): the sum-check primitive
 * of Spartan / Binius / Basefold running on UniZK's vector mode, with
 * CPU-vs-simulated comparison across table sizes. Demonstrates that
 * the unified architecture extends beyond the Plonky2/Starky kernel
 * set, as the paper argues with Algorithm 2.
 */

#include "bench_util.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "sumcheck/sumcheck.h"

using namespace unizk;
using namespace unizk::bench;

int
main(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    const uint32_t max_log = static_cast<uint32_t>(
        cli.getUint("max-log", 22));

    std::printf("=== Generality: sum-check (Sec. 8.1, Algorithm 2) on "
                "UniZK ===\n\n");
    printRow({"Table size", "CPU (ms)", "UniZK (ms)", "Speedup",
              "Verified"});

    for (uint32_t log_n = 16; log_n <= max_log; log_n += 2) {
        SplitMix64 rng(log_n);
        std::vector<Fp> table(size_t{1} << log_n);
        for (auto &x : table)
            x = randomFp(rng);

        TraceRecorder recorder;
        KernelTimeBreakdown breakdown;
        ProverContext ctx;
        ctx.recorder = &recorder;
        ctx.breakdown = &breakdown;

        Challenger prover_ch;
        const Stopwatch watch;
        const SumcheckProof proof =
            sumcheckProve(table, prover_ch, ctx);
        const double cpu = watch.elapsedSeconds();

        Challenger verifier_ch;
        std::vector<Fp> point;
        const bool ok =
            sumcheckVerify(proof, log_n, verifier_ch, &point) &&
            proof.finalEval == multilinearEval(table, point);

        const SimReport sim = simulateTrace(
            recorder.trace(), HardwareConfig::paperDefault());
        printRow({"2^" + std::to_string(log_n), fmt(cpu * 1e3, 2),
                  fmt(sim.seconds() * 1e3, 3),
                  fmtX(cpu / sim.seconds(), 0), ok ? "yes" : "NO"});
    }
    return 0;
}
