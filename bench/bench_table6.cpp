/**
 * @file
 * Reproduces Table 6: comparison against PipeZK (a Groth16 ASIC) on
 * SHA-256 and AES-128 single blocks, plus the batched-blocks
 * throughput comparison behind the paper's 840x headline.
 *
 * Groth16 CPU and PipeZK times come from the calibrated cost model
 * (the paper likewise compares against PipeZK's published numbers);
 * Starky+Plonky2 CPU times are measured and UniZK times simulated.
 */

#include "bench_util.h"
#include "model/pipezk_model.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

namespace {

struct Row
{
    AppId app;
    Groth16Circuit groth;
};

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig starky_cfg = opt.starkyConfig();
    const FriConfig plonky_cfg = opt.plonky2Config();
    const HardwareConfig hw = HardwareConfig::paperDefault();
    const Groth16CostModel groth_model;

    std::printf("=== Table 6: UniZK vs PipeZK (Groth16 ASIC) ===\n");
    std::printf("paper: PipeZK speedup 12-15x, UniZK 123-159x; direct "
                "ASIC ratio 3.5-8.1x\n\n");
    printRow({"App", "G16 CPU(s)", "S+P2 CPU(s)", "PipeZK(ms)",
              "UniZK(ms)", "PipeZK spd", "UniZK spd", "ASIC ratio"},
             12);

    // Single-block workloads: small base trace + recursive compression.
    const std::vector<Row> rows{
        {AppId::Sha256, Groth16Circuit::sha256OneBlock()},
        // AES-128 has no separate AET here; its block circuit is
        // SHA-like in size and mix (documented substitution).
        {AppId::Sha256, Groth16Circuit::aes128OneBlock()},
    };

    const WorkloadParams rp = defaultParams(AppId::Recursion, opt.scale);
    const AppRunResult rec = runPlonky2App(AppId::Recursion, rp.rows,
                                           rp.repetitions, plonky_cfg,
                                           hw, false);
    const double rec_cpu = rec.cpuSeconds / cpuParallelSpeedup;
    const double rec_uni = rec.sim.seconds();

    double base_uni_sha = 0.0; // for the batched-throughput experiment

    for (const Row &row : rows) {
        // Single data block: a small AET (one block's rounds).
        const size_t base_rows = 256;
        const AppRunResult base = runStarkyApp(row.app, base_rows,
                                               starky_cfg, hw, false);
        const double sp_cpu =
            base.cpuSeconds / cpuParallelSpeedup + rec_cpu;
        const double sp_uni = base.sim.seconds() + rec_uni;
        if (row.groth.name == "SHA-256")
            base_uni_sha = base.sim.seconds();

        const double g16_cpu = groth_model.cpuSeconds(row.groth);
        const double pipezk = groth_model.pipezkSeconds(row.groth);
        const double pipezk_spd = g16_cpu / pipezk;
        const double uni_spd = sp_cpu / sp_uni;
        printRow({row.groth.name, fmt(g16_cpu, 1), fmt(sp_cpu, 1),
                  fmt(pipezk * 1e3, 0), fmt(sp_uni * 1e3, 1),
                  fmtX(pipezk_spd, 0), fmtX(uni_spd, 0),
                  fmtX(pipezk / sp_uni, 1)},
                 12);
    }

    // Batched blocks: only the base-proof cost grows; recursion
    // amortizes (paper: UniZK >8400 blocks/s vs PipeZK 10 blocks/s).
    const double uni_blocks_per_s = 1.0 / base_uni_sha;
    const double pipezk_blocks_per_s = groth_model.pipezkBlocksPerSecond(
        Groth16Circuit::sha256OneBlock());
    std::printf("\nbatched SHA-256 blocks/s: UniZK %.0f vs PipeZK %.0f "
                "-> %.0fx (paper: 840x)\n",
                uni_blocks_per_s, pipezk_blocks_per_s,
                uni_blocks_per_s / pipezk_blocks_per_s);
    return 0;
}
