/**
 * @file
 * Reproduces Figure 8: UniZK execution-time breakdown by kernel type.
 *
 * Paper reference: after accelerating NTT and hashing, the
 * miscellaneous polynomial operations become the dominant component
 * (the new bottleneck) for every application.
 */

#include "bench_util.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig cfg = opt.plonky2Config();
    const HardwareConfig hw = opt.paperHw();

    std::printf("=== Figure 8: UniZK time breakdown by kernel type "
                "===\n");
    std::printf("paper: polynomial ops dominate after NTT/hash "
                "acceleration\n\n");
    printRow({"Application", "NTT", "Polynomial", "Hash", "(cycles)"});

    ObsArtifacts artifacts(opt);
    for (const AppId app : evaluationApps()) {
        const WorkloadParams p = defaultParams(app, opt.scale);
        const size_t reps =
            opt.repsOverride ? opt.repsOverride : p.repetitions;
        const AppRunResult r = runPlonky2App(app, p.rows, reps, cfg, hw,
                                             /*verify_proof=*/false);
        artifacts.addRun(r, "plonky2", opt.threads);
        const double hash =
            r.sim.cycleFraction(KernelClass::MerkleTree) +
            r.sim.cycleFraction(KernelClass::OtherHash);
        printRow({r.app, fmtPct(r.sim.cycleFraction(KernelClass::Ntt)),
                  fmtPct(r.sim.cycleFraction(KernelClass::Polynomial)),
                  fmtPct(hash), std::to_string(r.sim.totalCycles)});
    }
    artifacts.write(hw);
    return 0;
}
