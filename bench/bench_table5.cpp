/**
 * @file
 * Reproduces Table 5: Starky base proofs plus Plonky2 recursive
 * aggregation, comparing CPU and UniZK and reporting proof sizes.
 *
 * Paper reference: base speedups 67-267x, recursive 142-167x; base
 * proof sizes ~260-780 kB, recursive ~155-187 kB. The recursive stage
 * proves a verifier-shaped circuit (see DESIGN.md's substitution
 * table).
 */

#include "bench_util.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig starky_cfg = opt.starkyConfig();
    const FriConfig plonky_cfg = opt.plonky2Config();
    const HardwareConfig hw = HardwareConfig::paperDefault();

    // Measured multithreaded CPU baseline when --threads/UNIZK_THREADS
    // gives more than one thread, else the paper's modeled scaling.
    const double cpu_scale =
        opt.threads > 1 ? 1.0 : cpuParallelSpeedup;

    std::printf("=== Table 5: Starky base + Plonky2 recursive "
                "aggregation ===\n");
    std::printf("paper: base 67-267x / 259-778 kB, recursive 142-167x / "
                "155-187 kB\n");
    if (opt.threads > 1)
        std::printf("(CPU column: measured with %u threads)\n\n",
                    opt.threads);
    else
        std::printf("(CPU column: measured 1-thread / %.0fx parallel "
                    "scaling)\n\n",
                    cpuParallelSpeedup);
    printRow({"Application", "Stage", "CPU (s)", "UniZK (ms)", "Speedup",
              "Size (kB)"});

    for (const AppId app :
         {AppId::Factorial, AppId::Fibonacci, AppId::Sha256}) {
        const WorkloadParams p = defaultParams(app, opt.scale);

        // Base proof with Starky (blowup 2).
        const AppRunResult base =
            runStarkyApp(app, p.rows, starky_cfg, hw,
                         /*verify_proof=*/false);
        const double base_cpu = base.cpuSeconds / cpu_scale;
        printRow({base.app, "Base", fmt(base_cpu),
                  fmt(base.sim.seconds() * 1e3, 2),
                  fmtX(base_cpu / base.sim.seconds(), 0),
                  fmt(static_cast<double>(base.proofBytes) / 1024.0, 0)});

        // Recursive aggregation with Plonky2 (verifier-shaped circuit).
        const WorkloadParams rp = defaultParams(AppId::Recursion,
                                                opt.scale);
        const AppRunResult rec = runPlonky2App(
            AppId::Recursion, rp.rows, rp.repetitions, plonky_cfg, hw,
            /*verify_proof=*/false);
        const double rec_cpu = rec.cpuSeconds / cpu_scale;
        printRow({"", "Recursive", fmt(rec_cpu),
                  fmt(rec.sim.seconds() * 1e3, 2),
                  fmtX(rec_cpu / rec.sim.seconds(), 0),
                  fmt(static_cast<double>(rec.proofBytes) / 1024.0, 0)});
    }
    return 0;
}
