/**
 * @file
 * google-benchmark micro-benchmarks for the computational substrates:
 * Goldilocks field ops, NTTs, Poseidon permutations, Merkle trees, and
 * the element-wise / partial-product kernels. These characterize the
 * CPU baseline's per-kernel throughput (the denominators behind the
 * Table 3 / Figure 9 speedups).
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "hash/hashing.h"
#include "merkle/merkle_tree.h"
#include "ntt/ntt.h"
#include "poly/polynomial.h"

namespace unizk {
namespace {

/** Benchmark Arg() values are int64_t; sizes in this repo are size_t. */
size_t
rangeSize(const benchmark::State &state)
{
    return static_cast<size_t>(state.range(0));
}

std::vector<Fp>
randomVector(size_t n, uint64_t seed = 7)
{
    SplitMix64 rng(seed);
    std::vector<Fp> v(n);
    for (auto &x : v)
        x = randomFp(rng);
    return v;
}

void
BM_FieldMul(benchmark::State &state)
{
    SplitMix64 rng(1);
    Fp a = randomFp(rng), b = randomFp(rng);
    for (auto _ : state) {
        a *= b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FieldMul);

void
BM_FieldInverse(benchmark::State &state)
{
    SplitMix64 rng(2);
    Fp a = randomFp(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.inverse());
        a += Fp::one();
    }
}
BENCHMARK(BM_FieldInverse);

void
BM_BatchInverse(benchmark::State &state)
{
    const auto base = randomVector(rangeSize(state), 3);
    for (auto _ : state) {
        auto v = base;
        batchInverse(v);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchInverse)->Arg(1024)->Arg(65536);

void
BM_NttForward(benchmark::State &state)
{
    const auto base = randomVector(rangeSize(state), 4);
    for (auto _ : state) {
        auto v = base;
        nttNR(v);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NttForward)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void
BM_LowDegreeExtension(benchmark::State &state)
{
    const auto base = randomVector(rangeSize(state), 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lowDegreeExtension(base, 8, defaultCosetShift()));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_LowDegreeExtension)->Arg(1 << 10)->Arg(1 << 13);

void
BM_PoseidonPermutation(benchmark::State &state)
{
    const auto &p = Poseidon::instance();
    PoseidonState s{};
    for (size_t i = 0; i < s.size(); ++i)
        s[i] = Fp(i + 1);
    for (auto _ : state) {
        p.permute(s);
        benchmark::DoNotOptimize(s.data());
    }
}
BENCHMARK(BM_PoseidonPermutation);

void
BM_PoseidonPermutationNaive(benchmark::State &state)
{
    const auto &p = Poseidon::instance();
    PoseidonState s{};
    for (size_t i = 0; i < s.size(); ++i)
        s[i] = Fp(i + 1);
    for (auto _ : state) {
        p.permuteNaive(s);
        benchmark::DoNotOptimize(s.data());
    }
}
BENCHMARK(BM_PoseidonPermutationNaive);

void
BM_HashLeaf135(benchmark::State &state)
{
    // The paper's leaf width: 135 elements -> 17 sponge permutations.
    const auto leaf = randomVector(135, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(hashNoPad(leaf));
}
BENCHMARK(BM_HashLeaf135);

void
BM_MerkleTreeBuild(benchmark::State &state)
{
    const size_t leaves = rangeSize(state);
    std::vector<std::vector<Fp>> data(leaves);
    for (size_t i = 0; i < leaves; ++i)
        data[i] = randomVector(16, i);
    for (auto _ : state) {
        MerkleTree tree(data, 4);
        benchmark::DoNotOptimize(tree.cap().data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(leaves));
}
BENCHMARK(BM_MerkleTreeBuild)->Arg(1 << 10)->Arg(1 << 13);

void
BM_VecMul(benchmark::State &state)
{
    const auto a = randomVector(rangeSize(state), 8);
    const auto b = randomVector(rangeSize(state), 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(vecMul(a, b).data());
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VecMul)->Arg(1 << 14)->Arg(1 << 18);

void
BM_PartialProductsGrouped(benchmark::State &state)
{
    const auto h = randomVector(rangeSize(state), 10);
    for (auto _ : state)
        benchmark::DoNotOptimize(partialProductsGrouped(h, 32).data());
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartialProductsGrouped)->Arg(1 << 14);

} // namespace
} // namespace unizk

BENCHMARK_MAIN();
