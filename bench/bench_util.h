/**
 * @file
 * Shared helpers for the table/figure harnesses: fixed-width table
 * printing and common CLI handling. Each harness regenerates one table
 * or figure of the paper and prints the paper's reported values next
 * to the reproduced ones where applicable.
 */

#ifndef UNIZK_BENCH_BENCH_UTIL_H
#define UNIZK_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "fri/fri_config.h"
#include "obs/json_writer.h"
#include "obs/obs.h"
#include "obs/stats_export.h"
#include "obs/trace_export.h"
#include "sim/hw_config.h"
#include "unizk/pipeline.h"

namespace unizk {
namespace bench {

/** Print one row of fixed-width cells. */
inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    for (const auto &c : cells)
        std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int precision = 3)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string
fmtX(double v, int precision = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

inline std::string
fmtPct(double v, int precision = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * v);
    return buf;
}

/** Standard harness options: workload scale and FRI configuration. */
struct HarnessOptions
{
    uint32_t scale = 0;       ///< shifts every app's rows up by 2^scale
    uint32_t repsOverride = 0; ///< 0 = per-app default
    bool fast = false;         ///< reduced security params for quick runs
    unsigned threads = 1;      ///< resolved prover thread count (>= 1)
    std::string statsJsonPath; ///< --stats-json: unizk-stats-v2 output
    std::string traceJsonPath; ///< --trace-json: Chrome trace output
    uint64_t timelinePeriod = 0; ///< --timeline-period: sample cycles
                                 ///< (0 = auto, ~256 samples)

    /** True when any machine-readable artifact was requested. */
    bool
    wantsObs() const
    {
        return !statsJsonPath.empty() || !traceJsonPath.empty();
    }

    /** Paper-default hardware with the timeline knob applied. */
    HardwareConfig
    paperHw() const
    {
        HardwareConfig hw = HardwareConfig::paperDefault();
        hw.timelineSamplePeriod = timelinePeriod;
        return hw;
    }

    FriConfig
    plonky2Config() const
    {
        FriConfig cfg = FriConfig::plonky2();
        if (fast) {
            cfg.powBits = 8;
            cfg.numQueries = 8;
        }
        return cfg;
    }

    FriConfig
    starkyConfig() const
    {
        FriConfig cfg = FriConfig::starky();
        if (fast) {
            cfg.powBits = 8;
            cfg.numQueries = 16;
        }
        return cfg;
    }
};

inline HarnessOptions
parseHarnessOptions(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    HarnessOptions opt;
    opt.scale = static_cast<uint32_t>(cli.getUint("scale", 0));
    opt.repsOverride = static_cast<uint32_t>(cli.getUint("reps", 0));
    opt.fast = cli.has("fast");
    opt.statsJsonPath = cli.getString("stats-json", "");
    opt.traceJsonPath = cli.getString("trace-json", "");
    opt.timelinePeriod = cli.getUint("timeline-period", 0);
    // Routes --threads to the global pool (0/absent = auto:
    // UNIZK_THREADS, else hardware concurrency).
    applyGlobalCliOptions(cli);
    opt.threads = globalThreadCount();
    if (opt.wantsObs()) {
        obs::setEnabled(true);
        // Everything before here (pool spin-up, option handling) is
        // setup, not measurement; start the capture window clean.
        obs::resetForMeasurement();
    }
    return opt;
}

/**
 * Collects per-run stats during a harness and writes the requested
 * JSON artifacts at the end (the harness calls write() once after its
 * table is printed). No-op when neither --stats-json nor --trace-json
 * was given.
 */
class ObsArtifacts
{
  public:
    explicit ObsArtifacts(const HarnessOptions &opt) : opt_(opt) {}

    void
    addRun(const AppRunResult &r, const char *protocol, unsigned threads)
    {
        if (!opt_.statsJsonPath.empty())
            runs_.push_back(toRunStats(r, protocol, threads));
        if (!opt_.traceJsonPath.empty())
            traces_.push_back({r.app, r.trace});
    }

    /** Write the artifacts; @p hw drives the simulated-timeline lanes. */
    void
    write(const HardwareConfig &hw) const
    {
        if (!opt_.statsJsonPath.empty()) {
            const std::string doc =
                obs::statsToJson(runs_, obs::counterSnapshot(),
                                 obs::histogramSnapshot());
            if (!obs::writeFile(opt_.statsJsonPath, doc))
                unizk_fatal("cannot write ", opt_.statsJsonPath);
            std::printf("wrote stats JSON: %s\n",
                        opt_.statsJsonPath.c_str());
        }
        if (!opt_.traceJsonPath.empty()) {
            obs::ChromeTraceBuilder builder;
            builder.addSpans(obs::drainSpans());
            for (const auto &[name, trace] : traces_)
                builder.addSimLane(name, trace, hw);
            if (!obs::writeFile(opt_.traceJsonPath, builder.build()))
                unizk_fatal("cannot write ", opt_.traceJsonPath);
            std::printf("wrote Chrome trace: %s\n",
                        opt_.traceJsonPath.c_str());
        }
    }

  private:
    const HarnessOptions &opt_;
    std::vector<obs::RunStats> runs_;
    std::vector<std::pair<std::string, KernelTrace>> traces_;
};

} // namespace bench
} // namespace unizk

#endif // UNIZK_BENCH_BENCH_UTIL_H
