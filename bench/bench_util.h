/**
 * @file
 * Shared helpers for the table/figure harnesses: fixed-width table
 * printing and common CLI handling. Each harness regenerates one table
 * or figure of the paper and prints the paper's reported values next
 * to the reproduced ones where applicable.
 */

#ifndef UNIZK_BENCH_BENCH_UTIL_H
#define UNIZK_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/thread_pool.h"
#include "fri/fri_config.h"
#include "sim/hw_config.h"

namespace unizk {
namespace bench {

/** Print one row of fixed-width cells. */
inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    for (const auto &c : cells)
        std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int precision = 3)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string
fmtX(double v, int precision = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

inline std::string
fmtPct(double v, int precision = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * v);
    return buf;
}

/** Standard harness options: workload scale and FRI configuration. */
struct HarnessOptions
{
    uint32_t scale = 0;       ///< shifts every app's rows up by 2^scale
    uint32_t repsOverride = 0; ///< 0 = per-app default
    bool fast = false;         ///< reduced security params for quick runs
    unsigned threads = 1;      ///< resolved prover thread count (>= 1)

    FriConfig
    plonky2Config() const
    {
        FriConfig cfg = FriConfig::plonky2();
        if (fast) {
            cfg.powBits = 8;
            cfg.numQueries = 8;
        }
        return cfg;
    }

    FriConfig
    starkyConfig() const
    {
        FriConfig cfg = FriConfig::starky();
        if (fast) {
            cfg.powBits = 8;
            cfg.numQueries = 16;
        }
        return cfg;
    }
};

inline HarnessOptions
parseHarnessOptions(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    HarnessOptions opt;
    opt.scale = static_cast<uint32_t>(cli.getUint("scale", 0));
    opt.repsOverride = static_cast<uint32_t>(cli.getUint("reps", 0));
    opt.fast = cli.has("fast");
    // Routes --threads to the global pool (0/absent = auto:
    // UNIZK_THREADS, else hardware concurrency).
    applyGlobalCliOptions(cli);
    opt.threads = globalThreadCount();
    return opt;
}

} // namespace bench
} // namespace unizk

#endif // UNIZK_BENCH_BENCH_UTIL_H
