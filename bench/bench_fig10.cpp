/**
 * @file
 * Reproduces Figure 10: performance sensitivity of UniZK on the MVM
 * workload while scaling (a) scratchpad size, (b) number of VSAs, and
 * (c) memory bandwidth, each normalized to the default configuration.
 *
 * Paper reference: scratchpad and bandwidth move the memory-bound NTT
 * and polynomial kernels; the Merkle tree scales with the VSA count.
 *
 * The CPU proof is generated once; its recorded kernel trace is then
 * re-simulated under every hardware point (exactly how the paper's
 * simulator explores the design space).
 */

#include "bench_util.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

namespace {

void
sweepRow(const KernelTrace &trace, const HardwareConfig &hw,
         const std::string &label, double baseline_total,
         const SimReport &base)
{
    const SimReport r = simulateTrace(trace, hw);
    auto norm_class = [&](KernelClass c) {
        const uint64_t cycles = r.classStats(c).cycles;
        const uint64_t base_cycles = base.classStats(c).cycles;
        if (cycles == 0)
            return std::string("-");
        return fmt(static_cast<double>(base_cycles) / static_cast<double>(cycles), 2);
    };
    printRow({label,
              fmt(baseline_total / static_cast<double>(r.totalCycles),
                  2),
              norm_class(KernelClass::Ntt),
              norm_class(KernelClass::Polynomial),
              norm_class(KernelClass::MerkleTree)},
             12);
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig cfg = opt.plonky2Config();
    const HardwareConfig base_hw = HardwareConfig::paperDefault();

    const WorkloadParams p = defaultParams(AppId::Mvm, opt.scale);
    const size_t reps = opt.repsOverride ? opt.repsOverride
                                         : p.repetitions;
    std::printf("=== Figure 10: design-space exploration (MVM) ===\n");
    std::printf("normalized performance vs default config (total, NTT, "
                "Poly, Merkle)\n\n");
    const AppRunResult run = runPlonky2App(AppId::Mvm, p.rows, reps, cfg,
                                           base_hw,
                                           /*verify_proof=*/false);
    const SimReport base = run.sim;
    const double base_total = static_cast<double>(base.totalCycles);

    printRow({"Config", "Total", "NTT", "Poly", "Merkle"}, 12);
    for (const uint64_t mb : {2u, 4u, 8u, 16u, 32u}) {
        HardwareConfig hw = base_hw;
        hw.scratchpadBytes = mb << 20;
        sweepRow(run.trace, hw, "spad " + std::to_string(mb) + "MB",
                 base_total, base);
    }
    std::printf("\n");
    for (const uint32_t vsas : {8u, 16u, 32u, 64u, 128u}) {
        HardwareConfig hw = base_hw;
        hw.numVsas = vsas;
        sweepRow(run.trace, hw, "vsas " + std::to_string(vsas),
                 base_total, base);
    }
    std::printf("\n");
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        HardwareConfig hw = base_hw;
        hw.memBandwidthScale = scale;
        sweepRow(run.trace, hw, "bw " + fmt(scale, 2) + "x", base_total,
                 base);
    }
    return 0;
}
