/**
 * @file
 * Reproduces Table 2: area and power breakdown of the UniZK chip at
 * the default configuration (32 VSAs, 8 MB scratchpad, 2 HBM PHYs).
 */

#include "bench_util.h"
#include "model/area_power.h"

using namespace unizk;
using namespace unizk::bench;

int
main(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    HardwareConfig cfg = HardwareConfig::paperDefault();
    cfg.numVsas = static_cast<uint32_t>(cli.getUint("vsas", cfg.numVsas));
    cfg.scratchpadBytes =
        cli.getUint("scratchpad-mb", cfg.scratchpadBytes >> 20) << 20;

    std::printf("=== Table 2: area and power breakdown ===\n");
    std::printf("paper (default config): total 57.8 mm^2, 96.4 W\n\n");
    printRow({"Component", "Area (mm^2)", "Power (W)"}, 28);

    const ChipCost cost = estimateChipCost(cfg, 2);
    for (const auto &c : cost.components)
        printRow({c.name, fmt(c.areaMm2, 1), fmt(c.powerW, 1)}, 28);
    printRow({"Total", fmt(cost.totalAreaMm2(), 1),
              fmt(cost.totalPowerW(), 1)},
             28);
    return 0;
}
