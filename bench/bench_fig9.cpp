/**
 * @file
 * Reproduces Figure 9: UniZK speedup over the CPU per kernel type.
 *
 * Paper reference: hash kernels see the largest speedups (up to
 * ~191x), NTT is lower because it is memory-bound (~92-110x), and
 * polynomial kernels are lowest (20-92x), with MVM's wide trace
 * lifting its polynomial speedup.
 */

#include "bench_util.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

namespace {

double
classSpeedup(const AppRunResult &r, double cpu_seconds,
             uint64_t sim_cycles)
{
    if (sim_cycles == 0)
        return 0.0;
    const double sim_seconds =
        r.sim.config.cyclesToSeconds(sim_cycles);
    return (cpu_seconds / cpuParallelSpeedup) / sim_seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig cfg = opt.plonky2Config();
    const HardwareConfig hw = HardwareConfig::paperDefault();

    std::printf("=== Figure 9: speedups by kernel type ===\n");
    std::printf("paper: NTT ~92-110x, Poly 20-92x (MVM highest), Hash "
                "up to 191x\n\n");
    printRow({"Application", "NTT", "Polynomial", "Hash"});

    for (const AppId app : evaluationApps()) {
        const WorkloadParams p = defaultParams(app, opt.scale);
        const size_t reps =
            opt.repsOverride ? opt.repsOverride : p.repetitions;
        const AppRunResult r = runPlonky2App(app, p.rows, reps, cfg, hw,
                                             /*verify_proof=*/false);
        const auto &b = r.cpuBreakdown;
        const double ntt = classSpeedup(
            r, b.seconds(KernelClass::Ntt),
            r.sim.classStats(KernelClass::Ntt).cycles);
        const double poly = classSpeedup(
            r, b.seconds(KernelClass::Polynomial),
            r.sim.classStats(KernelClass::Polynomial).cycles);
        const double hash = classSpeedup(
            r,
            b.seconds(KernelClass::MerkleTree) +
                b.seconds(KernelClass::OtherHash),
            r.sim.classStats(KernelClass::MerkleTree).cycles +
                r.sim.classStats(KernelClass::OtherHash).cycles);
        printRow({r.app, fmtX(ntt, 0), fmtX(poly, 0), fmtX(hash, 0)});
    }
    return 0;
}
