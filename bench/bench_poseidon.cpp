/**
 * @file
 * Poseidon batch-hashing benchmark: the SIMD batch path
 * (Poseidon::permuteBatch and the hashing.h batch entry points) against
 * the scalar per-sponge path, at the dispatched SIMD level. The
 * batch-vs-scalar permute ratio is the gated metric in
 * tools/bench/BASELINE.json: it is a same-machine ratio, so it
 * transfers across hosts (on AVX2 hosts; the harness reports the
 * dispatched level so the gate can be waived where AVX2 is absent).
 *
 * Rows:
 *   permute       scalar permute() loop vs permuteBatch() at the
 *                 dispatched level (the gated ratio)
 *   permute-batch-scalar
 *                 permuteBatch() with the scalar backend forced:
 *                 isolates batching overhead from SIMD gain
 *   leaf-135      hashNoPad vs hashNoPadBatch on 135-element leaves
 *                 (the paper's Merkle leaf width)
 *   merkle-2to1   hashTwoToOne vs hashTwoToOneBatch on digest pairs
 *
 * Flags:
 *   --states N        sponge states per reading (default 4096)
 *   --reps N          best-of-N readings (default 5)
 *   --smoke           tiny run (512 states, 2 reps) for the ctest leg
 *   --simd LEVEL      force {auto,avx2,scalar} dispatch for the run
 *   --stats-json PATH write a unizk-poseidon-bench-v1 JSON artifact
 */

#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "hash/goldilocks_simd.h"
#include "hash/hashing.h"
#include "hash/poseidon.h"

using namespace unizk;
using namespace unizk::bench;

namespace {

std::vector<PoseidonState>
randomStates(size_t n, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<PoseidonState> states(n);
    for (auto &s : states)
        for (auto &x : s)
            x = randomFp(rng);
    return states;
}

/** Best-of-reps wall time of fn() after one untimed warmup. */
double
timeBest(unsigned reps, const std::function<void()> &fn)
{
    fn();
    double best = 0;
    for (unsigned r = 0; r < reps; ++r) {
        const Stopwatch watch;
        fn();
        const double s = watch.elapsedSeconds();
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

struct Row
{
    std::string kernel;
    double scalarSeconds = 0;
    double batchSeconds = 0;

    double
    speedup() const
    {
        return scalarSeconds / batchSeconds;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    const bool smoke = cli.has("smoke");
    const size_t n_states =
        cli.getUint("states", smoke ? 512 : 4096);
    const unsigned reps =
        static_cast<unsigned>(cli.getUint("reps", smoke ? 2 : 5));
    const std::string stats_path = cli.getString("stats-json", "");
    const std::string simd_flag = cli.getString("simd", "auto");

    if (simd_flag == "scalar") {
        setSimdLevel(SimdLevel::Scalar);
    } else if (simd_flag == "avx2") {
        if (!setSimdLevel(SimdLevel::Avx2))
            unizk_fatal("--simd avx2: AVX2 unavailable on this host");
    } else if (simd_flag != "auto") {
        unizk_fatal("--simd must be one of auto/avx2/scalar");
    }
    const SimdLevel level = activeSimdLevel();

    std::printf("=== Poseidon batch vs scalar (simd=%s, %zu states) "
                "===\n\n",
                simdLevelName(level), n_states);
    printRow({"Kernel", "Scalar (ms)", "Batch (ms)", "Speedup"}, 22);

    const Poseidon &poseidon = Poseidon::instance();
    std::vector<Row> rows;

    // The gated row: raw permutation throughput, scalar loop vs the
    // batched kernel at the dispatched level.
    {
        const auto input = randomStates(n_states, 1);
        Row row;
        row.kernel = "permute";
        row.scalarSeconds = timeBest(reps, [&] {
            auto work = input;
            for (auto &s : work)
                poseidon.permute(s);
        });
        row.batchSeconds = timeBest(reps, [&] {
            auto work = input;
            poseidon.permuteBatch(work.data(), work.size());
        });
        rows.push_back(row);
    }

    // Batching with the SIMD backend forced off: how much of the gain
    // is lane parallelism vs mere loop restructuring.
    {
        const auto input = randomStates(n_states, 2);
        Row row;
        row.kernel = "permute-batch-scalar";
        row.scalarSeconds = timeBest(reps, [&] {
            auto work = input;
            for (auto &s : work)
                poseidon.permute(s);
        });
        setSimdLevel(SimdLevel::Scalar);
        row.batchSeconds = timeBest(reps, [&] {
            auto work = input;
            poseidon.permuteBatch(work.data(), work.size());
        });
        setSimdLevel(level);
        rows.push_back(row);
    }

    // The paper's 135-element Merkle leaf, through the sponge.
    {
        SplitMix64 rng(3);
        std::vector<std::vector<Fp>> leaves(n_states / 8);
        for (auto &leaf : leaves) {
            leaf.resize(135);
            for (auto &x : leaf)
                x = randomFp(rng);
        }
        std::vector<HashOut> digests(leaves.size());
        Row row;
        row.kernel = "leaf-135";
        row.scalarSeconds = timeBest(reps, [&] {
            for (size_t i = 0; i < leaves.size(); ++i)
                digests[i] = hashNoPad(leaves[i]);
        });
        row.batchSeconds = timeBest(reps, [&] {
            hashNoPadBatch(leaves.data(), leaves.size(),
                           digests.data());
        });
        rows.push_back(row);
    }

    // Interior Merkle levels: two-to-one compression over digest pairs.
    {
        SplitMix64 rng(4);
        std::vector<HashOut> children(2 * n_states);
        for (auto &c : children)
            for (auto &e : c.elems)
                e = randomFp(rng);
        std::vector<HashOut> out(n_states);
        Row row;
        row.kernel = "merkle-2to1";
        row.scalarSeconds = timeBest(reps, [&] {
            for (size_t i = 0; i < n_states; ++i)
                out[i] = hashTwoToOne(children[2 * i],
                                      children[2 * i + 1]);
        });
        row.batchSeconds = timeBest(reps, [&] {
            hashTwoToOneBatch(children.data(), n_states, out.data());
        });
        rows.push_back(row);
    }

    for (const auto &r : rows)
        printRow({r.kernel, fmt(r.scalarSeconds * 1e3, 3),
                  fmt(r.batchSeconds * 1e3, 3), fmtX(r.speedup(), 2)},
                 22);

    if (!stats_path.empty()) {
        obs::JsonWriter w;
        w.beginObject();
        w.kv("schema", "unizk-poseidon-bench-v1");
        w.kv("simd", simdLevelName(level));
        w.kv("states", static_cast<uint64_t>(n_states));
        w.kv("smoke", smoke);
        w.key("rows").beginArray();
        for (const auto &r : rows) {
            w.beginObject();
            w.kv("kernel", r.kernel);
            w.kv("scalar_seconds", r.scalarSeconds);
            w.kv("batch_seconds", r.batchSeconds);
            w.kv("speedup", r.speedup());
            w.endObject();
        }
        w.endArray();
        w.endObject();
        if (!obs::writeFile(stats_path, w.str()))
            unizk_fatal("cannot write ", stats_path);
        std::printf("\nwrote stats JSON: %s\n", stats_path.c_str());
    }
    return 0;
}
