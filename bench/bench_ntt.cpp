/**
 * @file
 * NTT engine benchmark: the twiddle-cached, pool-parallel engine against
 * the seed-era scalar path (per-call root recomputation, sequential
 * `w *= w_len` twiddle chains) across transform sizes 2^12..2^22, at one
 * thread and at the full pool width. The LDE rows are the FRI commit
 * workload (coset NTT^NR with blowup 8), sized by output domain so the
 * "2^20 LDE" row matches the acceptance criterion directly.
 *
 * Flags:
 *   --min-log N / --max-log N  sweep bounds on the transform size
 *                              (default 12..22)
 *   --threads N                pool width for the NT columns (default:
 *                              auto)
 *   --smoke                    tiny sweep (2^12..2^14, one reading) used
 *                              as the ctest smoke leg
 *   --stats-json PATH          write a unizk-ntt-bench-v2 JSON artifact
 *                              with every timing plus the obs counters
 *                              (measured and warmup pools kept apart)
 */

#include <algorithm>
#include <functional>
#include <map>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ntt/ntt.h"

using namespace unizk;
using namespace unizk::bench;

namespace {

/** Temporarily pin the pool width (restores the previous width). */
struct ThreadCountGuard
{
    unsigned saved;

    explicit ThreadCountGuard(unsigned threads)
        : saved(globalThreadCount())
    {
        setGlobalThreadCount(threads);
    }
    ~ThreadCountGuard() { setGlobalThreadCount(saved); }
};

std::vector<Fp>
randomVector(size_t n, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<Fp> v(n);
    for (auto &x : v)
        x = randomFp(rng);
    return v;
}

/**
 * Warmup and measured counters are kept apart so warmup work (e.g.
 * first-touch twiddle construction, visible as `ntt.twiddle_builds`
 * under "warmupCounters") cannot bleed into the measured numbers.
 */
std::map<std::string, uint64_t> g_warmup_counters;
std::map<std::string, uint64_t> g_measured_counters;

/** Fold the live obs counters into @p into, then clear them. */
void
harvestCounters(std::map<std::string, uint64_t> &into)
{
    for (const auto &[name, count] : obs::counterSnapshot())
        into[name] += count;
    obs::resetForMeasurement();
}

/**
 * Best-of-reps wall time of fn() on a fresh copy of @p input, after one
 * untimed warmup that absorbs first-touch twiddle construction. The obs
 * counters are harvested at the warmup/measured boundary so each pool
 * only contains its own work.
 */
double
timeTransform(const std::vector<Fp> &input, unsigned reps,
              const std::function<void(std::vector<Fp> &)> &fn)
{
    {
        auto warm = input;
        fn(warm);
    }
    harvestCounters(g_warmup_counters);
    double best = 0;
    for (unsigned r = 0; r < reps; ++r) {
        auto work = input;
        const Stopwatch watch;
        fn(work);
        const double s = watch.elapsedSeconds();
        if (r == 0 || s < best)
            best = s;
    }
    harvestCounters(g_measured_counters);
    return best;
}

struct Row
{
    std::string kernel;
    uint32_t logSize = 0;
    unsigned threads = 1;
    double scalarSeconds = 0; ///< seed path (always 1 thread)
    double engine1tSeconds = 0;
    double engineNtSeconds = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    const bool smoke = cli.has("smoke");
    const uint32_t min_log =
        static_cast<uint32_t>(cli.getUint("min-log", 12));
    const uint32_t max_log = static_cast<uint32_t>(
        cli.getUint("max-log", smoke ? 14 : 22));
    const std::string stats_path = cli.getString("stats-json", "");
    applyGlobalCliOptions(cli);
    const unsigned threads = globalThreadCount();
    constexpr uint32_t lde_blowup_bits = 3;
    constexpr uint32_t lde_blowup = 8; // FRI commit shape

    obs::setEnabled(true);
    obs::resetForMeasurement();

    std::printf("=== NTT engine vs seed scalar path (%u threads) ===\n\n",
                threads);
    printRow({"Kernel", "Size", "Seed 1T (ms)", "Engine 1T (ms)",
              "Engine NT (ms)", "1T gain", "NT gain"});

    std::vector<Row> rows;
    for (uint32_t log = min_log; log <= max_log; ++log) {
        const size_t n = size_t{1} << log;
        // Keep every reading above timer noise without letting small
        // sizes dominate wall time.
        const unsigned reps =
            smoke ? 1 : std::max(2u, static_cast<unsigned>(24 - log));
        const Fp shift = defaultCosetShift();

        // Forward NTT^NR on the full domain.
        {
            const auto input = randomVector(n, log);
            Row row;
            row.kernel = "ntt-nr";
            row.logSize = log;
            row.threads = threads;
            row.scalarSeconds =
                timeTransform(input, reps, [](std::vector<Fp> &a) {
                    scalarNttNR(a);
                });
            {
                ThreadCountGuard guard(1);
                row.engine1tSeconds =
                    timeTransform(input, reps, [](std::vector<Fp> &a) {
                        nttNR(a);
                    });
            }
            row.engineNtSeconds =
                timeTransform(input, reps, [](std::vector<Fp> &a) {
                    nttNR(a);
                });
            rows.push_back(row);
        }

        // Coset LDE with output domain 2^log (the FRI commit kernel).
        if (log > lde_blowup_bits) {
            const auto coeffs =
                randomVector(n >> lde_blowup_bits, 77 + log);
            Row row;
            row.kernel = "lde";
            row.logSize = log;
            row.threads = threads;
            row.scalarSeconds =
                timeTransform(coeffs, reps, [&](std::vector<Fp> &a) {
                    a = scalarLowDegreeExtension(
                        a, lde_blowup, shift);
                });
            {
                ThreadCountGuard guard(1);
                row.engine1tSeconds =
                    timeTransform(coeffs, reps, [&](std::vector<Fp> &a) {
                        a = lowDegreeExtension(
                            a, lde_blowup, shift);
                    });
            }
            row.engineNtSeconds =
                timeTransform(coeffs, reps, [&](std::vector<Fp> &a) {
                    a = lowDegreeExtension(a, lde_blowup,
                                           shift);
                });
            rows.push_back(row);
        }
    }

    for (const auto &r : rows) {
        printRow({r.kernel, "2^" + std::to_string(r.logSize),
                  fmt(r.scalarSeconds * 1e3, 3),
                  fmt(r.engine1tSeconds * 1e3, 3),
                  fmt(r.engineNtSeconds * 1e3, 3),
                  fmtX(r.scalarSeconds / r.engine1tSeconds),
                  fmtX(r.scalarSeconds / r.engineNtSeconds)});
    }

    if (!stats_path.empty()) {
        obs::JsonWriter w;
        w.beginObject();
        w.kv("schema", "unizk-ntt-bench-v2");
        w.kv("threads", static_cast<uint64_t>(threads));
        w.kv("smoke", smoke);
        w.key("rows").beginArray();
        for (const auto &r : rows) {
            w.beginObject();
            w.kv("kernel", r.kernel);
            w.kv("log_size", static_cast<uint64_t>(r.logSize));
            w.kv("threads", static_cast<uint64_t>(r.threads));
            w.kv("seed_scalar_seconds", r.scalarSeconds);
            w.kv("engine_1t_seconds", r.engine1tSeconds);
            w.kv("engine_nt_seconds", r.engineNtSeconds);
            w.kv("speedup_1t", r.scalarSeconds / r.engine1tSeconds);
            w.kv("speedup_nt", r.scalarSeconds / r.engineNtSeconds);
            w.endObject();
        }
        w.endArray();
        w.key("counters").beginObject();
        for (const auto &[name, count] : g_measured_counters)
            w.kv(name, count);
        w.endObject();
        w.key("warmupCounters").beginObject();
        for (const auto &[name, count] : g_warmup_counters)
            w.kv(name, count);
        w.endObject();
        w.endObject();
        if (!obs::writeFile(stats_path, w.str()))
            unizk_fatal("cannot write ", stats_path);
        std::printf("\nwrote stats JSON: %s\n", stats_path.c_str());
    }
    return 0;
}
