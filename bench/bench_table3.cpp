/**
 * @file
 * Reproduces Table 3: end-to-end Plonky2 proving time on the CPU
 * baseline, the (modeled) GPU baseline, and simulated UniZK, with
 * speedups over the CPU.
 *
 * The CPU column is measured single-threaded and divided by the
 * paper's observed 10x multithreading gain (Table 1 vs Table 3 in the
 * paper; see EXPERIMENTS.md). Paper reference: GPU 1.2-4.6x, UniZK
 * 61-147x (97x average).
 */

#include <cmath>

#include "bench_util.h"
#include "model/gpu_model.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig cfg = opt.plonky2Config();
    const HardwareConfig hw = opt.paperHw();

    // With a real thread count (> 1) the CPU baseline is measured
    // directly; single-threaded runs fall back to the paper's modeled
    // parallel-scaling factor so magnitudes stay comparable.
    const bool measured_mt = opt.threads > 1;
    const double cpu_scale = measured_mt ? 1.0 : cpuParallelSpeedup;

    std::printf("=== Table 3: Plonky2 proving time, CPU vs GPU vs UniZK "
                "===\n");
    std::printf("paper: GPU speedup 1.2-4.6x; UniZK speedup 61-147x "
                "(avg 97x)\n");
    if (measured_mt)
        std::printf("(CPU column: measured with %u threads)\n\n",
                    opt.threads);
    else
        std::printf("(CPU column: measured 1-thread / %.0fx parallel "
                    "scaling)\n\n",
                    cpuParallelSpeedup);
    printRow({"Application", "CPU (s)", "GPU (s)", "GPU spdup",
              "UniZK (s)", "UniZK spdup"});

    double gpu_geo = 1.0, uni_geo = 1.0;
    size_t count = 0;
    ObsArtifacts artifacts(opt);
    for (const AppId app : evaluationApps()) {
        const WorkloadParams p = defaultParams(app, opt.scale);
        const size_t reps =
            opt.repsOverride ? opt.repsOverride : p.repetitions;
        const AppRunResult r = runPlonky2App(app, p.rows, reps, cfg, hw,
                                             /*verify_proof=*/false);
        artifacts.addRun(r, "plonky2", opt.threads);
        const double cpu = r.cpuSeconds / cpu_scale;
        // The GPU model's per-class speedups are relative to the
        // parallel CPU; PCIe transfer time stays absolute.
        const GpuEstimate gpu = estimateGpuTime(
            r.cpuBreakdown.scaledBy(1.0 / cpu_scale), r.trace, {});
        const double gpu_s = gpu.totalSeconds;
        const double uni_s = r.sim.seconds();
        const double gpu_spd = cpu / gpu_s;
        const double uni_spd = cpu / uni_s;
        printRow({r.app, fmt(cpu), fmt(gpu_s), fmtX(gpu_spd),
                  fmt(uni_s, 4), fmtX(uni_spd, 0)});
        gpu_geo *= gpu_spd;
        uni_geo *= uni_spd;
        ++count;
    }
    std::printf("\naverage (geomean) speedups: GPU %.1fx, UniZK %.0fx\n",
                std::pow(gpu_geo, 1.0 / static_cast<double>(count)),
                std::pow(uni_geo, 1.0 / static_cast<double>(count)));
    artifacts.write(hw);
    return 0;
}
