/**
 * @file
 * Reproduces Table 1: single-thread CPU Plonky2 proof-generation time
 * breakdown by kernel class for the six applications, plus the
 * multi-threaded proving time at the configured thread count
 * (--threads / UNIZK_THREADS, default: all cores).
 *
 * Paper reference values (percent of proving time, single thread):
 *   Merkle tree ~57-69%, NTT ~16-22%, polynomial ~11-25%,
 *   other hash ~0-0.3%, layout transform ~2-4.6%.
 */

#include "bench_util.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig cfg = opt.plonky2Config();
    const HardwareConfig hw = opt.paperHw();
    const unsigned nt = opt.threads;

    std::printf("=== Table 1: Plonky2 CPU proof-generation time "
                "breakdown ===\n");
    std::printf("paper (1 thread): Merkle ~57-69%%, NTT ~16-22%%, poly "
                "~11-25%%, other hash <0.5%%, layout ~2-4.6%%\n");
    std::printf("percentages from the 1-thread run; %uT column uses "
                "%u thread(s)\n\n",
                nt, nt);
    char nt_header[32];
    std::snprintf(nt_header, sizeof(nt_header), "%uT (s)", nt);
    printRow({"Application", "1T (s)", nt_header, "Scaling",
              "Polynomial", "NTT", "MerkleTree", "OtherHash", "Layout"});

    ObsArtifacts artifacts(opt);
    for (const AppId app : evaluationApps()) {
        const WorkloadParams p = defaultParams(app, opt.scale);
        const size_t reps =
            opt.repsOverride ? opt.repsOverride : p.repetitions;

        setGlobalThreadCount(1);
        const AppRunResult one = runPlonky2App(app, p.rows, reps, cfg,
                                               hw,
                                               /*verify_proof=*/false);
        artifacts.addRun(one, "plonky2", 1);
        // Re-prove at the configured thread count unless it is also 1.
        double nt_seconds = one.cpuBreakdown.total();
        if (nt > 1) {
            setGlobalThreadCount(nt);
            const AppRunResult multi = runPlonky2App(
                app, p.rows, reps, cfg, hw, /*verify_proof=*/false);
            nt_seconds = multi.cpuBreakdown.total();
            artifacts.addRun(multi, "plonky2", nt);
        }

        const auto &b = one.cpuBreakdown;
        printRow({one.app, fmt(b.total(), 2), fmt(nt_seconds, 2),
                  fmtX(b.total() / nt_seconds),
                  fmtPct(b.fraction(KernelClass::Polynomial)),
                  fmtPct(b.fraction(KernelClass::Ntt)),
                  fmtPct(b.fraction(KernelClass::MerkleTree)),
                  fmtPct(b.fraction(KernelClass::OtherHash)),
                  fmtPct(b.fraction(KernelClass::LayoutTransform))});
    }
    setGlobalThreadCount(nt);
    artifacts.write(hw);
    return 0;
}
