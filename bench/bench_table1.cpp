/**
 * @file
 * Reproduces Table 1: single-thread CPU Plonky2 proof-generation time
 * breakdown by kernel class for the six applications.
 *
 * Paper reference values (percent of proving time):
 *   Merkle tree ~57-69%, NTT ~16-22%, polynomial ~11-25%,
 *   other hash ~0-0.3%, layout transform ~2-4.6%.
 */

#include "bench_util.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig cfg = opt.plonky2Config();
    const HardwareConfig hw = HardwareConfig::paperDefault();

    std::printf("=== Table 1: Plonky2 CPU proof-generation time "
                "breakdown (single thread) ===\n");
    std::printf("paper: Merkle ~57-69%%, NTT ~16-22%%, poly ~11-25%%, "
                "other hash <0.5%%, layout ~2-4.6%%\n\n");
    printRow({"Application", "Time (s)", "Polynomial", "NTT",
              "MerkleTree", "OtherHash", "Layout"});

    for (const AppId app : evaluationApps()) {
        const WorkloadParams p = defaultParams(app, opt.scale);
        const size_t reps =
            opt.repsOverride ? opt.repsOverride : p.repetitions;
        const AppRunResult r = runPlonky2App(app, p.rows, reps, cfg, hw,
                                             /*verify_proof=*/false);
        const auto &b = r.cpuBreakdown;
        printRow({r.app, fmt(b.total(), 2),
                  fmtPct(b.fraction(KernelClass::Polynomial)),
                  fmtPct(b.fraction(KernelClass::Ntt)),
                  fmtPct(b.fraction(KernelClass::MerkleTree)),
                  fmtPct(b.fraction(KernelClass::OtherHash)),
                  fmtPct(b.fraction(KernelClass::LayoutTransform))});
    }
    return 0;
}
