/**
 * @file
 * Ablation study of UniZK's architectural design choices (DESIGN.md's
 * per-experiment index; not a table in the paper, but each choice is
 * argued in Sections 4-5):
 *
 *  - reverse inter-PE links (enable the 12x3 partial-round mapping),
 *  - the global transpose buffer (hide layout transforms),
 *  - the 2x6-PE NTT pipeline split (two dimensions per trip),
 *  - the grouped partial-product schedule (break Eq. 2's serial chain).
 *
 * Each row disables exactly one feature and reports the end-to-end
 * slowdown plus the most affected kernel class.
 */

#include "bench_util.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

namespace {

void
ablationRow(const KernelTrace &trace, const SimReport &base,
            const char *name, const HardwareConfig &hw)
{
    const SimReport r = simulateTrace(trace, hw);
    const double slowdown = static_cast<double>(r.totalCycles) /
                            static_cast<double>(base.totalCycles);
    // Find the class whose cycles grew the most.
    const char *worst = "-";
    double worst_growth = 1.0;
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        const uint64_t b = base.classStats(c).cycles;
        const uint64_t n = r.classStats(c).cycles;
        if (b == 0) {
            if (n > 0) {
                worst = kernelClassName(c);
                worst_growth = 1e9;
            }
            continue;
        }
        const double g = static_cast<double>(n) / static_cast<double>(b);
        if (g > worst_growth) {
            worst_growth = g;
            worst = kernelClassName(c);
        }
    }
    printRow({name, fmtX(slowdown, 2), worst}, 30);
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    FriConfig cfg = opt.plonky2Config();
    cfg.powBits = 8; // PoW grinding is irrelevant to the ablation

    const HardwareConfig base_hw = HardwareConfig::paperDefault();
    const WorkloadParams p = defaultParams(AppId::Factorial, opt.scale);
    const size_t reps =
        opt.repsOverride ? opt.repsOverride : p.repetitions;

    std::printf("=== Ablation: UniZK design choices (Factorial) ===\n");
    const AppRunResult run = runPlonky2App(
        AppId::Factorial, p.rows, reps, cfg, base_hw, false);
    std::printf("baseline: %zu kernels, %.3f ms simulated\n\n",
                run.trace.size(), run.sim.seconds() * 1e3);
    printRow({"Configuration", "Slowdown", "Most-affected"}, 30);
    printRow({"full design", "1.00x", "-"}, 30);

    {
        HardwareConfig hw = base_hw;
        hw.enableReverseLinks = false;
        ablationRow(run.trace, run.sim, "no reverse links", hw);
    }
    {
        HardwareConfig hw = base_hw;
        hw.enableTransposeBuffer = false;
        ablationRow(run.trace, run.sim, "no transpose buffer", hw);
    }
    {
        HardwareConfig hw = base_hw;
        hw.splitNttPipelines = false;
        ablationRow(run.trace, run.sim, "unsplit NTT pipelines", hw);
    }
    {
        HardwareConfig hw = base_hw;
        hw.groupedPartialProducts = false;
        ablationRow(run.trace, run.sim, "serial partial products", hw);
    }
    {
        HardwareConfig hw = base_hw;
        hw.enableReverseLinks = false;
        hw.enableTransposeBuffer = false;
        hw.splitNttPipelines = false;
        hw.groupedPartialProducts = false;
        ablationRow(run.trace, run.sim, "all features disabled", hw);
    }
    return 0;
}
