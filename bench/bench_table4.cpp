/**
 * @file
 * Reproduces Table 4: memory-bandwidth and VSA utilization of UniZK,
 * per kernel class and application.
 *
 * Paper reference: NTT mem ~47-56% / VSA ~4-5%; poly mem ~13-25% /
 * VSA ~2-9%; hash mem ~20-22% / VSA ~95-97%.
 */

#include "bench_util.h"
#include "unizk/pipeline.h"

using namespace unizk;
using namespace unizk::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessOptions(argc, argv);
    const FriConfig cfg = opt.plonky2Config();
    const HardwareConfig hw = opt.paperHw();

    std::printf("=== Table 4: memory and VSA utilization in UniZK ===\n");
    std::printf("paper: NTT 47-56%% / 4-5%%, Poly 13-25%% / 2-9%%, "
                "Hash 20-22%% / 95-97%%\n");
    std::printf("(mem util counts bus bytes moved, matching the paper's "
                "bandwidth accounting)\n\n");
    printRow({"Application", "NTT mem", "NTT VSA", "Poly mem",
              "Poly VSA", "Hash mem", "Hash VSA"});

    ObsArtifacts artifacts(opt);
    for (const AppId app : evaluationApps()) {
        const WorkloadParams p = defaultParams(app, opt.scale);
        const size_t reps =
            opt.repsOverride ? opt.repsOverride : p.repetitions;
        const AppRunResult r = runPlonky2App(app, p.rows, reps, cfg, hw,
                                             /*verify_proof=*/false);
        artifacts.addRun(r, "plonky2", opt.threads);
        // "Hash" in Table 4 covers Merkle plus other hashing; weight
        // the two classes by their cycles.
        const auto &merkle = r.sim.classStats(KernelClass::MerkleTree);
        const auto &other = r.sim.classStats(KernelClass::OtherHash);
        const uint64_t hash_cycles = merkle.cycles + other.cycles;
        const double hash_mem =
            hash_cycles == 0
                ? 0.0
                : (r.sim.memUtilization(KernelClass::MerkleTree) *
                       static_cast<double>(merkle.cycles) +
                   r.sim.memUtilization(KernelClass::OtherHash) *
                       static_cast<double>(other.cycles)) /
                      static_cast<double>(hash_cycles);
        const double hash_vsa =
            hash_cycles == 0
                ? 0.0
                : (r.sim.vsaUtilization(KernelClass::MerkleTree) *
                       static_cast<double>(merkle.cycles) +
                   r.sim.vsaUtilization(KernelClass::OtherHash) *
                       static_cast<double>(other.cycles)) /
                      static_cast<double>(hash_cycles);
        printRow({r.app, fmtPct(r.sim.memUtilization(KernelClass::Ntt)),
                  fmtPct(r.sim.vsaUtilization(KernelClass::Ntt)),
                  fmtPct(r.sim.memUtilization(KernelClass::Polynomial)),
                  fmtPct(r.sim.vsaUtilization(KernelClass::Polynomial)),
                  fmtPct(hash_mem), fmtPct(hash_vsa)});
    }
    artifacts.write(hw);
    return 0;
}
