file(REMOVE_RECURSE
  "CMakeFiles/unizk_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/unizk_pipeline.dir/pipeline.cpp.o.d"
  "libunizk_pipeline.a"
  "libunizk_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
