file(REMOVE_RECURSE
  "libunizk_pipeline.a"
)
