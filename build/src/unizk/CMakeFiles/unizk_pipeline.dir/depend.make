# Empty dependencies file for unizk_pipeline.
# This may be replaced when dependencies are built.
