# Empty dependencies file for unizk_hash.
# This may be replaced when dependencies are built.
