file(REMOVE_RECURSE
  "CMakeFiles/unizk_hash.dir/challenger.cpp.o"
  "CMakeFiles/unizk_hash.dir/challenger.cpp.o.d"
  "CMakeFiles/unizk_hash.dir/hashing.cpp.o"
  "CMakeFiles/unizk_hash.dir/hashing.cpp.o.d"
  "CMakeFiles/unizk_hash.dir/poseidon.cpp.o"
  "CMakeFiles/unizk_hash.dir/poseidon.cpp.o.d"
  "libunizk_hash.a"
  "libunizk_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
