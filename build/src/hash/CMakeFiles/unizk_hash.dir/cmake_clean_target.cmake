file(REMOVE_RECURSE
  "libunizk_hash.a"
)
