# Empty compiler generated dependencies file for unizk_workloads.
# This may be replaced when dependencies are built.
