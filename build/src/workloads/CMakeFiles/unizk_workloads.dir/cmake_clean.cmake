file(REMOVE_RECURSE
  "CMakeFiles/unizk_workloads.dir/apps.cpp.o"
  "CMakeFiles/unizk_workloads.dir/apps.cpp.o.d"
  "libunizk_workloads.a"
  "libunizk_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
