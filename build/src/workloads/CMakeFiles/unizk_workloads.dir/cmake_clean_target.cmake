file(REMOVE_RECURSE
  "libunizk_workloads.a"
)
