file(REMOVE_RECURSE
  "CMakeFiles/unizk_serialize.dir/proof_io.cpp.o"
  "CMakeFiles/unizk_serialize.dir/proof_io.cpp.o.d"
  "libunizk_serialize.a"
  "libunizk_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
