# Empty dependencies file for unizk_serialize.
# This may be replaced when dependencies are built.
