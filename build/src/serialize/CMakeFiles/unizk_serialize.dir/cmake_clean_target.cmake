file(REMOVE_RECURSE
  "libunizk_serialize.a"
)
