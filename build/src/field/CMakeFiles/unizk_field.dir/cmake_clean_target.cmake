file(REMOVE_RECURSE
  "libunizk_field.a"
)
