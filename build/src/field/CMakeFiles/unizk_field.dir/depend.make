# Empty dependencies file for unizk_field.
# This may be replaced when dependencies are built.
