file(REMOVE_RECURSE
  "CMakeFiles/unizk_field.dir/extension.cpp.o"
  "CMakeFiles/unizk_field.dir/extension.cpp.o.d"
  "CMakeFiles/unizk_field.dir/goldilocks.cpp.o"
  "CMakeFiles/unizk_field.dir/goldilocks.cpp.o.d"
  "CMakeFiles/unizk_field.dir/matrix.cpp.o"
  "CMakeFiles/unizk_field.dir/matrix.cpp.o.d"
  "libunizk_field.a"
  "libunizk_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
