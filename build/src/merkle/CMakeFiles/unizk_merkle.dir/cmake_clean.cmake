file(REMOVE_RECURSE
  "CMakeFiles/unizk_merkle.dir/merkle_tree.cpp.o"
  "CMakeFiles/unizk_merkle.dir/merkle_tree.cpp.o.d"
  "libunizk_merkle.a"
  "libunizk_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
