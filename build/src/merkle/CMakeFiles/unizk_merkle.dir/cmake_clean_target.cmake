file(REMOVE_RECURSE
  "libunizk_merkle.a"
)
