# Empty compiler generated dependencies file for unizk_merkle.
# This may be replaced when dependencies are built.
