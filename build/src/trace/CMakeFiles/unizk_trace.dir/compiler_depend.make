# Empty compiler generated dependencies file for unizk_trace.
# This may be replaced when dependencies are built.
