file(REMOVE_RECURSE
  "libunizk_trace.a"
)
