file(REMOVE_RECURSE
  "CMakeFiles/unizk_trace.dir/kernel_trace.cpp.o"
  "CMakeFiles/unizk_trace.dir/kernel_trace.cpp.o.d"
  "libunizk_trace.a"
  "libunizk_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
