# Empty compiler generated dependencies file for unizk_stark.
# This may be replaced when dependencies are built.
