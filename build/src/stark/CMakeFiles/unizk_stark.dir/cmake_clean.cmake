file(REMOVE_RECURSE
  "CMakeFiles/unizk_stark.dir/stark.cpp.o"
  "CMakeFiles/unizk_stark.dir/stark.cpp.o.d"
  "libunizk_stark.a"
  "libunizk_stark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_stark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
