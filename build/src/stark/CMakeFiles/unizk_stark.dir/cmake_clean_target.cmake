file(REMOVE_RECURSE
  "libunizk_stark.a"
)
