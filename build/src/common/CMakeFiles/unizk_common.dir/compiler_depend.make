# Empty compiler generated dependencies file for unizk_common.
# This may be replaced when dependencies are built.
