file(REMOVE_RECURSE
  "libunizk_common.a"
)
