file(REMOVE_RECURSE
  "CMakeFiles/unizk_common.dir/cli.cpp.o"
  "CMakeFiles/unizk_common.dir/cli.cpp.o.d"
  "CMakeFiles/unizk_common.dir/logging.cpp.o"
  "CMakeFiles/unizk_common.dir/logging.cpp.o.d"
  "CMakeFiles/unizk_common.dir/stats.cpp.o"
  "CMakeFiles/unizk_common.dir/stats.cpp.o.d"
  "libunizk_common.a"
  "libunizk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
