file(REMOVE_RECURSE
  "libunizk_sim.a"
)
