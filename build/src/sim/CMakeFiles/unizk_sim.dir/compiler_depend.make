# Empty compiler generated dependencies file for unizk_sim.
# This may be replaced when dependencies are built.
