file(REMOVE_RECURSE
  "CMakeFiles/unizk_sim.dir/dram.cpp.o"
  "CMakeFiles/unizk_sim.dir/dram.cpp.o.d"
  "CMakeFiles/unizk_sim.dir/mappers.cpp.o"
  "CMakeFiles/unizk_sim.dir/mappers.cpp.o.d"
  "CMakeFiles/unizk_sim.dir/simulator.cpp.o"
  "CMakeFiles/unizk_sim.dir/simulator.cpp.o.d"
  "libunizk_sim.a"
  "libunizk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
