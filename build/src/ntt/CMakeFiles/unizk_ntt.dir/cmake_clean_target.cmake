file(REMOVE_RECURSE
  "libunizk_ntt.a"
)
