# Empty dependencies file for unizk_ntt.
# This may be replaced when dependencies are built.
