file(REMOVE_RECURSE
  "CMakeFiles/unizk_ntt.dir/ntt.cpp.o"
  "CMakeFiles/unizk_ntt.dir/ntt.cpp.o.d"
  "libunizk_ntt.a"
  "libunizk_ntt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
