file(REMOVE_RECURSE
  "libunizk_poly.a"
)
