# Empty dependencies file for unizk_poly.
# This may be replaced when dependencies are built.
