file(REMOVE_RECURSE
  "CMakeFiles/unizk_poly.dir/polynomial.cpp.o"
  "CMakeFiles/unizk_poly.dir/polynomial.cpp.o.d"
  "libunizk_poly.a"
  "libunizk_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
