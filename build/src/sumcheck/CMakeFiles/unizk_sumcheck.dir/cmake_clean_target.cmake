file(REMOVE_RECURSE
  "libunizk_sumcheck.a"
)
