# Empty compiler generated dependencies file for unizk_sumcheck.
# This may be replaced when dependencies are built.
