file(REMOVE_RECURSE
  "CMakeFiles/unizk_sumcheck.dir/sumcheck.cpp.o"
  "CMakeFiles/unizk_sumcheck.dir/sumcheck.cpp.o.d"
  "libunizk_sumcheck.a"
  "libunizk_sumcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_sumcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
