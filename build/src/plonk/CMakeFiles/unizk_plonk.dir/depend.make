# Empty dependencies file for unizk_plonk.
# This may be replaced when dependencies are built.
