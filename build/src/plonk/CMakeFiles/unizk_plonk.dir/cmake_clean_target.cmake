file(REMOVE_RECURSE
  "libunizk_plonk.a"
)
