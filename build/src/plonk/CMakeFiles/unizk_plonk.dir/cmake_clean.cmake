file(REMOVE_RECURSE
  "CMakeFiles/unizk_plonk.dir/circuit.cpp.o"
  "CMakeFiles/unizk_plonk.dir/circuit.cpp.o.d"
  "CMakeFiles/unizk_plonk.dir/plonk.cpp.o"
  "CMakeFiles/unizk_plonk.dir/plonk.cpp.o.d"
  "libunizk_plonk.a"
  "libunizk_plonk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_plonk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
