# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("field")
subdirs("ntt")
subdirs("hash")
subdirs("merkle")
subdirs("poly")
subdirs("fri")
subdirs("plonk")
subdirs("stark")
subdirs("sumcheck")
subdirs("serialize")
subdirs("trace")
subdirs("sim")
subdirs("model")
subdirs("workloads")
subdirs("unizk")
