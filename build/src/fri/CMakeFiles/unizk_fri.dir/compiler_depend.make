# Empty compiler generated dependencies file for unizk_fri.
# This may be replaced when dependencies are built.
