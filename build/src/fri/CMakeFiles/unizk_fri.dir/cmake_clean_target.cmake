file(REMOVE_RECURSE
  "libunizk_fri.a"
)
