file(REMOVE_RECURSE
  "CMakeFiles/unizk_fri.dir/fri.cpp.o"
  "CMakeFiles/unizk_fri.dir/fri.cpp.o.d"
  "CMakeFiles/unizk_fri.dir/polynomial_batch.cpp.o"
  "CMakeFiles/unizk_fri.dir/polynomial_batch.cpp.o.d"
  "libunizk_fri.a"
  "libunizk_fri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_fri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
