file(REMOVE_RECURSE
  "CMakeFiles/unizk_model.dir/area_power.cpp.o"
  "CMakeFiles/unizk_model.dir/area_power.cpp.o.d"
  "CMakeFiles/unizk_model.dir/gpu_model.cpp.o"
  "CMakeFiles/unizk_model.dir/gpu_model.cpp.o.d"
  "CMakeFiles/unizk_model.dir/pipezk_model.cpp.o"
  "CMakeFiles/unizk_model.dir/pipezk_model.cpp.o.d"
  "libunizk_model.a"
  "libunizk_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unizk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
