
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/area_power.cpp" "src/model/CMakeFiles/unizk_model.dir/area_power.cpp.o" "gcc" "src/model/CMakeFiles/unizk_model.dir/area_power.cpp.o.d"
  "/root/repo/src/model/gpu_model.cpp" "src/model/CMakeFiles/unizk_model.dir/gpu_model.cpp.o" "gcc" "src/model/CMakeFiles/unizk_model.dir/gpu_model.cpp.o.d"
  "/root/repo/src/model/pipezk_model.cpp" "src/model/CMakeFiles/unizk_model.dir/pipezk_model.cpp.o" "gcc" "src/model/CMakeFiles/unizk_model.dir/pipezk_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/unizk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/unizk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/unizk_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/unizk_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/ntt/CMakeFiles/unizk_ntt.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/unizk_field.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unizk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
