# Empty dependencies file for unizk_model.
# This may be replaced when dependencies are built.
