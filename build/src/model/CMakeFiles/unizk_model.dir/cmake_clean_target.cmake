file(REMOVE_RECURSE
  "libunizk_model.a"
)
