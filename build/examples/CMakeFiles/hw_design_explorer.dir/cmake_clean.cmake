file(REMOVE_RECURSE
  "CMakeFiles/hw_design_explorer.dir/hw_design_explorer.cpp.o"
  "CMakeFiles/hw_design_explorer.dir/hw_design_explorer.cpp.o.d"
  "hw_design_explorer"
  "hw_design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
