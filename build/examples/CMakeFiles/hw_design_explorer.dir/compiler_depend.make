# Empty compiler generated dependencies file for hw_design_explorer.
# This may be replaced when dependencies are built.
