# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for zk_rollup_batch.
