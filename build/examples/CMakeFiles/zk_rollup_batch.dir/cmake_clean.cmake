file(REMOVE_RECURSE
  "CMakeFiles/zk_rollup_batch.dir/zk_rollup_batch.cpp.o"
  "CMakeFiles/zk_rollup_batch.dir/zk_rollup_batch.cpp.o.d"
  "zk_rollup_batch"
  "zk_rollup_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zk_rollup_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
