# Empty compiler generated dependencies file for zk_rollup_batch.
# This may be replaced when dependencies are built.
