# Empty dependencies file for zkml_inference.
# This may be replaced when dependencies are built.
