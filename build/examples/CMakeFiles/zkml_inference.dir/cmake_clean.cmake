file(REMOVE_RECURSE
  "CMakeFiles/zkml_inference.dir/zkml_inference.cpp.o"
  "CMakeFiles/zkml_inference.dir/zkml_inference.cpp.o.d"
  "zkml_inference"
  "zkml_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkml_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
