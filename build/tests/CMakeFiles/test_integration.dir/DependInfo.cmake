
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unizk/CMakeFiles/unizk_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/unizk_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/unizk_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/unizk_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unizk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/plonk/CMakeFiles/unizk_plonk.dir/DependInfo.cmake"
  "/root/repo/build/src/stark/CMakeFiles/unizk_stark.dir/DependInfo.cmake"
  "/root/repo/build/src/fri/CMakeFiles/unizk_fri.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/unizk_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/unizk_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/ntt/CMakeFiles/unizk_ntt.dir/DependInfo.cmake"
  "/root/repo/build/src/sumcheck/CMakeFiles/unizk_sumcheck.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/unizk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/unizk_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/unizk_field.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unizk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
