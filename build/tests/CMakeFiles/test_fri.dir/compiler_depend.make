# Empty compiler generated dependencies file for test_fri.
# This may be replaced when dependencies are built.
