# Empty dependencies file for test_sumcheck.
# This may be replaced when dependencies are built.
