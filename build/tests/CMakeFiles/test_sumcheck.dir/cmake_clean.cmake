file(REMOVE_RECURSE
  "CMakeFiles/test_sumcheck.dir/test_sumcheck.cpp.o"
  "CMakeFiles/test_sumcheck.dir/test_sumcheck.cpp.o.d"
  "test_sumcheck"
  "test_sumcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sumcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
