file(REMOVE_RECURSE
  "CMakeFiles/test_poseidon.dir/test_poseidon.cpp.o"
  "CMakeFiles/test_poseidon.dir/test_poseidon.cpp.o.d"
  "test_poseidon"
  "test_poseidon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poseidon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
