# Empty dependencies file for test_poseidon.
# This may be replaced when dependencies are built.
