file(REMOVE_RECURSE
  "CMakeFiles/bench_sumcheck.dir/bench_sumcheck.cpp.o"
  "CMakeFiles/bench_sumcheck.dir/bench_sumcheck.cpp.o.d"
  "bench_sumcheck"
  "bench_sumcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sumcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
