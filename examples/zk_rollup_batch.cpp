/**
 * @file
 * ZK-rollup style batch proving: the blockchain use case from the
 * paper's introduction. Many transaction blocks are proven cheaply
 * with Starky (blowup 2, large proofs), then a Plonky2 proof of a
 * verifier-shaped circuit compresses them into one small aggregate --
 * the Starky + Plonky2 combination of Section 2.2 and Table 5.
 *
 * Run:  ./examples/zk_rollup_batch [--blocks 4] [--rows 512]
 */

#include <cstdio>

#include "common/cli.h"
#include "unizk/pipeline.h"

using namespace unizk;

int
main(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    const size_t blocks = cli.getUint("blocks", 4);
    const size_t rows = cli.getUint("rows", 512);

    FriConfig starky_cfg = FriConfig::starky();
    starky_cfg.powBits = 8; // keep the demo snappy
    FriConfig plonky_cfg = FriConfig::plonky2();
    plonky_cfg.powBits = 8;
    const HardwareConfig hw = HardwareConfig::paperDefault();

    std::printf("proving %zu blocks with Starky (blowup %u) ...\n",
                blocks, starky_cfg.blowup());
    double base_cpu = 0.0, base_uni = 0.0;
    size_t base_bytes = 0;
    for (size_t b = 0; b < blocks; ++b) {
        const AppRunResult r =
            runStarkyApp(AppId::Sha256, rows, starky_cfg, hw);
        if (!r.verified) {
            std::printf("block %zu: verification FAILED\n", b);
            return 1;
        }
        base_cpu += r.cpuSeconds;
        base_uni += r.sim.seconds();
        base_bytes += r.proofBytes;
    }
    std::printf("  base proofs: CPU %.3f s, UniZK %.3f ms, total size "
                "%.1f kB\n",
                base_cpu, base_uni * 1e3, static_cast<double>(base_bytes) / 1024.0);

    std::printf("aggregating with a Plonky2 recursion-shaped proof "
                "...\n");
    const WorkloadParams rp = defaultParams(AppId::Recursion);
    const AppRunResult rec = runPlonky2App(
        AppId::Recursion, rp.rows, rp.repetitions, plonky_cfg, hw);
    if (!rec.verified) {
        std::printf("aggregation proof FAILED\n");
        return 1;
    }
    std::printf("  aggregate: CPU %.3f s, UniZK %.3f ms, size %.1f kB\n",
                rec.cpuSeconds, rec.sim.seconds() * 1e3,
                static_cast<double>(rec.proofBytes) / 1024.0);

    std::printf("\nrollup summary (%zu blocks):\n", blocks);
    std::printf("  CPU total:   %.3f s\n", base_cpu + rec.cpuSeconds);
    std::printf("  UniZK total: %.3f ms  (%.0fx faster)\n",
                (base_uni + rec.sim.seconds()) * 1e3,
                (base_cpu + rec.cpuSeconds) /
                    (base_uni + rec.sim.seconds()));
    std::printf("  published proof: %.1f kB (vs %.1f kB unaggregated)\n",
                static_cast<double>(rec.proofBytes) / 1024.0, static_cast<double>(base_bytes) / 1024.0);
    return 0;
}
