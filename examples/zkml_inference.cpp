/**
 * @file
 * Zero-knowledge machine learning (ZKML): proving a matrix-vector
 * multiplication inference step, the MVM workload of Section 6. Shows
 * the full pipeline -- CPU proof with the Table-1 style breakdown,
 * UniZK simulation with the Table-4 style utilizations -- on the
 * workload whose wide (~400-column) trace gives the best polynomial-
 * kernel bandwidth utilization in the paper.
 *
 * Run:  ./examples/zkml_inference [--rows 2048] [--reps 64]
 */

#include <cstdio>

#include "common/cli.h"
#include "unizk/pipeline.h"

using namespace unizk;

int
main(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    const size_t rows = cli.getUint("rows", 2048);
    const size_t reps = cli.getUint("reps", 64);

    FriConfig cfg = FriConfig::plonky2();
    cfg.powBits = 8;
    const HardwareConfig hw = HardwareConfig::paperDefault();

    std::printf("proving MVM inference: %zu rows x %zu repetitions "
                "(%zu wire columns)\n",
                rows, reps, 3 * reps);
    const AppRunResult r = runPlonky2App(AppId::Mvm, rows, reps, cfg, hw);
    if (!r.verified) {
        std::printf("verification FAILED\n");
        return 1;
    }

    std::printf("\nCPU proving: %.3f s, breakdown:\n", r.cpuSeconds);
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        std::printf("  %-16s %5.1f%%\n", kernelClassName(c),
                    r.cpuBreakdown.fraction(c) * 100.0);
    }

    std::printf("\nUniZK simulation:\n%s", formatReport(r.sim).c_str());
    std::printf("\nproof size: %.1f kB; UniZK speedup vs this thread: "
                "%.0fx\n",
                static_cast<double>(r.proofBytes) / 1024.0, r.speedupVsCpu());
    return 0;
}
