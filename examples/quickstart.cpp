/**
 * @file
 * Quickstart: the paper's running example (Figure 1).
 *
 * A prover knows private values (x0, x1, x2, x3) such that
 * (x0 + x1) * (x2 * x3) = 99, and wants to convince a verifier without
 * revealing them. This example builds the circuit, generates a Plonk
 * proof with FRI commitments, verifies it, and then simulates the same
 * proof generation on the UniZK accelerator.
 *
 * Run:  ./examples/quickstart
 */

#include <cstdio>

#include "sim/simulator.h"
#include "unizk/pipeline.h"

using namespace unizk;

int
main()
{
    // ---- 1. Arithmetize the statement (Fig. 1 left). ----
    CircuitBuilder builder;
    const Var x0 = builder.input();
    const Var x1 = builder.input();
    const Var x2 = builder.input();
    const Var x3 = builder.input();
    const Var sum = builder.add(x0, x1);       // x4 = x0 + x1
    const Var prod = builder.mul(x2, x3);      // x5 = x2 * x3
    const Var out = builder.mul(sum, prod);    // x6 = x4 * x5
    builder.assertConstant(out, Fp(99));       // output must be 99
    const Circuit circuit = builder.build(/*min_rows=*/16);
    std::printf("circuit: %zu rows, %zu gates\n", circuit.rows(),
                builder.gateCount());

    // ---- 2. Prove knowledge of a witness: (1 + 2) * (3 * 11) = 99. --
    const FriConfig cfg = FriConfig::plonky2();
    TraceRecorder recorder;
    KernelTimeBreakdown breakdown;
    ProverContext ctx;
    ctx.recorder = &recorder;
    ctx.breakdown = &breakdown;

    const PlonkProvingKey key = plonkSetup(circuit, cfg, ctx);
    const Stopwatch watch;
    const PlonkProof proof = plonkProve(
        circuit, key, {{Fp(1), Fp(2), Fp(3), Fp(11)}}, cfg, ctx);
    std::printf("proved in %.3f s; proof size %.1f kB\n",
                watch.elapsedSeconds(), static_cast<double>(proof.byteSize()) / 1024.0);

    // ---- 3. Verify. ----
    const bool ok = plonkVerify(key.constants->cap(), proof, cfg);
    std::printf("verification: %s\n", ok ? "ACCEPT" : "REJECT");
    if (!ok)
        return 1;

    // ---- 4. Replay the recorded kernel trace on UniZK. ----
    const SimReport report =
        simulateTrace(recorder.trace(), HardwareConfig::paperDefault());
    std::printf("\nUniZK simulation (%zu kernels):\n%s",
                recorder.trace().size(), formatReport(report).c_str());
    return 0;
}
