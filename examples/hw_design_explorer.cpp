/**
 * @file
 * Hardware design exploration: uses the simulator and the area/power
 * model to evaluate custom UniZK configurations on a workload --
 * the Figure 10 methodology exposed as a tool. Prints performance,
 * performance-per-watt, and performance-per-mm^2 for each candidate.
 *
 * Run:  ./examples/hw_design_explorer [--rows 1024] [--app factorial]
 */

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "model/area_power.h"
#include "unizk/pipeline.h"

using namespace unizk;

namespace {

AppId
parseApp(const std::string &name)
{
    for (const AppId app : evaluationApps())
        if (name == appName(app))
            return app;
    if (name == "factorial")
        return AppId::Factorial;
    if (name == "mvm")
        return AppId::Mvm;
    if (name == "sha256")
        return AppId::Sha256;
    return AppId::Factorial;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    const size_t rows = cli.getUint("rows", 1024);
    const AppId app = parseApp(cli.getString("app", "factorial"));

    FriConfig cfg = FriConfig::plonky2();
    cfg.powBits = 8;

    // Generate one proof to capture the kernel trace, then replay it
    // against every candidate design.
    std::printf("capturing kernel trace for %s (%zu rows)...\n",
                appName(app), rows);
    const AppRunResult base = runPlonky2App(
        app, rows, defaultParams(app).repetitions, cfg,
        HardwareConfig::paperDefault(), /*verify_proof=*/false);

    struct Candidate
    {
        const char *name;
        HardwareConfig hw;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({"paper default", HardwareConfig::paperDefault()});
    {
        HardwareConfig hw;
        hw.numVsas = 16;
        hw.scratchpadBytes = 4ull << 20;
        candidates.push_back({"small (16 VSA, 4MB)", hw});
    }
    {
        HardwareConfig hw;
        hw.numVsas = 64;
        hw.scratchpadBytes = 16ull << 20;
        candidates.push_back({"large (64 VSA, 16MB)", hw});
    }
    {
        HardwareConfig hw;
        hw.memBandwidthScale = 2.0;
        candidates.push_back({"2x bandwidth", hw});
    }

    std::printf("\n%-22s %10s %10s %10s %12s %12s\n", "design",
                "time(ms)", "mm^2", "W", "perf/W", "perf/mm^2");
    for (const Candidate &c : candidates) {
        const SimReport r = simulateTrace(base.trace, c.hw);
        const ChipCost cost = estimateChipCost(c.hw, 2);
        const double perf = 1.0 / r.seconds();
        std::printf("%-22s %10.3f %10.1f %10.1f %12.1f %12.1f\n",
                    c.name, r.seconds() * 1e3, cost.totalAreaMm2(),
                    cost.totalPowerW(), perf / cost.totalPowerW(),
                    perf / cost.totalAreaMm2());
    }
    return 0;
}
