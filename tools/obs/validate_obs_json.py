#!/usr/bin/env python3
"""Schema validator for the UniZK observability JSON artifacts.

Validates the two documents the instrumented binaries emit:

  stats   the "unizk-stats-v2" document written by --stats-json
          (unizk_cli and every bench harness): per-run CPU breakdown,
          simulator report with per-class bus/useful byte accounting,
          hardware counters (per-VSA busy/stall/idle, DRAM row-buffer
          and per-bank traffic, scratchpad pressure), the occupancy
          timeline, proof metadata, and the merged obs counters and
          histograms. "unizk-stats-v1" documents (no hwCounters /
          timeline / histograms) remain valid.
  trace   the Chrome trace_event document written by --trace-json:
          "M" process_name / thread_name metadata events, "C" counter
          samples (VSA occupancy, queue depth on sim lanes), and "X"
          complete events (CPU span lanes under pid 1, simulated
          kernel lanes under pid >= 2). Loadable in Perfetto /
          chrome://tracing.
  windows the "unizk-stats-v3" JSONL log written by unizkd
          --stats-interval / --stats-windows (one window record per
          line, appended by ProofService::statsWindow). Beyond per-line
          shape, the validator checks the *stream* invariants the
          single-rotation-stream design guarantees: sequence numbers
          strictly increase, window intervals chain (start of N+1 ==
          end of N when sequences are adjacent), and for every counter
          and histogram the deltas reconcile exactly against the
          cumulative totals (cumulative[i] == cumulative[i-1] +
          delta[i]).

The C++ emitters live in src/obs/stats_export.cpp and
src/obs/trace_export.cpp; update this validator and those together.

Usage:
    python3 tools/obs/validate_obs_json.py --kind stats FILE...
    python3 tools/obs/validate_obs_json.py --kind trace FILE...
    python3 tools/obs/validate_obs_json.py --kind windows FILE...
    python3 tools/obs/validate_obs_json.py --kind auto FILE...

Exit status is nonzero iff any file fails validation.
Stdlib-only by design; runs anywhere python3 exists.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List

KERNEL_CLASSES = (
    "Polynomial",
    "NTT",
    "MerkleTree",
    "OtherHash",
    "LayoutTransform",
)

STATS_SCHEMAS = ("unizk-stats-v1", "unizk-stats-v2")


class ValidationError(Exception):
    pass


def _fail(path: str, message: str) -> None:
    raise ValidationError(f"{path}: {message}")


def _expect(cond: bool, path: str, message: str) -> None:
    if not cond:
        _fail(path, message)


def _expect_keys(obj: Any, keys: tuple, path: str) -> None:
    _expect(isinstance(obj, dict), path, f"expected object, got {type(obj).__name__}")
    missing = [k for k in keys if k not in obj]
    _expect(not missing, path, f"missing keys: {', '.join(missing)}")


def _expect_number(obj: dict, key: str, path: str, minimum: float = 0.0) -> None:
    v = obj.get(key)
    _expect(
        isinstance(v, (int, float)) and not isinstance(v, bool),
        path,
        f"'{key}' must be a number, got {type(v).__name__}",
    )
    _expect(v >= minimum, path, f"'{key}' must be >= {minimum}, got {v}")


def _expect_fraction(obj: dict, key: str, path: str) -> None:
    _expect_number(obj, key, path)
    _expect(obj[key] <= 1.0 + 1e-9, path, f"'{key}' must be <= 1, got {obj[key]}")


# --------------------------------------------------------------------------
# Stats schema.
# --------------------------------------------------------------------------

def validate_breakdown(b: Any, path: str) -> None:
    _expect_keys(b, ("totalSeconds",) + KERNEL_CLASSES, path)
    _expect_number(b, "totalSeconds", path)
    total = sum(b[c] for c in KERNEL_CLASSES)
    _expect(
        abs(total - b["totalSeconds"]) <= max(1e-6, 1e-6 * total),
        path,
        f"class seconds sum to {total}, totalSeconds says {b['totalSeconds']}",
    )


def validate_hw_counters(hw: Any, num_vsas: int, path: str) -> None:
    _expect_keys(hw, ("vsa", "dram", "scratchpad"), path)

    vsa = hw["vsa"]
    _expect_keys(
        vsa,
        ("busyCycles", "stallCycles", "idleCycles", "totalBusy",
         "totalStall", "totalIdle"),
        f"{path}.vsa",
    )
    for key in ("busyCycles", "stallCycles", "idleCycles"):
        lanes = vsa[key]
        _expect(isinstance(lanes, list), f"{path}.vsa",
                f"'{key}' must be an array")
        _expect(
            len(lanes) == num_vsas,
            f"{path}.vsa",
            f"'{key}' has {len(lanes)} lanes, config.numVsas is "
            f"{num_vsas}",
        )
        total = vsa["total" + key[0].upper() + key[1:-6]]
        _expect(
            sum(lanes) == total,
            f"{path}.vsa",
            f"'{key}' lanes sum to {sum(lanes)}, total says {total}",
        )

    dram = hw["dram"]
    _expect_keys(dram, ("rowHits", "rowMisses", "bankConflicts",
                        "bankBytes"), f"{path}.dram")
    for key in ("rowHits", "rowMisses", "bankConflicts"):
        _expect_number(dram, key, f"{path}.dram")
    _expect(isinstance(dram["bankBytes"], list), f"{path}.dram",
            "'bankBytes' must be an array")

    sp = hw["scratchpad"]
    _expect_keys(sp, ("highWaterBytes", "evictions"),
                 f"{path}.scratchpad")
    for key in ("highWaterBytes", "evictions"):
        _expect_number(sp, key, f"{path}.scratchpad")


def validate_timeline(tl: Any, total_cycles: float, path: str) -> None:
    _expect_keys(tl, ("samplePeriodCycles", "samples"), path)
    _expect_number(tl, "samplePeriodCycles", path)
    samples = tl["samples"]
    _expect(isinstance(samples, list), path, "'samples' must be an array")
    last_cycle = -1
    for i, s in enumerate(samples):
        spath = f"{path}.samples[{i}]"
        _expect_keys(s, ("cycle", "vsasBusy", "queueDepth", "class"),
                     spath)
        for key in ("cycle", "vsasBusy", "queueDepth"):
            _expect_number(s, key, spath)
        _expect(s["class"] in KERNEL_CLASSES, spath,
                f"unknown kernel class {s['class']!r}")
        _expect(s["cycle"] > last_cycle, spath,
                "'cycle' must be strictly increasing")
        _expect(s["cycle"] < total_cycles, spath,
                f"'cycle' ({s['cycle']}) past totalCycles "
                f"({total_cycles})")
        last_cycle = s["cycle"]


def validate_sim(sim: Any, path: str, version: int) -> None:
    required = ("totalCycles", "seconds", "readRequests",
                "writeRequests", "config", "perClass")
    if version >= 2:
        required += ("hwCounters", "timeline")
    _expect_keys(sim, required, path)
    for key in ("totalCycles", "seconds", "readRequests", "writeRequests"):
        _expect_number(sim, key, path)

    cfg = sim["config"]
    _expect_keys(cfg, ("numVsas", "clockGhz", "peakMemBytesPerCycle"),
                 f"{path}.config")
    for key in ("numVsas", "clockGhz", "peakMemBytesPerCycle"):
        _expect_number(cfg, key, f"{path}.config")

    per_class = sim["perClass"]
    _expect_keys(per_class, KERNEL_CLASSES, f"{path}.perClass")
    cycle_sum = 0
    for cls in KERNEL_CLASSES:
        cpath = f"{path}.perClass.{cls}"
        stats = per_class[cls]
        _expect_keys(
            stats,
            ("cycles", "computeCycles", "memCycles", "busBytes",
             "usefulBytes", "readRequests", "writeRequests", "kernels",
             "cycleFraction", "memUtilization", "usefulFraction",
             "vsaUtilization"),
            cpath,
        )
        for key in ("cycles", "computeCycles", "memCycles", "busBytes",
                    "usefulBytes", "readRequests", "writeRequests",
                    "kernels"):
            _expect_number(stats, key, cpath)
        for key in ("cycleFraction", "memUtilization", "usefulFraction",
                    "vsaUtilization"):
            _expect_fraction(stats, key, cpath)
        # Bus bytes include granularity waste, so they bound the payload.
        _expect(
            stats["busBytes"] >= stats["usefulBytes"],
            cpath,
            f"busBytes ({stats['busBytes']}) < usefulBytes "
            f"({stats['usefulBytes']})",
        )
        cycle_sum += stats["cycles"]
    _expect(
        cycle_sum == sim["totalCycles"],
        path,
        f"per-class cycles sum to {cycle_sum}, totalCycles says "
        f"{sim['totalCycles']}",
    )

    if version >= 2:
        validate_hw_counters(sim["hwCounters"], int(cfg["numVsas"]),
                             f"{path}.hwCounters")
        validate_timeline(sim["timeline"], sim["totalCycles"],
                          f"{path}.timeline")


def validate_histograms(histograms: Any, path: str) -> None:
    _expect(isinstance(histograms, dict), path,
            "'histograms' must be an object")
    for name, h in histograms.items():
        hpath = f"{path}.histograms.{name}"
        _expect_keys(h, ("count", "sum", "min", "max", "buckets"), hpath)
        for key in ("count", "sum", "min", "max"):
            _expect_number(h, key, hpath)
        _expect(h["min"] <= h["max"], hpath,
                f"min ({h['min']}) > max ({h['max']})")
        buckets = h["buckets"]
        _expect(isinstance(buckets, list), hpath,
                "'buckets' must be an array")
        bucket_count = 0
        for i, b in enumerate(buckets):
            bpath = f"{hpath}.buckets[{i}]"
            _expect_keys(b, ("lo", "hi", "count"), bpath)
            for key in ("lo", "hi", "count"):
                _expect_number(b, key, bpath)
            _expect(b["lo"] <= b["hi"], bpath,
                    f"lo ({b['lo']}) > hi ({b['hi']})")
            _expect(b["count"] > 0, bpath,
                    "empty buckets must be omitted")
            bucket_count += b["count"]
        _expect(
            bucket_count == h["count"],
            hpath,
            f"bucket counts sum to {bucket_count}, count says "
            f"{h['count']}",
        )


def validate_span_buffers(sb: Any, path: str) -> None:
    _expect_keys(sb, ("dropped", "capPerThread", "perThread"), path)
    _expect_number(sb, "dropped", path)
    _expect_number(sb, "capPerThread", path)
    _expect(sb["capPerThread"] >= 1, path, "'capPerThread' must be >= 1")
    per_thread = sb["perThread"]
    _expect(isinstance(per_thread, list), path,
            "'perThread' must be an array")
    last_tid = -1
    for i, t in enumerate(per_thread):
        tpath = f"{path}.perThread[{i}]"
        _expect_keys(t, ("threadId", "buffered", "highWater"), tpath)
        for key in ("threadId", "buffered", "highWater"):
            _expect_number(t, key, tpath)
        _expect(t["threadId"] > last_tid, tpath,
                "'threadId' must be strictly increasing")
        _expect(t["buffered"] <= t["highWater"], tpath,
                f"buffered ({t['buffered']}) > highWater "
                f"({t['highWater']})")
        _expect(t["highWater"] <= sb["capPerThread"], tpath,
                f"highWater ({t['highWater']}) > capPerThread "
                f"({sb['capPerThread']})")
        last_tid = t["threadId"]


def validate_stats(doc: Any, path: str) -> None:
    _expect_keys(doc, ("schema", "runs", "counters"), path)
    _expect(
        doc["schema"] in STATS_SCHEMAS,
        path,
        f"schema is {doc['schema']!r}, expected one of {STATS_SCHEMAS}",
    )
    version = int(doc["schema"].rsplit("-v", 1)[1])
    if version >= 2:
        _expect_keys(doc, ("histograms",), path)
    _expect(isinstance(doc["runs"], list), path, "'runs' must be an array")
    _expect(doc["runs"], path, "'runs' must not be empty")
    for i, run in enumerate(doc["runs"]):
        rpath = f"{path}.runs[{i}]"
        _expect_keys(
            run,
            ("app", "protocol", "rows", "repetitions", "threads", "cpu",
             "proof", "sim"),
            rpath,
        )
        _expect(isinstance(run["app"], str) and run["app"], rpath,
                "'app' must be a non-empty string")
        _expect(run["protocol"] in ("plonky2", "starky"), rpath,
                f"unknown protocol {run['protocol']!r}")
        for key in ("rows", "repetitions", "threads"):
            _expect_number(run, key, rpath)
        _expect(run["threads"] >= 1, rpath, "'threads' must be >= 1")

        _expect_keys(run["cpu"], ("totalSeconds", "breakdown"),
                     f"{rpath}.cpu")
        _expect_number(run["cpu"], "totalSeconds", f"{rpath}.cpu")
        validate_breakdown(run["cpu"]["breakdown"], f"{rpath}.cpu.breakdown")

        _expect_keys(run["proof"], ("bytes", "verified"), f"{rpath}.proof")
        _expect_number(run["proof"], "bytes", f"{rpath}.proof")
        _expect(isinstance(run["proof"]["verified"], bool), f"{rpath}.proof",
                "'verified' must be a boolean")

        validate_sim(run["sim"], f"{rpath}.sim", version)

    counters = doc["counters"]
    _expect(isinstance(counters, dict), path, "'counters' must be an object")
    for name, value in counters.items():
        _expect(
            isinstance(value, int) and not isinstance(value, bool)
            and value >= 0,
            path,
            f"counter {name!r} must be a non-negative integer, got {value!r}",
        )

    if version >= 2:
        validate_histograms(doc["histograms"], path)
        # spanBuffers is newer than v2 and optional for backward
        # compatibility with archived documents.
        if "spanBuffers" in doc:
            validate_span_buffers(doc["spanBuffers"],
                                  f"{path}.spanBuffers")


# --------------------------------------------------------------------------
# Stats-window (unizk-stats-v3 JSONL) schema.
# --------------------------------------------------------------------------

def validate_window_histogram_data(h: Any, path: str) -> None:
    """One dense-side HistogramData object inside a window record."""
    _expect_keys(h, ("count", "sum", "min", "max", "buckets"), path)
    for key in ("count", "sum", "min", "max"):
        _expect_number(h, key, path)
    _expect(isinstance(h["buckets"], list), path,
            "'buckets' must be an array")
    bucket_count = 0
    for i, b in enumerate(h["buckets"]):
        bpath = f"{path}.buckets[{i}]"
        _expect_keys(b, ("lo", "hi", "count"), bpath)
        for key in ("lo", "hi", "count"):
            _expect_number(b, key, bpath)
        _expect(b["count"] > 0, bpath, "empty buckets must be omitted")
        bucket_count += b["count"]
    _expect(bucket_count == h["count"], path,
            f"bucket counts sum to {bucket_count}, count says "
            f"{h['count']}")
    if h["count"] > 0:
        _expect(h["min"] <= h["max"], path,
                f"min ({h['min']}) > max ({h['max']})")


def validate_window_record(rec: Any, path: str) -> None:
    _expect_keys(
        rec,
        ("schema", "sequence", "windowStartNs", "windowEndNs",
         "counters", "histograms", "spanBuffers"),
        path,
    )
    _expect(rec["schema"] == "unizk-stats-v3", path,
            f"schema is {rec['schema']!r}, expected 'unizk-stats-v3'")
    for key in ("sequence", "windowStartNs", "windowEndNs"):
        _expect_number(rec, key, path)
    _expect(rec["sequence"] >= 1, path, "'sequence' must be >= 1")
    _expect(rec["windowStartNs"] <= rec["windowEndNs"], path,
            "window interval is inverted")

    _expect(isinstance(rec["counters"], dict), path,
            "'counters' must be an object")
    for name, c in rec["counters"].items():
        cpath = f"{path}.counters.{name}"
        _expect_keys(c, ("delta", "cumulative"), cpath)
        for key in ("delta", "cumulative"):
            _expect_number(c, key, cpath)
        _expect(c["delta"] <= c["cumulative"], cpath,
                f"delta ({c['delta']}) > cumulative "
                f"({c['cumulative']})")

    _expect(isinstance(rec["histograms"], dict), path,
            "'histograms' must be an object")
    for name, h in rec["histograms"].items():
        hpath = f"{path}.histograms.{name}"
        _expect_keys(h, ("delta", "cumulative"), hpath)
        validate_window_histogram_data(h["delta"], f"{hpath}.delta")
        validate_window_histogram_data(h["cumulative"],
                                       f"{hpath}.cumulative")
        _expect(h["delta"]["count"] <= h["cumulative"]["count"], hpath,
                "delta count exceeds cumulative count")
        _expect(h["delta"]["sum"] <= h["cumulative"]["sum"], hpath,
                "delta sum exceeds cumulative sum")

    validate_span_buffers(rec["spanBuffers"], f"{path}.spanBuffers")


def validate_windows(lines: List[tuple], path: str) -> None:
    """Stream-level invariants over a parsed JSONL window log.

    `lines` is a list of (line_number, record) pairs.
    """
    _expect(bool(lines), path, "window log is empty")
    prev = None
    for lineno, rec in lines:
        rpath = f"{path}:{lineno}"
        validate_window_record(rec, rpath)
        if prev is not None:
            # The daemon logs every rotation (GetStats polls included),
            # so the stream is contiguous and the intervals chain --
            # which is exactly what makes the delta reconciliation
            # below an equality rather than an inequality.
            _expect(
                rec["sequence"] == prev["sequence"] + 1,
                rpath,
                f"sequence gap {prev['sequence']} -> "
                f"{rec['sequence']}: the daemon logs every rotation, "
                "so the stream must be contiguous",
            )
            _expect(
                rec["windowStartNs"] == prev["windowEndNs"],
                rpath,
                f"window start {rec['windowStartNs']} != previous "
                f"end {prev['windowEndNs']}",
            )
            for name, c in rec["counters"].items():
                before = prev["counters"].get(
                    name, {"cumulative": 0})["cumulative"]
                _expect(
                    c["cumulative"] == before + c["delta"],
                    f"{rpath}.counters.{name}",
                    f"cumulative {c['cumulative']} != previous "
                    f"{before} + delta {c['delta']}",
                )
            for name, h in rec["histograms"].items():
                before = prev["histograms"].get(name)
                before_count = (
                    before["cumulative"]["count"] if before else 0)
                before_sum = (
                    before["cumulative"]["sum"] if before else 0)
                _expect(
                    h["cumulative"]["count"]
                    == before_count + h["delta"]["count"],
                    f"{rpath}.histograms.{name}",
                    f"cumulative count {h['cumulative']['count']} != "
                    f"previous {before_count} + delta "
                    f"{h['delta']['count']}",
                )
                _expect(
                    h["cumulative"]["sum"]
                    == before_sum + h["delta"]["sum"],
                    f"{rpath}.histograms.{name}",
                    f"cumulative sum {h['cumulative']['sum']} != "
                    f"previous {before_sum} + delta "
                    f"{h['delta']['sum']}",
                )
        prev = rec


# --------------------------------------------------------------------------
# Chrome trace schema.
# --------------------------------------------------------------------------

def validate_trace(doc: Any, path: str) -> None:
    _expect_keys(doc, ("traceEvents",), path)
    events = doc["traceEvents"]
    _expect(isinstance(events, list), path, "'traceEvents' must be an array")
    _expect(events, path, "'traceEvents' must not be empty")

    named_pids = set()
    named_threads = set()
    complete_lanes = set()
    counter_pids = set()
    for i, e in enumerate(events):
        epath = f"{path}.traceEvents[{i}]"
        _expect_keys(e, ("name", "ph", "pid", "tid"), epath)
        ph = e["ph"]
        if ph == "M":
            _expect(e["name"] in ("process_name", "thread_name"), epath,
                    f"metadata event named {e['name']!r}")
            _expect_keys(e.get("args"), ("name",), f"{epath}.args")
            if e["name"] == "process_name":
                named_pids.add(e["pid"])
            else:
                named_threads.add((e["pid"], e["tid"]))
        elif ph == "C":
            _expect(e["name"] in ("vsa occupancy", "queue depth"),
                    epath, f"unknown counter series {e['name']!r}")
            _expect_number(e, "ts", epath)
            _expect_keys(e.get("args"), ("value",), f"{epath}.args")
            _expect_number(e["args"], "value", f"{epath}.args")
            counter_pids.add(e["pid"])
        elif ph == "X":
            _expect_keys(e, ("cat", "ts", "dur"), epath)
            _expect_number(e, "ts", epath)
            _expect_number(e, "dur", epath)
            complete_lanes.add((e["pid"], e["tid"]))
        else:
            _fail(epath,
                  f"unexpected phase {ph!r} (only M, C and X emitted)")
    unnamed = {pid for pid, _ in complete_lanes} - named_pids
    _expect(not unnamed, path,
            f"events on pids without process_name metadata: {sorted(unnamed)}")
    bare = complete_lanes - named_threads
    _expect(not bare, path,
            f"lanes without thread_name metadata: {sorted(bare)}")
    # Counter series only make sense on lanes that exist.
    stray = counter_pids - {pid for pid, _ in complete_lanes} - named_pids
    _expect(not stray, path,
            f"counter events on unknown pids: {sorted(stray)}")


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def detect_kind(doc: Any) -> str:
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace"
    if isinstance(doc, dict) and doc.get("schema") == "unizk-stats-v3":
        return "windows"
    return "stats"


def validate_windows_file(filename: str) -> List[str]:
    """Parse and validate one JSONL window log."""
    lines: List[tuple] = []
    try:
        with open(filename, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    lines.append((lineno, json.loads(line)))
                except json.JSONDecodeError as e:
                    return [f"{filename}:{lineno}: {e}"]
    except OSError as e:
        return [f"{filename}: {e}"]
    try:
        validate_windows(lines, filename)
    except ValidationError as e:
        return [str(e)]
    return []


def validate_file(filename: str, kind: str) -> List[str]:
    if kind == "windows":
        return validate_windows_file(filename)
    try:
        with open(filename, "r", encoding="utf-8") as f:
            if kind == "auto":
                # A window log is JSONL, not a single document; detect
                # it from the first line before attempting json.load.
                first = f.readline()
                try:
                    first_doc = json.loads(first)
                except json.JSONDecodeError:
                    first_doc = None
                if detect_kind(first_doc) == "windows":
                    return validate_windows_file(filename)
                f.seek(0)
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{filename}: {e}"]
    actual_kind = detect_kind(doc) if kind == "auto" else kind
    try:
        if actual_kind == "stats":
            validate_stats(doc, filename)
        else:
            validate_trace(doc, filename)
    except ValidationError as e:
        return [str(e)]
    return []


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="validate_obs_json",
        description="validate UniZK stats / Chrome-trace JSON artifacts",
    )
    parser.add_argument("--kind",
                        choices=("stats", "trace", "windows", "auto"),
                        default="auto",
                        help="document kind (default: detect per file)")
    parser.add_argument("files", nargs="+", help="JSON files to validate")
    args = parser.parse_args(argv)

    errors: List[str] = []
    for filename in args.files:
        errors.extend(validate_file(filename, args.kind))
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"validate_obs_json: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"validate_obs_json: {len(args.files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
