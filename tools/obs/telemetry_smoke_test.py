#!/usr/bin/env python3
"""End-to-end smoke test for the unizkd live-telemetry surface.

Drives the whole tentpole loop of the observability PR against real
binaries: a daemon exporting periodic stats windows, a traced load run,
and the GetStats/exposition scrape path, then cross-checks every
artifact with the repo's validators.

Legs:

  1. Traced load: start unizkd with --stats-interval so the exporter
     thread rotates windows while lanes are busy, run a short
     zipfian-open scenario, and validate the `unizk-load-v1` report
     (schema + breakdown). Every request must come back traced with
     queuedNs + proveNs + serializeNs <= serverNs <= clientNs and
     zero breakdown violations -- the PR's acceptance criterion.

  2. Live scrape: while the load is in flight, poll `unizk_top --once
     --prom` (GetStats served while lanes are mid-request) and validate
     every non-empty scrape against the Prometheus text format with
     validate_exposition. After the load drains, a final scrape must
     show the completed-requests counter.

  3. Window log: SIGTERM the daemon and validate the stats-window
     JSONL with validate_obs_json --kind windows: contiguous sequence
     numbers, windowStartNs chaining, and exact delta-vs-cumulative
     reconciliation per counter and histogram. The daemon's "wrote N
     stats windows" exit line must match the file's line count
     (GetStats scrapes rotate through the same sink, so the sequence
     stays gapless even with two window consumers).

Registered as the `telemetry_smoke` ctest; also run by CI's obs-schema
job. Stdlib-only by design.

Usage:
    python3 tools/obs/telemetry_smoke_test.py \\
        /path/to/unizkd /path/to/unizk_load /path/to/unizk_top
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)
sys.path.insert(0, os.path.join(_HERE, "..", "load"))

import validate_exposition  # noqa: E402
import validate_load_json  # noqa: E402
import validate_obs_json  # noqa: E402

WINDOWS_WRITTEN_RE = re.compile(r"unizkd: wrote (\d+) stats windows")


def wait_for_socket(path: str, daemon: subprocess.Popen) -> None:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if daemon.poll() is not None:
            raise SystemExit(
                f"unizkd exited early with {daemon.returncode}")
        time.sleep(0.05)
    raise SystemExit(f"unizkd never created {path}")


def scrape_prom(top: str, sock: str) -> str:
    proc = subprocess.run(
        [top, "--socket", sock, "--once", "--prom"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=60,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"unizk_top --once --prom exited with {proc.returncode}:\n"
            f"{proc.stdout}")
    return proc.stdout


def check_exposition(text: str, label: str) -> None:
    errors = validate_exposition.validate_exposition(text, label)
    if errors:
        raise SystemExit("\n".join(errors))


def traced_load_and_scrapes(load: str, top: str, sock: str,
                            workdir: str) -> str:
    """Leg 1 + 2: returns the report path for later inspection."""
    report = os.path.join(workdir, "report.json")
    requests = 10
    load_proc = subprocess.Popen(
        [load, "--socket", sock, "--scenario", "zipfian-open",
         "--seed", "1", "--requests", str(requests),
         "--connections", "2", "--rate", "20", "--report", report],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # Scrape while lanes are mid-request. Early scrapes may race the
    # first completion and carry no families yet; every non-empty one
    # must already be grammatical.
    mid_scrapes = 0
    while load_proc.poll() is None:
        text = scrape_prom(top, sock)
        if text.strip():
            check_exposition(text, "mid-load scrape")
            mid_scrapes += 1
        time.sleep(0.1)
    out, _ = load_proc.communicate(timeout=600)
    print(out, end="")
    if load_proc.returncode != 0:
        raise SystemExit(
            f"unizk_load exited with {load_proc.returncode}")

    failures = validate_load_json.validate_file(report)
    if failures:
        raise SystemExit("\n".join(failures))
    with open(report, "r", encoding="utf-8") as f:
        doc = json.load(f)
    bd = doc["results"]["breakdown"]
    if doc["results"]["ok"] != requests:
        raise SystemExit(
            f"report ok={doc['results']['ok']}, expected {requests}")
    if bd["traced"] != requests or bd["violations"] != 0:
        raise SystemExit(
            f"breakdown traced={bd['traced']} violations="
            f"{bd['violations']}, expected traced={requests} "
            "violations=0")
    for s in bd["samples"]:
        parts = s["queuedNs"] + s["proveNs"] + s["serializeNs"]
        if not parts <= s["serverNs"] <= s["clientNs"]:
            raise SystemExit(
                f"trace {s['traceId']}: decomposition "
                f"{parts} <= {s['serverNs']} <= {s['clientNs']} "
                "does not hold")
    print(f"telemetry_smoke: traced load OK "
          f"({requests} requests, {mid_scrapes} mid-load scrape(s))")

    final = scrape_prom(top, sock)
    check_exposition(final, "final scrape")
    if "unizk_service_requests_completed_total" not in final:
        raise SystemExit(
            "final scrape lacks unizk_service_requests_completed_total")
    if "unizk_service_request_latency_ns_bucket" not in final:
        raise SystemExit(
            "final scrape lacks the request-latency histogram")
    print("telemetry_smoke: exposition scrape OK")
    return report


def windows_leg(daemon: subprocess.Popen, windows_path: str) -> None:
    daemon.send_signal(signal.SIGTERM)
    try:
        out, _ = daemon.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        daemon.kill()
        raise SystemExit("unizkd did not drain after SIGTERM")
    print(out, end="")
    if daemon.returncode != 0:
        raise SystemExit(
            f"unizkd exited with {daemon.returncode} after SIGTERM")

    match = WINDOWS_WRITTEN_RE.search(out)
    if not match:
        raise SystemExit("unizkd printed no 'wrote N stats windows'")
    written = int(match.group(1))

    failures = validate_obs_json.validate_file(windows_path, "windows")
    if failures:
        raise SystemExit("\n".join(failures))
    with open(windows_path, "r", encoding="utf-8") as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if len(lines) != written:
        raise SystemExit(
            f"daemon says it wrote {written} windows, file has "
            f"{len(lines)}")
    # The exporter interval plus the shutdown flush plus the GetStats
    # scrapes must have produced at least a couple of windows.
    if written < 2:
        raise SystemExit(f"only {written} stats window(s) captured")
    # Spot-check the acceptance criterion end to end: the completed-
    # request deltas across all windows must sum to the final
    # cumulative value (the validator already checked per-record
    # reconciliation; this closes the telescope).
    delta_sum = 0
    final_cumulative = 0
    for ln in lines:
        rec = json.loads(ln)
        c = rec["counters"].get("service.requests_completed")
        if c is not None:
            delta_sum += c["delta"]
            final_cumulative = c["cumulative"]
    if delta_sum != final_cumulative:
        raise SystemExit(
            f"window deltas sum to {delta_sum}, final cumulative is "
            f"{final_cumulative}")
    print(f"telemetry_smoke: window log OK ({written} windows, "
          f"{final_cumulative} completions reconciled)")


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    unizkd, load, top = argv
    with tempfile.TemporaryDirectory() as workdir:
        sock = os.path.join(workdir, "unizkd.sock")
        windows_path = os.path.join(workdir, "windows.jsonl")
        daemon = subprocess.Popen(
            [unizkd, "--socket", sock, "--queue-capacity", "16",
             "--lanes", "2", "--threads", "2",
             "--stats-interval", "0.2",
             "--stats-windows", windows_path],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            wait_for_socket(sock, daemon)
            traced_load_and_scrapes(load, top, sock, workdir)
            windows_leg(daemon, windows_path)
        finally:
            if daemon.poll() is None:
                daemon.kill()
    print("telemetry_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
