#!/usr/bin/env python3
"""End-to-end smoke test for unizk_cli's observability artifacts.

For each protocol (plonky2 and starky) this runs the CLI twice on the
same small workload -- once bare, once with --stats-json / --trace-json
/ --folded -- then checks that:

  1. both emitted JSON documents pass validate_obs_json.py,
  2. the stats document's run matches the requested protocol and rows,
     reports a verified proof, and carries live v2 hardware counters
     (non-zero VSA busy/stall cycles, DRAM row hits and misses,
     scratchpad high-water mark, a non-empty timeline and histograms),
  3. the collapsed-stack profile is non-empty and well-formed,
  4. the serialized proof (--proof-out) is byte-identical with and
     without observability enabled (instrumentation must not perturb
     the transcript).

Registered as the `obs_cli_smoke` ctest; also run by CI's obs-schema
job. Stdlib-only by design.

Usage:
    python3 tools/obs/cli_smoke_test.py /path/to/unizk_cli
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import validate_obs_json  # noqa: E402

# Small but non-trivial: a few FRI layers, several Merkle trees, and
# (for plonky2) the permutation argument all execute.
COMMON_ARGS = ["--rows", "256", "--reps", "2", "--fast", "--threads", "2"]


def run_cli(cli: str, args: list) -> None:
    proc = subprocess.run(
        [cli] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        raise SystemExit(
            f"unizk_cli {' '.join(args)} exited with {proc.returncode}"
        )


def check_hw_counters(run: dict, protocol: str) -> None:
    """The v2 counters must be live, not just schema-valid zeros."""
    hw = run["sim"]["hwCounters"]
    checks = {
        "VSA busy cycles": hw["vsa"]["totalBusy"],
        "VSA stall cycles": hw["vsa"]["totalStall"],
        "DRAM row hits": hw["dram"]["rowHits"],
        "DRAM row misses": hw["dram"]["rowMisses"],
        "scratchpad high-water": hw["scratchpad"]["highWaterBytes"],
        "timeline samples": len(run["sim"]["timeline"]["samples"]),
    }
    zero = [name for name, value in checks.items() if value == 0]
    if zero:
        raise SystemExit(f"{protocol}: zero hw counters: {zero}")


def check_folded(folded_path: str, protocol: str) -> None:
    with open(folded_path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        raise SystemExit(f"{protocol}: empty folded profile")
    for line in lines:
        stack, _, value = line.rpartition(" ")
        if not stack or not value.isdigit():
            raise SystemExit(
                f"{protocol}: malformed folded line {line!r}")


def check_protocol(cli: str, protocol: str, workdir: str) -> None:
    stats_path = os.path.join(workdir, f"{protocol}-stats.json")
    trace_path = os.path.join(workdir, f"{protocol}-trace.json")
    folded_path = os.path.join(workdir, f"{protocol}-spans.folded")
    proof_obs = os.path.join(workdir, f"{protocol}-obs.proof")
    proof_bare = os.path.join(workdir, f"{protocol}-bare.proof")

    base = ["--protocol", protocol, "--app", "fibonacci"] + COMMON_ARGS
    run_cli(cli, base + ["--proof-out", proof_bare])
    run_cli(
        cli,
        base
        + ["--stats-json", stats_path, "--trace-json", trace_path,
           "--folded", folded_path, "--proof-out", proof_obs],
    )

    errors = validate_obs_json.validate_file(stats_path, "stats")
    errors += validate_obs_json.validate_file(trace_path, "trace")
    if errors:
        raise SystemExit("\n".join(errors))

    with open(stats_path, "r", encoding="utf-8") as f:
        stats = json.load(f)
    run = stats["runs"][0]
    if run["protocol"] != protocol:
        raise SystemExit(
            f"stats protocol is {run['protocol']!r}, expected {protocol!r}"
        )
    if run["rows"] != 256:
        raise SystemExit(f"stats rows is {run['rows']}, expected 256")
    if not run["proof"]["verified"]:
        raise SystemExit(f"{protocol}: proof did not verify")
    if not stats["counters"]:
        raise SystemExit(f"{protocol}: no obs counters recorded")
    if stats["schema"] != "unizk-stats-v2":
        raise SystemExit(
            f"{protocol}: schema is {stats['schema']!r}, expected v2")
    if not stats["histograms"]:
        raise SystemExit(f"{protocol}: no obs histograms recorded")
    check_hw_counters(run, protocol)
    check_folded(folded_path, protocol)

    with open(proof_bare, "rb") as f:
        bare = f.read()
    with open(proof_obs, "rb") as f:
        obs = f.read()
    if not bare:
        raise SystemExit(f"{protocol}: empty proof file")
    if bare != obs:
        raise SystemExit(
            f"{protocol}: proof bytes differ with observability enabled "
            f"({len(bare)} vs {len(obs)} bytes)"
        )
    print(f"{protocol}: stats+trace valid, proof byte-identical "
          f"({len(bare)} bytes)")


def main(argv) -> int:
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    cli = argv[0]
    with tempfile.TemporaryDirectory() as workdir:
        for protocol in ("plonky2", "starky"):
            check_protocol(cli, protocol, workdir)
    print("obs_cli_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
