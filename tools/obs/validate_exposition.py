#!/usr/bin/env python3
"""Validator for the Prometheus text exposition rendered by src/obs.

Checks the output of obs::renderExposition (scraped in practice via
`unizk_top --once --prom`) against the text exposition format 0.0.4:

  - every sample line belongs to a metric announced by a preceding
    `# HELP` + `# TYPE` pair, in that order, each exactly once;
  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and carry the unizk_
    prefix the renderer guarantees;
  - counters end in `_total` and their values never carry labels;
  - histograms expose `_bucket{le="..."}` series with numerically
    increasing `le` values, cumulative (non-decreasing) bucket counts,
    a final `le="+Inf"` bucket, and `_sum` / `_count` samples where
    `_count` equals the `+Inf` bucket;
  - sample values are non-negative integers (everything the obs layer
    exports is a u64 count or sum).

The C++ renderer lives in src/obs/exposition.cpp; update this
validator and the renderer together.

Usage:
    python3 tools/obs/validate_exposition.py FILE...
    python3 tools/obs/validate_exposition.py --self-test

Reads stdin when FILE is `-`. Exit status is nonzero iff any input
fails validation (or any self-test case misbehaves). Stdlib-only.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LE_LABEL_RE = re.compile(r'^le="(?P<le>[^"]+)"$')


class Metric:
    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind  # "counter" | "histogram"
        self.buckets: List[tuple] = []  # (le_value, count)
        self.saw_inf = False
        self.sum = None
        self.count = None
        self.value = None


def _le_key(le: str) -> float:
    return float("inf") if le == "+Inf" else float(le)


def validate_exposition(text: str, path: str) -> List[str]:
    errors: List[str] = []

    def err(lineno: int, message: str) -> None:
        errors.append(f"{path}:{lineno}: {message}")

    metrics = {}
    helped = {}  # name -> line where HELP appeared
    current = None  # most recently announced metric

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if len(parts) != 2 or not parts[1]:
                err(lineno, "HELP line without help text")
                continue
            name = parts[0]
            if not METRIC_NAME_RE.match(name):
                err(lineno, f"invalid metric name {name!r}")
            if name in helped:
                err(lineno, f"duplicate HELP for {name!r}")
            helped[name] = lineno
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                err(lineno, "malformed TYPE line")
                continue
            name, kind = parts
            if kind not in ("counter", "histogram"):
                err(lineno, f"unsupported type {kind!r}")
                continue
            if name not in helped:
                err(lineno, f"TYPE before HELP for {name!r}")
            if name in metrics:
                err(lineno, f"duplicate TYPE for {name!r}")
                continue
            current = Metric(name, kind)
            metrics[name] = current
            continue
        if line.startswith("#"):
            err(lineno, f"unexpected comment {line!r}")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(lineno, f"malformed sample line {line!r}")
            continue
        name, labels, value = m.group("name", "labels", "value")
        try:
            numeric = int(value)
        except ValueError:
            err(lineno, f"non-integer sample value {value!r}")
            continue
        if numeric < 0:
            err(lineno, f"negative sample value {numeric}")
            continue

        # Map the sample to its announced family.
        base = name
        suffix = None
        for s in ("_bucket", "_sum", "_count"):
            if name.endswith(s) and name[: -len(s)] in metrics:
                base = name[: -len(s)]
                suffix = s
                break
        metric = metrics.get(base)
        if metric is None:
            err(lineno, f"sample {name!r} without HELP/TYPE")
            continue
        if not base.startswith("unizk_"):
            err(lineno, f"metric {base!r} missing unizk_ prefix")
        if current is not None and base != current.name:
            err(lineno,
                f"sample {name!r} interleaved into {current.name!r}'s "
                "block")

        if metric.kind == "counter":
            if suffix is not None or labels is not None:
                err(lineno, f"counter {base!r} with labels or suffix")
                continue
            if not base.endswith("_total"):
                err(lineno, f"counter {base!r} must end in _total")
            if metric.value is not None:
                err(lineno, f"duplicate sample for counter {base!r}")
            metric.value = numeric
            continue

        # Histogram family.
        if suffix == "_bucket":
            lm = LE_LABEL_RE.match(labels or "")
            if not lm:
                err(lineno, f"bucket without an le label: {line!r}")
                continue
            le = lm.group("le")
            try:
                le_key = _le_key(le)
            except ValueError:
                err(lineno, f"unparseable le value {le!r}")
                continue
            if metric.buckets and le_key <= metric.buckets[-1][0]:
                err(lineno,
                    f"le={le!r} not greater than the previous bucket")
            if metric.buckets and numeric < metric.buckets[-1][1]:
                err(lineno,
                    f"bucket count {numeric} decreased (buckets are "
                    "cumulative)")
            if metric.saw_inf:
                err(lineno, "bucket after the +Inf bucket")
            if le == "+Inf":
                metric.saw_inf = True
            metric.buckets.append((le_key, numeric))
        elif suffix == "_sum":
            if metric.sum is not None:
                err(lineno, f"duplicate _sum for {base!r}")
            metric.sum = numeric
        elif suffix == "_count":
            if metric.count is not None:
                err(lineno, f"duplicate _count for {base!r}")
            metric.count = numeric
        else:
            err(lineno,
                f"bare sample {name!r} for histogram family {base!r}")

    for metric in metrics.values():
        where = f"{path}: metric {metric.name!r}"
        if metric.kind == "counter":
            if metric.value is None:
                errors.append(f"{where}: no sample line")
            continue
        if not metric.saw_inf:
            errors.append(f"{where}: histogram without a +Inf bucket")
        if metric.sum is None or metric.count is None:
            errors.append(f"{where}: histogram missing _sum or _count")
        elif metric.buckets and metric.count != metric.buckets[-1][1]:
            errors.append(
                f"{where}: _count ({metric.count}) != +Inf bucket "
                f"({metric.buckets[-1][1]})")
    return errors


# --------------------------------------------------------------------------
# Self-test: accepted and rejected exemplars, pinned so renderer edits
# that break the format fail here before they reach a scrape job.
# --------------------------------------------------------------------------

GOOD = """\
# HELP unizk_service_requests_completed_total obs counter "service.requests_completed".
# TYPE unizk_service_requests_completed_total counter
unizk_service_requests_completed_total 42
# HELP unizk_service_request_latency_ns obs histogram "service.request_latency_ns".
# TYPE unizk_service_request_latency_ns histogram
unizk_service_request_latency_ns_bucket{le="1023"} 3
unizk_service_request_latency_ns_bucket{le="2047"} 10
unizk_service_request_latency_ns_bucket{le="+Inf"} 12
unizk_service_request_latency_ns_sum 24000
unizk_service_request_latency_ns_count 12
"""

BAD_CASES = {
    "bad metric name charset": GOOD.replace(
        "unizk_service_requests_completed_total",
        "unizk_service_requests.completed_total"),
    "counter without _total": (
        '# HELP unizk_x obs counter "x".\n'
        "# TYPE unizk_x counter\n"
        "unizk_x 1\n"),
    "type before help": (
        "# TYPE unizk_x_total counter\n"
        '# HELP unizk_x_total obs counter "x".\n'
        "unizk_x_total 1\n"),
    "sample without help/type": "unizk_orphan_total 5\n",
    "le out of order": GOOD.replace(
        'le="1023"} 3', 'le="4095"} 3'),
    "bucket counts not cumulative": GOOD.replace(
        'le="2047"} 10', 'le="2047"} 2'),
    "missing +Inf bucket": GOOD.replace(
        'unizk_service_request_latency_ns_bucket{le="+Inf"} 12\n', ""),
    "count disagrees with +Inf": GOOD.replace(
        "unizk_service_request_latency_ns_count 12",
        "unizk_service_request_latency_ns_count 11"),
    "negative value": GOOD.replace(
        "unizk_service_requests_completed_total 42",
        "unizk_service_requests_completed_total -1"),
    "missing unizk prefix": GOOD.replace("unizk_service_requests",
                                         "service_requests"),
}


def self_test() -> int:
    failures = 0
    if validate_exposition(GOOD, "good"):
        print("self-test: GOOD exemplar rejected:", file=sys.stderr)
        for e in validate_exposition(GOOD, "good"):
            print(f"  {e}", file=sys.stderr)
        failures += 1
    for label, text in BAD_CASES.items():
        if not validate_exposition(text, label):
            print(f"self-test: case {label!r} was not rejected",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"validate_exposition self-test: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print(f"validate_exposition self-test: 1 good + {len(BAD_CASES)} "
          "bad case(s) OK")
    return 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="validate_exposition",
        description="validate Prometheus text exposition from unizk",
    )
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in accept/reject exemplars")
    parser.add_argument("files", nargs="*",
                        help="exposition files to validate (- = stdin)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("provide FILE... or --self-test")

    errors: List[str] = []
    for filename in args.files:
        try:
            if filename == "-":
                text = sys.stdin.read()
            else:
                with open(filename, "r", encoding="utf-8") as f:
                    text = f.read()
        except OSError as e:
            errors.append(f"{filename}: {e}")
            continue
        if not text.strip():
            errors.append(f"{filename}: empty exposition")
            continue
        errors.extend(validate_exposition(text, filename))
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"validate_exposition: {len(errors)} error(s)",
              file=sys.stderr)
        return 1
    print(f"validate_exposition: {len(args.files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
