#!/usr/bin/env python3
"""Self-test for the perf-regression comparator: a synthetic slowdown
must be flagged, and noise inside the tolerance band must not be.
Runs without any build tree (pure comparator logic)."""

import copy
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from run_benchmarks import SCHEMA, compare  # noqa: E402


def make_doc():
    return {
        "schema": SCHEMA,
        "revision": "test",
        "metrics": {
            "ntt.speedup_1t.2pow14": {"value": 4.0, "unit": "ratio"},
            "poseidon.naive_over_opt": {"value": 3.0, "unit": "ratio"},
            "micro.BM_FieldMul.real_time_ns": {
                "value": 2.5, "unit": "ns"},
        },
        "gates": {
            "ntt.speedup_1t.2pow14": {
                "value": 4.0, "direction": "higher", "tolerance": 0.45},
            "poseidon.naive_over_opt": {
                "value": 3.0, "direction": "higher", "tolerance": 0.40},
        },
    }


def expect(condition, message):
    if not condition:
        raise AssertionError(message)


def main():
    baseline = make_doc()

    # Identical run: no regression.
    expect(compare(make_doc(), baseline) == [],
           "identical documents must pass")

    # Injected synthetic slowdown: the engine got 2x slower, halving
    # the speedup ratio; well past the 45% tolerance, must be flagged.
    slow = make_doc()
    slow["gates"]["ntt.speedup_1t.2pow14"]["value"] = 2.0
    failures = compare(slow, baseline)
    expect(len(failures) == 1 and "ntt.speedup_1t.2pow14" in failures[0],
           f"synthetic slowdown not flagged: {failures}")

    # Noise inside the band: a 20% dip must pass.
    noisy = make_doc()
    noisy["gates"]["ntt.speedup_1t.2pow14"]["value"] = 3.2
    expect(compare(noisy, baseline) == [],
           "in-tolerance noise must not be flagged")

    # Improvements never fail.
    faster = make_doc()
    faster["gates"]["ntt.speedup_1t.2pow14"]["value"] = 8.0
    expect(compare(faster, baseline) == [],
           "improvement must not be flagged")

    # A gate the current run no longer reports is a failure, not a
    # silent skip.
    missing = make_doc()
    del missing["gates"]["ntt.speedup_1t.2pow14"]
    del missing["metrics"]["ntt.speedup_1t.2pow14"]
    failures = compare(missing, baseline)
    expect(any("missing" in f for f in failures),
           f"missing gate not flagged: {failures}")

    # Gates may fall back to the metrics section when a document has
    # no gates block of its own.
    gateless = make_doc()
    gateless["gates"] = {}
    expect(compare(gateless, baseline) == [],
           "metrics-section fallback must satisfy baseline gates")

    # An explicit waiver in the current document skips the gate (the
    # hardware-conditional AVX2 batch ratio on a host without AVX2)...
    waived = make_doc()
    del waived["gates"]["ntt.speedup_1t.2pow14"]
    del waived["metrics"]["ntt.speedup_1t.2pow14"]
    waived["waived"] = {
        "ntt.speedup_1t.2pow14": "synthetic waiver for the self-test"}
    expect(compare(waived, baseline) == [],
           "explicitly waived gate must not be flagged")

    # ...but a waiver for one gate must not excuse a regression (or
    # absence) in another.
    waived_and_slow = copy.deepcopy(waived)
    waived_and_slow["gates"]["poseidon.naive_over_opt"]["value"] = 1.0
    failures = compare(waived_and_slow, baseline)
    expect(len(failures) == 1 and "poseidon.naive_over_opt" in failures[0],
           f"waiver must not mask other regressions: {failures}")

    # "lower" direction (absolute-time style gates) trips on increases.
    low_base = copy.deepcopy(baseline)
    low_base["gates"] = {
        "micro.BM_FieldMul.real_time_ns": {
            "value": 2.5, "direction": "lower", "tolerance": 0.50}}
    slow_abs = make_doc()
    slow_abs["metrics"]["micro.BM_FieldMul.real_time_ns"]["value"] = 6.0
    failures = compare(slow_abs, low_base)
    expect(len(failures) == 1 and "above ceiling" in failures[0],
           f"lower-direction regression not flagged: {failures}")
    expect(compare(make_doc(), low_base) == [],
           "lower-direction in-tolerance value must pass")

    print("bench-compare self-test OK")


if __name__ == "__main__":
    main()
