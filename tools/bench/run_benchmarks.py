#!/usr/bin/env python3
"""Perf-regression harness: run the pinned benchmark set and compare
against a committed baseline.

Runs three suites from an existing build tree:

  * ``bench_ntt`` (engine vs seed scalar path) over a small sweep,
  * ``bench_poseidon`` (SIMD batch hashing vs the scalar sponge), and
  * a pinned subset of the google-benchmark ``micro_kernels``,

each N times, taking the per-metric median, and emits a
``unizk-bench-v1`` JSON document (``BENCH_<rev>.json`` by default).

Gating policy: absolute times are machine-dependent, so they are
recorded but never gated. What is gated are *same-machine speedup
ratios* (engine vs scalar NTT, optimized vs naive Poseidon): those are
stable across hosts, so a committed baseline transfers to CI. Each gate
carries its own relative tolerance, chosen generously to sit well above
run-to-run noise while still catching real regressions (an injected 2x
slowdown of one side trips every affected gate).

Usage:
  run_benchmarks.py --build-dir build --runs 3 --output BENCH.json
  run_benchmarks.py --compare tools/bench/BASELINE.json
  run_benchmarks.py --runs 5 --output tools/bench/BASELINE.json

Exit status is non-zero when --compare finds a regression. Stdlib only.
"""

import argparse
import json
import os
import statistics
import subprocess
import sys

SCHEMA = "unizk-bench-v1"

# Pinned micro_kernels subset: one representative per substrate, small
# enough to keep the harness under a minute.
MICRO_FILTER = (
    "^(BM_FieldMul|BM_PoseidonPermutation|BM_PoseidonPermutationNaive|"
    "BM_HashLeaf135|BM_NttForward/16384|BM_VecMul/16384)$"
)

# Gate definitions: metric name -> (direction, relative tolerance).
# direction "higher" means larger is better (speedup ratios).
GATES = {
    "ntt.speedup_1t.2pow14": ("higher", 0.45),
    "lde.speedup_1t.2pow14": ("higher", 0.45),
    # The naive/optimized ratio is small (~1.3) and very stable, so a
    # tighter band is needed for the gate to mean anything.
    "poseidon.naive_over_opt": ("higher", 0.20),
    # AVX2 batch permutation vs the scalar sponge loop. The issue's
    # acceptance bar is >= 1.8x on AVX2 hosts; the measured baseline
    # sits above 2x, and the tolerance keeps the floor near that bar.
    # On hosts without AVX2 the suite emits a waiver instead of the
    # metric (a scalar/scalar ratio of ~1.0 would be meaningless).
    "poseidon.batch_over_scalar": ("higher", 0.20),
}


def run(cmd, **kwargs):
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, **kwargs
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.decode(errors="replace"))
        raise RuntimeError(f"command failed: {' '.join(cmd)}")
    return proc.stdout.decode(errors="replace")


def git_revision():
    try:
        return run(["git", "rev-parse", "--short", "HEAD"]).strip()
    except Exception:
        return "unknown"


def run_ntt_bench(build_dir, runs, tmp_dir):
    """Median metrics from `runs` executions of bench_ntt."""
    exe = os.path.join(build_dir, "bench", "bench_ntt")
    samples = {}
    for i in range(runs):
        out = os.path.join(tmp_dir, f"ntt_{i}.json")
        run([exe, "--min-log", "12", "--max-log", "14", "--threads",
             "2", "--stats-json", out])
        with open(out) as f:
            doc = json.load(f)
        for row in doc["rows"]:
            key = f"{row['kernel']}.2pow{row['log_size']}"
            samples.setdefault(f"{key}.engine_1t_seconds", []).append(
                row["engine_1t_seconds"])
            samples.setdefault(f"{key}.seed_scalar_seconds", []).append(
                row["seed_scalar_seconds"])
            samples.setdefault(f"{key}.speedup_1t", []).append(
                row["speedup_1t"])
    metrics = {}
    for name, values in samples.items():
        unit = "seconds" if name.endswith("seconds") else "ratio"
        metrics[name] = {"value": statistics.median(values),
                         "unit": unit}
    # Gated aliases for the 2^14 rows.
    for kernel in ("ntt-nr", "lde"):
        src = f"{kernel}.2pow14.speedup_1t"
        if src in metrics:
            alias = ("ntt" if kernel == "ntt-nr" else "lde")
            metrics[f"{alias}.speedup_1t.2pow14"] = dict(metrics[src])
    return metrics


def run_poseidon_bench(build_dir, runs, tmp_dir):
    """Median metrics from `runs` executions of bench_poseidon.

    Returns (metrics, waivers): when the dispatched SIMD level is not
    avx2, the gated batch_over_scalar metric is omitted and a waiver
    explains why, so --compare on a non-AVX2 host reports the gate as
    waived instead of failing it.
    """
    exe = os.path.join(build_dir, "bench", "bench_poseidon")
    samples = {}
    simd = None
    for i in range(runs):
        out = os.path.join(tmp_dir, f"poseidon_{i}.json")
        run([exe, "--states", "2048", "--reps", "3",
             "--stats-json", out])
        with open(out) as f:
            doc = json.load(f)
        simd = doc["simd"]
        for row in doc["rows"]:
            key = f"poseidon.{row['kernel']}"
            samples.setdefault(f"{key}.scalar_seconds", []).append(
                row["scalar_seconds"])
            samples.setdefault(f"{key}.batch_seconds", []).append(
                row["batch_seconds"])
            samples.setdefault(f"{key}.speedup", []).append(
                row["speedup"])
    metrics = {}
    for name, values in samples.items():
        unit = "seconds" if name.endswith("seconds") else "ratio"
        metrics[name] = {"value": statistics.median(values),
                         "unit": unit}
    waivers = {}
    src = "poseidon.permute.speedup"
    if simd == "avx2" and src in metrics:
        metrics["poseidon.batch_over_scalar"] = dict(metrics[src])
    else:
        waivers["poseidon.batch_over_scalar"] = (
            f"dispatched SIMD level is '{simd}', not avx2: "
            "batch-vs-scalar gate only applies to AVX2 hosts")
    return metrics, waivers


def run_micro(build_dir, runs, tmp_dir):
    """Median real_time per pinned micro benchmark."""
    exe = os.path.join(build_dir, "bench", "micro_kernels")
    samples = {}
    for i in range(runs):
        out = os.path.join(tmp_dir, f"micro_{i}.json")
        run([exe, f"--benchmark_filter={MICRO_FILTER}",
             "--benchmark_format=json", f"--benchmark_out={out}",
             "--benchmark_out_format=json"])
        with open(out) as f:
            doc = json.load(f)
        for b in doc["benchmarks"]:
            if b.get("run_type", "iteration") != "iteration":
                continue
            samples.setdefault(b["name"], []).append(b["real_time"])
    metrics = {}
    for name, values in samples.items():
        metrics[f"micro.{name}.real_time_ns"] = {
            "value": statistics.median(values), "unit": "ns"}
    opt = metrics.get("micro.BM_PoseidonPermutation.real_time_ns")
    naive = metrics.get("micro.BM_PoseidonPermutationNaive.real_time_ns")
    if opt and naive and opt["value"] > 0:
        metrics["poseidon.naive_over_opt"] = {
            "value": naive["value"] / opt["value"], "unit": "ratio"}
    return metrics


def build_document(metrics, waivers=None):
    gates = {}
    for name, (direction, tolerance) in GATES.items():
        if name in metrics:
            gates[name] = {
                "value": metrics[name]["value"],
                "direction": direction,
                "tolerance": tolerance,
            }
    return {
        "schema": SCHEMA,
        "revision": git_revision(),
        "metrics": metrics,
        "gates": gates,
        "waived": dict(waivers or {}),
    }


def compare(current, baseline):
    """Return a list of human-readable regression messages (empty =
    pass). Every gate in the baseline must be present and within its
    tolerance in the current document, unless the current document
    carries an explicit waiver for it (e.g. a hardware-conditional gate
    like the AVX2 batch ratio on a host without AVX2) -- waivers are
    printed, never silently swallowed."""
    failures = []
    for name, gate in baseline.get("gates", {}).items():
        waiver = current.get("waived", {}).get(name)
        if waiver is not None:
            print(f"  waived {name}: {waiver}")
            continue
        cur = current.get("gates", {}).get(name)
        if cur is None:
            cur = current.get("metrics", {}).get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_value = gate["value"]
        cur_value = cur["value"]
        tol = gate.get("tolerance", 0.25)
        if gate.get("direction", "higher") == "higher":
            floor = base_value * (1.0 - tol)
            if cur_value < floor:
                failures.append(
                    f"{name}: {cur_value:.4g} below floor {floor:.4g} "
                    f"(baseline {base_value:.4g}, tolerance {tol:.0%})")
        else:
            ceiling = base_value * (1.0 + tol)
            if cur_value > ceiling:
                failures.append(
                    f"{name}: {cur_value:.4g} above ceiling "
                    f"{ceiling:.4g} (baseline {base_value:.4g}, "
                    f"tolerance {tol:.0%})")
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--runs", type=int, default=3,
                    help="repeat each suite N times; medians are kept")
    ap.add_argument("--output", default=None,
                    help="result path (default BENCH_<rev>.json)")
    ap.add_argument("--compare", default=None, metavar="BASELINE",
                    help="fail (exit 1) on regression vs this baseline")
    ap.add_argument("--skip-micro", action="store_true",
                    help="skip the google-benchmark subset")
    args = ap.parse_args(argv)

    tmp_dir = os.path.join(args.build_dir, "bench-harness")
    os.makedirs(tmp_dir, exist_ok=True)

    metrics = {}
    metrics.update(run_ntt_bench(args.build_dir, args.runs, tmp_dir))
    poseidon_metrics, waivers = run_poseidon_bench(
        args.build_dir, args.runs, tmp_dir)
    metrics.update(poseidon_metrics)
    if not args.skip_micro:
        metrics.update(run_micro(args.build_dir, args.runs, tmp_dir))
    doc = build_document(metrics, waivers)

    output = args.output or f"BENCH_{doc['revision']}.json"
    with open(output, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {output} ({len(metrics)} metrics, "
          f"{len(doc['gates'])} gated)")

    if args.compare:
        with open(args.compare) as f:
            baseline = json.load(f)
        failures = compare(doc, baseline)
        if failures:
            print("PERF REGRESSION:")
            for msg in failures:
                print(f"  {msg}")
            return 1
        print(f"perf gates OK vs {args.compare} "
              f"(baseline rev {baseline.get('revision', '?')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
