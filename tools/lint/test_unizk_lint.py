#!/usr/bin/env python3
"""Self-test for unizk_lint: every rule has fixture snippets that must
trigger and snippets that must not, plus suppression-syntax coverage.

Run directly (python3 tools/lint/test_unizk_lint.py) or via ctest
(registered as `lint_selftest`).
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import unizk_lint  # noqa: E402


class LintHarness(unittest.TestCase):
    """Writes a snippet to a synthetic repo-relative path and lints it."""

    def lint(self, relpath, source):
        with tempfile.TemporaryDirectory() as root:
            path = os.path.join(root, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(source)
            return unizk_lint.lint_file(path, root)

    def assert_rules(self, relpath, source, expected_rules):
        findings = self.lint(relpath, source)
        self.assertEqual(
            sorted({f.rule for f in findings}),
            sorted(set(expected_rules)),
            msg="findings were: "
            + "; ".join(f.render() for f in findings),
        )

    def assert_clean(self, relpath, source):
        self.assert_rules(relpath, source, [])


class TestFpRawArith(LintHarness):
    def test_modulo_on_value_triggers(self):
        self.assert_rules(
            "src/fri/query.cpp",
            "size_t idx = c.challenge().value() % domain;\n",
            ["fp-raw-arith"],
        )

    def test_shift_on_value_triggers(self):
        self.assert_rules(
            "src/hash/pow.cpp",
            "uint64_t hi = h.value() >> (64 - bits);\n",
            ["fp-raw-arith"],
        )

    def test_add_into_value_triggers(self):
        self.assert_rules(
            "tests/test_x.cpp",
            "uint64_t s = base + x.value();\n",
            ["fp-raw-arith"],
        )

    def test_allowed_inside_field_dir(self):
        self.assert_clean(
            "src/field/goldilocks_extra.cpp",
            "uint64_t s = a.value() + b.value();\n",
        )

    def test_comparison_is_fine(self):
        self.assert_clean(
            "src/serialize/bytes2.h",
            "if (v.value() == 0 || v.value() < bound) {}\n",
        )

    def test_passing_value_as_argument_is_fine(self):
        self.assert_clean(
            "src/serialize/bytes2.h",
            "w.putU64(v.value());\n",
        )

    def test_arith_inside_comment_is_fine(self):
        self.assert_clean(
            "src/fri/query.cpp",
            "// idx = c.challenge().value() % domain\nint x = 0;\n",
        )


class TestNondetContainer(LintHarness):
    def test_unordered_map_in_prover_path_triggers(self):
        self.assert_rules(
            "src/plonk/cache.cpp",
            "std::unordered_map<uint64_t, int> memo;\n",
            ["nondet-container"],
        )

    def test_unordered_set_in_merkle_triggers(self):
        self.assert_rules(
            "src/merkle/dedup.h",
            "std::unordered_set<uint64_t> seen;\n",
            ["nondet-container"],
        )

    def test_rand_in_fri_triggers(self):
        self.assert_rules(
            "src/fri/sample.cpp",
            "int r = rand() % 16;\n",
            ["nondet-container", "fp-raw-arith"][:1],
        )

    def test_mt19937_in_stark_triggers(self):
        self.assert_rules(
            "src/stark/noise.cpp",
            "std::mt19937_64 gen(seed);\n",
            ["nondet-container"],
        )

    def test_random_device_in_hash_triggers(self):
        self.assert_rules(
            "src/hash/seed.cpp",
            "std::random_device rd;\n",
            ["nondet-container"],
        )

    def test_unordered_map_outside_prover_path_is_fine(self):
        self.assert_clean(
            "src/sim/table.cpp",
            "std::unordered_map<uint64_t, int> memo;\n",
        )

    def test_deterministic_rng_is_fine(self):
        self.assert_clean(
            "src/fri/sample.cpp",
            "SplitMix64 rng(42);\nFp x = randomFp(rng);\n",
        )

    def test_randomFp_name_not_confused_with_rand(self):
        self.assert_clean(
            "src/merkle/leaves.cpp",
            "auto v = randomFp(rng);\n",
        )


class TestAssertSideEffect(LintHarness):
    def test_increment_triggers(self):
        self.assert_rules(
            "src/ntt/check.cpp",
            "unizk_assert(++count < limit, \"overflow\");\n",
            ["assert-side-effect"],
        )

    def test_assignment_triggers(self):
        self.assert_rules(
            "src/common/check.cpp",
            "assert(x = compute());\n",
            ["assert-side-effect"],
        )

    def test_compound_assignment_triggers(self):
        self.assert_rules(
            "src/common/check.cpp",
            "unizk_assert((total += n) < cap, \"cap\");\n",
            ["assert-side-effect"],
        )

    def test_multiline_assert_with_side_effect_triggers(self):
        self.assert_rules(
            "src/common/check.cpp",
            "unizk_assert(\n    consume(it++),\n    \"msg\");\n",
            ["assert-side-effect"],
        )

    def test_comparisons_are_fine(self):
        self.assert_clean(
            "src/ntt/check.cpp",
            'unizk_assert(a == b && c != d && e <= f && g >= h, "ok");\n',
        )

    def test_pure_call_is_fine(self):
        self.assert_clean(
            "src/ntt/check.cpp",
            'unizk_assert(isPowerOfTwo(n), "power of two");\n',
        )

    def test_message_text_cannot_trigger(self):
        self.assert_clean(
            "src/ntt/check.cpp",
            'unizk_assert(ok, "x = 1, then ++ it");\n',
        )


class TestUnguardedShift(LintHarness):
    def test_int_one_shift_by_variable_triggers(self):
        self.assert_rules(
            "src/sim/addr.cpp",
            "size_t n = 1 << log_n;\n",
            ["unguarded-shift"],
        )

    def test_unsigned_one_shift_by_variable_triggers(self):
        self.assert_rules(
            "src/fri/fold.cpp",
            "uint32_t b = 1u << blowupBits;\n",
            ["unguarded-shift"],
        )

    def test_shift_by_call_triggers(self):
        self.assert_rules(
            "src/sim/addr.cpp",
            "auto n = 2 << dims.front();\n",
            ["unguarded-shift"],
        )

    def test_literal_shift_amount_is_fine(self):
        self.assert_clean(
            "src/sim/addr.cpp",
            "size_t mb = 1 << 20;\n",
        )

    def test_ull_suffix_is_fine(self):
        self.assert_clean(
            "src/sim/addr.cpp",
            "uint64_t n = 1ULL << log_n;\n",
        )

    def test_brace_init_base_is_fine(self):
        self.assert_clean(
            "src/sim/addr.cpp",
            "const size_t n1 = size_t{1} << log_n_max;\n"
            "const uint64_t n2 = uint64_t{1} << log_size;\n",
        )

    def test_stream_output_not_confused(self):
        self.assert_clean(
            "src/sim/report.cpp",
            'oss << cycles << " cycles";\n',
        )


class TestNttCoreOutside(LintHarness):
    def test_w_len_chain_in_prover_path_triggers(self):
        self.assert_rules(
            "src/fri/fold.cpp",
            "Fp w_len = Fp::primitiveRootOfUnity(log2Exact(n));\n"
            "for (size_t j = 0; j < half; ++j) { w *= w_len; }\n",
            ["ntt-core-outside"],
        )

    def test_core_call_outside_ntt_triggers(self):
        self.assert_rules(
            "src/poly/fast_eval.cpp",
            "difTabled(a.data(), n, tw, 1);\n",
            ["ntt-core-outside"],
        )

    def test_butterfly_call_in_tests_triggers(self):
        self.assert_rules(
            "tests/test_custom.cpp",
            "ditButterfly(lo[j], hi[j], tw[j]);\n",
            ["ntt-core-outside"],
        )

    def test_allowed_inside_ntt_dir(self):
        self.assert_clean(
            "src/ntt/ntt_extra.cpp",
            "Fp w_len = forwardRoot(n);\n"
            "difTabled(a.data(), n, tw, 1);\n",
        )

    def test_entry_point_calls_are_fine(self):
        self.assert_clean(
            "src/fri/fri_extra.cpp",
            "nttNR(values);\n"
            "auto lde = lowDegreeExtension(coeffs, blowup, shift);\n",
        )

    def test_word_containing_w_len_is_fine(self):
        self.assert_clean(
            "src/plonk/gates.cpp",
            "size_t row_length = table.row_len();\n",
        )


class TestFloatInCore(LintHarness):
    def test_double_in_field_triggers(self):
        self.assert_rules(
            "src/field/approx.cpp",
            "double ratio = 0.5;\n",
            ["float-in-core"],
        )

    def test_float_in_ntt_triggers(self):
        self.assert_rules(
            "src/ntt/tuning.h",
            "float factor = 1.5f;\n",
            ["float-in-core"],
        )

    def test_double_in_hash_triggers(self):
        self.assert_rules(
            "src/hash/stats.cpp",
            "long double precise = 0.0L;\n",
            ["float-in-core"],
        )

    def test_double_outside_core_is_fine(self):
        self.assert_clean(
            "src/model/energy.cpp",
            "double joules = cycles * watts;\n",
        )

    def test_doubled_identifier_is_fine(self):
        self.assert_clean(
            "src/field/goldilocks2.h",
            "Fp doubled() const { return *this + *this; }\n"
            "Fp y = x.doubled();\n",
        )


class TestRawChrono(LintHarness):
    def test_steady_clock_in_plonk_triggers(self):
        self.assert_rules(
            "src/plonk/timing.cpp",
            "auto t0 = std::chrono::steady_clock::now();\n",
            ["raw-chrono"],
        )

    def test_chrono_include_in_ntt_triggers(self):
        self.assert_rules(
            "src/ntt/bench_helper.h",
            "#include <chrono>\n",
            ["raw-chrono"],
        )

    def test_high_resolution_clock_in_fri_triggers(self):
        self.assert_rules(
            "src/fri/prof.cpp",
            "using clk = high_resolution_clock;\n",
            ["raw-chrono"],
        )

    def test_chrono_in_cli_pipeline_triggers(self):
        self.assert_rules(
            "src/unizk/profile.cpp",
            "std::chrono::milliseconds budget(100);\n",
            ["raw-chrono"],
        )

    def test_chrono_in_stats_layer_is_fine(self):
        self.assert_clean(
            "src/common/stats2.h",
            "#include <chrono>\n"
            "auto t = std::chrono::steady_clock::now();\n",
        )

    def test_chrono_in_obs_is_fine(self):
        self.assert_clean(
            "src/obs/clock.cpp",
            "auto t = std::chrono::steady_clock::now();\n",
        )

    def test_sanctioned_timers_are_fine(self):
        self.assert_clean(
            "src/plonk/timing.cpp",
            "Stopwatch sw;\n"
            "ScopedKernelTimer timer(breakdown, KernelClass::Ntt);\n",
        )

    def test_chrono_in_comment_is_fine(self):
        self.assert_clean(
            "src/fri/doc.cpp",
            "// used to use std::chrono here\nint x = 0;\n",
        )


class TestRawSyncPrimitive(LintHarness):
    def test_std_mutex_member_triggers(self):
        self.assert_rules(
            "src/service/pool.h",
            "class P { std::mutex mu_; };\n",
            ["raw-sync-primitive"],
        )

    def test_condition_variable_triggers(self):
        self.assert_rules(
            "src/common/worker.cpp",
            "std::condition_variable cv;\n",
            ["raw-sync-primitive"],
        )

    def test_lock_guard_triggers(self):
        self.assert_rules(
            "src/obs/reg.cpp",
            "std::lock_guard<std::mutex> lock(mu);\n",
            ["raw-sync-primitive"],
        )

    def test_unique_lock_in_tests_triggers(self):
        self.assert_rules(
            "tests/test_x.cpp",
            "std::unique_lock<std::mutex> lock(mu);\n",
            ["raw-sync-primitive"],
        )

    def test_mutex_include_triggers(self):
        self.assert_rules(
            "src/ntt/cache.cpp",
            "#include <mutex>\n",
            ["raw-sync-primitive"],
        )

    def test_allowed_inside_sync_header(self):
        self.assert_clean(
            "src/common/sync.h",
            "#include <mutex>\n#include <condition_variable>\n"
            "std::mutex mu_;\nstd::condition_variable cv_;\n",
        )

    def test_wrappers_are_fine(self):
        self.assert_clean(
            "src/service/pool.h",
            "Mutex mu_ UNIZK_GUARDED_BY(mu_);\nCondVar cv_;\n"
            "MutexLock lock(mu_);\n"
            "ReleasableMutexLock rlock(mu_);\n",
        )

    def test_atomics_and_threads_are_fine(self):
        self.assert_clean(
            "src/service/pool.h",
            "#include <atomic>\n#include <thread>\n"
            "std::atomic<bool> stop{false};\nstd::thread worker;\n",
        )

    def test_mention_in_comment_is_fine(self):
        self.assert_clean(
            "src/service/pool.h",
            "// previously used a std::mutex here\nint x = 0;\n",
        )

    def test_same_line_suppression(self):
        self.assert_clean(
            "src/service/legacy.h",
            "std::mutex mu_;  "
            "// unizk-lint: disable=raw-sync-primitive\n",
        )


class TestRawSimdIntrinsic(LintHarness):
    def test_mm256_call_outside_simd_layer_triggers(self):
        self.assert_rules(
            "src/ntt/butterfly.cpp",
            "__m256i s = _mm256_add_epi64(a, b);\n",
            ["raw-simd-intrinsic"],
        )

    def test_mm_prefix_without_width_triggers(self):
        self.assert_rules(
            "src/merkle/fast.cpp",
            "auto x = _mm_shuffle_epi8(v, mask);\n",
            ["raw-simd-intrinsic"],
        )

    def test_vector_type_triggers(self):
        self.assert_rules(
            "src/poly/eval.h",
            "struct Lane { __m512d v; };\n",
            # __m512d also trips float-in-core? no: poly not in scope;
            # the d suffix is matched by the [id]? group.
            ["raw-simd-intrinsic"],
        )

    def test_immintrin_include_triggers(self):
        self.assert_rules(
            "tests/test_x.cpp",
            "#include <immintrin.h>\n",
            ["raw-simd-intrinsic"],
        )

    def test_allowed_in_goldilocks_simd_header(self):
        self.assert_clean(
            "src/hash/goldilocks_simd.h",
            "__m256i v;\n",
        )

    def test_allowed_in_avx2_backend_tu(self):
        # The exclude is a path *prefix*, so the separate -mavx2 TU is
        # covered too.
        self.assert_clean(
            "src/hash/goldilocks_simd_avx2.cpp",
            "#include <immintrin.h>\n"
            "__m256i s = _mm256_mul_epu32(a, b);\n",
        )

    def test_batch_template_without_intrinsics_is_fine(self):
        self.assert_clean(
            "src/hash/poseidon_batch.h",
            "template <typename V> void f(V &x) { x = V::add(x, x); }\n",
        )

    def test_mention_in_comment_is_fine(self):
        self.assert_clean(
            "src/ntt/butterfly.cpp",
            "// could use _mm256_add_epi64 here one day\nint x = 0;\n",
        )


class TestUnguardedMutexMember(LintHarness):
    GUARDED = (
        "class Q {\n"
        "    Mutex mutex_;\n"
        "    int depth_ UNIZK_GUARDED_BY(mutex_) = 0;\n"
        "};\n"
    )

    def test_unguarded_member_triggers(self):
        self.assert_rules(
            "src/service/queue.h",
            "class Q {\n    Mutex mutex_;\n    int depth_ = 0;\n};\n",
            ["unguarded-mutex-member"],
        )

    def test_unizk_qualified_decl_triggers(self):
        self.assert_rules(
            "src/obs/reg.cpp",
            "unizk::Mutex g_mutex;\nint g_count = 0;\n",
            ["unguarded-mutex-member"],
        )

    def test_decl_with_annotation_macro_still_checked(self):
        # `Mutex a_ UNIZK_ACQUIRED_BEFORE(b_);` declares a_ without a
        # trailing ';' right after the name; it must still be found.
        self.assert_rules(
            "src/common/pool.h",
            "Mutex a_ UNIZK_ACQUIRED_BEFORE(b_);\n"
            "Mutex b_;\n"
            "int jobs_ UNIZK_GUARDED_BY(b_) = 0;\n",
            ["unguarded-mutex-member"],
        )

    def test_guarded_member_is_fine(self):
        self.assert_clean("src/service/queue.h", self.GUARDED)

    def test_pt_guarded_counts(self):
        self.assert_clean(
            "src/service/queue.h",
            "class Q {\n"
            "    Mutex mutex_;\n"
            "    Job *job_ UNIZK_PT_GUARDED_BY(mutex_) = nullptr;\n"
            "};\n",
        )

    def test_member_access_guard_expression_counts(self):
        # UNIZK_GUARDED_BY(r.mutex) guards against the Registry's own
        # mutex member (the twiddle-registry shape).
        self.assert_clean(
            "src/ntt/reg.cpp",
            "struct R {\n"
            "    Mutex mutex;\n"
            "    bool enabled UNIZK_GUARDED_BY(mutex) = true;\n"
            "};\n",
        )

    def test_mutex_reference_is_not_a_declaration(self):
        self.assert_clean(
            "src/common/sync2.h",
            "class L {\n    Mutex &mu_;\n    Mutex *pmu_;\n};\n",
        )

    def test_outside_src_is_not_checked(self):
        self.assert_clean(
            "tests/test_q.cpp",
            "Mutex m;\nint unguarded = 0;\n",
        )

    def test_next_line_suppression(self):
        self.assert_clean(
            "src/common/pool.h",
            "// ordering-only mutex (condvar handshake)\n"
            "// unizk-lint: disable-next-line=unguarded-mutex-member\n"
            "Mutex stop_mutex_;\n",
        )

    def test_suppressing_it_keeps_other_rules(self):
        findings = self.lint(
            "src/service/queue.h",
            "Mutex m_;  // unizk-lint: disable=unguarded-mutex-member\n"
            "std::mutex raw_;\n",
        )
        self.assertEqual(
            {f.rule for f in findings}, {"raw-sync-primitive"}
        )


class TestObsRegistryDirect(LintHarness):
    def test_registry_include_outside_obs_triggers(self):
        self.assert_rules(
            "src/service/exporter.cpp",
            '#include "obs/registry.h"\n',
            ["obs-registry-direct"],
        )

    def test_internal_namespace_reference_triggers(self):
        self.assert_rules(
            "src/service/exporter.cpp",
            "auto &reg = obs::internal::Registry::instance();\n",
            ["obs-registry-direct"],
        )

    def test_using_directive_then_registry_triggers(self):
        # `using namespace unizk::obs;` followed by a bare
        # internal::Registry reference must still be caught.
        self.assert_rules(
            "tests/test_stats.cpp",
            "using namespace unizk::obs;\n"
            "auto &reg = internal::Registry::instance();\n",
            ["obs-registry-direct"],
        )

    def test_block_type_reference_triggers(self):
        self.assert_rules(
            "src/unizk/dump.cpp",
            "const internal::HistoSlot *slot = lookup(name);\n",
            ["obs-registry-direct"],
        )

    def test_allowed_inside_obs_dir(self):
        self.assert_clean(
            "src/obs/stats_export2.cpp",
            '#include "obs/registry.h"\n'
            "auto &reg = internal::Registry::instance();\n",
        )

    def test_snapshot_apis_are_fine(self):
        self.assert_clean(
            "src/service/exporter.cpp",
            '#include "obs/obs.h"\n'
            "const obs::StatsSnapshot snap = obs::snapshotDelta();\n"
            "const auto counters = obs::counterSnapshot();\n"
            "const auto bufs = obs::spanBufferStats();\n",
        )

    def test_unrelated_internal_namespace_is_fine(self):
        self.assert_clean(
            "src/service/exporter.cpp",
            "int x = detail::internalHelper();\n"
            "auto r = internal::Frame{};\n",
        )

    def test_mention_in_comment_is_fine(self):
        self.assert_clean(
            "src/service/exporter.cpp",
            "// the registry (obs::internal::Registry) stays private\n"
            "int x = 0;\n",
        )


class TestSuppressions(LintHarness):
    SNIPPET = "size_t n = 1 << log_n;"

    def test_same_line_suppression(self):
        self.assert_clean(
            "src/sim/addr.cpp",
            self.SNIPPET + "  // unizk-lint: disable=unguarded-shift\n",
        )

    def test_next_line_suppression(self):
        self.assert_clean(
            "src/sim/addr.cpp",
            "// unizk-lint: disable-next-line=unguarded-shift\n"
            + self.SNIPPET
            + "\n",
        )

    def test_file_wide_suppression(self):
        self.assert_clean(
            "src/sim/addr.cpp",
            "// unizk-lint: disable-file=unguarded-shift\n"
            + self.SNIPPET
            + "\n"
            + self.SNIPPET
            + "\n",
        )

    def test_suppressing_one_rule_keeps_others(self):
        findings = self.lint(
            "src/fri/both.cpp",
            "std::unordered_map<int, int> m; size_t n = 1 << log_n; "
            "// unizk-lint: disable=unguarded-shift\n",
        )
        self.assertEqual({f.rule for f in findings}, {"nondet-container"})

    def test_unrelated_suppression_does_not_hide(self):
        self.assert_rules(
            "src/sim/addr.cpp",
            self.SNIPPET + "  // unizk-lint: disable=float-in-core\n",
            ["unguarded-shift"],
        )


class TestEngine(LintHarness):
    def test_multiline_block_comment_is_stripped(self):
        self.assert_clean(
            "src/fri/doc.cpp",
            "/* rand() in prover\n   1 << log_n\n   more */\nint x;\n",
        )

    def test_rule_names_are_unique(self):
        self.assertEqual(
            len(unizk_lint.RULES), len(unizk_lint.RULE_NAMES)
        )

    def test_every_rule_has_exactly_one_matcher(self):
        for rule in unizk_lint.RULES:
            self.assertTrue(
                (rule.pattern is None) != (rule.checker is None),
                msg=rule.name,
            )

    def test_exit_status_contract(self):
        with tempfile.TemporaryDirectory() as root:
            src_dir = os.path.join(root, "src", "sim")
            os.makedirs(src_dir)
            bad = os.path.join(src_dir, "bad.cpp")
            with open(bad, "w", encoding="utf-8") as f:
                f.write("size_t n = 1 << log_n;\n")
            status = unizk_lint.main(["--repo-root", root, bad])
            self.assertEqual(status, 1)
            with open(bad, "w", encoding="utf-8") as f:
                f.write("size_t n = size_t{1} << log_n;\n")
            status = unizk_lint.main(["--repo-root", root, bad])
            self.assertEqual(status, 0)


if __name__ == "__main__":
    unittest.main()
