#!/usr/bin/env python3
"""unizk_lint: repo-specific invariant linter for the UniZK reproduction.

Enforces correctness invariants that generic tools (clang-tidy, compiler
warnings) cannot know about, because they are properties of *this*
codebase's proof-soundness and determinism contracts:

  fp-raw-arith      Raw uint64_t arithmetic on Fp::value() results is only
                    allowed inside src/field/ — everywhere else, modular
                    reduction mistakes silently corrupt proofs instead of
                    crashing.  Use Fp operators or the helpers exported by
                    field/goldilocks.h (e.g. fpIndexBelow).
  nondet-container  Prover paths must be deterministic: no
                    std::unordered_map / std::unordered_set (iteration
                    order varies across libstdc++ versions), and no
                    rand()/srand()/std::mt19937/std::random_device
                    (SplitMix64 is the only sanctioned RNG).  Violations
                    break the byte-identical-proof guarantee.
  assert-side-effect
                    assert()/unizk_assert() conditions must be pure:
                    ++/--/assignment inside an assertion changes behaviour
                    between build types or reads as if it does.
  unguarded-shift   `1 << n` with a non-literal shift amount has type int:
                    it overflows at n >= 31 and is UB at n >= 32, long
                    before the 2-adicity limit of 32 used by NTT index
                    math.  Use uint64_t{1} << n or size_t{1} << n.
  float-in-core     No float/double in src/field, src/ntt, src/hash:
                    field arithmetic is exact; a stray floating-point
                    intermediate destroys soundness silently.
  raw-chrono        No raw std::chrono timing in prover/kernel paths:
                    all timing goes through common/stats.h (Stopwatch /
                    ScopedKernelTimer) or obs spans (UNIZK_SPAN), so
                    instrumentation stays centralized, thread-safe, and
                    can be compiled out (UNIZK_DISABLE_OBS).
  raw-simd-intrinsic
                    Raw vector intrinsics (_mm*/__m128/__m256/__m512,
                    <immintrin.h> and friends) are confined to
                    src/hash/goldilocks_simd*: everywhere else goes
                    through Poseidon::permuteBatch / the hashing.h batch
                    entry points so runtime dispatch (UNIZK_SIMD) stays
                    the only arbiter of which backend runs, and no TU
                    compiled without -mavx2 can leak AVX2 codegen.
  raw-sync-primitive
                    No bare std::mutex / std::condition_variable /
                    std::lock_guard (or friends) outside
                    src/common/sync.h: all locking goes through the
                    capability-annotated unizk::Mutex / unizk::CondVar /
                    MutexLock wrappers so Clang's thread-safety analysis
                    (-Werror=thread-safety, CI `thread-safety` job) can
                    check every locking contract at compile time.
  unguarded-mutex-member
                    Every unizk::Mutex declared as a member (or at
                    namespace scope) must guard something: at least one
                    sibling declaration in the same file must carry
                    UNIZK_GUARDED_BY(that_mutex) (or UNIZK_PT_GUARDED_BY).
                    A mutex that protects no annotated data is invisible
                    to the thread-safety analysis; if it exists purely to
                    order events (e.g. a condvar handshake), suppress
                    with a comment saying so.
  obs-registry-direct
                    obs/registry.h (the per-thread blocks, name tables
                    and window-rotation baselines) is private to
                    src/obs: no #include "obs/registry.h" and no
                    obs::internal reference anywhere else.  The window
                    sequence/baseline state is only consistent when
                    every consumer rotates through obs::snapshotDelta();
                    an exporter iterating the blocks directly observes
                    totals mid-rebaseline and breaks the
                    delta-reconciliation guarantee the stats windows
                    are validated against.  Use the snapshot APIs in
                    obs/obs.h.

Suppressions (per line, per rule):

    some_code();  // unizk-lint: disable=rule-name
    // unizk-lint: disable-next-line=rule-name,other-rule
    some_code();

File-wide (anywhere in the file):

    // unizk-lint: disable-file=rule-name

Usage:
    python3 tools/lint/unizk_lint.py [--list-rules] [paths...]

Paths may be files or directories (searched recursively for C++ sources).
Exit status is nonzero iff at least one finding is reported.

Stdlib-only by design; runs anywhere python3 exists.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import sys
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

CXX_EXTENSIONS = {".h", ".hpp", ".hh", ".inl", ".cpp", ".cc", ".cxx"}

# Directories whose contents feed the byte-identical-proof guarantee.
PROVER_PATHS = (
    "src/fri/",
    "src/plonk/",
    "src/stark/",
    "src/merkle/",
    "src/hash/",
)

# Directories where floating point is banned outright.
EXACT_ARITHMETIC_PATHS = ("src/field/", "src/ntt/", "src/hash/")

# Prover/kernel directories where ad-hoc std::chrono timing is banned;
# the sanctioned timing layers are common/stats.h and src/obs/.
TIMED_KERNEL_PATHS = PROVER_PATHS + (
    "src/ntt/",
    "src/poly/",
    "src/sumcheck/",
    "src/unizk/",
)

SUPPRESS_LINE_RE = re.compile(r"unizk-lint:\s*disable=([\w,-]+)")
SUPPRESS_NEXT_RE = re.compile(r"unizk-lint:\s*disable-next-line=([\w,-]+)")
SUPPRESS_FILE_RE = re.compile(r"unizk-lint:\s*disable-file=([\w,-]+)")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class Rule:
    """One table entry of the rule engine.

    Exactly one of `pattern` or `checker` drives the rule:
      - `pattern` rules flag every stripped source line matching the regex;
      - `checker` rules receive the whole stripped file and return
        (line_number, detail) pairs, for checks that need multi-line
        context (e.g. balanced parentheses).
    Scoping: a rule applies to a file iff the file's repo-relative path
    starts with one of `include` (empty tuple = everywhere) and with none
    of `exclude`.
    """

    name: str
    summary: str
    message: str
    pattern: Optional[re.Pattern] = None
    checker: Optional[
        Callable[[Sequence[str]], Iterable[Tuple[int, str]]]
    ] = None
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if self.include and not any(
            relpath.startswith(p) for p in self.include
        ):
            return False
        return not any(relpath.startswith(p) for p in self.exclude)


# --------------------------------------------------------------------------
# Source preprocessing: strip string/char literals and comments so rule
# regexes only ever see code. Suppression comments are extracted *before*
# comments are removed.
# --------------------------------------------------------------------------

def strip_source(lines: Sequence[str]) -> List[str]:
    """Blank out string literals, char literals, and comments.

    Replaced regions become spaces so column/line structure is preserved.
    Handles multi-line /* */ comments, escape sequences, and C++14 digit
    separators (1'000'000 is not a char literal). Quoted #include
    filenames are *kept*: they name code structure, not data, and rules
    like obs-registry-direct match on them.
    """
    out: List[str] = []
    in_block_comment = False
    include_re = re.compile(r'\s*#\s*include\s*"[^"]*"')
    for line in lines:
        res = []
        i = 0
        n = len(line)
        if not in_block_comment:
            m = include_re.match(line)
            if m:
                res.append(m.group(0))
                i = m.end()
        while i < n:
            c = line[i]
            if in_block_comment:
                if c == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block_comment = False
                    res.append("  ")
                    i += 2
                else:
                    res.append(" ")
                    i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                res.append(" " * (n - i))
                break
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block_comment = True
                res.append("  ")
                i += 2
                continue
            if c == '"' or c == "'":
                # A single quote between digits is a separator, not a
                # character literal (e.g. 1'000'000).
                if (
                    c == "'"
                    and i > 0
                    and line[i - 1].isalnum()
                ):
                    res.append(c)
                    i += 1
                    continue
                quote = c
                res.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        res.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        res.append(quote)
                        i += 1
                        break
                    res.append(" ")
                    i += 1
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


# --------------------------------------------------------------------------
# assert-side-effect: needs balanced-paren scanning across lines.
# --------------------------------------------------------------------------

ASSERT_CALL_RE = re.compile(r"(?<![\w.])(?:unizk_)?assert\s*\(")
# ++ / -- anywhere, or an assignment operator: '=' that is not part of
# ==, !=, <=, >= and not preceded by another '=' (compound assignments
# += -= *= /= %= &= |= ^= <<= >>= all end in a bare '=' preceded by an
# operator character, which we *do* want to flag).
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>])(?:[-+*/%&|^]|<<|>>)?=(?!=)"
)


def check_assert_side_effects(
    stripped: Sequence[str],
) -> Iterable[Tuple[int, str]]:
    for lineno, line in enumerate(stripped, start=1):
        for m in ASSERT_CALL_RE.finditer(line):
            # Collect the balanced-paren argument text, possibly spanning
            # a few following lines.
            depth = 0
            arg_chars: List[str] = []
            row = lineno - 1
            col = m.end() - 1  # position of '('
            scanned_rows = 0
            done = False
            while row < len(stripped) and scanned_rows < 16 and not done:
                text = stripped[row]
                start = col if row == lineno - 1 else 0
                for ch in text[start:]:
                    if ch == "(":
                        depth += 1
                    elif ch == ")":
                        depth -= 1
                        if depth == 0:
                            done = True
                            break
                    if depth >= 1:
                        arg_chars.append(ch)
                row += 1
                scanned_rows += 1
                arg_chars.append("\n")
            arg = "".join(arg_chars)
            sem = SIDE_EFFECT_RE.search(arg)
            if sem:
                yield lineno, f"offending token {sem.group(0)!r}"


# --------------------------------------------------------------------------
# unguarded-mutex-member: a unizk::Mutex declaration must be named by at
# least one UNIZK_GUARDED_BY / UNIZK_PT_GUARDED_BY annotation in the
# same file, otherwise the thread-safety analysis cannot check anything
# about it.
# --------------------------------------------------------------------------

# A plain Mutex declaration: optional mutable/static, optional unizk::,
# the declared name, then either the terminating ';' or an UNIZK_*
# annotation macro (e.g. UNIZK_ACQUIRED_BEFORE). References, pointers
# and function parameters deliberately do not match.
MUTEX_DECL_RE = re.compile(
    r"\b(?:unizk::)?Mutex\s+([A-Za-z_]\w*)\s*(?:;|UNIZK_)"
)


def check_unguarded_mutex_members(
    stripped: Sequence[str],
) -> Iterable[Tuple[int, str]]:
    text = "\n".join(stripped)
    for lineno, line in enumerate(stripped, start=1):
        for m in MUTEX_DECL_RE.finditer(line):
            name = m.group(1)
            guard_re = re.compile(
                r"UNIZK_(?:PT_)?GUARDED_BY\(\s*(?:[A-Za-z_]\w*\.)?"
                + re.escape(name)
                + r"\s*\)"
            )
            if not guard_re.search(text):
                yield lineno, f"mutex '{name}' guards no annotated member"


# --------------------------------------------------------------------------
# Rule table.
# --------------------------------------------------------------------------

RULES: Tuple[Rule, ...] = (
    Rule(
        name="fp-raw-arith",
        summary="raw arithmetic on Fp::value() outside src/field/",
        message=(
            "raw uint64_t arithmetic on an Fp::value() result; do modular "
            "math through Fp operators or field/goldilocks.h helpers "
            "(fpIndexBelow, fpHighBits) so reduction stays in src/field/"
        ),
        pattern=re.compile(
            r"\.value\(\)\s*(?:%|\+|\*|<<|>>|(?<!&)&(?!&)|(?<!\|)\|(?!\|)"
            r"|\^|-(?!>))"
            r"|(?:%|\+|\*|<<|>>|(?<!&)&(?!&)|(?<!\|)\|(?!\|)|\^|-)=?\s*"
            r"[A-Za-z_][\w:.\[\]]*\.value\(\)"
        ),
        exclude=("src/field/",),
    ),
    Rule(
        name="nondet-container",
        summary="nondeterminism sources in prover paths",
        message=(
            "nondeterministic container or RNG in a prover path; iteration "
            "order / seeding would break the byte-identical-proof "
            "guarantee. Use std::map/std::set/sorted vectors and the "
            "deterministic SplitMix64 from common/rng.h"
        ),
        pattern=re.compile(
            r"\bstd::unordered_(?:map|set|multimap|multiset)\b"
            r"|\bstd::(?:mt19937(?:_64)?|minstd_rand0?|random_device)\b"
            r"|(?<![\w:])s?rand\s*\("
        ),
        include=PROVER_PATHS,
    ),
    Rule(
        name="assert-side-effect",
        summary="assert()/unizk_assert() with side effects",
        message=(
            "assertion condition contains a side effect (++/--/assignment); "
            "assertions must be pure so behaviour cannot depend on them"
        ),
        checker=check_assert_side_effects,
    ),
    Rule(
        name="unguarded-shift",
        summary="int-typed literal shifted by a variable",
        message=(
            "integer literal of type int/unsigned shifted by a non-literal "
            "amount; this is UB once the amount reaches 32 (NTT/bit-reverse "
            "index math reaches 32+). Write uint64_t{1} << n or 1ULL << n"
        ),
        pattern=re.compile(
            r"(?<![\w.}\)])\d+[uU]?\s*<<\s*[A-Za-z_(]"
        ),
    ),
    Rule(
        name="ntt-core-outside",
        summary="hand-rolled NTT butterfly core outside src/ntt/",
        message=(
            "inline NTT butterfly core (difTabled/ditTabled call or a "
            "sequential `w_len` twiddle chain) outside src/ntt/; per-call "
            "root recomputation forfeits the twiddle cache and the "
            "pool-parallel decomposition. Call the src/ntt/ntt.h entry "
            "points (nttNR, inttNN, lowDegreeExtension, the batch API) "
            "instead"
        ),
        pattern=re.compile(
            r"\b(?:difTabled|ditTabled|difButterfly|ditButterfly)\s*\("
            r"|\bw_len\b"
        ),
        exclude=("src/ntt/",),
    ),
    Rule(
        name="float-in-core",
        summary="float/double in exact-arithmetic directories",
        message=(
            "float/double in src/field, src/ntt or src/hash; these layers "
            "are exact modular arithmetic and floating point silently "
            "destroys soundness"
        ),
        pattern=re.compile(r"\b(?:float|double|long\s+double)\b"),
        include=EXACT_ARITHMETIC_PATHS,
    ),
    Rule(
        name="raw-chrono",
        summary="raw std::chrono timing in prover/kernel paths",
        message=(
            "raw std::chrono timing in a prover/kernel path; time through "
            "Stopwatch/ScopedKernelTimer (common/stats.h) or obs spans "
            "(UNIZK_SPAN from obs/obs.h) so timing stays centralized, "
            "thread-safe, and compilable-out"
        ),
        pattern=re.compile(
            r"\bstd::chrono\b"
            r"|\b(?:steady|system|high_resolution)_clock\b"
            r"|#\s*include\s*<chrono>"
        ),
        include=TIMED_KERNEL_PATHS,
    ),
    Rule(
        name="raw-simd-intrinsic",
        summary="raw vector intrinsics outside src/hash/goldilocks_simd*",
        message=(
            "raw vector intrinsic outside src/hash/goldilocks_simd*; go "
            "through Poseidon::permuteBatch or the hashing.h batch entry "
            "points so UNIZK_SIMD runtime dispatch stays the only "
            "arbiter of the executed backend (and no TU built without "
            "-mavx2 can emit AVX2 instructions)"
        ),
        pattern=re.compile(
            r"\b_mm(?:\d+)?_\w+\s*\("
            r"|\b__m(?:64|128|256|512)[id]?\b"
            r"|#\s*include\s*<(?:immintrin|emmintrin|smmintrin"
            r"|tmmintrin|nmmintrin|wmmintrin|xmmintrin|pmmintrin"
            r"|avx\w*intrin|x86intrin)\.h>"
        ),
        exclude=("src/hash/goldilocks_simd",),
    ),
    Rule(
        name="raw-sync-primitive",
        summary="bare std sync primitive outside src/common/sync.h",
        message=(
            "bare std synchronization primitive; use the "
            "capability-annotated wrappers from common/sync.h "
            "(unizk::Mutex, unizk::CondVar, MutexLock, "
            "ReleasableMutexLock) so -Werror=thread-safety can check "
            "the locking contract at compile time"
        ),
        pattern=re.compile(
            r"\bstd::(?:mutex|recursive_mutex|timed_mutex"
            r"|recursive_timed_mutex|shared_mutex|shared_timed_mutex"
            r"|condition_variable(?:_any)?|lock_guard|unique_lock"
            r"|scoped_lock|shared_lock)\b"
            r"|#\s*include\s*<(?:mutex|condition_variable"
            r"|shared_mutex)>"
        ),
        exclude=("src/common/sync.h",),
    ),
    Rule(
        name="unguarded-mutex-member",
        summary="unizk::Mutex with no UNIZK_GUARDED_BY member",
        message=(
            "this unizk::Mutex guards no annotated data: no sibling "
            "declaration carries UNIZK_GUARDED_BY on it, so the "
            "thread-safety analysis cannot check anything it protects. "
            "Annotate the protected members, or suppress with a "
            "comment explaining what the mutex orders instead"
        ),
        checker=check_unguarded_mutex_members,
        include=("src/",),
    ),
    Rule(
        name="obs-registry-direct",
        summary="direct obs registry access outside src/obs/",
        message=(
            "direct access to the obs registry internals outside "
            "src/obs; the window-rotation baselines are only "
            "consistent under obs::snapshotDelta(), so iterate "
            "snapshots (counterSnapshot, histogramSnapshot, "
            "snapshotDelta, spanBufferStats) from obs/obs.h instead "
            "of the blocks themselves"
        ),
        pattern=re.compile(
            r"#\s*include\s*\"obs/registry\.h\""
            r"|\bobs::internal\b"
            r"|\binternal::(?:Registry|SpanBuffer|CounterBlock"
            r"|HistoBlock|HistoSlot)\b"
        ),
        exclude=("src/obs/",),
    ),
)

RULE_NAMES = {r.name for r in RULES}


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def parse_suppressions(
    raw_lines: Sequence[str],
) -> Tuple[dict, set]:
    """Return ({line_number: set(rule_names)}, file_wide_rule_names)."""
    per_line: dict = {}
    file_wide: set = set()
    for lineno, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_FILE_RE.search(line)
        if m:
            file_wide.update(m.group(1).split(","))
        m = SUPPRESS_LINE_RE.search(line)
        if m:
            per_line.setdefault(lineno, set()).update(m.group(1).split(","))
        m = SUPPRESS_NEXT_RE.search(line)
        if m:
            per_line.setdefault(lineno + 1, set()).update(
                m.group(1).split(",")
            )
    return per_line, file_wide


def repo_relative(path: str, repo_root: str) -> str:
    ap = os.path.abspath(path)
    rel = os.path.relpath(ap, repo_root)
    return rel.replace(os.sep, "/")


def lint_file(path: str, repo_root: str) -> List[Finding]:
    relpath = repo_relative(path, repo_root)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
    except OSError as e:
        return [Finding(relpath, 0, "io-error", str(e))]

    per_line_supp, file_supp = parse_suppressions(raw)
    stripped = strip_source(raw)

    findings: List[Finding] = []

    def suppressed(rule_name: str, lineno: int) -> bool:
        if rule_name in file_supp:
            return True
        return rule_name in per_line_supp.get(lineno, set())

    for rule in RULES:
        if not rule.applies_to(relpath):
            continue
        if rule.pattern is not None:
            for lineno, line in enumerate(stripped, start=1):
                if rule.pattern.search(line) and not suppressed(
                    rule.name, lineno
                ):
                    findings.append(
                        Finding(relpath, lineno, rule.name, rule.message)
                    )
        if rule.checker is not None:
            for lineno, detail in rule.checker(stripped):
                if not suppressed(rule.name, lineno):
                    findings.append(
                        Finding(
                            relpath,
                            lineno,
                            rule.name,
                            f"{rule.message} ({detail})",
                        )
                    )
    return findings


def collect_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if not d.startswith(".") and not d.startswith("build")
                )
                for name in sorted(names):
                    if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                        files.append(os.path.join(root, name))
        else:
            print(f"unizk_lint: no such path: {p}", file=sys.stderr)
    return files


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="unizk_lint",
        description="repo-specific invariant linter (see module docstring)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "bench", "tests", "examples"],
        help="files or directories to lint (default: src bench tests "
        "examples)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--repo-root",
        default=None,
        help="repository root used for rule path scoping (default: "
        "two directories above this script)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            scope = (
                ", ".join(rule.include) if rule.include else "all files"
            )
            if rule.exclude:
                scope += f" (except {', '.join(rule.exclude)})"
            print(f"{rule.name:20s} {rule.summary}  [{scope}]")
        return 0

    repo_root = args.repo_root or os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    )

    files = collect_files(args.paths)
    if not files:
        print("unizk_lint: no C++ sources found", file=sys.stderr)
        return 2

    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path, repo_root))

    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"unizk_lint: {len(findings)} finding(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
