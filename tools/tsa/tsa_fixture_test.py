#!/usr/bin/env python3
"""Thread-safety-analysis fixture harness.

Compiles each fixture under tools/tsa/fixtures/ with Clang's
-Wthread-safety promoted to an error and asserts the expected verdict:

  * good.cpp        -- every locking shape the real subsystems use;
                       must be accepted with zero diagnostics.
  * bad_*.cpp       -- one concurrency-discipline violation each
                       (unguarded access, double acquisition, missing
                       unlock); must each be REJECTED, and the
                       rejection must come from the thread-safety
                       analysis, not some unrelated error.

This is the "removing an annotation / locking out of order produces a
compile error" proof demanded by DESIGN section 6.7: the violations
live here as fixtures instead of being temporarily introduced into the
tree. Requires a clang++ (any recent version); the CI thread-safety
job runs it, and CMake registers it as a ctest when clang++ is on
PATH. Exits non-zero on any unexpected verdict.

Usage:
    tsa_fixture_test.py [--clang clang++] [--repo-root PATH]
"""

import argparse
import pathlib
import shutil
import subprocess
import sys

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent / "fixtures"

TSA_FLAGS = [
    "-fsyntax-only",
    "-std=c++20",
    "-Wthread-safety",
    "-Werror=thread-safety",
]

# A rejected fixture must fail *because of the analysis*: any of these
# fragments appearing in the diagnostics proves the thread-safety
# machinery (not a stray syntax error) produced the rejection.
TSA_DIAGNOSTIC_MARKERS = (
    "-Wthread-safety",
    "thread-safety-analysis",
    "requires holding mutex",
    "is already held",
    "is still held at the end of function",
    "to be held at start of each loop",
    "while mutex",
)


def compile_fixture(clang, repo_root, fixture):
    cmd = [clang] + TSA_FLAGS + ["-I", str(repo_root / "src"),
                                 str(fixture)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang", default="clang++",
                        help="clang++ binary to use (default: clang++)")
    parser.add_argument(
        "--repo-root",
        default=str(pathlib.Path(__file__).resolve().parents[2]),
        help="repository root (for -I src)")
    args = parser.parse_args()

    if shutil.which(args.clang) is None:
        print(f"tsa_fixture_test: '{args.clang}' not found; "
              "thread-safety analysis requires Clang", file=sys.stderr)
        return 2

    repo_root = pathlib.Path(args.repo_root).resolve()
    fixtures = sorted(FIXTURE_DIR.glob("*.cpp"))
    if not fixtures:
        print(f"tsa_fixture_test: no fixtures in {FIXTURE_DIR}",
              file=sys.stderr)
        return 2

    failures = 0
    for fixture in fixtures:
        expect_fail = fixture.name.startswith("bad_")
        code, output = compile_fixture(args.clang, repo_root, fixture)
        if not expect_fail:
            if code != 0:
                failures += 1
                print(f"FAIL {fixture.name}: expected clean compile, "
                      f"got exit {code}:\n{output}")
            else:
                print(f"ok   {fixture.name}: accepted")
            continue
        if code == 0:
            failures += 1
            print(f"FAIL {fixture.name}: expected a thread-safety "
                  "error, but it compiled cleanly")
        elif not any(m in output for m in TSA_DIAGNOSTIC_MARKERS):
            failures += 1
            print(f"FAIL {fixture.name}: rejected, but not by the "
                  f"thread-safety analysis:\n{output}")
        else:
            print(f"ok   {fixture.name}: rejected by analysis")

    if failures:
        print(f"tsa_fixture_test: {failures} unexpected verdict(s)",
              file=sys.stderr)
        return 1
    print(f"tsa_fixture_test: {len(fixtures)} fixture(s) behaved as "
          "expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
