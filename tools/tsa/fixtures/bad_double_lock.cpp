/**
 * @file
 * Negative thread-safety-analysis fixture: acquires the same mutex
 * twice (a guaranteed self-deadlock with std::mutex -- the lock-order
 * bug class in its simplest form; cross-mutex inversion checking via
 * ACQUIRED_BEFORE is gated behind -Wthread-safety-beta, so the fixture
 * pins the non-beta diagnostics). Both shapes must FAIL to compile
 * under -Werror=thread-safety: a direct re-acquisition ("acquiring
 * mutex 'mutex_' that is already held") and a call into a helper
 * annotated UNIZK_EXCLUDES while the mutex is held ("cannot call
 * function 'inner' while mutex 'mutex_' is held").
 */

#include "common/sync.h"

class Widget
{
  public:
    void
    doubleAcquire()
    {
        unizk::MutexLock first(mutex_);
        unizk::MutexLock again(mutex_); // BAD: mutex_ already held
        ++calls_;
    }

    void
    outer()
    {
        unizk::MutexLock lock(mutex_);
        inner(); // BAD: inner() excludes mutex_ -> self-deadlock
    }

    void
    inner() UNIZK_EXCLUDES(mutex_)
    {
        unizk::MutexLock lock(mutex_);
        ++calls_;
    }

  private:
    unizk::Mutex mutex_;
    int calls_ UNIZK_GUARDED_BY(mutex_) = 0;
};

int
main()
{
    Widget w;
    w.doubleAcquire();
    w.outer();
    return 0;
}
