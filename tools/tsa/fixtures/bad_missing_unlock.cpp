/**
 * @file
 * Negative thread-safety-analysis fixture: a manual lock() with a
 * return path that never unlocks, and a loop whose lock state differs
 * between iterations. This is the failure mode the balanced
 * lock/unlock restructure of ThreadPool::workerLoop guards against.
 * Must FAIL to compile under -Werror=thread-safety (expected
 * diagnostics: "mutex 'mutex_' is still held at the end of function" /
 * "expecting mutex 'mutex_' to be held at start of each loop").
 */

#include "common/sync.h"

class Pump
{
  public:
    void
    drainOnce()
    {
        mutex_.lock();
        if (items_ == 0)
            return; // BAD: returns with mutex_ held
        --items_;
        mutex_.unlock();
    }

    void
    drainAll()
    {
        for (int i = 0; i < 4; ++i) {
            mutex_.lock();
            --items_;
            // BAD: no unlock before the loop joins back -- lock state
            // differs between the first and second iteration.
        }
    }

  private:
    unizk::Mutex mutex_;
    int items_ UNIZK_GUARDED_BY(mutex_) = 0;
};

int
main()
{
    Pump p;
    p.drainOnce();
    p.drainAll();
    return 0;
}
