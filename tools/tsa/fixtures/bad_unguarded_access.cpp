/**
 * @file
 * Negative thread-safety-analysis fixture: reads and writes a
 * UNIZK_GUARDED_BY member without holding its mutex. Equivalent to
 * deleting the MutexLock from JobQueue::depth() -- exactly the
 * regression the CI thread-safety job exists to catch. Must FAIL to
 * compile under -Werror=thread-safety (expected diagnostic:
 * -Wthread-safety-analysis "requires holding mutex 'mutex_'").
 */

#include <cstdint>

#include "common/sync.h"

class Counter
{
  public:
    void
    bump()
    {
        ++value_; // BAD: write without holding mutex_
    }

    uint64_t
    read() const
    {
        return value_; // BAD: read without holding mutex_
    }

  private:
    mutable unizk::Mutex mutex_;
    uint64_t value_ UNIZK_GUARDED_BY(mutex_) = 0;
};

int
main()
{
    Counter c;
    c.bump();
    return static_cast<int>(c.read());
}
