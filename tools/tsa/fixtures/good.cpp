/**
 * @file
 * Positive thread-safety-analysis fixture: exercises every locking
 * shape used by the real subsystems (scoped locks, releasable locks,
 * condition-variable wait loops, manual balanced lock/unlock across a
 * loop, REQUIRES on helpers, GUARDED_BY through an object expression).
 * Must compile with zero diagnostics under
 *   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety.
 *
 * tsa_fixture_test.py asserts this file is accepted; the bad_*.cpp
 * siblings are each asserted to be rejected.
 */

#include <cstdint>
#include <deque>

#include "common/sync.h"

namespace {

using unizk::CondVar;
using unizk::Mutex;
using unizk::MutexLock;
using unizk::ReleasableMutexLock;

/// JobQueue shape: scoped lock + cv wait loop with an explicit
/// predicate loop (no lambda -- the analysis cannot see into one).
class Queue
{
  public:
    bool
    tryPush(int v)
    {
        MutexLock lock(mutex_);
        if (closed_)
            return false;
        items_.push_back(v);
        ready_.notifyOne();
        return true;
    }

    bool
    pop(int &out)
    {
        MutexLock lock(mutex_);
        while (!closed_ && items_.empty())
            ready_.wait(mutex_);
        if (items_.empty())
            return false;
        out = items_.front();
        items_.pop_front();
        return true;
    }

    void
    close()
    {
        MutexLock lock(mutex_);
        closed_ = true;
        ready_.notifyAll();
    }

  private:
    mutable Mutex mutex_;
    CondVar ready_;
    std::deque<int> items_ UNIZK_GUARDED_BY(mutex_);
    bool closed_ UNIZK_GUARDED_BY(mutex_) = false;
};

/// ThreadPool worker shape: manual balanced lock/unlock with the lock
/// dropped around the work and re-acquired, consistent at every loop
/// join point.
class Pool
{
  public:
    void
    workerLoop()
    {
        mutex_.lock();
        for (;;) {
            while (!shutting_down_ && pending_ == 0)
                work_ready_.wait(mutex_);
            if (shutting_down_) {
                mutex_.unlock();
                return;
            }
            --pending_;
            mutex_.unlock();
            doWork();
            mutex_.lock();
            if (pending_ == 0)
                work_done_.notifyAll();
        }
    }

    void
    submit(uint64_t n)
    {
        MutexLock lock(mutex_);
        pending_ += n;
        work_ready_.notifyAll();
        while (pending_ != 0)
            work_done_.wait(mutex_);
    }

  private:
    void doWork() {}

    Mutex mutex_;
    CondVar work_ready_;
    CondVar work_done_;
    uint64_t pending_ UNIZK_GUARDED_BY(mutex_) = 0;
    bool shutting_down_ UNIZK_GUARDED_BY(mutex_) = false;
};

/// Twiddle-registry shape: REQUIRES on a helper taking the owning
/// object, guard expressed through the object (r.mutex).
struct Registry
{
    Mutex mutex;
    bool enabled UNIZK_GUARDED_BY(mutex) = true;
    int slots UNIZK_GUARDED_BY(mutex) = 0;
};

void
refresh(Registry &r) UNIZK_REQUIRES(r.mutex)
{
    if (r.enabled)
        ++r.slots;
}

int
snapshot(Registry &r) UNIZK_EXCLUDES(r.mutex)
{
    MutexLock lock(r.mutex);
    refresh(r);
    return r.slots;
}

/// Server stats shape: bump a guarded counter, release the lock early
/// (before a slow syscall), with the release visible to the analysis.
class Stats
{
  public:
    uint64_t
    bumpThenRead()
    {
        ReleasableMutexLock lock(mutex_);
        const uint64_t seen = ++rejected_;
        lock.release();
        return seen; // "slow path" runs unlocked
    }

  private:
    Mutex mutex_;
    uint64_t rejected_ UNIZK_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Queue q;
    q.tryPush(1);
    int v = 0;
    q.pop(v);
    q.close();

    Pool p;
    p.submit(0);

    Registry r;
    (void)snapshot(r);

    Stats s;
    (void)s.bumpThenRead();
    return v;
}
