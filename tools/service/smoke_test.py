#!/usr/bin/env python3
"""End-to-end smoke test for the unizkd proving service.

Two legs:

  1. Steady state: start unizkd, drive unizk_client through a small
     mixed Plonky2/Starky workload over 4 concurrent connections with
     --check (proofs byte-compared against the in-process pipeline),
     then SIGTERM the daemon and assert a graceful drain: exit code 0,
     socket file unlinked, and a valid unizk-stats-v2 document whose
     histograms carry one service.request_latency_ns sample per
     completed request.

  2. Overload: a second daemon with --queue-capacity 0 rejects every
     request with the typed queue-full error (client reports them as
     backpressure, not failures), then shuts down cleanly via the
     protocol Shutdown frame.

Registered as the `service_smoke` ctest; also run by CI's
service-smoke job. Stdlib-only by design.

Usage:
    python3 tools/service/smoke_test.py /path/to/unizkd /path/to/unizk_client
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "obs"),
)

import validate_obs_json  # noqa: E402

SUMMARY_RE = re.compile(
    r"unizk_client: ok=(\d+) queue_full=(\d+) shutting_down=(\d+) "
    r"errors=(\d+) mismatches=(\d+)"
)


def wait_for_socket(path: str, daemon: subprocess.Popen) -> None:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if daemon.poll() is not None:
            raise SystemExit(
                f"unizkd exited early with {daemon.returncode}")
        time.sleep(0.05)
    raise SystemExit(f"unizkd never created {path}")


def run_client(client: str, args: list) -> dict:
    proc = subprocess.run(
        [client] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=600,
    )
    print(proc.stdout, end="")
    if proc.returncode != 0:
        raise SystemExit(
            f"unizk_client {' '.join(args)} exited with {proc.returncode}"
        )
    match = SUMMARY_RE.search(proc.stdout)
    if not match:
        raise SystemExit("unizk_client printed no summary line")
    keys = ("ok", "queue_full", "shutting_down", "errors", "mismatches")
    return dict(zip(keys, (int(g) for g in match.groups())))


def stop_daemon(daemon: subprocess.Popen, sock: str, how: str) -> None:
    try:
        out, _ = daemon.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        daemon.kill()
        raise SystemExit(f"unizkd did not drain after {how}")
    print(out, end="")
    if daemon.returncode != 0:
        raise SystemExit(
            f"unizkd exited with {daemon.returncode} after {how}")
    if os.path.exists(sock):
        raise SystemExit(f"unizkd leaked its socket file {sock}")


def steady_state_leg(unizkd: str, client: str, workdir: str) -> None:
    sock = os.path.join(workdir, "unizkd.sock")
    stats_path = os.path.join(workdir, "service-stats.json")
    daemon = subprocess.Popen(
        [unizkd, "--socket", sock, "--queue-capacity", "8",
         "--lanes", "2", "--threads", "2", "--stats-json", stats_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        wait_for_socket(sock, daemon)
        tally = run_client(
            client,
            ["--socket", sock, "--connections", "4", "--requests", "3",
             "--check", "--threads", "2"],
        )
        if tally["ok"] != 12 or tally["errors"] or tally["mismatches"]:
            raise SystemExit(f"steady state: bad tally {tally}")
        daemon.send_signal(signal.SIGTERM)
        stop_daemon(daemon, sock, "SIGTERM")
    finally:
        if daemon.poll() is None:
            daemon.kill()

    errors = validate_obs_json.validate_file(stats_path, "stats")
    if errors:
        raise SystemExit("\n".join(errors))
    with open(stats_path, "r", encoding="utf-8") as f:
        stats = json.load(f)
    if stats["schema"] != "unizk-stats-v2":
        raise SystemExit(f"schema is {stats['schema']!r}, expected v2")
    if len(stats["runs"]) != 12:
        raise SystemExit(f"expected 12 runs, got {len(stats['runs'])}")
    protocols = {run["protocol"] for run in stats["runs"]}
    if protocols != {"plonky2", "starky"}:
        raise SystemExit(f"expected a mixed workload, got {protocols}")
    latency = stats["histograms"].get("service.request_latency_ns")
    if not latency or latency["count"] != 12:
        raise SystemExit(
            f"bad service.request_latency_ns histogram: {latency}")
    completed = stats["counters"].get("service.requests_completed")
    if completed != 12:
        raise SystemExit(
            f"service.requests_completed is {completed}, expected 12")
    print("service_smoke: steady-state leg OK")


def overload_leg(unizkd: str, client: str, workdir: str) -> None:
    sock = os.path.join(workdir, "unizkd-overload.sock")
    daemon = subprocess.Popen(
        [unizkd, "--socket", sock, "--queue-capacity", "0",
         "--lanes", "1", "--threads", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        wait_for_socket(sock, daemon)
        tally = run_client(
            client,
            ["--socket", sock, "--connections", "4", "--requests", "2",
             "--threads", "2"],
        )
        if tally["queue_full"] != 8 or tally["ok"] or tally["errors"]:
            raise SystemExit(f"overload: bad tally {tally}")
        # Shut down over the protocol instead of a signal this time.
        run_client(
            client,
            ["--socket", sock, "--connections", "0", "--requests", "0",
             "--shutdown", "--threads", "2"],
        )
        stop_daemon(daemon, sock, "protocol shutdown")
    finally:
        if daemon.poll() is None:
            daemon.kill()
    print("service_smoke: overload leg OK")


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    unizkd, client = argv
    with tempfile.TemporaryDirectory() as workdir:
        steady_state_leg(unizkd, client, workdir)
        overload_leg(unizkd, client, workdir)
    print("service_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
