#!/usr/bin/env python3
"""End-to-end smoke test for the unizk_load traffic generator.

Four legs:

  1. Determinism (no daemon): --dry-run the zipfian-closed scenario
     twice with the same seed and byte-compare the --schedule-out
     dumps (identical, identical fingerprint line), then once with a
     different seed (must differ).

  2. Strict parsing (no daemon): a scenario file with a junk number
     must exit nonzero with a fatal diagnostic, never run with a
     silently-defaulted value.

  3. Live matrix: start unizkd, run three scenarios against it --
     uniform-closed, zipfian-closed, and poisson-open -- and validate
     every --report document with validate_load_json (schema, outcome
     accounting, latency ordering, queue-depth samples, per-app sums).
     Each run must answer every request (ok == requests, errors == 0:
     the queue is deep enough that backpressure never triggers).

  4. Drain: SIGTERM the daemon and assert a graceful exit with the
     socket unlinked.

Registered as the `load_smoke` ctest; also run by CI's load-smoke job.
Stdlib-only by design.

Usage:
    python3 tools/load/load_smoke_test.py /path/to/unizkd /path/to/unizk_load
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import validate_load_json  # noqa: E402

FINGERPRINT_RE = re.compile(
    r"unizk_load: scenario=(\S+) seed=(\d+) requests=(\d+) "
    r"fingerprint=([0-9a-f]{16})"
)
SUMMARY_RE = re.compile(
    r"unizk_load: ok=(\d+) queue_full=(\d+) shutting_down=(\d+) "
    r"errors=(\d+)"
)


def run_load(load: str, args: list, expect_failure: bool = False) -> str:
    proc = subprocess.run(
        [load] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=600,
    )
    print(proc.stdout, end="")
    if expect_failure:
        if proc.returncode == 0:
            raise SystemExit(
                f"unizk_load {' '.join(args)} exited 0, expected failure")
    elif proc.returncode != 0:
        raise SystemExit(
            f"unizk_load {' '.join(args)} exited with {proc.returncode}")
    return proc.stdout


def determinism_leg(load: str, workdir: str) -> None:
    dumps = []
    fingerprints = []
    for tag, seed in (("a", 7), ("b", 7), ("c", 8)):
        path = os.path.join(workdir, f"schedule-{tag}.bin")
        out = run_load(load, [
            "--scenario", "zipfian-closed", "--seed", str(seed),
            "--dry-run", "--schedule-out", path,
        ])
        match = FINGERPRINT_RE.search(out)
        if not match:
            raise SystemExit("unizk_load printed no fingerprint line")
        with open(path, "rb") as f:
            dumps.append(f.read())
        fingerprints.append(match.group(4))
    if not dumps[0]:
        raise SystemExit("schedule dump is empty")
    if dumps[0] != dumps[1] or fingerprints[0] != fingerprints[1]:
        raise SystemExit("same seed produced different schedules")
    if dumps[0] == dumps[2]:
        raise SystemExit("different seeds produced identical schedules")
    print("load_smoke: determinism leg OK")


def misparse_leg(load: str, workdir: str) -> None:
    bad = os.path.join(workdir, "bad.scn")
    with open(bad, "w", encoding="utf-8") as f:
        f.write("name bad\nrequests 12abc\n"
                "mix plonky2 factorial 1 64 64 1\n")
    out = run_load(load, ["--scenario-file", bad, "--dry-run"],
                   expect_failure=True)
    if "fatal" not in out:
        raise SystemExit("misparse exited nonzero but printed no fatal")
    print("load_smoke: misparse leg OK")


def wait_for_socket(path: str, daemon: subprocess.Popen) -> None:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if daemon.poll() is not None:
            raise SystemExit(
                f"unizkd exited early with {daemon.returncode}")
        time.sleep(0.05)
    raise SystemExit(f"unizkd never created {path}")


def run_scenario(load: str, sock: str, workdir: str, name: str,
                 extra: list) -> None:
    report = os.path.join(workdir, f"report-{name}.json")
    out = run_load(load, [
        "--socket", sock, "--scenario", name, "--seed", "1",
        "--requests", "6", "--connections", "2", "--report", report,
    ] + extra)
    match = SUMMARY_RE.search(out)
    if not match:
        raise SystemExit(f"{name}: unizk_load printed no summary line")
    ok, queue_full, shutting_down, errors = (int(g)
                                             for g in match.groups())
    if ok != 6 or queue_full or shutting_down or errors:
        raise SystemExit(
            f"{name}: bad tally ok={ok} queue_full={queue_full} "
            f"shutting_down={shutting_down} errors={errors}")
    failures = validate_load_json.validate_file(report)
    if failures:
        raise SystemExit("\n".join(failures))
    with open(report, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc["scenario"]["name"] != name:
        raise SystemExit(
            f"report names {doc['scenario']['name']!r}, ran {name}")
    if doc["results"]["ok"] != 6:
        raise SystemExit(f"{name}: report ok != 6")
    print(f"load_smoke: scenario {name} OK")


def live_leg(unizkd: str, load: str, workdir: str) -> None:
    sock = os.path.join(workdir, "unizkd.sock")
    daemon = subprocess.Popen(
        [unizkd, "--socket", sock, "--queue-capacity", "16",
         "--lanes", "2", "--threads", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        wait_for_socket(sock, daemon)
        run_scenario(load, sock, workdir, "uniform-closed", [])
        run_scenario(load, sock, workdir, "zipfian-closed", [])
        run_scenario(load, sock, workdir, "poisson-open",
                     ["--rate", "50"])
        daemon.send_signal(signal.SIGTERM)
        try:
            out, _ = daemon.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            daemon.kill()
            raise SystemExit("unizkd did not drain after SIGTERM")
        print(out, end="")
        if daemon.returncode != 0:
            raise SystemExit(
                f"unizkd exited with {daemon.returncode} after SIGTERM")
        if os.path.exists(sock):
            raise SystemExit(f"unizkd leaked its socket file {sock}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
    print("load_smoke: live leg OK")


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    unizkd, load = argv
    with tempfile.TemporaryDirectory() as workdir:
        determinism_leg(load, workdir)
        misparse_leg(load, workdir)
        live_leg(unizkd, load, workdir)
    print("load_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
