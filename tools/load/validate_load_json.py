#!/usr/bin/env python3
"""Schema validator for the `unizk-load-v1` report documents.

Validates the JSON report unizk_load writes with --report: the scenario
echo (name, arrival/skew model, seed, mix) and the results block
(outcome accounting, throughput, latency percentiles from the obs
log2-bucket histograms, queue-depth-over-time samples, per-app counts).

Cross-field invariants checked, matching the runner's accounting
(src/load/runner.cpp; update this validator and that together):

  - ok + queueFull + shuttingDown + errors == issued: every schedule
    entry is accounted exactly once.
  - latencyNs.count == ok, min <= max, and mean within [min, max];
    p50 <= p90 <= p99 up to the log2-bucket interpolation (quantiles
    come from obs::histogramQuantile, exact only to within a 2x
    bucket), and each within [min/2, 2*max].
  - queueDepth has one sample per ok, sorted by tNs.
  - perApp counts sum to ok, apps drawn from the scenario mix.
  - breakdown.traced == len(breakdown.samples) <= ok; samples are
    sorted by strictly increasing traceId (every schedule entry gets a
    unique id); per sample the server decomposition must nest inside
    the client observation, queuedNs + proveNs + serializeNs <=
    serverNs <= clientNs, except for samples the runner already charged
    to breakdown.violations (the recomputed failure count can only be
    <= violations: the runner additionally counts traceId-echo
    mismatches this validator cannot re-derive from the report).

Usage:
    python3 tools/load/validate_load_json.py FILE...

Exit status is nonzero iff any file fails validation.
Stdlib-only by design; runs anywhere python3 exists.
"""

from __future__ import annotations

import json
import sys
from typing import Any, List

ARRIVALS = ("closed", "open-poisson")
SKEWS = ("uniform", "zipfian")
PROTOCOLS = ("plonky2", "starky")
APPS = (
    "factorial",
    "fibonacci",
    "ecdsa",
    "sha256",
    "image-crop",
    "mvm",
    "recursion",
)


class ValidationError(Exception):
    pass


def _fail(path: str, message: str) -> None:
    raise ValidationError(f"{path}: {message}")


def _expect(cond: bool, path: str, message: str) -> None:
    if not cond:
        _fail(path, message)


def _expect_keys(obj: Any, keys: tuple, path: str) -> None:
    _expect(isinstance(obj, dict), path,
            f"expected object, got {type(obj).__name__}")
    missing = [k for k in keys if k not in obj]
    _expect(not missing, path, f"missing keys: {', '.join(missing)}")


def _expect_number(obj: dict, key: str, path: str,
                   minimum: float = 0.0) -> None:
    v = obj.get(key)
    _expect(
        isinstance(v, (int, float)) and not isinstance(v, bool),
        path,
        f"'{key}' must be a number, got {type(v).__name__}",
    )
    _expect(v >= minimum, path, f"'{key}' must be >= {minimum}, got {v}")


def validate_scenario(sc: Any, path: str) -> list:
    """Validate the scenario echo; returns the (protocol, app) pairs of
    the mix for the perApp cross-check."""
    _expect_keys(sc, ("name", "arrival", "skew", "seed", "requests",
                      "connections", "keySpace", "mix"), path)
    _expect(isinstance(sc["name"], str) and sc["name"], path,
            "'name' must be a non-empty string")
    _expect(sc["arrival"] in ARRIVALS, path,
            f"unknown arrival {sc['arrival']!r}")
    _expect(sc["skew"] in SKEWS, path, f"unknown skew {sc['skew']!r}")
    if sc["skew"] == "zipfian":
        _expect_number(sc, "zipfianTheta", path)
        _expect(sc["zipfianTheta"] > 0, path,
                "'zipfianTheta' must be positive")
    if sc["arrival"] == "open-poisson":
        _expect_number(sc, "openRateRps", path)
        _expect(sc["openRateRps"] > 0, path,
                "'openRateRps' must be positive")
    for key in ("seed", "requests", "connections", "keySpace"):
        _expect_number(sc, key, path)
    _expect(sc["requests"] >= 1, path, "'requests' must be >= 1")
    _expect(sc["connections"] >= 1, path, "'connections' must be >= 1")
    _expect(sc["keySpace"] >= 1, path, "'keySpace' must be >= 1")

    mix = sc["mix"]
    _expect(isinstance(mix, list) and mix, path,
            "'mix' must be a non-empty array")
    pairs = []
    for i, e in enumerate(mix):
        epath = f"{path}.mix[{i}]"
        _expect_keys(e, ("protocol", "app", "weight", "minRows",
                         "maxRows", "reps"), epath)
        _expect(e["protocol"] in PROTOCOLS, epath,
                f"unknown protocol {e['protocol']!r}")
        _expect(e["app"] in APPS, epath, f"unknown app {e['app']!r}")
        for key in ("weight", "minRows", "maxRows", "reps"):
            _expect_number(e, key, epath)
        _expect(e["weight"] >= 1, epath, "'weight' must be >= 1")
        _expect(e["minRows"] <= e["maxRows"], epath,
                f"minRows ({e['minRows']}) > maxRows ({e['maxRows']})")
        pairs.append((e["protocol"], e["app"]))
    return pairs


def validate_latency(lat: Any, ok: int, path: str) -> None:
    _expect_keys(lat, ("count", "min", "max", "mean", "p50", "p90",
                       "p99"), path)
    for key in ("count", "min", "max", "mean", "p50", "p90", "p99"):
        _expect_number(lat, key, path)
    _expect(lat["count"] == ok, path,
            f"count ({lat['count']}) != ok ({ok})")
    if lat["count"] == 0:
        return
    _expect(lat["min"] <= lat["max"], path,
            f"min ({lat['min']}) > max ({lat['max']})")
    _expect(lat["min"] <= lat["mean"] <= lat["max"], path,
            f"mean ({lat['mean']}) outside [min, max]")
    # Quantiles interpolate inside log2 buckets: ordered, and within a
    # 2x band of the exact extremes.
    _expect(lat["p50"] <= lat["p90"] <= lat["p99"], path,
            "quantiles not ordered: p50 <= p90 <= p99 required")
    _expect(lat["p50"] >= lat["min"] / 2, path,
            f"p50 ({lat['p50']}) below min/2 ({lat['min'] / 2})")
    _expect(lat["p99"] <= lat["max"] * 2, path,
            f"p99 ({lat['p99']}) above 2*max ({lat['max'] * 2})")


def validate_breakdown(bd: Any, ok: int, path: str) -> None:
    _expect_keys(bd, ("traced", "violations", "samples"), path)
    _expect_number(bd, "traced", path)
    _expect_number(bd, "violations", path)
    samples = bd["samples"]
    _expect(isinstance(samples, list), path,
            "'samples' must be an array")
    _expect(bd["traced"] == len(samples), path,
            f"traced ({bd['traced']}) != len(samples) ({len(samples)})")
    _expect(len(samples) <= ok, path,
            f"{len(samples)} traced samples but only {ok} ok responses")
    if samples:
        for key in ("meanClientNs", "meanServerNs", "meanQueuedNs",
                    "meanProveNs", "meanSerializeNs"):
            _expect_number(bd, key, path)
        # meanResidualNs may be negative when violations > 0 (a server
        # clock ahead of the client's observation), so only presence
        # and numberhood are checked.
        _expect("meanResidualNs" in bd, path, "missing 'meanResidualNs'")
    chain_failures = 0
    last_trace = 0
    for i, s in enumerate(samples):
        spath = f"{path}.samples[{i}]"
        _expect_keys(s, ("traceId", "laneId", "clientNs", "serverNs",
                         "queuedNs", "proveNs", "serializeNs"), spath)
        for key in ("traceId", "laneId", "clientNs", "serverNs",
                    "queuedNs", "proveNs", "serializeNs"):
            _expect_number(s, key, spath)
        _expect(s["traceId"] >= 1, spath,
                "'traceId' 0 means untraced and cannot appear here")
        _expect(s["traceId"] > last_trace, spath,
                "'traceId' must be strictly increasing (sorted, unique)")
        last_trace = s["traceId"]
        parts = s["queuedNs"] + s["proveNs"] + s["serializeNs"]
        if not parts <= s["serverNs"] <= s["clientNs"]:
            chain_failures += 1
    _expect(
        chain_failures <= bd["violations"],
        path,
        f"{chain_failures} sample(s) break queued+prove+serialize <= "
        f"server <= client but violations says {bd['violations']}",
    )


def validate_results(res: Any, mix_pairs: list, path: str) -> None:
    _expect_keys(res, ("issued", "ok", "queueFull", "shuttingDown",
                       "errors", "elapsedSeconds", "throughputRps",
                       "latencyNs", "breakdown", "queueDepth",
                       "perApp"), path)
    for key in ("issued", "ok", "queueFull", "shuttingDown", "errors"):
        _expect_number(res, key, path)
    accounted = (res["ok"] + res["queueFull"] + res["shuttingDown"] +
                 res["errors"])
    _expect(
        accounted == res["issued"],
        path,
        f"ok+queueFull+shuttingDown+errors is {accounted}, issued says "
        f"{res['issued']}",
    )
    _expect_number(res, "elapsedSeconds", path)
    _expect_number(res, "throughputRps", path)

    validate_latency(res["latencyNs"], res["ok"], f"{path}.latencyNs")
    validate_breakdown(res["breakdown"], res["ok"],
                       f"{path}.breakdown")

    qd = res["queueDepth"]
    _expect(isinstance(qd, list), path, "'queueDepth' must be an array")
    _expect(len(qd) == res["ok"], path,
            f"queueDepth has {len(qd)} samples, ok says {res['ok']}")
    last_t = -1
    for i, s in enumerate(qd):
        spath = f"{path}.queueDepth[{i}]"
        _expect_keys(s, ("tNs", "depth"), spath)
        _expect_number(s, "tNs", spath)
        _expect_number(s, "depth", spath)
        _expect(s["tNs"] >= last_t, spath, "'tNs' must be sorted")
        last_t = s["tNs"]

    per_app = res["perApp"]
    _expect(isinstance(per_app, list), path, "'perApp' must be an array")
    count_sum = 0
    for i, p in enumerate(per_app):
        ppath = f"{path}.perApp[{i}]"
        _expect_keys(p, ("protocol", "app", "count"), ppath)
        _expect(p["protocol"] in PROTOCOLS, ppath,
                f"unknown protocol {p['protocol']!r}")
        _expect(p["app"] in APPS, ppath, f"unknown app {p['app']!r}")
        _expect_number(p, "count", ppath)
        _expect((p["protocol"], p["app"]) in mix_pairs, ppath,
                f"({p['protocol']}, {p['app']}) not in the scenario mix")
        count_sum += p["count"]
    _expect(count_sum == res["ok"], path,
            f"perApp counts sum to {count_sum}, ok says {res['ok']}")


def validate_load(doc: Any, path: str) -> None:
    _expect_keys(doc, ("schema", "scenario", "results"), path)
    _expect(
        doc["schema"] == "unizk-load-v1",
        path,
        f"schema is {doc['schema']!r}, expected 'unizk-load-v1'",
    )
    mix_pairs = validate_scenario(doc["scenario"], f"{path}.scenario")
    validate_results(doc["results"], mix_pairs, f"{path}.results")


def validate_file(filename: str) -> List[str]:
    try:
        with open(filename, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{filename}: {e}"]
    try:
        validate_load(doc, filename)
    except ValidationError as e:
        return [str(e)]
    return []


def main(argv) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    errors: List[str] = []
    for filename in argv:
        errors.extend(validate_file(filename))
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"validate_load_json: {len(errors)} error(s)",
              file=sys.stderr)
        return 1
    print(f"validate_load_json: {len(argv)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
