/**
 * @file
 * Bit-manipulation helpers shared across the NTT library, the FRI prover,
 * and the hardware simulator.
 */

#ifndef UNIZK_COMMON_BITS_H
#define UNIZK_COMMON_BITS_H

#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace unizk {

/** True iff @p x is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. Panics on non-powers. */
inline uint32_t
log2Exact(uint64_t x)
{
    unizk_assert(isPowerOfTwo(x), "log2Exact on non-power-of-two");
    return static_cast<uint32_t>(std::countr_zero(x));
}

/** Smallest power of two >= x (x must be nonzero). */
inline uint64_t
nextPowerOfTwo(uint64_t x)
{
    unizk_assert(x != 0, "nextPowerOfTwo(0)");
    return std::bit_ceil(x);
}

/** ceil(log2(x)) for x >= 1. */
inline uint32_t
ceilLog2(uint64_t x)
{
    return log2Exact(nextPowerOfTwo(x));
}

/** Reverse the low @p bits bits of @p x. */
inline uint64_t
reverseBits(uint64_t x, uint32_t bits)
{
    unizk_assert(bits <= 64, "reverseBits width too large");
    uint64_t r = 0;
    for (uint32_t i = 0; i < bits; ++i) {
        r = (r << 1) | ((x >> i) & 1);
    }
    return r;
}

/** Permute a vector into bit-reversed index order in place. */
template <typename T>
void
bitReversePermute(std::vector<T> &v)
{
    unizk_assert(isPowerOfTwo(v.size()), "bit-reverse needs power-of-two");
    const uint32_t bits = log2Exact(v.size());
    for (uint64_t i = 0; i < v.size(); ++i) {
        const uint64_t j = reverseBits(i, bits);
        if (j > i)
            std::swap(v[i], v[j]);
    }
}

/** Integer ceiling division. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace unizk

#endif // UNIZK_COMMON_BITS_H
