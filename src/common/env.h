/**
 * @file
 * Strict environment-variable parsing. Every knob the library reads
 * from the environment (UNIZK_THREADS, UNIZK_NTT_CACHE, ...) goes
 * through these helpers so malformed values are *rejected with a
 * warning* instead of silently mangled: bare strtoul() turns "8abc"
 * into 8, wraps "4294967297" on a narrowing cast, and accepts "-1" as
 * a huge positive. The semantics mirror CliOptions::getUint (trailing
 * junk, missing digits, sign, and range are all checked); the
 * difference is that a bad environment value warns and falls back to
 * the default instead of aborting, since the process may be a
 * long-running service that a stray shell export must not kill.
 */

#ifndef UNIZK_COMMON_ENV_H
#define UNIZK_COMMON_ENV_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>

namespace unizk {

/**
 * Parse the environment variable @p name as an unsigned integer in
 * [@p lo, @p hi]. Returns std::nullopt when the variable is unset, and
 * also (after a warn()) when the value has trailing junk, no digits, a
 * sign, or falls outside the range -- callers treat nullopt as "use
 * the default". Accepts the same bases as CliOptions::getUint
 * (decimal, 0x hex, 0 octal).
 */
std::optional<uint64_t> envUint(const char *name, uint64_t lo,
                                uint64_t hi);

/**
 * Parse the environment variable @p name as a boolean switch.
 * Recognizes "1"/"on"/"true"/"yes" and "0"/"off"/"false"/"no"
 * (lowercase, as documented for UNIZK_NTT_CACHE). Returns std::nullopt
 * when unset, or (after a warn()) for any unrecognized spelling --
 * previously a typo like "flase" silently meant "on".
 */
std::optional<bool> envFlag(const char *name);

/**
 * Parse the environment variable @p name as one of a closed set of
 * lowercase spellings (e.g. UNIZK_SIMD={auto,avx2,scalar}). Returns
 * the index of the matching entry in @p allowed, std::nullopt when
 * unset, or (after a warn() listing the accepted spellings) for any
 * unknown value -- callers treat nullopt as "use the default".
 */
std::optional<size_t> envChoice(const char *name,
                                std::initializer_list<const char *> allowed);

} // namespace unizk

#endif // UNIZK_COMMON_ENV_H
