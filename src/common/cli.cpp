#include "common/cli.h"

#include <cstdlib>
#include <string_view>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace unizk {

CliOptions::CliOptions(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg.rfind("--", 0) != 0) {
            warn("ignoring positional argument '", arg, "'");
            continue;
        }
        std::string key(arg.substr(2));
        if (i + 1 < argc &&
            std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
            values[key] = argv[++i];
        } else {
            values[key] = "";
        }
    }
}

uint64_t
CliOptions::getUint(const std::string &key, uint64_t def) const
{
    auto it = values.find(key);
    if (it == values.end() || it->second.empty())
        return def;
    return std::strtoull(it->second.c_str(), nullptr, 0);
}

double
CliOptions::getDouble(const std::string &key, double def) const
{
    auto it = values.find(key);
    if (it == values.end() || it->second.empty())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

std::string
CliOptions::getString(const std::string &key, const std::string &def) const
{
    auto it = values.find(key);
    if (it == values.end() || it->second.empty())
        return def;
    return it->second;
}

bool
CliOptions::has(const std::string &key) const
{
    return values.count(key) > 0;
}

void
applyGlobalCliOptions(const CliOptions &cli)
{
    if (cli.has("threads")) {
        setGlobalThreadCount(
            static_cast<unsigned>(cli.getUint("threads", 0)));
    }
}

} // namespace unizk
