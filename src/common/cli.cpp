#include "common/cli.h"

#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace unizk {

namespace {

/**
 * Reject anything strtoull/strtod would quietly mangle: trailing
 * garbage ("8x"), no digits at all ("foo"), out-of-range values, and --
 * for the unsigned parse -- negative numbers, which strtoull happily
 * wraps to huge positives.
 */
void
checkNumericParse(const std::string &key, const std::string &text,
                  const char *end, bool negative_ok)
{
    if (errno == ERANGE)
        unizk_fatal("--", key, ": value '", text, "' is out of range");
    if (end == text.c_str() || *end != '\0')
        unizk_fatal("--", key, ": expected a number, got '", text, "'");
    if (!negative_ok &&
        text.find('-') != std::string::npos) {
        unizk_fatal("--", key, ": expected a non-negative number, got '",
                    text, "'");
    }
}

} // namespace

CliOptions::CliOptions(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg.rfind("--", 0) != 0) {
            warn("ignoring positional argument '", arg, "'");
            continue;
        }
        std::string key(arg.substr(2));
        if (i + 1 < argc &&
            std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
            values[key] = argv[++i];
        } else {
            values[key] = "";
        }
    }
}

uint64_t
CliOptions::getUint(const std::string &key, uint64_t def) const
{
    auto it = values.find(key);
    if (it == values.end() || it->second.empty())
        return def;
    errno = 0;
    char *end = nullptr;
    const uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    checkNumericParse(key, it->second, end, /*negative_ok=*/false);
    return v;
}

double
CliOptions::getDouble(const std::string &key, double def) const
{
    auto it = values.find(key);
    if (it == values.end() || it->second.empty())
        return def;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    checkNumericParse(key, it->second, end, /*negative_ok=*/true);
    return v;
}

std::string
CliOptions::getString(const std::string &key, const std::string &def) const
{
    auto it = values.find(key);
    if (it == values.end() || it->second.empty())
        return def;
    return it->second;
}

bool
CliOptions::has(const std::string &key) const
{
    return values.count(key) > 0;
}

void
applyGlobalCliOptions(const CliOptions &cli)
{
    if (cli.has("threads")) {
        setGlobalThreadCount(
            static_cast<unsigned>(cli.getUint("threads", 0)));
    }
}

} // namespace unizk
