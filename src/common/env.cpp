#include "common/env.h"

#include <cerrno>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/logging.h"

namespace unizk {

std::optional<uint64_t>
envUint(const char *name, uint64_t lo, uint64_t hi)
{
    // getenv is only mt-unsafe against a concurrent setenv/putenv;
    // nothing in this process mutates the environment after startup.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv(name);
    if (env == nullptr)
        return std::nullopt;
    // strtoull itself accepts whitespace and sign characters ("-1"
    // wraps to a huge positive without setting errno); insist the value
    // starts with a digit so those never parse.
    if (env[0] < '0' || env[0] > '9') {
        warn("ignoring ", name, "='", env, "': expected an integer");
        return std::nullopt;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (errno == ERANGE) {
        warn("ignoring ", name, "='", env, "': value out of range");
        return std::nullopt;
    }
    if (end == env || *end != '\0') {
        warn("ignoring ", name, "='", env, "': expected an integer");
        return std::nullopt;
    }
    if (v < lo || v > hi) {
        warn("ignoring ", name, "='", env, "': must be in [", lo, ", ",
             hi, "]");
        return std::nullopt;
    }
    return static_cast<uint64_t>(v);
}

std::optional<bool>
envFlag(const char *name)
{
    // Same contract as envUint: no setenv after startup, so the
    // lock-free read cannot race a writer.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv(name);
    if (env == nullptr)
        return std::nullopt;
    const std::string_view v(env);
    if (v == "1" || v == "on" || v == "true" || v == "yes")
        return true;
    if (v == "0" || v == "off" || v == "false" || v == "no")
        return false;
    warn("ignoring ", name, "='", env,
         "': expected one of 1/on/true/yes or 0/off/false/no");
    return std::nullopt;
}

std::optional<size_t>
envChoice(const char *name, std::initializer_list<const char *> allowed)
{
    // Same contract as envUint: no setenv after startup, so the
    // lock-free read cannot race a writer.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv(name);
    if (env == nullptr)
        return std::nullopt;
    const std::string_view v(env);
    size_t index = 0;
    for (const char *candidate : allowed) {
        if (v == candidate)
            return index;
        ++index;
    }
    std::string spellings;
    for (const char *candidate : allowed) {
        if (!spellings.empty())
            spellings += '/';
        spellings += candidate;
    }
    warn("ignoring ", name, "='", env, "': expected one of ", spellings);
    return std::nullopt;
}

} // namespace unizk
