/**
 * @file
 * Lightweight named-counter / timer registry used for the CPU-baseline
 * kernel-time breakdown (Table 1) and for simulator statistics.
 */

#ifndef UNIZK_COMMON_STATS_H
#define UNIZK_COMMON_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace unizk {

/**
 * Categories of work in hash-based ZKP proof generation, matching the
 * columns of Table 1 in the paper.
 */
enum class KernelClass
{
    Polynomial,      ///< element-wise / misc polynomial computations
    Ntt,             ///< all (i)NTT and LDE work
    MerkleTree,      ///< Merkle tree hashing
    OtherHash,       ///< Fiat-Shamir / proof-of-work hashing
    LayoutTransform, ///< transposes and other data reshuffling
    NumClasses,
};

/** Printable name of a kernel class. */
const char *kernelClassName(KernelClass c);

/**
 * Accumulates wall-clock time per kernel class. The CPU prover brackets
 * each kernel with ScopedKernelTimer; the resulting breakdown reproduces
 * Table 1.
 *
 * ScopedKernelTimer fires inside thread-pool workers, so accumulation
 * must be race-free: time is stored as integer nanoseconds and added
 * with relaxed atomic fetch_add. Relaxed is sufficient (audited with
 * the src/obs atomics, DESIGN §6.7): readers only observe totals after
 * the parallel region has joined, and the pool's completion handshake
 * -- a mutex acquire/release pair -- is the synchronization edge that
 * makes every worker's relaxed adds visible to the reader. This class
 * deliberately has no mutex, so the thread-safety annotations of
 * common/sync.h do not apply; the TSAN-leg test
 * KernelTimeBreakdown.ConcurrentAddIsExact pins the contract.
 */
class KernelTimeBreakdown
{
  public:
    KernelTimeBreakdown() = default;

    // std::atomic members delete the implicit copies, but the breakdown
    // is copied into AppRunResult and returned from scaledBy(); copies
    // are only taken at quiescent points, so relaxed loads suffice.
    KernelTimeBreakdown(const KernelTimeBreakdown &other) { *this = other; }

    KernelTimeBreakdown &
    operator=(const KernelTimeBreakdown &other)
    {
        for (size_t i = 0; i < kNumClasses; ++i) {
            nanos_[i].store(
                other.nanos_[i].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        return *this;
    }

    void
    add(KernelClass c, double seconds)
    {
        nanos_[static_cast<size_t>(c)].fetch_add(
            static_cast<uint64_t>(seconds * 1e9),
            std::memory_order_relaxed);
    }

    double
    seconds(KernelClass c) const
    {
        return static_cast<double>(nanos_[static_cast<size_t>(c)].load(
                   std::memory_order_relaxed)) *
               1e-9;
    }

    /** Total across all classes. */
    double total() const;

    /** Fraction of total time in class @p c (0 if total is 0). */
    double fraction(KernelClass c) const;

    void
    reset()
    {
        for (auto &n : nanos_)
            n.store(0, std::memory_order_relaxed);
    }

    KernelTimeBreakdown &operator+=(const KernelTimeBreakdown &other);

    /** Copy with every class scaled by @p factor (e.g. 1/threads). */
    KernelTimeBreakdown scaledBy(double factor) const;

  private:
    static constexpr size_t kNumClasses =
        static_cast<size_t>(KernelClass::NumClasses);

    std::atomic<uint64_t> nanos_[kNumClasses] = {};
};

/** RAII timer attributing the enclosed scope to a kernel class. */
class ScopedKernelTimer
{
  public:
    ScopedKernelTimer(KernelTimeBreakdown *breakdown_, KernelClass c)
        : breakdown(breakdown_), cls(c),
          start(std::chrono::steady_clock::now())
    {}

    ~ScopedKernelTimer()
    {
        if (breakdown) {
            const auto end = std::chrono::steady_clock::now();
            breakdown->add(cls,
                           std::chrono::duration<double>(end - start)
                               .count());
        }
    }

    ScopedKernelTimer(const ScopedKernelTimer &) = delete;
    ScopedKernelTimer &operator=(const ScopedKernelTimer &) = delete;

  private:
    KernelTimeBreakdown *breakdown;
    KernelClass cls;
    std::chrono::steady_clock::time_point start;
};

/** Simple wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start(std::chrono::steady_clock::now()) {}

    double
    elapsedSeconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start).count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

} // namespace unizk

#endif // UNIZK_COMMON_STATS_H
