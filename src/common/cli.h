/**
 * @file
 * Minimal command-line option parsing for the bench harnesses and
 * examples (e.g. `--rows 4096 --vsas 32`).
 */

#ifndef UNIZK_COMMON_CLI_H
#define UNIZK_COMMON_CLI_H

#include <cstdint>
#include <map>
#include <string>

namespace unizk {

/**
 * Parses `--key value` pairs and bare `--flag` switches. Unknown keys are
 * accepted; callers query with defaults.
 */
class CliOptions
{
  public:
    CliOptions(int argc, char **argv);

    /** Integer option with default. */
    uint64_t getUint(const std::string &key, uint64_t def) const;

    /** Floating-point option with default. */
    double getDouble(const std::string &key, double def) const;

    /** String option with default. */
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** True if `--key` was given (with or without a value). */
    bool has(const std::string &key) const;

  private:
    std::map<std::string, std::string> values;
};

/**
 * Apply the process-wide options every binary understands: currently
 * `--threads N` (0 or absent = auto: UNIZK_THREADS env var, then
 * hardware concurrency), which sizes the global thread pool.
 */
void applyGlobalCliOptions(const CliOptions &cli);

} // namespace unizk

#endif // UNIZK_COMMON_CLI_H
