/**
 * @file
 * Compile-time concurrency discipline: capability-annotated
 * synchronization wrappers for Clang's Thread Safety Analysis
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
 *
 * Every mutex in this codebase is a `unizk::Mutex`, every condition
 * variable a `unizk::CondVar`, and every protected member carries a
 * `UNIZK_GUARDED_BY(mutex)` annotation naming the mutex that guards
 * it. A clang build with `-Werror=thread-safety` (CMake option
 * `UNIZK_THREAD_SAFETY`, run by the CI `thread-safety` job) then
 * rejects, at compile time, on every interleaving at once:
 *
 *  - reading or writing a guarded member without holding its mutex,
 *  - calling a `UNIZK_REQUIRES(mu)` function without holding `mu`,
 *  - acquiring a mutex that is already held (self-deadlock),
 *  - returning with a mutex still held / releasing one never taken.
 *
 * TSAN still runs in CI — it catches races on data the annotations do
 * not cover (atomics misuse, non-mutex handshakes) — but it only sees
 * executed interleavings; this layer makes the locking *contracts*
 * themselves machine-checked documentation.
 *
 * On non-Clang compilers (and Clang without the attributes) every
 * macro expands to nothing and the wrappers are zero-overhead
 * forwarders to the std primitives, so GCC builds are unaffected.
 *
 * The companion lint rules (tools/lint/unizk_lint.py) keep the
 * discipline closed: `raw-sync-primitive` bans bare std primitives
 * outside this header, and `unguarded-mutex-member` insists every
 * `unizk::Mutex` guards at least one annotated member (or carries a
 * suppression explaining what it orders instead).
 */

#ifndef UNIZK_COMMON_SYNC_H
#define UNIZK_COMMON_SYNC_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define UNIZK_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef UNIZK_THREAD_ANNOTATION
#define UNIZK_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability (used on unizk::Mutex). */
#define UNIZK_CAPABILITY(x) UNIZK_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime equals a critical section. */
#define UNIZK_SCOPED_CAPABILITY UNIZK_THREAD_ANNOTATION(scoped_lockable)

/** Data member is protected by the given mutex. */
#define UNIZK_GUARDED_BY(x) UNIZK_THREAD_ANNOTATION(guarded_by(x))

/** Pointee (not the pointer) is protected by the given mutex. */
#define UNIZK_PT_GUARDED_BY(x) UNIZK_THREAD_ANNOTATION(pt_guarded_by(x))

/** Lock-ordering edges (checked under -Wthread-safety-beta). */
#define UNIZK_ACQUIRED_BEFORE(...)                                        \
    UNIZK_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define UNIZK_ACQUIRED_AFTER(...)                                         \
    UNIZK_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Caller must hold the listed mutexes (not acquired by the callee). */
#define UNIZK_REQUIRES(...)                                               \
    UNIZK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed mutexes and returns holding them. */
#define UNIZK_ACQUIRE(...)                                                \
    UNIZK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed mutexes (held on entry). */
#define UNIZK_RELEASE(...)                                                \
    UNIZK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the mutex iff it returns the given value. */
#define UNIZK_TRY_ACQUIRE(...)                                            \
    UNIZK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed mutexes (deadlock prevention). */
#define UNIZK_EXCLUDES(...)                                               \
    UNIZK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Assert (at runtime) that the capability is held; teaches the
 *  analysis about invariants it cannot see, e.g. init-before-spawn. */
#define UNIZK_ASSERT_CAPABILITY(x)                                        \
    UNIZK_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the given mutex. */
#define UNIZK_RETURN_CAPABILITY(x)                                        \
    UNIZK_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch: disables the analysis for one function. Every use must
 * carry a comment explaining why the locking pattern is correct but
 * inexpressible (there are currently none in the tree; prefer
 * restructuring to scoped locks or balanced manual lock()/unlock()).
 */
#define UNIZK_NO_THREAD_SAFETY_ANALYSIS                                   \
    UNIZK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace unizk {

class CondVar;

/**
 * A capability-annotated std::mutex. Identical cost; the annotations
 * exist only at compile time. Manual lock()/unlock() is legal (the
 * analysis checks the pairing is balanced on every path) but prefer
 * MutexLock for plain critical sections.
 */
class UNIZK_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() UNIZK_ACQUIRE() { mu_.lock(); }
    void unlock() UNIZK_RELEASE() { mu_.unlock(); }
    bool tryLock() UNIZK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/**
 * Condition variable paired with unizk::Mutex. wait() atomically
 * releases and reacquires the mutex, which the caller must hold — the
 * annotation makes "wait without the lock" a compile error. There is
 * deliberately no predicate overload: spelling the loop
 *
 *     while (!condition)
 *         cv.wait(mu);
 *
 * in the member function keeps the predicate's guarded-member reads
 * visible to the analysis (a lambda would be analyzed as a separate,
 * lock-free function and rejected).
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void
    wait(Mutex &mu) UNIZK_REQUIRES(mu)
    {
        // Adopt the already-held native mutex for the duration of the
        // wait, then release the unique_lock without unlocking: from
        // the analysis' (and the caller's) perspective the capability
        // is held continuously across the call.
        std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    /**
     * Timed wait: release/reacquire like wait(), but wake after at
     * most @p timeout_ms. Returns true when notified before the
     * timeout expired. Spurious wakeups report as notifications, so
     * callers re-check their predicate (and their deadline) in a loop
     * exactly as with wait().
     */
    bool
    waitForMs(Mutex &mu, int64_t timeout_ms) UNIZK_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
        const std::cv_status status = cv_.wait_for(
            native, std::chrono::milliseconds(timeout_ms));
        native.release();
        return status == std::cv_status::no_timeout;
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/** RAII critical section: the std::lock_guard of this codebase. */
class UNIZK_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) UNIZK_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() UNIZK_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * MutexLock that can be released before scope end, for the
 * lock-then-do-slow-work-unlocked shape (e.g. bump a counter under the
 * stats mutex, then write to a socket without it).
 */
class UNIZK_SCOPED_CAPABILITY ReleasableMutexLock
{
  public:
    explicit ReleasableMutexLock(Mutex &mu) UNIZK_ACQUIRE(mu) : mu_(&mu)
    {
        mu_->lock();
    }

    ~ReleasableMutexLock() UNIZK_RELEASE()
    {
        if (mu_ != nullptr)
            mu_->unlock();
    }

    /** Release now; the destructor becomes a no-op. */
    void
    release() UNIZK_RELEASE()
    {
        mu_->unlock();
        mu_ = nullptr;
    }

    ReleasableMutexLock(const ReleasableMutexLock &) = delete;
    ReleasableMutexLock &operator=(const ReleasableMutexLock &) = delete;

  private:
    Mutex *mu_;
};

} // namespace unizk

#endif // UNIZK_COMMON_SYNC_H
