/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in this repository that needs randomness (test vectors,
 * witness data, Poseidon round-constant generation) goes through this
 * splitmix64-based generator so runs are reproducible across platforms.
 * It is NOT a cryptographic RNG; protocol randomness comes from the
 * Fiat-Shamir challenger instead.
 */

#ifndef UNIZK_COMMON_RNG_H
#define UNIZK_COMMON_RNG_H

#include <cstdint>

#include "common/logging.h"

namespace unizk {

/** splitmix64: tiny, fast, excellent-distribution deterministic PRNG. */
class SplitMix64
{
  public:
    constexpr explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    constexpr uint64_t
    next()
    {
        uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); @p bound must be positive. */
    constexpr uint64_t
    nextBelow(uint64_t bound)
    {
        // [0, 0) is empty -- and ~0ULL / bound below would divide by
        // zero. Callers drawing indices from a container must check for
        // emptiness first.
        unizk_assert(bound >= 1, "nextBelow needs a positive bound");
        // Rejection sampling to avoid modulo bias.
        const uint64_t limit = bound * (~0ULL / bound);
        uint64_t v;
        do {
            v = next();
        } while (v >= limit);
        return v % bound;
    }

  private:
    uint64_t state;
};

} // namespace unizk

#endif // UNIZK_COMMON_RNG_H
