/**
 * @file
 * Process-wide thread pool and a deterministic parallel-for helper.
 *
 * The paper's CPU baselines are multi-threaded provers (Tables 1/3/5
 * report an 80-thread Xeon); this pool is what routes our prover hot
 * paths -- per-polynomial NTT/LDE, Merkle leaf and interior hashing,
 * quotient-domain constraint evaluation, and chunked batch inversion --
 * onto all available cores.
 *
 * Determinism guarantee: parallelFor() splits [begin, end) into
 * contiguous chunks whose boundaries are a pure function of the range,
 * the grain, and the pool size. Callers only use it for loops whose
 * chunks write disjoint outputs (or compute values that are exact
 * regardless of chunking, like batch inversion), so proofs and
 * challenger transcripts are bitwise identical for any thread count.
 * Reductions with order-dependent rounding are never run through the
 * pool.
 *
 * The pool is lazily created on first use. Thread count resolution
 * order: setGlobalThreadCount() (the `--threads` CLI flag), the
 * UNIZK_THREADS environment variable, then
 * std::thread::hardware_concurrency().
 */

#ifndef UNIZK_COMMON_THREAD_POOL_H
#define UNIZK_COMMON_THREAD_POOL_H

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace unizk {

/** Upper bound on configurable thread counts (env var or CLI). */
constexpr unsigned kMaxThreads = 4096;

/**
 * A fixed set of worker threads executing chunked loop bodies. One
 * instance (the global pool) is shared by every prover; standalone
 * instances exist only in tests.
 *
 * Concurrent submitters are allowed: parallelFor() serializes whole
 * regions through a submission mutex, so several service lanes may
 * drive the same pool and each region still runs exactly as it would
 * alone (preserving the determinism guarantee above). Serial code
 * between one lane's regions overlaps with another lane's regions.
 */
class ThreadPool
{
  public:
    /** Spawn @p threads - 1 workers (the caller is the last "thread"). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads a parallel region may use (>= 1). */
    unsigned threadCount() const { return thread_count_; }

    /** Join all workers and respawn with a new count. */
    void resize(unsigned threads);

    /**
     * Execute fn(chunk_begin, chunk_end) over contiguous chunks covering
     * [begin, end). Chunks hold at least @p grain indices (the last may
     * be short); with one thread, a single chunk, or when called from
     * inside a pool worker, the loop runs inline on the calling thread.
     * Blocks until every chunk has completed.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)> &fn);

  private:
    void workerLoop();

    // Held for the full extent of one parallel region (and by resize),
    // making submissions from multiple threads safe; acquired before
    // mutex_, never the other way around. Guards no data of its own —
    // it serializes whole regions — hence the lint suppression.
    // unizk-lint: disable-next-line=unguarded-mutex-member
    Mutex submit_mutex_ UNIZK_ACQUIRED_BEFORE(mutex_);

    std::vector<std::thread> workers_;
    // Written only by the constructor and resize() (which requires the
    // pool to be quiescent and holds submit_mutex_); read lock-free by
    // threadCount() and parallelFor's chunk math. Not annotated: the
    // quiescence contract, not a mutex, is what makes reads safe.
    unsigned thread_count_ = 1;

    Mutex mutex_;
    CondVar work_ready_;
    CondVar work_done_;
    // Current parallel region; guarded by mutex_ together with the
    // chunk cursor so workers and the submitting thread agree on state.
    const std::function<void(size_t, size_t)> *task_
        UNIZK_GUARDED_BY(mutex_) = nullptr;
    size_t region_begin_ UNIZK_GUARDED_BY(mutex_) = 0;
    size_t region_end_ UNIZK_GUARDED_BY(mutex_) = 0;
    size_t chunk_size_ UNIZK_GUARDED_BY(mutex_) = 0;
    size_t num_chunks_ UNIZK_GUARDED_BY(mutex_) = 0;
    size_t next_chunk_ UNIZK_GUARDED_BY(mutex_) = 0;
    size_t chunks_in_flight_ UNIZK_GUARDED_BY(mutex_) = 0;
    uint64_t generation_ UNIZK_GUARDED_BY(mutex_) = 0;
    bool shutting_down_ UNIZK_GUARDED_BY(mutex_) = false;
};

/** The process-wide pool (created on first use). */
ThreadPool &globalThreadPool();

/**
 * Set the global pool's thread count (0 = auto: UNIZK_THREADS env var,
 * else hardware concurrency). Resizes the pool if it already exists.
 */
void setGlobalThreadCount(unsigned threads);

/** Thread count the global pool uses (without forcing creation). */
unsigned globalThreadCount();

/** parallelFor on the global pool. */
inline void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &fn)
{
    globalThreadPool().parallelFor(begin, end, grain, fn);
}

} // namespace unizk

#endif // UNIZK_COMMON_THREAD_POOL_H
