#include "common/stats.h"

#include "common/logging.h"

namespace unizk {

const char *
kernelClassName(KernelClass c)
{
    switch (c) {
      case KernelClass::Polynomial:
        return "Polynomial";
      case KernelClass::Ntt:
        return "NTT";
      case KernelClass::MerkleTree:
        return "MerkleTree";
      case KernelClass::OtherHash:
        return "OtherHash";
      case KernelClass::LayoutTransform:
        return "LayoutTransform";
      default:
        unizk_panic("unknown kernel class");
    }
}

double
KernelTimeBreakdown::total() const
{
    double t = 0.0;
    for (size_t i = 0; i < kNumClasses; ++i)
        t += seconds(static_cast<KernelClass>(i));
    return t;
}

double
KernelTimeBreakdown::fraction(KernelClass c) const
{
    const double t = total();
    return t > 0.0 ? seconds(c) / t : 0.0;
}

KernelTimeBreakdown &
KernelTimeBreakdown::operator+=(const KernelTimeBreakdown &other)
{
    for (size_t i = 0; i < kNumClasses; ++i) {
        nanos_[i].fetch_add(
            other.nanos_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }
    return *this;
}

KernelTimeBreakdown
KernelTimeBreakdown::scaledBy(double factor) const
{
    KernelTimeBreakdown out;
    for (size_t i = 0; i < kNumClasses; ++i) {
        const double scaled =
            static_cast<double>(
                nanos_[i].load(std::memory_order_relaxed)) *
            factor;
        out.nanos_[i].store(static_cast<uint64_t>(scaled),
                            std::memory_order_relaxed);
    }
    return out;
}

} // namespace unizk
