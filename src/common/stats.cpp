#include "common/stats.h"

#include "common/logging.h"

namespace unizk {

const char *
kernelClassName(KernelClass c)
{
    switch (c) {
      case KernelClass::Polynomial:
        return "Polynomial";
      case KernelClass::Ntt:
        return "NTT";
      case KernelClass::MerkleTree:
        return "MerkleTree";
      case KernelClass::OtherHash:
        return "OtherHash";
      case KernelClass::LayoutTransform:
        return "LayoutTransform";
      default:
        unizk_panic("unknown kernel class");
    }
}

double
KernelTimeBreakdown::total() const
{
    double t = 0.0;
    for (const auto &s : seconds_)
        t += s;
    return t;
}

double
KernelTimeBreakdown::fraction(KernelClass c) const
{
    const double t = total();
    return t > 0.0 ? seconds(c) / t : 0.0;
}

KernelTimeBreakdown &
KernelTimeBreakdown::operator+=(const KernelTimeBreakdown &other)
{
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        seconds_[i] += other.seconds_[i];
    }
    return *this;
}

KernelTimeBreakdown
KernelTimeBreakdown::scaledBy(double factor) const
{
    KernelTimeBreakdown out;
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        out.seconds_[i] = seconds_[i] * factor;
    }
    return out;
}

} // namespace unizk
