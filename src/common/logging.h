/**
 * @file
 * Error-reporting and status-message helpers, in the spirit of gem5's
 * logging facilities.
 *
 * Conventions:
 *  - panic():  an internal invariant was violated (a bug in this library).
 *              Aborts so a debugger / core dump can capture the state.
 *  - fatal():  the simulation cannot continue due to a user-level error
 *              (bad configuration, invalid arguments). Exits with code 1.
 *  - warn():   something is suspicious but execution can continue.
 *  - inform(): normal operating status for the user.
 */

#ifndef UNIZK_COMMON_LOGGING_H
#define UNIZK_COMMON_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace unizk {

namespace detail {

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(std::string_view file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(std::string_view file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Abort with a message; use for internal invariant violations.
 * Implemented as a variadic function (not a macro) per the core guidelines;
 * call sites pass __FILE__/__LINE__ via the convenience wrappers below.
 */
template <typename... Args>
[[noreturn]] void
panicAt(std::string_view file, int line, Args &&...args)
{
    detail::panicImpl(file, line,
                      detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
fatalAt(std::string_view file, int line, Args &&...args)
{
    detail::fatalImpl(file, line,
                      detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatMessage(std::forward<Args>(args)...));
}

} // namespace unizk

// Location-capturing wrappers. These are the only macros in the library;
// they exist solely to capture __FILE__/__LINE__ at the call site.
#define unizk_panic(...) ::unizk::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define unizk_fatal(...) ::unizk::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Assert that holds in all build types (ZKP correctness is not optional). */
#define unizk_assert(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::unizk::panicAt(__FILE__, __LINE__, "assertion failed: " #cond  \
                             " " __VA_ARGS__);                               \
        }                                                                    \
    } while (false)

#endif // UNIZK_COMMON_LOGGING_H
