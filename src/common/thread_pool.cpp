#include "common/thread_pool.h"

#include "common/bits.h"
#include "common/env.h"
#include "common/logging.h"

namespace unizk {

namespace {

/** True on threads currently executing a pool chunk: nested parallel
 *  regions run inline instead of deadlocking on the shared pool. */
thread_local bool in_pool_worker = false;

unsigned
autoThreadCount()
{
    // Strict parse (trailing junk / sign / range rejected with a warn):
    // "8abc" or "4294967297" used to silently become 8 resp. a wrapped
    // unsigned. kMaxThreads matches resize()'s practical ceiling; any
    // rejected value falls back to hardware concurrency.
    if (const auto n = envUint("UNIZK_THREADS", 1, kMaxThreads))
        return static_cast<unsigned>(*n);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

// Requested count for the global pool; 0 = resolve via autoThreadCount.
Mutex global_mutex;
unsigned requested_threads UNIZK_GUARDED_BY(global_mutex) = 0;
ThreadPool *global_pool UNIZK_GUARDED_BY(global_mutex) = nullptr;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    unizk_assert(threads >= 1, "thread pool needs at least one thread");
    thread_count_ = threads;
    workers_.reserve(threads - 1);
    for (unsigned t = 0; t + 1 < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        shutting_down_ = true;
    }
    work_ready_.notifyAll();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::resize(unsigned threads)
{
    unizk_assert(threads >= 1, "thread pool needs at least one thread");
    MutexLock submit_lock(submit_mutex_);
    if (threads == thread_count_)
        return;
    {
        MutexLock lock(mutex_);
        unizk_assert(task_ == nullptr,
                     "cannot resize the pool inside a parallel region");
        shutting_down_ = true;
    }
    work_ready_.notifyAll();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
    {
        MutexLock lock(mutex_);
        shutting_down_ = false;
    }
    thread_count_ = threads;
    workers_.reserve(threads - 1);
    for (unsigned t = 0; t + 1 < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::workerLoop()
{
    // Balanced manual lock()/unlock() instead of a scoped lock: the
    // loop drops the mutex around each chunk body. The thread-safety
    // analysis checks that the mutex is held at every guarded-member
    // access and released on the one exit path.
    mutex_.lock();
    uint64_t seen_generation = generation_;
    for (;;) {
        while (!(shutting_down_ ||
                 (task_ != nullptr && generation_ != seen_generation)))
            work_ready_.wait(mutex_);
        if (shutting_down_) {
            mutex_.unlock();
            return;
        }
        seen_generation = generation_;
        // Drain chunks until the region's cursor is exhausted. Chunk
        // *boundaries* are fixed by the submitter; only the assignment
        // of chunks to threads is dynamic, and chunk outputs are
        // disjoint, so results do not depend on this schedule.
        while (task_ != nullptr && next_chunk_ < num_chunks_) {
            const size_t chunk = next_chunk_++;
            ++chunks_in_flight_;
            const auto *fn = task_;
            const size_t lo = region_begin_ + chunk * chunk_size_;
            const size_t hi = std::min(lo + chunk_size_, region_end_);
            mutex_.unlock();
            in_pool_worker = true;
            (*fn)(lo, hi);
            in_pool_worker = false;
            mutex_.lock();
            if (--chunks_in_flight_ == 0 && next_chunk_ >= num_chunks_)
                work_done_.notifyAll();
        }
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)> &fn)
{
    if (begin >= end)
        return;
    const size_t n = end - begin;
    if (grain == 0)
        grain = 1;

    // Chunk boundaries depend only on (n, grain, threadCount) -- never
    // on scheduling -- keeping the decomposition reproducible. Up to
    // 4 chunks per thread smooths out imbalanced bodies.
    size_t num_chunks = std::min<size_t>(ceilDiv(n, grain),
                                         size_t{4} * thread_count_);
    const size_t chunk_size = ceilDiv(n, num_chunks);
    num_chunks = ceilDiv(n, chunk_size);

    if (thread_count_ == 1 || num_chunks == 1 || in_pool_worker) {
        fn(begin, end);
        return;
    }

    // Whole regions from concurrent submitters (service worker lanes)
    // serialize here; within a region nothing else changes, so chunk
    // boundaries -- and therefore proof bytes -- stay schedule-free.
    MutexLock submit_lock(submit_mutex_);
    mutex_.lock();
    unizk_assert(task_ == nullptr, "parallel region already active");
    task_ = &fn;
    region_begin_ = begin;
    region_end_ = end;
    chunk_size_ = chunk_size;
    num_chunks_ = num_chunks;
    next_chunk_ = 0;
    chunks_in_flight_ = 0;
    ++generation_;
    mutex_.unlock();
    work_ready_.notifyAll();

    // The submitting thread works too.
    mutex_.lock();
    while (next_chunk_ < num_chunks_) {
        const size_t chunk = next_chunk_++;
        ++chunks_in_flight_;
        const size_t lo = region_begin_ + chunk * chunk_size_;
        const size_t hi = std::min(lo + chunk_size_, region_end_);
        mutex_.unlock();
        in_pool_worker = true;
        fn(lo, hi);
        in_pool_worker = false;
        mutex_.lock();
        --chunks_in_flight_;
    }
    while (chunks_in_flight_ != 0)
        work_done_.wait(mutex_);
    task_ = nullptr;
    mutex_.unlock();
}

ThreadPool &
globalThreadPool()
{
    MutexLock lock(global_mutex);
    if (global_pool == nullptr) {
        const unsigned n =
            requested_threads ? requested_threads : autoThreadCount();
        // Leaked deliberately: workers must outlive every static
        // destructor that might still prove something.
        global_pool = new ThreadPool(n);
    }
    return *global_pool;
}

void
setGlobalThreadCount(unsigned threads)
{
    MutexLock lock(global_mutex);
    requested_threads = threads;
    const unsigned n = threads ? threads : autoThreadCount();
    if (global_pool == nullptr)
        global_pool = new ThreadPool(n);
    else
        global_pool->resize(n);
}

unsigned
globalThreadCount()
{
    {
        MutexLock lock(global_mutex);
        if (global_pool != nullptr)
            return global_pool->threadCount();
        if (requested_threads)
            return requested_threads;
    }
    return autoThreadCount();
}

} // namespace unizk
