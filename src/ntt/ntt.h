/**
 * @file
 * Number-theoretic transforms over the Goldilocks field.
 *
 * Terminology follows the paper (Section 5.1):
 *  - NTT^NN: natural-order input, natural-order output.
 *  - NTT^NR: natural-order input, bit-reversed output (DIF dataflow).
 *  - NTT^RN: bit-reversed input, natural-order output (DIT dataflow).
 *  - coset variants evaluate over a multiplicative coset g*H instead of
 *    the subgroup H, implemented by pre-scaling coefficients with g^i
 *    (forward) or post-scaling with g^-i (inverse).
 *
 * The protocol layer uses iNTT^NN to move polynomials from value to
 * coefficient form, and coset-NTT^NR for the low-degree extension (LDE)
 * inside FRI, exactly the two variants highlighted in Figure 1 of the
 * paper.
 *
 * Engine (this PR's shape, mirroring SZKP/zkPHIRE twiddle datapaths):
 * every transform consumes precomputed twiddle tables from the registry
 * in ntt/twiddles.h, so butterflies are table lookups with no
 * loop-carried `w *= w_len` dependency. Large transforms run
 * pool-parallel through a cache-blocked four-step decomposition: the
 * leading radix-2 stages (the "column NTTs plus inter-dimension
 * twiddles" of the four-step scheme, executed stage by stage across the
 * whole pool) peel the transform into independent contiguous cache-sized
 * sub-transforms (the "row NTTs"), which then run one-per-chunk on the
 * pool with twiddles read at stride from the same table. Every element
 * sees the same butterflies with the same twiddle values regardless of
 * thread count or cache setting, so proofs stay byte-identical.
 *
 * The batch entry points (inttBatchNN / nttBatchNR / ldeBatch /
 * ldeBatchNN) commit a whole set of polynomials with one twiddle
 * acquisition and pick the parallel axis automatically: many small
 * polynomials spread across the pool one-per-worker; the few huge ones
 * recursion produces run sequentially, each transform itself
 * pool-parallel.
 */

#ifndef UNIZK_NTT_NTT_H
#define UNIZK_NTT_NTT_H

#include <cstdint>
#include <vector>

#include "field/extension.h"
#include "field/goldilocks.h"
#include "ntt/twiddles.h"

namespace unizk {

/** Default coset shift: the multiplicative-group generator, as in Plonky2. */
inline Fp
defaultCosetShift()
{
    return Fp(Fp::multiplicativeGenerator);
}

/**
 * In-place forward NTT, natural input -> bit-reversed output
 * (decimation-in-frequency). Size must be a power of two.
 */
void nttNR(std::vector<Fp> &a);

/** In-place forward NTT, bit-reversed input -> natural output (DIT). */
void nttRN(std::vector<Fp> &a);

/** In-place forward NTT, natural input -> natural output. */
void nttNN(std::vector<Fp> &a);

/** In-place inverse NTT, natural -> natural. */
void inttNN(std::vector<Fp> &a);

/** In-place inverse NTT, bit-reversed input -> natural output. */
void inttRN(std::vector<Fp> &a);

/** In-place inverse NTT, natural input -> bit-reversed output. */
void inttNR(std::vector<Fp> &a);

/**
 * Coset forward NTT, natural -> natural: evaluates the polynomial with
 * coefficients @p a over the coset shift*H.
 */
void cosetNttNN(std::vector<Fp> &a, Fp shift);

/** Coset forward NTT, natural -> bit-reversed (the LDE workhorse). */
void cosetNttNR(std::vector<Fp> &a, Fp shift);

/** Coset inverse NTT, natural -> natural. */
void cosetInttNN(std::vector<Fp> &a, Fp shift);

/** Coset inverse NTT, bit-reversed input -> natural coefficients. */
void cosetInttRN(std::vector<Fp> &a, Fp shift);

/**
 * Low-degree extension: given N coefficients, zero-pad to N*blowup and
 * evaluate over the coset shift*H' (|H'| = N*blowup). Output is in
 * bit-reversed order, matching the NTT^NR step in FRI (paper Fig. 1,
 * step 2).
 */
std::vector<Fp> lowDegreeExtension(const std::vector<Fp> &coeffs,
                                   uint32_t blowup, Fp shift);

/**
 * Batch API: transforms over a set of equally-sized polynomials with a
 * single twiddle acquisition and automatic parallel-axis selection (see
 * file docs). All variants require every polynomial to share one
 * power-of-two size.
 * @{
 */

/** In-place iNTT^NN of every polynomial (the commit-from-values step). */
void inttBatchNN(std::vector<std::vector<Fp>> &polys);

/** In-place NTT^NR of every polynomial. */
void nttBatchNR(std::vector<std::vector<Fp>> &polys);

/**
 * Coset LDE of every coefficient vector, bit-reversed output (the
 * commit step of FRI): out[p] = lowDegreeExtension(coeffs[p], ...).
 */
std::vector<std::vector<Fp>> ldeBatch(
    const std::vector<std::vector<Fp>> &coeffs, uint32_t blowup, Fp shift);

/**
 * Coset LDE with natural-order output (the quotient-evaluation domain
 * used by the Plonk/Stark constraint paths). Consumes @p coeffs.
 */
std::vector<std::vector<Fp>> ldeBatchNN(std::vector<std::vector<Fp>> coeffs,
                                        uint32_t blowup, Fp shift);

/** @} */

/**
 * Reference quadratic-time DFT used by the test suite as ground truth.
 * Output is in natural order: out[i] = sum_j a[j] * (shift*w^i)^j.
 */
std::vector<Fp> naiveDft(const std::vector<Fp> &a, Fp shift);

/** Reference inverse of naiveDft. */
std::vector<Fp> naiveIdft(const std::vector<Fp> &a, Fp shift);

/**
 * Seed-era scalar reference path: single-thread butterfly cores with
 * per-call root recomputation and the sequential twiddle chain. Kept
 * (only) so bench_ntt can report the engine's speedup against the exact
 * code the repository shipped before the twiddle-cached engine, and as
 * an extra equivalence oracle cheaper than naiveDft.
 * @{
 */
void scalarNttNR(std::vector<Fp> &a);
std::vector<Fp> scalarLowDegreeExtension(const std::vector<Fp> &coeffs,
                                         uint32_t blowup, Fp shift);
/** @} */

/**
 * Multi-dimensional NTT decomposition (the SAM scheme the UniZK NTT
 * mapper uses, Section 5.1): computes an NTT^NN of size N by decomposing
 * into dims of size at most 2^log_n_max, performing small NTTs along each
 * dimension with inter-dimension twiddle multiplications in between.
 *
 * Functionally identical to nttNN; exists to validate the hardware
 * mapping's dataflow and to let tests pin down the inter-dimension
 * twiddle math used by the simulator. Follows the decomposeNttDims plan
 * exactly, so the software dataflow and the simulator's cycle estimates
 * stay in lockstep.
 */
void multidimNttNN(std::vector<Fp> &a, uint32_t log_n_max);

/**
 * Plan of a multi-dimensional decomposition: the log-sizes of each
 * dimension, innermost first. Shared between multidimNttNN and the
 * simulator's NTT mapper.
 *
 * Dimensions are balanced (sizes differ by at most one bit, larger dims
 * first) rather than greedily filled: a greedy split of log 17 with max
 * 8 would yield [8, 8, 1], whose degenerate trailing dimension skews
 * the mapper's cycle estimates versus the paper's balanced splits; the
 * balanced plan is [6, 6, 5].
 */
std::vector<uint32_t> decomposeNttDims(uint32_t log_size,
                                       uint32_t log_n_max);

/**
 * Extension-field inverse NTTs. The evaluation domain still lives in the
 * base field (roots of unity are base-field elements), so twiddles are
 * Fp while values are Fp2. Used for the FRI final polynomial.
 * @{
 */
void inttNNExt(std::vector<Fp2> &a);
void cosetInttNNExt(std::vector<Fp2> &a, Fp shift);
/** @} */

} // namespace unizk

#endif // UNIZK_NTT_NTT_H
