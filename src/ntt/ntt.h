/**
 * @file
 * Number-theoretic transforms over the Goldilocks field.
 *
 * Terminology follows the paper (Section 5.1):
 *  - NTT^NN: natural-order input, natural-order output.
 *  - NTT^NR: natural-order input, bit-reversed output (DIF dataflow).
 *  - NTT^RN: bit-reversed input, natural-order output (DIT dataflow).
 *  - coset variants evaluate over a multiplicative coset g*H instead of
 *    the subgroup H, implemented by pre-scaling coefficients with g^i
 *    (forward) or post-scaling with g^-i (inverse).
 *
 * The protocol layer uses iNTT^NN to move polynomials from value to
 * coefficient form, and coset-NTT^NR for the low-degree extension (LDE)
 * inside FRI, exactly the two variants highlighted in Figure 1 of the
 * paper.
 */

#ifndef UNIZK_NTT_NTT_H
#define UNIZK_NTT_NTT_H

#include <cstdint>
#include <vector>

#include "field/extension.h"
#include "field/goldilocks.h"

namespace unizk {

/** Default coset shift: the multiplicative-group generator, as in Plonky2. */
inline Fp
defaultCosetShift()
{
    return Fp(Fp::multiplicativeGenerator);
}

/**
 * In-place forward NTT, natural input -> bit-reversed output
 * (decimation-in-frequency). Size must be a power of two.
 */
void nttNR(std::vector<Fp> &a);

/** In-place forward NTT, bit-reversed input -> natural output (DIT). */
void nttRN(std::vector<Fp> &a);

/** In-place forward NTT, natural input -> natural output. */
void nttNN(std::vector<Fp> &a);

/** In-place inverse NTT, natural -> natural. */
void inttNN(std::vector<Fp> &a);

/** In-place inverse NTT, bit-reversed input -> natural output. */
void inttRN(std::vector<Fp> &a);

/** In-place inverse NTT, natural input -> bit-reversed output. */
void inttNR(std::vector<Fp> &a);

/**
 * Coset forward NTT, natural -> natural: evaluates the polynomial with
 * coefficients @p a over the coset shift*H.
 */
void cosetNttNN(std::vector<Fp> &a, Fp shift);

/** Coset forward NTT, natural -> bit-reversed (the LDE workhorse). */
void cosetNttNR(std::vector<Fp> &a, Fp shift);

/** Coset inverse NTT, natural -> natural. */
void cosetInttNN(std::vector<Fp> &a, Fp shift);

/** Coset inverse NTT, bit-reversed input -> natural coefficients. */
void cosetInttRN(std::vector<Fp> &a, Fp shift);

/**
 * Low-degree extension: given N coefficients, zero-pad to N*blowup and
 * evaluate over the coset shift*H' (|H'| = N*blowup). Output is in
 * bit-reversed order, matching the NTT^NR step in FRI (paper Fig. 1,
 * step 2).
 */
std::vector<Fp> lowDegreeExtension(const std::vector<Fp> &coeffs,
                                   uint32_t blowup, Fp shift);

/**
 * Reference quadratic-time DFT used by the test suite as ground truth.
 * Output is in natural order: out[i] = sum_j a[j] * (shift*w^i)^j.
 */
std::vector<Fp> naiveDft(const std::vector<Fp> &a, Fp shift);

/** Reference inverse of naiveDft. */
std::vector<Fp> naiveIdft(const std::vector<Fp> &a, Fp shift);

/**
 * Multi-dimensional NTT decomposition (the SAM scheme the UniZK NTT
 * mapper uses, Section 5.1): computes an NTT^NN of size N by decomposing
 * into dims of size at most 2^log_n_max, performing small NTTs along each
 * dimension with inter-dimension twiddle multiplications in between.
 *
 * Functionally identical to nttNN; exists to validate the hardware
 * mapping's dataflow and to let tests pin down the inter-dimension
 * twiddle math used by the simulator.
 */
void multidimNttNN(std::vector<Fp> &a, uint32_t log_n_max);

/**
 * Plan of a multi-dimensional decomposition: the log-sizes of each
 * dimension, innermost first. Shared between multidimNttNN and the
 * simulator's NTT mapper.
 */
std::vector<uint32_t> decomposeNttDims(uint32_t log_size,
                                       uint32_t log_n_max);

/**
 * Extension-field inverse NTTs. The evaluation domain still lives in the
 * base field (roots of unity are base-field elements), so twiddles are
 * Fp while values are Fp2. Used for the FRI final polynomial.
 * @{
 */
void inttNNExt(std::vector<Fp2> &a);
void cosetInttNNExt(std::vector<Fp2> &a, Fp shift);
/** @} */

} // namespace unizk

#endif // UNIZK_NTT_NTT_H
