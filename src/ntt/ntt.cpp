#include "ntt/ntt.h"

#include "common/bits.h"
#include "field/field_checks.h"
#include "obs/obs.h"

namespace unizk {

namespace {

// The twiddle factors below are all powers of Fp::primitiveRootOfUnity;
// verify at compile time that the root tower this file builds on is
// consistent with the field's declared 2-adicity (the full order checks
// live in field_checks.h). A wrong root would make every NTT in the
// repository produce well-formed but wrong evaluations.
static_assert(selfcheck::isPrimitiveRootOfOrderPow2(
                  Fp::primitiveRootOfUnity(Fp::twoAdicity),
                  Fp::twoAdicity),
              "NTT twiddle base root order mismatch with twoAdicity");
static_assert(Fp::primitiveRootOfUnity(Fp::twoAdicity - 1) ==
                  Fp::primitiveRootOfUnity(Fp::twoAdicity).squared(),
              "NTT root tower is not closed under squaring");
// The inverse twiddle used by every iNTT really is the inverse root.
static_assert((Fp::primitiveRootOfUnity(16).inverse() *
               Fp::primitiveRootOfUnity(16)).isOne(),
              "inverse twiddle root is wrong");

/**
 * Decimation-in-frequency butterfly network (Gentleman-Sande): natural
 * input order, bit-reversed output order.
 * @param root a primitive n-th root of unity (or its inverse for iNTT).
 */
void
difCore(std::vector<Fp> &a, Fp root)
{
    // Transforms run inside pool workers, so this span gives the trace
    // a per-thread NTT lane.
    UNIZK_SPAN("ntt/dif");
    UNIZK_COUNTER_ADD("ntt.transforms", 1);
    const size_t n = a.size();
    unizk_assert(isPowerOfTwo(n), "NTT size must be a power of two");
    Fp w_len = root;
    for (size_t len = n; len >= 2; len >>= 1) {
        const size_t half = len / 2;
        for (size_t start = 0; start < n; start += len) {
            Fp w = Fp::one();
            for (size_t j = 0; j < half; ++j) {
                const Fp u = a[start + j];
                const Fp v = a[start + j + half];
                a[start + j] = u + v;
                a[start + j + half] = (u - v) * w;
                w *= w_len;
            }
        }
        w_len = w_len.squared();
    }
}

/**
 * Decimation-in-time butterfly network (Cooley-Tukey): bit-reversed input
 * order, natural output order.
 */
void
ditCore(std::vector<Fp> &a, Fp root)
{
    UNIZK_SPAN("ntt/dit");
    UNIZK_COUNTER_ADD("ntt.transforms", 1);
    const size_t n = a.size();
    unizk_assert(isPowerOfTwo(n), "NTT size must be a power of two");
    const uint32_t log_n = log2Exact(n);
    // Twiddle for stage with block length `len` is root^(n/len); build
    // them from the smallest upwards by repeated squaring of `root`.
    std::vector<Fp> stage_root(log_n);
    Fp r = root;
    for (uint32_t s = log_n; s-- > 0;) {
        stage_root[s] = r; // stage s handles len = 2^(log_n - s)... see below
        r = r.squared();
    }
    // stage_root[0] = root^(n/2) (for len=2) up to
    // stage_root[log_n-1] = root (for len=n).
    uint32_t s = 0;
    for (size_t len = 2; len <= n; len <<= 1, ++s) {
        const size_t half = len / 2;
        const Fp w_len = stage_root[s];
        for (size_t start = 0; start < n; start += len) {
            Fp w = Fp::one();
            for (size_t j = 0; j < half; ++j) {
                const Fp u = a[start + j];
                const Fp v = a[start + j + half] * w;
                a[start + j] = u + v;
                a[start + j + half] = u - v;
                w *= w_len;
            }
        }
    }
}

/** Multiply every element by the same constant. */
void
scaleAll(std::vector<Fp> &a, Fp c)
{
    for (auto &x : a)
        x *= c;
}

/** Multiply element i by shift^i. */
void
scaleByCosetPowers(std::vector<Fp> &a, Fp shift)
{
    Fp p = Fp::one();
    for (auto &x : a) {
        x *= p;
        p *= shift;
    }
}

Fp
forwardRoot(size_t n)
{
    return Fp::primitiveRootOfUnity(log2Exact(n));
}

Fp
inverseRoot(size_t n)
{
    return forwardRoot(n).inverse();
}

Fp
sizeInverse(size_t n)
{
    return Fp(static_cast<uint64_t>(n)).inverse();
}

/**
 * Guard every public transform entry point against degenerate sizes
 * with a clear message (log2Exact(0) would otherwise fire a confusing
 * "non-power-of-two" assert deep in the twiddle computation).
 */
void
checkTransformSize(size_t n)
{
    unizk_assert(n != 0, "NTT on an empty vector");
    unizk_assert(isPowerOfTwo(n), "NTT size must be a power of two");
}

} // namespace

void
nttNR(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    difCore(a, forwardRoot(a.size()));
}

void
nttRN(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    ditCore(a, forwardRoot(a.size()));
}

void
nttNN(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    difCore(a, forwardRoot(a.size()));
    bitReversePermute(a);
}

void
inttNN(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    difCore(a, inverseRoot(a.size()));
    bitReversePermute(a);
    scaleAll(a, sizeInverse(a.size()));
}

void
inttRN(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    ditCore(a, inverseRoot(a.size()));
    scaleAll(a, sizeInverse(a.size()));
}

void
inttNR(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    difCore(a, inverseRoot(a.size()));
    scaleAll(a, sizeInverse(a.size()));
}

void
cosetNttNN(std::vector<Fp> &a, Fp shift)
{
    scaleByCosetPowers(a, shift);
    nttNN(a);
}

void
cosetNttNR(std::vector<Fp> &a, Fp shift)
{
    scaleByCosetPowers(a, shift);
    nttNR(a);
}

void
cosetInttNN(std::vector<Fp> &a, Fp shift)
{
    inttNN(a);
    scaleByCosetPowers(a, shift.inverse());
}

void
cosetInttRN(std::vector<Fp> &a, Fp shift)
{
    inttRN(a);
    scaleByCosetPowers(a, shift.inverse());
}

std::vector<Fp>
lowDegreeExtension(const std::vector<Fp> &coeffs, uint32_t blowup, Fp shift)
{
    checkTransformSize(coeffs.size());
    unizk_assert(isPowerOfTwo(blowup), "blowup must be a power of two");
    std::vector<Fp> ext(coeffs);
    ext.resize(coeffs.size() * blowup, Fp::zero());
    cosetNttNR(ext, shift);
    return ext;
}

std::vector<Fp>
naiveDft(const std::vector<Fp> &a, Fp shift)
{
    const size_t n = a.size();
    const Fp w = forwardRoot(n);
    std::vector<Fp> out(n);
    Fp wi = Fp::one();
    for (size_t i = 0; i < n; ++i) {
        const Fp point = shift * wi;
        Fp acc;
        Fp xp = Fp::one();
        for (size_t j = 0; j < n; ++j) {
            acc += a[j] * xp;
            xp *= point;
        }
        out[i] = acc;
        wi *= w;
    }
    return out;
}

std::vector<Fp>
naiveIdft(const std::vector<Fp> &a, Fp shift)
{
    const size_t n = a.size();
    const Fp w_inv = inverseRoot(n);
    const Fp n_inv = sizeInverse(n);
    const Fp s_inv = shift.inverse();
    std::vector<Fp> out(n);
    for (size_t j = 0; j < n; ++j) {
        Fp acc;
        for (size_t i = 0; i < n; ++i)
            acc += a[i] * w_inv.pow(static_cast<uint64_t>(i) * j % n);
        out[j] = acc * n_inv * s_inv.pow(j);
    }
    return out;
}

void
inttNNExt(std::vector<Fp2> &a)
{
    const size_t n = a.size();
    checkTransformSize(n);
    // DIF core over Fp2 values with Fp twiddles, then bit-reverse and
    // scale, mirroring inttNN.
    Fp w_len = inverseRoot(n);
    for (size_t len = n; len >= 2; len >>= 1) {
        const size_t half = len / 2;
        for (size_t start = 0; start < n; start += len) {
            Fp w = Fp::one();
            for (size_t j = 0; j < half; ++j) {
                const Fp2 u = a[start + j];
                const Fp2 v = a[start + j + half];
                a[start + j] = u + v;
                a[start + j + half] = (u - v) * w;
                w *= w_len;
            }
        }
        w_len = w_len.squared();
    }
    bitReversePermute(a);
    const Fp n_inv = sizeInverse(n);
    for (auto &x : a)
        x = x * n_inv;
}

void
cosetInttNNExt(std::vector<Fp2> &a, Fp shift)
{
    inttNNExt(a);
    const Fp s_inv = shift.inverse();
    Fp p = Fp::one();
    for (auto &x : a) {
        x = x * p;
        p *= s_inv;
    }
}

std::vector<uint32_t>
decomposeNttDims(uint32_t log_size, uint32_t log_n_max)
{
    unizk_assert(log_n_max >= 1, "dimension size must be at least 2");
    std::vector<uint32_t> dims;
    uint32_t remaining = log_size;
    while (remaining > 0) {
        const uint32_t d = std::min(remaining, log_n_max);
        dims.push_back(d);
        remaining -= d;
    }
    return dims;
}

void
multidimNttNN(std::vector<Fp> &a, uint32_t log_n_max)
{
    const size_t n = a.size();
    checkTransformSize(n);
    const uint32_t log_n = log2Exact(n);
    if (log_n <= log_n_max) {
        nttNN(a);
        return;
    }

    // Split N = n1 * n2 with n1 the (innermost) hardware-sized factor.
    const size_t n1 = size_t{1} << log_n_max;
    const size_t n2 = n / n1;
    const Fp w = forwardRoot(n);

    // Inner DFTs along j2 for each fixed j1 (stride-n1 subsequences),
    // then inter-dimension twiddles w^(j1*k2) -- the element-wise
    // multiplications the hardware performs between decomposed dims.
    std::vector<Fp> col(n2);
    Fp w_j1 = Fp::one(); // w^j1
    for (size_t j1 = 0; j1 < n1; ++j1) {
        for (size_t j2 = 0; j2 < n2; ++j2)
            col[j2] = a[n1 * j2 + j1];
        multidimNttNN(col, log_n_max);
        Fp tw = Fp::one(); // w^(j1*k2)
        for (size_t k2 = 0; k2 < n2; ++k2) {
            a[n1 * k2 + j1] = col[k2] * tw;
            tw *= w_j1;
        }
        w_j1 *= w;
    }

    // Outer size-n1 NTTs along j1 for each k2; outputs scatter to
    // X[n2*k1 + k2].
    std::vector<Fp> out(n);
    std::vector<Fp> row(n1);
    for (size_t k2 = 0; k2 < n2; ++k2) {
        for (size_t j1 = 0; j1 < n1; ++j1)
            row[j1] = a[n1 * k2 + j1];
        nttNN(row);
        for (size_t k1 = 0; k1 < n1; ++k1)
            out[n2 * k1 + k2] = row[k1];
    }
    a = std::move(out);
}

} // namespace unizk
