#include "ntt/ntt.h"

#include <type_traits>

#include "common/bits.h"
#include "common/thread_pool.h"
#include "field/field_checks.h"
#include "obs/obs.h"

namespace unizk {

namespace {

// The twiddle factors below are all powers of Fp::primitiveRootOfUnity;
// verify at compile time that the root tower this file builds on is
// consistent with the field's declared 2-adicity (the full order checks
// live in field_checks.h). A wrong root would make every NTT in the
// repository produce well-formed but wrong evaluations.
static_assert(selfcheck::isPrimitiveRootOfOrderPow2(
                  Fp::primitiveRootOfUnity(Fp::twoAdicity),
                  Fp::twoAdicity),
              "NTT twiddle base root order mismatch with twoAdicity");
static_assert(Fp::primitiveRootOfUnity(Fp::twoAdicity - 1) ==
                  Fp::primitiveRootOfUnity(Fp::twoAdicity).squared(),
              "NTT root tower is not closed under squaring");
// The inverse twiddle used by every iNTT really is the inverse root.
static_assert((Fp::primitiveRootOfUnity(16).inverse() *
               Fp::primitiveRootOfUnity(16)).isOne(),
              "inverse twiddle root is wrong");

/**
 * Cache-block size for the four-step decomposition: once the leading
 * stages have peeled the transform into independent sub-transforms of
 * this many elements (64 KiB of Fp), each sub-transform runs serially
 * inside one pool chunk and stays resident in L1/L2.
 */
constexpr uint32_t block_log = 13;

/** Transforms below this size never leave the calling thread. */
constexpr size_t par_min_size = size_t{1} << 15;

/** Chunk grain for stage-parallel butterfly sweeps and scaling passes. */
constexpr size_t stage_grain = size_t{1} << 12;

/**
 * One DIF (Gentleman-Sande) butterfly. The Fp instantiation uses the
 * branchless field primitives: butterfly inputs are effectively random
 * field elements, so the operators' carry branches are ~50/50 and the
 * mispredictions roughly halve inner-loop throughput (measured ~11 ->
 * ~5 ns/butterfly on the bench machine). Same canonical values either
 * way. The generic path serves Fp2 (short FRI final polynomials only).
 */
template <typename T>
inline void
difButterfly(T &lo, T &hi, Fp w)
{
    const T u = lo;
    const T v = hi;
    if constexpr (std::is_same<T, Fp>::value) {
        lo = Fp::addBranchless(u, v);
        hi = Fp::mulBranchless(Fp::subBranchless(u, v), w);
    } else {
        lo = u + v;
        hi = (u - v) * w;
    }
}

/** One DIT (Cooley-Tukey) butterfly; see difButterfly. */
template <typename T>
inline void
ditButterfly(T &lo, T &hi, Fp w)
{
    const T u = lo;
    T v;
    if constexpr (std::is_same<T, Fp>::value) {
        v = Fp::mulBranchless(hi, w);
        lo = Fp::addBranchless(u, v);
        hi = Fp::subBranchless(u, v);
    } else {
        v = hi * w;
        lo = u + v;
        hi = u - v;
    }
}

/**
 * Table-driven decimation-in-frequency butterfly network
 * (Gentleman-Sande): natural input order, bit-reversed output order.
 *
 * @param tw    twiddle table with tw[j] = root^j for a transform of
 *              size n * stride0 (stride0 = 1 when the table matches n).
 * @param stride0 table stride of the size-n stage: the stage with block
 *              length `len` reads tw[j * stride0 * (n/len)].
 *
 * No loop-carried dependency: every butterfly reads its twiddle straight
 * from the table, so the compiler can pipeline the inner loop and
 * callers can run disjoint (block, j) chunks concurrently.
 */
template <typename T>
void
difTabled(T *a, size_t n, const Fp *tw, size_t stride0)
{
    size_t step = stride0;
    for (size_t len = n; len >= 2; len >>= 1) {
        const size_t half = len / 2;
        for (size_t start = 0; start < n; start += len) {
            T *lo = a + start;
            T *hi = lo + half;
            for (size_t j = 0; j < half; ++j)
                difButterfly(lo[j], hi[j], tw[j * step]);
        }
        step <<= 1;
    }
}

/**
 * Table-driven decimation-in-time butterfly network (Cooley-Tukey):
 * bit-reversed input order, natural output order. Same table layout as
 * difTabled.
 */
template <typename T>
void
ditTabled(T *a, size_t n, const Fp *tw, size_t stride0)
{
    size_t step = stride0 * (n / 2);
    for (size_t len = 2; len <= n; len <<= 1) {
        const size_t half = len / 2;
        for (size_t start = 0; start < n; start += len) {
            T *lo = a + start;
            T *hi = lo + half;
            for (size_t j = 0; j < half; ++j)
                ditButterfly(lo[j], hi[j], tw[j * step]);
        }
        step >>= 1;
    }
}

/** True when this transform should engage the pool. */
bool
runParallel(size_t n, bool allow_parallel)
{
    return allow_parallel && n >= par_min_size && globalThreadCount() > 1;
}

/**
 * Pool-parallel DIF via the cache-blocked four-step decomposition: the
 * leading stages (each a full sweep of independent butterflies — the
 * column NTTs fused with the inter-dimension twiddle multiplications of
 * the four-step scheme) run stage-by-stage across the pool; the
 * remaining stages form n/2^block_log independent contiguous
 * sub-transforms (the row NTTs) that run one per chunk with twiddles
 * read at stride from the same table. Identical butterflies and twiddle
 * values to the serial core, so results are thread-count invariant.
 */
void
difRun(Fp *data, size_t n, const Fp *tw, bool allow_parallel)
{
    UNIZK_SPAN("ntt/dif");
    UNIZK_COUNTER_ADD("ntt.transforms", 1);
    if (n < 2)
        return;
    if (!runParallel(n, allow_parallel)) {
        difTabled(data, n, tw, 1);
        return;
    }
    size_t len = n;
    size_t step = 1;
    const size_t block = size_t{1} << block_log;
    while (len > block) {
        const size_t half = len / 2;
        const size_t cur_len = len;
        const size_t cur_step = step;
        parallelFor(0, n / 2, stage_grain, [&](size_t lo, size_t hi) {
            // Decode (block, offset) once per chunk, then step
            // incrementally: a divide per butterfly would dominate the
            // branchless butterfly itself.
            size_t b = lo / half;
            size_t j = lo - b * half;
            for (size_t idx = lo; idx < hi; ++idx) {
                Fp *base = data + b * cur_len;
                difButterfly(base[j], base[j + half], tw[j * cur_step]);
                if (++j == half) {
                    j = 0;
                    ++b;
                }
            }
        });
        len >>= 1;
        step <<= 1;
    }
    const size_t sub = len;
    const size_t sub_stride = step;
    parallelFor(0, n / sub, /*grain=*/1, [&](size_t lo, size_t hi) {
        for (size_t b = lo; b < hi; ++b)
            difTabled(data + b * sub, sub, tw, sub_stride);
    });
}

/** Pool-parallel DIT; the mirror image of difRun (blocks first). */
void
ditRun(Fp *data, size_t n, const Fp *tw, bool allow_parallel)
{
    UNIZK_SPAN("ntt/dit");
    UNIZK_COUNTER_ADD("ntt.transforms", 1);
    if (n < 2)
        return;
    if (!runParallel(n, allow_parallel)) {
        ditTabled(data, n, tw, 1);
        return;
    }
    const size_t block = size_t{1} << block_log;
    parallelFor(0, n / block, /*grain=*/1, [&](size_t lo, size_t hi) {
        for (size_t b = lo; b < hi; ++b)
            ditTabled(data + b * block, block, tw, n / block);
    });
    for (size_t len = 2 * block; len <= n; len <<= 1) {
        const size_t half = len / 2;
        const size_t cur_step = n / len;
        parallelFor(0, n / 2, stage_grain, [&](size_t lo, size_t hi) {
            size_t b = lo / half;
            size_t j = lo - b * half;
            for (size_t idx = lo; idx < hi; ++idx) {
                Fp *base = data + b * len;
                ditButterfly(base[j], base[j + half], tw[j * cur_step]);
                if (++j == half) {
                    j = 0;
                    ++b;
                }
            }
        });
    }
}

/** Multiply every element by the same constant (pool-chunked). */
void
scaleAll(std::vector<Fp> &a, Fp c, bool allow_parallel)
{
    if (!runParallel(a.size(), allow_parallel)) {
        for (auto &x : a)
            x = Fp::mulBranchless(x, c);
        return;
    }
    Fp *data = a.data();
    parallelFor(0, a.size(), stage_grain, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            data[i] = Fp::mulBranchless(data[i], c);
    });
}

/**
 * Multiply element i by extra * shift^i. Uses the cached coset-power
 * table when @p shift is the standard coset shift and the table covers
 * this size; otherwise each chunk seeds its power chain with a pow()
 * jump. Field arithmetic is exact, so both paths (and any chunking)
 * produce identical canonical values.
 */
void
applyCosetScale(std::vector<Fp> &a, Fp shift, Fp extra,
                const std::vector<Fp> &table, bool allow_parallel)
{
    const size_t n = a.size();
    Fp *data = a.data();
    const Fp *pows =
        table.size() == n && !table.empty() ? table.data() : nullptr;
    const bool par = runParallel(n, allow_parallel);

    auto chunk = [&](size_t lo, size_t hi) {
        if (pows) {
            for (size_t i = lo; i < hi; ++i) {
                data[i] = Fp::mulBranchless(
                    data[i], Fp::mulBranchless(pows[i], extra));
            }
        } else {
            Fp p = shift.pow(lo) * extra;
            for (size_t i = lo; i < hi; ++i) {
                data[i] = Fp::mulBranchless(data[i], p);
                p *= shift;
            }
        }
    };
    if (par)
        parallelFor(0, n, stage_grain, chunk);
    else
        chunk(0, n);
}

/** Bit-reverse permutation, pool-chunked: each swap pair (i, rev(i)) is
 *  touched exactly once, by the chunk owning its smaller index. */
template <typename T>
void
bitrevPermute(std::vector<T> &v, bool allow_parallel)
{
    const size_t n = v.size();
    if (!runParallel(n, allow_parallel)) {
        bitReversePermute(v);
        return;
    }
    const uint32_t bits = log2Exact(n);
    T *data = v.data();
    parallelFor(0, n, stage_grain, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            const size_t j = reverseBits(i, bits);
            if (j > i)
                std::swap(data[i], data[j]);
        }
    });
}

Fp
forwardRoot(size_t n)
{
    return Fp::primitiveRootOfUnity(log2Exact(n));
}

Fp
inverseRoot(size_t n)
{
    return forwardRoot(n).inverse();
}

/**
 * Guard every public transform entry point against degenerate sizes
 * with a clear message (log2Exact(0) would otherwise fire a confusing
 * "non-power-of-two" assert deep in the twiddle computation).
 */
void
checkTransformSize(size_t n)
{
    unizk_assert(n != 0, "NTT on an empty vector");
    unizk_assert(isPowerOfTwo(n), "NTT size must be a power of two");
}

// ---- Table-threaded internal entry points. The public API acquires a
// table once and forwards here; the batch API shares one acquisition
// across every polynomial.

void
nttNRImpl(std::vector<Fp> &a, const TwiddleTable &t, bool par)
{
    difRun(a.data(), a.size(), t.fwd.data(), par);
}

void
nttRNImpl(std::vector<Fp> &a, const TwiddleTable &t, bool par)
{
    ditRun(a.data(), a.size(), t.fwd.data(), par);
}

void
nttNNImpl(std::vector<Fp> &a, const TwiddleTable &t, bool par)
{
    difRun(a.data(), a.size(), t.fwd.data(), par);
    bitrevPermute(a, par);
}

void
inttNNImpl(std::vector<Fp> &a, const TwiddleTable &t, bool par)
{
    difRun(a.data(), a.size(), t.inv.data(), par);
    bitrevPermute(a, par);
    scaleAll(a, t.sizeInv, par);
}

void
cosetNttNRImpl(std::vector<Fp> &a, Fp shift, const TwiddleTable &t,
               bool par)
{
    const bool standard = shift == defaultCosetShift();
    applyCosetScale(a, shift, Fp::one(),
                    standard ? t.cosetFwd : std::vector<Fp>{}, par);
    difRun(a.data(), a.size(), t.fwd.data(), par);
}

void
cosetNttNNImpl(std::vector<Fp> &a, Fp shift, const TwiddleTable &t,
               bool par)
{
    const bool standard = shift == defaultCosetShift();
    applyCosetScale(a, shift, Fp::one(),
                    standard ? t.cosetFwd : std::vector<Fp>{}, par);
    difRun(a.data(), a.size(), t.fwd.data(), par);
    bitrevPermute(a, par);
}

} // namespace

void
nttNR(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    nttNRImpl(a, *acquireTwiddles(log2Exact(a.size())), true);
}

void
nttRN(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    nttRNImpl(a, *acquireTwiddles(log2Exact(a.size())), true);
}

void
nttNN(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    nttNNImpl(a, *acquireTwiddles(log2Exact(a.size())), true);
}

void
inttNN(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    inttNNImpl(a, *acquireTwiddles(log2Exact(a.size())), true);
}

void
inttRN(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    const auto t = acquireTwiddles(log2Exact(a.size()));
    ditRun(a.data(), a.size(), t->inv.data(), true);
    scaleAll(a, t->sizeInv, true);
}

void
inttNR(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    const auto t = acquireTwiddles(log2Exact(a.size()));
    difRun(a.data(), a.size(), t->inv.data(), true);
    scaleAll(a, t->sizeInv, true);
}

void
cosetNttNN(std::vector<Fp> &a, Fp shift)
{
    checkTransformSize(a.size());
    cosetNttNNImpl(a, shift, *acquireTwiddles(log2Exact(a.size())), true);
}

void
cosetNttNR(std::vector<Fp> &a, Fp shift)
{
    checkTransformSize(a.size());
    cosetNttNRImpl(a, shift, *acquireTwiddles(log2Exact(a.size())), true);
}

void
cosetInttNN(std::vector<Fp> &a, Fp shift)
{
    checkTransformSize(a.size());
    const auto t = acquireTwiddles(log2Exact(a.size()));
    difRun(a.data(), a.size(), t->inv.data(), true);
    bitrevPermute(a, true);
    // Fold the 1/n normalization into the inverse coset scaling pass.
    const bool standard = shift == defaultCosetShift();
    applyCosetScale(a, shift.inverse(), t->sizeInv,
                    standard ? t->cosetInv : std::vector<Fp>{}, true);
}

void
cosetInttRN(std::vector<Fp> &a, Fp shift)
{
    checkTransformSize(a.size());
    const auto t = acquireTwiddles(log2Exact(a.size()));
    ditRun(a.data(), a.size(), t->inv.data(), true);
    const bool standard = shift == defaultCosetShift();
    applyCosetScale(a, shift.inverse(), t->sizeInv,
                    standard ? t->cosetInv : std::vector<Fp>{}, true);
}

namespace {

/**
 * LDE by coset decomposition: instead of zero-padding the N coefficients
 * to N*blowup and running one big transform (whose first log2(blowup)
 * stages only shuffle zeros), split the target domain shift*H' into
 * `blowup` cosets of the size-N subgroup,
 *
 *   x_t = shift * w_m^t,  t = c + blowup * j
 *       = (shift * w_m^c) * (w_m^blowup)^j,
 *
 * and evaluate the *unpadded* coefficients over each coset with a size-N
 * transform. Because the bit-reversal of t = c + blowup*j splits as
 * rev(c) * N + rev(j), each sub-transform's NR output is exactly one
 * contiguous slice of the big transform's NR output, so results are
 * value-identical to the padded path. This removes the zero stages,
 * keeps every sub-transform cache-sized, and parallelizes over cosets
 * with no barriers.
 *
 * @param out  destination of the N*blowup NR-ordered evaluations; the
 *             slice for coset c starts at rev(c) * N.
 */
void
ldeNRInto(const std::vector<Fp> &coeffs, uint32_t blowup, Fp shift,
          Fp *out, bool allow_parallel)
{
    const size_t n = coeffs.size();
    const size_t m = n * blowup;
    const uint32_t log_b = log2Exact(blowup);
    const Fp w_m = Fp::primitiveRootOfUnity(log2Exact(m));
    const auto t = acquireTwiddles(log2Exact(n));

    auto oneCoset = [&](size_t c, bool par) {
        Fp *slice = out + reverseBits(c, log_b) * n;
        const Fp coset_shift = shift * w_m.pow(c);
        // slice[i] = coeffs[i] * coset_shift^i, chunked power chains.
        const Fp *src = coeffs.data();
        auto scale = [&](size_t lo, size_t hi) {
            Fp p = coset_shift.pow(lo);
            for (size_t i = lo; i < hi; ++i) {
                slice[i] = Fp::mulBranchless(src[i], p);
                p *= coset_shift;
            }
        };
        if (runParallel(n, par))
            parallelFor(0, n, stage_grain, scale);
        else
            scale(0, n);
        difRun(slice, n, t->fwd.data(), par);
    };

    if (allow_parallel && blowup > 1 && globalThreadCount() > 1) {
        parallelFor(0, blowup, /*grain=*/1, [&](size_t lo, size_t hi) {
            for (size_t c = lo; c < hi; ++c)
                oneCoset(c, /*par=*/false);
        });
    } else {
        for (size_t c = 0; c < blowup; ++c)
            oneCoset(c, allow_parallel);
    }
}

} // namespace

std::vector<Fp>
lowDegreeExtension(const std::vector<Fp> &coeffs, uint32_t blowup, Fp shift)
{
    checkTransformSize(coeffs.size());
    unizk_assert(isPowerOfTwo(blowup), "blowup must be a power of two");
    std::vector<Fp> ext(coeffs.size() * blowup);
    ldeNRInto(coeffs, blowup, shift, ext.data(), true);
    return ext;
}

// ---- Batch API -----------------------------------------------------------

namespace {

/**
 * Pick the parallel axis for a batch: with enough polynomials to keep
 * every worker busy (or transforms too small to split) spread polys
 * across the pool and run each transform serially; otherwise run polys
 * sequentially and let each transform fan out internally. Either way
 * the per-element arithmetic is identical, so the choice cannot affect
 * proof bytes.
 */
bool
spreadAcrossPolys(size_t count, size_t n)
{
    const unsigned threads = globalThreadCount();
    if (threads <= 1)
        return true;
    if (n < par_min_size)
        return true;
    return count >= threads;
}

void
checkBatchSizes(const std::vector<std::vector<Fp>> &polys)
{
    unizk_assert(!polys.empty(), "empty polynomial batch");
    checkTransformSize(polys[0].size());
    for (const auto &p : polys) {
        unizk_assert(p.size() == polys[0].size(),
                     "batch polynomials differ in size");
    }
}

template <typename Fn>
void
forEachPoly(size_t count, size_t n, const Fn &fn)
{
    if (spreadAcrossPolys(count, n)) {
        parallelFor(0, count, /*grain=*/1, [&](size_t lo, size_t hi) {
            for (size_t p = lo; p < hi; ++p)
                fn(p, /*par=*/false);
        });
    } else {
        for (size_t p = 0; p < count; ++p)
            fn(p, /*par=*/true);
    }
}

} // namespace

void
inttBatchNN(std::vector<std::vector<Fp>> &polys)
{
    checkBatchSizes(polys);
    const size_t n = polys[0].size();
    const auto t = acquireTwiddles(log2Exact(n));
    forEachPoly(polys.size(), n, [&](size_t p, bool par) {
        inttNNImpl(polys[p], *t, par);
    });
}

void
nttBatchNR(std::vector<std::vector<Fp>> &polys)
{
    checkBatchSizes(polys);
    const size_t n = polys[0].size();
    const auto t = acquireTwiddles(log2Exact(n));
    forEachPoly(polys.size(), n, [&](size_t p, bool par) {
        nttNRImpl(polys[p], *t, par);
    });
}

std::vector<std::vector<Fp>>
ldeBatch(const std::vector<std::vector<Fp>> &coeffs, uint32_t blowup,
         Fp shift)
{
    checkBatchSizes(coeffs);
    unizk_assert(isPowerOfTwo(blowup), "blowup must be a power of two");
    const size_t n = coeffs[0].size();
    const size_t m = n * blowup;
    std::vector<std::vector<Fp>> out(coeffs.size());
    forEachPoly(coeffs.size(), m, [&](size_t p, bool par) {
        out[p].resize(m);
        ldeNRInto(coeffs[p], blowup, shift, out[p].data(), par);
    });
    return out;
}

std::vector<std::vector<Fp>>
ldeBatchNN(std::vector<std::vector<Fp>> coeffs, uint32_t blowup, Fp shift)
{
    checkBatchSizes(coeffs);
    unizk_assert(isPowerOfTwo(blowup), "blowup must be a power of two");
    const size_t n = coeffs[0].size();
    const size_t m = n * blowup;
    forEachPoly(coeffs.size(), m, [&](size_t p, bool par) {
        // The coset split needs the coefficients intact while every
        // slice is written, so evaluate into a fresh buffer and swap.
        std::vector<Fp> nr(m);
        ldeNRInto(coeffs[p], blowup, shift, nr.data(), par);
        bitrevPermute(nr, par);
        coeffs[p] = std::move(nr);
    });
    return coeffs;
}

// ---- Reference paths -----------------------------------------------------

std::vector<Fp>
naiveDft(const std::vector<Fp> &a, Fp shift)
{
    const size_t n = a.size();
    const Fp w = forwardRoot(n);
    std::vector<Fp> out(n);
    Fp wi = Fp::one();
    for (size_t i = 0; i < n; ++i) {
        const Fp point = shift * wi;
        Fp acc;
        Fp xp = Fp::one();
        for (size_t j = 0; j < n; ++j) {
            acc += a[j] * xp;
            xp *= point;
        }
        out[i] = acc;
        wi *= w;
    }
    return out;
}

std::vector<Fp>
naiveIdft(const std::vector<Fp> &a, Fp shift)
{
    const size_t n = a.size();
    const Fp w_inv = inverseRoot(n);
    const Fp n_inv = Fp(static_cast<uint64_t>(n)).inverse();
    const Fp s_inv = shift.inverse();
    std::vector<Fp> out(n);
    for (size_t j = 0; j < n; ++j) {
        Fp acc;
        for (size_t i = 0; i < n; ++i)
            acc += a[i] * w_inv.pow(static_cast<uint64_t>(i) * j % n);
        out[j] = acc * n_inv * s_inv.pow(j);
    }
    return out;
}

void
scalarNttNR(std::vector<Fp> &a)
{
    checkTransformSize(a.size());
    const size_t n = a.size();
    // The seed DIF core, verbatim: roots recomputed per call and the
    // serial per-butterfly `w *= w_len` twiddle chain.
    Fp w_len = forwardRoot(n);
    for (size_t len = n; len >= 2; len >>= 1) {
        const size_t half = len / 2;
        for (size_t start = 0; start < n; start += len) {
            Fp w = Fp::one();
            for (size_t j = 0; j < half; ++j) {
                const Fp u = a[start + j];
                const Fp v = a[start + j + half];
                a[start + j] = u + v;
                a[start + j + half] = (u - v) * w;
                w *= w_len;
            }
        }
        w_len = w_len.squared();
    }
}

std::vector<Fp>
scalarLowDegreeExtension(const std::vector<Fp> &coeffs, uint32_t blowup,
                         Fp shift)
{
    checkTransformSize(coeffs.size());
    unizk_assert(isPowerOfTwo(blowup), "blowup must be a power of two");
    std::vector<Fp> ext(coeffs);
    ext.resize(coeffs.size() * blowup, Fp::zero());
    Fp p = Fp::one();
    for (auto &x : ext) {
        x *= p;
        p *= shift;
    }
    scalarNttNR(ext);
    return ext;
}

// ---- Extension-field transforms ------------------------------------------

void
inttNNExt(std::vector<Fp2> &a)
{
    const size_t n = a.size();
    checkTransformSize(n);
    if (n < 2)
        return;
    // Table-driven DIF core over Fp2 values with Fp twiddles, then
    // bit-reverse and scale, mirroring inttNN. The FRI final polynomial
    // is short, so this path stays serial.
    const auto t = acquireTwiddles(log2Exact(n));
    difTabled(a.data(), n, t->inv.data(), 1);
    bitReversePermute(a);
    const Fp n_inv = t->sizeInv;
    for (auto &x : a)
        x = x * n_inv;
}

void
cosetInttNNExt(std::vector<Fp2> &a, Fp shift)
{
    inttNNExt(a);
    const Fp s_inv = shift.inverse();
    Fp p = Fp::one();
    for (auto &x : a) {
        x = x * p;
        p *= s_inv;
    }
}

// ---- Multi-dimensional decomposition -------------------------------------

std::vector<uint32_t>
decomposeNttDims(uint32_t log_size, uint32_t log_n_max)
{
    unizk_assert(log_n_max >= 1, "dimension size must be at least 2");
    if (log_size == 0)
        return {};
    // Balanced split: the fewest dims that fit under 2^log_n_max, sized
    // as evenly as possible (larger dims first / innermost).
    const uint32_t k =
        static_cast<uint32_t>(ceilDiv(log_size, log_n_max));
    const uint32_t base = log_size / k;
    const uint32_t rem = log_size % k;
    std::vector<uint32_t> dims(k, base);
    for (uint32_t i = 0; i < rem; ++i)
        dims[i] += 1;
    return dims;
}

namespace {

/** Recursive dataflow of the planned decomposition; dims[d] is the
 *  innermost factor of the current (sub-)transform. */
void
multidimNttImpl(std::vector<Fp> &a, const std::vector<uint32_t> &dims,
                size_t d)
{
    const size_t n = a.size();
    if (d + 1 >= dims.size()) {
        nttNN(a);
        return;
    }

    // Split N = n1 * n2 with n1 the (innermost) dims[d]-sized factor.
    const size_t n1 = size_t{1} << dims[d];
    const size_t n2 = n / n1;
    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n));

    // Inner DFTs along j2 for each fixed j1 (stride-n1 subsequences),
    // then inter-dimension twiddles w^(j1*k2) -- the element-wise
    // multiplications the hardware performs between decomposed dims.
    std::vector<Fp> col(n2);
    Fp w_j1 = Fp::one(); // w^j1
    for (size_t j1 = 0; j1 < n1; ++j1) {
        for (size_t j2 = 0; j2 < n2; ++j2)
            col[j2] = a[n1 * j2 + j1];
        multidimNttImpl(col, dims, d + 1);
        Fp tw = Fp::one(); // w^(j1*k2)
        for (size_t k2 = 0; k2 < n2; ++k2) {
            a[n1 * k2 + j1] = col[k2] * tw;
            tw *= w_j1;
        }
        w_j1 *= w;
    }

    // Outer size-n1 NTTs along j1 for each k2; outputs scatter to
    // X[n2*k1 + k2].
    std::vector<Fp> out(n);
    std::vector<Fp> row(n1);
    for (size_t k2 = 0; k2 < n2; ++k2) {
        for (size_t j1 = 0; j1 < n1; ++j1)
            row[j1] = a[n1 * k2 + j1];
        nttNN(row);
        for (size_t k1 = 0; k1 < n1; ++k1)
            out[n2 * k1 + k2] = row[k1];
    }
    a = std::move(out);
}

} // namespace

void
multidimNttNN(std::vector<Fp> &a, uint32_t log_n_max)
{
    const size_t n = a.size();
    checkTransformSize(n);
    const uint32_t log_n = log2Exact(n);
    if (log_n <= log_n_max) {
        nttNN(a);
        return;
    }
    const auto dims = decomposeNttDims(log_n, log_n_max);
    multidimNttImpl(a, dims, 0);
}

} // namespace unizk
