#include "ntt/twiddles.h"

#include <array>

#include "common/env.h"
#include "common/sync.h"
#include "field/goldilocks.h"
#include "obs/obs.h"

namespace unizk {

namespace {

/**
 * Largest log-size the registry keeps resident. A cached size-2^k
 * table costs 2^k * 8 bytes for fwd+inv combined; 2^26 caps the pair
 * at 512 MiB in the (unrealistic) worst case while covering every
 * transform the benches and recursion-sized LDEs reach. Larger sizes
 * still work -- they build a private table per call.
 */
constexpr uint32_t max_cached_log = 26;

/**
 * Coset-power vectors are full-length (2^k elements each), so they are
 * capped lower; above this the engine falls back to cache-blocked
 * on-the-fly shift powers, which parallelize just as well.
 */
constexpr uint32_t max_coset_log = 22;

/**
 * Fill out[i] = base^i for i < out_len. Deliberately serial: table
 * construction may race in from any thread on first touch (including
 * pool workers mid-region), where submitting a nested parallelFor from
 * a non-worker thread is not allowed. Build cost is one-time per size.
 */
void
fillPowers(Fp *out, size_t out_len, Fp base)
{
    Fp p = Fp::one();
    for (size_t i = 0; i < out_len; ++i) {
        out[i] = p;
        p *= base;
    }
}

std::shared_ptr<const TwiddleTable>
buildTable(uint32_t log_size)
{
    UNIZK_SPAN("ntt/twiddle-build");
    UNIZK_COUNTER_ADD("ntt.twiddle_builds", 1);
    auto t = std::make_shared<TwiddleTable>();
    t->logSize = log_size;
    const size_t n = size_t{1} << log_size;
    t->sizeInv = Fp(static_cast<uint64_t>(n)).inverse();
    if (log_size == 0)
        return t;

    const Fp w = Fp::primitiveRootOfUnity(log_size);
    const Fp w_inv = w.inverse();
    t->fwd.resize(n / 2);
    t->inv.resize(n / 2);
    fillPowers(t->fwd.data(), n / 2, w);
    fillPowers(t->inv.data(), n / 2, w_inv);

    if (log_size <= max_coset_log) {
        const Fp g = Fp(Fp::multiplicativeGenerator);
        t->cosetFwd.resize(n);
        t->cosetInv.resize(n);
        fillPowers(t->cosetFwd.data(), n, g);
        fillPowers(t->cosetInv.data(), n, g.inverse());
    }
    return t;
}

struct Registry
{
    Mutex mutex;
    std::array<std::shared_ptr<const TwiddleTable>, Fp::twoAdicity + 1>
        slots UNIZK_GUARDED_BY(mutex);
    bool enabled UNIZK_GUARDED_BY(mutex) = true;
    bool env_checked UNIZK_GUARDED_BY(mutex) = false;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** Resolve the UNIZK_NTT_CACHE environment knob once. Strict parse: an
 * unrecognized spelling (e.g. "flase") warns and keeps the cache
 * enabled instead of silently doing so. The annotation makes "caller
 * holds the registry mutex" machine-checked instead of a comment. */
void
resolveEnv(Registry &r) UNIZK_REQUIRES(r.mutex)
{
    if (r.env_checked)
        return;
    r.env_checked = true;
    if (const auto flag = envFlag("UNIZK_NTT_CACHE"))
        r.enabled = *flag;
}

} // namespace

std::shared_ptr<const TwiddleTable>
acquireTwiddles(uint32_t log_size)
{
    unizk_assert(log_size <= Fp::twoAdicity,
                 "transform size exceeds the field's 2-adicity");
    Registry &r = registry();
    if (log_size <= max_cached_log) {
        MutexLock lock(r.mutex);
        resolveEnv(r);
        if (r.enabled) {
            if (!r.slots[log_size])
                r.slots[log_size] = buildTable(log_size);
            return r.slots[log_size];
        }
    }
    return buildTable(log_size);
}

void
setTwiddleCacheEnabled(bool enabled)
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    r.env_checked = true; // explicit setting wins over the env var
    r.enabled = enabled;
    if (!enabled) {
        for (auto &slot : r.slots)
            slot.reset();
    }
}

bool
twiddleCacheEnabled()
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    resolveEnv(r);
    return r.enabled;
}

void
clearTwiddleCache()
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    for (auto &slot : r.slots)
        slot.reset();
}

} // namespace unizk
