/**
 * @file
 * Twiddle-factor tables for the NTT engine, with a thread-safe,
 * lazily-initialized process-wide registry.
 *
 * The seed NTT cores recomputed their roots on every call and chained
 * twiddles through a sequential `w *= w_len` dependency, which both
 * serializes the inner butterfly loop (each iteration waits on a
 * modular multiply) and redoes identical work for every transform of
 * the same size. SZKP and zkPHIRE organize their NTT datapaths around
 * precomputed twiddle storage for exactly this reason; this header is
 * the software mirror of that idea.
 *
 * A TwiddleTable for log-size k stores, in the layout the DIF/DIT cores
 * consume directly:
 *
 *  - fwd[j] = w^j  for j < 2^(k-1), w the primitive 2^k-th root: the
 *    stage with block length `len` reads fwd[j * (n/len)], so inner
 *    loops are pure table lookups with no loop-carried dependency and
 *    can be chunked across pool workers.
 *  - inv[j] = w^-j, the same layout for inverse transforms.
 *  - cosetFwd[i] = g^i and cosetInv[i] = g^-i for the standard coset
 *    shift g (defaultCosetShift), the pre/post-scaling vectors of the
 *    LDE and its inverse.
 *  - sizeInv = (2^k)^-1, the iNTT normalization constant.
 *
 * Tables are built once per size on first touch (double-checked under a
 * mutex, so concurrent first-touch from pool workers is safe) and live
 * for the process. The cache can be disabled -- per call sites building
 * private tables -- with setTwiddleCacheEnabled(false) or UNIZK_NTT_CACHE=0;
 * proofs are byte-identical either way because field arithmetic is exact
 * and the table entries equal the values the seed code chained to.
 */

#ifndef UNIZK_NTT_TWIDDLES_H
#define UNIZK_NTT_TWIDDLES_H

#include <cstdint>
#include <memory>
#include <vector>

#include "field/goldilocks.h"

namespace unizk {

/** Precomputed twiddle storage for one transform size (see file docs). */
struct TwiddleTable
{
    uint32_t logSize = 0;

    /** fwd[j] = w^j, j < n/2 (empty for n == 1). */
    std::vector<Fp> fwd;

    /** inv[j] = w^-j, j < n/2. */
    std::vector<Fp> inv;

    /** cosetFwd[i] = g^i, i < n, g = defaultCosetShift(). */
    std::vector<Fp> cosetFwd;

    /** cosetInv[i] = g^-i, i < n. */
    std::vector<Fp> cosetInv;

    /** n^-1 for iNTT normalization. */
    Fp sizeInv = Fp::one();
};

/**
 * Table for transforms of size 2^log_size. Served from the registry
 * when caching is enabled (and the size is within the cache bound),
 * otherwise freshly built. The returned pointer is always non-null and
 * safe to hold across pool-parallel regions.
 */
std::shared_ptr<const TwiddleTable> acquireTwiddles(uint32_t log_size);

/**
 * Enable/disable the process-wide twiddle cache. Disabling clears the
 * registry; transforms then build private tables per call. Intended for
 * tests and for bounding memory in constrained runs.
 */
void setTwiddleCacheEnabled(bool enabled);

/** Current cache setting (default: on, unless UNIZK_NTT_CACHE=0). */
bool twiddleCacheEnabled();

/** Drop every cached table (keeps the enabled/disabled setting). */
void clearTwiddleCache();

} // namespace unizk

#endif // UNIZK_NTT_TWIDDLES_H
