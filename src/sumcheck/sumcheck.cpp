#include "sumcheck/sumcheck.h"

#include "common/bits.h"

namespace unizk {

size_t
SumcheckProof::byteSize() const
{
    return sizeof(uint64_t) * (2 + 2 * rounds.size());
}

SumcheckProof
sumcheckProve(std::vector<Fp> values, Challenger &challenger,
              const ProverContext &ctx)
{
    unizk_assert(isPowerOfTwo(values.size()), "table must be 2^n");
    const uint32_t n = log2Exact(values.size());

    SumcheckProof proof;
    {
        Fp sum;
        for (const Fp &v : values)
            sum += v;
        proof.claimedSum = sum;
    }
    challenger.observe(proof.claimedSum);

    ctx.record(SumCheckKernel{n}, "sum-check");
    ScopedKernelTimer timer(ctx.breakdown, KernelClass::Polynomial);
    for (uint32_t i = 0; i < n; ++i) {
        const size_t half = values.size() / 2;
        // g_i(0) = sum of even entries, g_i(1) = sum of odd entries
        // (Algorithm 2's "summing up the updated vector elements").
        SumcheckRound round;
        for (size_t j = 0; j < half; ++j) {
            round.at0 += values[2 * j];
            round.at1 += values[2 * j + 1];
        }
        proof.rounds.push_back(round);
        challenger.observe(round.at0);
        challenger.observe(round.at1);
        const Fp r = challenger.challenge();

        // Fold ("updating the vector itself").
        for (size_t j = 0; j < half; ++j) {
            values[j] =
                values[2 * j] + r * (values[2 * j + 1] - values[2 * j]);
        }
        values.resize(half);
    }
    proof.finalEval = values[0];
    return proof;
}

Fp
multilinearEval(const std::vector<Fp> &values,
                const std::vector<Fp> &point)
{
    unizk_assert(values.size() == size_t{1} << point.size(),
                 "point dimension mismatch");
    std::vector<Fp> table = values;
    for (const Fp &r : point) {
        const size_t half = table.size() / 2;
        for (size_t j = 0; j < half; ++j) {
            table[j] =
                table[2 * j] + r * (table[2 * j + 1] - table[2 * j]);
        }
        table.resize(half);
    }
    return table[0];
}

bool
sumcheckVerify(const SumcheckProof &proof, size_t log_size,
               Challenger &challenger, std::vector<Fp> *point_out)
{
    if (proof.rounds.size() != log_size)
        return false;
    challenger.observe(proof.claimedSum);

    Fp expected = proof.claimedSum;
    std::vector<Fp> point;
    for (const SumcheckRound &round : proof.rounds) {
        // g_i(0) + g_i(1) must equal the running claim.
        if (round.at0 + round.at1 != expected)
            return false;
        challenger.observe(round.at0);
        challenger.observe(round.at1);
        const Fp r = challenger.challenge();
        point.push_back(r);
        // Next claim: g_i(r) for the linear g_i.
        expected = round.at0 + r * (round.at1 - round.at0);
    }
    if (proof.finalEval != expected)
        return false;
    if (point_out)
        *point_out = std::move(point);
    return true;
}

} // namespace unizk
