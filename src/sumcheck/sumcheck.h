/**
 * @file
 * The sum-check protocol over multilinear polynomials -- the "new
 * primitive" the paper analyzes when discussing generality to other
 * ZKP protocols (Section 8.1, Algorithm 2). Spartan, Binius, and
 * Basefold all build on it.
 *
 * The prover holds the 2^n evaluations A of a multilinear polynomial P
 * over the boolean hypercube and convinces the verifier of
 * S = sum_x P(x). Each round sends the linear univariate
 * g_i(t) = sum over the remaining cube with the next variable fixed to
 * t (two values g_i(0), g_i(1) suffice), receives a challenge r_i, and
 * folds the table: A'[j] = A[2j] + r_i * (A[2j+1] - A[2j]) -- exactly
 * the dynamic-programming loop of Algorithm 2, whose vector-update and
 * vector-sum structure maps onto UniZK's vector mode and inter-PE
 * reduction links (modeled by SumCheckKernel in the simulator).
 */

#ifndef UNIZK_SUMCHECK_SUMCHECK_H
#define UNIZK_SUMCHECK_SUMCHECK_H

#include <vector>

#include "field/goldilocks.h"
#include "hash/challenger.h"
#include "trace/prover_context.h"

namespace unizk {

/** One round's message: g_i(0) and g_i(1). */
struct SumcheckRound
{
    Fp at0;
    Fp at1;
};

struct SumcheckProof
{
    Fp claimedSum;
    std::vector<SumcheckRound> rounds;
    /** P evaluated at the challenge point (checked against an oracle). */
    Fp finalEval;

    size_t byteSize() const;
};

/**
 * Run the prover on the evaluation table @p values (size 2^n).
 * Challenges come from @p challenger (Fiat-Shamir).
 */
SumcheckProof sumcheckProve(std::vector<Fp> values,
                            Challenger &challenger,
                            const ProverContext &ctx = {});

/**
 * Evaluate the multilinear extension of @p values at @p point
 * (point.size() == n). O(2^n); this is the verifier's oracle in tests
 * (a real deployment replaces it with a polynomial commitment opening).
 */
Fp multilinearEval(const std::vector<Fp> &values,
                   const std::vector<Fp> &point);

/**
 * Verify a sum-check proof. Returns the challenge point through
 * @p point_out so the caller can check proof.finalEval against its
 * oracle for P.
 */
bool sumcheckVerify(const SumcheckProof &proof, size_t log_size,
                    Challenger &challenger,
                    std::vector<Fp> *point_out = nullptr);

} // namespace unizk

#endif // UNIZK_SUMCHECK_SUMCHECK_H
