#include "stark/stark.h"

#include "common/bits.h"
#include "common/thread_pool.h"
#include "ntt/ntt.h"
#include "obs/obs.h"
#include "poly/polynomial.h"

namespace unizk {

namespace {

/**
 * Combined constraint value at zeta computed from opened values;
 * shared by prover (sanity check) and verifier. Returns the expected
 * t(zeta), i.e. the combination already divided by the vanishing
 * factors.
 */
Fp2
combinedAtZeta(const StarkAir &air, const std::vector<Fp2> &at_z,
               const std::vector<Fp2> &at_wz, Fp2 zeta, size_t n,
               Fp alpha)
{
    const size_t cols = air.numColumns();
    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n));
    const Fp w_last = w.pow(n - 1);
    const Fp2 zeta_n = zeta.pow(n);
    const Fp2 z_h = zeta_n - Fp2::one();
    const Fp2 z_h_inv = z_h.inverse();

    const auto dcols = static_cast<std::ptrdiff_t>(cols);
    std::vector<Fp2> local(at_z.begin(), at_z.begin() + dcols);
    std::vector<Fp2> next(at_wz.begin(), at_wz.begin() + dcols);
    std::vector<Fp2> t_vals(air.numConstraints());
    air.evalTransitionExt(local, next, t_vals);

    Fp2 acc;
    Fp alpha_pow = Fp::one();
    // Transitions vanish on H \ {w^(n-1)}: divisor Z_H(X)/(X - w^last).
    const Fp2 trans_factor = (zeta - Fp2(w_last)) * z_h_inv;
    for (const Fp2 &t : t_vals) {
        acc += t * trans_factor * alpha_pow;
        alpha_pow *= alpha;
    }
    // Boundaries: (C(zeta) - v) * L_row(zeta) / Z_H(zeta)
    //           = (C(zeta) - v) * w^row / (n * (zeta - w^row)).
    const Fp n_fp(static_cast<uint64_t>(n));
    for (const BoundaryConstraint &bc : air.boundaries()) {
        const Fp point = bc.lastRow ? w_last : Fp::one();
        const Fp2 term = (local[bc.column] - Fp2(bc.value)) *
                         ((zeta - Fp2(point)) * n_fp).inverse() * point;
        acc += term * alpha_pow;
        alpha_pow *= alpha;
    }
    return acc;
}

} // namespace

bool
StarkAir::checkTrace(const std::vector<std::vector<Fp>> &columns) const
{
    const size_t cols = numColumns();
    if (columns.size() != cols || columns.empty())
        return false;
    const size_t n = columns[0].size();
    std::vector<Fp> local(cols), next(cols), out(numConstraints());
    for (size_t i = 0; i + 1 < n; ++i) {
        for (size_t c = 0; c < cols; ++c) {
            local[c] = columns[c][i];
            next[c] = columns[c][i + 1];
        }
        evalTransition(local, next, out);
        for (const Fp &v : out)
            if (!v.isZero())
                return false;
    }
    for (const BoundaryConstraint &bc : boundaries()) {
        const size_t row = bc.lastRow ? n - 1 : 0;
        if (columns[bc.column][row] != bc.value)
            return false;
    }
    return true;
}

size_t
StarkProof::byteSize() const
{
    size_t bytes =
        (traceCap.size() + quotientCap.size()) * HashOut::byteSize();
    for (const auto &row : openings)
        bytes += row.size() * 2 * sizeof(uint64_t);
    bytes += fri.byteSize();
    return bytes;
}

StarkProof
starkProve(const StarkAir &air,
           const std::vector<std::vector<Fp>> &columns,
           const FriConfig &cfg, const ProverContext &ctx)
{
    UNIZK_SPAN("stark/prove");
    const size_t cols = air.numColumns();
    unizk_assert(columns.size() == cols, "trace column count mismatch");
    const size_t n = columns[0].size();
    unizk_assert(isPowerOfTwo(n), "trace length must be a power of two");
    unizk_assert(air.checkTrace(columns), "trace violates constraints");
    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n));
    const Fp shift = cfg.shift();

    Challenger challenger;
    size_t hash_mark = 0;
    auto record_challenger = [&](const char *label) {
        if (challenger.permutationCount() > hash_mark) {
            ctx.record(HashKernel{challenger.permutationCount() -
                                  hash_mark},
                       std::string("challenger: ") + label);
            hash_mark = challenger.permutationCount();
        }
    };

    StarkProof proof;
    proof.rows = n;
    proof.columns = cols;

    // ---- Trace commitment. ----
    PolynomialBatch trace =
        PolynomialBatch::fromValues(columns, cfg, ctx, "trace");
    proof.traceCap = trace.cap();
    for (const auto &digest : trace.cap())
        challenger.observe(digest);
    const Fp alpha = challenger.challenge();
    record_challenger("alpha");

    // ---- Quotient on a coset domain covering the constraint degree. --
    const uint32_t q_blowup_bits =
        std::max<uint32_t>(1, ceilLog2(air.constraintDegree()));
    const size_t big = n << q_blowup_bits;
    const size_t num_chunks =
        std::max<size_t>(1, air.constraintDegree() - 1);
    proof.quotientChunks = num_chunks;

    std::vector<Fp> combined(big, Fp::zero());
    {
        UNIZK_SPAN("stark/quotient");
        ScopedKernelTimer ntt_timer(ctx.breakdown, KernelClass::Ntt);
        std::vector<std::vector<Fp>> trace_coeffs(cols);
        for (size_t c = 0; c < cols; ++c)
            trace_coeffs[c] = trace.coefficients(c);
        const auto lde =
            ldeBatchNN(std::move(trace_coeffs),
                       uint32_t{1} << q_blowup_bits, shift);
        ctx.record(NttKernel{log2Exact(big), cols, false, true, false,
                             PolyLayout::PolyMajor},
                   "quotient: trace coset LDEs");

        ScopedKernelTimer poly_timer(ctx.breakdown,
                                     KernelClass::Polynomial);
        const Fp w_big = Fp::primitiveRootOfUnity(log2Exact(big));
        const Fp w_last = w.pow(n - 1);
        const Fp n_fp(static_cast<uint64_t>(n));
        const size_t rot = size_t{1} << q_blowup_bits;

        // Z_H values on the coset (periodic with period `rot`),
        // inverted once.
        const auto z_h_all =
            vanishingOnCoset(n, uint32_t{1} << q_blowup_bits, shift);
        std::vector<Fp> z_h_inv(
            z_h_all.begin(),
            z_h_all.begin() + static_cast<std::ptrdiff_t>(rot));
        batchInverse(z_h_inv);

        // (x - 1) and (x - w_last) inverses for boundary terms.
        std::vector<Fp> xs(big);
        {
            Fp cur = shift;
            for (size_t i = 0; i < big; ++i) {
                xs[i] = cur;
                cur *= w_big;
            }
        }
        std::vector<Fp> inv_first(big), inv_last(big);
        for (size_t i = 0; i < big; ++i) {
            inv_first[i] = (xs[i] - Fp::one()) * n_fp;
            inv_last[i] = (xs[i] - w_last) * n_fp;
        }
        batchInverse(inv_first);
        batchInverse(inv_last);

        const auto bounds = air.boundaries();
        // Each quotient-domain point is independent; scratch buffers
        // live per chunk so worker threads never share state.
        parallelFor(0, big, /*grain=*/128, [&](size_t lo, size_t hi) {
            std::vector<Fp> local(cols), next(cols),
                t_vals(air.numConstraints());
            for (size_t i = lo; i < hi; ++i) {
                for (size_t c = 0; c < cols; ++c) {
                    local[c] = lde[c][i];
                    next[c] = lde[c][(i + rot) % big];
                }
                air.evalTransition(local, next, t_vals);
                Fp acc;
                Fp alpha_pow = Fp::one();
                const Fp trans_factor =
                    (xs[i] - w_last) * z_h_inv[i % rot];
                for (const Fp &t : t_vals) {
                    acc += t * trans_factor * alpha_pow;
                    alpha_pow *= alpha;
                }
                for (const BoundaryConstraint &bc : bounds) {
                    const Fp point = bc.lastRow ? w_last : Fp::one();
                    const Fp inv =
                        bc.lastRow ? inv_last[i] : inv_first[i];
                    acc += (local[bc.column] - bc.value) * inv * point *
                           alpha_pow;
                    alpha_pow *= alpha;
                }
                combined[i] = acc;
            }
        });
    }
    ctx.record(VecOpKernel{big, static_cast<uint32_t>(2 * cols), 1,
                           static_cast<uint32_t>(
                               4 * air.numConstraints() + 8),
                           static_cast<uint32_t>(8 * cols)},
               "quotient: transition + boundary constraints");

    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::Ntt);
        UNIZK_SPAN("stark/quotient-intt");
        cosetInttNN(combined, shift);
    }
    ctx.record(NttKernel{log2Exact(big), 1, true, true, false,
                         PolyLayout::PolyMajor},
               "quotient: iNTT");
    for (size_t i = num_chunks * n; i < big; ++i) {
        unizk_assert(combined[i].isZero(),
                     "quotient degree exceeds chunk budget");
    }
    std::vector<std::vector<Fp>> chunks(num_chunks);
    for (size_t k = 0; k < num_chunks; ++k) {
        chunks[k].assign(
            combined.begin() + static_cast<std::ptrdiff_t>(k * n),
            combined.begin() + static_cast<std::ptrdiff_t>((k + 1) * n));
    }
    PolynomialBatch quotient = PolynomialBatch::fromCoefficients(
        std::move(chunks), cfg, ctx, "quotient");
    proof.quotientCap = quotient.cap();
    for (const auto &digest : quotient.cap())
        challenger.observe(digest);

    const Fp2 zeta = challenger.challengeExt();
    record_challenger("zeta");

    // ---- Openings and FRI. ----
    const std::vector<Fp2> points{zeta, zeta * w};
    const std::vector<const PolynomialBatch *> batches{&trace, &quotient};
    proof.openings.resize(points.size());
    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::Polynomial);
        UNIZK_SPAN("stark/openings");
        for (size_t j = 0; j < points.size(); ++j) {
            for (const auto *batch : batches)
                for (const Fp2 &v : batch->evalAllExt(points[j]))
                    proof.openings[j].push_back(v);
        }
    }
    ctx.record(VecOpKernel{n, static_cast<uint32_t>(cols + num_chunks), 1,
                           4, 0},
               "openings: evaluate at zeta, w*zeta");
    for (const auto &row : proof.openings) {
        for (const Fp2 &v : row) {
            challenger.observe(v.limb(0));
            challenger.observe(v.limb(1));
        }
    }
    record_challenger("openings");

    // Sanity check against the verifier's identity.
    {
        const Fp2 expected = combinedAtZeta(
            air, proof.openings[0], proof.openings[1], zeta, n, alpha);
        const Fp2 zeta_n = zeta.pow(n);
        Fp2 t_at_zeta;
        Fp2 zpow = Fp2::one();
        for (size_t k = 0; k < num_chunks; ++k) {
            t_at_zeta += proof.openings[0][cols + k] * zpow;
            zpow *= zeta_n;
        }
        unizk_assert(expected == t_at_zeta,
                     "prover-side STARK identity failed");
    }

    proof.fri = friProve(batches, points, proof.openings, challenger, cfg,
                         ctx);
    record_challenger("fri");
    return proof;
}

bool
starkVerify(const StarkAir &air, const StarkProof &proof,
            const FriConfig &cfg)
{
    const size_t n = proof.rows;
    const size_t cols = air.numColumns();
    if (n == 0 || !isPowerOfTwo(n) || proof.columns != cols)
        return false;
    const size_t num_chunks =
        std::max<size_t>(1, air.constraintDegree() - 1);
    if (proof.quotientChunks != num_chunks)
        return false;
    if (proof.openings.size() != 2)
        return false;
    for (const auto &row : proof.openings)
        if (row.size() != cols + num_chunks)
            return false;

    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n));

    Challenger challenger;
    for (const auto &digest : proof.traceCap)
        challenger.observe(digest);
    const Fp alpha = challenger.challenge();
    for (const auto &digest : proof.quotientCap)
        challenger.observe(digest);
    const Fp2 zeta = challenger.challengeExt();
    for (const auto &row : proof.openings) {
        for (const Fp2 &v : row) {
            challenger.observe(v.limb(0));
            challenger.observe(v.limb(1));
        }
    }

    const Fp2 expected = combinedAtZeta(air, proof.openings[0],
                                        proof.openings[1], zeta, n, alpha);
    const Fp2 zeta_n = zeta.pow(n);
    Fp2 t_at_zeta;
    {
        Fp2 zpow = Fp2::one();
        for (size_t k = 0; k < num_chunks; ++k) {
            t_at_zeta += proof.openings[0][cols + k] * zpow;
            zpow *= zeta_n;
        }
    }
    if (expected != t_at_zeta)
        return false;

    const std::vector<Fp2> points{zeta, zeta * w};
    const std::vector<FriBatchInfo> batches{{proof.traceCap, cols},
                                            {proof.quotientCap,
                                             num_chunks}};
    return friVerify(batches, n, points, proof.openings, proof.fri,
                     challenger, cfg);
}

} // namespace unizk
