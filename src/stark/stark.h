/**
 * @file
 * STARK proving over Algebraic Execution Traces -- the "mini-Starky"
 * protocol (paper Section 2.2, Figure 2).
 *
 * The computation is a table ("trace") with one column per register and
 * one row per time step. An AIR (algebraic intermediate representation)
 * supplies:
 *   - transition constraints T_i(local_row, next_row) that must vanish
 *     on every row except the last, and
 *   - boundary constraints pinning individual cells of the first or
 *     last row (the input/output constraints of Figure 2).
 *
 * The prover commits the trace columns, combines all constraints with
 * powers of a challenge into a quotient by the appropriate vanishing
 * polynomials, commits the quotient, and opens everything at zeta and
 * w*zeta under batched FRI -- the same FRI component Plonky2 uses, with
 * a blowup factor of 2 in the Starky configuration.
 */

#ifndef UNIZK_STARK_STARK_H
#define UNIZK_STARK_STARK_H

#include <vector>

#include "fri/fri.h"

namespace unizk {

/** Pin trace cell (column, first-or-last row) to a public value. */
struct BoundaryConstraint
{
    size_t column = 0;
    bool lastRow = false;
    Fp value;
};

/** Constraint system interface implemented by each workload. */
class StarkAir
{
  public:
    virtual ~StarkAir() = default;

    /** Number of trace columns. */
    virtual size_t numColumns() const = 0;

    /** Number of transition constraints. */
    virtual size_t numConstraints() const = 0;

    /**
     * Maximum total degree of any transition constraint in the trace
     * cells (e.g. 2 if constraints multiply two cells).
     */
    virtual uint32_t constraintDegree() const { return 2; }

    /**
     * Evaluate all transition constraints on base-field rows (prover,
     * pointwise over the LDE domain).
     */
    virtual void evalTransition(const std::vector<Fp> &local,
                                const std::vector<Fp> &next,
                                std::vector<Fp> &out) const = 0;

    /** Same formulas over the extension field (verifier, at zeta). */
    virtual void evalTransitionExt(const std::vector<Fp2> &local,
                                   const std::vector<Fp2> &next,
                                   std::vector<Fp2> &out) const = 0;

    /** Boundary constraints (public input/output bindings). */
    virtual std::vector<BoundaryConstraint> boundaries() const = 0;

    /** Verify a trace directly (testing helper). */
    bool checkTrace(const std::vector<std::vector<Fp>> &columns) const;
};

struct StarkProof
{
    MerkleCap traceCap;
    MerkleCap quotientCap;
    /** openings[j][k]: flattened poly k at point j (0: zeta, 1: w*zeta). */
    std::vector<std::vector<Fp2>> openings;
    FriProof fri;
    size_t rows = 0;
    size_t columns = 0;
    size_t quotientChunks = 0;

    size_t byteSize() const;
};

/**
 * Prove that @p columns (column-major trace, power-of-two rows)
 * satisfies @p air.
 */
StarkProof starkProve(const StarkAir &air,
                      const std::vector<std::vector<Fp>> &columns,
                      const FriConfig &cfg, const ProverContext &ctx);

bool starkVerify(const StarkAir &air, const StarkProof &proof,
                 const FriConfig &cfg);

} // namespace unizk

#endif // UNIZK_STARK_STARK_H
