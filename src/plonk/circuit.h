/**
 * @file
 * Selector-based Plonk circuits with copy constraints, the PIOP front
 * end of the paper's Figure 1 (left).
 *
 * A circuit is a table of gates. Each gate row enforces
 *
 *     qL*a + qR*b + qO*c + qM*a*b + qC = 0
 *
 * over its three wire slots (a, b, c), and the copy constraints wire
 * gate outputs to gate inputs through the permutation sigma over the
 * 3n slots, exactly the (Q, W, sigma) construction in the paper.
 *
 * To reproduce the wide execution traces of real Plonky2 workloads
 * (circuit width ~135, Section 7.1), the prover supports *repetitions*:
 * R independent witness instances of the same circuit are batched
 * column-wise into one proof, giving 3R committed wire polynomials.
 */

#ifndef UNIZK_PLONK_CIRCUIT_H
#define UNIZK_PLONK_CIRCUIT_H

#include <array>
#include <cstdint>
#include <vector>

#include "field/goldilocks.h"

namespace unizk {

/** Handle to a circuit variable. */
struct Var
{
    uint32_t id = UINT32_MAX;

    bool isValid() const { return id != UINT32_MAX; }
};

/** Wire slot columns. */
enum class WireCol : uint32_t
{
    A = 0,
    B = 1,
    C = 2,
};

/** One gate row: selector values plus the variables in its slots. */
struct Gate
{
    Fp qL, qR, qO, qM, qC;
    Var a, b, c; ///< invalid vars denote unused slots (value 0)
};

class Circuit;

/**
 * Incrementally builds a circuit. Typical use:
 *
 *   CircuitBuilder b;
 *   Var x = b.input();
 *   Var y = b.mul(x, x);
 *   b.assertConstant(y, Fp(49));
 *   Circuit circuit = b.build();
 */
class CircuitBuilder
{
  public:
    /** Fresh private-input variable (value supplied at witness time). */
    Var input();

    /**
     * Public-input variable: supplied with the witness like input(),
     * but its value is part of the *statement* -- it is exposed in the
     * proof and checked by the verifier through the public-input
     * polynomial PI(X). Implemented as a dedicated binding gate whose
     * row carries the PI contribution.
     */
    Var publicInput();

    /** Variable pinned to a constant via a constraint gate. */
    Var constant(Fp value);

    /** x + y. */
    Var add(Var x, Var y);

    /** x - y. */
    Var sub(Var x, Var y);

    /** x * y. */
    Var mul(Var x, Var y);

    /** cx * x + cy * y + k (one linear gate). */
    Var linear(Fp cx, Var x, Fp cy, Var y, Fp k);

    /** x * y + z (two gates). */
    Var mulAdd(Var x, Var y, Var z);

    /** Constrain x == c. */
    void assertConstant(Var x, Fp c);

    /** Constrain x == y (copy constraint through an equality gate). */
    void assertEqual(Var x, Var y);

    size_t gateCount() const { return gates.size(); }
    size_t inputCount() const { return num_inputs; }
    size_t variableCount() const { return num_vars; }

    /** Finalize: pads to a power of two (at least @p min_rows). */
    Circuit build(size_t min_rows = 4) const;

  private:
    friend class Circuit;

    Var newVar();

    uint32_t num_vars = 0;
    uint32_t num_inputs = 0;
    std::vector<uint32_t> input_vars; ///< ids of input variables in order
    std::vector<size_t> public_rows;  ///< gate rows binding public inputs
    std::vector<uint32_t> public_input_positions; ///< index into inputs
    std::vector<Gate> gates;
};

/**
 * A finalized circuit: selector columns, the slot permutation, and the
 * gate list used to evaluate witnesses.
 */
class Circuit
{
  public:
    /** Number of rows n (power of two). */
    size_t rows() const { return n; }

    size_t inputCount() const { return input_vars.size(); }

    const std::vector<Fp> &selQL() const { return q_l; }
    const std::vector<Fp> &selQR() const { return q_r; }
    const std::vector<Fp> &selQO() const { return q_o; }
    const std::vector<Fp> &selQM() const { return q_m; }
    const std::vector<Fp> &selQC() const { return q_c; }

    /**
     * The permutation over the 3n slots, as slot indices: slot s maps
     * to permutation[s]. Slot index = col * n + row.
     */
    const std::vector<size_t> &permutation() const { return sigma; }

    /** Gate rows carrying public-input bindings, in declaration order. */
    const std::vector<size_t> &publicRows() const { return public_rows; }

    /**
     * Extract the public-input values from filled wire columns (the
     * a-slot of each public row).
     */
    std::vector<Fp>
    publicValues(const std::array<std::vector<Fp>, 3> &wires) const;

    /**
     * Fill a witness: evaluates every gate given the input values.
     * @return the three wire columns (a, b, c), each of length n.
     * Panics if the witness does not satisfy the circuit.
     */
    std::array<std::vector<Fp>, 3>
    fillWitness(const std::vector<Fp> &inputs) const;

    /** Check that wire columns satisfy all gate constraints. */
    bool checkWitness(const std::array<std::vector<Fp>, 3> &wires) const;

  private:
    friend class CircuitBuilder;

    size_t n = 0;
    std::vector<Fp> q_l, q_r, q_o, q_m, q_c;
    std::vector<size_t> sigma;
    std::vector<size_t> public_rows;
    std::vector<Gate> gates; ///< unpadded gate list
    std::vector<uint32_t> input_vars;
    uint32_t num_vars = 0;
};

} // namespace unizk

#endif // UNIZK_PLONK_CIRCUIT_H
