#include "plonk/plonk.h"

#include "common/bits.h"
#include "common/thread_pool.h"
#include "ntt/ntt.h"
#include "obs/obs.h"
#include "poly/polynomial.h"

namespace unizk {

namespace {

/** Quotient-computation blowup: covers the degree-4n quotient. */
constexpr uint32_t quotient_blowup_bits = 2;

/** The flattened number of committed polynomials. */
size_t
flatPolyCount(size_t repetitions)
{
    return 8 + 3 * repetitions + repetitions + plonkQuotientChunks;
}

/** Flat index of the first wire polynomial. */
constexpr size_t wiresOffset = 8;

size_t
zOffset(size_t repetitions)
{
    return wiresOffset + 3 * repetitions;
}

size_t
quotientOffset(size_t repetitions)
{
    return zOffset(repetitions) + repetitions;
}

/**
 * Evaluate the combined Plonk constraint at zeta from opened values.
 * Shared between the verifier and (as a sanity check) the prover.
 * @return the expected t(zeta) * Z_H(zeta).
 */
Fp2
combinedConstraintAtZeta(const std::vector<Fp2> &at_z,
                         const std::vector<Fp2> &at_wz, Fp2 zeta,
                         size_t n, size_t repetitions, Fp beta, Fp gamma,
                         Fp alpha, const std::vector<size_t> &public_rows,
                         const std::vector<std::vector<Fp>> &publics)
{
    const Fp2 q_l = at_z[0], q_r = at_z[1], q_o = at_z[2], q_m = at_z[3],
              q_c = at_z[4];
    const Fp2 sigma[3] = {at_z[5], at_z[6], at_z[7]};

    // L_1(zeta) = (zeta^n - 1) / (n * (zeta - 1)).
    const Fp2 zeta_n = zeta.pow(n);
    const Fp2 z_h = zeta_n - Fp2::one();
    const Fp2 l1 =
        z_h * ((zeta - Fp2::one()) * Fp(static_cast<uint64_t>(n)))
                  .inverse();

    Fp2 acc;
    Fp alpha_pow = Fp::one();
    for (size_t r = 0; r < repetitions; ++r) {
        const Fp2 a = at_z[wiresOffset + 3 * r + 0];
        const Fp2 b = at_z[wiresOffset + 3 * r + 1];
        const Fp2 c = at_z[wiresOffset + 3 * r + 2];
        const Fp2 z = at_z[zOffset(repetitions) + r];
        const Fp2 z_w = at_wz[zOffset(repetitions) + r];

        Fp2 gate = q_l * a + q_r * b + q_o * c + q_m * a * b + q_c;
        // Public-input polynomial: PI_r(zeta) =
        //   sum_k -pub_{r,k} * L_{row_k}(zeta).
        const Fp w_n = Fp::primitiveRootOfUnity(log2Exact(n));
        for (size_t k = 0; k < public_rows.size(); ++k) {
            const Fp point = w_n.pow(public_rows[k]);
            const Fp2 l_row =
                z_h * ((zeta - Fp2(point)) *
                       Fp(static_cast<uint64_t>(n)))
                          .inverse() *
                point;
            gate -= l_row * publics[r][k];
        }
        acc += gate * alpha_pow;
        alpha_pow *= alpha;

        Fp2 f = Fp2::one(), g = Fp2::one();
        const Fp2 wires[3] = {a, b, c};
        for (size_t j = 0; j < 3; ++j) {
            f *= wires[j] + zeta * (beta * plonkCosetShift(j)) +
                 Fp2(gamma);
            g *= wires[j] + sigma[j] * beta + Fp2(gamma);
        }
        acc += (z_w * g - z * f) * alpha_pow;
        alpha_pow *= alpha;

        acc += l1 * (z - Fp2::one()) * alpha_pow;
        alpha_pow *= alpha;
    }
    return acc;
}

} // namespace

PlonkProvingKey
plonkSetup(const Circuit &circuit, const FriConfig &cfg,
           const ProverContext &ctx)
{
    const size_t n = circuit.rows();
    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n));

    PlonkProvingKey key;
    key.rows = n;

    // Encode sigma as field values: slot (col, row) -> k_col * w^row.
    std::vector<Fp> w_pows(n);
    Fp cur = Fp::one();
    for (size_t i = 0; i < n; ++i) {
        w_pows[i] = cur;
        cur *= w;
    }
    const auto &perm = circuit.permutation();
    for (size_t col = 0; col < 3; ++col) {
        key.sigmaValues[col].resize(n);
        for (size_t row = 0; row < n; ++row) {
            const size_t target = perm[col * n + row];
            const size_t t_col = target / n;
            const size_t t_row = target % n;
            key.sigmaValues[col][row] =
                plonkCosetShift(t_col) * w_pows[t_row];
        }
    }

    std::vector<std::vector<Fp>> constants{
        circuit.selQL(), circuit.selQR(), circuit.selQO(), circuit.selQM(),
        circuit.selQC(), key.sigmaValues[0], key.sigmaValues[1],
        key.sigmaValues[2]};
    key.constants = std::make_unique<PolynomialBatch>(
        PolynomialBatch::fromValues(std::move(constants), cfg, ctx,
                                    "constants"));
    return key;
}

size_t
PlonkProof::byteSize() const
{
    size_t bytes = (wiresCap.size() + zCap.size() + quotientCap.size()) *
                   HashOut::byteSize();
    for (const auto &row : publicInputs)
        bytes += row.size() * sizeof(uint64_t);
    for (const auto &row : openings)
        bytes += row.size() * 2 * sizeof(uint64_t);
    bytes += fri.byteSize();
    return bytes;
}

PlonkProof
plonkProve(const Circuit &circuit, const PlonkProvingKey &key,
           const std::vector<std::vector<Fp>> &inputs, const FriConfig &cfg,
           const ProverContext &ctx)
{
    UNIZK_SPAN("plonk/prove");
    const size_t n = circuit.rows();
    const size_t reps = inputs.size();
    unizk_assert(reps > 0, "at least one witness repetition required");
    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n));
    const Fp shift = cfg.shift();

    Challenger challenger;
    size_t hash_mark = 0;
    auto record_challenger = [&](const char *label) {
        if (challenger.permutationCount() > hash_mark) {
            ctx.record(HashKernel{challenger.permutationCount() -
                                  hash_mark},
                       std::string("challenger: ") + label);
            hash_mark = challenger.permutationCount();
        }
    };

    PlonkProof proof;
    proof.rows = n;
    proof.repetitions = reps;

    // ---- Wires commitment (Fig. 7 "Wires Commitment"). ----
    for (const auto &digest : key.constants->cap())
        challenger.observe(digest);

    std::vector<std::vector<Fp>> wire_values;
    wire_values.reserve(3 * reps);
    std::vector<std::array<std::vector<Fp>, 3>> per_rep_wires(reps);
    for (size_t r = 0; r < reps; ++r) {
        per_rep_wires[r] = circuit.fillWitness(inputs[r]);
        proof.publicInputs.push_back(
            circuit.publicValues(per_rep_wires[r]));
        for (size_t col = 0; col < 3; ++col)
            wire_values.push_back(per_rep_wires[r][col]);
    }
    // Public inputs are part of the statement: bind them into the
    // transcript before any challenge is drawn.
    for (const auto &row : proof.publicInputs)
        challenger.observe(row);
    PolynomialBatch wires = PolynomialBatch::fromValues(
        std::move(wire_values), cfg, ctx, "wires");
    proof.wiresCap = wires.cap();
    for (const auto &digest : wires.cap())
        challenger.observe(digest);

    const Fp beta = challenger.challenge();
    const Fp gamma = challenger.challenge();
    record_challenger("beta/gamma");

    // ---- Permutation argument Z polynomials (copy constraints). ----
    std::vector<Fp> w_pows(n);
    {
        Fp cur = Fp::one();
        for (size_t i = 0; i < n; ++i) {
            w_pows[i] = cur;
            cur *= w;
        }
    }
    std::vector<std::vector<Fp>> z_values(reps);
    {
        // Timed once around the region: worker threads must not touch
        // the shared breakdown.
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::Polynomial);
        UNIZK_SPAN("plonk/permutation-z");
        parallelFor(0, reps, /*grain=*/1, [&](size_t r_lo, size_t r_hi) {
            for (size_t r = r_lo; r < r_hi; ++r) {
                std::vector<Fp> f(n, Fp::one()), g(n, Fp::one());
                for (size_t col = 0; col < 3; ++col) {
                    const Fp k = plonkCosetShift(col);
                    const auto &wcol = per_rep_wires[r][col];
                    const auto &scol = key.sigmaValues[col];
                    for (size_t i = 0; i < n; ++i) {
                        f[i] *= wcol[i] + beta * k * w_pows[i] + gamma;
                        g[i] *= wcol[i] + beta * scol[i] + gamma;
                    }
                }
                std::vector<Fp> q = g;
                batchInverse(q);
                for (size_t i = 0; i < n; ++i)
                    q[i] *= f[i];
                // Quotient-chunk partial products (paper Eq. 1-2 /
                // Fig. 6).
                const std::vector<Fp> prefix =
                    partialProductsGrouped(q, 32);
                unizk_assert(prefix[n - 1] == Fp::one(),
                             "permutation product must telescope to 1");
                std::vector<Fp> z(n);
                z[0] = Fp::one();
                for (size_t i = 1; i < n; ++i)
                    z[i] = prefix[i - 1];
                z_values[r] = std::move(z);
            }
        });
    }
    ctx.record(VecOpKernel{n, static_cast<uint32_t>(6 * reps),
                           static_cast<uint32_t>(2 * reps), 12, 0},
               "copy constraints: f,g");
    ctx.record(PartialProductKernel{n * reps, 8}, "quotient chunk PP");

    PolynomialBatch z_batch = PolynomialBatch::fromValues(
        std::move(z_values), cfg, ctx, "Z");
    proof.zCap = z_batch.cap();
    for (const auto &digest : z_batch.cap())
        challenger.observe(digest);

    const Fp alpha = challenger.challenge();
    record_challenger("alpha");

    // ---- Quotient polynomial on the 4n coset domain. ----
    const size_t big = n << quotient_blowup_bits;
    std::vector<Fp> combined(big, Fp::zero());
    {
        UNIZK_SPAN("plonk/quotient");
        ScopedKernelTimer ntt_timer(ctx.breakdown, KernelClass::Ntt);
        // LDEs of everything we need, natural order. All 8 + 4*reps
        // source polynomials are independent: gather them into one
        // batch so the engine picks the parallel axis and builds the
        // twiddle table once.
        const size_t num_ldes = 8 + 4 * reps;
        std::vector<std::vector<Fp>> batch(num_ldes);
        for (size_t t = 0; t < 5; ++t)
            batch[t] = key.constants->coefficients(t);
        for (size_t t = 5; t < 8; ++t)
            batch[t] = key.constants->coefficients(t);
        for (size_t t = 0; t < 3 * reps; ++t)
            batch[8 + t] = wires.coefficients(t);
        for (size_t t = 0; t < reps; ++t)
            batch[8 + 3 * reps + t] = z_batch.coefficients(t);
        auto ldes = ldeBatchNN(std::move(batch),
                               uint32_t{1} << quotient_blowup_bits, shift);
        std::vector<std::vector<Fp>> sel_lde(5), sig_lde(3);
        std::vector<std::vector<Fp>> wire_lde(3 * reps), z_lde(reps);
        for (size_t t = 0; t < 5; ++t)
            sel_lde[t] = std::move(ldes[t]);
        for (size_t t = 0; t < 3; ++t)
            sig_lde[t] = std::move(ldes[5 + t]);
        for (size_t t = 0; t < 3 * reps; ++t)
            wire_lde[t] = std::move(ldes[8 + t]);
        for (size_t t = 0; t < reps; ++t)
            z_lde[t] = std::move(ldes[8 + 3 * reps + t]);
        ctx.record(NttKernel{log2Exact(big),
                             8 + 4 * reps, false, true, false,
                             PolyLayout::PolyMajor},
                   "quotient: coset LDEs");

        ScopedKernelTimer poly_timer(ctx.breakdown,
                                     KernelClass::Polynomial);
        // Domain points and L_1 values.
        const Fp w_big = Fp::primitiveRootOfUnity(log2Exact(big));
        std::vector<Fp> xs(big);
        {
            Fp cur = shift;
            for (size_t i = 0; i < big; ++i) {
                xs[i] = cur;
                cur *= w_big;
            }
        }
        const std::vector<Fp> z_h =
            vanishingOnCoset(n, uint32_t{1} << quotient_blowup_bits, shift);
        std::vector<Fp> l1(big);
        for (size_t i = 0; i < big; ++i)
            l1[i] = (xs[i] - Fp::one()) * Fp(static_cast<uint64_t>(n));
        batchInverse(l1);
        for (size_t i = 0; i < big; ++i)
            l1[i] *= z_h[i];

        // Lagrange values for the public-input rows over the coset:
        // L_row(x) = Z_H(x) * w^row / (n * (x - w^row)).
        const auto &pub_rows = circuit.publicRows();
        std::vector<std::vector<Fp>> l_rows(pub_rows.size());
        for (size_t k = 0; k < pub_rows.size(); ++k) {
            const Fp point = w.pow(pub_rows[k]);
            std::vector<Fp> denom(big);
            for (size_t i = 0; i < big; ++i)
                denom[i] =
                    (xs[i] - point) * Fp(static_cast<uint64_t>(n));
            batchInverse(denom);
            l_rows[k].resize(big);
            for (size_t i = 0; i < big; ++i)
                l_rows[k][i] = z_h[i] * point * denom[i];
        }

        const size_t rot = size_t{1} << quotient_blowup_bits;
        // Alpha powers per repetition, precomputed so the evaluation
        // can run index-major: each point i is independent, and the
        // per-point accumulation keeps the original r-ascending order,
        // so the result is bitwise identical to the serial rep-major
        // loop.
        std::vector<std::array<Fp, 3>> rep_alpha(reps);
        {
            Fp alpha_pow = Fp::one();
            for (size_t r = 0; r < reps; ++r) {
                rep_alpha[r][0] = alpha_pow;
                rep_alpha[r][1] = alpha_pow * alpha;
                rep_alpha[r][2] = rep_alpha[r][1] * alpha;
                alpha_pow = rep_alpha[r][2] * alpha;
            }
        }
        parallelFor(0, big, /*grain=*/256, [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
                Fp acc;
                for (size_t r = 0; r < reps; ++r) {
                    const auto &a = wire_lde[3 * r + 0];
                    const auto &b = wire_lde[3 * r + 1];
                    const auto &c = wire_lde[3 * r + 2];
                    const auto &z = z_lde[r];
                    Fp gate = sel_lde[0][i] * a[i] +
                              sel_lde[1][i] * b[i] +
                              sel_lde[2][i] * c[i] +
                              sel_lde[3][i] * a[i] * b[i] +
                              sel_lde[4][i];
                    for (size_t k = 0; k < pub_rows.size(); ++k)
                        gate -= l_rows[k][i] * proof.publicInputs[r][k];
                    Fp f = Fp::one(), g = Fp::one();
                    const Fp wv[3] = {a[i], b[i], c[i]};
                    for (size_t j = 0; j < 3; ++j) {
                        f *= wv[j] + beta * plonkCosetShift(j) * xs[i] +
                             gamma;
                        g *= wv[j] + beta * sig_lde[j][i] + gamma;
                    }
                    const Fp z_w = z[(i + rot) % big];
                    const Fp perm = z_w * g - z[i] * f;
                    const Fp l1_term = l1[i] * (z[i] - Fp::one());
                    acc += gate * rep_alpha[r][0] +
                           perm * rep_alpha[r][1] +
                           l1_term * rep_alpha[r][2];
                }
                combined[i] = acc;
            }
        });

        // Divide by Z_H (nonzero on the coset; only `blowup` distinct
        // values, invert once each).
        std::vector<Fp> z_h_inv(
            z_h.begin(),
            z_h.begin() + static_cast<std::ptrdiff_t>(
                              size_t{1} << quotient_blowup_bits));
        batchInverse(z_h_inv);
        parallelFor(0, big, /*grain=*/1024, [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
                combined[i] *= z_h_inv[i % z_h_inv.size()];
        });
    }
    ctx.record(VecOpKernel{big, static_cast<uint32_t>(8 + 4 * reps), 1,
                           static_cast<uint32_t>(30 * reps),
                           /*randomAccessGranularity=*/
                           static_cast<uint32_t>(8 * 3)},
               "quotient: gate + permutation constraints");

    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::Ntt);
        UNIZK_SPAN("plonk/quotient-intt");
        cosetInttNN(combined, shift);
    }
    ctx.record(NttKernel{log2Exact(big), 1, true, true, false,
                         PolyLayout::PolyMajor},
               "quotient: iNTT");
    // Degree must be below 4n by construction.
    std::vector<std::vector<Fp>> chunks(plonkQuotientChunks);
    for (size_t k = 0; k < plonkQuotientChunks; ++k) {
        chunks[k].assign(
            combined.begin() + static_cast<std::ptrdiff_t>(k * n),
            combined.begin() + static_cast<std::ptrdiff_t>((k + 1) * n));
    }
    PolynomialBatch quotient = PolynomialBatch::fromCoefficients(
        std::move(chunks), cfg, ctx, "quotient");
    proof.quotientCap = quotient.cap();
    for (const auto &digest : quotient.cap())
        challenger.observe(digest);

    const Fp2 zeta = challenger.challengeExt();
    record_challenger("zeta");

    // ---- Openings at zeta and w*zeta. ----
    const std::vector<Fp2> points{zeta, zeta * w};
    const std::vector<const PolynomialBatch *> batches{
        key.constants.get(), &wires, &z_batch, &quotient};
    proof.openings.resize(points.size());
    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::Polynomial);
        UNIZK_SPAN("plonk/openings");
        for (size_t j = 0; j < points.size(); ++j) {
            for (const auto *batch : batches) {
                for (const Fp2 &v : batch->evalAllExt(points[j]))
                    proof.openings[j].push_back(v);
            }
        }
    }
    ctx.record(VecOpKernel{n, static_cast<uint32_t>(
                                  flatPolyCount(reps)),
                           1, 4, 0},
               "openings: evaluate at zeta, w*zeta");
    for (const auto &row : proof.openings) {
        for (const Fp2 &v : row) {
            challenger.observe(v.limb(0));
            challenger.observe(v.limb(1));
        }
    }
    record_challenger("openings");

    // Sanity: the opened values must satisfy the quotient identity.
    {
        const Fp2 expected = combinedConstraintAtZeta(
            proof.openings[0], proof.openings[1], zeta, n, reps, beta,
            gamma, alpha, circuit.publicRows(), proof.publicInputs);
        Fp2 t_at_zeta;
        const Fp2 zeta_n = zeta.pow(n);
        Fp2 zpow = Fp2::one();
        for (size_t k = 0; k < plonkQuotientChunks; ++k) {
            t_at_zeta +=
                proof.openings[0][quotientOffset(reps) + k] * zpow;
            zpow *= zeta_n;
        }
        unizk_assert(expected == t_at_zeta * (zeta_n - Fp2::one()),
                     "prover-side quotient identity failed");
    }

    proof.fri = friProve(batches, points, proof.openings, challenger, cfg,
                         ctx);
    record_challenger("fri");
    return proof;
}

bool
plonkVerify(const MerkleCap &constants_cap, const PlonkProof &proof,
            const FriConfig &cfg, const std::vector<size_t> &public_rows)
{
    const size_t n = proof.rows;
    const size_t reps = proof.repetitions;
    if (n == 0 || !isPowerOfTwo(n) || reps == 0)
        return false;
    const size_t num_polys = flatPolyCount(reps);
    if (proof.openings.size() != 2)
        return false;
    for (const auto &row : proof.openings)
        if (row.size() != num_polys)
            return false;

    const Fp w = Fp::primitiveRootOfUnity(log2Exact(n));

    if (proof.publicInputs.size() != reps)
        return false;
    for (const auto &row : proof.publicInputs)
        if (row.size() != public_rows.size())
            return false;

    Challenger challenger;
    for (const auto &digest : constants_cap)
        challenger.observe(digest);
    for (const auto &row : proof.publicInputs)
        challenger.observe(row);
    for (const auto &digest : proof.wiresCap)
        challenger.observe(digest);
    const Fp beta = challenger.challenge();
    const Fp gamma = challenger.challenge();
    for (const auto &digest : proof.zCap)
        challenger.observe(digest);
    const Fp alpha = challenger.challenge();
    for (const auto &digest : proof.quotientCap)
        challenger.observe(digest);
    const Fp2 zeta = challenger.challengeExt();
    for (const auto &row : proof.openings) {
        for (const Fp2 &v : row) {
            challenger.observe(v.limb(0));
            challenger.observe(v.limb(1));
        }
    }

    // Quotient identity at zeta.
    const Fp2 expected = combinedConstraintAtZeta(
        proof.openings[0], proof.openings[1], zeta, n, reps, beta, gamma,
        alpha, public_rows, proof.publicInputs);
    const Fp2 zeta_n = zeta.pow(n);
    Fp2 t_at_zeta;
    {
        Fp2 zpow = Fp2::one();
        for (size_t k = 0; k < plonkQuotientChunks; ++k) {
            t_at_zeta +=
                proof.openings[0][quotientOffset(reps) + k] * zpow;
            zpow *= zeta_n;
        }
    }
    if (expected != t_at_zeta * (zeta_n - Fp2::one()))
        return false;

    // FRI certifies the openings.
    const std::vector<Fp2> points{zeta, zeta * w};
    const std::vector<FriBatchInfo> batches{
        {constants_cap, 8},
        {proof.wiresCap, 3 * reps},
        {proof.zCap, reps},
        {proof.quotientCap, plonkQuotientChunks}};
    return friVerify(batches, n, points, proof.openings, proof.fri,
                     challenger, cfg);
}

} // namespace unizk
