/**
 * @file
 * The Plonk PIOP with FRI commitments -- the "mini-Plonky2" protocol
 * (paper Fig. 1). Prover and verifier share the transcript layout and
 * the flattened polynomial ordering defined here.
 *
 * Committed batches, in transcript order:
 *   0. constants:  qL qR qO qM qC sigma0 sigma1 sigma2       (8 polys)
 *   1. wires:      a_r b_r c_r per repetition r              (3R polys)
 *   2. Z:          one permutation-argument polynomial per r (R polys)
 *   3. quotient:   4 chunks of the combined quotient t       (4 polys)
 *
 * All batches are opened at zeta and at w*zeta (w = subgroup generator),
 * then a single batched FRI proof certifies every opening.
 */

#ifndef UNIZK_PLONK_PLONK_H
#define UNIZK_PLONK_PLONK_H

#include <memory>
#include <vector>

#include "fri/fri.h"
#include "plonk/circuit.h"

namespace unizk {

/** Number of quotient chunks (degree bound of the quotient is 4n). */
constexpr size_t plonkQuotientChunks = 4;

/** Coset multipliers k_j separating the three wire columns. */
inline Fp
plonkCosetShift(size_t col)
{
    // k_0 = 1, k_1 = 7, k_2 = 49: distinct cosets of any power-of-two
    // subgroup since 7 generates the full multiplicative group.
    Fp k = Fp::one();
    for (size_t i = 0; i < col; ++i)
        k *= Fp(7);
    return k;
}

/** Preprocessed prover data: the committed circuit constants. */
struct PlonkProvingKey
{
    std::unique_ptr<PolynomialBatch> constants;
    std::array<std::vector<Fp>, 3> sigmaValues; ///< encoded, natural order
    size_t rows = 0;
};

/** Commit to the circuit's selector and sigma polynomials. */
PlonkProvingKey plonkSetup(const Circuit &circuit, const FriConfig &cfg,
                           const ProverContext &ctx);

struct PlonkProof
{
    MerkleCap wiresCap;
    MerkleCap zCap;
    MerkleCap quotientCap;
    /** Public-input values per repetition (part of the statement). */
    std::vector<std::vector<Fp>> publicInputs;
    /** openings[j][k]: flattened poly k at point j (0: zeta, 1: w*zeta). */
    std::vector<std::vector<Fp2>> openings;
    FriProof fri;
    size_t rows = 0;
    size_t repetitions = 0;

    size_t byteSize() const;
};

/**
 * Generate a proof for @p repetitions independent witnesses of
 * @p circuit (inputs[r] feeds repetition r).
 */
PlonkProof plonkProve(const Circuit &circuit, const PlonkProvingKey &key,
                      const std::vector<std::vector<Fp>> &inputs,
                      const FriConfig &cfg, const ProverContext &ctx);

/**
 * Verify. @p constants_cap is the commitment to the circuit constants
 * (from PlonkProvingKey::constants->cap(), distributed as the
 * verification key) and @p public_rows the circuit's public-input rows
 * (Circuit::publicRows()); the claimed public values live in
 * proof.publicInputs.
 */
bool plonkVerify(const MerkleCap &constants_cap, const PlonkProof &proof,
                 const FriConfig &cfg,
                 const std::vector<size_t> &public_rows = {});

} // namespace unizk

#endif // UNIZK_PLONK_PLONK_H
