#include "plonk/circuit.h"

#include "common/bits.h"
#include "common/logging.h"

namespace unizk {

Var
CircuitBuilder::newVar()
{
    return Var{num_vars++};
}

Var
CircuitBuilder::input()
{
    const Var v = newVar();
    input_vars.push_back(v.id);
    ++num_inputs;
    return v;
}

Var
CircuitBuilder::publicInput()
{
    const Var v = input();
    // Binding gate: qL = 1, everything else 0. The gate constraint on
    // this row is a + PI(row) = 0 with PI(row) = -value, so the wire
    // is pinned to the public value.
    public_rows.push_back(gates.size());
    public_input_positions.push_back(
        static_cast<uint32_t>(input_vars.size() - 1));
    gates.push_back(Gate{Fp::one(), Fp::zero(), Fp::zero(), Fp::zero(),
                         Fp::zero(), v, Var{}, Var{}});
    return v;
}

Var
CircuitBuilder::constant(Fp value)
{
    const Var v = newVar();
    // value - v = 0
    gates.push_back(Gate{Fp::zero(), Fp::zero(), Fp::one().neg(),
                         Fp::zero(), value, Var{}, Var{}, v});
    return v;
}

Var
CircuitBuilder::add(Var x, Var y)
{
    const Var v = newVar();
    gates.push_back(Gate{Fp::one(), Fp::one(), Fp::one().neg(), Fp::zero(),
                         Fp::zero(), x, y, v});
    return v;
}

Var
CircuitBuilder::sub(Var x, Var y)
{
    const Var v = newVar();
    gates.push_back(Gate{Fp::one(), Fp::one().neg(), Fp::one().neg(),
                         Fp::zero(), Fp::zero(), x, y, v});
    return v;
}

Var
CircuitBuilder::mul(Var x, Var y)
{
    const Var v = newVar();
    gates.push_back(Gate{Fp::zero(), Fp::zero(), Fp::one().neg(),
                         Fp::one(), Fp::zero(), x, y, v});
    return v;
}

Var
CircuitBuilder::linear(Fp cx, Var x, Fp cy, Var y, Fp k)
{
    const Var v = newVar();
    gates.push_back(
        Gate{cx, cy, Fp::one().neg(), Fp::zero(), k, x, y, v});
    return v;
}

Var
CircuitBuilder::mulAdd(Var x, Var y, Var z)
{
    return add(mul(x, y), z);
}

void
CircuitBuilder::assertConstant(Var x, Fp c)
{
    gates.push_back(Gate{Fp::one(), Fp::zero(), Fp::zero(), Fp::zero(),
                         c.neg(), x, Var{}, Var{}});
}

void
CircuitBuilder::assertEqual(Var x, Var y)
{
    gates.push_back(Gate{Fp::one(), Fp::one().neg(), Fp::zero(),
                         Fp::zero(), Fp::zero(), x, y, Var{}});
}

Circuit
CircuitBuilder::build(size_t min_rows) const
{
    Circuit c;
    c.gates = gates;
    c.input_vars = input_vars;
    c.public_rows = public_rows;
    c.num_vars = num_vars;
    c.n = nextPowerOfTwo(std::max(min_rows, gates.size()));

    const size_t n = c.n;
    c.q_l.assign(n, Fp::zero());
    c.q_r.assign(n, Fp::zero());
    c.q_o.assign(n, Fp::zero());
    c.q_m.assign(n, Fp::zero());
    c.q_c.assign(n, Fp::zero());
    for (size_t i = 0; i < gates.size(); ++i) {
        c.q_l[i] = gates[i].qL;
        c.q_r[i] = gates[i].qR;
        c.q_o[i] = gates[i].qO;
        c.q_m[i] = gates[i].qM;
        c.q_c[i] = gates[i].qC;
    }

    // Copy constraints: each variable's slots form one cycle of sigma.
    c.sigma.resize(3 * n);
    for (size_t s = 0; s < 3 * n; ++s)
        c.sigma[s] = s; // identity for unused slots

    std::vector<std::vector<size_t>> var_slots(num_vars);
    for (size_t row = 0; row < gates.size(); ++row) {
        const Gate &g = gates[row];
        if (g.a.isValid())
            var_slots[g.a.id].push_back(0 * n + row);
        if (g.b.isValid())
            var_slots[g.b.id].push_back(1 * n + row);
        if (g.c.isValid())
            var_slots[g.c.id].push_back(2 * n + row);
    }
    for (const auto &slots : var_slots) {
        for (size_t i = 0; i + 1 < slots.size(); ++i)
            c.sigma[slots[i]] = slots[i + 1];
        if (slots.size() > 1)
            c.sigma[slots.back()] = slots.front();
    }
    return c;
}

std::array<std::vector<Fp>, 3>
Circuit::fillWitness(const std::vector<Fp> &inputs) const
{
    unizk_assert(inputs.size() == input_vars.size(),
                 "wrong number of witness inputs");
    std::vector<Fp> values(num_vars);
    std::vector<bool> defined(num_vars, false);
    for (size_t i = 0; i < inputs.size(); ++i) {
        values[input_vars[i]] = inputs[i];
        defined[input_vars[i]] = true;
    }

    auto slot_value = [&](Var v) -> Fp {
        if (!v.isValid())
            return Fp::zero();
        unizk_assert(defined[v.id], "gate uses undefined variable");
        return values[v.id];
    };

    std::vector<bool> is_public_row(gates.size(), false);
    for (const size_t row : public_rows)
        is_public_row[row] = true;

    size_t row_idx = 0;
    for (const Gate &g : gates) {
        const bool public_row = is_public_row[row_idx++];
        if (public_row) {
            // Public-input binding rows are satisfied through PI(X),
            // not through the bare gate constraint.
            (void)slot_value(g.a);
            continue;
        }
        const Fp a = slot_value(g.a);
        const Fp b = slot_value(g.b);
        const Fp partial = g.qL * a + g.qR * b + g.qM * a * b + g.qC;
        if (g.c.isValid() && !defined[g.c.id]) {
            unizk_assert(!g.qO.isZero(),
                         "cannot solve gate output with qO = 0");
            values[g.c.id] = partial * g.qO.neg().inverse();
            defined[g.c.id] = true;
        } else {
            const Fp cval = slot_value(g.c);
            unizk_assert((partial + g.qO * cval).isZero(),
                         "witness does not satisfy gate constraint");
        }
    }

    std::array<std::vector<Fp>, 3> wires;
    for (auto &col : wires)
        col.assign(n, Fp::zero());
    for (size_t row = 0; row < gates.size(); ++row) {
        const Gate &g = gates[row];
        if (g.a.isValid())
            wires[0][row] = values[g.a.id];
        if (g.b.isValid())
            wires[1][row] = values[g.b.id];
        if (g.c.isValid())
            wires[2][row] = values[g.c.id];
    }
    unizk_assert(checkWitness(wires), "filled witness fails check");
    return wires;
}

bool
Circuit::checkWitness(const std::array<std::vector<Fp>, 3> &wires) const
{
    std::vector<Fp> pi(n, Fp::zero());
    for (const size_t row : public_rows)
        pi[row] = wires[0][row].neg(); // PI(row) = -public value
    for (size_t i = 0; i < n; ++i) {
        const Fp a = wires[0][i];
        const Fp b = wires[1][i];
        const Fp c = wires[2][i];
        const Fp v = q_l[i] * a + q_r[i] * b + q_o[i] * c +
                     q_m[i] * a * b + q_c[i] + pi[i];
        if (!v.isZero())
            return false;
    }
    return true;
}

std::vector<Fp>
Circuit::publicValues(const std::array<std::vector<Fp>, 3> &wires) const
{
    std::vector<Fp> out;
    out.reserve(public_rows.size());
    for (const size_t row : public_rows)
        out.push_back(wires[0][row]);
    return out;
}

} // namespace unizk
