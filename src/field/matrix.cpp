#include "field/matrix.h"

#include <algorithm>

namespace unizk {

FpMatrix
FpMatrix::identity(size_t n)
{
    FpMatrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m.at(i, i) = Fp::one();
    return m;
}

FpMatrix
FpMatrix::mul(const FpMatrix &other) const
{
    unizk_assert(cols_ == other.rows_, "matrix dimension mismatch");
    FpMatrix out(rows_, other.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            const Fp a = at(i, k);
            if (a.isZero())
                continue;
            for (size_t j = 0; j < other.cols_; ++j)
                out.at(i, j) += a * other.at(k, j);
        }
    }
    return out;
}

std::vector<Fp>
FpMatrix::mulVector(const std::vector<Fp> &v) const
{
    unizk_assert(v.size() == cols_, "matrix-vector dimension mismatch");
    std::vector<Fp> out(rows_);
    for (size_t i = 0; i < rows_; ++i) {
        Fp acc;
        for (size_t j = 0; j < cols_; ++j)
            acc += at(i, j) * v[j];
        out[i] = acc;
    }
    return out;
}

std::vector<Fp>
FpMatrix::vecMul(const std::vector<Fp> &v) const
{
    unizk_assert(v.size() == rows_, "vector-matrix dimension mismatch");
    std::vector<Fp> out(cols_);
    for (size_t j = 0; j < cols_; ++j) {
        Fp acc;
        for (size_t i = 0; i < rows_; ++i)
            acc += v[i] * at(i, j);
        out[j] = acc;
    }
    return out;
}

FpMatrix
FpMatrix::transposed() const
{
    FpMatrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

std::optional<FpMatrix>
FpMatrix::inverse() const
{
    unizk_assert(rows_ == cols_, "inverse of non-square matrix");
    const size_t n = rows_;
    FpMatrix a = *this;
    FpMatrix inv = identity(n);

    for (size_t col = 0; col < n; ++col) {
        // Find a pivot.
        size_t pivot = col;
        while (pivot < n && a.at(pivot, col).isZero())
            ++pivot;
        if (pivot == n)
            return std::nullopt; // singular
        if (pivot != col) {
            for (size_t j = 0; j < n; ++j) {
                std::swap(a.at(pivot, j), a.at(col, j));
                std::swap(inv.at(pivot, j), inv.at(col, j));
            }
        }
        const Fp scale = a.at(col, col).inverse();
        for (size_t j = 0; j < n; ++j) {
            a.at(col, j) *= scale;
            inv.at(col, j) *= scale;
        }
        for (size_t i = 0; i < n; ++i) {
            if (i == col)
                continue;
            const Fp f = a.at(i, col);
            if (f.isZero())
                continue;
            for (size_t j = 0; j < n; ++j) {
                a.at(i, j) -= f * a.at(col, j);
                inv.at(i, j) -= f * inv.at(col, j);
            }
        }
    }
    return inv;
}

Fp
FpMatrix::determinant() const
{
    unizk_assert(rows_ == cols_, "determinant of non-square matrix");
    const size_t n = rows_;
    FpMatrix a = *this;
    Fp det = Fp::one();
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        while (pivot < n && a.at(pivot, col).isZero())
            ++pivot;
        if (pivot == n)
            return Fp::zero();
        if (pivot != col) {
            for (size_t j = 0; j < n; ++j)
                std::swap(a.at(pivot, j), a.at(col, j));
            det = det.neg();
        }
        det *= a.at(col, col);
        const Fp scale = a.at(col, col).inverse();
        for (size_t i = col + 1; i < n; ++i) {
            const Fp f = a.at(i, col) * scale;
            if (f.isZero())
                continue;
            for (size_t j = col; j < n; ++j)
                a.at(i, j) -= f * a.at(col, j);
        }
    }
    return det;
}

FpMatrix
FpMatrix::minorMatrix(size_t r, size_t c) const
{
    unizk_assert(rows_ > 1 && cols_ > 1, "minor of degenerate matrix");
    FpMatrix out(rows_ - 1, cols_ - 1);
    for (size_t i = 0, oi = 0; i < rows_; ++i) {
        if (i == r)
            continue;
        for (size_t j = 0, oj = 0; j < cols_; ++j) {
            if (j == c)
                continue;
            out.at(oi, oj) = at(i, j);
            ++oj;
        }
        ++oi;
    }
    return out;
}

namespace {

/**
 * Check all k x k minors of @p m for nonzero determinant, for the given
 * row/column index combinations. Recursive combination enumeration.
 */
bool
allMinorsNonsingular(const FpMatrix &m, size_t k)
{
    const size_t n = m.rows();
    std::vector<size_t> rows_sel(k), cols_sel(k);

    // Enumerate combinations of rows and columns.
    std::vector<size_t> ridx(k);
    for (size_t i = 0; i < k; ++i)
        ridx[i] = i;
    while (true) {
        std::vector<size_t> cidx(k);
        for (size_t i = 0; i < k; ++i)
            cidx[i] = i;
        while (true) {
            FpMatrix sub(k, k);
            for (size_t i = 0; i < k; ++i)
                for (size_t j = 0; j < k; ++j)
                    sub.at(i, j) = m.at(ridx[i], cidx[j]);
            if (sub.determinant().isZero())
                return false;
            // Next column combination.
            size_t pos = k;
            while (pos > 0 && cidx[pos - 1] == n - (k - (pos - 1)))
                --pos;
            if (pos == 0)
                break;
            ++cidx[pos - 1];
            for (size_t i = pos; i < k; ++i)
                cidx[i] = cidx[i - 1] + 1;
        }
        // Next row combination.
        size_t pos = k;
        while (pos > 0 && ridx[pos - 1] == n - (k - (pos - 1)))
            --pos;
        if (pos == 0)
            break;
        ++ridx[pos - 1];
        for (size_t i = pos; i < k; ++i)
            ridx[i] = ridx[i - 1] + 1;
    }
    return true;
}

} // namespace

bool
FpMatrix::isMds() const
{
    unizk_assert(rows_ == cols_, "MDS check on non-square matrix");
    const size_t n = rows_;
    const size_t max_exhaustive = 6;
    const size_t limit = n <= max_exhaustive ? n : 2;
    for (size_t k = 1; k <= limit; ++k) {
        if (!allMinorsNonsingular(*this, k))
            return false;
    }
    if (n > max_exhaustive && determinant().isZero())
        return false;
    return true;
}

} // namespace unizk
