/**
 * @file
 * Arithmetic in the Goldilocks prime field F_p with p = 2^64 - 2^32 + 1.
 *
 * This is the base field used by Plonky2 and Starky. Its structure makes
 * modular reduction on 64-bit machines cheap:
 *
 *   2^64 === 2^32 - 1   (mod p)
 *   2^96 === -1         (mod p)
 *
 * so a 128-bit product reduces with a handful of adds/subtracts. The same
 * identities are what make the hardware modular multiplier in each UniZK
 * PE small (Section 4 of the paper).
 *
 * The multiplicative group has order p - 1 = 2^32 * 3 * 5 * 17 * 257 * 65537,
 * giving a 2-adicity of 32: subgroups of every power-of-two order up to 2^32
 * exist, which is what enables radix-2 NTTs on power-of-two domains.
 */

#ifndef UNIZK_FIELD_GOLDILOCKS_H
#define UNIZK_FIELD_GOLDILOCKS_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace unizk {

/**
 * An element of the Goldilocks field. Values are kept in canonical form
 * (less than the modulus) at all times.
 */
class Fp
{
  public:
    /** The Goldilocks prime, 2^64 - 2^32 + 1. */
    static constexpr uint64_t modulus = 0xFFFFFFFF00000001ULL;

    /** Generator of the full multiplicative group (order p - 1). */
    static constexpr uint64_t multiplicativeGenerator = 7;

    /** Largest k such that 2^k divides p - 1. */
    static constexpr uint32_t twoAdicity = 32;

    constexpr Fp() : val(0) {}

    /** Construct from an arbitrary 64-bit integer, reducing mod p. */
    constexpr explicit Fp(uint64_t v)
        : val(v >= modulus ? v - modulus : v)
    {}

    /** Canonical representative in [0, p). */
    constexpr uint64_t value() const { return val; }

    constexpr bool isZero() const { return val == 0; }
    constexpr bool isOne() const { return val == 1; }

    static constexpr Fp zero() { return Fp(); }
    static constexpr Fp one() { return Fp(1); }

    friend constexpr bool
    operator==(const Fp &a, const Fp &b)
    {
        return a.val == b.val;
    }

    friend constexpr bool
    operator!=(const Fp &a, const Fp &b)
    {
        return a.val != b.val;
    }

    friend constexpr Fp
    operator+(const Fp &a, const Fp &b)
    {
        uint64_t s = a.val + b.val;
        // On wraparound, 2^64 === 2^32 - 1 (mod p).
        if (s < a.val)
            s += 0xFFFFFFFFULL;
        if (s >= modulus)
            s -= modulus;
        return fromCanonical(s);
    }

    friend constexpr Fp
    operator-(const Fp &a, const Fp &b)
    {
        uint64_t d = a.val - b.val;
        if (a.val < b.val)
            d += modulus; // wraps: net effect is a - b + p
        return fromCanonical(d);
    }

    friend constexpr Fp
    operator*(const Fp &a, const Fp &b)
    {
        return fromCanonical(reduce128(
            static_cast<unsigned __int128>(a.val) * b.val));
    }

    constexpr Fp &
    operator+=(const Fp &o)
    {
        *this = *this + o;
        return *this;
    }

    constexpr Fp &
    operator-=(const Fp &o)
    {
        *this = *this - o;
        return *this;
    }

    constexpr Fp &
    operator*=(const Fp &o)
    {
        *this = *this * o;
        return *this;
    }

    /** Additive inverse. */
    constexpr Fp
    neg() const
    {
        return val == 0 ? Fp() : fromCanonical(modulus - val);
    }

    friend constexpr Fp operator-(const Fp &a) { return a.neg(); }

    /** a^e by square-and-multiply. */
    constexpr Fp
    pow(uint64_t e) const
    {
        Fp base = *this;
        Fp acc = Fp::one();
        while (e != 0) {
            if (e & 1)
                acc *= base;
            base = base.squared();
            e >>= 1;
        }
        return acc;
    }

    /**
     * Multiplicative inverse; panics on zero (fails the constant
     * evaluation when invoked at compile time).
     */
    constexpr Fp
    inverse() const
    {
        unizk_assert(!isZero(), "inverse of zero");
        // Fermat: a^(p-2) = a^-1.
        return pow(modulus - 2);
    }

    /** Doubling (slightly cheaper than generic add). */
    constexpr Fp doubled() const { return *this + *this; }

    /** Square. */
    constexpr Fp squared() const { return *this * *this; }

    /**
     * Primitive 2^k-th root of unity (k <= 32), i.e. a generator of the
     * multiplicative subgroup of order 2^k.
     */
    static constexpr Fp
    primitiveRootOfUnity(uint32_t log_n)
    {
        unizk_assert(log_n <= twoAdicity,
                     "requested root order exceeds 2^32");
        // g^( (p-1) / 2^32 ) generates the order-2^32 subgroup; squaring
        // log-many times reaches the requested order.
        Fp root =
            Fp(multiplicativeGenerator).pow((modulus - 1) >> twoAdicity);
        for (uint32_t i = twoAdicity; i > log_n; --i)
            root = root.squared();
        return root;
    }

    /**
     * Branchless addition: same canonical result as operator+, with the
     * carry/overflow adjustments applied by masking instead of
     * branching. The operators' data-dependent branches are ~50/50 on
     * random field elements, and the resulting mispredictions roughly
     * halve the throughput of the NTT butterfly inner loops -- the one
     * place in the prover hot enough to care. Everywhere else the
     * plain operators keep the code simpler.
     * @{
     */
    static constexpr Fp
    addBranchless(Fp a, Fp b)
    {
        uint64_t s = a.val + b.val;
        // On wraparound, 2^64 === 2^32 - 1 (mod p); the adjusted value
        // is then already canonical, so the second mask is zero.
        s += 0xFFFFFFFFULL & -static_cast<uint64_t>(s < a.val);
        s -= modulus & -static_cast<uint64_t>(s >= modulus);
        return fromCanonical(s);
    }

    /** Branchless subtraction: same canonical result as operator-. */
    static constexpr Fp
    subBranchless(Fp a, Fp b)
    {
        uint64_t d = a.val - b.val;
        d += modulus & -static_cast<uint64_t>(a.val < b.val);
        return fromCanonical(d);
    }

    /** Branchless multiplication: same canonical result as operator*. */
    static constexpr Fp
    mulBranchless(Fp a, Fp b)
    {
        const auto x = static_cast<unsigned __int128>(a.val) * b.val;
        const uint64_t lo = static_cast<uint64_t>(x);
        const uint64_t hi = static_cast<uint64_t>(x >> 64);
        const uint64_t mid = hi & 0xFFFFFFFFULL;
        const uint64_t top = hi >> 32;
        // Same decomposition as reduce128, masks instead of branches.
        uint64_t t0 = lo - top;
        t0 -= 0xFFFFFFFFULL & -static_cast<uint64_t>(lo < top);
        const uint64_t t1 = mid * 0xFFFFFFFFULL;
        uint64_t res = t0 + t1;
        res += 0xFFFFFFFFULL & -static_cast<uint64_t>(res < t1);
        res -= modulus & -static_cast<uint64_t>(res >= modulus);
        return fromCanonical(res);
    }
    /** @} */

    /** Reduce a 128-bit value modulo p. */
    static constexpr uint64_t
    reduce128(unsigned __int128 x)
    {
        uint64_t lo = static_cast<uint64_t>(x);
        const uint64_t hi = static_cast<uint64_t>(x >> 64);
        const uint64_t mid = hi & 0xFFFFFFFFULL; // coefficient of 2^64
        const uint64_t top = hi >> 32;           // coefficient of 2^96

        // x = lo + mid*2^64 + top*2^96 === lo + mid*(2^32-1) - top (mod p)
        uint64_t t0 = lo - top;
        if (lo < top)
            t0 -= 0xFFFFFFFFULL; // borrow wrapped by 2^64 === 2^32-1
        const uint64_t t1 = mid * 0xFFFFFFFFULL;
        uint64_t res = t0 + t1;
        if (res < t1)
            res += 0xFFFFFFFFULL;
        if (res >= modulus)
            res -= modulus;
        return res;
    }

  private:
    /** Wrap a value already known to be canonical. */
    static constexpr Fp
    fromCanonical(uint64_t v)
    {
        Fp f;
        f.val = v;
        return f;
    }

    uint64_t val;
};

std::ostream &operator<<(std::ostream &os, const Fp &f);

/**
 * Dot product with lazy reduction: accumulates the 128-bit products and
 * performs a single modular reduction at the end, counting 2^128
 * wraparounds (2^128 === p - 2^32 mod p). Substantially faster than
 * reducing every term; used by the Poseidon linear layers.
 */
inline Fp
fpDot(const Fp *a, const Fp *b, size_t n)
{
    // Two accumulators break the add-with-carry dependency chain.
    unsigned __int128 acc0 = 0, acc1 = 0;
    uint64_t wraps = 0;
    size_t i = 0;
    for (; i + 1 < n; i += 2) {
        const unsigned __int128 p0 =
            static_cast<unsigned __int128>(a[i].value()) * b[i].value();
        acc0 += p0;
        wraps += acc0 < p0; // 128-bit overflow
        const unsigned __int128 p1 =
            static_cast<unsigned __int128>(a[i + 1].value()) *
            b[i + 1].value();
        acc1 += p1;
        wraps += acc1 < p1;
    }
    if (i < n) {
        const unsigned __int128 p0 =
            static_cast<unsigned __int128>(a[i].value()) * b[i].value();
        acc0 += p0;
        wraps += acc0 < p0;
    }
    const unsigned __int128 acc = acc0 + acc1;
    wraps += acc < acc0;
    Fp result = Fp(Fp::reduce128(acc));
    if (wraps) {
        // Each wrap contributes 2^128 === p - 2^32 (mod p).
        result += Fp(wraps) * Fp(Fp::modulus - (uint64_t{1} << 32));
    }
    return result;
}

/**
 * Batch inversion (Montgomery's trick): inverts every element of @p xs
 * with a single field inversion plus 3(n-1) multiplications. Zero elements
 * are not allowed.
 */
void batchInverse(std::vector<Fp> &xs);

/** Uniform random field element from a deterministic RNG. */
constexpr Fp
randomFp(SplitMix64 &rng)
{
    return Fp(rng.nextBelow(Fp::modulus));
}

/**
 * Sanctioned raw-arithmetic helpers. Protocol code sometimes needs the
 * canonical representative as an *integer* -- to draw a query index or to
 * count leading zero bits for proof-of-work grinding. Those are the only
 * places raw uint64_t math on Fp::value() is legitimate, so they live
 * here: everywhere outside src/field/, unizk_lint's fp-raw-arith rule
 * rejects direct arithmetic on value().
 * @{
 */

/** Map a field element to an index in [0, bound); bound must be nonzero. */
constexpr uint64_t
fpIndexBelow(Fp x, uint64_t bound)
{
    unizk_assert(bound != 0, "fpIndexBelow: empty range");
    return x.value() % bound;
}

/** The top @p bits bits of the canonical representative (1 <= bits <= 63). */
constexpr uint64_t
fpHighBits(Fp x, uint32_t bits)
{
    unizk_assert(bits >= 1 && bits <= 63, "fpHighBits: bad width");
    return x.value() >> (64 - bits);
}

/** @} */

} // namespace unizk

#endif // UNIZK_FIELD_GOLDILOCKS_H
