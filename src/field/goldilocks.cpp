#include "field/goldilocks.h"

#include <ostream>

#include "common/thread_pool.h"
#include "field/field_checks.h"

namespace unizk {

std::ostream &
operator<<(std::ostream &os, const Fp &f)
{
    return os << f.value();
}

void
batchInverse(std::vector<Fp> &xs)
{
    if (xs.empty())
        return;
    // Chunked Montgomery's trick: each chunk runs the serial prefix
    // scheme independently (one field inversion per chunk). Inverses
    // are exact canonical values, so the output is bitwise identical
    // for any chunking and thread count.
    parallelFor(0, xs.size(), /*grain=*/2048, [&](size_t lo, size_t hi) {
        std::vector<Fp> prefix(hi - lo);
        Fp acc = Fp::one();
        for (size_t i = lo; i < hi; ++i) {
            unizk_assert(!xs[i].isZero(), "batchInverse: zero element");
            prefix[i - lo] = acc;
            acc *= xs[i];
        }
        Fp inv = acc.inverse();
        for (size_t i = hi; i-- > lo;) {
            const Fp next = inv * xs[i];
            xs[i] = inv * prefix[i - lo];
            inv = next;
        }
    });
}

} // namespace unizk
