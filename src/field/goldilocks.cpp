#include "field/goldilocks.h"

#include <ostream>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace unizk {

Fp
Fp::pow(uint64_t e) const
{
    Fp base = *this;
    Fp acc = Fp::one();
    while (e != 0) {
        if (e & 1)
            acc *= base;
        base = base.squared();
        e >>= 1;
    }
    return acc;
}

Fp
Fp::inverse() const
{
    unizk_assert(!isZero(), "inverse of zero");
    // Fermat: a^(p-2) = a^-1.
    return pow(modulus - 2);
}

Fp
Fp::primitiveRootOfUnity(uint32_t log_n)
{
    unizk_assert(log_n <= twoAdicity, "requested root order exceeds 2^32");
    // g^( (p-1) / 2^32 ) generates the order-2^32 subgroup; squaring
    // log-many times reaches the requested order.
    Fp root = Fp(multiplicativeGenerator).pow((modulus - 1) >> twoAdicity);
    for (uint32_t i = twoAdicity; i > log_n; --i)
        root = root.squared();
    return root;
}

std::ostream &
operator<<(std::ostream &os, const Fp &f)
{
    return os << f.value();
}

void
batchInverse(std::vector<Fp> &xs)
{
    if (xs.empty())
        return;
    // Chunked Montgomery's trick: each chunk runs the serial prefix
    // scheme independently (one field inversion per chunk). Inverses
    // are exact canonical values, so the output is bitwise identical
    // for any chunking and thread count.
    parallelFor(0, xs.size(), /*grain=*/2048, [&](size_t lo, size_t hi) {
        std::vector<Fp> prefix(hi - lo);
        Fp acc = Fp::one();
        for (size_t i = lo; i < hi; ++i) {
            unizk_assert(!xs[i].isZero(), "batchInverse: zero element");
            prefix[i - lo] = acc;
            acc *= xs[i];
        }
        Fp inv = acc.inverse();
        for (size_t i = hi; i-- > lo;) {
            const Fp next = inv * xs[i];
            xs[i] = inv * prefix[i - lo];
            inv = next;
        }
    });
}

Fp
randomFp(SplitMix64 &rng)
{
    return Fp(rng.nextBelow(Fp::modulus));
}

} // namespace unizk
