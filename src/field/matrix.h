/**
 * @file
 * Small dense matrices over the Goldilocks field.
 *
 * Used for the Poseidon MDS matrix, the sparse factorization of the
 * partial-round linear layers (paper Algorithm 1: PreMDSMatrix /
 * SparseMDSMatrix), and for checking the MDS property of generated
 * matrices. Sizes are tiny (12x12), so simple O(n^3) algorithms suffice.
 */

#ifndef UNIZK_FIELD_MATRIX_H
#define UNIZK_FIELD_MATRIX_H

#include <cstddef>
#include <optional>
#include <vector>

#include "field/goldilocks.h"

namespace unizk {

/** Row-major dense matrix over F_p. */
class FpMatrix
{
  public:
    FpMatrix() : rows_(0), cols_(0) {}

    FpMatrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data(rows * cols)
    {}

    static FpMatrix identity(size_t n);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    Fp &
    at(size_t r, size_t c)
    {
        unizk_assert(r < rows_ && c < cols_, "matrix index out of range");
        return data[r * cols_ + c];
    }

    const Fp &
    at(size_t r, size_t c) const
    {
        unizk_assert(r < rows_ && c < cols_, "matrix index out of range");
        return data[r * cols_ + c];
    }

    friend bool
    operator==(const FpMatrix &a, const FpMatrix &b)
    {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data == b.data;
    }

    /** Matrix-matrix product. */
    FpMatrix mul(const FpMatrix &other) const;

    /** Matrix-vector product (treats @p v as a column vector). */
    std::vector<Fp> mulVector(const std::vector<Fp> &v) const;

    /** Vector-matrix product (treats @p v as a row vector). */
    std::vector<Fp> vecMul(const std::vector<Fp> &v) const;

    /** Transpose. */
    FpMatrix transposed() const;

    /**
     * Inverse by Gauss-Jordan elimination.
     * @return std::nullopt if singular.
     */
    std::optional<FpMatrix> inverse() const;

    /** Determinant via LU-style elimination. */
    Fp determinant() const;

    /** Submatrix removing row @p r and column @p c. */
    FpMatrix minorMatrix(size_t r, size_t c) const;

    /**
     * Check the MDS property: every square submatrix is nonsingular.
     * Exponential in size; intended for the 12x12 Poseidon matrix where
     * we instead verify via the equivalent "all minors of the extended
     * matrix" condition on small sizes in tests. For n <= 6 this checks
     * exhaustively; larger sizes check 1x1 and 2x2 minors plus overall
     * invertibility (a strong randomized screen).
     */
    bool isMds() const;

  private:
    size_t rows_;
    size_t cols_;
    std::vector<Fp> data;
};

} // namespace unizk

#endif // UNIZK_FIELD_MATRIX_H
