/**
 * @file
 * Compile-time verification of the Goldilocks field constants.
 *
 * Every proof, benchmark table, and simulator figure in this repository
 * rests on the handful of constants in goldilocks.h. A bad edit there
 * (wrong modulus digit, wrong generator, wrong 2-adicity) would not
 * crash anything -- it would silently produce wrong proofs and wrong
 * Table 3 rows. The static_asserts below make any such edit a compile
 * error instead.
 *
 * All checks run during constant evaluation only; this header generates
 * no code. It is included by goldilocks.cpp (so the checks are always
 * compiled into the library build) and by ntt.cpp (whose twiddle tables
 * depend on the subgroup structure verified here).
 */

#ifndef UNIZK_FIELD_FIELD_CHECKS_H
#define UNIZK_FIELD_FIELD_CHECKS_H

#include <cstdint>

#include "field/goldilocks.h"

namespace unizk {
namespace selfcheck {

/** x generates a subgroup of order exactly 2^k. */
constexpr bool
isPrimitiveRootOfOrderPow2(Fp x, uint32_t k)
{
    // x^(2^k) must be 1 and x^(2^(k-1)) must not be (for k >= 1).
    Fp acc = x;
    for (uint32_t i = 0; i < k; ++i) {
        if (i == k - 1 && acc.isOne())
            return false; // order divides 2^(k-1): too small
        acc = acc.squared();
    }
    return acc.isOne();
}

/** The prime factors of p - 1 = 2^32 * 3 * 5 * 17 * 257 * 65537. */
inline constexpr uint64_t orderPrimeFactors[] = {2, 3, 5, 17, 257, 65537};

/** g has order exactly p - 1 (i.e. generates the full group). */
constexpr bool
generatesFullMultiplicativeGroup(Fp g)
{
    const uint64_t order = Fp::modulus - 1;
    if (!g.pow(order).isOne())
        return false;
    for (uint64_t q : orderPrimeFactors) {
        if (g.pow(order / q).isOne())
            return false; // order divides (p-1)/q: not a generator
    }
    return true;
}

// --- The modulus is the Goldilocks prime 2^64 - 2^32 + 1. -----------------
static_assert(Fp::modulus == 0xFFFFFFFFFFFFFFFFULL - 0xFFFFFFFFULL + 1,
              "modulus is not 2^64 - 2^32 + 1");
static_assert(Fp::modulus == 0xFFFFFFFF00000001ULL,
              "modulus literal mismatch");

// --- 2-adicity: p - 1 = 2^32 * odd, and the factor list is consistent. ----
static_assert((Fp::modulus - 1) % (uint64_t{1} << Fp::twoAdicity) == 0,
              "2^twoAdicity does not divide p - 1");
static_assert(((Fp::modulus - 1) >> Fp::twoAdicity) % 2 == 1,
              "twoAdicity is not maximal");
static_assert((Fp::modulus - 1) ==
                  (uint64_t{1} << 32) * 3 * 5 * 17 * 257 * 65537,
              "prime factorization of p - 1 is wrong");

// --- The multiplicative generator really generates the full group. --------
static_assert(generatesFullMultiplicativeGroup(
                  Fp(Fp::multiplicativeGenerator)),
              "multiplicativeGenerator does not have order p - 1");

// --- Two-adic roots of unity are consistent with twoAdicity. --------------
static_assert(isPrimitiveRootOfOrderPow2(
                  Fp::primitiveRootOfUnity(Fp::twoAdicity),
                  Fp::twoAdicity),
              "primitiveRootOfUnity(32) does not have order 2^32");
static_assert(Fp::primitiveRootOfUnity(0) == Fp::one(),
              "order-1 root must be 1");
static_assert(Fp::primitiveRootOfUnity(1) == Fp(Fp::modulus - 1),
              "order-2 root must be -1");
static_assert(Fp::primitiveRootOfUnity(31) ==
                  Fp::primitiveRootOfUnity(32).squared(),
              "root tower is inconsistent: w_31 != w_32^2");
static_assert(Fp::primitiveRootOfUnity(15) ==
                  Fp::primitiveRootOfUnity(16).squared(),
              "root tower is inconsistent: w_15 != w_16^2");

// --- Branchless primitives agree with the operators on every carry -------
// --- pattern (no wrap, 2^64 wrap, >= p, borrow). The NTT butterflies ------
// --- run exclusively on these, so a divergence would silently corrupt -----
// --- every proof. ---------------------------------------------------------
constexpr bool
branchlessOpsMatchOperators()
{
    const Fp cases[] = {Fp::zero(),
                        Fp::one(),
                        Fp(2),
                        Fp(0xFFFFFFFFULL),          // 2^32 - 1
                        Fp(0x100000000ULL),         // 2^32
                        Fp(Fp::modulus - 1),        // -1
                        Fp(Fp::modulus - 0xFFFFFFFFULL),
                        Fp(0x123456789ABCDEFULL),
                        Fp(Fp::modulus / 2),
                        Fp(Fp::modulus / 2 + 1)};
    for (const Fp a : cases) {
        for (const Fp b : cases) {
            if (Fp::addBranchless(a, b) != a + b)
                return false;
            if (Fp::subBranchless(a, b) != a - b)
                return false;
            if (Fp::mulBranchless(a, b) != a * b)
                return false;
        }
    }
    return true;
}

static_assert(branchlessOpsMatchOperators(),
              "branchless field primitives diverge from the operators");

// --- Field arithmetic spot checks (exercised at compile time). ------------
static_assert((Fp(7).inverse() * Fp(7)).isOne(), "inverse(7)*7 != 1");
static_assert(Fp(Fp::modulus - 1) * Fp(Fp::modulus - 1) == Fp::one(),
              "(-1)^2 != 1");
static_assert(Fp(Fp::modulus - 1) + Fp::one() == Fp::zero(),
              "(p-1) + 1 != 0");
static_assert(Fp::reduce128(
                  static_cast<unsigned __int128>(Fp::modulus) *
                  Fp::modulus) == 0,
              "reduce128(p^2) != 0");

} // namespace selfcheck
} // namespace unizk

#endif // UNIZK_FIELD_FIELD_CHECKS_H
