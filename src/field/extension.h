/**
 * @file
 * The quadratic extension field F_{p^2} = F_p[X] / (X^2 - 7).
 *
 * Plonky2 samples PIOP challenges and runs FRI folding in this extension
 * for soundness (Section 4 of the paper: "each extension field element
 * consists of D elements from the base Goldilocks field ... usually a
 * quadratic extension with D = 2 is employed"). 7 is a quadratic
 * non-residue mod p, so X^2 - 7 is irreducible.
 *
 * On the UniZK hardware these elements are processed as two 64-bit limbs
 * on the base-field units; the simulator's cost model accounts for the
 * extra operations.
 */

#ifndef UNIZK_FIELD_EXTENSION_H
#define UNIZK_FIELD_EXTENSION_H

#include <iosfwd>

#include "field/goldilocks.h"

namespace unizk {

/** Element a0 + a1*X of F_{p^2} with X^2 = 7. */
class Fp2
{
  public:
    /** The non-residue W with X^2 = W. */
    static constexpr uint64_t w = 7;

    /** Number of base-field limbs per element. */
    static constexpr uint32_t degree = 2;

    constexpr Fp2() = default;
    constexpr Fp2(Fp a0, Fp a1) : c{a0, a1} {}

    /** Embed a base-field element. */
    constexpr explicit Fp2(Fp a0) : c{a0, Fp()} {}

    static constexpr Fp2 zero() { return Fp2(); }
    static constexpr Fp2 one() { return Fp2(Fp::one(), Fp()); }

    constexpr Fp limb(uint32_t i) const { return c[i]; }

    bool isZero() const { return c[0].isZero() && c[1].isZero(); }

    friend bool
    operator==(const Fp2 &a, const Fp2 &b)
    {
        return a.c[0] == b.c[0] && a.c[1] == b.c[1];
    }

    friend bool
    operator!=(const Fp2 &a, const Fp2 &b)
    {
        return !(a == b);
    }

    friend Fp2
    operator+(const Fp2 &a, const Fp2 &b)
    {
        return Fp2(a.c[0] + b.c[0], a.c[1] + b.c[1]);
    }

    friend Fp2
    operator-(const Fp2 &a, const Fp2 &b)
    {
        return Fp2(a.c[0] - b.c[0], a.c[1] - b.c[1]);
    }

    friend Fp2
    operator*(const Fp2 &a, const Fp2 &b)
    {
        // (a0 + a1 X)(b0 + b1 X) = a0 b0 + W a1 b1 + (a0 b1 + a1 b0) X
        const Fp t = a.c[1] * b.c[1];
        return Fp2(a.c[0] * b.c[0] + Fp(w) * t,
                   a.c[0] * b.c[1] + a.c[1] * b.c[0]);
    }

    /** Mixed base-field scaling. */
    friend Fp2
    operator*(const Fp2 &a, const Fp &s)
    {
        return Fp2(a.c[0] * s, a.c[1] * s);
    }

    Fp2 &
    operator+=(const Fp2 &o)
    {
        *this = *this + o;
        return *this;
    }

    Fp2 &
    operator-=(const Fp2 &o)
    {
        *this = *this - o;
        return *this;
    }

    Fp2 &
    operator*=(const Fp2 &o)
    {
        *this = *this * o;
        return *this;
    }

    Fp2 neg() const { return Fp2(c[0].neg(), c[1].neg()); }

    friend Fp2 operator-(const Fp2 &a) { return a.neg(); }

    Fp2 squared() const { return *this * *this; }

    /** a^e by square-and-multiply. */
    Fp2 pow(uint64_t e) const;

    /** Multiplicative inverse via the norm map; panics on zero. */
    Fp2 inverse() const;

  private:
    Fp c[2];
};

std::ostream &operator<<(std::ostream &os, const Fp2 &f);

class SplitMix64;
Fp2 randomFp2(SplitMix64 &rng);

/** Batch inversion over the extension field (Montgomery's trick). */
void batchInverseExt(std::vector<Fp2> &xs);

} // namespace unizk

#endif // UNIZK_FIELD_EXTENSION_H
