#include "field/extension.h"

#include <ostream>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace unizk {

Fp2
Fp2::pow(uint64_t e) const
{
    Fp2 base = *this;
    Fp2 acc = Fp2::one();
    while (e != 0) {
        if (e & 1)
            acc *= base;
        base = base.squared();
        e >>= 1;
    }
    return acc;
}

Fp2
Fp2::inverse() const
{
    unizk_assert(!isZero(), "inverse of zero extension element");
    // (a0 + a1 X)^-1 = (a0 - a1 X) / (a0^2 - W a1^2)
    const Fp norm = c[0].squared() - Fp(w) * c[1].squared();
    const Fp ninv = norm.inverse();
    return Fp2(c[0] * ninv, c[1].neg() * ninv);
}

std::ostream &
operator<<(std::ostream &os, const Fp2 &f)
{
    return os << "(" << f.limb(0) << " + " << f.limb(1) << "*X)";
}

Fp2
randomFp2(SplitMix64 &rng)
{
    return Fp2(randomFp(rng), randomFp(rng));
}

void
batchInverseExt(std::vector<Fp2> &xs)
{
    if (xs.empty())
        return;
    // Chunked like batchInverse: exact inverses make the result
    // independent of the chunking.
    parallelFor(0, xs.size(), /*grain=*/2048, [&](size_t lo, size_t hi) {
        std::vector<Fp2> prefix(hi - lo);
        Fp2 acc = Fp2::one();
        for (size_t i = lo; i < hi; ++i) {
            unizk_assert(!xs[i].isZero(),
                         "batchInverseExt: zero element");
            prefix[i - lo] = acc;
            acc *= xs[i];
        }
        Fp2 inv = acc.inverse();
        for (size_t i = hi; i-- > lo;) {
            const Fp2 next = inv * xs[i];
            xs[i] = inv * prefix[i - lo];
            inv = next;
        }
    });
}

} // namespace unizk
