/**
 * @file
 * Wire encodings for every proof type: FRI, Plonk, STARK, and
 * sum-check. Deserialization is total -- malformed or truncated input
 * returns std::nullopt -- and round-tripped proofs verify identically.
 */

#ifndef UNIZK_SERIALIZE_PROOF_IO_H
#define UNIZK_SERIALIZE_PROOF_IO_H

#include <optional>

#include "plonk/plonk.h"
#include "stark/stark.h"
#include "sumcheck/sumcheck.h"

namespace unizk {

std::vector<uint8_t> serializeFriProof(const FriProof &proof);
std::optional<FriProof>
deserializeFriProof(const std::vector<uint8_t> &bytes);

std::vector<uint8_t> serializePlonkProof(const PlonkProof &proof);
std::optional<PlonkProof>
deserializePlonkProof(const std::vector<uint8_t> &bytes);

std::vector<uint8_t> serializeStarkProof(const StarkProof &proof);
std::optional<StarkProof>
deserializeStarkProof(const std::vector<uint8_t> &bytes);

std::vector<uint8_t> serializeSumcheckProof(const SumcheckProof &proof);
std::optional<SumcheckProof>
deserializeSumcheckProof(const std::vector<uint8_t> &bytes);

} // namespace unizk

#endif // UNIZK_SERIALIZE_PROOF_IO_H
