#include "serialize/proof_io.h"

#include "serialize/bytes.h"

namespace unizk {

namespace {

// Generous structural bounds: anything beyond these is malformed.
constexpr uint64_t max_vec = uint64_t{1} << 28;

// Wire sizes of the composite elements length prefixes count.
constexpr uint64_t hash_bytes = 32; // HashOut: 4 Fp limbs
constexpr uint64_t fp2_bytes = 16;  // Fp2: 2 Fp limbs

/**
 * Read a length prefix bounded both by the structural limit @p max and
 * by the bytes actually remaining in the stream (at @p elem_bytes per
 * element). Returns false on violation so callers never resize a
 * container from an unvalidated attacker-controlled length -- a
 * malformed proof must not be able to force an allocation larger than
 * its own size.
 */
bool
readLen(ByteReader &r, uint64_t max, uint64_t elem_bytes, uint64_t &out)
{
    out = r.getU64();
    return r.ok() && out <= max && r.canRead(out, elem_bytes);
}

void
writeMerkleProof(ByteWriter &w, const MerkleProof &p)
{
    w.putU64(p.siblings.size());
    for (const HashOut &h : p.siblings)
        w.putHash(h);
}

std::optional<MerkleProof>
readMerkleProof(ByteReader &r)
{
    MerkleProof p;
    uint64_t n = 0;
    if (!readLen(r, 64, hash_bytes, n))
        return std::nullopt; // deeper than any 2^64-leaf tree, or truncated
    p.siblings.resize(n);
    for (auto &h : p.siblings)
        h = r.getHash();
    if (!r.ok())
        return std::nullopt;
    return p;
}

void
writeCap(ByteWriter &w, const MerkleCap &cap)
{
    w.putU64(cap.size());
    for (const HashOut &h : cap)
        w.putHash(h);
}

std::optional<MerkleCap>
readCap(ByteReader &r)
{
    MerkleCap cap;
    uint64_t n = 0;
    if (!readLen(r, uint64_t{1} << 16, hash_bytes, n))
        return std::nullopt;
    cap.resize(n);
    for (auto &h : cap)
        h = r.getHash();
    if (!r.ok())
        return std::nullopt;
    return cap;
}

void
writeFri(ByteWriter &w, const FriProof &proof)
{
    w.putU64(proof.layerCaps.size());
    for (const auto &cap : proof.layerCaps)
        writeCap(w, cap);
    w.putU64(proof.finalPoly.size());
    for (const Fp2 &c : proof.finalPoly)
        w.putFp2(c);
    w.putU64(proof.powNonce);
    w.putU64(proof.queries.size());
    for (const auto &q : proof.queries) {
        w.putU64(q.initial.size());
        for (const auto &init : q.initial) {
            w.putFpVector(init.values);
            writeMerkleProof(w, init.proof);
        }
        w.putU64(q.layers.size());
        for (const auto &layer : q.layers) {
            w.putFp2(layer.pair[0]);
            w.putFp2(layer.pair[1]);
            writeMerkleProof(w, layer.proof);
        }
    }
}

std::optional<FriProof>
readFri(ByteReader &r)
{
    FriProof proof;
    const uint64_t num_caps = r.getU64();
    if (num_caps > 64)
        return std::nullopt;
    for (uint64_t i = 0; i < num_caps; ++i) {
        auto cap = readCap(r);
        if (!cap)
            return std::nullopt;
        proof.layerCaps.push_back(std::move(*cap));
    }
    uint64_t final_len = 0;
    if (!readLen(r, max_vec, fp2_bytes, final_len))
        return std::nullopt;
    proof.finalPoly.resize(final_len);
    for (auto &c : proof.finalPoly)
        c = r.getFp2();
    proof.powNonce = r.getU64();
    const uint64_t num_queries = r.getU64();
    if (num_queries > (uint64_t{1} << 12))
        return std::nullopt;
    for (uint64_t q = 0; q < num_queries; ++q) {
        FriQueryRound round;
        const uint64_t num_init = r.getU64();
        if (num_init > 256)
            return std::nullopt;
        for (uint64_t i = 0; i < num_init; ++i) {
            FriInitialOpening open;
            open.values = r.getFpVector(max_vec);
            auto mp = readMerkleProof(r);
            if (!mp)
                return std::nullopt;
            open.proof = std::move(*mp);
            round.initial.push_back(std::move(open));
        }
        const uint64_t num_layers = r.getU64();
        if (num_layers > 64)
            return std::nullopt;
        for (uint64_t l = 0; l < num_layers; ++l) {
            FriLayerOpening open;
            open.pair[0] = r.getFp2();
            open.pair[1] = r.getFp2();
            auto mp = readMerkleProof(r);
            if (!mp)
                return std::nullopt;
            open.proof = std::move(*mp);
            round.layers.push_back(std::move(open));
        }
        proof.queries.push_back(std::move(round));
    }
    if (!r.ok())
        return std::nullopt;
    return proof;
}

void
writeOpenings(ByteWriter &w, const std::vector<std::vector<Fp2>> &openings)
{
    w.putU64(openings.size());
    for (const auto &row : openings) {
        w.putU64(row.size());
        for (const Fp2 &v : row)
            w.putFp2(v);
    }
}

std::optional<std::vector<std::vector<Fp2>>>
readOpenings(ByteReader &r)
{
    std::vector<std::vector<Fp2>> openings;
    const uint64_t rows = r.getU64();
    if (rows > 16)
        return std::nullopt;
    openings.resize(rows);
    for (auto &row : openings) {
        uint64_t cols = 0;
        if (!readLen(r, max_vec, fp2_bytes, cols))
            return std::nullopt;
        row.resize(cols);
        for (auto &v : row)
            v = r.getFp2();
    }
    if (!r.ok())
        return std::nullopt;
    return openings;
}

} // namespace

std::vector<uint8_t>
serializeFriProof(const FriProof &proof)
{
    ByteWriter w;
    writeFri(w, proof);
    return w.take();
}

std::optional<FriProof>
deserializeFriProof(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    auto proof = readFri(r);
    if (!proof || !r.exhausted())
        return std::nullopt;
    return proof;
}

std::vector<uint8_t>
serializePlonkProof(const PlonkProof &proof)
{
    ByteWriter w;
    w.putU64(proof.rows);
    w.putU64(proof.repetitions);
    w.putU64(proof.publicInputs.size());
    for (const auto &row : proof.publicInputs)
        w.putFpVector(row);
    writeCap(w, proof.wiresCap);
    writeCap(w, proof.zCap);
    writeCap(w, proof.quotientCap);
    writeOpenings(w, proof.openings);
    writeFri(w, proof.fri);
    return w.take();
}

std::optional<PlonkProof>
deserializePlonkProof(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    PlonkProof proof;
    proof.rows = r.getU64();
    proof.repetitions = r.getU64();
    if (proof.rows > max_vec || proof.repetitions > 4096)
        return std::nullopt;
    // Each public-input row costs at least its 8-byte length prefix.
    uint64_t pub_rows = 0;
    if (!readLen(r, 4096, 8, pub_rows))
        return std::nullopt;
    proof.publicInputs.resize(pub_rows);
    for (auto &row : proof.publicInputs)
        row = r.getFpVector(1u << 16);
    auto wires = readCap(r);
    auto z = readCap(r);
    auto quotient = readCap(r);
    if (!wires || !z || !quotient)
        return std::nullopt;
    proof.wiresCap = std::move(*wires);
    proof.zCap = std::move(*z);
    proof.quotientCap = std::move(*quotient);
    auto openings = readOpenings(r);
    if (!openings)
        return std::nullopt;
    proof.openings = std::move(*openings);
    auto fri = readFri(r);
    if (!fri || !r.exhausted())
        return std::nullopt;
    proof.fri = std::move(*fri);
    return proof;
}

std::vector<uint8_t>
serializeStarkProof(const StarkProof &proof)
{
    ByteWriter w;
    w.putU64(proof.rows);
    w.putU64(proof.columns);
    w.putU64(proof.quotientChunks);
    writeCap(w, proof.traceCap);
    writeCap(w, proof.quotientCap);
    writeOpenings(w, proof.openings);
    writeFri(w, proof.fri);
    return w.take();
}

std::optional<StarkProof>
deserializeStarkProof(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    StarkProof proof;
    proof.rows = r.getU64();
    proof.columns = r.getU64();
    proof.quotientChunks = r.getU64();
    if (proof.rows > max_vec || proof.columns > 4096 ||
        proof.quotientChunks > 64) {
        return std::nullopt;
    }
    auto trace = readCap(r);
    auto quotient = readCap(r);
    if (!trace || !quotient)
        return std::nullopt;
    proof.traceCap = std::move(*trace);
    proof.quotientCap = std::move(*quotient);
    auto openings = readOpenings(r);
    if (!openings)
        return std::nullopt;
    proof.openings = std::move(*openings);
    auto fri = readFri(r);
    if (!fri || !r.exhausted())
        return std::nullopt;
    proof.fri = std::move(*fri);
    return proof;
}

std::vector<uint8_t>
serializeSumcheckProof(const SumcheckProof &proof)
{
    ByteWriter w;
    w.putFp(proof.claimedSum);
    w.putU64(proof.rounds.size());
    for (const auto &round : proof.rounds) {
        w.putFp(round.at0);
        w.putFp(round.at1);
    }
    w.putFp(proof.finalEval);
    return w.take();
}

std::optional<SumcheckProof>
deserializeSumcheckProof(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    SumcheckProof proof;
    proof.claimedSum = r.getFp();
    uint64_t rounds = 0;
    if (!readLen(r, 64, fp2_bytes, rounds))
        return std::nullopt;
    proof.rounds.resize(rounds);
    for (auto &round : proof.rounds) {
        round.at0 = r.getFp();
        round.at1 = r.getFp();
    }
    proof.finalEval = r.getFp();
    if (!r.ok() || !r.exhausted())
        return std::nullopt;
    return proof;
}

} // namespace unizk
