/**
 * @file
 * Byte-stream serialization primitives. Proofs must cross the wire
 * between prover and verifier; these little-endian writer/reader
 * classes keep the encoding explicit and the deserializer total
 * (malformed input yields failure, never undefined behaviour).
 */

#ifndef UNIZK_SERIALIZE_BYTES_H
#define UNIZK_SERIALIZE_BYTES_H

#include <cstdint>
#include <vector>

#include "field/extension.h"
#include "field/goldilocks.h"
#include "hash/hashing.h"

namespace unizk {

class ByteWriter
{
  public:
    void
    putU64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    /** Append @p len raw bytes (the service frames carry proof blobs). */
    void
    putRaw(const uint8_t *data_, size_t len)
    {
        buf.insert(buf.end(), data_, data_ + len);
    }

    void putFp(Fp v) { putU64(v.value()); }

    void
    putFp2(const Fp2 &v)
    {
        putFp(v.limb(0));
        putFp(v.limb(1));
    }

    void
    putHash(const HashOut &h)
    {
        for (const Fp &e : h.elems)
            putFp(e);
    }

    void
    putFpVector(const std::vector<Fp> &v)
    {
        putU64(v.size());
        for (const Fp &x : v)
            putFp(x);
    }

    const std::vector<uint8_t> &bytes() const { return buf; }
    std::vector<uint8_t> take() { return std::move(buf); }

  private:
    std::vector<uint8_t> buf;
};

/**
 * Bounds-checked reader. Every getter reports failure through ok();
 * once a read fails the reader stays failed and getters return zero
 * values, so callers may batch reads and check ok() once.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &data_)
        : data(data_)
    {}

    bool ok() const { return !failed; }

    /** True when every byte has been consumed (and no read failed). */
    bool exhausted() const { return ok() && pos == data.size(); }

    /** Bytes left in the stream. */
    size_t remaining() const { return failed ? 0 : data.size() - pos; }

    /**
     * True when the stream still holds @p count elements of
     * @p elem_bytes each. Use before sizing containers from
     * attacker-controlled length prefixes: a length that passes this
     * check is bounded by the input size, so a malformed proof can
     * never force an allocation larger than its own byte count.
     */
    bool
    canRead(uint64_t count, uint64_t elem_bytes) const
    {
        return count <= remaining() / elem_bytes;
    }

    uint64_t
    getU64()
    {
        if (failed || pos + 8 > data.size()) {
            failed = true;
            return 0;
        }
        uint64_t v = 0;
        for (size_t i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    Fp
    getFp()
    {
        const uint64_t v = getU64();
        if (v >= Fp::modulus)
            failed = true; // non-canonical encoding
        return Fp(v);
    }

    Fp2
    getFp2()
    {
        const Fp a = getFp();
        const Fp b = getFp();
        return Fp2(a, b);
    }

    HashOut
    getHash()
    {
        HashOut h;
        for (Fp &e : h.elems)
            e = getFp();
        return h;
    }

    /**
     * Copy @p len raw bytes out of the stream. Callers must bound
     * @p len via canRead(len, 1) first, exactly like getFpVector's
     * length prefix: the count is untrusted input.
     */
    std::vector<uint8_t>
    getRaw(uint64_t len)
    {
        if (failed || len > data.size() - pos) {
            failed = true;
            return {};
        }
        std::vector<uint8_t> out(data.begin() +
                                     static_cast<std::ptrdiff_t>(pos),
                                 data.begin() +
                                     static_cast<std::ptrdiff_t>(pos + len));
        pos += len;
        return out;
    }

    std::vector<Fp>
    getFpVector(uint64_t max_len)
    {
        const uint64_t len = getU64();
        // Bound by the bytes actually present before allocating: the
        // length prefix is untrusted input.
        if (len > max_len || !canRead(len, 8)) {
            failed = true;
            return {};
        }
        std::vector<Fp> v(len);
        for (auto &x : v)
            x = getFp();
        return v;
    }

  private:
    const std::vector<uint8_t> &data;
    size_t pos = 0;
    bool failed = false;
};

} // namespace unizk

#endif // UNIZK_SERIALIZE_BYTES_H
