#include "sim/dram.h"

#include <vector>

#include "common/bits.h"

namespace unizk {

void
DramResult::accumulate(const DramResult &other)
{
    cycles += other.cycles;
    readRequests += other.readRequests;
    writeRequests += other.writeRequests;
    readBytes += other.readBytes;
    writeBytes += other.writeBytes;
    usefulBytes += other.usefulBytes;
    rowHits += other.rowHits;
    rowMisses += other.rowMisses;
    bankConflicts += other.bankConflicts;
    if (!other.bankBytes.empty()) {
        if (bankBytes.size() < other.bankBytes.size())
            bankBytes.resize(other.bankBytes.size());
        for (size_t b = 0; b < other.bankBytes.size(); ++b)
            bankBytes[b] += other.bankBytes[b];
    }
}

DramResult
DramModel::access(const MemStream &stream) const
{
    DramResult res;
    if (stream.bytes == 0)
        return res;

    const uint32_t req = cfg.memRequestBytes;
    const uint64_t run =
        stream.runBytes == 0 ? stream.bytes : stream.runBytes;

    // Each contiguous run is rounded up to whole requests; runs shorter
    // than a request still occupy a full one (wasted bandwidth). The
    // trailing partial run (bytes % run) is billed by its actual length,
    // not as a full run.
    const uint64_t full_runs = stream.bytes / run;
    const uint64_t tail_len = stream.bytes % run;
    const uint64_t requests = full_runs * ceilDiv(run, req) +
                              (tail_len ? ceilDiv(tail_len, req) : 0);
    const uint64_t bus_bytes = requests * req;

    // Bandwidth-limited transfer time at the sustained (derated) rate.
    const double peak = cfg.effectivePeakBytesPerCycle() *
                        cfg.dramStreamEfficiency * stream.efficiency;
    uint64_t cycles =
        static_cast<uint64_t>(static_cast<double>(bus_bytes) / peak) + 1;

    // Row-activate overhead: each run touching a new row pays tRC,
    // amortized over the banks that can activate in parallel. The tail
    // run only touches the rows its actual length covers.
    const uint64_t rows_touched =
        full_runs * ceilDiv(run, cfg.memRowBytes) +
        (tail_len ? ceilDiv(tail_len, cfg.memRowBytes) : 0);
    const uint64_t activate_cycles =
        rows_touched * cfg.memRowMissPenalty / cfg.memBanks;
    cycles = std::max(cycles, activate_cycles);

    res.cycles = cycles;
    res.usefulBytes = stream.bytes;
    if (stream.write) {
        res.writeRequests = requests;
        res.writeBytes = bus_bytes;
    } else {
        res.readRequests = requests;
        res.readBytes = bus_bytes;
    }

    // Row-buffer accounting: one activate (miss) per row touched, the
    // other requests of each run stream from the open row. Requests
    // are 64 B and rows 1 KiB, so requests >= rows_touched always.
    res.rowMisses = rows_touched;
    res.rowHits = requests - rows_touched;
    // Activates beyond one full rotation over the banks evict a live
    // row from some bank's buffer: a bank conflict.
    res.bankConflicts =
        rows_touched > cfg.memBanks ? rows_touched - cfg.memBanks : 0;

    // Per-bank traffic with requests striped round-robin (the address
    // interleaving the channel controllers use for streams).
    res.bankBytes.assign(cfg.memBanks, 0);
    const uint64_t per_bank = requests / cfg.memBanks;
    const uint64_t extra = requests % cfg.memBanks;
    for (uint32_t b = 0; b < cfg.memBanks; ++b) {
        res.bankBytes[b] =
            (per_bank + (b < extra ? 1 : 0)) * req;
    }
    return res;
}

DramResult
DramModel::accessAll(const std::vector<MemStream> &streams) const
{
    // Concurrent streams share the bus: total time is the sum of their
    // individual bus occupancies (the ceiling is per-chip), while the
    // request counters accumulate.
    DramResult total;
    bool has_read = false, has_write = false;
    for (const auto &s : streams) {
        total.accumulate(access(s));
        has_read |= !s.write;
        has_write |= s.write;
    }
    // Interleaved reads and writes pay bus-turnaround overhead.
    if (has_read && has_write) {
        total.cycles = static_cast<uint64_t>(
            static_cast<double>(total.cycles) /
            cfg.mixedStreamEfficiency);
    }
    return total;
}

} // namespace unizk
