/**
 * @file
 * Hardware configuration of the simulated UniZK accelerator
 * (paper Section 4 and Table 2 defaults).
 *
 * Defaults: 32 vector-systolic arrays of 12x12 PEs at 1 GHz, an 8 MB
 * double-buffered scratchpad, a 16x16 global transpose buffer, an
 * on-chip twiddle-factor generator, and two HBM2e PHYs providing about
 * 1 TB/s of peak DRAM bandwidth (= 1000 bytes per 1 GHz cycle).
 *
 * The design-space exploration of Figure 10 scales numVsas,
 * scratchpadBytes, and memBandwidthScale.
 */

#ifndef UNIZK_SIM_HW_CONFIG_H
#define UNIZK_SIM_HW_CONFIG_H

#include <cstdint>

namespace unizk {

struct HardwareConfig
{
    /** Number of vector-systolic arrays. */
    uint32_t numVsas = 32;

    /** PEs per VSA edge (12 matches the Poseidon state width). */
    uint32_t vsaDim = 12;

    /** Clock frequency in GHz. */
    double clockGhz = 1.0;

    /** Global scratchpad capacity in bytes (double-buffered). */
    uint64_t scratchpadBytes = 8ull << 20;

    /** Transpose buffer dimension b (b x b elements). */
    uint32_t transposeDim = 16;

    /** DRAM request size in bytes (HBM2e access granularity). */
    uint32_t memRequestBytes = 64;

    /**
     * Peak DRAM bandwidth in bytes per cycle. Two HBM2e PHYs at
     * ~1 TB/s aggregate and 1 GHz core clock give 1000 B/cycle.
     */
    double peakMemBytesPerCycle = 1000.0;

    /** Bandwidth multiplier for the Figure-10 sweep. */
    double memBandwidthScale = 1.0;

    /** DRAM banks reachable in parallel (channels x banks/channel). */
    uint32_t memBanks = 128;

    /** Row activate-to-activate penalty in cycles (tRC). */
    uint32_t memRowMissPenalty = 48;

    /** Row buffer size in bytes. */
    uint32_t memRowBytes = 1024;

    /** Fixed scheduling overhead per kernel launch, in cycles. */
    uint32_t kernelLaunchOverhead = 200;

    /**
     * Cycles between samples of the simulator's occupancy/queue-depth
     * timeline (exported in unizk-stats-v2 and as Chrome trace counter
     * lanes). 0 = auto: pick a period giving ~256 samples per run.
     * Sample counts are capped at 65536 regardless.
     */
    uint64_t timelineSamplePeriod = 0;

    /**
     * DRAM efficiency knobs (calibration constants, see DESIGN.md):
     * sustained fraction of peak for a pure stream (refresh, scheduling
     * slack), the extra penalty when read and write streams interleave
     * (bus turnaround), and the efficiency of chained element-wise
     * vector kernels whose short dependent operations leave gaps.
     */
    double dramStreamEfficiency = 0.88;
    double mixedStreamEfficiency = 0.65;
    double vecOpStreamEfficiency = 0.55;

    /**
     * Ablation switches for the paper's architectural design choices
     * (all true in the real design):
     *  - reverse links (Sec. 4): enable the 12x3 partial-round mapping
     *    of Fig. 5b; without them every partial round needs its own
     *    full-array pass.
     *  - transpose buffer (Sec. 4): hide layout transforms behind
     *    adjacent kernels; without it transposes become explicit
     *    element-granular DRAM traffic.
     *  - split NTT pipelines (Sec. 5.1): two 6-PE pipelines per row
     *    (n = 2^5) chained through the transpose buffer; without the
     *    split one 12-PE pipeline (n = 2^11) overflows the PE register
     *    files and halves throughput while covering only one dimension
     *    per trip.
     *  - grouped partial products (Fig. 6b): the 3-step local/
     *    propagate/finalize schedule; without it Eq. 2's dependency
     *    chain serializes.
     */
    bool enableReverseLinks = true;
    bool enableTransposeBuffer = true;
    bool splitNttPipelines = true;
    bool groupedPartialProducts = true;

    /** Total PEs on the chip. */
    uint64_t
    totalPes() const
    {
        return static_cast<uint64_t>(numVsas) * vsaDim * vsaDim;
    }

    /** Effective peak bandwidth after the Figure-10 scale knob. */
    double
    effectivePeakBytesPerCycle() const
    {
        return peakMemBytesPerCycle * memBandwidthScale;
    }

    /** Half the scratchpad: usable tile capacity when double-buffered. */
    uint64_t
    tileCapacityBytes() const
    {
        return scratchpadBytes / 2;
    }

    /** Convert cycles to seconds at the configured clock. */
    double
    cyclesToSeconds(uint64_t cycles) const
    {
        return static_cast<double>(cycles) / (clockGhz * 1e9);
    }

    /** The paper's default configuration. */
    static HardwareConfig
    paperDefault()
    {
        return HardwareConfig{};
    }
};

} // namespace unizk

#endif // UNIZK_SIM_HW_CONFIG_H
