#include "sim/simulator.h"

#include <sstream>

#include "obs/obs.h"

namespace unizk {

double
SimReport::cycleFraction(KernelClass c) const
{
    if (totalCycles == 0)
        return 0.0;
    return static_cast<double>(classStats(c).cycles) /
           static_cast<double>(totalCycles);
}

double
SimReport::memUtilization(KernelClass c) const
{
    const ClassStats &s = classStats(c);
    if (s.cycles == 0)
        return 0.0;
    const double capacity = config.effectivePeakBytesPerCycle() *
                            static_cast<double>(s.cycles);
    return static_cast<double>(s.busBytes) / capacity;
}

double
SimReport::usefulFraction(KernelClass c) const
{
    const ClassStats &s = classStats(c);
    if (s.busBytes == 0)
        return 0.0;
    return static_cast<double>(s.usefulBytes) /
           static_cast<double>(s.busBytes);
}

double
SimReport::vsaUtilization(KernelClass c) const
{
    const ClassStats &s = classStats(c);
    if (s.cycles == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(s.computeCycles) /
                             static_cast<double>(s.cycles));
}

uint64_t
SimReport::totalReadRequests() const
{
    uint64_t total = 0;
    for (const auto &s : perClass)
        total += s.readRequests;
    return total;
}

uint64_t
SimReport::totalWriteRequests() const
{
    uint64_t total = 0;
    for (const auto &s : perClass)
        total += s.writeRequests;
    return total;
}

namespace {

/** Hard cap on timeline length so tiny explicit periods stay bounded. */
constexpr size_t kMaxTimelineSamples = 65536;

} // namespace

SimReport
simulateTrace(const KernelTrace &trace, const HardwareConfig &cfg)
{
    UNIZK_SPAN("sim/simulate-trace");
    UNIZK_COUNTER_ADD("sim.kernel_ops", trace.ops.size());
    SimReport report;
    report.config = cfg;
    report.hw.perVsa.assign(cfg.numVsas, VsaCycles{});
    report.hw.dramBankBytes.assign(cfg.memBanks, 0);

    /** One retired kernel on the end-to-end timeline. */
    struct Segment
    {
        uint64_t start = 0;
        uint64_t cycles = 0;
        uint32_t vsas = 0;
        size_t opIndex = 0;
        KernelClass cls = KernelClass::Polynomial;
    };
    std::vector<Segment> segments;
    segments.reserve(trace.ops.size());

    for (size_t i = 0; i < trace.ops.size(); ++i) {
        const KernelSim sim = mapKernel(trace.ops[i].payload, cfg);
        ClassStats &s = report.perClass[static_cast<size_t>(sim.cls)];
        s.cycles += sim.cycles;
        s.computeCycles += sim.computeCycles;
        s.memCycles += sim.mem.cycles;
        s.busBytes += sim.mem.readBytes + sim.mem.writeBytes;
        s.usefulBytes += sim.mem.usefulBytes;
        s.readRequests += sim.mem.readRequests;
        s.writeRequests += sim.mem.writeRequests;
        s.kernels += 1;

        // DRAM row-buffer and per-bank counters.
        report.hw.dramRowHits += sim.mem.rowHits;
        report.hw.dramRowMisses += sim.mem.rowMisses;
        report.hw.dramBankConflicts += sim.mem.bankConflicts;
        for (size_t b = 0; b < sim.mem.bankBytes.size() &&
                           b < report.hw.dramBankBytes.size();
             ++b) {
            report.hw.dramBankBytes[b] += sim.mem.bankBytes[b];
        }

        // Scratchpad pressure.
        report.hw.scratchpadHighWaterBytes =
            std::max(report.hw.scratchpadHighWaterBytes,
                     sim.scratchpadBytesUsed);
        report.hw.scratchpadEvictions += sim.scratchpadEvictions;

        // Per-VSA cycle split: occupied VSAs compute for the kernel's
        // compute demand, wait on DRAM for the rest of the latency
        // (memory-bound kernels), and idle through launch overhead;
        // unoccupied VSAs idle for the whole kernel.
        const uint32_t used = std::min(sim.vsasUsed, cfg.numVsas);
        const uint64_t busy = std::min(sim.computeCycles, sim.cycles);
        const uint64_t overhead = std::min<uint64_t>(
            cfg.kernelLaunchOverhead, sim.cycles - busy);
        const uint64_t stall = sim.cycles - busy - overhead;
        for (uint32_t v = 0; v < cfg.numVsas; ++v) {
            VsaCycles &vc = report.hw.perVsa[v];
            if (v < used) {
                vc.busy += busy;
                vc.stall += stall;
                vc.idle += overhead;
            } else {
                vc.idle += sim.cycles;
            }
        }

        if (sim.cycles > 0) {
            segments.push_back(
                {report.totalCycles, sim.cycles, used, i, sim.cls});
        }
        report.totalCycles += sim.cycles;
    }

    // Epoch-sampled occupancy timeline over the end-to-end schedule.
    uint64_t period = cfg.timelineSamplePeriod;
    if (period == 0)
        period = std::max<uint64_t>(1, report.totalCycles / 256);
    period = std::max(period, std::max<uint64_t>(
                                  1, report.totalCycles /
                                         kMaxTimelineSamples));
    report.timelineSamplePeriod = period;
    size_t seg = 0;
    for (uint64_t t = 0; t < report.totalCycles &&
                         report.timeline.size() < kMaxTimelineSamples;
         t += period) {
        while (seg < segments.size() &&
               segments[seg].start + segments[seg].cycles <= t)
            ++seg;
        if (seg >= segments.size())
            break;
        report.timeline.push_back(
            {t, segments[seg].vsas,
             static_cast<uint64_t>(trace.ops.size() -
                                   segments[seg].opIndex),
             segments[seg].cls});
    }
    return report;
}

std::string
formatReport(const SimReport &report)
{
    std::ostringstream oss;
    oss << "total cycles: " << report.totalCycles << " ("
        << report.seconds() * 1e3 << " ms)\n";
    oss << "read requests: " << report.totalReadRequests()
        << ", write requests: " << report.totalWriteRequests() << "\n";
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        const ClassStats &s = report.classStats(c);
        if (s.kernels == 0)
            continue;
        oss << "  " << kernelClassName(c) << ": "
            << report.cycleFraction(c) * 100.0 << "% of cycles, mem util "
            << report.memUtilization(c) * 100.0 << "% (useful "
            << report.usefulFraction(c) * 100.0 << "%), VSA util "
            << report.vsaUtilization(c) * 100.0 << "% (" << s.kernels
            << " kernels)\n";
    }
    return oss.str();
}

} // namespace unizk
