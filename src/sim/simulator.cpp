#include "sim/simulator.h"

#include <sstream>

#include "obs/obs.h"

namespace unizk {

double
SimReport::cycleFraction(KernelClass c) const
{
    if (totalCycles == 0)
        return 0.0;
    return static_cast<double>(classStats(c).cycles) /
           static_cast<double>(totalCycles);
}

double
SimReport::memUtilization(KernelClass c) const
{
    const ClassStats &s = classStats(c);
    if (s.cycles == 0)
        return 0.0;
    const double capacity = config.effectivePeakBytesPerCycle() *
                            static_cast<double>(s.cycles);
    return static_cast<double>(s.busBytes) / capacity;
}

double
SimReport::usefulFraction(KernelClass c) const
{
    const ClassStats &s = classStats(c);
    if (s.busBytes == 0)
        return 0.0;
    return static_cast<double>(s.usefulBytes) /
           static_cast<double>(s.busBytes);
}

double
SimReport::vsaUtilization(KernelClass c) const
{
    const ClassStats &s = classStats(c);
    if (s.cycles == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(s.computeCycles) /
                             static_cast<double>(s.cycles));
}

uint64_t
SimReport::totalReadRequests() const
{
    uint64_t total = 0;
    for (const auto &s : perClass)
        total += s.readRequests;
    return total;
}

uint64_t
SimReport::totalWriteRequests() const
{
    uint64_t total = 0;
    for (const auto &s : perClass)
        total += s.writeRequests;
    return total;
}

SimReport
simulateTrace(const KernelTrace &trace, const HardwareConfig &cfg)
{
    UNIZK_SPAN("sim/simulate-trace");
    UNIZK_COUNTER_ADD("sim.kernel_ops", trace.ops.size());
    SimReport report;
    report.config = cfg;
    for (const KernelOp &op : trace.ops) {
        const KernelSim sim = mapKernel(op.payload, cfg);
        report.totalCycles += sim.cycles;
        ClassStats &s = report.perClass[static_cast<size_t>(sim.cls)];
        s.cycles += sim.cycles;
        s.computeCycles += sim.computeCycles;
        s.memCycles += sim.mem.cycles;
        s.busBytes += sim.mem.readBytes + sim.mem.writeBytes;
        s.usefulBytes += sim.mem.usefulBytes;
        s.readRequests += sim.mem.readRequests;
        s.writeRequests += sim.mem.writeRequests;
        s.kernels += 1;
    }
    return report;
}

std::string
formatReport(const SimReport &report)
{
    std::ostringstream oss;
    oss << "total cycles: " << report.totalCycles << " ("
        << report.seconds() * 1e3 << " ms)\n";
    oss << "read requests: " << report.totalReadRequests()
        << ", write requests: " << report.totalWriteRequests() << "\n";
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        const ClassStats &s = report.classStats(c);
        if (s.kernels == 0)
            continue;
        oss << "  " << kernelClassName(c) << ": "
            << report.cycleFraction(c) * 100.0 << "% of cycles, mem util "
            << report.memUtilization(c) * 100.0 << "% (useful "
            << report.usefulFraction(c) * 100.0 << "%), VSA util "
            << report.vsaUtilization(c) * 100.0 << "% (" << s.kernels
            << " kernels)\n";
    }
    return oss.str();
}

} // namespace unizk
