/**
 * @file
 * DRAM timing model -- our substitute for the Ramulator2-based "RamSim"
 * used in the paper's artifact (see DESIGN.md). Models the effects that
 * matter for UniZK's kernel behaviour:
 *
 *  - a hard bandwidth ceiling set by the two HBM2e PHYs,
 *  - fixed 64-byte access granularity, so accesses smaller than a
 *    request waste bandwidth (the gate-evaluation effect of Sec. 7.1),
 *  - row-buffer locality: long sequential runs amortize row activates,
 *    scattered accesses pay tRC penalties spread across banks.
 *
 * The model also maintains the total read/write request counters the
 * original artifact logs (total_num_read_requests etc.).
 */

#ifndef UNIZK_SIM_DRAM_H
#define UNIZK_SIM_DRAM_H

#include <cstdint>
#include <vector>

#include "sim/hw_config.h"

namespace unizk {

/** One logical memory stream issued by a kernel mapping. */
struct MemStream
{
    uint64_t bytes = 0;       ///< useful payload bytes
    /**
     * Contiguity of the access pattern in bytes: length of each
     * consecutive run. 0 means fully sequential (one run).
     */
    uint32_t runBytes = 0;
    bool write = false;
    /**
     * Kernel-specific bandwidth efficiency (e.g. chained element-wise
     * ops leave dependency gaps); multiplies the sustained peak.
     */
    double efficiency = 1.0;
};

/** Outcome of timing a set of streams. */
struct DramResult
{
    uint64_t cycles = 0;
    uint64_t readRequests = 0;
    uint64_t writeRequests = 0;
    uint64_t readBytes = 0;  ///< bus bytes moved (>= useful bytes)
    uint64_t writeBytes = 0;
    uint64_t usefulBytes = 0; ///< payload bytes (utilization numerator)

    /**
     * Row-buffer outcome counters. Every row touched costs one
     * activate (a miss); the remaining requests of a run stream from
     * the open row (hits). Conflicts count activates that land on a
     * bank whose row buffer already holds a different live row --
     * i.e. rows touched beyond one full rotation over the banks.
     */
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t bankConflicts = 0;

    /**
     * Bus bytes per bank (requests striped round-robin across banks).
     * Sized cfg.memBanks on first access; empty when no traffic.
     */
    std::vector<uint64_t> bankBytes;

    /** Fold @p other's counters into this result (cycles add too). */
    void accumulate(const DramResult &other);
};

class DramModel
{
  public:
    explicit DramModel(const HardwareConfig &cfg_) : cfg(cfg_) {}

    /**
     * Cycles to transfer one stream, assuming the kernel keeps the
     * memory system saturated (streams from concurrent tiles overlap,
     * so per-stream results add linearly up to the ceiling).
     */
    DramResult access(const MemStream &stream) const;

    /** Time a group of streams that proceed concurrently. */
    DramResult accessAll(const std::vector<MemStream> &streams) const;

  private:
    HardwareConfig cfg; // by value: callers often pass temporaries
};

} // namespace unizk

#endif // UNIZK_SIM_DRAM_H
