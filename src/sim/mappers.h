/**
 * @file
 * Kernel mappers: the simulator backend of the paper's Section 5. Each
 * mapper turns one recorded kernel into compute-cycle demand, memory
 * streams, and utilization figures, following the mapping strategies:
 *
 *  - NTT (5.1): multi-dimensional decomposition into size-2^5 NTTs on
 *    6-PE MDC pipelines, two pipelines per VSA row chained through the
 *    transpose buffer, 2 elements/cycle each; on-the-fly twiddles.
 *  - Poseidon (5.2): 15 pipelined passes per permutation (8 full
 *    rounds, one pre-partial pass, 6 partial-round groups of 4), one
 *    state accepted per cycle per pass.
 *  - Merkle tree (5.3): subtree-at-a-time construction, hashes spread
 *    across all VSAs, level-order sequential node layout.
 *  - Element-wise / partial products (5.4): vector mode with tiling;
 *    the three-step grouped partial-product schedule of Fig. 6b.
 */

#ifndef UNIZK_SIM_MAPPERS_H
#define UNIZK_SIM_MAPPERS_H

#include <vector>

#include "common/stats.h"
#include "sim/dram.h"
#include "sim/hw_config.h"
#include "trace/kernel_trace.h"

namespace unizk {

/** Simulated execution of one kernel. */
struct KernelSim
{
    /** Final kernel latency: max(compute, memory) + launch overhead. */
    uint64_t cycles = 0;

    /** Cycles the VSAs need with memory infinitely fast. */
    uint64_t computeCycles = 0;

    /** Memory-system outcome (cycles + request counters). */
    DramResult mem;

    /** Kernel class for Table-1/Fig-8 style aggregation. */
    KernelClass cls = KernelClass::Polynomial;

    /**
     * VSAs the mapping occupies: all of them once the kernel exposes
     * at least numVsas parallel work units, fewer for small kernels.
     * VSAs beyond this count idle for the kernel's full latency in the
     * per-VSA cycle accounting.
     */
    uint32_t vsasUsed = 0;

    /** Scratchpad high-water occupancy of this kernel (bytes). */
    uint64_t scratchpadBytesUsed = 0;

    /**
     * Tile evictions: working-set tiles written back to DRAM because
     * the kernel's data exceeds the (half, double-buffered) scratchpad.
     */
    uint64_t scratchpadEvictions = 0;
};

/**
 * Pipelined passes one Poseidon permutation makes through a VSA:
 * 4 passes for the 8 full rounds (two folded rounds per 12x8-region
 * pass), the pre-partial layer merged with the first partial-round
 * group, and 6 passes of 4 partial rounds each (12x3 PEs per round,
 * Fig. 5b).
 */
constexpr uint64_t poseidonPassesPerPermutation = 10;

/** Fill/drain latency of one full permutation through the passes. */
constexpr uint64_t poseidonPipelineLatency = 500;

KernelSim mapNtt(const NttKernel &k, const HardwareConfig &cfg);
KernelSim mapMerkle(const MerkleKernel &k, const HardwareConfig &cfg);
KernelSim mapHash(const HashKernel &k, const HardwareConfig &cfg);
KernelSim mapVecOp(const VecOpKernel &k, const HardwareConfig &cfg);
KernelSim mapPartialProduct(const PartialProductKernel &k,
                            const HardwareConfig &cfg);
KernelSim mapTranspose(const TransposeKernel &k,
                       const HardwareConfig &cfg);
KernelSim mapSumCheck(const SumCheckKernel &k, const HardwareConfig &cfg);

/** Dispatch on the payload type. */
KernelSim mapKernel(const KernelPayload &payload,
                    const HardwareConfig &cfg);

} // namespace unizk

#endif // UNIZK_SIM_MAPPERS_H
