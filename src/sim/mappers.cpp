#include "sim/mappers.h"

#include "common/bits.h"
#include "merkle/merkle_tree.h"
#include "ntt/ntt.h"

namespace unizk {

namespace {

/** Combine compute and (double-buffered) memory into a latency. */
void
finalize(KernelSim &sim, const HardwareConfig &cfg)
{
    sim.cycles = std::max(sim.computeCycles, sim.mem.cycles) +
                 cfg.kernelLaunchOverhead;
}

/** VSAs occupied by a kernel exposing @p units parallel work units. */
uint32_t
vsasForUnits(uint64_t units, const HardwareConfig &cfg)
{
    if (units >= cfg.numVsas)
        return cfg.numVsas;
    return units == 0 ? 1 : static_cast<uint32_t>(units);
}

/**
 * Scratchpad accounting for a kernel whose working set streams through
 * once: occupancy saturates at the tile capacity, and each tile beyond
 * the first capacity-full is an eviction.
 */
void
chargeScratchpad(KernelSim &sim, uint64_t working_bytes,
                 const HardwareConfig &cfg)
{
    const uint64_t cap = cfg.tileCapacityBytes();
    sim.scratchpadBytesUsed = std::min(working_bytes, cap);
    sim.scratchpadEvictions =
        working_bytes > cap ? ceilDiv(working_bytes, cap) - 1 : 0;
}

/**
 * Poseidon permutation throughput of the whole chip: each VSA streams
 * states through `poseidonPassesPerPermutation` pipelined passes at one
 * state per cycle per pass.
 */
uint64_t
permutationComputeCycles(uint64_t permutations, const HardwareConfig &cfg)
{
    if (permutations == 0)
        return 0;
    // Without the reverse links the 12x3 partial-round mapping of
    // Fig. 5b is impossible: each of the 22 partial rounds needs its
    // own full-array pass instead of 4 rounds per pass.
    const uint64_t passes = cfg.enableReverseLinks
                                ? poseidonPassesPerPermutation
                                : poseidonPassesPerPermutation - 6 + 22;
    return permutations * passes / cfg.numVsas +
           poseidonPipelineLatency;
}

} // namespace

KernelSim
mapNtt(const NttKernel &k, const HardwareConfig &cfg)
{
    KernelSim sim;
    sim.cls = KernelClass::Ntt;

    const uint64_t n = uint64_t{1} << k.logSize;
    const uint64_t total_elems = n * k.batch;
    const uint64_t data_bytes = total_elems * 8;

    // Fixed pipeline NTT size 2^5 on 6-PE pipelines (Sec. 5.1); each
    // VSA row holds two chained pipelines, covering two decomposed
    // dimensions per trip with the transpose buffer in between. The
    // unsplit ablation uses one 12-PE pipeline (n = 2^11): a single
    // dimension per trip and register-file spills that halve the
    // per-row rate.
    const uint32_t dims_per_trip = cfg.splitNttPipelines ? 2 : 1;
    const uint32_t log_pipeline = cfg.splitNttPipelines ? 5 : 11;
    const auto dims = decomposeNttDims(std::max<uint32_t>(k.logSize, 1),
                                       log_pipeline);
    const uint64_t trips = ceilDiv(dims.size(), dims_per_trip);

    // Per-VSA throughput: vsaDim rows x 2 elements/cycle per pipeline
    // chain (halved without the split).
    const uint64_t elems_per_cycle =
        static_cast<uint64_t>(cfg.vsaDim) * 2 * cfg.numVsas /
        (cfg.splitNttPipelines ? 1 : 2);
    sim.computeCycles =
        trips * total_elems / elems_per_cycle + 64 /* pipeline fill */;

    // Memory: every trip streams the data through the chip; when the
    // whole working set fits in half the scratchpad only the first read
    // and last write touch DRAM.
    const bool fits = data_bytes <= cfg.tileCapacityBytes();
    const uint64_t dram_trips = fits ? 1 : trips;

    // Access granularity (Sec. 5.1 "Data layouts"): poly-major data
    // streams whole polynomials; index-major goes through the b=16
    // transpose buffer giving b-element runs. Bit-reversed output is
    // locally shuffled in the scratchpad into runs of the innermost
    // dimension.
    const uint32_t run_in =
        k.layout == PolyLayout::PolyMajor
            ? 0
            : cfg.transposeDim * 8;
    const uint32_t run_out =
        k.bitrevOutput ? (uint32_t{1} << dims.front()) * 8 * cfg.transposeDim
                       : run_in;

    std::vector<MemStream> streams;
    for (uint64_t t = 0; t < dram_trips; ++t) {
        streams.push_back({data_bytes, run_in, false});
        streams.push_back({data_bytes, run_out, true});
    }
    sim.mem = DramModel(cfg).accessAll(streams);

    // Each VSA row feeds on 2 elements/cycle: a kernel with fewer
    // elements than the chip consumes per cycle leaves VSAs unused.
    sim.vsasUsed = vsasForUnits(
        ceilDiv(total_elems,
                static_cast<uint64_t>(cfg.vsaDim) * 2),
        cfg);
    // Tiles restream once per DRAM trip; all trips but the last evict
    // their tile set (the final write-back is output, not an eviction).
    const uint64_t tiles = ceilDiv(data_bytes, cfg.tileCapacityBytes());
    sim.scratchpadBytesUsed =
        std::min(data_bytes, cfg.tileCapacityBytes());
    sim.scratchpadEvictions = (dram_trips - 1) * tiles;
    finalize(sim, cfg);
    return sim;
}

KernelSim
mapMerkle(const MerkleKernel &k, const HardwareConfig &cfg)
{
    KernelSim sim;
    sim.cls = KernelClass::MerkleTree;

    const uint64_t perms = MerkleTree::permutationCount(
        k.leafCount, k.leafLength, k.capHeight);
    sim.computeCycles = permutationComputeCycles(perms, cfg);

    // Read the leaf data (index-major slices already transposed), write
    // the tree nodes in level order; interior levels of each on-chip
    // subtree never touch DRAM.
    const uint64_t leaf_bytes =
        k.leafCount * static_cast<uint64_t>(k.leafLength) * 8;
    const uint64_t node_bytes = 2 * k.leafCount * HashOut::byteSize();
    std::vector<MemStream> streams{
        {leaf_bytes, static_cast<uint32_t>(k.leafLength) * 8, false},
        {node_bytes, 0, true},
    };
    sim.mem = DramModel(cfg).accessAll(streams);
    sim.vsasUsed = vsasForUnits(perms, cfg);
    chargeScratchpad(sim, leaf_bytes + node_bytes, cfg);
    finalize(sim, cfg);
    return sim;
}

KernelSim
mapHash(const HashKernel &k, const HardwareConfig &cfg)
{
    KernelSim sim;
    sim.cls = KernelClass::OtherHash;
    sim.computeCycles = permutationComputeCycles(k.permutations, cfg);
    // Transcript state lives on-chip; negligible DRAM traffic. The
    // sponge state is 12 elements (96 B) per in-flight permutation.
    sim.vsasUsed = vsasForUnits(k.permutations, cfg);
    chargeScratchpad(
        sim, std::min<uint64_t>(k.permutations, cfg.numVsas) * 96, cfg);
    finalize(sim, cfg);
    return sim;
}

KernelSim
mapVecOp(const VecOpKernel &k, const HardwareConfig &cfg)
{
    KernelSim sim;
    sim.cls = KernelClass::Polynomial;

    // Vector mode: every PE is an independent lane with one modular
    // multiplier and two adders; budget two operations per PE-cycle.
    const uint64_t total_ops =
        k.length * static_cast<uint64_t>(k.opsPerElement);
    const uint64_t ops_per_cycle = cfg.totalPes();
    sim.computeCycles = ceilDiv(total_ops, ops_per_cycle);

    const uint64_t vec_bytes = k.length * 8;
    std::vector<MemStream> streams;
    for (uint32_t i = 0; i < k.inputVectors; ++i) {
        streams.push_back({vec_bytes, k.randomAccessGranularity, false,
                           cfg.vecOpStreamEfficiency});
    }
    for (uint32_t o = 0; o < k.outputVectors; ++o)
        streams.push_back({vec_bytes, 0, true,
                           cfg.vecOpStreamEfficiency});
    sim.mem = DramModel(cfg).accessAll(streams);
    sim.vsasUsed = vsasForUnits(
        ceilDiv(k.length,
                static_cast<uint64_t>(cfg.vsaDim) * cfg.vsaDim),
        cfg);
    chargeScratchpad(
        sim, vec_bytes * (k.inputVectors + k.outputVectors), cfg);
    finalize(sim, cfg);
    return sim;
}

KernelSim
mapPartialProduct(const PartialProductKernel &k, const HardwareConfig &cfg)
{
    KernelSim sim;
    sim.cls = KernelClass::Polynomial;

    // Fig. 6a: each PE accumulates 16 q-values into 2 chunks.
    const uint64_t chunk_cycles = ceilDiv(k.length, cfg.totalPes());
    // Fig. 6b: 32-chunk groups per PE -- local partial products (32),
    // serial neighbour propagation (one hop per group), local finalize
    // (32). Without the grouped schedule Eq. 2's dependency chain
    // serializes over every chunk.
    const uint64_t h_len = k.length / k.chunkSize;
    const uint64_t groups = ceilDiv(h_len, 32);
    sim.computeCycles = cfg.groupedPartialProducts
                            ? chunk_cycles + 64 + groups
                            : chunk_cycles + h_len;

    std::vector<MemStream> streams{
        {k.length * 8, 0, false},
        {(k.length / k.chunkSize) * 8, 0, true},
    };
    sim.mem = DramModel(cfg).accessAll(streams);
    sim.vsasUsed = vsasForUnits(
        ceilDiv(k.length,
                static_cast<uint64_t>(cfg.vsaDim) * cfg.vsaDim),
        cfg);
    chargeScratchpad(sim, k.length * 8 + h_len * 8, cfg);
    finalize(sim, cfg);
    return sim;
}

KernelSim
mapTranspose(const TransposeKernel &k, const HardwareConfig &cfg)
{
    KernelSim sim;
    sim.cls = KernelClass::LayoutTransform;
    if (cfg.enableTransposeBuffer) {
        // The global transpose buffer performs layout transforms
        // implicitly while fetching data for the adjacent kernels
        // (Sec. 4): no cycles and no extra DRAM traffic are charged.
        // The kernel stays in the trace so reports can show the cost
        // is architecturally hidden.
        return sim;
    }
    // Ablation: an explicit transpose pass with element-granular
    // writes (8-byte scattered runs). Pure data movement: the VSAs
    // idle while the tiles stream through the scratchpad.
    const uint64_t bytes = k.rows * k.cols * 8;
    std::vector<MemStream> streams{{bytes, 0, false}, {bytes, 8, true}};
    sim.mem = DramModel(cfg).accessAll(streams);
    chargeScratchpad(sim, bytes, cfg);
    finalize(sim, cfg);
    return sim;
}

KernelSim
mapSumCheck(const SumCheckKernel &k, const HardwareConfig &cfg)
{
    KernelSim sim;
    sim.cls = KernelClass::Polynomial;

    // Per round i (table size 2^(logSize-i)): one multiply-add per pair
    // for the fold plus a tree reduction for the two sums, both in
    // vector mode using the systolic links for accumulation. Total work
    // telescopes to ~2 * 2^logSize operations.
    const uint64_t table = uint64_t{1} << k.logSize;
    const uint64_t total_ops = 4 * table; // fold mul+add, two sums
    sim.computeCycles = ceilDiv(total_ops, cfg.totalPes()) +
                        k.logSize * 32 /* per-round reduction drain */;

    // Each round streams the current table in and the halved table out
    // until the working set fits in the scratchpad.
    std::vector<MemStream> streams;
    uint64_t bytes = table * 8;
    uint64_t spilled_rounds = 0;
    while (bytes > cfg.tileCapacityBytes()) {
        streams.push_back({bytes, 0, false,
                           cfg.vecOpStreamEfficiency});
        streams.push_back({bytes / 2, 0, true,
                           cfg.vecOpStreamEfficiency});
        bytes /= 2;
        ++spilled_rounds;
    }
    if (streams.empty())
        streams.push_back({bytes, 0, false, cfg.vecOpStreamEfficiency});
    sim.mem = DramModel(cfg).accessAll(streams);
    sim.vsasUsed = vsasForUnits(
        ceilDiv(table, static_cast<uint64_t>(cfg.vsaDim) * cfg.vsaDim),
        cfg);
    sim.scratchpadBytesUsed =
        std::min(table * 8, cfg.tileCapacityBytes());
    sim.scratchpadEvictions = spilled_rounds;
    finalize(sim, cfg);
    return sim;
}

KernelSim
mapKernel(const KernelPayload &payload, const HardwareConfig &cfg)
{
    struct Visitor
    {
        const HardwareConfig &cfg;

        KernelSim operator()(const NttKernel &k) { return mapNtt(k, cfg); }
        KernelSim
        operator()(const MerkleKernel &k)
        {
            return mapMerkle(k, cfg);
        }
        KernelSim operator()(const HashKernel &k)
        {
            return mapHash(k, cfg);
        }
        KernelSim operator()(const VecOpKernel &k)
        {
            return mapVecOp(k, cfg);
        }
        KernelSim
        operator()(const PartialProductKernel &k)
        {
            return mapPartialProduct(k, cfg);
        }
        KernelSim
        operator()(const TransposeKernel &k)
        {
            return mapTranspose(k, cfg);
        }
        KernelSim
        operator()(const SumCheckKernel &k)
        {
            return mapSumCheck(k, cfg);
        }
    };
    return std::visit(Visitor{cfg}, payload);
}

} // namespace unizk
