/**
 * @file
 * The simulation engine: runs a recorded KernelTrace through the
 * mappers and aggregates cycles, memory requests, and utilization per
 * kernel class -- producing the quantities behind Tables 3 and 4 and
 * Figures 8-10 of the paper.
 */

#ifndef UNIZK_SIM_SIMULATOR_H
#define UNIZK_SIM_SIMULATOR_H

#include <array>
#include <string>
#include <vector>

#include "sim/mappers.h"

namespace unizk {

/** Aggregated statistics for one kernel class. */
struct ClassStats
{
    uint64_t cycles = 0;
    uint64_t computeCycles = 0;
    uint64_t memCycles = 0;
    uint64_t busBytes = 0;
    uint64_t usefulBytes = 0;
    uint64_t readRequests = 0;
    uint64_t writeRequests = 0;
    uint64_t kernels = 0;
};

/** Cycle breakdown of one VSA over a whole simulated run. */
struct VsaCycles
{
    uint64_t busy = 0;  ///< executing compute for the active kernel
    uint64_t stall = 0; ///< waiting on DRAM (memory-bound kernels)
    uint64_t idle = 0;  ///< launch overhead, or unused by the kernel
};

/**
 * Hardware-level performance counters aggregated over a run: the
 * utilization-level evidence behind Tables 4 and 6 and Figure 10
 * (why a kernel class under-utilizes, not just that it does).
 */
struct HwCounters
{
    /** Per-VSA busy/stall/idle cycles (size = config.numVsas). */
    std::vector<VsaCycles> perVsa;

    uint64_t dramRowHits = 0;
    uint64_t dramRowMisses = 0;
    uint64_t dramBankConflicts = 0;

    /** Bus bytes per DRAM bank (size = config.memBanks). */
    std::vector<uint64_t> dramBankBytes;

    /** Largest scratchpad occupancy any kernel reached (bytes). */
    uint64_t scratchpadHighWaterBytes = 0;

    /** Total tile evictions caused by capacity pressure. */
    uint64_t scratchpadEvictions = 0;
};

/** One epoch sample of the simulated machine's occupancy. */
struct TimelineSample
{
    uint64_t cycle = 0;
    uint32_t vsasBusy = 0;   ///< VSAs occupied by the active kernel
    uint64_t queueDepth = 0; ///< kernels not yet retired (incl. active)
    KernelClass cls = KernelClass::Polynomial; ///< active kernel class
};

/** Result of simulating one proof-generation trace. */
struct SimReport
{
    uint64_t totalCycles = 0;
    std::array<ClassStats,
               static_cast<size_t>(KernelClass::NumClasses)>
        perClass{};
    HardwareConfig config;

    /** Hardware counters (v2 stats: per-VSA, DRAM rows, scratchpad). */
    HwCounters hw;

    /** Occupancy timeline sampled every timelineSamplePeriod cycles. */
    std::vector<TimelineSample> timeline;

    /** The sample period actually used (resolved from config). */
    uint64_t timelineSamplePeriod = 0;

    const ClassStats &
    classStats(KernelClass c) const
    {
        return perClass[static_cast<size_t>(c)];
    }

    /** Simulated wall-clock time. */
    double seconds() const { return config.cyclesToSeconds(totalCycles); }

    /** Fraction of total cycles spent in class @p c. */
    double cycleFraction(KernelClass c) const;

    /**
     * Memory-bandwidth utilization while kernels of class @p c run
     * (bus bytes moved / peak capacity over those cycles) -- Table 4.
     */
    double memUtilization(KernelClass c) const;

    /**
     * Fraction of bus traffic that carried useful data for class @p c
     * (useful bytes / bus bytes; 1.0 for perfectly sequential streams,
     * lower when request rounding or scatter access wastes bandwidth).
     */
    double usefulFraction(KernelClass c) const;

    /**
     * VSA utilization while kernels of class @p c run (compute demand /
     * available VSA cycles) -- Table 4.
     */
    double vsaUtilization(KernelClass c) const;

    uint64_t totalReadRequests() const;
    uint64_t totalWriteRequests() const;
};

/** Simulate an entire kernel trace on the given hardware. */
SimReport simulateTrace(const KernelTrace &trace,
                        const HardwareConfig &cfg);

/** One-line per-class summary (for log output). */
std::string formatReport(const SimReport &report);

} // namespace unizk

#endif // UNIZK_SIM_SIMULATOR_H
