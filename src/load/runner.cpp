#include "load/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/stats.h"
#include "common/sync.h"
#include "obs/json_writer.h"
#include "obs/obs.h"
#include "service/client.h"

namespace unizk {
namespace load {

namespace {

using service::ErrorCode;
using service::ResponseFrame;
using service::ServiceClient;
using service::Tag;

/** Shared mutable run state, one instance per runScenario call. */
struct RunState
{
    Mutex mutex;
    uint64_t ok UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t queueFull UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t shuttingDown UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t errors UNIZK_GUARDED_BY(mutex) = 0;
    std::vector<QueueSample> queueDepth UNIZK_GUARDED_BY(mutex);
    /** ok counts, indexed like scenario.mix. */
    std::vector<uint64_t> perApp UNIZK_GUARDED_BY(mutex);
    std::vector<RequestSample> samples UNIZK_GUARDED_BY(mutex);
    uint64_t breakdownViolations UNIZK_GUARDED_BY(mutex) = 0;
};

size_t
mixIndexOf(const Scenario &scenario,
           const service::ProveRequest &req)
{
    for (size_t i = 0; i < scenario.mix.size(); ++i) {
        if (scenario.mix[i].protocol == req.protocol &&
            scenario.mix[i].app == req.app)
            return i;
    }
    unizk_panic("schedule request outside the scenario mix");
}

/**
 * Issue one scheduled request on @p client and fold the outcome into
 * @p state. Returns false when the transport died (the caller's
 * connection is unusable afterwards).
 */
bool
issueOne(ServiceClient &client, const Scenario &scenario,
         const LoadRequest &item, const Stopwatch &run_clock,
         RunState &state)
{
    const Stopwatch request_clock;
    const auto resp = client.prove(item.request);
    const uint64_t latency_ns = static_cast<uint64_t>(
        request_clock.elapsedSeconds() * 1e9);
    const uint64_t t_ns =
        static_cast<uint64_t>(run_clock.elapsedSeconds() * 1e9);

    if (!resp) {
        MutexLock lock(state.mutex);
        state.errors += 1;
        return false;
    }
    if (resp->tag == Tag::Error) {
        MutexLock lock(state.mutex);
        switch (resp->error.code) {
          case ErrorCode::QueueFull:
            state.queueFull += 1;
            break;
          case ErrorCode::ShuttingDown:
            state.shuttingDown += 1;
            break;
          default:
            warn("unizk_load: server error: ",
                 errorCodeName(resp->error.code), ": ",
                 resp->error.message);
            state.errors += 1;
            break;
        }
        return true;
    }
    if (resp->tag != Tag::ProveOk ||
        (item.request.verify && !resp->prove.verified)) {
        MutexLock lock(state.mutex);
        state.errors += 1;
        return true;
    }

    UNIZK_OBS_HISTO("load.request_latency_ns", latency_ns);
    MutexLock lock(state.mutex);
    state.ok += 1;
    state.queueDepth.push_back({t_ns, resp->prove.queueDepth});
    state.perApp[mixIndexOf(scenario, item.request)] += 1;
    const service::ProveResponse &p = resp->prove;
    if (p.hasServerTiming) {
        RequestSample sample;
        sample.traceId = p.traceId;
        sample.laneId = p.laneId;
        sample.clientNs = latency_ns;
        sample.serverNs = p.latencyNs;
        sample.queuedNs = p.queuedNs;
        sample.proveNs = p.proveNs;
        sample.serializeNs = p.serializeNs;
        state.samples.push_back(sample);
        if (p.traceId != item.request.traceId ||
            p.queuedNs + p.proveNs + p.serializeNs > p.latencyNs ||
            p.latencyNs > latency_ns) {
            state.breakdownViolations += 1;
        }
    }
    return true;
}

void
chargeSkipped(RunState &state, uint64_t skipped)
{
    if (skipped > 0) {
        MutexLock lock(state.mutex);
        state.errors += skipped;
    }
}

/** Closed-loop worker: the round-robin slice of one connection. */
void
runClosedConnection(const Scenario &scenario,
                    const Schedule &schedule, const RunOptions &opts,
                    uint32_t conn_index, const Stopwatch &run_clock,
                    RunState &state)
{
    std::vector<const LoadRequest *> mine;
    for (const LoadRequest &item : schedule.requests) {
        if (item.connection == conn_index)
            mine.push_back(&item);
    }
    if (mine.empty())
        return;

    ServiceClient client(opts.socketPath);
    if (!client.connected()) {
        warn("unizk_load: connection ", conn_index, " failed");
        chargeSkipped(state, mine.size());
        return;
    }
    for (size_t i = 0; i < mine.size(); ++i) {
        if (!issueOne(client, scenario, *mine[i], run_clock, state)) {
            chargeSkipped(state, mine.size() - i - 1);
            return;
        }
    }
}

/**
 * Open-loop worker: pull the next undispatched entry, sleep until its
 * scheduled arrival, issue it. A worker whose transport dies stops
 * pulling; surviving workers keep draining the schedule, so a single
 * bad connection does not strand the rest of the run.
 */
void
runOpenWorker(const Scenario &scenario, const Schedule &schedule,
              const RunOptions &opts, std::atomic<size_t> &cursor,
              const Stopwatch &run_clock, RunState &state)
{
    ServiceClient client(opts.socketPath);
    if (!client.connected()) {
        warn("unizk_load: open-loop worker connection failed");
        return; // entries stay for other workers; leftovers charged later
    }
    for (;;) {
        const size_t i =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= schedule.requests.size())
            return;
        const LoadRequest &item = schedule.requests[i];
        const uint64_t now_ns = static_cast<uint64_t>(
            run_clock.elapsedSeconds() * 1e9);
        if (item.arrivalNs > now_ns) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(item.arrivalNs - now_ns));
        }
        if (!issueOne(client, scenario, item, run_clock, state)) {
            // This entry is already charged; put no others at risk.
            return;
        }
    }
}

} // namespace

RunReport
runScenario(const Scenario &scenario, const Schedule &schedule,
            const RunOptions &opts)
{
    // A fresh capture window: the latency histogram and percentiles
    // below describe exactly this schedule, not earlier runs or setup.
    obs::resetForMeasurement();

    RunState state;
    {
        MutexLock lock(state.mutex);
        state.perApp.assign(scenario.mix.size(), 0);
    }
    const Stopwatch run_clock;

    std::vector<std::thread> workers;
    if (scenario.arrival == Arrival::ClosedLoop) {
        for (uint32_t c = 0; c < scenario.connections; ++c) {
            workers.emplace_back([&, c] {
                runClosedConnection(scenario, schedule, opts, c,
                                    run_clock, state);
            });
        }
    } else {
        std::atomic<size_t> cursor{0};
        for (uint64_t c = 0; c < scenario.connections; ++c) {
            workers.emplace_back([&] {
                runOpenWorker(scenario, schedule, opts, cursor,
                              run_clock, state);
            });
        }
        for (auto &w : workers)
            w.join();
        workers.clear();
    }
    for (auto &w : workers)
        w.join();

    RunReport report;
    report.issued = schedule.requests.size();
    report.elapsedSeconds = run_clock.elapsedSeconds();
    {
        MutexLock lock(state.mutex);
        report.ok = state.ok;
        report.queueFull = state.queueFull;
        report.shuttingDown = state.shuttingDown;
        report.errors = state.errors;
        report.queueDepth = std::move(state.queueDepth);
        report.samples = std::move(state.samples);
        report.breakdownViolations = state.breakdownViolations;
        for (size_t i = 0; i < scenario.mix.size(); ++i) {
            PerAppCount entry;
            entry.protocol = scenario.mix[i].protocol;
            entry.app = scenario.mix[i].app;
            entry.count = state.perApp[i];
            report.perApp.push_back(entry);
        }
    }
    // Dead open-loop workers leave unpulled entries behind; keep the
    // every-entry-accounted invariant by charging them as errors.
    const uint64_t accounted = report.ok + report.queueFull +
                               report.shuttingDown + report.errors;
    unizk_assert(accounted <= report.issued,
                 "load accounting overcounted the schedule");
    report.errors += report.issued - accounted;

    std::sort(report.queueDepth.begin(), report.queueDepth.end(),
              [](const QueueSample &a, const QueueSample &b) {
                  return a.tNs < b.tNs;
              });
    std::sort(report.samples.begin(), report.samples.end(),
              [](const RequestSample &a, const RequestSample &b) {
                  return a.traceId < b.traceId;
              });
    if (report.elapsedSeconds > 0.0) {
        report.throughputRps =
            static_cast<double>(report.ok) / report.elapsedSeconds;
    }

    const auto histos = obs::histogramSnapshot();
    const auto it = histos.find("load.request_latency_ns");
    if (it != histos.end() && it->second.count > 0) {
        const obs::HistogramData &h = it->second;
        report.latency.count = h.count;
        report.latency.minNs = h.min;
        report.latency.maxNs = h.max;
        report.latency.meanNs = static_cast<double>(h.sum) /
                                static_cast<double>(h.count);
        report.latency.p50Ns = obs::histogramQuantile(h, 0.5);
        report.latency.p90Ns = obs::histogramQuantile(h, 0.9);
        report.latency.p99Ns = obs::histogramQuantile(h, 0.99);
    }
    return report;
}

std::string
reportToJson(const Scenario &scenario, uint64_t seed,
             const RunReport &report)
{
    obs::JsonWriter w;
    w.beginObject();
    w.kv("schema", "unizk-load-v1");

    w.key("scenario").beginObject();
    w.kv("name", scenario.name);
    w.kv("arrival", arrivalName(scenario.arrival));
    w.kv("skew", skewName(scenario.skew));
    if (scenario.skew == Skew::Zipfian)
        w.kv("zipfianTheta", scenario.zipfianTheta);
    if (scenario.arrival == Arrival::OpenPoisson)
        w.kv("openRateRps", scenario.openRateRps);
    w.kv("seed", seed);
    w.kv("requests", scenario.requests);
    w.kv("connections", scenario.connections);
    w.kv("keySpace", scenario.keySpace);
    w.key("mix").beginArray();
    for (const MixEntry &e : scenario.mix) {
        w.beginObject();
        w.kv("protocol",
             e.protocol == service::WireProtocol::Plonky2 ? "plonky2"
                                                          : "starky");
        w.kv("app", appToken(e.app));
        w.kv("weight", e.weight);
        w.kv("minRows", e.minRows);
        w.kv("maxRows", e.maxRows);
        w.kv("reps", e.reps);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("results").beginObject();
    w.kv("issued", report.issued);
    w.kv("ok", report.ok);
    w.kv("queueFull", report.queueFull);
    w.kv("shuttingDown", report.shuttingDown);
    w.kv("errors", report.errors);
    w.kv("elapsedSeconds", report.elapsedSeconds);
    w.kv("throughputRps", report.throughputRps);

    w.key("latencyNs").beginObject();
    w.kv("count", report.latency.count);
    w.kv("min", report.latency.minNs);
    w.kv("max", report.latency.maxNs);
    w.kv("mean", report.latency.meanNs);
    w.kv("p50", report.latency.p50Ns);
    w.kv("p90", report.latency.p90Ns);
    w.kv("p99", report.latency.p99Ns);
    w.endObject();

    // Client-observed vs server-observed latency. Means first, then
    // one entry per traced ok response so the schema validator can
    // re-check the per-request inequality chain.
    w.key("breakdown").beginObject();
    w.kv("traced", static_cast<uint64_t>(report.samples.size()));
    w.kv("violations", report.breakdownViolations);
    if (!report.samples.empty()) {
        uint64_t sum_client = 0;
        uint64_t sum_server = 0;
        uint64_t sum_queued = 0;
        uint64_t sum_prove = 0;
        uint64_t sum_serialize = 0;
        for (const RequestSample &s : report.samples) {
            sum_client += s.clientNs;
            sum_server += s.serverNs;
            sum_queued += s.queuedNs;
            sum_prove += s.proveNs;
            sum_serialize += s.serializeNs;
        }
        const double n = static_cast<double>(report.samples.size());
        w.kv("meanClientNs", static_cast<double>(sum_client) / n);
        w.kv("meanServerNs", static_cast<double>(sum_server) / n);
        w.kv("meanQueuedNs", static_cast<double>(sum_queued) / n);
        w.kv("meanProveNs", static_cast<double>(sum_prove) / n);
        w.kv("meanSerializeNs",
             static_cast<double>(sum_serialize) / n);
        w.kv("meanResidualNs",
             (static_cast<double>(sum_client) -
              static_cast<double>(sum_server)) /
                 n);
    }
    w.key("samples").beginArray();
    for (const RequestSample &s : report.samples) {
        w.beginObject();
        w.kv("traceId", s.traceId);
        w.kv("laneId", s.laneId);
        w.kv("clientNs", s.clientNs);
        w.kv("serverNs", s.serverNs);
        w.kv("queuedNs", s.queuedNs);
        w.kv("proveNs", s.proveNs);
        w.kv("serializeNs", s.serializeNs);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("queueDepth").beginArray();
    for (const QueueSample &s : report.queueDepth) {
        w.beginObject();
        w.kv("tNs", s.tNs);
        w.kv("depth", s.depth);
        w.endObject();
    }
    w.endArray();

    w.key("perApp").beginArray();
    for (const PerAppCount &p : report.perApp) {
        w.beginObject();
        w.kv("protocol",
             p.protocol == service::WireProtocol::Plonky2 ? "plonky2"
                                                          : "starky");
        w.kv("app", appToken(p.app));
        w.kv("count", p.count);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace load
} // namespace unizk
