/**
 * @file
 * Scenario runner: drives a generated schedule against a live unizkd
 * through the src/service client path and aggregates the results into
 * a `unizk-load-v1` report (throughput, latency percentiles from the
 * obs histograms, queue-depth-over-time samples, per-app counts).
 *
 * Closed-loop scenarios run one thread per connection; each thread
 * walks its round-robin slice of the schedule, issuing the next
 * request when the previous response lands. Open-loop scenarios run
 * `connections` dispatch workers pulling from a shared cursor; each
 * worker sleeps until its request's scheduled arrival offset, so the
 * offered load follows the Poisson schedule regardless of how fast
 * the daemon answers (up to the concurrency the worker count allows).
 *
 * Outcome accounting matches the unizk_client injector: queue-full and
 * shutting-down rejections are backpressure, not failures; transport
 * losses and protocol errors count as errors. Every schedule entry is
 * accounted exactly once: ok + queueFull + shuttingDown + errors ==
 * issued (entries stranded by a dead connection are charged as
 * errors), which the tools/load schema validator re-checks.
 */

#ifndef UNIZK_LOAD_RUNNER_H
#define UNIZK_LOAD_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "load/generator.h"
#include "load/scenario.h"

namespace unizk {
namespace load {

struct RunOptions
{
    std::string socketPath;
};

/** Latency summary derived from the load.request_latency_ns obs
 *  histogram (quantiles via obs::histogramQuantile, so within the
 *  log2-bucket 2x fidelity; min/max/mean are exact). */
struct LatencySummary
{
    uint64_t count = 0;
    uint64_t minNs = 0;
    uint64_t maxNs = 0;
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p90Ns = 0.0;
    double p99Ns = 0.0;
};

/** Daemon queue depth observed at one response, offset from run start. */
struct QueueSample
{
    uint64_t tNs = 0;
    uint64_t depth = 0;
};

struct PerAppCount
{
    service::WireProtocol protocol = service::WireProtocol::Plonky2;
    AppId app = AppId::Factorial;
    uint64_t count = 0;
};

/**
 * Client-observed vs server-observed timing of one ok response.
 * Schedules trace every request (generator assigns traceId =
 * schedule position + 1), so the server decomposition comes back on
 * each response and
 *   queuedNs + proveNs + serializeNs <= serverNs <= clientNs
 * must hold per sample; clientNs - serverNs is the network + framing
 * residual. Violations are counted in RunReport::breakdownViolations
 * and re-checked by tools/load/validate_load_json.py.
 */
struct RequestSample
{
    uint64_t traceId = 0;
    uint64_t laneId = 0;
    uint64_t clientNs = 0; ///< send -> response decoded, our clock
    uint64_t serverNs = 0; ///< admission -> serialized, daemon clock
    uint64_t queuedNs = 0;
    uint64_t proveNs = 0;
    uint64_t serializeNs = 0;
};

struct RunReport
{
    uint64_t issued = 0;
    uint64_t ok = 0;
    uint64_t queueFull = 0;
    uint64_t shuttingDown = 0;
    uint64_t errors = 0;

    double elapsedSeconds = 0.0;
    double throughputRps = 0.0; ///< ok / elapsedSeconds

    LatencySummary latency;
    std::vector<QueueSample> queueDepth; ///< one per ok, by tNs
    std::vector<PerAppCount> perApp;     ///< ok counts, mix order

    /** One entry per traced ok response, sorted by traceId. */
    std::vector<RequestSample> samples;
    uint64_t breakdownViolations = 0;
};

/**
 * Run @p schedule against the daemon at opts.socketPath. Resets the
 * obs capture window (obs::resetForMeasurement) at the start so the
 * latency histogram covers exactly this run; obs must be enabled by
 * the caller for percentiles to be populated.
 */
RunReport runScenario(const Scenario &scenario,
                      const Schedule &schedule, const RunOptions &opts);

/** Render the `unizk-load-v1` JSON document. */
std::string reportToJson(const Scenario &scenario, uint64_t seed,
                         const RunReport &report);

} // namespace load
} // namespace unizk

#endif // UNIZK_LOAD_RUNNER_H
