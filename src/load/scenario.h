/**
 * @file
 * Load-test scenarios: named, reproducible proof-request mixes over the
 * application zoo (YCSB-style workload definitions, DESIGN.md section
 * 6.9).
 *
 * A scenario names everything a traffic run needs to be reproducible:
 *
 *   - a weighted workload *mix* over (protocol, app) pairs with a
 *     per-entry request-size range (rows drawn as powers of two),
 *   - a *key space* of distinct circuit keys; every key maps to one
 *     fixed request shape, so key popularity is circuit popularity,
 *   - a *skew* model for key draws: uniform, or zipfian (hot keys
 *     dominate, as in YCSB's zipfian-distributed record selection),
 *   - an *arrival* process: closed-loop (each connection issues its
 *     next request when the previous response lands) or open-loop
 *     Poisson (requests arrive on a schedule regardless of service
 *     rate, which is what exposes queueing behaviour).
 *
 * Scenarios come from the built-in matrix (builtinScenarios()) or from
 * a scenario file. File parsing is strict: any unknown directive,
 * malformed number, or out-of-range field is a unizk_fatal, never a
 * silent default — a load report from a misparsed scenario would be a
 * measurement of the wrong experiment.
 */

#ifndef UNIZK_LOAD_SCENARIO_H
#define UNIZK_LOAD_SCENARIO_H

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "workloads/apps.h"

namespace unizk {
namespace load {

/** How requests are injected. */
enum class Arrival
{
    ClosedLoop,  ///< next request after the previous response
    OpenPoisson, ///< exponential interarrival gaps at a fixed rate
};

/** How circuit keys are drawn from the key space. */
enum class Skew
{
    Uniform,
    Zipfian,
};

const char *arrivalName(Arrival arrival);
const char *skewName(Skew skew);

/** One weighted entry of a scenario's workload mix. */
struct MixEntry
{
    service::WireProtocol protocol = service::WireProtocol::Plonky2;
    AppId app = AppId::Factorial;

    /** Relative draw weight within the mix (>= 1). */
    uint64_t weight = 1;

    /**
     * Request-size range: rows are drawn as a power of two in
     * [minRows, maxRows] (both must be powers of two). Power-of-two
     * steps match what the prover pads to anyway, so every drawn size
     * is a distinct real shape.
     */
    uint64_t minRows = 64;
    uint64_t maxRows = 256;

    /** Witness repetitions (Plonky2 only; 0 = app default). */
    uint64_t reps = 1;
};

/**
 * Ceiling on the key space so the zipfian rejection sampler stays
 * cheap (expected iterations grow ~ n^(1-theta)).
 */
constexpr uint64_t kMaxKeySpace = uint64_t{1} << 16;

struct Scenario
{
    std::string name;
    Arrival arrival = Arrival::ClosedLoop;
    Skew skew = Skew::Uniform;

    /** Zipfian exponent (used when skew == Zipfian); in (0, 4]. */
    double zipfianTheta = 0.99;

    /** Open-loop arrival rate in requests/second (> 0). */
    double openRateRps = 8.0;

    /** Concurrent client connections (closed-loop: independent
     *  streams; open-loop: dispatch workers). */
    uint64_t connections = 4;

    /** Total requests in one generated schedule. */
    uint64_t requests = 16;

    /** Distinct circuit keys; each key is one fixed request shape. */
    uint64_t keySpace = 64;

    std::vector<MixEntry> mix;
};

/**
 * The built-in scenario matrix: uniform-closed, zipfian-closed,
 * poisson-open, zipfian-open, rollup-batch (SHA-256 base proofs +
 * recursive aggregation, mirroring examples/zk_rollup_batch.cpp) and
 * zkml (MVM-heavy, mirroring examples/zkml_inference.cpp).
 */
const std::vector<Scenario> &builtinScenarios();

/** Look up a built-in scenario; unizk_fatal on an unknown name. */
const Scenario &builtinScenario(const std::string &name);

/**
 * Parse a scenario file. Line-based, '#' comments:
 *
 *   name my-scenario
 *   arrival closed | open-poisson
 *   skew uniform | zipfian
 *   theta 0.99
 *   rate 8.0
 *   connections 4
 *   requests 32
 *   keyspace 64
 *   mix <plonky2|starky> <app> <weight> <minRows> <maxRows> <reps>
 *
 * App tokens: factorial fibonacci ecdsa sha256 image-crop mvm
 * recursion. Every error (unreadable file, unknown directive, junk
 * number, range violation, empty mix, Starky entry for an app without
 * an AET) is a unizk_fatal naming the file and line.
 */
Scenario parseScenarioFile(const std::string &path);

/**
 * Validate ranges that both the parser and programmatic construction
 * must respect; unizk_fatal (with @p origin in the message) on any
 * violation. Called by parseScenarioFile and by unizk_load after CLI
 * overrides are applied.
 */
void validateScenario(const Scenario &scenario,
                      const std::string &origin);

/** Lowercase CLI/file token for an app ("sha256", "image-crop", ...). */
const char *appToken(AppId app);

/** Inverse of appToken; unizk_fatal (mentioning @p origin) if unknown. */
AppId appFromToken(const std::string &token, const std::string &origin);

} // namespace load
} // namespace unizk

#endif // UNIZK_LOAD_SCENARIO_H
