/**
 * @file
 * Deterministic request-schedule generation for load scenarios.
 *
 * A schedule is the fully materialized request sequence for one run:
 * which circuit key each request draws, the concrete ProveRequest that
 * key maps to, the arrival offset (open-loop only), and the issuing
 * connection (closed-loop only). Everything is derived from
 * (scenario, seed) through SplitMix64 — no wall clock, no global
 * state — so the same seed always produces a byte-identical schedule
 * (scheduleBytes() is the canonical encoding the tests and the load
 * smoke compare).
 */

#ifndef UNIZK_LOAD_GENERATOR_H
#define UNIZK_LOAD_GENERATOR_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "load/scenario.h"
#include "service/protocol.h"

namespace unizk {
namespace load {

/** One scheduled request. */
struct LoadRequest
{
    service::ProveRequest request;

    /** Circuit key this request was drawn for (0 = zipfian-hottest). */
    uint64_t key = 0;

    /** Arrival offset from run start (open-loop; 0 for closed-loop). */
    uint64_t arrivalNs = 0;

    /** Issuing connection (closed-loop round-robin assignment). */
    uint32_t connection = 0;
};

struct Schedule
{
    std::vector<LoadRequest> requests;
};

/**
 * Materialize the schedule for @p scenario under @p seed. The scenario
 * must already be validated (validateScenario).
 */
Schedule buildSchedule(const Scenario &scenario, uint64_t seed);

/** Canonical byte encoding of a schedule (for identity comparison). */
std::vector<uint8_t> scheduleBytes(const Schedule &schedule);

/** FNV-1a of scheduleBytes: a printable schedule fingerprint. */
uint64_t scheduleFingerprint(const Schedule &schedule);

// ---------------------------------------------------------------------
// Samplers, exposed for the distribution-shape tests.

/** Uniform draw in [0, n) (thin wrapper over SplitMix64::nextBelow). */
uint64_t uniformDraw(SplitMix64 &rng, uint64_t n);

/**
 * Zipfian draw in [0, n): key k is returned with probability
 * proportional to (k+1)^-theta, so key 0 is the hottest. Implemented
 * by rejection sampling (propose uniformly, accept with probability
 * (k+1)^-theta), which needs no precomputed zeta table and consumes
 * only SplitMix64 outputs, keeping schedules byte-deterministic.
 */
uint64_t zipfianDraw(SplitMix64 &rng, uint64_t n, double theta);

/**
 * One exponential interarrival gap (seconds) for a Poisson process of
 * @p rate_rps arrivals per second, via inversion of the CDF.
 */
double poissonGapSeconds(SplitMix64 &rng, double rate_rps);

/**
 * The fixed request shape of one circuit key: a weighted mix-entry
 * pick and a power-of-two row draw, both from a SplitMix64 stream
 * seeded by (seed, key) only — re-drawing the same key always yields
 * the identical request.
 */
service::ProveRequest requestForKey(const Scenario &scenario,
                                    uint64_t seed, uint64_t key);

} // namespace load
} // namespace unizk

#endif // UNIZK_LOAD_GENERATOR_H
