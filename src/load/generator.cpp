#include "load/generator.h"

#include <cmath>

#include "common/logging.h"
#include "serialize/bytes.h"

namespace unizk {
namespace load {

namespace {

/** Uniform double in [0, 1) from the top 53 bits of one draw. */
double
unitDouble(SplitMix64 &rng)
{
    return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

} // namespace

uint64_t
uniformDraw(SplitMix64 &rng, uint64_t n)
{
    return rng.nextBelow(n);
}

uint64_t
zipfianDraw(SplitMix64 &rng, uint64_t n, double theta)
{
    unizk_assert(n >= 1, "zipfian draw needs a nonempty key space");
    unizk_assert(theta > 0.0, "zipfian draw needs a positive theta");
    for (;;) {
        const uint64_t k = rng.nextBelow(n);
        // Accept k with probability (k+1)^-theta; the hottest key
        // (k == 0) is always accepted, so the loop terminates with
        // expected iterations n / zeta_n(theta).
        const double accept =
            std::pow(static_cast<double>(k + 1), -theta);
        if (unitDouble(rng) < accept)
            return k;
    }
}

double
poissonGapSeconds(SplitMix64 &rng, double rate_rps)
{
    unizk_assert(rate_rps > 0.0, "Poisson gaps need a positive rate");
    // Inversion: -ln(1-U)/rate. 1-U is in (0, 1], so the log argument
    // never hits zero.
    return -std::log(1.0 - unitDouble(rng)) / rate_rps;
}

service::ProveRequest
requestForKey(const Scenario &scenario, uint64_t seed, uint64_t key)
{
    // A per-key stream independent of draw order: the same key always
    // maps to the same request, so a hot (zipfian) key is a hot
    // circuit shape, not a fresh draw each time.
    SplitMix64 rng(seed ^ (key * 0x9E3779B97F4A7C15ULL) ^
                   0xC0FFEE0DDF00DULL);

    uint64_t total_weight = 0;
    for (const MixEntry &e : scenario.mix)
        total_weight += e.weight;
    uint64_t pick = rng.nextBelow(total_weight);
    const MixEntry *entry = &scenario.mix.back();
    for (const MixEntry &e : scenario.mix) {
        if (pick < e.weight) {
            entry = &e;
            break;
        }
        pick -= e.weight;
    }

    // Power-of-two row draw across [minRows, maxRows].
    uint64_t span = 0;
    for (uint64_t r = entry->minRows; r < entry->maxRows; r <<= 1)
        ++span;
    const uint64_t shift = rng.nextBelow(span + 1);

    service::ProveRequest req;
    req.protocol = entry->protocol;
    req.app = entry->app;
    req.rows = entry->minRows << shift;
    req.reps = entry->reps;
    req.fast = true;
    req.verify = true;
    return req;
}

Schedule
buildSchedule(const Scenario &scenario, uint64_t seed)
{
    Schedule schedule;
    schedule.requests.reserve(scenario.requests);

    // One stream drives key draws and arrival gaps in interleaved
    // order; per-key shapes come from their own (seed, key) streams,
    // so neither consumption pattern perturbs the other.
    SplitMix64 rng(seed);
    uint64_t arrival_ns = 0;
    for (uint64_t i = 0; i < scenario.requests; ++i) {
        LoadRequest item;
        item.key = scenario.skew == Skew::Zipfian
                       ? zipfianDraw(rng, scenario.keySpace,
                                     scenario.zipfianTheta)
                       : uniformDraw(rng, scenario.keySpace);
        item.request = requestForKey(scenario, seed, item.key);
        // Every scheduled request is traced: the id is the 1-based
        // schedule position (0 would downgrade to an untraced frame),
        // which makes server-side spans and response decompositions
        // joinable back to the schedule row.
        item.request.traceId = i + 1;
        if (scenario.arrival == Arrival::OpenPoisson) {
            arrival_ns += static_cast<uint64_t>(
                poissonGapSeconds(rng, scenario.openRateRps) * 1e9);
            item.arrivalNs = arrival_ns;
        }
        item.connection =
            static_cast<uint32_t>(i % scenario.connections);
        schedule.requests.push_back(item);
    }
    return schedule;
}

std::vector<uint8_t>
scheduleBytes(const Schedule &schedule)
{
    ByteWriter w;
    w.putU64(schedule.requests.size());
    for (const LoadRequest &item : schedule.requests) {
        w.putU64(item.key);
        w.putU64(static_cast<uint64_t>(item.request.protocol));
        w.putU64(static_cast<uint64_t>(item.request.app));
        w.putU64(item.request.rows);
        w.putU64(item.request.reps);
        w.putU64(item.request.fast ? 1 : 0);
        w.putU64(item.request.verify ? 1 : 0);
        w.putU64(item.request.traceId);
        w.putU64(item.arrivalNs);
        w.putU64(item.connection);
    }
    return w.take();
}

uint64_t
scheduleFingerprint(const Schedule &schedule)
{
    uint64_t h = 0xCBF29CE484222325ULL;
    for (const uint8_t b : scheduleBytes(schedule)) {
        h ^= b;
        h *= 0x100000001B3ULL;
    }
    return h;
}

} // namespace load
} // namespace unizk
