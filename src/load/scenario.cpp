#include "load/scenario.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace unizk {
namespace load {

namespace {

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Strict number parsing for scenario files: the whole token must be
 * consumed, no sign, no overflow. Mirrors CliOptions::getUint — a
 * schedule generated from "1o24" rows must never silently mean 1.
 */
uint64_t
parseUint(const std::string &token, const std::string &origin)
{
    if (token.empty() || token[0] == '-' || token[0] == '+')
        unizk_fatal(origin, ": expected an unsigned integer, got \"",
                    token, "\"");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(token.c_str(), &end, 0);
    if (errno != 0 || end == token.c_str() || *end != '\0')
        unizk_fatal(origin, ": expected an unsigned integer, got \"",
                    token, "\"");
    return static_cast<uint64_t>(v);
}

double
parseDouble(const std::string &token, const std::string &origin)
{
    if (token.empty() || token[0] == '-' || token[0] == '+')
        unizk_fatal(origin, ": expected a positive number, got \"",
                    token, "\"");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (errno != 0 || end == token.c_str() || *end != '\0')
        unizk_fatal(origin, ": expected a positive number, got \"",
                    token, "\"");
    return v;
}

MixEntry
makeEntry(service::WireProtocol protocol, AppId app, uint64_t weight,
          uint64_t min_rows, uint64_t max_rows, uint64_t reps)
{
    MixEntry e;
    e.protocol = protocol;
    e.app = app;
    e.weight = weight;
    e.minRows = min_rows;
    e.maxRows = max_rows;
    e.reps = reps;
    return e;
}

/**
 * The shared small-shape Plonky2/Starky mix (the same app cycle the
 * unizk_client injector uses, here with weighted draws and a size
 * range). Shapes stay sub-second so smoke runs are cheap.
 */
std::vector<MixEntry>
smallMixedWorkload()
{
    using service::WireProtocol;
    return {
        makeEntry(WireProtocol::Plonky2, AppId::Factorial, 2, 64, 256,
                  2),
        makeEntry(WireProtocol::Starky, AppId::Fibonacci, 2, 128, 512,
                  0),
        makeEntry(WireProtocol::Plonky2, AppId::Fibonacci, 1, 64, 128,
                  2),
        makeEntry(WireProtocol::Starky, AppId::Sha256, 1, 64, 128, 0),
    };
}

Scenario
makeScenario(const char *name, Arrival arrival, Skew skew,
             std::vector<MixEntry> mix)
{
    Scenario s;
    s.name = name;
    s.arrival = arrival;
    s.skew = skew;
    s.mix = std::move(mix);
    return s;
}

} // namespace

const char *
arrivalName(Arrival arrival)
{
    switch (arrival) {
      case Arrival::ClosedLoop:
        return "closed";
      case Arrival::OpenPoisson:
        return "open-poisson";
      default:
        unizk_panic("unknown arrival process");
    }
}

const char *
skewName(Skew skew)
{
    switch (skew) {
      case Skew::Uniform:
        return "uniform";
      case Skew::Zipfian:
        return "zipfian";
      default:
        unizk_panic("unknown skew model");
    }
}

const char *
appToken(AppId app)
{
    switch (app) {
      case AppId::Factorial:
        return "factorial";
      case AppId::Fibonacci:
        return "fibonacci";
      case AppId::Ecdsa:
        return "ecdsa";
      case AppId::Sha256:
        return "sha256";
      case AppId::ImageCrop:
        return "image-crop";
      case AppId::Mvm:
        return "mvm";
      case AppId::Recursion:
        return "recursion";
      default:
        unizk_panic("unknown app");
    }
}

AppId
appFromToken(const std::string &token, const std::string &origin)
{
    static const AppId all[] = {
        AppId::Factorial, AppId::Fibonacci, AppId::Ecdsa,
        AppId::Sha256,    AppId::ImageCrop, AppId::Mvm,
        AppId::Recursion};
    for (const AppId app : all) {
        if (token == appToken(app))
            return app;
    }
    unizk_fatal(origin, ": unknown app \"", token,
                "\" (expected factorial, fibonacci, ecdsa, sha256, "
                "image-crop, mvm, or recursion)");
}

const std::vector<Scenario> &
builtinScenarios()
{
    using service::WireProtocol;
    static const std::vector<Scenario> scenarios = [] {
        std::vector<Scenario> all;

        // The core matrix: {uniform, zipfian} x {closed, open}.
        all.push_back(makeScenario("uniform-closed",
                                   Arrival::ClosedLoop, Skew::Uniform,
                                   smallMixedWorkload()));
        all.push_back(makeScenario("zipfian-closed",
                                   Arrival::ClosedLoop, Skew::Zipfian,
                                   smallMixedWorkload()));
        all.push_back(makeScenario("poisson-open",
                                   Arrival::OpenPoisson, Skew::Uniform,
                                   smallMixedWorkload()));
        all.push_back(makeScenario("zipfian-open",
                                   Arrival::OpenPoisson, Skew::Zipfian,
                                   smallMixedWorkload()));

        // Rollup batching: many Starky SHA-256 base proofs, fewer
        // recursive Plonky2 aggregations (examples/zk_rollup_batch).
        all.push_back(makeScenario(
            "rollup-batch", Arrival::ClosedLoop, Skew::Zipfian,
            {makeEntry(WireProtocol::Starky, AppId::Sha256, 3, 64, 256,
                       0),
             makeEntry(WireProtocol::Plonky2, AppId::Recursion, 1, 64,
                       128, 1)}));

        // zkML inference traffic: MVM-dominated with a light control
        // circuit (examples/zkml_inference).
        all.push_back(makeScenario(
            "zkml", Arrival::ClosedLoop, Skew::Uniform,
            {makeEntry(WireProtocol::Plonky2, AppId::Mvm, 3, 64, 256,
                       1),
             makeEntry(WireProtocol::Plonky2, AppId::Factorial, 1, 64,
                       128, 1)}));
        return all;
    }();
    return scenarios;
}

const Scenario &
builtinScenario(const std::string &name)
{
    for (const Scenario &s : builtinScenarios()) {
        if (s.name == name)
            return s;
    }
    std::ostringstream known;
    for (const Scenario &s : builtinScenarios())
        known << " " << s.name;
    unizk_fatal("unknown scenario \"", name, "\" (built-ins:",
                known.str(), ")");
}

void
validateScenario(const Scenario &scenario, const std::string &origin)
{
    if (scenario.name.empty())
        unizk_fatal(origin, ": scenario has no name");
    if (scenario.requests < 1)
        unizk_fatal(origin, ": requests must be >= 1");
    if (scenario.connections < 1)
        unizk_fatal(origin, ": connections must be >= 1");
    if (scenario.keySpace < 1 || scenario.keySpace > kMaxKeySpace)
        unizk_fatal(origin, ": keyspace must be in [1, ", kMaxKeySpace,
                    "], got ", scenario.keySpace);
    if (scenario.skew == Skew::Zipfian &&
        (scenario.zipfianTheta <= 0.0 || scenario.zipfianTheta > 4.0))
        unizk_fatal(origin, ": theta must be in (0, 4], got ",
                    scenario.zipfianTheta);
    if (scenario.arrival == Arrival::OpenPoisson &&
        scenario.openRateRps <= 0.0)
        unizk_fatal(origin, ": rate must be > 0, got ",
                    scenario.openRateRps);
    if (scenario.mix.empty())
        unizk_fatal(origin, ": scenario has an empty mix");
    for (const MixEntry &e : scenario.mix) {
        const std::string where =
            origin + ": mix entry " + appToken(e.app);
        if (e.weight < 1)
            unizk_fatal(where, ": weight must be >= 1");
        if (!isPowerOfTwo(e.minRows) || !isPowerOfTwo(e.maxRows))
            unizk_fatal(where, ": minRows/maxRows must be powers of "
                        "two, got ", e.minRows, "/", e.maxRows);
        if (e.minRows > e.maxRows)
            unizk_fatal(where, ": minRows ", e.minRows,
                        " exceeds maxRows ", e.maxRows);
        if (e.maxRows > service::kMaxRequestRows)
            unizk_fatal(where, ": maxRows ", e.maxRows,
                        " exceeds the service bound ",
                        service::kMaxRequestRows);
        if (e.reps > service::kMaxRequestReps)
            unizk_fatal(where, ": reps ", e.reps,
                        " exceeds the service bound ",
                        service::kMaxRequestReps);
        if (e.protocol == service::WireProtocol::Starky &&
            !hasStarkImplementation(e.app))
            unizk_fatal(where,
                        ": app has no Starky implementation (only "
                        "factorial, fibonacci, sha256 do)");
    }
}

Scenario
parseScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        unizk_fatal("cannot read scenario file ", path);

    Scenario scenario;
    scenario.mix.clear();
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string directive;
        if (!(tokens >> directive))
            continue; // blank / comment-only line
        const std::string origin =
            path + ":" + std::to_string(lineno);
        std::vector<std::string> args;
        for (std::string t; tokens >> t;)
            args.push_back(t);

        auto oneArg = [&]() -> const std::string & {
            if (args.size() != 1)
                unizk_fatal(origin, ": '", directive,
                            "' takes exactly one argument");
            return args[0];
        };

        if (directive == "name") {
            scenario.name = oneArg();
        } else if (directive == "arrival") {
            const std::string &v = oneArg();
            if (v == "closed")
                scenario.arrival = Arrival::ClosedLoop;
            else if (v == "open-poisson")
                scenario.arrival = Arrival::OpenPoisson;
            else
                unizk_fatal(origin, ": arrival must be closed or "
                            "open-poisson, got \"", v, "\"");
        } else if (directive == "skew") {
            const std::string &v = oneArg();
            if (v == "uniform")
                scenario.skew = Skew::Uniform;
            else if (v == "zipfian")
                scenario.skew = Skew::Zipfian;
            else
                unizk_fatal(origin, ": skew must be uniform or "
                            "zipfian, got \"", v, "\"");
        } else if (directive == "theta") {
            scenario.zipfianTheta = parseDouble(oneArg(), origin);
        } else if (directive == "rate") {
            scenario.openRateRps = parseDouble(oneArg(), origin);
        } else if (directive == "connections") {
            scenario.connections = parseUint(oneArg(), origin);
        } else if (directive == "requests") {
            scenario.requests = parseUint(oneArg(), origin);
        } else if (directive == "keyspace") {
            scenario.keySpace = parseUint(oneArg(), origin);
        } else if (directive == "mix") {
            if (args.size() != 6)
                unizk_fatal(origin,
                            ": mix takes <protocol> <app> <weight> "
                            "<minRows> <maxRows> <reps>");
            MixEntry e;
            if (args[0] == "plonky2")
                e.protocol = service::WireProtocol::Plonky2;
            else if (args[0] == "starky")
                e.protocol = service::WireProtocol::Starky;
            else
                unizk_fatal(origin, ": protocol must be plonky2 or "
                            "starky, got \"", args[0], "\"");
            e.app = appFromToken(args[1], origin);
            e.weight = parseUint(args[2], origin);
            e.minRows = parseUint(args[3], origin);
            e.maxRows = parseUint(args[4], origin);
            e.reps = parseUint(args[5], origin);
            scenario.mix.push_back(e);
        } else {
            unizk_fatal(origin, ": unknown directive \"", directive,
                        "\"");
        }
    }
    if (scenario.name.empty())
        unizk_fatal(path, ": scenario file sets no name");
    validateScenario(scenario, path);
    return scenario;
}

} // namespace load
} // namespace unizk
