/**
 * @file
 * unizk_load: YCSB-style traffic generator for the unizkd service.
 *
 *   unizk_load --socket /tmp/unizkd.sock --scenario uniform-closed \
 *              [--seed N] [--requests N] [--connections N] \
 *              [--rate RPS] [--theta T] [--keyspace N] \
 *              [--report FILE] [--schedule-out FILE] [--dry-run] \
 *              [--list-scenarios] [--threads N]
 *
 * A scenario (built-in name via --scenario, or a file via
 * --scenario-file; see src/load/scenario.h for the format) is expanded
 * into a byte-deterministic request schedule from --seed (default: the
 * UNIZK_LOAD_SEED environment variable, then 1), then driven against
 * the daemon. --report writes the `unizk-load-v1` JSON document
 * (validated by tools/load/validate_load_json.py); --dry-run stops
 * after generation and prints the schedule fingerprint, which is how
 * the load smoke asserts seed-determinism without a daemon.
 *
 * Exits 0 iff every issued request was answered without a transport or
 * protocol error; queue-full / shutting-down rejections are expected
 * backpressure and never fail the run.
 */

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/env.h"
#include "common/logging.h"
#include "load/generator.h"
#include "load/runner.h"
#include "load/scenario.h"
#include "obs/json_writer.h"
#include "obs/obs.h"

namespace {

using namespace unizk;

uint64_t
defaultSeed()
{
    // Strict parse: "7abc" in the environment warns and falls back
    // instead of silently meaning 7.
    if (const auto env = envUint("UNIZK_LOAD_SEED", 0, ~uint64_t{0}))
        return *env;
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli(argc, argv);
    applyGlobalCliOptions(cli);

    if (cli.has("list-scenarios")) {
        for (const load::Scenario &s : load::builtinScenarios()) {
            std::printf("%-16s %-12s %-8s %llu requests, %llu keys\n",
                        s.name.c_str(), load::arrivalName(s.arrival),
                        load::skewName(s.skew),
                        static_cast<unsigned long long>(s.requests),
                        static_cast<unsigned long long>(s.keySpace));
        }
        return 0;
    }

    const std::string scenario_file =
        cli.getString("scenario-file", "");
    load::Scenario scenario =
        !scenario_file.empty()
            ? load::parseScenarioFile(scenario_file)
            : load::builtinScenario(
                  cli.getString("scenario", "uniform-closed"));

    // CLI overrides re-validate: "--requests 0" must die like a bad
    // scenario file, not generate an empty run.
    scenario.requests = cli.getUint("requests", scenario.requests);
    scenario.connections =
        cli.getUint("connections", scenario.connections);
    scenario.keySpace = cli.getUint("keyspace", scenario.keySpace);
    scenario.openRateRps = cli.getDouble("rate", scenario.openRateRps);
    scenario.zipfianTheta =
        cli.getDouble("theta", scenario.zipfianTheta);
    load::validateScenario(scenario, "command line");

    const uint64_t seed = cli.getUint("seed", defaultSeed());
    const load::Schedule schedule =
        load::buildSchedule(scenario, seed);

    const std::string schedule_out =
        cli.getString("schedule-out", "");
    if (!schedule_out.empty()) {
        const std::vector<uint8_t> bytes =
            load::scheduleBytes(schedule);
        const std::string blob(bytes.begin(), bytes.end());
        if (!obs::writeFile(schedule_out, blob))
            unizk_fatal("cannot write ", schedule_out);
    }
    std::printf("unizk_load: scenario=%s seed=%llu requests=%zu "
                "fingerprint=%016llx\n",
                scenario.name.c_str(),
                static_cast<unsigned long long>(seed),
                schedule.requests.size(),
                static_cast<unsigned long long>(
                    load::scheduleFingerprint(schedule)));
    if (cli.has("dry-run"))
        return 0;

    // The latency percentiles in the report come from the obs
    // histograms, so observability is always on in the generator.
    obs::setEnabled(true);

    load::RunOptions opts;
    opts.socketPath = cli.getString("socket", "unizkd.sock");
    const load::RunReport report =
        load::runScenario(scenario, schedule, opts);

    const std::string report_path = cli.getString("report", "");
    if (!report_path.empty()) {
        const std::string doc =
            load::reportToJson(scenario, seed, report);
        if (!obs::writeFile(report_path, doc))
            unizk_fatal("cannot write ", report_path);
        std::printf("unizk_load: wrote report: %s\n",
                    report_path.c_str());
    }

    std::printf("unizk_load: ok=%llu queue_full=%llu "
                "shutting_down=%llu errors=%llu rps=%.2f "
                "p50_ms=%.2f p99_ms=%.2f traced=%zu "
                "breakdown_violations=%llu\n",
                static_cast<unsigned long long>(report.ok),
                static_cast<unsigned long long>(report.queueFull),
                static_cast<unsigned long long>(report.shuttingDown),
                static_cast<unsigned long long>(report.errors),
                report.throughputRps, report.latency.p50Ns / 1e6,
                report.latency.p99Ns / 1e6, report.samples.size(),
                static_cast<unsigned long long>(
                    report.breakdownViolations));
    // A breakdown violation means the daemon's timing decomposition
    // contradicted itself (or our clock): fail loudly.
    return (report.errors || report.breakdownViolations) ? 1 : 0;
}
