/**
 * @file
 * The Poseidon permutation over the Goldilocks field, in both its naive
 * (textbook) form and the optimized form of the paper's Algorithm 1.
 *
 * Structure (matching Plonky2 and the paper):
 *  - state width t = 12 elements,
 *  - S-box x^7,
 *  - 8 full rounds (4 before, 4 after) and 22 partial rounds,
 *  - a dense t x t MDS linear layer.
 *
 * The *optimized* form replaces the dense MDS multiplication in each
 * partial round with one dense "PreMDSMatrix" applied once, plus one
 * sparse matrix per partial round whose non-zeros lie only in the first
 * row, first column, and diagonal -- exactly the (u, v, E) decomposition
 * the UniZK partial-round mapping exploits (paper Fig. 5b). The sparse
 * factorization and the equivalent round constants are *derived* here
 * from the naive parameters, and the test suite checks the two forms
 * agree on random inputs.
 *
 * Round constants are generated deterministically (splitmix64 rejection
 * sampling) and the MDS matrix is a Cauchy matrix, which is provably MDS
 * over a prime field. These differ from Plonky2's published constants --
 * a documented substitution (DESIGN.md): the computation *shape*, which
 * is what the accelerator sees, is identical.
 */

#ifndef UNIZK_HASH_POSEIDON_H
#define UNIZK_HASH_POSEIDON_H

#include <array>
#include <cstdint>
#include <vector>

#include "field/goldilocks.h"
#include "field/matrix.h"
#include "hash/poseidon_params.h"

namespace unizk {

/** A 12-element Poseidon state. */
using PoseidonState = std::array<Fp, PoseidonConfig::width>;

/**
 * One partial round's sparse linear layer [[m00, v^T], [w, I]]:
 * out[0] = m00*s[0] + sum v[j]*s[j+1];  out[i] = w[i-1]*s[0] + s[i].
 */
struct SparseMdsLayer
{
    Fp m00;
    std::array<Fp, PoseidonConfig::width - 1> v;
    std::array<Fp, PoseidonConfig::width - 1> w;
};

/**
 * The Poseidon permutation with lazily derived optimized parameters.
 * Construction performs the sparse factorization once; instances are
 * immutable afterwards and cheap to share by const reference.
 */
class Poseidon
{
  public:
    Poseidon();

    /** Process-wide shared instance (parameters are fixed). */
    static const Poseidon &instance();

    /** Textbook permutation: ARC + S-box + dense MDS every round. */
    void permuteNaive(PoseidonState &state) const;

    /**
     * Optimized permutation per Algorithm 1: full rounds, then
     * PrePartialRound (constant add + dense PreMDSMatrix), then 22
     * partial rounds each doing sbox(state[0]), scalar constant add,
     * sparse MDS.
     */
    void permute(PoseidonState &state) const;

    /**
     * Permute @p n independent states in place, advancing them in
     * groups of kSimdBatchWidth through the SIMD backend selected by
     * activeSimdLevel() (goldilocks_simd.h); the ragged tail falls back
     * to scalar permute(). Bit-identical to n scalar permute() calls at
     * every dispatch level, so callers may batch freely without
     * affecting proof bytes.
     */
    void permuteBatch(PoseidonState *states, size_t n) const;

    /** x^7 S-box. */
    static Fp sbox(Fp x);

    /** The dense MDS matrix (width x width). */
    const FpMatrix &mdsMatrix() const { return mds; }

    /** Round constants, [round][lane]. */
    const std::vector<std::array<Fp, PoseidonConfig::width>> &
    roundConstants() const
    {
        return arc;
    }

    /** Dense matrix applied once before the partial rounds. */
    const FpMatrix &preMdsMatrix() const { return pre_matrix; }

    /** Flat row-major MDS matrix (width*width), for the batch kernels. */
    const Fp *mdsFlat() const { return mds_flat.data(); }

    /** Flat row-major PreMDSMatrix, for the batch kernels. */
    const Fp *preFlat() const { return pre_flat.data(); }

    /** Constant vector added before PreMDSMatrix. */
    const PoseidonState &prePartialConstants() const { return pre_constants; }

    /** Per-partial-round scalar constants (added after the S-box). */
    const std::array<Fp, PoseidonConfig::partialRounds> &
    partialConstants() const
    {
        return partial_constants;
    }

    /** Per-partial-round sparse layers. */
    const std::array<SparseMdsLayer, PoseidonConfig::partialRounds> &
    sparseLayers() const
    {
        return sparse_layers;
    }

  private:
    void generateConstants();
    void deriveOptimizedForm();

    void fullRound(PoseidonState &state, uint32_t round) const;
    void denseMdsApply(PoseidonState &state) const;

    FpMatrix mds;
    /** Flat row-major copy of the MDS matrix for the hot path. */
    std::array<Fp, PoseidonConfig::width * PoseidonConfig::width>
        mds_flat{};
    std::vector<std::array<Fp, PoseidonConfig::width>> arc;

    // Derived optimized-form parameters.
    FpMatrix pre_matrix;
    /** Flat copy of pre_matrix for the hot path. */
    std::array<Fp, PoseidonConfig::width * PoseidonConfig::width>
        pre_flat{};
    PoseidonState pre_constants;
    std::array<Fp, PoseidonConfig::partialRounds> partial_constants;
    std::array<SparseMdsLayer, PoseidonConfig::partialRounds> sparse_layers;
};

} // namespace unizk

#endif // UNIZK_HASH_POSEIDON_H
