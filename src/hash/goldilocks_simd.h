/**
 * @file
 * Runtime-dispatched SIMD lane layer for the Goldilocks field, built for
 * the batched Poseidon sponge path ("Gotta Hash 'Em All": ZK-hash
 * throughput is won by running independent sponge states across SIMD
 * lanes, not by vectorizing inside one state).
 *
 * Two lane backends share one shape:
 *
 *  - FpVec4Scalar (here, always compiled): four Fp lanes advanced with
 *    the branchless scalar primitives. This is both the portable
 *    fallback and the differential oracle for the vector backend.
 *  - FpVec4Avx2 (goldilocks_simd_avx2.cpp, compiled only when the
 *    toolchain targets x86-64): four 64-bit lanes in one __m256i,
 *    add/sub/mul pinned to the same branchless identities as the
 *    scalar path (2^64 === 2^32 - 1, 2^96 === -1 mod p), so every lane
 *    holds the canonical representative after every operation and the
 *    two backends agree bit for bit.
 *
 * Dispatch is decided once per process: the UNIZK_SIMD environment
 * variable ({auto, avx2, scalar}, parsed strictly through common/env.h)
 * overrides CPUID auto-detection. Forcing a level the build or the CPU
 * cannot execute warns and falls back to scalar -- never crashes.
 *
 * Raw vector intrinsics are confined to src/hash/goldilocks_simd*
 * (enforced by the raw-simd-intrinsic lint rule): everything else goes
 * through Poseidon::permuteBatch and the hashing.h batch entry points,
 * which consult activeSimdLevel().
 */

#ifndef UNIZK_HASH_GOLDILOCKS_SIMD_H
#define UNIZK_HASH_GOLDILOCKS_SIMD_H

#include <cstddef>

#include "hash/poseidon.h"

namespace unizk {

/** Number of sponge states one SIMD batch advances together. */
constexpr size_t kSimdBatchWidth = 4;

/** Available SIMD dispatch levels, in increasing capability order. */
enum class SimdLevel
{
    Scalar,
    Avx2,
};

/** Human-readable name ("scalar" / "avx2") for logs and bench JSON. */
const char *simdLevelName(SimdLevel level);

/**
 * True when @p level can execute on this build *and* this CPU (the
 * backend was compiled in and CPUID reports the feature). Scalar is
 * always available.
 */
bool simdLevelAvailable(SimdLevel level);

/**
 * The level Poseidon::permuteBatch dispatches to. Selected once on
 * first use: UNIZK_SIMD={auto,avx2,scalar} when set (unknown spellings
 * warn and mean auto; forcing an unavailable level warns and falls
 * back to scalar), otherwise the best available level.
 */
SimdLevel activeSimdLevel();

/**
 * Override the dispatch level at runtime (test/bench hook, also behind
 * the bench_poseidon --simd flag). Returns false -- and changes
 * nothing -- when the level is unavailable on this host. Results are
 * identical at every level, so flipping it mid-run is always sound.
 */
bool setSimdLevel(SimdLevel level);

/**
 * Portable lane type: four Fp lanes with the branchless scalar
 * primitives. Shape-identical to the AVX2 backend so the batched
 * permutation template instantiates over either.
 */
struct FpVec4Scalar
{
    Fp lane[kSimdBatchWidth];

    /** Element @p i of four consecutive sponge states, one per lane. */
    static FpVec4Scalar
    gather(const PoseidonState *states, size_t i)
    {
        FpVec4Scalar out;
        for (size_t k = 0; k < kSimdBatchWidth; ++k)
            out.lane[k] = states[k][i];
        return out;
    }

    /** Write the lanes back into element @p i of four states. */
    void
    scatter(PoseidonState *states, size_t i) const
    {
        for (size_t k = 0; k < kSimdBatchWidth; ++k)
            states[k][i] = lane[k];
    }

    /** The same constant in every lane. */
    static FpVec4Scalar
    broadcast(Fp x)
    {
        FpVec4Scalar out;
        for (auto &l : out.lane)
            l = x;
        return out;
    }

    static FpVec4Scalar
    add(const FpVec4Scalar &a, const FpVec4Scalar &b)
    {
        FpVec4Scalar out;
        for (size_t k = 0; k < kSimdBatchWidth; ++k)
            out.lane[k] = Fp::addBranchless(a.lane[k], b.lane[k]);
        return out;
    }

    static FpVec4Scalar
    sub(const FpVec4Scalar &a, const FpVec4Scalar &b)
    {
        FpVec4Scalar out;
        for (size_t k = 0; k < kSimdBatchWidth; ++k)
            out.lane[k] = Fp::subBranchless(a.lane[k], b.lane[k]);
        return out;
    }

    static FpVec4Scalar
    mul(const FpVec4Scalar &a, const FpVec4Scalar &b)
    {
        FpVec4Scalar out;
        for (size_t k = 0; k < kSimdBatchWidth; ++k)
            out.lane[k] = Fp::mulBranchless(a.lane[k], b.lane[k]);
        return out;
    }
};

/**
 * Backend kernels: advance exactly kSimdBatchWidth sponge states in
 * place. Exposed (rather than hidden behind permuteBatch) so the test
 * suite can differential-test both backends on any host regardless of
 * the dispatched level.
 * @{
 */
void poseidonPermuteBatch4Scalar(const Poseidon &p, PoseidonState *states);
#if defined(UNIZK_HAVE_AVX2)
void poseidonPermuteBatch4Avx2(const Poseidon &p, PoseidonState *states);
#endif
/** @} */

} // namespace unizk

#endif // UNIZK_HASH_GOLDILOCKS_SIMD_H
