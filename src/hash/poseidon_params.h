/**
 * @file
 * Static parameters of the Poseidon instance, generated and verified at
 * compile time.
 *
 * The round-constant and MDS tables used to be produced at runtime in
 * Poseidon::generateConstants(). They are now constexpr: the splitmix64
 * draw sequence and the Cauchy-matrix construction run during constant
 * evaluation, and static_asserts pin the resulting tables to recorded
 * checksums. A bad edit to the seed, the draw order, the rejection
 * sampler, or the Cauchy layout therefore fails the *build* -- it cannot
 * silently change hashes, Merkle roots, Fiat-Shamir challenges, or a
 * Table 3 row.
 *
 * To intentionally re-parameterize, update kPoseidonArcChecksum /
 * kPoseidonMdsChecksum alongside the change (and expect every proof
 * fixture to change with them).
 */

#ifndef UNIZK_HASH_POSEIDON_PARAMS_H
#define UNIZK_HASH_POSEIDON_PARAMS_H

#include <array>
#include <cstdint>

#include "field/goldilocks.h"

namespace unizk {

/** Static parameters of the Poseidon instance. */
struct PoseidonConfig
{
    static constexpr uint32_t width = 12;        ///< state elements t
    static constexpr uint32_t fullRounds = 8;    ///< total full rounds
    static constexpr uint32_t halfFullRounds = 4;
    static constexpr uint32_t partialRounds = 22;
    static constexpr uint32_t totalRounds = 30;
    static constexpr uint64_t sboxExponent = 7;
    static constexpr uint32_t rate = 8;          ///< sponge rate
    static constexpr uint32_t capacity = 4;      ///< sponge capacity
};

// The parameter set must be internally consistent before any table is
// generated from it.
static_assert(PoseidonConfig::totalRounds ==
                  PoseidonConfig::fullRounds + PoseidonConfig::partialRounds,
              "totalRounds != fullRounds + partialRounds");
static_assert(PoseidonConfig::fullRounds ==
                  2 * PoseidonConfig::halfFullRounds,
              "full rounds must split evenly around the partial rounds");
static_assert(PoseidonConfig::width ==
                  PoseidonConfig::rate + PoseidonConfig::capacity,
              "sponge rate + capacity != state width");
static_assert(PoseidonConfig::sboxExponent == 7,
              "x^7 is the designed S-box for Goldilocks (gcd(7, p-1) = 1)");

namespace poseidon_params {

/** Seed for the deterministic parameter derivation ("UniZK-Ps"). */
inline constexpr uint64_t kSeed = 0x556E695A4B2D5073ULL;

using ArcTable = std::array<std::array<Fp, PoseidonConfig::width>,
                            PoseidonConfig::totalRounds>;
using MdsTable =
    std::array<Fp, PoseidonConfig::width * PoseidonConfig::width>;

/**
 * All round constants, [round][lane], drawn from splitmix64 rejection
 * sampling in a fixed order.
 */
constexpr ArcTable
generateRoundConstants()
{
    SplitMix64 rng(kSeed);
    ArcTable arc{};
    for (auto &round : arc)
        for (auto &c : round)
            c = randomFp(rng);
    return arc;
}

/**
 * The dense MDS matrix, row-major. Cauchy matrix M[i][j] = 1/(x_i + y_j)
 * with x_i = i, y_j = t + j: all denominators are distinct and nonzero,
 * so every square submatrix is nonsingular -- the matrix is MDS and its
 * trailing (t-1)x(t-1) submatrix is invertible (required by the sparse
 * factorization of the optimized form).
 */
constexpr MdsTable
generateMdsMatrix()
{
    constexpr uint32_t t = PoseidonConfig::width;
    MdsTable mds{};
    for (uint32_t i = 0; i < t; ++i)
        for (uint32_t j = 0; j < t; ++j)
            mds[i * t + j] = Fp(i + t + j).inverse();
    return mds;
}

inline constexpr ArcTable kRoundConstants = generateRoundConstants();
inline constexpr MdsTable kMdsMatrix = generateMdsMatrix();

/** FNV-1a over the 8 bytes of @p v, little-endian, folded into @p h. */
constexpr uint64_t
fnv1aStep(uint64_t h, uint64_t v)
{
    for (uint32_t byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xFF;
        h *= 0x100000001B3ULL;
    }
    return h;
}

inline constexpr uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;

constexpr uint64_t
arcChecksum()
{
    uint64_t h = kFnvOffsetBasis;
    for (const auto &round : kRoundConstants)
        for (const Fp &c : round)
            h = fnv1aStep(h, c.value());
    return h;
}

constexpr uint64_t
mdsChecksum()
{
    uint64_t h = kFnvOffsetBasis;
    for (const Fp &c : kMdsMatrix)
        h = fnv1aStep(h, c.value());
    return h;
}

/**
 * Recorded checksums of the spec parameter set. These are the values the
 * tables derived from kSeed had when the instance was frozen; see the
 * file comment for the re-parameterization procedure.
 */
inline constexpr uint64_t kArcChecksum = 0x09889ACF5B332542ULL;
inline constexpr uint64_t kMdsChecksum = 0x9BF4ABD760A19B64ULL;

static_assert(arcChecksum() == kArcChecksum,
              "Poseidon round-constant table diverged from the spec; if "
              "this is an intentional re-parameterization, update "
              "kArcChecksum");
static_assert(mdsChecksum() == kMdsChecksum,
              "Poseidon MDS matrix diverged from the spec; if this is an "
              "intentional re-parameterization, update kMdsChecksum");

// Structural sanity: every MDS entry and at least one round constant per
// round must be nonzero (a zeroed table would checksum differently, but
// these checks give a clearer failure on partial corruption).
constexpr bool
allMdsEntriesNonzero()
{
    for (const Fp &c : kMdsMatrix)
        if (c.isZero())
            return false;
    return true;
}

constexpr bool
everyRoundHasNonzeroConstant()
{
    for (const auto &round : kRoundConstants) {
        bool nonzero = false;
        for (const Fp &c : round)
            nonzero = nonzero || !c.isZero();
        if (!nonzero)
            return false;
    }
    return true;
}

static_assert(allMdsEntriesNonzero(), "MDS matrix has a zero entry");
static_assert(everyRoundHasNonzeroConstant(),
              "a Poseidon round has an all-zero constant row");

} // namespace poseidon_params
} // namespace unizk

#endif // UNIZK_HASH_POSEIDON_PARAMS_H
