#include "hash/poseidon.h"

#include "hash/goldilocks_simd.h"

namespace unizk {

namespace {

constexpr uint32_t t = PoseidonConfig::width;
constexpr uint32_t rp = PoseidonConfig::partialRounds;
constexpr uint32_t half = PoseidonConfig::halfFullRounds;

} // namespace

Poseidon::Poseidon() : mds(t, t), pre_matrix(t, t)
{
    generateConstants();
    deriveOptimizedForm();
}

const Poseidon &
Poseidon::instance()
{
    static const Poseidon inst;
    return inst;
}

Fp
Poseidon::sbox(Fp x)
{
    const Fp x2 = x.squared();
    const Fp x3 = x2 * x;
    const Fp x6 = x3.squared();
    return x6 * x;
}

void
Poseidon::generateConstants()
{
    // The tables are generated and checksum-verified at compile time in
    // poseidon_params.h (deterministic nothing-up-my-sleeve derivation,
    // seed "UniZK-Ps"); this just copies them into the member layout the
    // permutation uses.
    const auto &spec_arc = poseidon_params::kRoundConstants;
    arc.assign(spec_arc.begin(), spec_arc.end());

    mds_flat = poseidon_params::kMdsMatrix;
    for (uint32_t i = 0; i < t; ++i)
        for (uint32_t j = 0; j < t; ++j)
            mds.at(i, j) = mds_flat[i * t + j];
}

void
Poseidon::denseMdsApply(PoseidonState &state) const
{
    // Allocation-free matrix-vector product: this is the permutation's
    // hot loop and dominates the CPU baseline's Merkle-tree time.
    PoseidonState out;
    for (uint32_t i = 0; i < t; ++i)
        out[i] = fpDot(&mds_flat[i * t], state.data(), t);
    state = out;
}

void
Poseidon::fullRound(PoseidonState &state, uint32_t round) const
{
    for (uint32_t i = 0; i < t; ++i) {
        state[i] += arc[round][i];
        state[i] = sbox(state[i]);
    }
    denseMdsApply(state);
}

void
Poseidon::permuteNaive(PoseidonState &state) const
{
    for (uint32_t r = 0; r < half; ++r)
        fullRound(state, r);
    for (uint32_t r = 0; r < rp; ++r) {
        // ARC on all lanes, S-box only on lane 0, dense MDS.
        for (uint32_t i = 0; i < t; ++i)
            state[i] += arc[half + r][i];
        state[0] = sbox(state[0]);
        denseMdsApply(state);
    }
    for (uint32_t r = 0; r < half; ++r)
        fullRound(state, half + rp + r);
}

void
Poseidon::deriveOptimizedForm()
{
    // Notation: the partial-round chain is x_{r+1} = M * S(x_r + c_r)
    // with c_r = arc[half + r] and S the lane-0 S-box. We derive an
    // equivalent chain
    //     y_0     = D_0 * (x_0 + beta)                (PrePartialRound)
    //     y_{r+1} = A_r * (S(y_r) + rho_r * e0)       (partial rounds)
    // with y_R = x_R exactly, where
    //     D_r = diag(1, Mhat^(R-r)),
    //     A_r = [[M00, Mv^T * Mhat^-(R-r)], [Mhat^(R-r-1) * Mw, I]],
    // and the constants rho_r / beta obtained by a backward pass.
    // Lane 0 of the affine link m_r must equal c_r[0] so both chains
    // feed the S-box the same value.

    // Split M = [[M00, Mv^T], [Mw, Mhat]].
    const size_t n = t - 1;
    FpMatrix mhat(n, n);
    std::vector<Fp> mv(n), mw(n);
    for (size_t i = 0; i < n; ++i) {
        mv[i] = mds.at(0, i + 1);
        mw[i] = mds.at(i + 1, 0);
        for (size_t j = 0; j < n; ++j)
            mhat.at(i, j) = mds.at(i + 1, j + 1);
    }
    const Fp m00 = mds.at(0, 0);

    // Powers of Mhat: lambda[k] = Mhat^k for k = 0..R.
    std::vector<FpMatrix> lambda(rp + 1);
    lambda[0] = FpMatrix::identity(n);
    for (uint32_t k = 1; k <= rp; ++k)
        lambda[k] = lambda[k - 1].mul(mhat);

    auto mhat_inv_opt = mhat.inverse();
    unizk_assert(mhat_inv_opt.has_value(),
                 "MDS trailing submatrix must be invertible");
    std::vector<FpMatrix> lambda_inv(rp + 1);
    lambda_inv[0] = FpMatrix::identity(n);
    for (uint32_t k = 1; k <= rp; ++k)
        lambda_inv[k] = lambda_inv[k - 1].mul(*mhat_inv_opt);

    // Sparse layers A_r. Lambda_r = lambda[R - r].
    std::vector<FpMatrix> a_full(rp); // dense copies for the constant pass
    for (uint32_t r = 0; r < rp; ++r) {
        SparseMdsLayer &layer = sparse_layers[r];
        layer.m00 = m00;
        // v^T = Mv^T * Lambda_r^-1
        const FpMatrix &linv = lambda_inv[rp - r];
        for (size_t j = 0; j < n; ++j) {
            Fp acc;
            for (size_t k = 0; k < n; ++k)
                acc += mv[k] * linv.at(k, j);
            layer.v[j] = acc;
        }
        // w = Lambda_{r+1} * Mw  with Lambda_{r+1} = lambda[R - r - 1].
        const FpMatrix &lnext = lambda[rp - r - 1];
        for (size_t i = 0; i < n; ++i) {
            Fp acc;
            for (size_t k = 0; k < n; ++k)
                acc += lnext.at(i, k) * mw[k];
            layer.w[i] = acc;
        }
        // Dense form for the backward constant pass.
        FpMatrix a(t, t);
        a.at(0, 0) = layer.m00;
        for (size_t j = 0; j < n; ++j) {
            a.at(0, j + 1) = layer.v[j];
            a.at(j + 1, 0) = layer.w[j];
            a.at(j + 1, j + 1) = Fp::one();
        }
        a_full[r] = std::move(a);
    }

    // Backward constant pass: m_R = 0; for r = R-1 .. 0:
    //   q = A_r^-1 * m_{r+1}; rho_r = q[0];
    //   mhat_r = qhat + Lambda_r * chat_r;  m_r[0] = c_r[0].
    std::vector<Fp> m_next(t, Fp::zero());
    for (uint32_t r = rp; r-- > 0;) {
        const auto a_inv = a_full[r].inverse();
        unizk_assert(a_inv.has_value(), "sparse layer must be invertible");
        const std::vector<Fp> q = a_inv->mulVector(m_next);
        partial_constants[r] = q[0];

        const auto &c_r = arc[half + r];
        std::vector<Fp> chat(n);
        for (size_t i = 0; i < n; ++i)
            chat[i] = c_r[i + 1];
        const FpMatrix &lam_r = lambda[rp - r];
        const std::vector<Fp> lam_chat = lam_r.mulVector(chat);

        std::vector<Fp> m_r(t);
        m_r[0] = c_r[0];
        for (size_t i = 0; i < n; ++i)
            m_r[i + 1] = q[i + 1] + lam_chat[i];
        m_next = std::move(m_r);
    }

    // Pre layer: y_0 = D_0 (x_0 + D_0^-1 m_0).
    pre_matrix = FpMatrix(t, t);
    pre_matrix.at(0, 0) = Fp::one();
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            pre_matrix.at(i + 1, j + 1) = lambda[rp].at(i, j);

    FpMatrix d0_inv(t, t);
    d0_inv.at(0, 0) = Fp::one();
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            d0_inv.at(i + 1, j + 1) = lambda_inv[rp].at(i, j);
    const std::vector<Fp> beta = d0_inv.mulVector(m_next);
    for (uint32_t i = 0; i < t; ++i)
        pre_constants[i] = beta[i];

    for (uint32_t i = 0; i < t; ++i)
        for (uint32_t j = 0; j < t; ++j)
            pre_flat[i * t + j] = pre_matrix.at(i, j);
}

void
Poseidon::permute(PoseidonState &state) const
{
    for (uint32_t r = 0; r < half; ++r)
        fullRound(state, r);

    // PrePartialRound: constant add then dense PreMDSMatrix.
    for (uint32_t i = 0; i < t; ++i)
        state[i] += pre_constants[i];
    {
        PoseidonState out;
        for (uint32_t i = 0; i < t; ++i)
            out[i] = fpDot(&pre_flat[i * t], state.data(), t);
        state = out;
    }

    // Partial rounds: sbox lane 0, scalar constant, sparse layer.
    for (uint32_t r = 0; r < rp; ++r) {
        state[0] = sbox(state[0]);
        state[0] += partial_constants[r];

        const SparseMdsLayer &layer = sparse_layers[r];
        const Fp s0 = state[0];
        const Fp new0 =
            layer.m00 * s0 + fpDot(layer.v.data(), &state[1], t - 1);
        for (uint32_t i = 0; i + 1 < t; ++i)
            state[i + 1] += layer.w[i] * s0;
        state[0] = new0;
    }

    for (uint32_t r = 0; r < half; ++r)
        fullRound(state, half + rp + r);
}

void
Poseidon::permuteBatch(PoseidonState *states, size_t n) const
{
    size_t i = 0;
    if (n >= kSimdBatchWidth) {
        const SimdLevel level = activeSimdLevel();
        for (; i + kSimdBatchWidth <= n; i += kSimdBatchWidth) {
#if defined(UNIZK_HAVE_AVX2)
            if (level == SimdLevel::Avx2) {
                poseidonPermuteBatch4Avx2(*this, states + i);
                continue;
            }
#else
            (void)level;
#endif
            poseidonPermuteBatch4Scalar(*this, states + i);
        }
    }
    // Ragged tail: fewer than kSimdBatchWidth states left.
    for (; i < n; ++i)
        permute(states[i]);
}

} // namespace unizk
