#include "hash/goldilocks_simd.h"

#include <atomic>

#include "common/env.h"
#include "common/logging.h"
#include "hash/poseidon_batch.h"

namespace unizk {

namespace {

/**
 * Dispatched level, encoded as int(SimdLevel); -1 = not yet selected.
 * Selection is idempotent (it depends only on the build, CPUID, and
 * the startup environment), so concurrent first calls racing to store
 * the same value are benign; the atomic keeps the race data-race-free
 * for TSAN.
 */
std::atomic<int> g_simd_level{-1};

/** True when the CPU can execute the AVX2 backend. */
bool
avx2CpuSupported()
{
#if defined(UNIZK_HAVE_AVX2) && defined(__GNUC__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

SimdLevel
bestAvailableLevel()
{
    return simdLevelAvailable(SimdLevel::Avx2) ? SimdLevel::Avx2
                                               : SimdLevel::Scalar;
}

SimdLevel
selectSimdLevel()
{
    // Index into the allowed list below.
    enum { kAuto = 0, kAvx2 = 1, kScalar = 2 };
    const auto choice =
        envChoice("UNIZK_SIMD", {"auto", "avx2", "scalar"});
    if (!choice.has_value() || *choice == kAuto)
        return bestAvailableLevel();
    if (*choice == kScalar)
        return SimdLevel::Scalar;
    if (!simdLevelAvailable(SimdLevel::Avx2)) {
        warn("UNIZK_SIMD=avx2 requested but AVX2 is ",
             avx2CpuSupported() ? "not compiled in"
                                : "unavailable on this CPU",
             "; falling back to scalar");
        return SimdLevel::Scalar;
    }
    return SimdLevel::Avx2;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Scalar:
        break;
    }
    return "scalar";
}

bool
simdLevelAvailable(SimdLevel level)
{
    if (level == SimdLevel::Scalar)
        return true;
    return avx2CpuSupported();
}

SimdLevel
activeSimdLevel()
{
    int level = g_simd_level.load(std::memory_order_acquire);
    if (level < 0) {
        level = static_cast<int>(selectSimdLevel());
        g_simd_level.store(level, std::memory_order_release);
    }
    return static_cast<SimdLevel>(level);
}

bool
setSimdLevel(SimdLevel level)
{
    if (!simdLevelAvailable(level))
        return false;
    g_simd_level.store(static_cast<int>(level),
                       std::memory_order_release);
    return true;
}

void
poseidonPermuteBatch4Scalar(const Poseidon &p, PoseidonState *states)
{
    poseidonPermuteBatch4Impl<FpVec4Scalar>(p, states);
}

} // namespace unizk
