/**
 * @file
 * The batched Poseidon permutation, templated over a 4-wide Goldilocks
 * lane type (FpVec4Scalar or the AVX2 backend). Vectorization is
 * *vertical*: lane k of every vector belongs to sponge state k, so all
 * four states advance through identical operations in lockstep and no
 * horizontal (cross-lane) instruction is ever needed -- full rounds,
 * the dense PreMDSMatrix, and the sparse partial-round chain all
 * become element-wise vector arithmetic against broadcast constants.
 *
 * This mirrors Poseidon::permute (the optimized Algorithm-1 form) step
 * for step; since every lane operation returns the canonical
 * representative, the result is bit-identical to four scalar permute()
 * calls, which the dispatch-equivalence suite pins against
 * permuteNaive.
 *
 * No intrinsics appear here (the raw-simd-intrinsic lint rule scopes
 * them to goldilocks_simd*); each backend TU instantiates the template
 * with its own lane type under its own codegen flags.
 */

#ifndef UNIZK_HASH_POSEIDON_BATCH_H
#define UNIZK_HASH_POSEIDON_BATCH_H

#include "hash/poseidon.h"

namespace unizk {

template <typename V>
inline void
poseidonPermuteBatch4Impl(const Poseidon &p, PoseidonState *states)
{
    constexpr uint32_t t = PoseidonConfig::width;
    constexpr uint32_t rp = PoseidonConfig::partialRounds;
    constexpr uint32_t half = PoseidonConfig::halfFullRounds;

    const auto &arc = p.roundConstants();
    const Fp *mds = p.mdsFlat();
    const Fp *pre = p.preFlat();

    V st[t];
    for (uint32_t i = 0; i < t; ++i)
        st[i] = V::gather(states, i);

    // x^7, same multiplication chain as Poseidon::sbox.
    const auto sbox = [](const V &x) {
        const V x2 = V::mul(x, x);
        const V x3 = V::mul(x2, x);
        const V x6 = V::mul(x3, x3);
        return V::mul(x6, x);
    };

    // Dense t x t matrix against broadcast row constants. Unlike the
    // scalar fpDot path there is no lazy-reduction trick: every product
    // is reduced to canonical form, which keeps the backends exactly
    // interchangeable.
    const auto dense = [&st](const Fp *m) {
        V out[t];
        for (uint32_t i = 0; i < t; ++i) {
            V acc = V::mul(V::broadcast(m[i * t]), st[0]);
            for (uint32_t j = 1; j < t; ++j)
                acc = V::add(acc,
                             V::mul(V::broadcast(m[i * t + j]), st[j]));
            out[i] = acc;
        }
        for (uint32_t i = 0; i < t; ++i)
            st[i] = out[i];
    };

    const auto fullRound = [&](uint32_t round) {
        for (uint32_t i = 0; i < t; ++i)
            st[i] = sbox(V::add(st[i], V::broadcast(arc[round][i])));
        dense(mds);
    };

    for (uint32_t r = 0; r < half; ++r)
        fullRound(r);

    // PrePartialRound: constant add then dense PreMDSMatrix.
    const PoseidonState &pre_c = p.prePartialConstants();
    for (uint32_t i = 0; i < t; ++i)
        st[i] = V::add(st[i], V::broadcast(pre_c[i]));
    dense(pre);

    // Partial rounds: sbox lane 0, scalar constant, sparse layer.
    const auto &partial_c = p.partialConstants();
    const auto &layers = p.sparseLayers();
    for (uint32_t r = 0; r < rp; ++r) {
        V s0 = sbox(st[0]);
        s0 = V::add(s0, V::broadcast(partial_c[r]));

        const SparseMdsLayer &layer = layers[r];
        V new0 = V::mul(V::broadcast(layer.m00), s0);
        for (uint32_t j = 0; j + 1 < t; ++j)
            new0 = V::add(
                new0, V::mul(V::broadcast(layer.v[j]), st[j + 1]));
        for (uint32_t i = 0; i + 1 < t; ++i)
            st[i + 1] = V::add(
                st[i + 1], V::mul(V::broadcast(layer.w[i]), s0));
        st[0] = new0;
    }

    for (uint32_t r = 0; r < half; ++r)
        fullRound(half + rp + r);

    for (uint32_t i = 0; i < t; ++i)
        st[i].scatter(states, i);
}

} // namespace unizk

#endif // UNIZK_HASH_POSEIDON_BATCH_H
