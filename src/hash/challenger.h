/**
 * @file
 * Fiat-Shamir transcript ("challenger") built on a Poseidon duplex
 * sponge, as used in Plonky2. The prover and verifier each run an
 * identical challenger; every message the prover would send in the
 * interactive protocol is observed into the sponge, and verifier
 * randomness is squeezed out. This is the "Get Challenges" node of the
 * computation graph in Figure 7 of the paper and accounts for the
 * "Other Hash" column of Table 1.
 */

#ifndef UNIZK_HASH_CHALLENGER_H
#define UNIZK_HASH_CHALLENGER_H

#include <cstdint>
#include <vector>

#include "field/extension.h"
#include "hash/hashing.h"
#include "hash/poseidon.h"

namespace unizk {

/** Duplex-sponge transcript. */
class Challenger
{
  public:
    Challenger();

    /** Absorb one field element. */
    void observe(Fp x);

    /** Absorb a digest (its 4 elements). */
    void observe(const HashOut &h);

    /** Absorb a batch of elements. */
    void observe(const std::vector<Fp> &xs);

    /** Squeeze one base-field challenge. */
    Fp challenge();

    /** Squeeze one extension-field challenge. */
    Fp2 challengeExt();

    /** Squeeze @p n base-field challenges. */
    std::vector<Fp> challenges(size_t n);

    /**
     * Total Poseidon permutations performed so far; lets the CPU
     * baseline and the trace recorder attribute Fiat-Shamir hashing
     * cost (Table 1's "Other Hash").
     */
    size_t permutationCount() const { return permutation_count; }

  private:
    void duplex();

    PoseidonState state{};
    std::vector<Fp> input_buffer;
    std::vector<Fp> output_buffer;
    size_t permutation_count = 0;
};

} // namespace unizk

#endif // UNIZK_HASH_CHALLENGER_H
