#include "hash/challenger.h"

#include "obs/obs.h"

namespace unizk {

Challenger::Challenger() = default;

void
Challenger::observe(Fp x)
{
    // New observations invalidate any cached output.
    output_buffer.clear();
    input_buffer.push_back(x);
    if (input_buffer.size() == PoseidonConfig::rate)
        duplex();
}

void
Challenger::observe(const HashOut &h)
{
    for (const Fp &x : h.elems)
        observe(x);
}

void
Challenger::observe(const std::vector<Fp> &xs)
{
    for (const Fp &x : xs)
        observe(x);
}

void
Challenger::duplex()
{
    // Overwrite-mode duplexing: splice pending inputs into the rate
    // portion, permute, and expose the rate portion as output.
    for (size_t i = 0; i < input_buffer.size(); ++i)
        state[i] = input_buffer[i];
    input_buffer.clear();
    Poseidon::instance().permute(state);
    ++permutation_count;
    UNIZK_COUNTER_ADD("challenger.permutations", 1);
    output_buffer.assign(state.begin(),
                         state.begin() + PoseidonConfig::rate);
}

Fp
Challenger::challenge()
{
    if (!input_buffer.empty() || output_buffer.empty())
        duplex();
    const Fp out = output_buffer.back();
    output_buffer.pop_back();
    return out;
}

Fp2
Challenger::challengeExt()
{
    const Fp a = challenge();
    const Fp b = challenge();
    return Fp2(a, b);
}

std::vector<Fp>
Challenger::challenges(size_t n)
{
    std::vector<Fp> out(n);
    for (auto &x : out)
        x = challenge();
    return out;
}

} // namespace unizk
