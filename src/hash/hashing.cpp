#include "hash/hashing.h"

#include "common/bits.h"

namespace unizk {

HashOut
hashNoPad(const std::vector<Fp> &inputs)
{
    const Poseidon &poseidon = Poseidon::instance();
    PoseidonState state{};
    size_t pos = 0;
    while (pos < inputs.size()) {
        const size_t chunk =
            std::min<size_t>(PoseidonConfig::rate, inputs.size() - pos);
        // Overwrite-mode absorption, as in Plonky2.
        for (size_t i = 0; i < chunk; ++i)
            state[i] = inputs[pos + i];
        poseidon.permute(state);
        pos += chunk;
    }
    if (inputs.empty())
        poseidon.permute(state);

    HashOut out;
    for (size_t i = 0; i < 4; ++i)
        out.elems[i] = state[i];
    return out;
}

HashOut
hashTwoToOne(const HashOut &left, const HashOut &right)
{
    const Poseidon &poseidon = Poseidon::instance();
    PoseidonState state{};
    for (size_t i = 0; i < 4; ++i) {
        state[i] = left.elems[i];
        state[4 + i] = right.elems[i];
    }
    // Lanes 8..11 stay zero: the 4-element zero padding from the paper.
    poseidon.permute(state);

    HashOut out;
    for (size_t i = 0; i < 4; ++i)
        out.elems[i] = state[i];
    return out;
}

HashOut
hashOrNoop(const std::vector<Fp> &inputs)
{
    if (inputs.size() <= 4) {
        HashOut out;
        for (size_t i = 0; i < inputs.size(); ++i)
            out.elems[i] = inputs[i];
        return out;
    }
    return hashNoPad(inputs);
}

size_t
permutationCountForLength(size_t len)
{
    if (len == 0)
        return 1;
    return ceilDiv(len, PoseidonConfig::rate);
}

} // namespace unizk
