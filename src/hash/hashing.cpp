#include "hash/hashing.h"

#include <algorithm>

#include "common/bits.h"
#include "hash/goldilocks_simd.h"

namespace unizk {

namespace {

/** Copy the digest (capacity lanes 0..3) out of each batched state. */
void
extractDigests(const PoseidonState *states, size_t n, HashOut *out)
{
    for (size_t k = 0; k < n; ++k)
        for (size_t i = 0; i < 4; ++i)
            out[k].elems[i] = states[k][i];
}

} // namespace

HashOut
hashNoPad(const std::vector<Fp> &inputs)
{
    const Poseidon &poseidon = Poseidon::instance();
    PoseidonState state{};
    size_t pos = 0;
    while (pos < inputs.size()) {
        const size_t chunk =
            std::min<size_t>(PoseidonConfig::rate, inputs.size() - pos);
        // Overwrite-mode absorption, as in Plonky2.
        for (size_t i = 0; i < chunk; ++i)
            state[i] = inputs[pos + i];
        poseidon.permute(state);
        pos += chunk;
    }
    if (inputs.empty())
        poseidon.permute(state);

    HashOut out;
    for (size_t i = 0; i < 4; ++i)
        out.elems[i] = state[i];
    return out;
}

void
hashNoPadBatch(const std::vector<Fp> *inputs, size_t n, HashOut *out)
{
    const Poseidon &poseidon = Poseidon::instance();
    size_t i = 0;
    while (i < n) {
        // The absorption schedule (how many chunks, chunk sizes) is a
        // function of the input length, so only equal-length inputs can
        // share one batched permutation sequence.
        size_t run = 1;
        while (run < kSimdBatchWidth && i + run < n &&
               inputs[i + run].size() == inputs[i].size())
            ++run;
        if (run < kSimdBatchWidth) {
            for (size_t k = 0; k < run; ++k)
                out[i + k] = hashNoPad(inputs[i + k]);
            i += run;
            continue;
        }

        PoseidonState states[kSimdBatchWidth] = {};
        const size_t len = inputs[i].size();
        size_t pos = 0;
        while (pos < len) {
            const size_t chunk =
                std::min<size_t>(PoseidonConfig::rate, len - pos);
            for (size_t k = 0; k < kSimdBatchWidth; ++k)
                for (size_t j = 0; j < chunk; ++j)
                    states[k][j] = inputs[i + k][pos + j];
            poseidon.permuteBatch(states, kSimdBatchWidth);
            pos += chunk;
        }
        if (len == 0)
            poseidon.permuteBatch(states, kSimdBatchWidth);
        extractDigests(states, kSimdBatchWidth, &out[i]);
        i += kSimdBatchWidth;
    }
}

HashOut
hashTwoToOne(const HashOut &left, const HashOut &right)
{
    const Poseidon &poseidon = Poseidon::instance();
    PoseidonState state{};
    for (size_t i = 0; i < 4; ++i) {
        state[i] = left.elems[i];
        state[4 + i] = right.elems[i];
    }
    // Lanes 8..11 stay zero: the 4-element zero padding from the paper.
    poseidon.permute(state);

    HashOut out;
    for (size_t i = 0; i < 4; ++i)
        out.elems[i] = state[i];
    return out;
}

void
hashTwoToOneBatch(const HashOut *children, size_t pair_count,
                  HashOut *out)
{
    const Poseidon &poseidon = Poseidon::instance();
    size_t i = 0;
    for (; i + kSimdBatchWidth <= pair_count; i += kSimdBatchWidth) {
        PoseidonState states[kSimdBatchWidth] = {};
        for (size_t k = 0; k < kSimdBatchWidth; ++k) {
            const HashOut &left = children[2 * (i + k)];
            const HashOut &right = children[2 * (i + k) + 1];
            for (size_t j = 0; j < 4; ++j) {
                states[k][j] = left.elems[j];
                states[k][4 + j] = right.elems[j];
            }
        }
        poseidon.permuteBatch(states, kSimdBatchWidth);
        extractDigests(states, kSimdBatchWidth, &out[i]);
    }
    for (; i < pair_count; ++i)
        out[i] = hashTwoToOne(children[2 * i], children[2 * i + 1]);
}

HashOut
hashOrNoop(const std::vector<Fp> &inputs)
{
    // Noop packing covers 1..4 elements only. Length 0 must *hash*:
    // hashOrNoopPermutationCount charges the empty input one
    // permutation (matching hashNoPad), and packing it would make the
    // empty leaf collide with the all-zero length-4 leaf.
    if (!inputs.empty() && inputs.size() <= 4) {
        HashOut out;
        for (size_t i = 0; i < inputs.size(); ++i)
            out.elems[i] = inputs[i];
        return out;
    }
    return hashNoPad(inputs);
}

void
hashOrNoopBatch(const std::vector<Fp> *leaves, size_t n, HashOut *out)
{
    size_t i = 0;
    while (i < n) {
        const size_t len = leaves[i].size();
        if (len >= 1 && len <= 4) {
            // Noop path: no permutation, nothing to batch.
            out[i] = hashOrNoop(leaves[i]);
            ++i;
            continue;
        }
        // Hashing path: hand the maximal run of hashing leaves to
        // hashNoPadBatch, which groups equal lengths internally.
        size_t run = 1;
        while (i + run < n) {
            const size_t l = leaves[i + run].size();
            if (l >= 1 && l <= 4)
                break;
            ++run;
        }
        hashNoPadBatch(&leaves[i], run, &out[i]);
        i += run;
    }
}

size_t
permutationCountForLength(size_t len)
{
    if (len == 0)
        return 1;
    return ceilDiv(len, PoseidonConfig::rate);
}

size_t
hashOrNoopPermutationCount(size_t len)
{
    if (len >= 1 && len <= 4)
        return 0;
    return permutationCountForLength(len);
}

} // namespace unizk
