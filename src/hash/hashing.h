/**
 * @file
 * Digest type and sponge-mode hashing on top of the Poseidon
 * permutation, mirroring Plonky2's usage:
 *  - 4-element (256-bit) digests,
 *  - rate-8 overwrite-mode absorption for variable-length inputs
 *    (the "absorb method" the paper describes for long Merkle leaves),
 *  - a dedicated two-to-one compression for interior Merkle nodes:
 *    4 elements from each child plus 4 zero padding elements.
 */

#ifndef UNIZK_HASH_HASHING_H
#define UNIZK_HASH_HASHING_H

#include <array>
#include <cstdint>
#include <vector>

#include "hash/poseidon.h"

namespace unizk {

/** A 4-element Poseidon digest. */
struct HashOut
{
    std::array<Fp, 4> elems{};

    friend bool
    operator==(const HashOut &a, const HashOut &b)
    {
        return a.elems == b.elems;
    }

    friend bool
    operator!=(const HashOut &a, const HashOut &b)
    {
        return !(a == b);
    }

    /** Size of the digest in bytes (for proof-size accounting). */
    static constexpr size_t byteSize() { return 4 * sizeof(uint64_t); }
};

/**
 * Hash a sequence of field elements with rate-8 overwrite absorption and
 * no padding (lengths are fixed by the protocol context, as in Plonky2's
 * hash_no_pad).
 */
HashOut hashNoPad(const std::vector<Fp> &inputs);

/** Compress two digests into one (interior Merkle node). */
HashOut hashTwoToOne(const HashOut &left, const HashOut &right);

/**
 * Hash if the input is longer than a digest, otherwise pack directly
 * (Plonky2's hash_or_noop used for short Merkle leaves).
 */
HashOut hashOrNoop(const std::vector<Fp> &inputs);

/**
 * Number of Poseidon permutations hashNoPad performs on an input of
 * @p len elements. Exposed so the trace layer and cost models count
 * hashes identically to the implementation.
 */
size_t permutationCountForLength(size_t len);

} // namespace unizk

#endif // UNIZK_HASH_HASHING_H
