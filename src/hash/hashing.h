/**
 * @file
 * Digest type and sponge-mode hashing on top of the Poseidon
 * permutation, mirroring Plonky2's usage:
 *  - 4-element (256-bit) digests,
 *  - rate-8 overwrite-mode absorption for variable-length inputs
 *    (the "absorb method" the paper describes for long Merkle leaves),
 *  - a dedicated two-to-one compression for interior Merkle nodes:
 *    4 elements from each child plus 4 zero padding elements.
 */

#ifndef UNIZK_HASH_HASHING_H
#define UNIZK_HASH_HASHING_H

#include <array>
#include <cstdint>
#include <vector>

#include "hash/poseidon.h"

namespace unizk {

/** A 4-element Poseidon digest. */
struct HashOut
{
    std::array<Fp, 4> elems{};

    friend bool
    operator==(const HashOut &a, const HashOut &b)
    {
        return a.elems == b.elems;
    }

    friend bool
    operator!=(const HashOut &a, const HashOut &b)
    {
        return !(a == b);
    }

    /** Size of the digest in bytes (for proof-size accounting). */
    static constexpr size_t byteSize() { return 4 * sizeof(uint64_t); }
};

/**
 * Hash a sequence of field elements with rate-8 overwrite absorption and
 * no padding (lengths are fixed by the protocol context, as in Plonky2's
 * hash_no_pad).
 */
HashOut hashNoPad(const std::vector<Fp> &inputs);

/**
 * Hash @p n inputs into @p out, feeding runs of kSimdBatchWidth
 * equal-length inputs through Poseidon::permuteBatch (shared
 * absorption schedule, lane-parallel permutations). Digests are
 * byte-identical to n hashNoPad calls at every SIMD dispatch level;
 * mixed-length runs and short tails fall back to the scalar path.
 */
void hashNoPadBatch(const std::vector<Fp> *inputs, size_t n,
                    HashOut *out);

/** Compress two digests into one (interior Merkle node). */
HashOut hashTwoToOne(const HashOut &left, const HashOut &right);

/**
 * Compress @p pair_count digest pairs: out[i] = H(children[2i],
 * children[2i+1]), batching kSimdBatchWidth sponges per permutation.
 * This is the interior-Merkle-level entry point; results are
 * byte-identical to pair_count hashTwoToOne calls.
 */
void hashTwoToOneBatch(const HashOut *children, size_t pair_count,
                       HashOut *out);

/**
 * Hash if the input is longer than a digest, otherwise pack directly
 * (Plonky2's hash_or_noop used for short Merkle leaves). The noop path
 * covers lengths 1..4 only: an *empty* input falls through to
 * hashNoPad (one permutation), both so the accounting in
 * hashOrNoopPermutationCount matches the executed permutations and so
 * an empty leaf cannot collide with the all-zero length-4 leaf.
 */
HashOut hashOrNoop(const std::vector<Fp> &inputs);

/**
 * Hash @p n leaves into @p out as hashOrNoop would, batching runs of
 * hashing-path leaves through hashNoPadBatch; noop-path leaves (length
 * 1..4) are packed directly. The Merkle leaf-level entry point.
 */
void hashOrNoopBatch(const std::vector<Fp> *leaves, size_t n,
                     HashOut *out);

/**
 * Number of Poseidon permutations hashNoPad performs on an input of
 * @p len elements. Exposed so the trace layer and cost models count
 * hashes identically to the implementation.
 */
size_t permutationCountForLength(size_t len);

/**
 * Number of Poseidon permutations hashOrNoop performs on an input of
 * @p len elements: 0 on the noop path (1 <= len <= 4), otherwise
 * exactly permutationCountForLength(len). MerkleTree::permutationCount
 * delegates here so simulator kernel-op accounting can never drift
 * from the executed hash count again.
 */
size_t hashOrNoopPermutationCount(size_t len);

} // namespace unizk

#endif // UNIZK_HASH_HASHING_H
