/**
 * @file
 * AVX2 backend of the Goldilocks lane layer: four 64-bit residues per
 * __m256i, advanced with the same branchless identities as the scalar
 * primitives (Fp::addBranchless / subBranchless / mulBranchless):
 *
 *   2^64 === 2^32 - 1 (mod p),   2^96 === -1 (mod p)
 *
 * AVX2 has no 64x64->128 multiply and no unsigned 64-bit compare, so
 *  - products are assembled from four 32x32 vpmuludq partial products
 *    (the textbook limb decomposition; every intermediate fits 64 bits),
 *  - unsigned compares bias both operands by 2^63 and use the signed
 *    vpcmpgtq (cmpGtU64 below),
 *  - the mid * (2^32 - 1) term of the reduction is (mid << 32) - mid.
 *
 * Every operation returns the canonical representative, so this
 * backend is bit-interchangeable with FpVec4Scalar; the equivalence
 * suite in tests/test_poseidon.cpp pins that on every AVX2 host.
 *
 * This TU is the only one compiled with -mavx2 (per-file flag in
 * src/hash/CMakeLists.txt) and, with goldilocks_simd.h/.cpp, the only
 * place raw intrinsics are allowed (raw-simd-intrinsic lint rule). It
 * deliberately touches nothing but intrinsics, Fp accessors, and the
 * batch template, so no shared inline function gets AVX2 codegen that
 * a non-AVX2 host could pick up at link time.
 */

#include <immintrin.h>

#include "hash/goldilocks_simd.h"
#include "hash/poseidon_batch.h"

namespace unizk {

namespace {

constexpr long long kModulusLL =
    static_cast<long long>(Fp::modulus);
/** 2^32 - 1: the wraparound adjustment constant. */
constexpr long long kEpsilonLL = 0xFFFFFFFFLL;
/** Sign-bit bias turning unsigned order into signed order. */
constexpr long long kBiasLL =
    static_cast<long long>(0x8000000000000000ULL);

inline __m256i
modulusVec()
{
    return _mm256_set1_epi64x(kModulusLL);
}

inline __m256i
epsilonVec()
{
    return _mm256_set1_epi64x(kEpsilonLL);
}

/** Lane mask: 0xFF.. where unsigned a > unsigned b. */
inline __m256i
cmpGtU64(__m256i a, __m256i b)
{
    const __m256i bias = _mm256_set1_epi64x(kBiasLL);
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                              _mm256_xor_si256(b, bias));
}

/** Canonicalize a value in [0, 2p): subtract p where >= p. */
inline __m256i
canonicalize(__m256i x)
{
    const __m256i mod = modulusVec();
    // x >= p  <=>  x > p - 1.
    const __m256i ge =
        cmpGtU64(x, _mm256_sub_epi64(mod, _mm256_set1_epi64x(1)));
    return _mm256_sub_epi64(x, _mm256_and_si256(mod, ge));
}

/** Canonical a + b, mirroring Fp::addBranchless. */
inline __m256i
addU64Mod(__m256i a, __m256i b)
{
    __m256i s = _mm256_add_epi64(a, b);
    // Wraparound past 2^64: s < a. The adjustment (+= 2^32 - 1) lands
    // back in canonical range, so the final subtract sees no carry.
    const __m256i wrapped = cmpGtU64(a, s);
    s = _mm256_add_epi64(s, _mm256_and_si256(epsilonVec(), wrapped));
    return canonicalize(s);
}

/** Canonical a - b, mirroring Fp::subBranchless. */
inline __m256i
subU64Mod(__m256i a, __m256i b)
{
    __m256i d = _mm256_sub_epi64(a, b);
    const __m256i borrowed = cmpGtU64(b, a);
    d = _mm256_add_epi64(d, _mm256_and_si256(modulusVec(), borrowed));
    return d;
}

/** Canonical a * b, mirroring Fp::mulBranchless. */
inline __m256i
mulU64Mod(__m256i a, __m256i b)
{
    const __m256i eps = epsilonVec();

    // 64x64 -> 128 from 32x32 partial products; vpmuludq reads the low
    // 32 bits of each 64-bit lane.
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i ll = _mm256_mul_epu32(a, b);
    const __m256i lh = _mm256_mul_epu32(a, b_hi);
    const __m256i hl = _mm256_mul_epu32(a_hi, b);
    const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);

    // t = hl + (ll >> 32) and u = lh + lo32(t) both fit in 64 bits:
    // (2^32 - 1)^2 + (2^32 - 1) < 2^64.
    const __m256i t = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
    const __m256i u =
        _mm256_add_epi64(lh, _mm256_and_si256(t, eps));
    const __m256i lo = _mm256_or_si256(_mm256_slli_epi64(u, 32),
                                       _mm256_and_si256(ll, eps));
    const __m256i hi =
        _mm256_add_epi64(_mm256_add_epi64(hh, _mm256_srli_epi64(t, 32)),
                         _mm256_srli_epi64(u, 32));

    // reduce128: x = lo + mid*2^64 + top*2^96
    //              === lo + mid*(2^32 - 1) - top (mod p).
    const __m256i mid = _mm256_and_si256(hi, eps);
    const __m256i top = _mm256_srli_epi64(hi, 32);

    __m256i t0 = _mm256_sub_epi64(lo, top);
    const __m256i borrowed = cmpGtU64(top, lo);
    t0 = _mm256_sub_epi64(t0, _mm256_and_si256(eps, borrowed));

    // mid * (2^32 - 1) = (mid << 32) - mid, exact in 64 bits.
    const __m256i t1 =
        _mm256_sub_epi64(_mm256_slli_epi64(mid, 32), mid);

    __m256i res = _mm256_add_epi64(t0, t1);
    const __m256i carried = cmpGtU64(t1, res);
    res = _mm256_add_epi64(res, _mm256_and_si256(eps, carried));
    return canonicalize(res);
}

/** Four Goldilocks lanes in one AVX2 register; see FpVec4Scalar. */
struct FpVec4Avx2
{
    __m256i v;

    static FpVec4Avx2
    gather(const PoseidonState *states, size_t i)
    {
        // set_epi64x lists lanes high-to-low.
        return {_mm256_set_epi64x(
            static_cast<long long>(states[3][i].value()),
            static_cast<long long>(states[2][i].value()),
            static_cast<long long>(states[1][i].value()),
            static_cast<long long>(states[0][i].value()))};
    }

    void
    scatter(PoseidonState *states, size_t i) const
    {
        alignas(32) uint64_t out[kSimdBatchWidth];
        _mm256_store_si256(reinterpret_cast<__m256i *>(out), v);
        for (size_t k = 0; k < kSimdBatchWidth; ++k)
            states[k][i] = Fp(out[k]);
    }

    static FpVec4Avx2
    broadcast(Fp x)
    {
        return {_mm256_set1_epi64x(static_cast<long long>(x.value()))};
    }

    static FpVec4Avx2
    add(const FpVec4Avx2 &a, const FpVec4Avx2 &b)
    {
        return {addU64Mod(a.v, b.v)};
    }

    static FpVec4Avx2
    sub(const FpVec4Avx2 &a, const FpVec4Avx2 &b)
    {
        return {subU64Mod(a.v, b.v)};
    }

    static FpVec4Avx2
    mul(const FpVec4Avx2 &a, const FpVec4Avx2 &b)
    {
        return {mulU64Mod(a.v, b.v)};
    }
};

} // namespace

void
poseidonPermuteBatch4Avx2(const Poseidon &p, PoseidonState *states)
{
    poseidonPermuteBatch4Impl<FpVec4Avx2>(p, states);
}

} // namespace unizk
