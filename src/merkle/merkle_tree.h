/**
 * @file
 * Poseidon Merkle trees with a configurable cap, as used by Plonky2's
 * FRI commitments and described in Section 5.3 of the paper.
 *
 * Leaves are vectors of field elements (one column-slice of all
 * committed polynomials at a given evaluation point); leaf values are
 * absorbed with the rate-8 sponge, interior nodes use the two-to-one
 * compression (4 elements per child + 4 zero pad). Instead of a single
 * root, the top `2^cap_height` nodes (the "cap") form the commitment,
 * shortening authentication paths.
 *
 * Node storage follows level order -- the layout the paper points out
 * gives long sequential memory accesses during construction.
 */

#ifndef UNIZK_MERKLE_MERKLE_TREE_H
#define UNIZK_MERKLE_MERKLE_TREE_H

#include <cstdint>
#include <vector>

#include "hash/hashing.h"

namespace unizk {

/** Authentication path from one leaf up to the cap. */
struct MerkleProof
{
    std::vector<HashOut> siblings;

    size_t
    byteSize() const
    {
        return siblings.size() * HashOut::byteSize();
    }
};

/** A Merkle cap: the digests at height cap_height from the root. */
using MerkleCap = std::vector<HashOut>;

class MerkleTree
{
  public:
    /**
     * Build a tree over @p leaves (count must be a power of two and at
     * least 2^cap_height).
     */
    MerkleTree(std::vector<std::vector<Fp>> leaves, uint32_t cap_height);

    size_t leafCount() const { return leaves_.size(); }
    uint32_t capHeight() const { return cap_height_; }

    /** The commitment: 2^cap_height digests. */
    const MerkleCap &cap() const { return cap_; }

    /** Leaf data (needed when answering queries). */
    const std::vector<Fp> &leaf(size_t index) const;

    /** Authentication path for @p leaf_index. */
    MerkleProof prove(size_t leaf_index) const;

    /**
     * Verify @p proof against @p cap for the given leaf data and index.
     * @param height log2 of the committed tree's leaf count; the
     *        verifier knows it from protocol context (e.g. the FRI
     *        domain size). Proofs whose length differs from
     *        height - cap_height are rejected: accepting shorter paths
     *        would let an interior node masquerade as a leaf.
     */
    static bool verify(const std::vector<Fp> &leaf_data, size_t leaf_index,
                       const MerkleProof &proof, const MerkleCap &cap,
                       uint32_t height);

    /**
     * Total Poseidon permutations a build performs, for cost accounting:
     * leaf absorption plus one per interior node below the cap.
     */
    static size_t permutationCount(size_t leaf_count, size_t leaf_len,
                                   uint32_t cap_height);

  private:
    std::vector<std::vector<Fp>> leaves_;
    uint32_t cap_height_;
    // levels_[0] = leaf digests; levels_[k] halves each step, stopping
    // at the cap level.
    std::vector<std::vector<HashOut>> levels_;
    MerkleCap cap_;
};

} // namespace unizk

#endif // UNIZK_MERKLE_MERKLE_TREE_H
