#include "merkle/merkle_tree.h"

#include "common/bits.h"
#include "common/thread_pool.h"
#include "obs/obs.h"

namespace unizk {

MerkleTree::MerkleTree(std::vector<std::vector<Fp>> leaves,
                       uint32_t cap_height)
    : leaves_(std::move(leaves)), cap_height_(cap_height)
{
    unizk_assert(isPowerOfTwo(leaves_.size()),
                 "leaf count must be a power of two");
    const uint32_t height = log2Exact(leaves_.size());
    unizk_assert(cap_height_ <= height, "cap higher than the tree");

    // Leaf digests in parallel: independent Poseidon sponges writing
    // disjoint slots ("Gotta Hash 'Em All": leaf hashing dominates
    // hash-based commitment, so it parallelizes first).
    UNIZK_COUNTER_ADD("merkle.trees", 1);
    UNIZK_COUNTER_ADD("merkle.leaves", leaves_.size());
    levels_.emplace_back();
    levels_[0].resize(leaves_.size());
    {
        UNIZK_SPAN("merkle/leaf-hashes");
        // Each grain hands its whole range to the batch entry point,
        // which feeds kSimdBatchWidth sponges per permutation. Every
        // digest depends only on its own leaf, so grain boundaries
        // (thread count) cannot change a single output byte.
        parallelFor(0, leaves_.size(), /*grain=*/16,
                    [&](size_t lo, size_t hi) {
                        hashOrNoopBatch(&leaves_[lo], hi - lo,
                                        &levels_[0][lo]);
                    });
    }

    // Interior levels: every node of a level depends only on the level
    // below, so each level is one parallel pass.
    UNIZK_SPAN("merkle/interior-levels");
    while (levels_.back().size() > (size_t{1} << cap_height_)) {
        const auto &prev = levels_.back();
        std::vector<HashOut> next(prev.size() / 2);
        parallelFor(0, next.size(), /*grain=*/32,
                    [&](size_t lo, size_t hi) {
                        hashTwoToOneBatch(&prev[2 * lo], hi - lo,
                                          &next[lo]);
                    });
        levels_.push_back(std::move(next));
    }
    cap_ = levels_.back();
}

const std::vector<Fp> &
MerkleTree::leaf(size_t index) const
{
    unizk_assert(index < leaves_.size(), "leaf index out of range");
    return leaves_[index];
}

MerkleProof
MerkleTree::prove(size_t leaf_index) const
{
    unizk_assert(leaf_index < leaves_.size(), "leaf index out of range");
    MerkleProof proof;
    size_t idx = leaf_index;
    // Walk up until the cap level.
    for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
        proof.siblings.push_back(levels_[lvl][idx ^ 1]);
        idx >>= 1;
    }
    return proof;
}

bool
MerkleTree::verify(const std::vector<Fp> &leaf_data, size_t leaf_index,
                   const MerkleProof &proof, const MerkleCap &cap,
                   uint32_t height)
{
    // The path length is protocol-determined, not prover-determined: a
    // truncated siblings vector would let an interior digest presented
    // as "leaf data" stop early and match a legitimate cap entry.
    if (!isPowerOfTwo(cap.size()))
        return false;
    const uint32_t cap_height = log2Exact(cap.size());
    if (cap_height > height)
        return false;
    if (proof.siblings.size() != height - cap_height)
        return false;
    if (leaf_index >> height != 0)
        return false;

    HashOut node = hashOrNoop(leaf_data);
    size_t idx = leaf_index;
    for (const HashOut &sibling : proof.siblings) {
        node = (idx & 1) ? hashTwoToOne(sibling, node)
                         : hashTwoToOne(node, sibling);
        idx >>= 1;
    }
    return cap[idx] == node;
}

size_t
MerkleTree::permutationCount(size_t leaf_count, size_t leaf_len,
                             uint32_t cap_height)
{
    // Delegate to the hashing layer's own accounting so this can never
    // drift from the executed path: hashOrNoop's noop covers lengths
    // 1..4 only, and an empty leaf costs one permutation (hashNoPad
    // permutes once on empty input). The old inline `leaf_len <= 4`
    // check charged 0 for leaf_len == 0.
    const size_t leaf_perms = hashOrNoopPermutationCount(leaf_len);
    const size_t interior = leaf_count - (size_t{1} << cap_height);
    return leaf_perms * leaf_count + interior;
}

} // namespace unizk
