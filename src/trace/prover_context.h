/**
 * @file
 * Shared instrumentation context threaded through the provers: a
 * wall-clock kernel-time breakdown for the CPU baseline (Table 1) and a
 * TraceRecorder for the simulator frontend. Both are optional; null
 * members disable the corresponding instrumentation.
 */

#ifndef UNIZK_TRACE_PROVER_CONTEXT_H
#define UNIZK_TRACE_PROVER_CONTEXT_H

#include "common/stats.h"
#include "trace/kernel_trace.h"

namespace unizk {

struct ProverContext
{
    KernelTimeBreakdown *breakdown = nullptr;
    TraceRecorder *recorder = nullptr;

    void
    record(KernelPayload payload, std::string label) const
    {
        if (recorder)
            recorder->record(std::move(payload), std::move(label));
    }
};

} // namespace unizk

#endif // UNIZK_TRACE_PROVER_CONTEXT_H
