/**
 * @file
 * The kernel-level intermediate representation connecting the protocol
 * implementations to the UniZK simulator.
 *
 * Section 5.5 of the paper describes a compiler whose frontend converts
 * functions of the ZKP library into computation graphs of kernels, and
 * whose backend maps each kernel onto the hardware. Here the "frontend"
 * is a TraceRecorder the protocol code (Plonk/Stark/FRI provers) calls
 * at every kernel invocation; the recorded KernelTrace is the input to
 * the simulator backend in src/sim.
 */

#ifndef UNIZK_TRACE_KERNEL_TRACE_H
#define UNIZK_TRACE_KERNEL_TRACE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace unizk {

/** Memory layout of a batch of polynomials (Section 5.1). */
enum class PolyLayout
{
    PolyMajor,  ///< each polynomial stored contiguously
    IndexMajor, ///< same-position elements of all polynomials contiguous
};

/** A batch of same-size NTTs. */
struct NttKernel
{
    uint32_t logSize = 0;   ///< log2 of each NTT's length
    uint64_t batch = 1;     ///< number of independent NTTs
    bool inverse = false;
    bool coset = false;
    bool bitrevOutput = false; ///< NR variant (vs NN)
    PolyLayout layout = PolyLayout::PolyMajor;
};

/** Merkle-tree construction over hashed leaves. */
struct MerkleKernel
{
    uint64_t leafCount = 0;
    uint32_t leafLength = 0; ///< field elements per leaf
    uint32_t capHeight = 0;
};

/** Standalone hashing (Fiat-Shamir, proof-of-work). */
struct HashKernel
{
    uint64_t permutations = 0;
};

/**
 * Element-wise polynomial computation over vectors of a given length:
 * reads `inputVectors` operand vectors, performs `opsPerElement`
 * modular operations per element, writes `outputVectors` results.
 * `randomAccessBytes` models irregular (gate-evaluation style) accesses
 * whose small granularity underutilizes DRAM bandwidth (Section 7.1).
 */
struct VecOpKernel
{
    uint64_t length = 0;
    uint32_t inputVectors = 1;
    uint32_t outputVectors = 1;
    uint32_t opsPerElement = 1;
    uint32_t randomAccessGranularity = 0; ///< bytes; 0 = sequential
};

/** Quotient-chunk partial products (paper Eq. 1-2, Fig. 6). */
struct PartialProductKernel
{
    uint64_t length = 0;    ///< number of q values
    uint32_t chunkSize = 8;
};

/** Explicit data-layout transformation (transpose). */
struct TransposeKernel
{
    uint64_t rows = 0;
    uint64_t cols = 0;
};

/**
 * Sum-check dynamic-programming rounds over a 2^logSize table
 * (paper Sec. 8.1, Algorithm 2): per round a vector sum (mapped onto
 * the inter-PE reduction links) and a halving vector update (vector
 * mode).
 */
struct SumCheckKernel
{
    uint32_t logSize = 0;
};

using KernelPayload =
    std::variant<NttKernel, MerkleKernel, HashKernel, VecOpKernel,
                 PartialProductKernel, TransposeKernel, SumCheckKernel>;

/** One node of the computation graph. */
struct KernelOp
{
    KernelPayload payload;
    std::string label; ///< human-readable provenance, e.g. "wires commit"
};

/** The recorded computation graph (kernels in issue order). */
struct KernelTrace
{
    std::vector<KernelOp> ops;

    size_t size() const { return ops.size(); }
};

/** Records kernels as the protocol executes. */
class TraceRecorder
{
  public:
    void
    record(KernelPayload payload, std::string label)
    {
        trace_.ops.push_back({std::move(payload), std::move(label)});
    }

    const KernelTrace &trace() const { return trace_; }

    KernelTrace takeTrace() { return std::move(trace_); }

  private:
    KernelTrace trace_;
};

/** Printable kernel-type name for reports. */
const char *kernelPayloadName(const KernelPayload &payload);

} // namespace unizk

#endif // UNIZK_TRACE_KERNEL_TRACE_H
