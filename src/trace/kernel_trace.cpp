#include "trace/kernel_trace.h"

namespace unizk {

namespace {

struct NameVisitor
{
    const char *operator()(const NttKernel &) const { return "ntt"; }
    const char *operator()(const MerkleKernel &) const { return "merkle"; }
    const char *operator()(const HashKernel &) const { return "hash"; }
    const char *operator()(const VecOpKernel &) const { return "vecop"; }
    const char *
    operator()(const PartialProductKernel &) const
    {
        return "partial_product";
    }
    const char *
    operator()(const TransposeKernel &) const
    {
        return "transpose";
    }
    const char *
    operator()(const SumCheckKernel &) const
    {
        return "sumcheck";
    }
};

} // namespace

const char *
kernelPayloadName(const KernelPayload &payload)
{
    return std::visit(NameVisitor{}, payload);
}

} // namespace unizk
