/**
 * @file
 * The evaluation workloads (paper Section 6 "Applications"):
 * Factorial, Fibonacci, ECDSA, SHA-256, Image Crop, and MVM, plus the
 * recursive-aggregation circuit used in Tables 5 and 6.
 *
 * Plonk circuits here are *shape-faithful synthetics* (see DESIGN.md):
 * the row counts, committed widths (3R wire columns), and gate-type
 * mixes match each application's character -- a factorial chain of
 * scaled multiplications, Fibonacci additions, EC-style mul-heavy
 * ladders for ECDSA, round-structured mixing for SHA-256, copy-heavy
 * selection for Image Crop, and mul-add dot products for MVM. The
 * prover, verifier, and the accelerator trace only depend on these
 * shapes, not on the semantic gadget libraries.
 *
 * Three applications additionally carry Starky AETs (Factorial,
 * Fibonacci, SHA-256), matching the apps with existing Starky
 * implementations used in Table 5.
 */

#ifndef UNIZK_WORKLOADS_APPS_H
#define UNIZK_WORKLOADS_APPS_H

#include <memory>
#include <string>
#include <vector>

#include "plonk/circuit.h"
#include "stark/stark.h"

namespace unizk {

enum class AppId
{
    Factorial,
    Fibonacci,
    Ecdsa,
    Sha256,
    ImageCrop,
    Mvm,
    Recursion,
};

/** The six Table-3 applications, in paper order. */
inline const std::vector<AppId> &
evaluationApps()
{
    static const std::vector<AppId> apps{
        AppId::Factorial, AppId::Fibonacci, AppId::Ecdsa,
        AppId::Sha256,    AppId::ImageCrop, AppId::Mvm};
    return apps;
}

const char *appName(AppId app);

/** Default shape parameters for an application. */
struct WorkloadParams
{
    /** Target circuit rows (padded to a power of two). */
    size_t rows = 1 << 12;

    /**
     * Witness repetitions R; the wires batch holds 3R polynomials
     * (R = 45 gives the paper's width-135 commitment for most apps,
     * MVM uses a wider 400-column trace).
     */
    size_t repetitions = 45;
};

/**
 * Defaults scaled down from the paper's 2^20-row configurations so a
 * full run fits a laptop-class machine; `scale` shifts every app's row
 * count by the same factor (rows <<= scale).
 */
WorkloadParams defaultParams(AppId app, uint32_t scale = 0);

/** A ready-to-prove Plonk instance. */
struct PlonkApp
{
    Circuit circuit;
    std::vector<std::vector<Fp>> witnesses; ///< [repetition][input]
};

/** Build the Plonk circuit and R witness input sets. */
PlonkApp buildPlonkApp(AppId app, size_t rows, size_t repetitions,
                       uint64_t seed = 1);

/** A ready-to-prove Starky instance. */
struct StarkApp
{
    std::unique_ptr<StarkAir> air;
    std::vector<std::vector<Fp>> trace; ///< column-major
};

/** True for apps with a Starky (AET) implementation. */
bool hasStarkImplementation(AppId app);

/** Build the AET and its AIR (Factorial, Fibonacci, Sha256 only). */
StarkApp buildStarkApp(AppId app, size_t rows);

} // namespace unizk

#endif // UNIZK_WORKLOADS_APPS_H
