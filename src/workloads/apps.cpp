#include "workloads/apps.h"

#include "common/bits.h"
#include "common/rng.h"

namespace unizk {

const char *
appName(AppId app)
{
    switch (app) {
      case AppId::Factorial:
        return "Factorial";
      case AppId::Fibonacci:
        return "Fibonacci";
      case AppId::Ecdsa:
        return "ECDSA";
      case AppId::Sha256:
        return "SHA-256";
      case AppId::ImageCrop:
        return "Image Crop";
      case AppId::Mvm:
        return "MVM";
      case AppId::Recursion:
        return "Recursion";
      default:
        unizk_panic("unknown app");
    }
}

WorkloadParams
defaultParams(AppId app, uint32_t scale)
{
    // Row counts keep the paper's relative proving-cost ordering
    // (Factorial ~ SHA-256 > MVM > Image Crop > ECDSA > Fibonacci) at
    // laptop scale; `scale` shifts everything up toward the paper's
    // 2^20-row configurations.
    WorkloadParams p;
    switch (app) {
      case AppId::Factorial:
        p.rows = size_t{1} << 13;
        break;
      case AppId::Fibonacci:
        p.rows = size_t{1} << 9;
        break;
      case AppId::Ecdsa:
        p.rows = size_t{1} << 10;
        break;
      case AppId::Sha256:
        p.rows = size_t{1} << 13;
        break;
      case AppId::ImageCrop:
        p.rows = size_t{1} << 12;
        break;
      case AppId::Mvm:
        p.rows = size_t{1} << 12;
        p.repetitions = 133; // ~400-column trace (paper Sec. 7.1)
        break;
      case AppId::Recursion:
        p.rows = size_t{1} << 12; // Plonky2 verifier-circuit size
        break;
    }
    p.rows <<= scale;
    return p;
}

namespace {

/**
 * Factorial chain: acc_{i+1} = (i+1) * acc_i as one linear gate per
 * step (the scale factor lives in the selector).
 */
PlonkApp
buildFactorial(size_t rows, size_t reps, uint64_t seed)
{
    CircuitBuilder b;
    const Var acc0 = b.input();
    Var acc = acc0;
    for (size_t i = 1; b.gateCount() + 1 < rows; ++i)
        acc = b.linear(Fp(i + 1), acc, Fp::zero(), acc, Fp::zero());

    PlonkApp app{b.build(rows), {}};
    SplitMix64 rng(seed);
    for (size_t r = 0; r < reps; ++r)
        app.witnesses.push_back({randomFp(rng)});
    return app;
}

/** Fibonacci chain: one addition gate per step. */
PlonkApp
buildFibonacci(size_t rows, size_t reps, uint64_t seed)
{
    CircuitBuilder b;
    Var a = b.input();
    Var bb = b.input();
    while (b.gateCount() + 1 < rows) {
        const Var next = b.add(a, bb);
        a = bb;
        bb = next;
    }
    PlonkApp app{b.build(rows), {}};
    SplitMix64 rng(seed);
    for (size_t r = 0; r < reps; ++r)
        app.witnesses.push_back({randomFp(rng), randomFp(rng)});
    return app;
}

/**
 * ECDSA-style ladder: elliptic-curve double-and-add is a mul-heavy
 * pattern (~6 muls + 3 adds per step on projective coordinates).
 */
PlonkApp
buildEcdsa(size_t rows, size_t reps, uint64_t seed)
{
    CircuitBuilder b;
    Var x = b.input();
    Var y = b.input();
    while (b.gateCount() + 9 < rows) {
        const Var x2 = b.mul(x, x);
        const Var y2 = b.mul(y, y);
        const Var xy = b.mul(x, y);
        const Var t1 = b.add(x2, y2);
        const Var t2 = b.mul(t1, xy);
        const Var t3 = b.linear(Fp(3), x2, Fp(2), y2, Fp(7));
        const Var t4 = b.mul(t2, t3);
        x = b.add(t4, x);
        y = b.add(t2, y);
    }
    PlonkApp app{b.build(rows), {}};
    SplitMix64 rng(seed);
    for (size_t r = 0; r < reps; ++r)
        app.witnesses.push_back({randomFp(rng), randomFp(rng)});
    return app;
}

/**
 * SHA-256-style rounds: per round a balanced mix of multiplicative
 * "choice/majority" mixing and additive sigma chains over a rotating
 * working state.
 */
PlonkApp
buildSha256(size_t rows, size_t reps, uint64_t seed)
{
    CircuitBuilder b;
    std::array<Var, 8> state;
    for (auto &v : state)
        v = b.input();
    size_t round = 0;
    while (b.gateCount() + 8 < rows) {
        const Var ch = b.mul(state[4], state[5]);
        const Var maj1 = b.mul(state[0], state[1]);
        const Var maj2 = b.mul(state[1], state[2]);
        const Var s1 = b.linear(Fp(17), state[4], Fp(19), state[7],
                                Fp(round + 1));
        const Var t1 = b.add(ch, s1);
        const Var t2 = b.add(maj1, maj2);
        // Rotate the working state as SHA-256 does.
        for (size_t i = 7; i > 0; --i)
            state[i] = state[i - 1];
        state[0] = b.add(t1, t2);
        state[4] = b.add(state[4], t1);
        ++round;
    }
    PlonkApp app{b.build(rows), {}};
    SplitMix64 rng(seed);
    for (size_t r = 0; r < reps; ++r) {
        std::vector<Fp> in(8);
        for (auto &x : in)
            x = randomFp(rng);
        app.witnesses.push_back(std::move(in));
    }
    return app;
}

/**
 * Image Crop: dominated by data movement -- long runs of identity /
 * linear gates selecting the cropped region, with light blending
 * arithmetic (the zkedit-style workload).
 */
PlonkApp
buildImageCrop(size_t rows, size_t reps, uint64_t seed)
{
    CircuitBuilder b;
    Var px = b.input();
    Var alpha = b.input();
    size_t i = 0;
    while (b.gateCount() + 3 < rows) {
        // Copy/selection gates (region passthrough).
        const Var copy =
            b.linear(Fp::one(), px, Fp::zero(), px, Fp::zero());
        const Var blend = b.linear(Fp(255), alpha, Fp::one(), copy,
                                   Fp(i & 0xff));
        px = (i % 7 == 0) ? b.mul(blend, alpha) : blend;
        ++i;
    }
    PlonkApp app{b.build(rows), {}};
    SplitMix64 rng(seed);
    for (size_t r = 0; r < reps; ++r)
        app.witnesses.push_back({randomFp(rng), randomFp(rng)});
    return app;
}

/** MVM: row-by-row dot products, pure multiply-accumulate. */
PlonkApp
buildMvm(size_t rows, size_t reps, uint64_t seed)
{
    CircuitBuilder b;
    Var x = b.input();
    Var acc = b.input();
    size_t i = 0;
    while (b.gateCount() + 2 < rows) {
        const Var prod =
            b.linear(Fp(i * 2654435761u % 65521 + 1), x, Fp::zero(), x,
                     Fp::zero());
        acc = b.add(acc, prod);
        ++i;
    }
    PlonkApp app{b.build(rows), {}};
    SplitMix64 rng(seed);
    for (size_t r = 0; r < reps; ++r)
        app.witnesses.push_back({randomFp(rng), randomFp(rng)});
    return app;
}

/**
 * Recursion: a circuit shaped like the Plonky2 recursive verifier --
 * hash-heavy (Poseidon-round-like S-box chains) plus field arithmetic
 * for FRI folding checks, at the canonical 2^12-row verifier size.
 */
PlonkApp
buildRecursion(size_t rows, size_t reps, uint64_t seed)
{
    CircuitBuilder b;
    Var s = b.input();
    Var t = b.input();
    while (b.gateCount() + 6 < rows) {
        // x^7 S-box chain (3 muls) as in in-circuit Poseidon.
        const Var s2 = b.mul(s, s);
        const Var s3 = b.mul(s2, s);
        const Var s7 = b.mul(s3, s2 /* x^5 */);
        // Folding arithmetic.
        const Var f = b.linear(Fp(2), s7, Fp(3), t, Fp(5));
        t = b.add(f, s);
        s = b.add(s7, t);
    }
    PlonkApp app{b.build(rows), {}};
    SplitMix64 rng(seed);
    for (size_t r = 0; r < reps; ++r)
        app.witnesses.push_back({randomFp(rng), randomFp(rng)});
    return app;
}

// ---------------------------------------------------------------------
// Starky AETs
// ---------------------------------------------------------------------

/** Paper Figure 2's AET: x0' = x1, x1' = x0 + x1. */
class FibonacciAir : public StarkAir
{
  public:
    explicit FibonacciAir(Fp last_) : last(last_) {}

    size_t numColumns() const override { return 2; }
    size_t numConstraints() const override { return 2; }

    template <typename F>
    void
    evalT(const std::vector<F> &local, const std::vector<F> &next,
          std::vector<F> &out) const
    {
        out[0] = next[0] - local[1];
        out[1] = next[1] - (local[0] + local[1]);
    }

    void
    evalTransition(const std::vector<Fp> &local,
                   const std::vector<Fp> &next,
                   std::vector<Fp> &out) const override
    {
        evalT(local, next, out);
    }

    void
    evalTransitionExt(const std::vector<Fp2> &local,
                      const std::vector<Fp2> &next,
                      std::vector<Fp2> &out) const override
    {
        evalT(local, next, out);
    }

    std::vector<BoundaryConstraint>
    boundaries() const override
    {
        return {{0, false, Fp(0)}, {1, false, Fp(1)}, {1, true, last}};
    }

  private:
    Fp last;
};

/** Factorial AET: columns (i, acc); acc' = acc * (i + 1), i' = i + 1. */
class FactorialAir : public StarkAir
{
  public:
    explicit FactorialAir(Fp last_) : last(last_) {}

    size_t numColumns() const override { return 2; }
    size_t numConstraints() const override { return 2; }

    template <typename F>
    void
    evalT(const std::vector<F> &local, const std::vector<F> &next,
          std::vector<F> &out) const
    {
        out[0] = next[0] - local[0] - F(Fp::one());
        out[1] = next[1] - local[1] * next[0];
    }

    void
    evalTransition(const std::vector<Fp> &local,
                   const std::vector<Fp> &next,
                   std::vector<Fp> &out) const override
    {
        evalT(local, next, out);
    }

    void
    evalTransitionExt(const std::vector<Fp2> &local,
                      const std::vector<Fp2> &next,
                      std::vector<Fp2> &out) const override
    {
        evalT(local, next, out);
    }

    std::vector<BoundaryConstraint>
    boundaries() const override
    {
        return {{0, false, Fp(1)}, {1, false, Fp(1)}, {1, true, last}};
    }

  private:
    Fp last;
};

/**
 * SHA-256-style AET: a 16-column rotating mix, one row per round, with
 * the first row pinned to the (message-derived) initial state.
 */
class Sha256Air : public StarkAir
{
  public:
    explicit Sha256Air(std::vector<Fp> first_row)
        : first(std::move(first_row))
    {}

    static constexpr size_t cols = 16;

    size_t numColumns() const override { return cols; }
    size_t numConstraints() const override { return cols; }

    template <typename F>
    void
    evalT(const std::vector<F> &local, const std::vector<F> &next,
          std::vector<F> &out) const
    {
        for (size_t j = 0; j + 1 < cols; ++j) {
            out[j] = next[j] -
                     (local[(j + 1) % cols] * local[(j + 2) % cols] +
                      local[j]);
        }
        out[cols - 1] = next[cols - 1] - (local[0] + local[1]);
    }

    void
    evalTransition(const std::vector<Fp> &local,
                   const std::vector<Fp> &next,
                   std::vector<Fp> &out) const override
    {
        evalT(local, next, out);
    }

    void
    evalTransitionExt(const std::vector<Fp2> &local,
                      const std::vector<Fp2> &next,
                      std::vector<Fp2> &out) const override
    {
        evalT(local, next, out);
    }

    std::vector<BoundaryConstraint>
    boundaries() const override
    {
        std::vector<BoundaryConstraint> b;
        for (size_t j = 0; j < cols; ++j)
            b.push_back({j, false, first[j]});
        return b;
    }

  private:
    std::vector<Fp> first;
};

std::vector<std::vector<Fp>>
rollTrace(const StarkAir &air, std::vector<Fp> row, size_t rows)
{
    const size_t cols = air.numColumns();
    std::vector<std::vector<Fp>> trace(cols, std::vector<Fp>(rows));
    std::vector<Fp> next(cols), out(air.numConstraints());
    for (size_t i = 0; i < rows; ++i) {
        for (size_t c = 0; c < cols; ++c)
            trace[c][i] = row[c];
        if (i + 1 == rows)
            break;
        // Solve the next row from the transition rules by construction;
        // each AIR here defines next as an explicit function of local.
        if (cols == 2) {
            // Fibonacci / Factorial: distinguish by probing constraint
            // structure is overkill -- both are handled by the caller
            // instead.
            unizk_panic("rollTrace: 2-column AETs filled by caller");
        }
        for (size_t j = 0; j + 1 < cols; ++j)
            next[j] = row[(j + 1) % cols] * row[(j + 2) % cols] + row[j];
        next[cols - 1] = row[0] + row[1];
        row = next;
    }
    return trace;
}

} // namespace

PlonkApp
buildPlonkApp(AppId app, size_t rows, size_t repetitions, uint64_t seed)
{
    unizk_assert(rows >= 16, "workloads need at least 16 rows");
    switch (app) {
      case AppId::Factorial:
        return buildFactorial(rows, repetitions, seed);
      case AppId::Fibonacci:
        return buildFibonacci(rows, repetitions, seed);
      case AppId::Ecdsa:
        return buildEcdsa(rows, repetitions, seed);
      case AppId::Sha256:
        return buildSha256(rows, repetitions, seed);
      case AppId::ImageCrop:
        return buildImageCrop(rows, repetitions, seed);
      case AppId::Mvm:
        return buildMvm(rows, repetitions, seed);
      case AppId::Recursion:
        return buildRecursion(rows, repetitions, seed);
      default:
        unizk_panic("unknown app");
    }
}

bool
hasStarkImplementation(AppId app)
{
    return app == AppId::Factorial || app == AppId::Fibonacci ||
           app == AppId::Sha256;
}

StarkApp
buildStarkApp(AppId app, size_t rows)
{
    unizk_assert(isPowerOfTwo(rows), "trace rows must be a power of two");
    StarkApp out;
    switch (app) {
      case AppId::Fibonacci: {
        std::vector<std::vector<Fp>> cols(2, std::vector<Fp>(rows));
        Fp a(0), b(1);
        for (size_t i = 0; i < rows; ++i) {
            cols[0][i] = a;
            cols[1][i] = b;
            const Fp n = a + b;
            a = b;
            b = n;
        }
        out.air = std::make_unique<FibonacciAir>(cols[1].back());
        out.trace = std::move(cols);
        return out;
      }
      case AppId::Factorial: {
        std::vector<std::vector<Fp>> cols(2, std::vector<Fp>(rows));
        Fp i_val(1), acc(1);
        for (size_t i = 0; i < rows; ++i) {
            cols[0][i] = i_val;
            cols[1][i] = acc;
            i_val += Fp::one();
            acc *= i_val;
        }
        out.air = std::make_unique<FactorialAir>(cols[1].back());
        out.trace = std::move(cols);
        return out;
      }
      case AppId::Sha256: {
        std::vector<Fp> first(Sha256Air::cols);
        for (size_t j = 0; j < first.size(); ++j)
            first[j] = Fp(0x6a09e667f3bcc908ULL + j * 0x9e3779b9ULL);
        Sha256Air air(first);
        out.trace = rollTrace(air, first, rows);
        out.air = std::make_unique<Sha256Air>(first);
        return out;
      }
      default:
        unizk_panic("no Starky implementation for ", appName(app));
    }
}

} // namespace unizk
