/**
 * @file
 * `unizk_cli`: run one application end to end (CPU prove + UniZK
 * simulation + verify) and optionally emit machine-readable artifacts:
 *
 *   unizk_cli --protocol plonky2 --app factorial --rows 8192 --fast \
 *             --stats-json stats.json --trace-json trace.json \
 *             --folded spans.folded --proof-out proof.bin
 *
 * Options:
 *   --protocol plonky2|starky   proof system (default plonky2)
 *   --app NAME                  factorial, fibonacci, ecdsa, sha256,
 *                               imagecrop, mvm, recursion (default
 *                               factorial; Starky supports the first
 *                               two plus sha256)
 *   --rows N --reps R           workload shape (defaults per app)
 *   --fast                      reduced FRI security for quick runs
 *   --threads N                 prover thread count (0 = auto)
 *   --no-verify                 skip proof verification
 *   --stats-json PATH           write unizk-stats-v2 JSON (hardware
 *                               counters, timeline, histograms)
 *   --trace-json PATH           write Chrome trace_event JSON
 *                               (Perfetto / chrome://tracing)
 *   --folded PATH               write collapsed-stack span profile
 *                               (flamegraph.pl / speedscope input)
 *   --timeline-period N         sim timeline sample period in cycles
 *                               (0 = auto, ~256 samples)
 *   --proof-out PATH            write the serialized proof bytes
 */

#include <fstream>
#include <string>

#include "common/cli.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/folded_export.h"
#include "obs/json_writer.h"
#include "obs/obs.h"
#include "obs/stats_export.h"
#include "obs/trace_export.h"
#include "unizk/pipeline.h"

namespace {

using namespace unizk;

/** Lowercase with separators removed, for forgiving app-name matching. */
std::string
normalized(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c >= 'A' && c <= 'Z')
            out += static_cast<char>(c - 'A' + 'a');
        else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            out += c;
    }
    return out;
}

AppId
appFromString(const std::string &name)
{
    static const AppId all[] = {
        AppId::Factorial, AppId::Fibonacci, AppId::Ecdsa,
        AppId::Sha256,    AppId::ImageCrop, AppId::Mvm,
        AppId::Recursion};
    const std::string want = normalized(name);
    for (const AppId app : all) {
        if (normalized(appName(app)) == want)
            return app;
    }
    unizk_fatal("unknown --app \"", name,
                "\" (try factorial, fibonacci, ecdsa, sha256, "
                "imagecrop, mvm, recursion)");
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli(argc, argv);
    applyGlobalCliOptions(cli);
    const unsigned threads = globalThreadCount();

    const std::string protocol =
        cli.getString("protocol", "plonky2");
    if (protocol != "plonky2" && protocol != "starky")
        unizk_fatal("--protocol must be plonky2 or starky");

    const AppId app = appFromString(cli.getString("app", "factorial"));
    const WorkloadParams params =
        defaultParams(app, static_cast<uint32_t>(cli.getUint("scale", 0)));
    const size_t rows = cli.getUint("rows", params.rows);
    const size_t reps = cli.getUint("reps", params.repetitions);
    const bool verify = !cli.has("no-verify");

    const std::string stats_path = cli.getString("stats-json", "");
    const std::string trace_path = cli.getString("trace-json", "");
    const std::string folded_path = cli.getString("folded", "");
    const std::string proof_path = cli.getString("proof-out", "");
    if (!stats_path.empty() || !trace_path.empty() ||
        !folded_path.empty()) {
        obs::setEnabled(true);
    }

    FriConfig cfg = protocol == "plonky2" ? FriConfig::plonky2()
                                          : FriConfig::starky();
    if (cli.has("fast")) {
        cfg.powBits = 8;
        cfg.numQueries = protocol == "plonky2" ? 8 : 16;
    }
    HardwareConfig hw = HardwareConfig::paperDefault();
    hw.timelineSamplePeriod = cli.getUint("timeline-period", 0);

    if (protocol == "starky" && !hasStarkImplementation(app))
        unizk_fatal("no Starky implementation for ", appName(app));

    // Everything above is setup; only the proof run itself belongs in
    // the exported artifacts.
    obs::resetForMeasurement();

    const AppRunResult result =
        protocol == "plonky2"
            ? runPlonky2App(app, rows, reps, cfg, hw, verify)
            : runStarkyApp(app, rows, cfg, hw, verify);

    std::printf("%s (%s): rows=%zu, cpu %.3f s, sim %.3f ms, "
                "proof %zu bytes, %s\n",
                result.app.c_str(), protocol.c_str(), result.rows,
                result.cpuSeconds, result.sim.seconds() * 1e3,
                result.proofBytes,
                verify ? (result.verified ? "verified" : "VERIFY FAILED")
                       : "not verified");
    std::printf("%s", formatReport(result.sim).c_str());

    if (!stats_path.empty()) {
        const std::string doc = obs::statsToJson(
            {toRunStats(result, protocol, threads)},
            obs::counterSnapshot(), obs::histogramSnapshot());
        if (!obs::writeFile(stats_path, doc))
            unizk_fatal("cannot write ", stats_path);
        std::printf("wrote stats JSON: %s\n", stats_path.c_str());
    }
    if (!trace_path.empty() || !folded_path.empty()) {
        // Drain once; the span buffer feeds both exporters.
        const std::vector<obs::SpanEvent> spans = obs::drainSpans();
        if (!trace_path.empty()) {
            obs::ChromeTraceBuilder builder;
            builder.addSpans(spans);
            builder.addSimLane(result.app, result.trace, hw);
            if (!obs::writeFile(trace_path, builder.build()))
                unizk_fatal("cannot write ", trace_path);
            std::printf("wrote Chrome trace: %s\n", trace_path.c_str());
        }
        if (!folded_path.empty()) {
            if (!obs::writeFile(folded_path, obs::spansToFolded(spans)))
                unizk_fatal("cannot write ", folded_path);
            std::printf("wrote folded spans: %s\n", folded_path.c_str());
        }
    }
    if (!proof_path.empty()) {
        std::ofstream f(proof_path, std::ios::binary);
        f.write(reinterpret_cast<const char *>(
                    result.proofBlob.data()),
                static_cast<std::streamsize>(result.proofBlob.size()));
        if (!f)
            unizk_fatal("cannot write ", proof_path);
        std::printf("wrote proof bytes: %s\n", proof_path.c_str());
    }

    return (verify && !result.verified) ? 1 : 0;
}
