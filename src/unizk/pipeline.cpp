#include "unizk/pipeline.h"

#include "obs/obs.h"
#include "serialize/proof_io.h"

namespace unizk {

AppRunResult
runPlonky2App(AppId app, size_t rows, size_t repetitions,
              const FriConfig &cfg, const HardwareConfig &hw,
              bool verify_proof)
{
    UNIZK_SPAN("pipeline/plonky2-app");
    AppRunResult result;
    result.app = appName(app);
    result.repetitions = repetitions;

    PlonkApp instance = buildPlonkApp(app, rows, repetitions);
    result.rows = instance.circuit.rows();

    // Setup (preprocessing) is offline in Plonky2 and excluded from the
    // measured proving time, like the paper excludes Arithmetization.
    ProverContext setup_ctx;
    const PlonkProvingKey key =
        plonkSetup(instance.circuit, cfg, setup_ctx);

    TraceRecorder recorder;
    ProverContext ctx;
    ctx.breakdown = &result.cpuBreakdown;
    ctx.recorder = &recorder;

    const Stopwatch watch;
    const PlonkProof proof =
        plonkProve(instance.circuit, key, instance.witnesses, cfg, ctx);
    result.cpuSeconds = watch.elapsedSeconds();

    result.trace = recorder.takeTrace();
    result.sim = simulateTrace(result.trace, hw);
    result.proofBytes = proof.byteSize();
    result.proofBlob = serializePlonkProof(proof);
    {
        UNIZK_SPAN("pipeline/verify");
        result.verified =
            !verify_proof ||
            plonkVerify(key.constants->cap(), proof, cfg);
    }
    return result;
}

AppRunResult
runStarkyApp(AppId app, size_t rows, const FriConfig &cfg,
             const HardwareConfig &hw, bool verify_proof)
{
    UNIZK_SPAN("pipeline/starky-app");
    AppRunResult result;
    result.app = appName(app);

    StarkApp instance = buildStarkApp(app, rows);
    result.rows = rows;

    TraceRecorder recorder;
    ProverContext ctx;
    ctx.breakdown = &result.cpuBreakdown;
    ctx.recorder = &recorder;

    const Stopwatch watch;
    const StarkProof proof =
        starkProve(*instance.air, instance.trace, cfg, ctx);
    result.cpuSeconds = watch.elapsedSeconds();

    result.trace = recorder.takeTrace();
    result.sim = simulateTrace(result.trace, hw);
    result.proofBytes = proof.byteSize();
    result.proofBlob = serializeStarkProof(proof);
    {
        UNIZK_SPAN("pipeline/verify");
        result.verified =
            !verify_proof || starkVerify(*instance.air, proof, cfg);
    }
    return result;
}

obs::RunStats
toRunStats(const AppRunResult &result, const std::string &protocol,
           unsigned threads)
{
    obs::RunStats stats;
    stats.app = result.app;
    stats.protocol = protocol;
    stats.rows = result.rows;
    stats.repetitions = result.repetitions;
    stats.threads = threads;
    stats.cpuSeconds = result.cpuSeconds;
    stats.cpuBreakdown = result.cpuBreakdown;
    stats.sim = result.sim;
    stats.proofBytes = result.proofBytes;
    stats.verified = result.verified;
    return stats;
}

} // namespace unizk
