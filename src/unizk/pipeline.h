/**
 * @file
 * Top-level experiment pipeline: build a workload, run the CPU prover
 * with kernel-time instrumentation (Table 1), record the kernel trace,
 * simulate UniZK on it (Tables 3-4, Figures 8-10), and verify the
 * produced proof. This is the public API the examples and all bench
 * harnesses drive.
 */

#ifndef UNIZK_UNIZK_PIPELINE_H
#define UNIZK_UNIZK_PIPELINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "fri/fri_config.h"
#include "obs/stats_export.h"
#include "plonk/plonk.h"
#include "sim/simulator.h"
#include "stark/stark.h"
#include "workloads/apps.h"

namespace unizk {

/** Outcome of one end-to-end run (CPU proof + UniZK simulation). */
struct AppRunResult
{
    std::string app;
    size_t rows = 0;
    size_t repetitions = 0; ///< Plonk only

    /** Measured single-thread CPU proving time (seconds). */
    double cpuSeconds = 0.0;

    /** CPU time split by kernel class (Table 1). */
    KernelTimeBreakdown cpuBreakdown;

    /** Recorded kernel trace (the compiler frontend's output). */
    KernelTrace trace;

    /** UniZK simulation of the same proof generation. */
    SimReport sim;

    size_t proofBytes = 0;
    bool verified = false;

    /**
     * Canonical serialized proof. Byte-identical across thread counts
     * and with observability on or off (determinism tests compare it).
     */
    std::vector<uint8_t> proofBlob;

    /** UniZK speedup over the measured single-thread CPU. */
    double
    speedupVsCpu() const
    {
        return sim.seconds() > 0 ? cpuSeconds / sim.seconds() : 0.0;
    }
};

/**
 * The paper's multithreaded CPU baseline scales ~10x over one thread
 * (Table 1 vs Table 3: e.g. Factorial 580 s single-thread vs 57.6 s on
 * 80 threads). We report speedups against this modeled parallel CPU so
 * magnitudes are comparable with the paper's Table 3.
 */
constexpr double cpuParallelSpeedup = 10.0;

/** Prove @p app under Plonky2 configuration and simulate UniZK. */
AppRunResult runPlonky2App(AppId app, size_t rows, size_t repetitions,
                           const FriConfig &cfg,
                           const HardwareConfig &hw,
                           bool verify_proof = true);

/** Prove @p app under Starky configuration and simulate UniZK. */
AppRunResult runStarkyApp(AppId app, size_t rows, const FriConfig &cfg,
                          const HardwareConfig &hw,
                          bool verify_proof = true);

/**
 * Package a run for the stats exporter. @p protocol is "plonky2" or
 * "starky"; @p threads the thread count the run used.
 */
obs::RunStats toRunStats(const AppRunResult &result,
                         const std::string &protocol, unsigned threads);

} // namespace unizk

#endif // UNIZK_UNIZK_PIPELINE_H
