/**
 * @file
 * Batched FRI polynomial commitment opening (Fast Reed-Solomon IOP of
 * Proximity), the PCS used by both Plonky2 and Starky (paper Fig. 1,
 * right).
 *
 * Protocol outline:
 *  1. All committed polynomials are batched with powers of a challenge
 *     alpha into B(X); the openings at each point z_j give the DEEP
 *     quotient G(X) = sum_j alpha_j * (B(X) - B(z_j)) / (X - z_j),
 *     which is low-degree iff every claimed opening is correct.
 *  2. Commit phase: G is committed and repeatedly folded in half with
 *     verifier challenges (arity 2), each folded layer committed, until
 *     the residual polynomial is short enough to send in the clear.
 *  3. Proof-of-work grinding.
 *  4. Query phase: random domain positions are opened through all
 *     layers; the verifier checks Merkle paths, recomputes G at the
 *     query point from the initial openings, and checks every folding
 *     step down to the final polynomial.
 */

#ifndef UNIZK_FRI_FRI_H
#define UNIZK_FRI_FRI_H

#include <cstdint>
#include <vector>

#include "fri/polynomial_batch.h"
#include "hash/challenger.h"

namespace unizk {

/** One opened (pair, path) in a folded layer. */
struct FriLayerOpening
{
    std::array<Fp2, 2> pair;
    MerkleProof proof;
};

/** Opened leaf of an initial (polynomial batch) tree. */
struct FriInitialOpening
{
    std::vector<Fp> values;
    MerkleProof proof;
};

/** Everything opened for one query index. */
struct FriQueryRound
{
    std::vector<FriInitialOpening> initial; ///< one per batch
    std::vector<FriLayerOpening> layers;    ///< one per folded layer
};

struct FriProof
{
    std::vector<MerkleCap> layerCaps;
    std::vector<Fp2> finalPoly; ///< coefficients, low to high
    uint64_t powNonce = 0;
    std::vector<FriQueryRound> queries;

    /** Proof size in bytes (for Table 5 style reporting). */
    size_t byteSize() const;
};

/**
 * Prove the openings of all polynomials in @p batches at each point of
 * @p points. @p openings[j][k] must equal the k-th polynomial's value at
 * points[j], where k runs over all batches' polynomials in order; they
 * must already have been observed into @p challenger by the caller.
 */
FriProof friProve(const std::vector<const PolynomialBatch *> &batches,
                  const std::vector<Fp2> &points,
                  const std::vector<std::vector<Fp2>> &openings,
                  Challenger &challenger, const FriConfig &cfg,
                  const ProverContext &ctx);

/** Verifier-side view of one committed batch. */
struct FriBatchInfo
{
    MerkleCap cap;
    size_t polyCount = 0;
};

/**
 * Verify a FRI opening proof. @p degree_bound is the common degree
 * bound n of the committed polynomials; the challenger must be in the
 * same state as the prover's was when friProve was called.
 */
bool friVerify(const std::vector<FriBatchInfo> &batches,
               size_t degree_bound, const std::vector<Fp2> &points,
               const std::vector<std::vector<Fp2>> &openings,
               const FriProof &proof, Challenger &challenger,
               const FriConfig &cfg);

} // namespace unizk

#endif // UNIZK_FRI_FRI_H
