#include "fri/fri.h"

#include "common/bits.h"
#include "common/thread_pool.h"
#include "ntt/ntt.h"
#include "obs/obs.h"

namespace unizk {

namespace {

/** Check a proof-of-work witness. */
bool
powValid(Fp challenge, uint64_t nonce, uint32_t bits)
{
    if (bits == 0)
        return true;
    const HashOut h = hashNoPad({challenge, Fp(nonce)});
    return fpHighBits(h.elems[0], bits) == 0;
}

/**
 * Points of the (bit-reversed-stored) evaluation domain: out[i] is the
 * point at storage index i, i.e. shift * w^bitrev(i).
 */
std::vector<Fp>
domainPoints(size_t size, Fp shift)
{
    const uint32_t log_size = log2Exact(size);
    const Fp w = Fp::primitiveRootOfUnity(log_size);
    std::vector<Fp> out(size);
    Fp cur = shift;
    for (size_t j = 0; j < size; ++j) {
        out[reverseBits(j, log_size)] = cur;
        cur *= w;
    }
    return out;
}

/** Fold a bit-reversed evaluation vector in half with challenge beta. */
std::vector<Fp2>
foldLayer(const std::vector<Fp2> &cur, Fp2 beta, Fp shift)
{
    const size_t half_size = cur.size() / 2;
    // y[i] is the point of the *even* child of pair i: shift * w^j where
    // w generates the full current domain and j bit-reverses i over
    // log(half) bits.
    const uint32_t log_half = log2Exact(half_size);
    const Fp w = Fp::primitiveRootOfUnity(log_half + 1);
    std::vector<Fp> y(half_size);
    Fp cur_point = shift;
    for (size_t j = 0; j < half_size; ++j) {
        y[reverseBits(j, log_half)] = cur_point;
        cur_point *= w;
    }
    const Fp inv2 = Fp(2).inverse();

    std::vector<Fp> denom(half_size);
    parallelFor(0, half_size, /*grain=*/1024, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            denom[i] = y[i].doubled();
    });
    batchInverse(denom);

    std::vector<Fp2> next(half_size);
    parallelFor(0, half_size, /*grain=*/1024, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            const Fp2 v0 = cur[2 * i];
            const Fp2 v1 = cur[2 * i + 1];
            const Fp2 even = (v0 + v1) * inv2;
            const Fp2 odd = (v0 - v1) * denom[i];
            next[i] = even + beta * odd;
        }
    });
    return next;
}

/** Pack an Fp2 pair into a 4-element Merkle leaf. */
std::vector<Fp>
packPair(const Fp2 &a, const Fp2 &b)
{
    return {a.limb(0), a.limb(1), b.limb(0), b.limb(1)};
}

/** Flattened count of polynomials across batches. */
size_t
totalPolyCount(const std::vector<FriBatchInfo> &batches)
{
    size_t total = 0;
    for (const auto &b : batches)
        total += b.polyCount;
    return total;
}

/** alpha^0 .. alpha^(count-1). */
std::vector<Fp2>
alphaPowers(Fp2 alpha, size_t count)
{
    std::vector<Fp2> pows(count);
    Fp2 cur = Fp2::one();
    for (size_t i = 0; i < count; ++i) {
        pows[i] = cur;
        cur *= alpha;
    }
    return pows;
}

/** Combined openings B(z_j) = sum_k alpha^k * openings[j][k]. */
std::vector<Fp2>
combinedOpenings(const std::vector<std::vector<Fp2>> &openings,
                 const std::vector<Fp2> &alpha_pows, size_t num_polys)
{
    std::vector<Fp2> bz(openings.size());
    for (size_t j = 0; j < openings.size(); ++j) {
        unizk_assert(openings[j].size() == num_polys,
                     "opening count mismatch");
        Fp2 acc;
        for (size_t k = 0; k < num_polys; ++k)
            acc += alpha_pows[k] * openings[j][k];
        bz[j] = acc;
    }
    return bz;
}

} // namespace

size_t
FriProof::byteSize() const
{
    size_t bytes = sizeof(powNonce);
    for (const auto &cap : layerCaps)
        bytes += cap.size() * HashOut::byteSize();
    bytes += finalPoly.size() * 2 * sizeof(uint64_t);
    for (const auto &q : queries) {
        for (const auto &init : q.initial) {
            bytes += init.values.size() * sizeof(uint64_t);
            bytes += init.proof.byteSize();
        }
        for (const auto &layer : q.layers) {
            bytes += 4 * sizeof(uint64_t);
            bytes += layer.proof.byteSize();
        }
    }
    return bytes;
}

FriProof
friProve(const std::vector<const PolynomialBatch *> &batches,
         const std::vector<Fp2> &points,
         const std::vector<std::vector<Fp2>> &openings,
         Challenger &challenger, const FriConfig &cfg,
         const ProverContext &ctx)
{
    UNIZK_SPAN("fri/prove");
    unizk_assert(!batches.empty(), "no batches to open");
    unizk_assert(points.size() == openings.size(),
                 "one opening set per point required");
    const size_t n = batches[0]->degreeBound();
    for (const auto *b : batches) {
        unizk_assert(b->degreeBound() == n,
                     "all batches must share a degree bound");
    }
    const size_t domain = n << cfg.blowupBits;

    size_t num_polys = 0;
    for (const auto *b : batches)
        num_polys += b->polyCount();

    const Fp2 alpha = challenger.challengeExt();
    const auto alpha_pows = alphaPowers(alpha, num_polys + points.size());

    FriProof proof;

    // ---- DEEP quotient G over the LDE domain (bit-reversed order). ----
    std::vector<Fp2> g_values(domain);
    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::Polynomial);
        UNIZK_SPAN("fri/deep-quotient");

        // Per-index combination: every i writes its own slot and the
        // k-order of the inner sum is fixed, so the result is
        // thread-count independent.
        std::vector<Fp2> b_values(domain);
        parallelFor(0, domain, /*grain=*/256, [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
                Fp2 acc;
                size_t k = 0;
                for (const auto *batch : batches) {
                    const auto &leaf = batch->tree().leaf(i);
                    for (size_t p = 0; p < batch->polyCount(); ++p, ++k)
                        acc += alpha_pows[k] * Fp2(leaf[p]);
                }
                b_values[i] = acc;
            }
        });

        const auto b_z = combinedOpenings(openings, alpha_pows, num_polys);
        const auto xs = domainPoints(domain, cfg.shift());
        for (size_t j = 0; j < points.size(); ++j) {
            std::vector<Fp2> denom(domain);
            parallelFor(0, domain, /*grain=*/1024,
                        [&](size_t lo, size_t hi) {
                            for (size_t i = lo; i < hi; ++i)
                                denom[i] = Fp2(xs[i]) - points[j];
                        });
            batchInverseExt(denom);
            const Fp2 scale = alpha_pows[num_polys + j];
            parallelFor(0, domain, /*grain=*/1024,
                        [&](size_t lo, size_t hi) {
                            for (size_t i = lo; i < hi; ++i)
                                g_values[i] += scale *
                                               (b_values[i] - b_z[j]) *
                                               denom[i];
                        });
        }
    }
    ctx.record(VecOpKernel{domain,
                           static_cast<uint32_t>(num_polys + points.size()),
                           1, static_cast<uint32_t>(
                               2 * (num_polys + 6 * points.size())),
                           0},
               "FRI: DEEP quotient");

    // ---- Commit phase: fold until the residual is short. ----
    std::vector<std::vector<Fp2>> layer_values;
    std::vector<MerkleTree> layer_trees;
    std::vector<Fp2> cur = g_values;
    size_t poly_len = n;
    Fp layer_shift = cfg.shift();
    while (poly_len > cfg.finalPolyLen) {
        // Commit the current layer as (pair) leaves.
        std::vector<std::vector<Fp>> leaves(cur.size() / 2);
        for (size_t i = 0; i < leaves.size(); ++i)
            leaves[i] = packPair(cur[2 * i], cur[2 * i + 1]);
        const uint32_t cap_h = std::min<uint32_t>(
            cfg.capHeight, log2Exact(leaves.size()));
        {
            ScopedKernelTimer timer(ctx.breakdown, KernelClass::MerkleTree);
            UNIZK_SPAN("fri/layer-commit");
            layer_trees.emplace_back(std::move(leaves), cap_h);
        }
        ctx.record(MerkleKernel{cur.size() / 2, 4, cap_h},
                   "FRI: layer commit");
        for (const auto &digest : layer_trees.back().cap())
            challenger.observe(digest);

        const Fp2 beta = challenger.challengeExt();
        layer_values.push_back(cur);
        {
            ScopedKernelTimer timer(ctx.breakdown, KernelClass::Polynomial);
            UNIZK_SPAN("fri/fold");
            cur = foldLayer(cur, beta, layer_shift);
        }
        ctx.record(VecOpKernel{cur.size(), 2, 1, 12, 0}, "FRI: fold");
        layer_shift = layer_shift.squared();
        poly_len /= 2;
    }

    // ---- Final polynomial: coset-iNTT of the residual layer. ----
    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::Ntt);
        UNIZK_SPAN("fri/final-poly-intt");
        bitReversePermute(cur); // back to natural order for the iNTT
        cosetInttNNExt(cur, layer_shift);
    }
    ctx.record(NttKernel{log2Exact(cur.size()), 2, /*inverse=*/true,
                         /*coset=*/true, /*bitrevOutput=*/false,
                         PolyLayout::PolyMajor},
               "FRI: final poly iNTT");
    for (size_t i = poly_len; i < cur.size(); ++i) {
        unizk_assert(cur[i].isZero(),
                     "FRI residual polynomial exceeds degree bound");
    }
    cur.resize(poly_len);
    proof.finalPoly = cur;
    for (const auto &c : proof.finalPoly) {
        challenger.observe(c.limb(0));
        challenger.observe(c.limb(1));
    }

    // ---- Proof-of-work grinding. ----
    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::OtherHash);
        UNIZK_SPAN("fri/pow");
        const Fp pow_challenge = challenger.challenge();
        uint64_t nonce = 0;
        while (!powValid(pow_challenge, nonce, cfg.powBits))
            ++nonce;
        proof.powNonce = nonce;
        UNIZK_COUNTER_ADD("fri.pow_iterations", nonce + 1);
        ctx.record(HashKernel{nonce + 1}, "FRI: proof-of-work");
        challenger.observe(Fp(nonce));
    }

    // ---- Query phase. ----
    for (const auto &tree : layer_trees)
        proof.layerCaps.push_back(tree.cap());
    UNIZK_SPAN("fri/queries");
    UNIZK_COUNTER_ADD("fri.queries", cfg.numQueries);
    for (uint32_t q = 0; q < cfg.numQueries; ++q) {
        const size_t idx = fpIndexBelow(challenger.challenge(), domain);
        FriQueryRound round;
        for (const auto *batch : batches) {
            FriInitialOpening open;
            open.values = batch->tree().leaf(idx);
            open.proof = batch->tree().prove(idx);
            round.initial.push_back(std::move(open));
        }
        size_t cur_idx = idx;
        for (size_t l = 0; l < layer_trees.size(); ++l) {
            const size_t pair_idx = cur_idx >> 1;
            FriLayerOpening open;
            open.pair = {layer_values[l][2 * pair_idx],
                         layer_values[l][2 * pair_idx + 1]};
            open.proof = layer_trees[l].prove(pair_idx);
            round.layers.push_back(std::move(open));
            cur_idx = pair_idx;
        }
        proof.queries.push_back(std::move(round));
    }
    return proof;
}

bool
friVerify(const std::vector<FriBatchInfo> &batches, size_t degree_bound,
          const std::vector<Fp2> &points,
          const std::vector<std::vector<Fp2>> &openings,
          const FriProof &proof, Challenger &challenger,
          const FriConfig &cfg)
{
    const size_t n = degree_bound;
    const size_t domain = n << cfg.blowupBits;
    const size_t num_polys = totalPolyCount(batches);

    // Number of folding layers the prover must have produced.
    size_t expected_layers = 0;
    {
        size_t len = n;
        while (len > cfg.finalPolyLen) {
            len /= 2;
            ++expected_layers;
        }
    }
    if (proof.layerCaps.size() != expected_layers)
        return false;
    if (proof.finalPoly.size() > std::min<size_t>(cfg.finalPolyLen, n))
        return false;
    if (proof.queries.size() != cfg.numQueries)
        return false;

    const Fp2 alpha = challenger.challengeExt();
    const auto alpha_pows = alphaPowers(alpha, num_polys + points.size());
    const auto b_z = combinedOpenings(openings, alpha_pows, num_polys);

    // Replay the transcript: caps, betas, final polynomial, PoW.
    std::vector<Fp2> betas;
    for (const auto &cap : proof.layerCaps) {
        for (const auto &digest : cap)
            challenger.observe(digest);
        betas.push_back(challenger.challengeExt());
    }
    for (const auto &c : proof.finalPoly) {
        challenger.observe(c.limb(0));
        challenger.observe(c.limb(1));
    }
    const Fp pow_challenge = challenger.challenge();
    if (!powValid(pow_challenge, proof.powNonce, cfg.powBits))
        return false;
    challenger.observe(Fp(proof.powNonce));

    const Fp w_domain = Fp::primitiveRootOfUnity(log2Exact(domain));
    const uint32_t log_domain = log2Exact(domain);

    for (const auto &round : proof.queries) {
        const size_t idx = fpIndexBelow(challenger.challenge(), domain);
        if (round.initial.size() != batches.size())
            return false;
        if (round.layers.size() != expected_layers)
            return false;

        // Verify initial tree openings and combine into B(x).
        Fp2 b_x;
        size_t k = 0;
        for (size_t bi = 0; bi < batches.size(); ++bi) {
            const auto &open = round.initial[bi];
            if (open.values.size() != batches[bi].polyCount)
                return false;
            if (!MerkleTree::verify(open.values, idx, open.proof,
                                    batches[bi].cap, log_domain)) {
                return false;
            }
            for (const Fp v : open.values)
                b_x += alpha_pows[k++] * Fp2(v);
        }

        // DEEP quotient at the query point.
        const Fp x = cfg.shift() * w_domain.pow(reverseBits(idx,
                                                            log_domain));
        Fp2 expected;
        for (size_t j = 0; j < points.size(); ++j) {
            const Fp2 denom = Fp2(x) - points[j];
            expected += alpha_pows[num_polys + j] * (b_x - b_z[j]) *
                        denom.inverse();
        }

        // Walk the folded layers.
        size_t cur_idx = idx;
        size_t cur_domain = domain;
        Fp cur_shift = cfg.shift();
        Fp cur_w = w_domain;
        const Fp inv2 = Fp(2).inverse();
        for (size_t l = 0; l < expected_layers; ++l) {
            const size_t pair_idx = cur_idx >> 1;
            const auto &open = round.layers[l];
            if (open.pair[cur_idx & 1] != expected)
                return false;
            // Layer l's tree commits cur_domain/2 pair-leaves.
            if (!MerkleTree::verify(packPair(open.pair[0], open.pair[1]),
                                    pair_idx, open.proof,
                                    proof.layerCaps[l],
                                    log2Exact(cur_domain) - 1)) {
                return false;
            }
            const uint32_t log_half = log2Exact(cur_domain) - 1;
            const Fp y =
                cur_shift * cur_w.pow(reverseBits(pair_idx, log_half));
            const Fp2 even = (open.pair[0] + open.pair[1]) * inv2;
            const Fp2 odd =
                (open.pair[0] - open.pair[1]) * y.doubled().inverse();
            expected = even + betas[l] * odd;

            cur_idx = pair_idx;
            cur_domain /= 2;
            cur_shift = cur_shift.squared();
            cur_w = cur_w.squared();
        }

        // Final polynomial check.
        const Fp x_final =
            cur_shift * cur_w.pow(reverseBits(cur_idx,
                                              log2Exact(cur_domain)));
        Fp2 final_eval;
        for (size_t i = proof.finalPoly.size(); i-- > 0;)
            final_eval = final_eval * Fp2(x_final) + proof.finalPoly[i];
        if (final_eval != expected)
            return false;
    }
    return true;
}

} // namespace unizk
