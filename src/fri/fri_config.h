/**
 * @file
 * FRI parameters. The two presets correspond to the paper's protocol
 * configurations: Plonky2 uses a blowup factor of at least 8 and Starky
 * uses a blowup factor of 2 (Section 2.2). Query counts are derived so
 * that query soundness plus proof-of-work grinding reaches the target
 * conjectured security level (~100 bits in the paper's evaluation).
 */

#ifndef UNIZK_FRI_FRI_CONFIG_H
#define UNIZK_FRI_FRI_CONFIG_H

#include <cstdint>

#include "common/bits.h"
#include "field/goldilocks.h"
#include "ntt/ntt.h"

namespace unizk {

struct FriConfig
{
    /** log2 of the LDE blowup factor k. */
    uint32_t blowupBits = 3;

    /** Merkle cap height for all commitment trees. */
    uint32_t capHeight = 4;

    /** Proof-of-work grinding bits. */
    uint32_t powBits = 10;

    /** Number of query rounds. */
    uint32_t numQueries = 28;

    /** Maximum length (coefficient count) of the final polynomial. */
    uint32_t finalPolyLen = 32;

    /** Blowup factor k = 2^blowupBits. */
    uint32_t blowup() const { return uint32_t{1} << blowupBits; }

    /** LDE coset shift. */
    Fp shift() const { return defaultCosetShift(); }

    /** Conjectured security: one bit per query per blowup bit + PoW. */
    uint32_t
    conjecturedSecurityBits() const
    {
        return numQueries * blowupBits + powBits;
    }

    /**
     * Plonky2-style configuration: blowup 8. Query count chosen for
     * ~100-bit conjectured security as in the paper's workloads.
     */
    static FriConfig
    plonky2()
    {
        FriConfig cfg;
        cfg.blowupBits = 3;
        cfg.capHeight = 4;
        cfg.powBits = 16;
        cfg.numQueries = 28;
        cfg.finalPolyLen = 32;
        return cfg;
    }

    /** Starky-style configuration: blowup 2, many more queries. */
    static FriConfig
    starky()
    {
        FriConfig cfg;
        cfg.blowupBits = 1;
        cfg.capHeight = 4;
        cfg.powBits = 16;
        cfg.numQueries = 84;
        cfg.finalPolyLen = 32;
        return cfg;
    }

    /**
     * Testing configuration: small grinding cost, fewer queries, so
     * unit tests stay fast. Not secure; shapes identical.
     */
    static FriConfig
    testing()
    {
        FriConfig cfg;
        cfg.blowupBits = 3;
        cfg.capHeight = 1;
        cfg.powBits = 4;
        cfg.numQueries = 6;
        cfg.finalPolyLen = 8;
        return cfg;
    }
};

} // namespace unizk

#endif // UNIZK_FRI_FRI_CONFIG_H
