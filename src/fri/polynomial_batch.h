/**
 * @file
 * A committed batch of polynomials: coefficient form plus a Merkle tree
 * over the low-degree extension, with leaves holding the values of all
 * polynomials at one LDE point (index-major), exactly the leaf layout
 * of Figure 1 step 3 in the paper.
 *
 * LDE values are stored in bit-reversed index order so that FRI folding
 * pairs (x, -x) sit in adjacent leaves.
 */

#ifndef UNIZK_FRI_POLYNOMIAL_BATCH_H
#define UNIZK_FRI_POLYNOMIAL_BATCH_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "field/extension.h"
#include "fri/fri_config.h"
#include "merkle/merkle_tree.h"
#include "poly/polynomial.h"
#include "trace/prover_context.h"

namespace unizk {

class PolynomialBatch
{
  public:
    /**
     * Commit to polynomials given by their evaluations over the size-n
     * subgroup H (value form, natural order). Performs iNTT^NN per
     * polynomial, then the coset LDE and Merkle construction.
     */
    static PolynomialBatch fromValues(std::vector<std::vector<Fp>> values,
                                      const FriConfig &cfg,
                                      const ProverContext &ctx,
                                      const std::string &label);

    /** Commit to polynomials already in coefficient form (length n). */
    static PolynomialBatch
    fromCoefficients(std::vector<std::vector<Fp>> coeffs,
                     const FriConfig &cfg, const ProverContext &ctx,
                     const std::string &label);

    /** Degree bound n (power of two). */
    size_t degreeBound() const { return n_; }

    size_t polyCount() const { return coeffs_.size(); }

    /** LDE domain size n * blowup. */
    size_t ldeSize() const { return n_ << cfg_.blowupBits; }

    const MerkleCap &cap() const { return tree_->cap(); }

    const MerkleTree &tree() const { return *tree_; }

    /** Coefficients of polynomial @p i. */
    const std::vector<Fp> &coefficients(size_t i) const
    {
        return coeffs_[i];
    }

    /**
     * Value of polynomial @p poly at bit-reversed LDE index @p index
     * (i.e. the contents of leaf @p index).
     */
    Fp
    ldeValue(size_t poly, size_t index) const
    {
        return tree_->leaf(index)[poly];
    }

    /** Evaluate polynomial @p i at an extension point. */
    Fp2 evalExt(size_t i, Fp2 z) const;

    /** Evaluate all polynomials at @p z. */
    std::vector<Fp2> evalAllExt(Fp2 z) const;

  private:
    PolynomialBatch(std::vector<std::vector<Fp>> coeffs,
                    const FriConfig &cfg, const ProverContext &ctx,
                    const std::string &label);

    std::vector<std::vector<Fp>> coeffs_;
    size_t n_;
    FriConfig cfg_;
    std::unique_ptr<MerkleTree> tree_;
};

} // namespace unizk

#endif // UNIZK_FRI_POLYNOMIAL_BATCH_H
