#include "fri/polynomial_batch.h"

#include <memory>

#include "common/thread_pool.h"
#include "ntt/ntt.h"
#include "obs/obs.h"

namespace unizk {

PolynomialBatch
PolynomialBatch::fromValues(std::vector<std::vector<Fp>> values,
                            const FriConfig &cfg, const ProverContext &ctx,
                            const std::string &label)
{
    unizk_assert(!values.empty(), "empty polynomial batch");
    const size_t n = values[0].size();
    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::Ntt);
        UNIZK_SPAN("commit/values-intt");
        inttBatchNN(values);
    }
    ctx.record(NttKernel{log2Exact(n), values.size(), /*inverse=*/true,
                         /*coset=*/false, /*bitrevOutput=*/false,
                         PolyLayout::PolyMajor},
               label + ": iNTT^NN");
    return PolynomialBatch(std::move(values), cfg, ctx, label);
}

PolynomialBatch
PolynomialBatch::fromCoefficients(std::vector<std::vector<Fp>> coeffs,
                                  const FriConfig &cfg,
                                  const ProverContext &ctx,
                                  const std::string &label)
{
    return PolynomialBatch(std::move(coeffs), cfg, ctx, label);
}

PolynomialBatch::PolynomialBatch(std::vector<std::vector<Fp>> coeffs,
                                 const FriConfig &cfg,
                                 const ProverContext &ctx,
                                 const std::string &label)
    : coeffs_(std::move(coeffs)), n_(coeffs_.at(0).size()), cfg_(cfg)
{
    unizk_assert(isPowerOfTwo(n_), "degree bound must be a power of two");
    const size_t lde_size = ldeSize();
    const size_t num_polys = coeffs_.size();

    // Coset LDE per polynomial (NTT^NR), building the index-major
    // leaves on the fly: leaf i = values of all polynomials at LDE
    // point i (bit-reversed order).
    std::vector<std::vector<Fp>> leaves(lde_size);
    parallelFor(0, lde_size, /*grain=*/512, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            leaves[i].resize(num_polys);
    });
    {
        std::vector<std::vector<Fp>> ldes;
        {
            ScopedKernelTimer timer(ctx.breakdown, KernelClass::Ntt);
            UNIZK_SPAN("commit/lde");
            ldes = ldeBatch(coeffs_, cfg_.blowup(), cfg_.shift());
        }
        // Poly-major -> index-major transpose while forming leaves; on
        // the CPU this is real work (Table 1's Layout Transform), on
        // UniZK the transpose buffer hides it. Parallel over leaf rows:
        // each destination row is written by exactly one chunk.
        ScopedKernelTimer timer(ctx.breakdown,
                                KernelClass::LayoutTransform);
        UNIZK_SPAN("commit/leaf-transpose");
        parallelFor(0, lde_size, /*grain=*/256,
                    [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i)
                            for (size_t p = 0; p < num_polys; ++p)
                                leaves[i][p] = ldes[p][i];
                    });
    }
    ctx.record(NttKernel{log2Exact(lde_size), num_polys, /*inverse=*/false,
                         /*coset=*/true, /*bitrevOutput=*/true,
                         PolyLayout::PolyMajor},
               label + ": LDE coset-NTT^NR");
    // Forming index-major leaves from poly-major LDE output is the
    // layout transform the global transpose buffer hides on UniZK.
    ctx.record(TransposeKernel{num_polys, lde_size},
               label + ": leaf transpose");

    const uint32_t cap_height =
        std::min<uint32_t>(cfg_.capHeight, log2Exact(lde_size));
    {
        ScopedKernelTimer timer(ctx.breakdown, KernelClass::MerkleTree);
        UNIZK_SPAN("commit/merkle-tree");
        tree_ = std::make_unique<MerkleTree>(std::move(leaves), cap_height);
    }
    ctx.record(MerkleKernel{lde_size, static_cast<uint32_t>(num_polys),
                            cap_height},
               label + ": Merkle tree");
}

Fp2
PolynomialBatch::evalExt(size_t i, Fp2 z) const
{
    const auto &c = coeffs_.at(i);
    Fp2 acc;
    for (size_t k = c.size(); k-- > 0;)
        acc = acc * z + Fp2(c[k]);
    return acc;
}

std::vector<Fp2>
PolynomialBatch::evalAllExt(Fp2 z) const
{
    std::vector<Fp2> out(coeffs_.size());
    parallelFor(0, coeffs_.size(), /*grain=*/1,
                [&](size_t lo, size_t hi) {
                    for (size_t i = lo; i < hi; ++i)
                        out[i] = evalExt(i, z);
                });
    return out;
}

} // namespace unizk
