#include "poly/polynomial.h"

#include <algorithm>

#include "common/bits.h"
#include "ntt/ntt.h"

namespace unizk {

Polynomial
Polynomial::constant(Fp c)
{
    return Polynomial(std::vector<Fp>{c});
}

Polynomial
Polynomial::monomial(Fp c, size_t d)
{
    std::vector<Fp> coeffs(d + 1, Fp::zero());
    coeffs[d] = c;
    return Polynomial(std::move(coeffs));
}

void
Polynomial::trim()
{
    while (!coeffs_.empty() && coeffs_.back().isZero())
        coeffs_.pop_back();
}

Fp
Polynomial::eval(Fp x) const
{
    Fp acc;
    for (size_t i = coeffs_.size(); i-- > 0;)
        acc = acc * x + coeffs_[i];
    return acc;
}

Fp2
Polynomial::evalExt(Fp2 x) const
{
    Fp2 acc;
    for (size_t i = coeffs_.size(); i-- > 0;)
        acc = acc * x + Fp2(coeffs_[i]);
    return acc;
}

Polynomial
Polynomial::operator+(const Polynomial &o) const
{
    std::vector<Fp> out(std::max(coeffs_.size(), o.coeffs_.size()));
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = coeff(i) + o.coeff(i);
    return Polynomial(std::move(out));
}

Polynomial
Polynomial::operator-(const Polynomial &o) const
{
    std::vector<Fp> out(std::max(coeffs_.size(), o.coeffs_.size()));
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = coeff(i) - o.coeff(i);
    return Polynomial(std::move(out));
}

Polynomial
Polynomial::operator*(const Polynomial &o) const
{
    if (isZero() || o.isZero())
        return Polynomial();

    const size_t out_len = coeffs_.size() + o.coeffs_.size() - 1;
    constexpr size_t ntt_threshold = 64;
    if (out_len < ntt_threshold) {
        std::vector<Fp> out(out_len, Fp::zero());
        for (size_t i = 0; i < coeffs_.size(); ++i)
            for (size_t j = 0; j < o.coeffs_.size(); ++j)
                out[i + j] += coeffs_[i] * o.coeffs_[j];
        return Polynomial(std::move(out));
    }

    const size_t n = nextPowerOfTwo(out_len);
    std::vector<Fp> a(coeffs_), b(o.coeffs_);
    a.resize(n, Fp::zero());
    b.resize(n, Fp::zero());
    // NR/RN pairing: the pointwise product is order-agnostic, so using
    // bit-reversed evaluations skips both permutation passes of the
    // NN/NN round trip.
    nttNR(a);
    nttNR(b);
    for (size_t i = 0; i < n; ++i)
        a[i] *= b[i];
    inttRN(a);
    a.resize(out_len);
    return Polynomial(std::move(a));
}

Polynomial
Polynomial::scaled(Fp c) const
{
    std::vector<Fp> out(coeffs_);
    for (auto &x : out)
        x *= c;
    return Polynomial(std::move(out));
}

Polynomial
Polynomial::divideByLinear(Fp z, Fp *remainder) const
{
    if (coeffs_.empty()) {
        if (remainder)
            *remainder = Fp::zero();
        return Polynomial();
    }
    std::vector<Fp> out(coeffs_.size() - 1);
    Fp carry;
    for (size_t i = coeffs_.size(); i-- > 0;) {
        const Fp c = coeffs_[i] + carry * z;
        if (i == 0) {
            if (remainder)
                *remainder = c;
        } else {
            out[i - 1] = c;
            carry = c;
        }
    }
    return Polynomial(std::move(out));
}

Polynomial
Polynomial::longDivide(const Polynomial &divisor,
                       Polynomial *remainder_out) const
{
    unizk_assert(!divisor.isZero(), "division by zero polynomial");
    std::vector<Fp> rem(coeffs_);
    const size_t d = divisor.coeffs_.size();
    if (rem.size() < d) {
        if (remainder_out)
            *remainder_out = *this;
        return Polynomial();
    }
    const Fp lead_inv = divisor.coeffs_.back().inverse();
    std::vector<Fp> quot(rem.size() - d + 1, Fp::zero());
    for (size_t i = rem.size(); i >= d;) {
        --i;
        const Fp q = rem[i] * lead_inv;
        quot[i - (d - 1)] = q;
        if (!q.isZero()) {
            for (size_t j = 0; j < d; ++j)
                rem[i - (d - 1) + j] -= q * divisor.coeffs_[j];
        }
    }
    if (remainder_out)
        *remainder_out = Polynomial(std::move(rem));
    return Polynomial(std::move(quot));
}

Polynomial
Polynomial::interpolate(const std::vector<Fp> &xs, const std::vector<Fp> &ys)
{
    unizk_assert(xs.size() == ys.size(), "interpolate: size mismatch");
    Polynomial acc;
    for (size_t i = 0; i < xs.size(); ++i) {
        // Basis polynomial L_i(X) = prod_{j != i} (X - x_j)/(x_i - x_j).
        Polynomial basis = Polynomial::constant(Fp::one());
        Fp denom = Fp::one();
        for (size_t j = 0; j < xs.size(); ++j) {
            if (j == i)
                continue;
            basis = basis * Polynomial(
                std::vector<Fp>{xs[j].neg(), Fp::one()});
            denom *= xs[i] - xs[j];
        }
        acc = acc + basis.scaled(ys[i] * denom.inverse());
    }
    return acc;
}

std::vector<Fp>
vecAdd(const std::vector<Fp> &a, const std::vector<Fp> &b)
{
    unizk_assert(a.size() == b.size(), "vecAdd size mismatch");
    std::vector<Fp> out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

std::vector<Fp>
vecSub(const std::vector<Fp> &a, const std::vector<Fp> &b)
{
    unizk_assert(a.size() == b.size(), "vecSub size mismatch");
    std::vector<Fp> out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

std::vector<Fp>
vecMul(const std::vector<Fp> &a, const std::vector<Fp> &b)
{
    unizk_assert(a.size() == b.size(), "vecMul size mismatch");
    std::vector<Fp> out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

std::vector<Fp>
vecScale(const std::vector<Fp> &a, Fp c)
{
    std::vector<Fp> out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * c;
    return out;
}

std::vector<Fp>
vecAddScalar(const std::vector<Fp> &a, Fp c)
{
    std::vector<Fp> out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + c;
    return out;
}

std::vector<Fp>
quotientChunkProducts(const std::vector<Fp> &q, size_t chunk_size)
{
    unizk_assert(chunk_size > 0 && q.size() % chunk_size == 0,
                 "chunk size must divide input length");
    std::vector<Fp> h(q.size() / chunk_size);
    for (size_t i = 0; i < h.size(); ++i) {
        Fp acc = Fp::one();
        for (size_t j = 0; j < chunk_size; ++j)
            acc *= q[i * chunk_size + j];
        h[i] = acc;
    }
    return h;
}

std::vector<Fp>
partialProducts(const std::vector<Fp> &h)
{
    std::vector<Fp> pp(h.size());
    Fp acc = Fp::one();
    for (size_t i = 0; i < h.size(); ++i) {
        acc *= h[i];
        pp[i] = acc;
    }
    return pp;
}

std::vector<Fp>
partialProductsGrouped(const std::vector<Fp> &h, size_t group_size)
{
    unizk_assert(group_size > 0, "group size must be positive");
    const size_t num_groups = ceilDiv(h.size(), group_size);
    std::vector<Fp> pp(h.size());

    // Step 1: local partial products Z_k[j] within each group (each PE
    // works on its own register-file group, Fig. 6b step 1).
    for (size_t k = 0; k < num_groups; ++k) {
        const size_t base = k * group_size;
        const size_t len = std::min(group_size, h.size() - base);
        Fp acc = Fp::one();
        for (size_t j = 0; j < len; ++j) {
            acc *= h[base + j];
            pp[base + j] = acc;
        }
    }

    // Step 2: propagate each group's last product to the next neighbor
    // (the serial systolic chain).
    std::vector<Fp> prefix(num_groups, Fp::one());
    for (size_t k = 1; k < num_groups; ++k) {
        const size_t last = std::min(k * group_size, h.size()) - 1;
        prefix[k] = prefix[k - 1] * pp[last];
    }

    // Step 3: each PE scales its local products by the received prefix.
    for (size_t k = 1; k < num_groups; ++k) {
        const size_t base = k * group_size;
        const size_t len = std::min(group_size, h.size() - base);
        for (size_t j = 0; j < len; ++j)
            pp[base + j] *= prefix[k];
    }
    return pp;
}

std::vector<Fp>
vanishingOnCoset(size_t n, uint32_t blowup, Fp shift)
{
    // Z_H(shift * w^j) = shift^N * (w^N)^j - 1, periodic with period
    // `blowup` because w^N has order `blowup` in the big domain.
    const size_t big = n * blowup;
    const Fp w_n = Fp::primitiveRootOfUnity(log2Exact(big)).pow(n);
    const Fp shift_n = shift.pow(n);
    std::vector<Fp> out(big);
    Fp cur = shift_n;
    for (uint32_t j = 0; j < blowup; ++j) {
        const Fp val = cur - Fp::one();
        for (size_t i = j; i < big; i += blowup)
            out[i] = val;
        cur *= w_n;
    }
    return out;
}

} // namespace unizk
