/**
 * @file
 * Univariate polynomials over the Goldilocks field, in coefficient form,
 * plus the element-wise value-vector helpers the PIOP layer uses.
 *
 * The protocol code mostly works on *evaluation vectors* over power-of-two
 * subgroups; the Polynomial class is used when explicit coefficient-form
 * manipulation (division, opening quotients) is required.
 */

#ifndef UNIZK_POLY_POLYNOMIAL_H
#define UNIZK_POLY_POLYNOMIAL_H

#include <cstdint>
#include <vector>

#include "field/extension.h"
#include "field/goldilocks.h"

namespace unizk {

/** Dense univariate polynomial; coeffs[i] multiplies X^i. */
class Polynomial
{
  public:
    Polynomial() = default;

    explicit Polynomial(std::vector<Fp> coeffs) : coeffs_(std::move(coeffs))
    {
        trim();
    }

    /** The constant polynomial c. */
    static Polynomial constant(Fp c);

    /** The monomial c * X^d. */
    static Polynomial monomial(Fp c, size_t d);

    const std::vector<Fp> &coeffs() const { return coeffs_; }

    bool isZero() const { return coeffs_.empty(); }

    /** Degree; the zero polynomial reports degree 0. */
    size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }

    /** Coefficient of X^i (0 beyond the stored degree). */
    Fp
    coeff(size_t i) const
    {
        return i < coeffs_.size() ? coeffs_[i] : Fp::zero();
    }

    /** Evaluate at a base-field point (Horner). */
    Fp eval(Fp x) const;

    /** Evaluate at an extension-field point. */
    Fp2 evalExt(Fp2 x) const;

    Polynomial operator+(const Polynomial &o) const;
    Polynomial operator-(const Polynomial &o) const;

    /** Product; uses NTT above a size threshold, schoolbook below. */
    Polynomial operator*(const Polynomial &o) const;

    /** Scale all coefficients. */
    Polynomial scaled(Fp c) const;

    /**
     * Divide by the linear factor (X - z) using synthetic (Ruffini)
     * division. @p remainder receives p(z).
     */
    Polynomial divideByLinear(Fp z, Fp *remainder = nullptr) const;

    /**
     * General polynomial long division.
     * @return quotient; @p remainder_out receives the remainder.
     */
    Polynomial longDivide(const Polynomial &divisor,
                          Polynomial *remainder_out = nullptr) const;

    friend bool
    operator==(const Polynomial &a, const Polynomial &b)
    {
        return a.coeffs_ == b.coeffs_;
    }

    /**
     * Interpolate the unique polynomial of degree < n through the points
     * (xs[i], ys[i]) by Lagrange's formula. O(n^2); intended for small n
     * (e.g. FRI final-polynomial checks in tests).
     */
    static Polynomial interpolate(const std::vector<Fp> &xs,
                                  const std::vector<Fp> &ys);

  private:
    void trim();

    std::vector<Fp> coeffs_;
};

/**
 * Element-wise value-vector operations. These correspond to the
 * "polynomial computations" kernel class in the paper (Table 1) and are
 * what the UniZK vector mode executes.
 * @{
 */
std::vector<Fp> vecAdd(const std::vector<Fp> &a, const std::vector<Fp> &b);
std::vector<Fp> vecSub(const std::vector<Fp> &a, const std::vector<Fp> &b);
std::vector<Fp> vecMul(const std::vector<Fp> &a, const std::vector<Fp> &b);
std::vector<Fp> vecScale(const std::vector<Fp> &a, Fp c);
std::vector<Fp> vecAddScalar(const std::vector<Fp> &a, Fp c);
/** @} */

/**
 * Quotient-chunk products (paper Eq. 1): h[i] = prod of each
 * @p chunk_size -element chunk of q. q.size() must be a multiple of
 * chunk_size.
 */
std::vector<Fp> quotientChunkProducts(const std::vector<Fp> &q,
                                      size_t chunk_size);

/**
 * Running partial products (paper Eq. 2): PP[i] = h[0] * ... * h[i].
 */
std::vector<Fp> partialProducts(const std::vector<Fp> &h);

/**
 * The grouped three-step partial-product schedule from Figure 6b: split
 * h into groups of @p group_size, compute local partial products, then a
 * serial inter-group propagate, then a local finalize. Functionally equal
 * to partialProducts(); mirrors the hardware mapping so tests can pin
 * down the scheme the simulator models.
 */
std::vector<Fp> partialProductsGrouped(const std::vector<Fp> &h,
                                       size_t group_size);

/**
 * Evaluations of the vanishing polynomial Z_H(X) = X^N - 1 of the size-N
 * subgroup H, over the coset shift*K where |K| = N * blowup, in natural
 * order. Z_H is constant on cosets of H inside K, so only `blowup`
 * distinct values exist; this returns the full expanded vector.
 */
std::vector<Fp> vanishingOnCoset(size_t n, uint32_t blowup, Fp shift);

} // namespace unizk

#endif // UNIZK_POLY_POLYNOMIAL_H
