/**
 * @file
 * Bounded MPMC job queue: the admission-control point of the proving
 * service. Producers (connection threads) never block -- tryPush
 * reports Full so the caller can send a typed backpressure error
 * instead of stalling the socket. Consumers (prover lanes) block in
 * pop() until work arrives or the queue is closed and drained, which
 * is what gives shutdown its drain-then-exit semantics: close() stops
 * admissions while every job already admitted still gets executed.
 */

#ifndef UNIZK_SERVICE_JOB_QUEUE_H
#define UNIZK_SERVICE_JOB_QUEUE_H

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/sync.h"

namespace unizk {
namespace service {

enum class PushResult
{
    Ok,
    Full,   ///< at capacity: reject with ErrorCode::QueueFull
    Closed, ///< shutting down: reject with ErrorCode::ShuttingDown
};

template <typename T> class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    /**
     * Admit @p item unless the queue is full or closed. On success,
     * @p depth_out (when non-null) receives the number of jobs that
     * were ahead of this one. The write happens under the queue mutex
     * *before* the item becomes visible to consumers, so @p depth_out
     * may point into the item itself (pop() acquires the same mutex,
     * which sequences the consumer's read after it).
     */
    PushResult
    tryPush(T item, size_t *depth_out = nullptr)
    {
        MutexLock lock(mutex_);
        if (closed_)
            return PushResult::Closed;
        if (items_.size() >= capacity_)
            return PushResult::Full;
        if (depth_out != nullptr)
            *depth_out = items_.size();
        items_.push_back(std::move(item));
        ready_.notifyOne();
        return PushResult::Ok;
    }

    /**
     * Take the oldest job, blocking while the queue is open but empty.
     * Returns std::nullopt once the queue is closed *and* drained.
     */
    std::optional<T>
    pop()
    {
        MutexLock lock(mutex_);
        while (!closed_ && items_.empty())
            ready_.wait(mutex_);
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Stop admissions; queued jobs remain poppable until drained. */
    void
    close()
    {
        MutexLock lock(mutex_);
        closed_ = true;
        ready_.notifyAll();
    }

    size_t
    depth() const
    {
        MutexLock lock(mutex_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

  private:
    const size_t capacity_;
    mutable Mutex mutex_;
    CondVar ready_;
    std::deque<T> items_ UNIZK_GUARDED_BY(mutex_);
    bool closed_ UNIZK_GUARDED_BY(mutex_) = false;
};

} // namespace service
} // namespace unizk

#endif // UNIZK_SERVICE_JOB_QUEUE_H
