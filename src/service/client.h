/**
 * @file
 * Synchronous client for the unizkd proving service. One ServiceClient
 * owns one connection and issues closed-loop requests: send a frame,
 * block for the response frame, decode. Used by the unizk_client load
 * injector and by tests.
 */

#ifndef UNIZK_SERVICE_CLIENT_H
#define UNIZK_SERVICE_CLIENT_H

#include <optional>
#include <string>

#include "service/protocol.h"
#include "service/socket_io.h"

namespace unizk {
namespace service {

class ServiceClient
{
  public:
    /** Connect to the daemon at @p socket_path. Check connected(). */
    explicit ServiceClient(const std::string &socket_path);

    bool connected() const { return fd_.valid(); }

    /**
     * Issue one request and wait for the response. Returns nullopt on
     * transport failure (disconnect, truncated/oversized response);
     * protocol-level rejections come back as Tag::Error frames.
     */
    std::optional<ResponseFrame> prove(const ProveRequest &req);
    std::optional<ResponseFrame> ping();
    std::optional<ResponseFrame> shutdownServer();

    /** Rotate and fetch the daemon's stats window (Tag::GetStats).
     *  Safe to issue while other connections are mid-request. */
    std::optional<ResponseFrame> getStats();

    /** Send raw payload bytes as one frame (tests: malformed input). */
    bool sendRaw(const std::vector<uint8_t> &payload);

    /** Read and decode one response frame (pairs with sendRaw). */
    std::optional<ResponseFrame> readResponse();

    /** Drop the connection (tests: mid-request disconnect). */
    void disconnect() { fd_.reset(); }

  private:
    std::optional<ResponseFrame>
    roundTrip(const std::vector<uint8_t> &payload);

    Fd fd_;
};

} // namespace service
} // namespace unizk

#endif // UNIZK_SERVICE_CLIENT_H
