/**
 * @file
 * unizkd: the long-running proving service daemon.
 *
 *   unizkd --socket /tmp/unizkd.sock --queue-capacity 16 --lanes 2 \
 *          [--threads N] [--stats-json stats.json] [--max-runs K] \
 *          [--stats-interval SECS] [--stats-windows windows.jsonl]
 *
 * Runs until SIGINT/SIGTERM or a protocol Shutdown frame, then drains:
 * admitted jobs finish, in-flight responses are written, the socket is
 * unlinked, and (when --stats-json is given and at least one proof
 * completed) a unizk-stats-v2 document with per-request latency and
 * queue-depth histograms is written before exiting 0.
 *
 * With --stats-interval S the main thread rotates the stats window
 * every S seconds and appends one unizk-stats-v3 record per rotation
 * to the --stats-windows file (default <socket>.windows.jsonl). Every
 * rotation goes through ProofService::statsWindow(), so GetStats polls
 * from unizk_top land in the same log and the sequence numbers stay
 * contiguous -- summing the logged deltas reproduces the cumulative
 * totals exactly (checked by tools/obs/validate_obs_json.py in CI).
 */

#include <csignal>
#include <cstdio>
#include <thread>

#include "common/cli.h"
#include "common/logging.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "obs/json_writer.h"
#include "obs/obs.h"
#include "obs/stats_export.h"
#include "service/server.h"

namespace {

using namespace unizk;

/**
 * Serialized sink for stats-window JSONL records: rotations can come
 * from the periodic exporter (main thread) and GetStats handlers
 * (connection threads) concurrently, but appends must not interleave
 * mid-line.
 */
struct WindowLog
{
    std::string path;
    Mutex mutex;
    uint64_t written UNIZK_GUARDED_BY(mutex) = 0;
    bool failed UNIZK_GUARDED_BY(mutex) = false;

    void
    append(const obs::StatsSnapshot &snap)
    {
        const std::string line = obs::snapshotToJson(snap) + "\n";
        MutexLock lock(mutex);
        if (obs::appendFile(path, line)) {
            written++;
        } else if (!failed) {
            failed = true; // warn once, keep serving
            warn("unizkd: cannot append stats window to ", path);
        }
    }
};

void
printLatencySummary(const service::ServiceCounters &c)
{
    const auto histos = obs::histogramSnapshot();
    std::printf("unizkd: %llu requests, %llu rejected (queue full), "
                "%llu bad, %llu disconnects\n",
                static_cast<unsigned long long>(c.requestsCompleted),
                static_cast<unsigned long long>(c.rejectedQueueFull),
                static_cast<unsigned long long>(c.rejectedBadRequest),
                static_cast<unsigned long long>(c.disconnects));
    const auto it = histos.find("service.request_latency_ns");
    if (it != histos.end() && it->second.count > 0) {
        std::printf(
            "unizkd: request latency p50 %.1f ms, p99 %.1f ms "
            "(%llu samples)\n",
            obs::histogramQuantile(it->second, 0.5) / 1e6,
            obs::histogramQuantile(it->second, 0.99) / 1e6,
            static_cast<unsigned long long>(it->second.count));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Block the shutdown signals before any thread exists (the pool
    // workers applyGlobalCliOptions spawns inherit the mask), then
    // consume them with sigwait on a dedicated thread: no
    // async-signal-handler code at all, and no thread left with the
    // default terminate disposition.
    sigset_t stop_signals;
    sigemptyset(&stop_signals);
    sigaddset(&stop_signals, SIGINT);
    sigaddset(&stop_signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

    CliOptions cli(argc, argv);
    applyGlobalCliOptions(cli);

    service::ServiceConfig cfg;
    cfg.socketPath = cli.getString("socket", "unizkd.sock");
    cfg.queueCapacity = cli.getUint("queue-capacity", 16);
    cfg.proverLanes =
        static_cast<unsigned>(cli.getUint("lanes", 2));
    cfg.maxStoredRuns = cli.getUint("max-runs", 1024);
    const std::string stats_path = cli.getString("stats-json", "");
    const double stats_interval =
        cli.getDouble("stats-interval", 0.0);

    WindowLog window_log;
    window_log.path = cli.getString(
        "stats-windows",
        stats_interval > 0 ? cfg.socketPath + ".windows.jsonl" : "");
    if (!window_log.path.empty()) {
        cfg.windowSink = [&window_log](
                             const obs::StatsSnapshot &snap) {
            window_log.append(snap);
        };
    }

    // Histograms feed both the shutdown summary and --stats-json, so
    // observability is always on in the daemon.
    obs::setEnabled(true);

    service::ProofService svc(cfg);
    if (!svc.start())
        return 1;

    std::thread signal_thread([&] {
        int sig = 0;
        sigwait(&stop_signals, &sig);
        inform("unizkd: caught signal ", sig, ", draining");
        svc.requestStop();
    });

    if (stats_interval > 0) {
        inform("unizkd: exporting stats windows every ",
               stats_interval, "s to ", window_log.path);
        // Each tick rotates through statsWindow(), the same path
        // GetStats takes, so the JSONL log sees one contiguous
        // rotation stream. A final rotation at shutdown captures the
        // tail window.
        while (!svc.waitForStopRequestFor(stats_interval))
            svc.statsWindow();
        svc.statsWindow();
    } else {
        svc.waitForStopRequest();
    }
    svc.stop();

    // A protocol Shutdown frame stops the service without a signal;
    // deliver one so the sigwait thread can be joined either way.
    pthread_kill(signal_thread.native_handle(), SIGTERM);
    signal_thread.join();

    const service::ServiceCounters counters = svc.counters();
    printLatencySummary(counters);

    if (!window_log.path.empty()) {
        MutexLock lock(window_log.mutex);
        std::printf(
            "unizkd: wrote %llu stats windows: %s\n",
            static_cast<unsigned long long>(window_log.written),
            window_log.path.c_str());
    }

    if (!stats_path.empty()) {
        const std::vector<obs::RunStats> runs = svc.runStats();
        if (runs.empty()) {
            warn("unizkd: no completed runs; skipping stats JSON ",
                 "(the unizk-stats-v2 schema requires at least one)");
        } else {
            const std::string doc =
                obs::statsToJson(runs, obs::counterSnapshot(),
                                 obs::histogramSnapshot());
            if (!obs::writeFile(stats_path, doc)) {
                warn("unizkd: cannot write ", stats_path);
                return 1;
            }
            std::printf("unizkd: wrote stats JSON: %s\n",
                        stats_path.c_str());
        }
    }
    return 0;
}
