#include "service/protocol.h"

#include "serialize/bytes.h"

namespace unizk {
namespace service {

namespace {

/** Append a length-prefixed byte string. */
void
putBytes(ByteWriter &w, const uint8_t *data, size_t len)
{
    w.putU64(len);
    w.putRaw(data, len);
}

/**
 * Read a length-prefixed byte string, bounded by the bytes actually
 * present (canRead) and by @p max_len before allocating.
 */
std::optional<std::vector<uint8_t>>
getBytes(ByteReader &r, uint64_t max_len)
{
    const uint64_t len = r.getU64();
    if (!r.ok() || len > max_len || !r.canRead(len, 1))
        return std::nullopt;
    std::vector<uint8_t> out = r.getRaw(len);
    if (!r.ok())
        return std::nullopt;
    return out;
}

/** Bounds on StatsOk payload cardinality, far above the registry caps
 *  (kMaxCounters/kMaxHistograms) but low enough that a malicious
 *  length claim cannot drive a large allocation loop. */
constexpr uint64_t kMaxStatsEntries = 1024;
constexpr uint64_t kMaxStatsNameBytes = 256;

void
putHistogramData(ByteWriter &w, const obs::HistogramData &data)
{
    w.putU64(data.count);
    w.putU64(data.sum);
    w.putU64(data.min);
    w.putU64(data.max);
    for (size_t b = 0; b < obs::kHistogramBuckets; ++b)
        w.putU64(data.buckets[b]);
}

bool
getHistogramData(ByteReader &r, obs::HistogramData &out)
{
    out.count = r.getU64();
    out.sum = r.getU64();
    out.min = r.getU64();
    out.max = r.getU64();
    for (size_t b = 0; b < obs::kHistogramBuckets; ++b)
        out.buckets[b] = r.getU64();
    return r.ok();
}

bool
validProveFields(const ProveRequest &req)
{
    if (req.protocol != WireProtocol::Plonky2 &&
        req.protocol != WireProtocol::Starky) {
        return false;
    }
    if (static_cast<uint64_t>(req.app) >
        static_cast<uint64_t>(AppId::Recursion)) {
        return false;
    }
    if (req.rows > kMaxRequestRows || req.reps > kMaxRequestReps)
        return false;
    if (req.protocol == WireProtocol::Starky &&
        !hasStarkImplementation(req.app)) {
        return false;
    }
    return true;
}

} // namespace

FriConfig
requestFriConfig(const ProveRequest &req)
{
    FriConfig cfg = req.protocol == WireProtocol::Plonky2
                        ? FriConfig::plonky2()
                        : FriConfig::starky();
    // Same knobs as unizk_cli --fast.
    if (req.fast) {
        cfg.powBits = 8;
        cfg.numQueries =
            req.protocol == WireProtocol::Plonky2 ? 8 : 16;
    }
    return cfg;
}

size_t
requestRows(const ProveRequest &req)
{
    return req.rows ? req.rows : defaultParams(req.app).rows;
}

size_t
requestReps(const ProveRequest &req)
{
    return req.reps ? req.reps : defaultParams(req.app).repetitions;
}

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadFrame:
        return "bad-frame";
    case ErrorCode::BadRequest:
        return "bad-request";
    case ErrorCode::QueueFull:
        return "queue-full";
    case ErrorCode::ShuttingDown:
        return "shutting-down";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeProveRequest(const ProveRequest &req)
{
    ByteWriter w;
    // Untraced requests keep the frozen v1 layout so a v2 client can
    // talk to a v1 server by simply not setting a trace id.
    w.putU64(static_cast<uint64_t>(req.traceId == 0 ? Tag::Prove
                                                    : Tag::ProveV2));
    w.putU64(static_cast<uint64_t>(req.protocol));
    w.putU64(static_cast<uint64_t>(req.app));
    w.putU64(req.rows);
    w.putU64(req.reps);
    const uint64_t flags =
        (req.fast ? 1u : 0u) | (req.verify ? 2u : 0u);
    w.putU64(flags);
    if (req.traceId != 0)
        w.putU64(req.traceId);
    return w.take();
}

std::vector<uint8_t>
encodePing()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Ping));
    return w.take();
}

std::vector<uint8_t>
encodeShutdown()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Shutdown));
    return w.take();
}

std::vector<uint8_t>
encodeGetStats()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::GetStats));
    return w.take();
}

std::vector<uint8_t>
encodeProofSection(const std::vector<uint8_t> &proof)
{
    ByteWriter w;
    putBytes(w, proof.data(), proof.size());
    return w.take();
}

std::vector<uint8_t>
finishProveResponse(const ProveResponse &resp,
                    const std::vector<uint8_t> &proof_section)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(
        resp.hasServerTiming ? Tag::ProveOkV2 : Tag::ProveOk));
    w.putU64(resp.verified ? 1 : 0);
    w.putU64(resp.latencyNs);
    w.putU64(resp.queueDepth);
    if (resp.hasServerTiming) {
        w.putU64(resp.traceId);
        w.putU64(resp.laneId);
        w.putU64(resp.queuedNs);
        w.putU64(resp.proveNs);
        w.putU64(resp.serializeNs);
    }
    w.putRaw(proof_section.data(), proof_section.size());
    return w.take();
}

std::vector<uint8_t>
encodeProveResponse(const ProveResponse &resp)
{
    return finishProveResponse(resp, encodeProofSection(resp.proof));
}

std::vector<uint8_t>
encodePong()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Pong));
    return w.take();
}

std::vector<uint8_t>
encodeShutdownAck()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::ShutdownAck));
    return w.take();
}

std::vector<uint8_t>
encodeError(ErrorCode code, const std::string &message)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Error));
    w.putU64(static_cast<uint64_t>(code));
    putBytes(w, reinterpret_cast<const uint8_t *>(message.data()),
             message.size());
    return w.take();
}

std::vector<uint8_t>
encodeStatsResponse(const StatsResponse &stats)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::StatsOk));
    w.putU64(stats.sequence);
    w.putU64(stats.windowStartNs);
    w.putU64(stats.windowEndNs);
    w.putU64(stats.queueDepth);
    w.putU64(stats.queueCapacity);
    w.putU64(stats.lanes);
    w.putU64(stats.lanesBusy);
    w.putU64(stats.spansDropped);
    w.putU64(stats.counters.size());
    for (const StatsCounterWindow &c : stats.counters) {
        putBytes(w, reinterpret_cast<const uint8_t *>(c.name.data()),
                 c.name.size());
        w.putU64(c.delta);
        w.putU64(c.cumulative);
    }
    w.putU64(stats.histograms.size());
    for (const StatsHistogramWindow &h : stats.histograms) {
        putBytes(w, reinterpret_cast<const uint8_t *>(h.name.data()),
                 h.name.size());
        putHistogramData(w, h.delta);
        putHistogramData(w, h.cumulative);
    }
    return w.take();
}

std::optional<RequestFrame>
decodeRequest(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    RequestFrame frame;
    const uint64_t tag = r.getU64();
    if (!r.ok())
        return std::nullopt;
    switch (static_cast<Tag>(tag)) {
    case Tag::Ping:
        frame.tag = Tag::Ping;
        break;
    case Tag::Shutdown:
        frame.tag = Tag::Shutdown;
        break;
    case Tag::GetStats:
        frame.tag = Tag::GetStats;
        break;
    case Tag::Prove:
    case Tag::ProveV2: {
        // Both versions normalize to tag == Tag::Prove; the trace id in
        // the body is what distinguishes them, so dispatch downstream
        // stays version-blind.
        frame.tag = Tag::Prove;
        ProveRequest &req = frame.prove;
        req.protocol = static_cast<WireProtocol>(r.getU64());
        req.app = static_cast<AppId>(r.getU64());
        req.rows = r.getU64();
        req.reps = r.getU64();
        const uint64_t flags = r.getU64();
        req.fast = (flags & 1) != 0;
        req.verify = (flags & 2) != 0;
        if (static_cast<Tag>(tag) == Tag::ProveV2) {
            req.traceId = r.getU64();
            // traceId != 0 <=> V2 is an invariant, not a convention: a
            // zero id here would re-encode as a v1 frame and break the
            // round-trip property the tests pin.
            if (req.traceId == 0)
                return std::nullopt;
        }
        if (!r.ok() || !validProveFields(req))
            return std::nullopt;
        break;
    }
    default:
        return std::nullopt;
    }
    if (!r.exhausted())
        return std::nullopt;
    return frame;
}

std::optional<ResponseFrame>
decodeResponse(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    ResponseFrame frame;
    const uint64_t tag = r.getU64();
    if (!r.ok())
        return std::nullopt;
    switch (static_cast<Tag>(tag)) {
    case Tag::Pong:
        frame.tag = Tag::Pong;
        break;
    case Tag::ShutdownAck:
        frame.tag = Tag::ShutdownAck;
        break;
    case Tag::ProveOk:
    case Tag::ProveOkV2: {
        // Like ProveV2 requests, V2 responses normalize: the frame tag
        // is Tag::ProveOk and hasServerTiming says whether the
        // decomposition fields are populated.
        frame.tag = Tag::ProveOk;
        ProveResponse &resp = frame.prove;
        resp.verified = r.getU64() != 0;
        resp.latencyNs = r.getU64();
        resp.queueDepth = r.getU64();
        if (static_cast<Tag>(tag) == Tag::ProveOkV2) {
            resp.hasServerTiming = true;
            resp.traceId = r.getU64();
            resp.laneId = r.getU64();
            resp.queuedNs = r.getU64();
            resp.proveNs = r.getU64();
            resp.serializeNs = r.getU64();
            if (resp.traceId == 0)
                return std::nullopt;
        }
        auto proof = getBytes(r, kMaxResponseFrameBytes);
        if (!r.ok() || !proof)
            return std::nullopt;
        resp.proof = std::move(*proof);
        break;
    }
    case Tag::StatsOk: {
        frame.tag = Tag::StatsOk;
        StatsResponse &stats = frame.stats;
        stats.sequence = r.getU64();
        stats.windowStartNs = r.getU64();
        stats.windowEndNs = r.getU64();
        stats.queueDepth = r.getU64();
        stats.queueCapacity = r.getU64();
        stats.lanes = r.getU64();
        stats.lanesBusy = r.getU64();
        stats.spansDropped = r.getU64();
        const uint64_t n_counters = r.getU64();
        if (!r.ok() || n_counters > kMaxStatsEntries)
            return std::nullopt;
        stats.counters.reserve(n_counters);
        for (uint64_t i = 0; i < n_counters; ++i) {
            StatsCounterWindow c;
            auto name = getBytes(r, kMaxStatsNameBytes);
            if (!name)
                return std::nullopt;
            c.name.assign(name->begin(), name->end());
            c.delta = r.getU64();
            c.cumulative = r.getU64();
            if (!r.ok())
                return std::nullopt;
            stats.counters.push_back(std::move(c));
        }
        const uint64_t n_histograms = r.getU64();
        if (!r.ok() || n_histograms > kMaxStatsEntries)
            return std::nullopt;
        stats.histograms.reserve(n_histograms);
        for (uint64_t i = 0; i < n_histograms; ++i) {
            StatsHistogramWindow h;
            auto name = getBytes(r, kMaxStatsNameBytes);
            if (!name)
                return std::nullopt;
            h.name.assign(name->begin(), name->end());
            if (!getHistogramData(r, h.delta) ||
                !getHistogramData(r, h.cumulative)) {
                return std::nullopt;
            }
            stats.histograms.push_back(std::move(h));
        }
        break;
    }
    case Tag::Error: {
        frame.tag = Tag::Error;
        ErrorResponse &err = frame.error;
        const uint64_t code = r.getU64();
        if (code < static_cast<uint64_t>(ErrorCode::BadFrame) ||
            code > static_cast<uint64_t>(ErrorCode::ShuttingDown)) {
            return std::nullopt;
        }
        err.code = static_cast<ErrorCode>(code);
        auto msg = getBytes(r, 4096);
        if (!r.ok() || !msg)
            return std::nullopt;
        err.message.assign(msg->begin(), msg->end());
        break;
    }
    default:
        return std::nullopt;
    }
    if (!r.exhausted())
        return std::nullopt;
    return frame;
}

} // namespace service
} // namespace unizk
